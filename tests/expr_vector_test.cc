// Differential testing of the vectorized expression kernels against the
// row-at-a-time interpreter (EvalRow), which is kept as the reference
// implementation for join residuals. Randomized expression trees over
// randomized NULL-bearing columns must agree cell-for-cell on every public
// entry point (EvalAll, EvalSel, EvalFilter, NarrowFilter); three-valued
// AND/OR/NOT edge cases are pinned explicitly; and the full TPC-DS workload
// must return byte-identical results with vectorization on and off under
// every optimizer configuration.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::SharedTpcds;
using testutil::Unwrap;

// ---------------------------------------------------------------------------
// Randomized differential fuzz: vectorized paths vs the EvalRow oracle.
// ---------------------------------------------------------------------------

// Columns: i0,i1 int64; d0,d1 float64; s0 string. Integer values stay small
// so the kernels' native int64 comparisons and the interpreter's agree even
// where one side promotes to double.
Schema FuzzSchema() {
  return Schema({{1, "i0", DataType::kInt64},
                 {2, "i1", DataType::kInt64},
                 {3, "d0", DataType::kFloat64},
                 {4, "d1", DataType::kFloat64},
                 {5, "s0", DataType::kString}});
}

class ExprFuzzer {
 public:
  explicit ExprFuzzer(uint32_t seed) : rng_(seed) {}

  Chunk RandomChunk(size_t rows) {
    // Physical column order must match FuzzSchema: i0, i1, d0, d1, s0.
    Chunk c = Chunk::Empty({DataType::kInt64, DataType::kInt64,
                            DataType::kFloat64, DataType::kFloat64,
                            DataType::kString});
    static const char* kStrings[] = {"a", "b", "c", "mm", "zz"};
    for (size_t r = 0; r < rows; ++r) {
      for (int col = 0; col < 2; ++col) {
        if (Chance(5)) {
          c.columns[col].AppendNull();
        } else {
          c.columns[col].AppendInt(Pick(201) - 100);
        }
      }
      for (int col = 2; col < 4; ++col) {
        if (Chance(5)) {
          c.columns[col].AppendNull();
        } else {
          c.columns[col].AppendDouble((Pick(401) - 200) / 4.0);
        }
      }
      if (Chance(5)) {
        c.columns[4].AppendNull();
      } else {
        c.columns[4].AppendString(kStrings[Pick(5)]);
      }
    }
    return c;
  }

  /// A random boolean-typed expression of bounded depth.
  ExprPtr RandomPredicate(int depth) {
    if (depth <= 0) return BoolLeaf();
    switch (Pick(8)) {
      case 0:
        return Compare(NumericExpr(depth - 1), NumericExpr(depth - 1));
      case 1:
        return Compare(StringLeaf(), StringLeaf());
      case 2:
        return eb::Between(NumericExpr(depth - 1), NumericExpr(0),
                           NumericExpr(0));
      case 3: {
        std::vector<ExprPtr> items;
        for (int i = 0, n = 1 + Pick(3); i < n; ++i) {
          items.push_back(eb::Int(Pick(201) - 100));
        }
        return eb::In(NumericExpr(depth - 1), std::move(items));
      }
      case 4:
        return Chance(2) ? eb::IsNull(NumericExpr(depth - 1))
                         : eb::IsNotNull(StringLeaf());
      case 5:
        return eb::Not(RandomPredicate(depth - 1));
      case 6: {
        std::vector<ExprPtr> kids;
        for (int i = 0, n = 2 + Pick(2); i < n; ++i) {
          kids.push_back(RandomPredicate(depth - 1));
        }
        return Chance(2) ? eb::And(std::move(kids)) : eb::Or(std::move(kids));
      }
      default:
        return eb::CaseWhen(RandomPredicate(depth - 1),
                            RandomPredicate(depth - 1), BoolLeaf());
    }
  }

 private:
  bool Chance(int one_in) { return Pick(one_in) == 0; }
  int Pick(int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(rng_);
  }

  ExprPtr BoolLeaf() {
    switch (Pick(4)) {
      case 0:
        return eb::True();
      case 1:
        return eb::False();
      case 2:
        return eb::NullOf(DataType::kBool);
      default:
        return Compare(NumericExpr(0), NumericExpr(0));
    }
  }

  ExprPtr Compare(ExprPtr a, ExprPtr b) {
    switch (Pick(6)) {
      case 0:
        return eb::Eq(std::move(a), std::move(b));
      case 1:
        return eb::Ne(std::move(a), std::move(b));
      case 2:
        return eb::Lt(std::move(a), std::move(b));
      case 3:
        return eb::Le(std::move(a), std::move(b));
      case 4:
        return eb::Gt(std::move(a), std::move(b));
      default:
        return eb::Ge(std::move(a), std::move(b));
    }
  }

  ExprPtr NumericExpr(int depth) {
    if (depth <= 0 || Chance(2)) return NumericLeaf();
    ExprPtr a = NumericExpr(depth - 1);
    ExprPtr b = NumericExpr(depth - 1);
    switch (Pick(4)) {
      case 0:
        return eb::Add(std::move(a), std::move(b));
      case 1:
        return eb::Sub(std::move(a), std::move(b));
      case 2:
        return eb::Mul(std::move(a), std::move(b));
      default:
        // Division yields NULL on a zero divisor; the zero-heavy literal
        // space makes sure that path fires.
        return eb::Div(std::move(a), std::move(b));
    }
  }

  ExprPtr NumericLeaf() {
    switch (Pick(8)) {
      case 0:
        return eb::Col(1, DataType::kInt64);
      case 1:
        return eb::Col(2, DataType::kInt64);
      case 2:
        return eb::Col(3, DataType::kFloat64);
      case 3:
        return eb::Col(4, DataType::kFloat64);
      case 4:
        return eb::Int(Pick(7) - 3);  // small: zeros included for Div
      case 5:
        return eb::Int(Pick(201) - 100);
      case 6:
        return eb::Dbl((Pick(81) - 40) / 4.0);
      default:
        return Chance(3) ? eb::NullOf(DataType::kInt64)
                         : eb::Dbl(static_cast<double>(Pick(41) - 20));
    }
  }

  ExprPtr StringLeaf() {
    static const char* kStrings[] = {"a", "b", "c", "mm", "zz"};
    switch (Pick(3)) {
      case 0:
        return eb::Col(5, DataType::kString);
      case 1:
        return eb::NullOf(DataType::kString);
      default:
        return eb::Str(kStrings[Pick(5)]);
    }
  }

  std::mt19937 rng_;
};

TEST(ExprVectorTest, RandomizedKernelsMatchRowOracle) {
  ExprFuzzer fuzz(20260806);
  std::mt19937 sel_rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    // Odd row counts exercise tail handling; trial 0 covers the empty chunk.
    size_t rows = trial == 0 ? 0 : 1 + trial % 97;
    Chunk chunk = fuzz.RandomChunk(rows);
    ExprPtr expr = fuzz.RandomPredicate(3);
    auto bound = BindExpr(expr, FuzzSchema());
    ASSERT_TRUE(bound.ok()) << bound.status().ToString() << "\n"
                            << expr->ToString();

    // Oracle: the row-at-a-time interpreter.
    std::vector<Value> oracle;
    oracle.reserve(rows);
    for (size_t r = 0; r < rows; ++r) oracle.push_back(bound->EvalRow(chunk, r));

    // EvalAll must agree on every cell.
    Column all = bound->EvalAll(chunk);
    ASSERT_EQ(all.size(), rows);
    for (size_t r = 0; r < rows; ++r) {
      ASSERT_EQ(all.GetValue(r), oracle[r])
          << expr->ToString() << " row " << r << " trial " << trial;
    }

    // EvalFilter must keep exactly the rows whose oracle value is TRUE.
    std::vector<uint32_t> expect_keep;
    for (size_t r = 0; r < rows; ++r) {
      if (!oracle[r].is_null() && oracle[r].bool_value()) {
        expect_keep.push_back(static_cast<uint32_t>(r));
      }
    }
    SelVector keep = bound->EvalFilter(chunk);
    ASSERT_EQ(keep.indexes(), expect_keep)
        << expr->ToString() << " trial " << trial;

    // EvalSel / NarrowFilter over a random subset of rows.
    SelVector sub;
    for (size_t r = 0; r < rows; ++r) {
      if (std::uniform_int_distribution<int>(0, 1)(sel_rng) == 0) {
        sub.push_back(static_cast<uint32_t>(r));
      }
    }
    Column sparse = bound->EvalSel(chunk, sub);
    ASSERT_EQ(sparse.size(), sub.size());
    for (size_t j = 0; j < sub.size(); ++j) {
      ASSERT_EQ(sparse.GetValue(j), oracle[sub[j]])
          << expr->ToString() << " sel slot " << j << " trial " << trial;
    }
    std::vector<uint32_t> expect_narrow;
    for (uint32_t r : sub) {
      if (!oracle[r].is_null() && oracle[r].bool_value()) {
        expect_narrow.push_back(r);
      }
    }
    SelVector narrowed = sub;
    bound->NarrowFilter(chunk, &narrowed);
    ASSERT_EQ(narrowed.indexes(), expect_narrow)
        << expr->ToString() << " trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Pinned three-valued-logic edge cases on the filter path.
// ---------------------------------------------------------------------------

/// One bool-typed column holding [TRUE, FALSE, NULL] x [TRUE, FALSE, NULL]:
/// column p cycles slowly, q quickly, covering all nine Kleene pairs.
Chunk KleeneChunk() {
  Chunk c = Chunk::Empty({DataType::kBool, DataType::kBool});
  const int kTrue = 0, kFalse = 1, kNull = 2;
  for (int p : {kTrue, kFalse, kNull}) {
    for (int q : {kTrue, kFalse, kNull}) {
      if (p == kNull) {
        c.columns[0].AppendNull();
      } else {
        c.columns[0].AppendBool(p == kTrue);
      }
      if (q == kNull) {
        c.columns[1].AppendNull();
      } else {
        c.columns[1].AppendBool(q == kTrue);
      }
    }
  }
  return c;
}

Schema KleeneSchema() {
  return Schema({{1, "p", DataType::kBool}, {2, "q", DataType::kBool}});
}

SelVector Filter(const ExprPtr& e) {
  auto bound = BindExpr(e, KleeneSchema());
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return bound->EvalFilter(KleeneChunk());
}

ExprPtr P() { return eb::Col(1, DataType::kBool); }
ExprPtr Q() { return eb::Col(2, DataType::kBool); }

TEST(ExprVectorTest, FilterKleeneAnd) {
  // Rows 0..8 are (p,q) in {T,F,N}x{T,F,N}; AND is TRUE only for (T,T).
  EXPECT_EQ(Filter(eb::And(P(), Q())).indexes(), (std::vector<uint32_t>{0}));
}

TEST(ExprVectorTest, FilterKleeneOr) {
  // OR is TRUE when either side is TRUE: rows 0,1,2 (p=T) and 3,6 (q=T).
  EXPECT_EQ(Filter(eb::Or(P(), Q())).indexes(),
            (std::vector<uint32_t>{0, 1, 2, 3, 6}));
}

TEST(ExprVectorTest, FilterKleeneNot) {
  // NOT p is TRUE only where p is FALSE; NULL stays NULL and is dropped.
  EXPECT_EQ(Filter(eb::Not(P())).indexes(),
            (std::vector<uint32_t>{3, 4, 5}));
}

TEST(ExprVectorTest, FilterNotOfAndDeMorgan) {
  // NOT(p AND q) must match (NOT p) OR (NOT q) row-for-row.
  EXPECT_EQ(Filter(eb::Not(eb::And(P(), Q()))).indexes(),
            Filter(eb::Or(eb::Not(P()), eb::Not(Q()))).indexes());
}

TEST(ExprVectorTest, FilterOrMergeKeepsAscendingOrderWithoutDuplicates) {
  // Both disjuncts match overlapping row sets; the merged selection must be
  // ascending and duplicate-free.
  SelVector sel = Filter(eb::Or(P(), eb::Or(Q(), P())));
  EXPECT_EQ(sel.indexes(), (std::vector<uint32_t>{0, 1, 2, 3, 6}));
}

// ---------------------------------------------------------------------------
// Workload oracle: TPC-DS byte-identical with vectorization on and off.
// ---------------------------------------------------------------------------

/// Chunk-for-chunk, cell-for-cell equality — stricter than the
/// order-insensitive ResultsEquivalent used by the equivalence suites.
void ExpectIdenticalResults(const QueryResult& vec, const QueryResult& row,
                            const std::string& label) {
  ASSERT_EQ(vec.num_rows(), row.num_rows()) << label;
  ASSERT_EQ(vec.chunks().size(), row.chunks().size()) << label;
  for (size_t c = 0; c < vec.chunks().size(); ++c) {
    const Chunk& a = vec.chunks()[c];
    const Chunk& b = row.chunks()[c];
    ASSERT_EQ(a.num_rows(), b.num_rows()) << label << " chunk " << c;
    ASSERT_EQ(a.num_columns(), b.num_columns()) << label << " chunk " << c;
    for (size_t col = 0; col < a.num_columns(); ++col) {
      for (size_t r = 0; r < a.num_rows(); ++r) {
        ASSERT_EQ(a.columns[col].GetValue(r), b.columns[col].GetValue(r))
            << label << " chunk " << c << " col " << col << " row " << r;
      }
    }
  }
}

TEST(ExprVectorTest, TpcdsResultsIdenticalToRowAtATime) {
  const Catalog& catalog = SharedTpcds();
  const struct {
    const char* name;
    OptimizerOptions options;
  } configs[] = {
      {"baseline", OptimizerOptions::Baseline()},
      {"fused", OptimizerOptions::Fused()},
      {"spooling", OptimizerOptions::Spooling()},
  };
  for (const auto& cfg : configs) {
    Optimizer optimizer(cfg.options);
    for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
      PlanContext ctx;
      PlanPtr plan = Unwrap(q.build(catalog, &ctx));
      PlanPtr optimized = Unwrap(optimizer.Optimize(plan, &ctx));
      QueryResult vectorized = Unwrap(ExecutePlan(optimized));
      SetRowAtATimeEvalForTesting(true);
      Result<QueryResult> interpreted = ExecutePlan(optimized);
      SetRowAtATimeEvalForTesting(false);
      ASSERT_TRUE(interpreted.ok()) << interpreted.status().ToString();
      ExpectIdenticalResults(vectorized, interpreted.ValueOrDie(),
                             q.name + std::string("/") + cfg.name);
    }
  }
}

}  // namespace
}  // namespace fusiondb
