// Executor: scans (with partition pruning and byte accounting), filters,
// projections, unions, values, limit, sort, enforce-single-row.
#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::Unwrap;

/// numbers(k int64 partitioned by 10, v float64, s string); k = 0..99,
/// v = k * 0.5, s = "s<k%3>"; v NULL when k % 7 == 0.
TablePtr NumbersTable() {
  static TablePtr table = [] {
    TableBuilder b("numbers", {{"k", DataType::kInt64},
                               {"v", DataType::kFloat64},
                               {"s", DataType::kString}});
    EXPECT_TRUE(b.PartitionBy("k", 10).ok());
    for (int64_t i = 0; i < 100; ++i) {
      Value v = i % 7 == 0 ? Value::Null(DataType::kFloat64)
                           : Value::Float64(i * 0.5);
      EXPECT_TRUE(b.AppendRow({Value::Int64(i), v,
                               Value::String("s" + std::to_string(i % 3))})
                      .ok());
    }
    return Unwrap(b.Build());
  }();
  return table;
}

TEST(ScanExecTest, FullScanCountsAllPartitions) {
  PlanContext ctx;
  PlanPtr plan = ScanOp::Make(&ctx, NumbersTable(), {"k", "v"});
  QueryResult r = MustExecute(plan);
  EXPECT_EQ(r.num_rows(), 100);
  EXPECT_EQ(r.metrics().partitions_scanned, 10);
  EXPECT_EQ(r.metrics().partitions_pruned, 0);
  EXPECT_EQ(r.metrics().rows_scanned, 100);
  EXPECT_GT(r.metrics().bytes_scanned, 0);
}

TEST(ScanExecTest, NarrowScanReadsFewerBytes) {
  PlanContext ctx;
  QueryResult wide = MustExecute(ScanOp::Make(&ctx, NumbersTable(),
                                              {"k", "v", "s"}));
  QueryResult narrow = MustExecute(ScanOp::Make(&ctx, NumbersTable(), {"k"}));
  EXPECT_LT(narrow.metrics().bytes_scanned, wide.metrics().bytes_scanned);
}

TEST(ScanExecTest, PartitionPruningByRange) {
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, NumbersTable(), {"k", "v"});
  ExprPtr pred = eb::Between(b.Ref("k"), eb::Int(25), eb::Int(44));
  PlanPtr pruned = std::make_shared<FilterOp>(
      std::make_shared<ScanOp>(Cast<ScanOp>(*b.Build()).table(),
                               Cast<ScanOp>(*b.Build()).table_columns(),
                               b.schema(), pred),
      pred);
  QueryResult r = MustExecute(pruned);
  EXPECT_EQ(r.num_rows(), 20);
  // k in [25, 44] spans partitions [20,29], [30,39] and [40,49].
  EXPECT_EQ(r.metrics().partitions_scanned, 3);
  EXPECT_EQ(r.metrics().partitions_pruned, 7);
}

TEST(ScanExecTest, PartitionPruningByInList) {
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, NumbersTable(), {"k"});
  ExprPtr pred = eb::In(b.Ref("k"), {eb::Int(5), eb::Int(95)});
  PlanPtr pruned = std::make_shared<FilterOp>(
      std::make_shared<ScanOp>(Cast<ScanOp>(*b.Build()).table(),
                               Cast<ScanOp>(*b.Build()).table_columns(),
                               b.schema(), pred),
      pred);
  QueryResult r = MustExecute(pruned);
  EXPECT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.metrics().partitions_scanned, 2);
}

TEST(ScanExecTest, ChunkSizeDoesNotChangeResults) {
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, NumbersTable(), {"k", "v", "s"});
  b.Filter(eb::Gt(b.Ref("k"), eb::Int(42)));
  QueryResult big = MustExecute(b.Build(), 4096);
  QueryResult tiny = MustExecute(b.Build(), 3);
  EXPECT_TRUE(ResultsEquivalent(big, tiny));
}

TEST(FilterExecTest, NullPredicateRowsDropped) {
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, NumbersTable(), {"k", "v"});
  // v > 10 is NULL where v is NULL: those rows must not pass.
  b.Filter(eb::Gt(b.Ref("v"), eb::Dbl(10.0)));
  QueryResult r = MustExecute(b.Build());
  for (int64_t i = 0; i < r.num_rows(); ++i) {
    EXPECT_FALSE(r.At(i, 1).is_null());
    EXPECT_GT(r.At(i, 1).double_value(), 10.0);
  }
}

TEST(ProjectExecTest, ComputesExpressions) {
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, NumbersTable(), {"k"});
  b.Project({{"square", eb::Mul(b.Ref("k"), b.Ref("k"))}});
  b.Filter(eb::Eq(b.Ref("square"), eb::Int(49)));
  QueryResult r = MustExecute(b.Build());
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.At(0, 0), Value::Int64(49));
}

TEST(UnionAllExecTest, ConcatenatesChildren) {
  PlanContext ctx;
  PlanBuilder a = PlanBuilder::Scan(&ctx, NumbersTable(), {"k"});
  a.Filter(eb::Lt(a.Ref("k"), eb::Int(3)));
  PlanBuilder b = PlanBuilder::Scan(&ctx, NumbersTable(), {"k"});
  b.Filter(eb::Ge(b.Ref("k"), eb::Int(98)));
  QueryResult r = MustExecute(PlanBuilder::UnionAll(&ctx, {a, b}).Build());
  EXPECT_EQ(r.num_rows(), 5);
}

TEST(ValuesExecTest, EmitsConstantRows) {
  PlanContext ctx;
  PlanPtr v = PlanBuilder::Values(&ctx, {"tag", "name"},
                                  {DataType::kInt64, DataType::kString},
                                  {{Value::Int64(1), Value::String("a")},
                                   {Value::Int64(2), Value::String("b")}})
                  .Build();
  QueryResult r = MustExecute(v);
  EXPECT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.At(1, 1), Value::String("b"));
}

TEST(LimitExecTest, TruncatesAcrossChunks) {
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, NumbersTable(), {"k"});
  b.Limit(17);
  QueryResult r = MustExecute(b.Build(), /*chunk_size=*/5);
  EXPECT_EQ(r.num_rows(), 17);
}

TEST(SortExecTest, OrdersAndIsStable) {
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, NumbersTable(), {"k", "s"});
  b.Sort({{"s", true}, {"k", false}});
  QueryResult r = MustExecute(b.Build());
  ASSERT_EQ(r.num_rows(), 100);
  // First block is s0 with k descending.
  EXPECT_EQ(r.At(0, 1), Value::String("s0"));
  EXPECT_EQ(r.At(0, 0), Value::Int64(99));
  EXPECT_EQ(r.At(1, 0), Value::Int64(96));
  // NULLs (none here) would sort first; check ordering of the last block.
  EXPECT_EQ(r.At(99, 1), Value::String("s2"));
}

TEST(SingleRowExecTest, EnforcesCardinality) {
  PlanContext ctx;
  PlanBuilder one = PlanBuilder::Scan(&ctx, NumbersTable(), {"k"});
  one.Filter(eb::Eq(one.Ref("k"), eb::Int(5)));
  one.EnforceSingleRow();
  EXPECT_EQ(MustExecute(one.Build()).num_rows(), 1);

  PlanBuilder many = PlanBuilder::Scan(&ctx, NumbersTable(), {"k"});
  many.EnforceSingleRow();
  auto too_many = ExecutePlan(many.Build());
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kExecutionError);

  PlanBuilder none = PlanBuilder::Scan(&ctx, NumbersTable(), {"k"});
  none.Filter(eb::Lt(none.Ref("k"), eb::Int(0)));
  none.EnforceSingleRow();
  EXPECT_FALSE(ExecutePlan(none.Build()).ok());
}

TEST(QueryResultTest, RenderingAndEquivalence) {
  PlanContext ctx;
  PlanBuilder a = PlanBuilder::Scan(&ctx, NumbersTable(), {"k"});
  a.Filter(eb::Lt(a.Ref("k"), eb::Int(5)));
  QueryResult r1 = MustExecute(a.Build());
  // The same rows in a different order are equivalent (unsorted) but not
  // equal ordered.
  PlanBuilder b = PlanBuilder::Scan(&ctx, NumbersTable(), {"k"});
  b.Filter(eb::Lt(b.Ref("k"), eb::Int(5)));
  b.Sort({{"k", false}});
  QueryResult r2 = MustExecute(b.Build());
  EXPECT_TRUE(ResultsEquivalent(r1, r2));
  EXPECT_FALSE(ResultsEqualOrdered(r1, r2));
  EXPECT_NE(r1.ToString().find("(5 rows)"), std::string::npos);
}

}  // namespace
}  // namespace fusiondb
