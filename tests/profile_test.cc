// The query profiling layer: per-operator runtime stats (preorder ids,
// row/chunk counters, memory attribution, spool hits), thread-count
// invariance of the counters, the optimizer/fusion trace, and the
// EXPLAIN ANALYZE / JSON export surfaces.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::SharedTpcds;
using testutil::Unwrap;

PlanPtr OptimizedQuery(const std::string& name, const OptimizerOptions& opts,
                       PlanContext* ctx, const Catalog& catalog) {
  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName(name));
  PlanPtr plan = Unwrap(query.build(catalog, ctx));
  return Unwrap(Optimizer(opts).Optimize(plan, ctx));
}

// --- Per-operator stats ----------------------------------------------------

TEST(OperatorStatsTest, PreorderIdsMatchPlanAndRootRowsMatchResult) {
  const Catalog& catalog = SharedTpcds();
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    PlanContext ctx;
    PlanPtr plan = Unwrap(q.build(catalog, &ctx));
    PlanPtr fused =
        Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
    QueryResult result = MustExecute(fused);
    const std::vector<OperatorStats>& stats = result.operator_stats();
    ASSERT_EQ(static_cast<int>(stats.size()), CountAllOps(fused)) << q.name;
    for (size_t i = 0; i < stats.size(); ++i) {
      EXPECT_EQ(stats[i].id, static_cast<int32_t>(i)) << q.name;
      if (i == 0) {
        EXPECT_EQ(stats[i].parent, -1) << q.name;
      } else {
        EXPECT_GE(stats[i].parent, 0) << q.name;
        EXPECT_LT(stats[i].parent, stats[i].id) << q.name;
      }
      EXPECT_FALSE(stats[i].kind.empty()) << q.name;
    }
    // The root's row count is the query's result cardinality.
    EXPECT_EQ(stats[0].rows_out, static_cast<int64_t>(result.num_rows()))
        << q.name;
    // next_ns is cumulative, so the root bounds every operator; self time
    // never exceeds cumulative time.
    for (const OperatorStats& s : stats) {
      EXPECT_LE(s.next_ns, stats[0].next_ns + 1) << q.name;
      EXPECT_LE(s.self_ns, s.next_ns) << q.name;
      EXPECT_GE(s.self_ns, 0) << q.name;
    }
  }
}

TEST(OperatorStatsTest, BlockingOperatorsReportPeakMemory) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanPtr fused =
      OptimizedQuery("q65", OptimizerOptions::Fused(), &ctx, catalog);
  QueryResult result = MustExecute(fused);
  bool saw_memory = false;
  for (const OperatorStats& s : result.operator_stats()) {
    if (s.kind == "Aggregate" || s.kind == "Join" || s.kind == "Window") {
      saw_memory |= s.peak_memory_bytes > 0;
    } else if (s.kind == "Scan" || s.kind == "Filter" || s.kind == "Project") {
      // Streaming operators hold no accounted hash memory.
      EXPECT_EQ(s.peak_memory_bytes, 0) << s.kind;
    }
  }
  EXPECT_TRUE(saw_memory);
}

TEST(OperatorStatsTest, ProfilingCanBeDisabled) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanPtr fused =
      OptimizedQuery("q65", OptimizerOptions::Fused(), &ctx, catalog);
  QueryResult result =
      Unwrap(ExecutePlan(fused, {.profile = false}));
  EXPECT_TRUE(result.operator_stats().empty());
  EXPECT_GT(result.num_rows(), 0u);
}

TEST(OperatorStatsTest, SpoolHitsCountReusingConsumers) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanPtr spooled =
      OptimizedQuery("q65", OptimizerOptions::Spooling(), &ctx, catalog);
  ASSERT_GT(CountOps(spooled, OpKind::kSpool), 1);
  QueryResult result = MustExecute(spooled);
  int64_t hits = 0;
  for (const OperatorStats& s : result.operator_stats()) {
    hits += s.spool_hits;
  }
  // Q65's shared subquery has two consumers: one materializes, the other
  // reads the already-built buffer (a spool hit).
  EXPECT_GE(hits, 1);
}

// Per-operator counters must not depend on the worker count: morsel
// parallelism deals identical chunks to workers and merges on the driver.
// Runs under `ctest -L parallel` (and the TSan configuration).
TEST(OperatorStatsTest, CountersInvariantUnderParallelism) {
  const Catalog& catalog = SharedTpcds();
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (!q.fusion_applicable) continue;
    PlanContext ctx;
    PlanPtr plan = Unwrap(q.build(catalog, &ctx));
    PlanPtr fused =
        Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
    QueryResult serial = Unwrap(ExecutePlan(fused));
    QueryResult parallel = Unwrap(ExecutePlan(fused, {.parallelism = 4}));
    const std::vector<OperatorStats>& a = serial.operator_stats();
    const std::vector<OperatorStats>& b = parallel.operator_stats();
    ASSERT_EQ(a.size(), b.size()) << q.name;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << q.name;
      EXPECT_EQ(a[i].kind, b[i].kind) << q.name;
      EXPECT_EQ(a[i].next_calls, b[i].next_calls) << q.name << " op " << i;
      EXPECT_EQ(a[i].chunks_out, b[i].chunks_out) << q.name << " op " << i;
      EXPECT_EQ(a[i].rows_out, b[i].rows_out) << q.name << " op " << i;
      EXPECT_EQ(a[i].rows_in, b[i].rows_in) << q.name << " op " << i;
      EXPECT_EQ(a[i].peak_memory_bytes, b[i].peak_memory_bytes)
          << q.name << " op " << i;
      EXPECT_EQ(a[i].spool_hits, b[i].spool_hits) << q.name << " op " << i;
    }
  }
}

// --- Optimizer / fusion trace ----------------------------------------------

TEST(OptimizerTraceTest, RecordsGroupByJoinToWindowFiringOnQ65) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName("q65"));
  PlanPtr plan = Unwrap(query.build(catalog, &ctx));
  OptimizerTrace trace;
  ctx.set_trace(&trace);
  PlanPtr fused =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
  ctx.set_trace(nullptr);
  ASSERT_GT(fused->num_children(), 0u);

  bool fired = false;
  for (const RuleFiring& f : trace.firings()) {
    if (f.rule == "GroupByJoinToWindow") {
      fired = true;
      EXPECT_EQ(f.phase, "fuse");
      EXPECT_FALSE(f.anchor.empty());
      // The rewrite collapses the duplicated aggregate subtree.
      EXPECT_LT(f.ops_after, f.ops_before);
    }
  }
  EXPECT_TRUE(fired);

  // The rule table counts both attempts and the firing.
  bool counted = false;
  for (const RulePhaseStats& s : trace.rule_stats()) {
    if (s.rule == "GroupByJoinToWindow") {
      counted = true;
      EXPECT_GE(s.attempts, s.fired);
      EXPECT_GE(s.fired, 1);
    }
  }
  EXPECT_TRUE(counted);

  // The fusion recursion bottoms out at the shared store_sales scans.
  bool scan_fused = false;
  for (const FusionStep& s : trace.fusion_steps()) {
    if (s.left == "Scan" && s.right == "Scan" && s.fused) scan_fused = true;
  }
  EXPECT_TRUE(scan_fused);
}

TEST(OptimizerTraceTest, RecordsRejectReasonForNonFusablePair) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  TablePtr ss = Unwrap(catalog.GetTable("store_sales"));
  TablePtr item = Unwrap(catalog.GetTable("item"));
  PlanPtr s1 = ScanOp::Make(&ctx, ss, {"ss_item_sk"});
  PlanPtr s2 = ScanOp::Make(&ctx, item, {"i_item_sk"});
  OptimizerTrace trace;
  ctx.set_trace(&trace);
  Fuser fuser(&ctx);
  auto fused = fuser.Fuse(s1, s2);
  ctx.set_trace(nullptr);
  EXPECT_FALSE(fused.has_value());
  ASSERT_EQ(trace.fusion_steps().size(), 1u);
  const FusionStep& step = trace.fusion_steps()[0];
  EXPECT_FALSE(step.fused);
  EXPECT_EQ(step.outcome, "scans read different tables");
}

TEST(OptimizerTraceTest, TracingDoesNotChangeThePlan) {
  const Catalog& catalog = SharedTpcds();
  for (const char* name : {"q09", "q65", "q95"}) {
    PlanContext ctx1;
    PlanPtr untraced =
        OptimizedQuery(name, OptimizerOptions::Fused(), &ctx1, catalog);
    PlanContext ctx2;
    OptimizerTrace trace;
    ctx2.set_trace(&trace);
    PlanPtr traced =
        OptimizedQuery(name, OptimizerOptions::Fused(), &ctx2, catalog);
    ctx2.set_trace(nullptr);
    EXPECT_EQ(PlanToString(untraced), PlanToString(traced)) << name;
  }
}

// --- Export surfaces -------------------------------------------------------

TEST(ProfileExportTest, ExplainAnalyzeAnnotatesEveryOperator) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanPtr fused =
      OptimizedQuery("q65", OptimizerOptions::Fused(), &ctx, catalog);
  QueryResult result = MustExecute(fused);
  std::string text = ExplainAnalyze(fused, result);
  // One "[#id rows=..." annotation per operator. Column lists in the plan
  // text also contain "[#", so require the digits-then-" rows=" shape.
  size_t annotations = 0;
  for (size_t pos = text.find("[#"); pos != std::string::npos;
       pos = text.find("[#", pos + 1)) {
    size_t d = pos + 2;
    while (d < text.size() && text[d] >= '0' && text[d] <= '9') ++d;
    if (d > pos + 2 && text.compare(d, 6, " rows=") == 0) ++annotations;
  }
  EXPECT_EQ(annotations, result.operator_stats().size());
  EXPECT_NE(text.find("rows="), std::string::npos);
  // Without stats it degrades to the plain plan.
  QueryResult unprofiled = Unwrap(ExecutePlan(fused, {.profile = false}));
  EXPECT_EQ(ExplainAnalyze(fused, unprofiled), PlanToString(fused));
}

TEST(ProfileExportTest, JsonProfileCarriesTreeMetricsAndTrace) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName("q65"));
  PlanPtr plan = Unwrap(query.build(catalog, &ctx));
  OptimizerTrace trace;
  ctx.set_trace(&trace);
  PlanPtr fused =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
  ctx.set_trace(nullptr);
  QueryResult result = MustExecute(fused);

  QueryProfile profile =
      MakeQueryProfile("q65", "fused", fused, result, &trace);
  std::string json = ProfileToJson(profile);
  for (const char* needle :
       {"\"query\":\"q65\"", "\"config\":\"fused\"", "\"wall_ms\":",
        "\"metrics\":", "\"bytes_scanned\":", "\"plan\":", "\"rows_out\":",
        "\"trace\":", "GroupByJoinToWindow", "\"fusion\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  // Round-trips through the file writer.
  std::string path = ::testing::TempDir() + "fusiondb_profile_test.json";
  FUSIONDB_EXPECT_OK(WriteProfileJson(profile, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(ProfileExportTest, JsonWriterEscapesAndNests) {
  JsonWriter w;
  w.BeginObject();
  w.Field("text", "a\"b\\c\nd");
  w.Key("arr");
  w.BeginArray();
  w.Int(1);
  w.Double(2.5);
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"text\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,2.5,true,null]}");
}

}  // namespace
}  // namespace fusiondb
