// SQL front end: golden parser/binder snapshots per grammar production,
// binder diagnostics with exact source positions, Engine facade behavior,
// and the TPC-DS round trip (SQL text vs hand-built constructors).
#include <string>
#include <vector>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::SharedTpcds;
using testutil::Unwrap;

/// Two tiny tables with all the golden queries' shapes: numbers(k, v, s)
/// with NULLs in v, and pairs(p_id, p_k) keyed by p_id.
const Catalog& GoldenCatalog() {
  static Catalog& catalog = *new Catalog();
  static bool built = false;
  if (built) return catalog;
  built = true;
  {
    TableBuilder b("numbers", {{"k", DataType::kInt64},
                               {"v", DataType::kFloat64},
                               {"s", DataType::kString}});
    FUSIONDB_EXPECT_OK(b.SetPrimaryKey({"k"}));
    for (int64_t k = 0; k < 20; ++k) {
      FUSIONDB_EXPECT_OK(b.AppendRow(
          {Value::Int64(k),
           k % 7 == 0 ? Value::Null(DataType::kFloat64)
                      : Value::Float64(static_cast<double>(k) * 1.5),
           Value::String("s" + std::to_string(k % 3))}));
    }
    FUSIONDB_EXPECT_OK(catalog.RegisterTable(Unwrap(b.Build())));
  }
  {
    TableBuilder b("pairs",
                   {{"p_id", DataType::kInt64}, {"p_k", DataType::kInt64}});
    FUSIONDB_EXPECT_OK(b.SetPrimaryKey({"p_id"}));
    for (int64_t i = 1; i <= 10; ++i) {
      FUSIONDB_EXPECT_OK(
          b.AppendRow({Value::Int64(i), Value::Int64((i * 3) % 20)}));
    }
    FUSIONDB_EXPECT_OK(catalog.RegisterTable(Unwrap(b.Build())));
  }
  return catalog;
}

// --- golden plan snapshots ---------------------------------------------------

struct GoldenCase {
  const char* name;
  const char* sql;
  const char* plan;  // exact PlanToString of the bound (unoptimized) plan
};

const GoldenCase kGolden[] = {
    {"projection_expr", "SELECT k, v * 2 AS dv FROM numbers",
     "Project [k#1:=#1, dv#4:=(#2 * 2)]  -> [k#1:int64, dv#4:float64]\n"
     "  Scan(numbers)  -> [k#1:int64, v#2:float64, s#3:string]\n"},
    {"where_not", "SELECT k FROM numbers WHERE v > 3 AND NOT (s = 's0')",
     "Project [k#1:=#1]  -> [k#1:int64]\n"
     "  Filter ((#2 > 3) AND NOT (#3 = 's0'))"
     "  -> [k#1:int64, v#2:float64, s#3:string]\n"
     "    Scan(numbers)  -> [k#1:int64, v#2:float64, s#3:string]\n"},
    {"group_having",
     "SELECT s, COUNT(*) AS n, SUM(v) AS sv FROM numbers GROUP BY s "
     "HAVING COUNT(*) > 2",
     "Project [s#3:=#3, n#4:=#4, sv#5:=#5]"
     "  -> [s#3:string, n#4:int64, sv#5:float64]\n"
     "  Filter (#4 > 2)  -> [s#3:string, count#4:int64, sum#5:float64]\n"
     "    Aggregate group=[#3] aggs=[count#4:=count(*), sum#5:=sum(#2)]"
     "  -> [s#3:string, count#4:int64, sum#5:float64]\n"
     "      Scan(numbers)  -> [k#1:int64, v#2:float64, s#3:string]\n"},
    {"order_limit", "SELECT k FROM numbers ORDER BY k DESC LIMIT 3",
     "Limit 3  -> [k#1:int64]\n"
     "  Sort  -> [k#1:int64]\n"
     "    Project [k#1:=#1]  -> [k#1:int64]\n"
     "      Scan(numbers)  -> [k#1:int64, v#2:float64, s#3:string]\n"},
    {"inner_join", "SELECT n.k, p.p_id FROM numbers n JOIN pairs p "
                   "ON n.k = p.p_k",
     "Project [k#1:=#1, p_id#4:=#4]  -> [k#1:int64, p_id#4:int64]\n"
     "  Join(Inner) on (#1 = #5)"
     "  -> [k#1:int64, v#2:float64, s#3:string, p_id#4:int64, p_k#5:int64]\n"
     "    Scan(numbers)  -> [k#1:int64, v#2:float64, s#3:string]\n"
     "    Scan(pairs)  -> [p_id#4:int64, p_k#5:int64]\n"},
    {"left_join", "SELECT n.k FROM numbers n LEFT JOIN pairs p "
                  "ON n.k = p.p_k",
     "Project [k#1:=#1]  -> [k#1:int64]\n"
     "  Join(Left) on (#1 = #5)"
     "  -> [k#1:int64, v#2:float64, s#3:string, p_id#4:int64, p_k#5:int64]\n"
     "    Scan(numbers)  -> [k#1:int64, v#2:float64, s#3:string]\n"
     "    Scan(pairs)  -> [p_id#4:int64, p_k#5:int64]\n"},
    // The subquery's pure-rename projection is unwrapped at bind time (the
    // scope carries the name; a Project here would hide the shape from the
    // fusion rules), so only the outer projection survives.
    {"from_subquery",
     "SELECT t.a FROM (SELECT k AS a FROM numbers WHERE k < 5) t",
     "Project [a#1:=#1]  -> [a#1:int64]\n"
     "  Filter (#1 < 5)  -> [k#1:int64, v#2:float64, s#3:string]\n"
     "    Scan(numbers)  -> [k#1:int64, v#2:float64, s#3:string]\n"},
    {"union_all_order",
     "SELECT k FROM numbers WHERE k < 3 UNION ALL "
     "SELECT k FROM numbers WHERE k > 16 ORDER BY 1",
     "Sort  -> [k#7:int64]\n"
     "  UnionAll  -> [k#7:int64]\n"
     "    Project [k#1:=#1]  -> [k#1:int64]\n"
     "      Filter (#1 < 3)  -> [k#1:int64, v#2:float64, s#3:string]\n"
     "        Scan(numbers)  -> [k#1:int64, v#2:float64, s#3:string]\n"
     "    Project [k#4:=#4]  -> [k#4:int64]\n"
     "      Filter (#4 > 16)  -> [k#4:int64, v#5:float64, s#6:string]\n"
     "        Scan(numbers)  -> [k#4:int64, v#5:float64, s#6:string]\n"},
    {"case_in_between",
     "SELECT CASE WHEN v IS NULL THEN 0.0 ELSE v END AS vv FROM numbers "
     "WHERE k BETWEEN 2 AND 8 AND s IN ('s0', 's1')",
     "Project [vv#4:=CASE WHEN (#2 IS NULL) THEN 0 ELSE #2 END]"
     "  -> [vv#4:float64]\n"
     "  Filter (((#1 >= 2) AND (#1 <= 8)) AND #3 IN ('s0', 's1'))"
     "  -> [k#1:int64, v#2:float64, s#3:string]\n"
     "    Scan(numbers)  -> [k#1:int64, v#2:float64, s#3:string]\n"},
    {"count_distinct", "SELECT COUNT(DISTINCT s) AS ds FROM numbers",
     "Project [ds#4:=#4]  -> [ds#4:int64]\n"
     "  Aggregate group=[] aggs=[count#4:=count distinct(#3)]"
     "  -> [count#4:int64]\n"
     "    Scan(numbers)  -> [k#1:int64, v#2:float64, s#3:string]\n"},
};

TEST(SqlGoldenTest, PlanSnapshots) {
  for (const GoldenCase& c : kGolden) {
    PlanContext ctx;
    sql::ParseResult result = sql::ParseAndBind(c.sql, GoldenCatalog(), &ctx);
    ASSERT_TRUE(result.ok()) << c.name << ": " << result.FormatErrors();
    EXPECT_EQ(PlanToString(result.plan), c.plan) << c.name;
  }
}

// --- binder diagnostics: taxonomy + exact source positions -------------------

struct ErrorCase {
  const char* sql;
  StatusCode code;
  const char* tag;  // "[sql-...]" taxonomy tag expected in the message
  size_t offset;    // byte offset the first diagnostic must point at
};

const ErrorCase kErrors[] = {
    {"SELEC k FROM numbers", StatusCode::kInvalidArgument, "[sql-syntax]", 0},
    {"SELECT k FROM numbers WHERE", StatusCode::kInvalidArgument,
     "[sql-syntax]", 27},
    {"SELECT nope FROM numbers", StatusCode::kPlanError,
     "[sql-unknown-column]", 7},
    {"SELECT k FROM nosuch", StatusCode::kPlanError, "[sql-unknown-table]",
     14},
    {"SELECT x.k FROM numbers n", StatusCode::kPlanError,
     "[sql-unknown-table]", 7},
    {"SELECT k FROM numbers a JOIN numbers b ON a.k = b.k",
     StatusCode::kPlanError, "[sql-ambiguous-column]", 7},
    {"SELECT n.k FROM numbers n JOIN pairs n ON n.k = n.p_k",
     StatusCode::kPlanError, "[sql-duplicate-alias]", 31},
    {"SELECT v FROM numbers GROUP BY s", StatusCode::kPlanError,
     "[sql-not-grouped]", 7},
    {"SELECT s FROM numbers ORDER BY nope", StatusCode::kPlanError,
     "[sql-order-by]", 31},
    {"SELECT SUM(SUM(v)) FROM numbers", StatusCode::kPlanError,
     "[sql-nested-aggregate]", 11},
    // Only the known aggregate functions exist; FOO( is a parse error at
    // the '(' because a bare identifier cannot be called.
    {"SELECT FOO(k) FROM numbers", StatusCode::kInvalidArgument,
     "[sql-syntax]", 10},
    {"SELECT SUM(s) FROM numbers", StatusCode::kTypeError, "[sql-type]", 11},
    {"SELECT k + s FROM numbers", StatusCode::kTypeError, "[sql-type]", 9},
    {"SELECT CASE WHEN k > 1 THEN 1 ELSE 's' END FROM numbers",
     StatusCode::kTypeError, "[sql-case-type]", 35},
    {"SELECT k FROM numbers UNION ALL SELECT k, s FROM numbers",
     StatusCode::kPlanError, "[sql-union-arity]", 32},
    {"SELECT k FROM numbers UNION ALL SELECT s FROM numbers",
     StatusCode::kTypeError, "[sql-union-type]", 32},
};

TEST(SqlDiagnosticsTest, ErrorTaxonomyAndPositions) {
  for (const ErrorCase& c : kErrors) {
    PlanContext ctx;
    sql::ParseResult result = sql::ParseAndBind(c.sql, GoldenCatalog(), &ctx);
    ASSERT_FALSE(result.ok()) << "unexpectedly bound: " << c.sql;
    ASSERT_FALSE(result.diagnostics.empty()) << c.sql;
    const sql::SqlDiagnostic& d = result.diagnostics.front();
    EXPECT_EQ(d.code, c.code) << c.sql << ": " << d.message;
    EXPECT_NE(d.message.find(c.tag), std::string::npos)
        << c.sql << ": " << d.message;
    EXPECT_EQ(d.offset, c.offset) << c.sql << ": " << d.message;
  }
}

TEST(SqlDiagnosticsTest, CaretSnippetFormat) {
  PlanContext ctx;
  sql::ParseResult result =
      sql::ParseAndBind("SELECT nope FROM numbers", GoldenCatalog(), &ctx);
  ASSERT_FALSE(result.ok());
  std::string rendered = result.FormatErrors();
  // sql:LINE:COL header (1-based), the offending line, and a caret under
  // byte offset 7.
  EXPECT_NE(rendered.find("sql:1:8:"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("SELECT nope FROM numbers"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("       ^"), std::string::npos) << rendered;
}

// --- Engine facade -----------------------------------------------------------

TEST(EngineTest, ModesAgreeOnSqlQuery) {
  Engine engine(GoldenCatalog());
  const std::string sql =
      "SELECT s, COUNT(*) AS n, SUM(v) AS sv FROM numbers "
      "GROUP BY s ORDER BY 1, 2, 3";
  QueryResult baseline =
      Unwrap(engine.ExecuteSql(sql, QueryOptions::Baseline()));
  EXPECT_EQ(baseline.num_rows(), 3);
  for (const char* mode : {"fused", "spooling", "adaptive"}) {
    QueryOptions options = Unwrap(QueryOptions::FromModeName(mode));
    QueryResult result = Unwrap(engine.ExecuteSql(sql, options));
    EXPECT_TRUE(ResultsEqualOrdered(baseline, result)) << mode;
  }
}

TEST(EngineTest, FromModeNameRejectsUnknown) {
  auto result = QueryOptions::FromModeName("turbo");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, PrepareReportsDiagnostics) {
  Engine engine(GoldenCatalog());
  sql::ParseResult parse;
  auto prepared = engine.Prepare("SELECT nope FROM numbers", &parse);
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kPlanError);
  ASSERT_FALSE(parse.diagnostics.empty());
  EXPECT_EQ(parse.diagnostics.front().offset, 7u);
}

TEST(EngineTest, AdaptiveTwoPassHarvestsFeedback) {
  Engine engine(GoldenCatalog());
  PreparedQuery query = Unwrap(engine.Prepare(
      "SELECT s, COUNT(*) AS n FROM numbers WHERE k < 15 GROUP BY s "
      "ORDER BY 1, 2"));
  EXPECT_EQ(engine.feedback()->size(), 0u);
  QueryResult adaptive =
      Unwrap(engine.Execute(&query, QueryOptions::Adaptive()));
  // The two-pass loop harvested the profiled first pass into the engine's
  // feedback store.
  EXPECT_GT(engine.feedback()->size(), 0u);
  QueryResult fused = Unwrap(engine.Execute(&query, QueryOptions::Fused()));
  EXPECT_TRUE(ResultsEqualOrdered(adaptive, fused));
}

TEST(EngineTest, PrepareFromPlanBuilder) {
  Engine engine(SharedTpcds());
  tpcds::TpcdsQuery q03 = Unwrap(tpcds::QueryByName("q03"));
  PreparedQuery query = Unwrap(engine.Prepare(q03.build));
  QueryResult result = Unwrap(engine.Execute(&query));
  EXPECT_GE(result.num_rows(), 0);
}

// --- TPC-DS round trip: SQL text == hand-built constructors ------------------

struct RoundTripCase {
  const char* name;
  const char* sql;
};

const RoundTripCase kRoundTrips[] = {
    {"q03",
     "SELECT d.d_year, i.i_brand_id, i.i_brand, "
     "SUM(ss.ss_ext_sales_price) AS sum_agg "
     "FROM store_sales ss "
     "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
     "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
     "WHERE d.d_moy = 11 AND i.i_manufact_id <= 50 "
     "GROUP BY d.d_year, i.i_brand_id, i.i_brand "
     "ORDER BY d_year, sum_agg DESC, i_brand_id LIMIT 100"},
    {"q07",
     "SELECT i.i_item_id, AVG(ss.ss_quantity) AS agg1, "
     "AVG(ss.ss_list_price) AS agg2, AVG(ss.ss_coupon_amt) AS agg3, "
     "AVG(ss.ss_sales_price) AS agg4 "
     "FROM store_sales ss "
     "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
     "JOIN household_demographics hd ON ss.ss_hdemo_sk = hd.hd_demo_sk "
     "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
     "WHERE d.d_year = 2000 AND hd.hd_dep_count = 3 "
     "GROUP BY i.i_item_id ORDER BY i_item_id LIMIT 100"},
    {"q26",
     "SELECT i.i_item_id, AVG(cs.cs_quantity) AS agg1, "
     "AVG(cs.cs_list_price) AS agg2, AVG(cs.cs_sales_price) AS agg3 "
     "FROM catalog_sales cs "
     "JOIN date_dim d ON cs.cs_sold_date_sk = d.d_date_sk "
     "JOIN item i ON cs.cs_item_sk = i.i_item_sk "
     "WHERE d.d_year = 2000 "
     "GROUP BY i.i_item_id ORDER BY i_item_id LIMIT 100"},
};

TEST(SqlRoundTripTest, TpcdsSqlMatchesHandBuiltPlans) {
  Engine engine(SharedTpcds());
  for (const RoundTripCase& c : kRoundTrips) {
    tpcds::TpcdsQuery reference = Unwrap(tpcds::QueryByName(c.name));
    PreparedQuery hand = Unwrap(engine.Prepare(reference.build));
    QueryResult hand_result =
        Unwrap(engine.Execute(&hand, QueryOptions::Fused()));
    PreparedQuery from_sql = Unwrap(engine.Prepare(c.sql));
    QueryResult sql_result =
        Unwrap(engine.Execute(&from_sql, QueryOptions::Fused()));
    ASSERT_EQ(hand_result.num_rows(), sql_result.num_rows()) << c.name;
    // Byte-identical rendered rows; both queries totally order their output
    // (the shared sort keys are unique), so compare them sorted to stay
    // independent of tie order inside the executor.
    EXPECT_EQ(hand_result.RenderRows(true), sql_result.RenderRows(true))
        << c.name;
  }
}

}  // namespace
}  // namespace fusiondb
