// Shared test helpers: unwrap macros, a lazily-built shared TPC-DS catalog,
// and the Fuse-reconstruction helper used by the fusion test suites.
#ifndef FUSIONDB_TESTS_TEST_UTIL_H_
#define FUSIONDB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "fusiondb.h"

namespace fusiondb::testutil {

/// Unwraps a Result<T>, failing the test with the status message otherwise.
#define FUSIONDB_ASSERT_OK(expr)                                  \
  do {                                                            \
    ::fusiondb::Status _st = (expr);                              \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

#define FUSIONDB_EXPECT_OK(expr)                                  \
  do {                                                            \
    ::fusiondb::Status _st = (expr);                              \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

template <typename T>
T Unwrap(Result<T> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) std::abort();
  return std::move(result).ValueOrDie();
}

/// A TPC-DS catalog at the given scale, built once per process per scale.
inline const Catalog& SharedTpcds(double scale = 0.01) {
  static auto& cache = *new std::map<double, Catalog*>();
  auto it = cache.find(scale);
  if (it == cache.end()) {
    auto* catalog = new Catalog();
    tpcds::TpcdsOptions options;
    options.scale = scale;
    Status st = tpcds::BuildTpcdsCatalog(options, catalog);
    if (!st.ok()) std::abort();
    it = cache.emplace(scale, catalog).first;
  }
  return *it->second;
}

/// Executes a plan, failing the test on error.
inline QueryResult MustExecute(const PlanPtr& plan, size_t chunk_size = 4096) {
  return Unwrap(ExecutePlan(plan, {.chunk_size = chunk_size}));
}

/// Builds the reconstruction of one fused side per the Fuse contract:
///   P1 == Project_{outCols(P1)}(Filter_L(P))
///   P2 == Project_{M(outCols(P2))}(Filter_R(P))
/// (`right` selects which side.)
inline PlanPtr Reconstruct(const FuseResult& fused, const PlanPtr& original,
                           bool right) {
  PlanPtr filtered = std::make_shared<FilterOp>(
      fused.plan, right ? fused.right_filter : fused.left_filter);
  std::vector<NamedExpr> exprs;
  for (const ColumnInfo& c : original->schema().columns()) {
    ColumnId source = right ? ApplyMap(fused.mapping, c.id) : c.id;
    int idx = fused.plan->schema().IndexOf(source);
    EXPECT_GE(idx, 0) << "fused plan lacks column #" << source;
    exprs.push_back(
        {c.id, c.name,
         Expr::MakeColumnRef(source, fused.plan->schema().column(idx).type)});
  }
  return std::make_shared<ProjectOp>(filtered, std::move(exprs));
}

/// Asserts that fusing p1 and p2 succeeds and that both reconstructions
/// reproduce the original results exactly (executed, not inspected).
inline FuseResult FuseAndCheck(PlanContext* ctx, const PlanPtr& p1,
                               const PlanPtr& p2) {
  Fuser fuser(ctx);
  auto fused = fuser.Fuse(p1, p2);
  EXPECT_TRUE(fused.has_value()) << "fusion unexpectedly failed";
  if (!fused.has_value()) std::abort();
  QueryResult r1 = MustExecute(p1);
  QueryResult r2 = MustExecute(p2);
  QueryResult f1 = MustExecute(Reconstruct(*fused, p1, /*right=*/false));
  QueryResult f2 = MustExecute(Reconstruct(*fused, p2, /*right=*/true));
  EXPECT_TRUE(ResultsEquivalent(r1, f1))
      << "left reconstruction mismatch:\noriginal:\n"
      << r1.ToString() << "reconstructed:\n"
      << f1.ToString() << "fused plan:\n"
      << PlanToString(fused->plan);
  EXPECT_TRUE(ResultsEquivalent(r2, f2))
      << "right reconstruction mismatch:\noriginal:\n"
      << r2.ToString() << "reconstructed:\n"
      << f2.ToString() << "fused plan:\n"
      << PlanToString(fused->plan);
  return *fused;
}

}  // namespace fusiondb::testutil

#endif  // FUSIONDB_TESTS_TEST_UTIL_H_
