// Property-based validation of the Fuse contract: for randomly generated
// predicate/projection/aggregation pairs, the reconstruction identities
//   P1 == Project(Filter_L(P))   and   P2 == Project_M(Filter_R(P))
// must hold when fusion succeeds (checked by execution over real data).
#include <random>

#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::FuseAndCheck;
using testutil::SharedTpcds;
using testutil::Unwrap;

/// Random single-table predicate over item columns.
ExprPtr RandomPredicate(std::mt19937_64* rng, const PlanBuilder& b, int depth) {
  auto pick = [&](int n) { return static_cast<int>((*rng)() % n); };
  if (depth <= 0 || pick(3) == 0) {
    switch (pick(5)) {
      case 0:
        return eb::Gt(b.Ref("i_brand_id"), eb::Int(pick(1000)));
      case 1:
        return eb::Between(b.Ref("i_brand_id"), eb::Int(pick(500)),
                           eb::Int(500 + pick(500)));
      case 2:
        return eb::Eq(b.Ref("i_color"),
                      eb::Str(pick(2) == 0 ? "red" : "blue"));
      case 3:
        return eb::Lt(b.Ref("i_current_price"), eb::Dbl(pick(300) * 1.0));
      default:
        return eb::In(b.Ref("i_category_id"),
                      {eb::Int(pick(10) + 1), eb::Int(pick(10) + 1)});
    }
  }
  ExprPtr l = RandomPredicate(rng, b, depth - 1);
  ExprPtr r = RandomPredicate(rng, b, depth - 1);
  switch (pick(3)) {
    case 0:
      return eb::And(l, r);
    case 1:
      return eb::Or(l, r);
    default:
      return eb::Not(l);
  }
}

class FusionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FusionPropertyTest, FilteredScansReconstruct) {
  std::mt19937_64 rng(GetParam() * 7919 + 13);
  PlanContext ctx;
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  PlanBuilder b1 = PlanBuilder::Scan(
      &ctx, item, {"i_item_sk", "i_brand_id", "i_category_id", "i_color",
                   "i_current_price"});
  b1.Filter(RandomPredicate(&rng, b1, 2));
  PlanBuilder b2 = PlanBuilder::Scan(
      &ctx, item, {"i_item_sk", "i_brand_id", "i_category_id", "i_color",
                   "i_current_price"});
  b2.Filter(RandomPredicate(&rng, b2, 2));
  FuseAndCheck(&ctx, b1.Build(), b2.Build());
}

TEST_P(FusionPropertyTest, FilteredAggregatesReconstruct) {
  std::mt19937_64 rng(GetParam() * 104729 + 7);
  PlanContext ctx;
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  auto make = [&]() {
    PlanBuilder b = PlanBuilder::Scan(
        &ctx, item, {"i_brand_id", "i_category_id", "i_color",
                     "i_current_price"});
    b.Filter(RandomPredicate(&rng, b, 1));
    bool scalar = rng() % 2 == 0;
    std::vector<std::string> group =
        scalar ? std::vector<std::string>{}
               : std::vector<std::string>{"i_category_id"};
    b.Aggregate(group,
                {{"cnt", AggFunc::kCountStar, nullptr, nullptr, false},
                 {"avg_price", AggFunc::kAvg, b.Ref("i_current_price"),
                  nullptr, false}});
    return b.Build();
  };
  PlanPtr p1 = make();
  PlanPtr p2 = make();
  // Scalar/grouped mismatch legitimately fails; only check when group
  // shapes line up.
  const auto& g1 = Cast<AggregateOp>(*p1);
  const auto& g2 = Cast<AggregateOp>(*p2);
  if (g1.group_by().size() != g2.group_by().size()) {
    Fuser fuser(&ctx);
    EXPECT_FALSE(fuser.Fuse(p1, p2).has_value());
    return;
  }
  FuseAndCheck(&ctx, p1, p2);
}

TEST_P(FusionPropertyTest, MaskedAggregatesReconstruct) {
  std::mt19937_64 rng(GetParam() * 31337 + 1);
  PlanContext ctx;
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  auto make = [&]() {
    PlanBuilder b = PlanBuilder::Scan(
        &ctx, item,
        {"i_brand_id", "i_category_id", "i_color", "i_current_price"});
    ExprPtr mask = RandomPredicate(&rng, b, 1);
    b.Aggregate({"i_category_id"},
                {{"s", AggFunc::kSum, b.Ref("i_brand_id"), mask, false},
                 {"m", AggFunc::kMin, b.Ref("i_current_price"), nullptr,
                  false}});
    return b.Build();
  };
  FuseAndCheck(&ctx, make(), make());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace fusiondb
