// Substrate rules: simplification/merging, filter pushdown & partition
// pruning handoff, decorrelation, distinct lowering, semi-join -> distinct
// join, distinct pushdown, and column pruning.
#include <gtest/gtest.h>

#include "optimizer/prune_columns.h"
#include "optimizer/rules.h"
#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::SharedTpcds;
using testutil::Unwrap;

/// Narrows `plan` to `schema`'s columns so result comparisons are not
/// confused by superset schemas rule rewrites may leave behind.
PlanPtr Narrow(const PlanPtr& plan, const Schema& schema) {
  std::vector<NamedExpr> exprs;
  for (const ColumnInfo& c : schema.columns()) {
    exprs.push_back({c.id, c.name, Expr::MakeColumnRef(c.id, c.type)});
  }
  return std::make_shared<ProjectOp>(plan, std::move(exprs));
}

PlanBuilder Sales(PlanContext* ctx) {
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));
  return PlanBuilder::Scan(
      ctx, ss, {"ss_sold_date_sk", "ss_store_sk", "ss_item_sk", "ss_quantity",
                "ss_list_price"});
}

TEST(MergeFiltersTest, StacksCollapse) {
  PlanContext ctx;
  PlanBuilder b = Sales(&ctx);
  b.Filter(eb::Gt(b.Ref("ss_quantity"), eb::Int(10)));
  b.Filter(eb::Lt(b.Ref("ss_quantity"), eb::Int(90)));
  MergeFiltersRule rule;
  PlanPtr merged = Unwrap(rule.Apply(b.Build(), &ctx));
  EXPECT_EQ(CountOps(merged, OpKind::kFilter), 1);
  const auto& f = Cast<FilterOp>(*merged);
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(f.predicate(), &conjuncts);
  EXPECT_EQ(conjuncts.size(), 2u);
}

TEST(MergeProjectsTest, InlinesDefinitions) {
  PlanContext ctx;
  PlanBuilder b = Sales(&ctx);
  b.Project({{"x", eb::Add(b.Ref("ss_quantity"), eb::Int(1))}});
  b.Project({{"y", eb::Mul(b.Ref("x"), eb::Int(2))}});
  MergeProjectsRule rule;
  PlanPtr merged = Unwrap(rule.Apply(b.Build(), &ctx));
  EXPECT_EQ(CountOps(merged, OpKind::kProject), 1);
  // y := (q + 1) * 2.
  QueryResult r = MustExecute(merged);
  QueryResult expected = MustExecute(b.Build());
  EXPECT_TRUE(ResultsEquivalent(r, expected));
}

TEST(PushFilterIntoScanTest, HandsPredicateForPruning) {
  PlanContext ctx;
  PlanBuilder b = Sales(&ctx);
  b.Filter(eb::Gt(b.Ref("ss_sold_date_sk"), eb::Int(2452000)));
  PushFilterIntoScanRule rule;
  PlanPtr pushed = Unwrap(rule.Apply(b.Build(), &ctx));
  ASSERT_EQ(pushed->kind(), OpKind::kFilter);
  const auto& scan = Cast<ScanOp>(*pushed->child(0));
  ASSERT_NE(scan.pruning_filter(), nullptr);
  // Idempotent.
  EXPECT_EQ(Unwrap(rule.Apply(pushed, &ctx)), pushed);
  // And pruning actually skips partitions at execution.
  QueryResult pruned = MustExecute(pushed);
  EXPECT_GT(pruned.metrics().partitions_pruned, 0);
}

TEST(FilterPushdownTest, SplitsAcrossInnerJoin) {
  PlanContext ctx;
  PlanBuilder l = Sales(&ctx);
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  PlanBuilder r = PlanBuilder::Scan(&ctx, item, {"i_item_sk", "i_brand_id"});
  ExprPtr lq = l.Ref("ss_quantity");
  ExprPtr rb = r.Ref("i_brand_id");
  l.JoinOn(JoinType::kInner, r, {{"ss_item_sk", "i_item_sk"}});
  l.Filter(eb::And({eb::Gt(lq, eb::Int(10)), eb::Lt(rb, eb::Int(500)),
                    eb::Gt(eb::Add(lq, rb), eb::Int(0))}));
  FilterPushdownRule rule;
  PlanPtr pushed = Unwrap(rule.Apply(l.Build(), &ctx));
  // Left- and right-only conjuncts moved below the join; the mixed one
  // stays on top.
  ASSERT_EQ(pushed->kind(), OpKind::kFilter);
  ASSERT_EQ(pushed->child(0)->kind(), OpKind::kJoin);
  const auto& join = Cast<JoinOp>(*pushed->child(0));
  EXPECT_EQ(join.left()->kind(), OpKind::kFilter);
  EXPECT_EQ(join.right()->kind(), OpKind::kFilter);
  QueryResult before = MustExecute(l.Build());
  QueryResult after = MustExecute(pushed);
  EXPECT_TRUE(ResultsEquivalent(before, after));
}

TEST(DecorrelateTest, ApplyBecomesJoinAggregate) {
  PlanContext ctx;
  PlanBuilder outer = Sales(&ctx);
  PlanBuilder inner = Sales(&ctx);
  ColumnId corr = inner.Col("ss_store_sk").id;
  PlanBuilder sub = inner;
  sub.Aggregate({}, {{"avg_p", AggFunc::kAvg, inner.Ref("ss_list_price"),
                      nullptr, false}});
  outer.Apply(sub, {{"ss_store_sk", corr}});
  outer.Filter(eb::Gt(outer.Ref("ss_list_price"), outer.Ref("avg_p")));
  PlanPtr plan = outer.Build();
  // Apply cannot execute directly...
  EXPECT_FALSE(ExecutePlan(plan).ok());
  // ...but the optimizer decorrelates it into Join + grouped Aggregate.
  PlanPtr optimized =
      Unwrap(Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx));
  EXPECT_EQ(CountOps(optimized, OpKind::kApply), 0);
  EXPECT_GE(CountOps(optimized, OpKind::kJoin), 1);
  QueryResult r = MustExecute(optimized);
  EXPECT_GT(r.num_rows(), 0);
  // Cross-check against the hand-decorrelated form.
  PlanBuilder manual_outer = Sales(&ctx);
  PlanBuilder manual_inner = Sales(&ctx);
  PlanBuilder magg = manual_inner;
  magg.Aggregate({"ss_store_sk"},
                 {{"avg_p", AggFunc::kAvg, manual_inner.Ref("ss_list_price"),
                   nullptr, false}});
  ExprPtr mo_store = manual_outer.Ref("ss_store_sk");
  ExprPtr mo_price = manual_outer.Ref("ss_list_price");
  manual_outer.Join(JoinType::kInner, magg,
                    eb::Eq(mo_store, magg.Ref("ss_store_sk")));
  manual_outer.Filter(eb::Gt(mo_price, manual_outer.Ref("avg_p")));
  // Compare the shared column subset (ids differ, so compare row counts of
  // a stable projection).
  QueryResult manual = MustExecute(manual_outer.Build());
  EXPECT_EQ(r.num_rows(), manual.num_rows());
}

TEST(DistinctLoweringTest, EquivalentToNativeDistinct) {
  PlanContext ctx;
  PlanBuilder b = Sales(&ctx);
  b.Aggregate({"ss_store_sk"},
              {{"d", AggFunc::kCount, b.Ref("ss_item_sk"), nullptr, true},
               {"t", AggFunc::kSum, b.Ref("ss_quantity"), nullptr, false}});
  PlanPtr plan = b.Build();
  DistinctAggToMarkDistinctRule rule;
  PlanPtr lowered = Unwrap(rule.Apply(plan, &ctx));
  ASSERT_NE(lowered, plan);
  EXPECT_EQ(CountOps(lowered, OpKind::kMarkDistinct), 1);
  const auto& agg = Cast<AggregateOp>(*lowered);
  for (const AggregateItem& a : agg.aggregates()) {
    EXPECT_FALSE(a.distinct);
  }
  QueryResult native = MustExecute(plan);
  QueryResult via_md = MustExecute(lowered);
  EXPECT_TRUE(ResultsEquivalent(native, via_md));
}

TEST(SemiJoinToDistinctJoinTest, PreservesSemantics) {
  PlanContext ctx;
  PlanBuilder l = Sales(&ctx);
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  PlanBuilder r = PlanBuilder::Scan(&ctx, item, {"i_item_sk", "i_category"});
  r.Filter(eb::Eq(r.Ref("i_category"), eb::Str("Music")));
  l.Join(JoinType::kSemi, r, eb::Eq(l.Ref("ss_item_sk"), r.Ref("i_item_sk")));
  PlanPtr plan = l.Build();
  SemiJoinToDistinctJoinRule rule;
  PlanPtr rewritten = Unwrap(rule.Apply(plan, &ctx));
  ASSERT_NE(rewritten, plan);
  EXPECT_EQ(CountOps(rewritten, OpKind::kAggregate), 1);
  QueryResult before = MustExecute(plan);
  QueryResult after = MustExecute(Narrow(rewritten, plan->schema()));
  EXPECT_TRUE(ResultsEquivalent(before, after));
}

TEST(PushDistinctBelowJoinTest, SplitsDistinctOverKeyJoin) {
  PlanContext ctx;
  TablePtr wr = Unwrap(SharedTpcds().GetTable("web_returns"));
  TablePtr ws = Unwrap(SharedTpcds().GetTable("web_sales"));
  PlanBuilder a = PlanBuilder::Scan(&ctx, ws, {"ws_order_number"});
  PlanBuilder b = PlanBuilder::Scan(&ctx, wr, {"wr_order_number"});
  a.JoinOn(JoinType::kInner, b, {{"ws_order_number", "wr_order_number"}});
  a.Aggregate({"wr_order_number"}, {});
  PlanPtr plan = a.Build();
  PushDistinctBelowJoinRule rule;
  PlanPtr rewritten = Unwrap(rule.Apply(plan, &ctx));
  ASSERT_NE(rewritten, plan);
  // Distinct pushed to both sides.
  EXPECT_EQ(CountOps(rewritten, OpKind::kAggregate), 2);
  QueryResult before = MustExecute(plan);
  QueryResult after = MustExecute(Narrow(rewritten, plan->schema()));
  EXPECT_TRUE(ResultsEquivalent(before, after));
}

TEST(PruneColumnsTest, NarrowsScansToUsage) {
  PlanContext ctx;
  PlanBuilder b = Sales(&ctx);  // 5 columns
  b.Filter(eb::Gt(b.Ref("ss_quantity"), eb::Int(50)));
  b.Select({"ss_item_sk"});
  PlanPtr pruned = Unwrap(PruneColumns(b.Build()));
  std::function<const ScanOp*(const PlanPtr&)> find_scan =
      [&](const PlanPtr& p) -> const ScanOp* {
    if (p->kind() == OpKind::kScan) return &Cast<ScanOp>(*p);
    for (const PlanPtr& c : p->children()) {
      const ScanOp* s = find_scan(c);
      if (s != nullptr) return s;
    }
    return nullptr;
  };
  const ScanOp* scan = find_scan(pruned);
  ASSERT_NE(scan, nullptr);
  // Only ss_item_sk (output) and ss_quantity (filter) survive.
  EXPECT_EQ(scan->schema().num_columns(), 2u);
  QueryResult before = MustExecute(b.Build());
  QueryResult after = MustExecute(pruned);
  EXPECT_TRUE(ResultsEquivalent(before, after));
}

TEST(PruneColumnsTest, CountStarKeepsNarrowestColumn) {
  PlanContext ctx;
  PlanBuilder b = Sales(&ctx);
  b.Aggregate({}, {{"n", AggFunc::kCountStar, nullptr, nullptr, false}});
  PlanPtr pruned = Unwrap(PruneColumns(b.Build()));
  QueryResult r = MustExecute(pruned);
  QueryResult expected = MustExecute(b.Build());
  EXPECT_TRUE(ResultsEquivalent(r, expected));
  EXPECT_LT(r.metrics().bytes_scanned, expected.metrics().bytes_scanned);
}

TEST(SimplifyRuleTest, TrueFilterRemoved) {
  PlanContext ctx;
  PlanBuilder b = Sales(&ctx);
  b.Filter(eb::Or(eb::True(), eb::Gt(b.Ref("ss_quantity"), eb::Int(5))));
  SimplifyExpressionsRule rule;
  PlanPtr simplified = Unwrap(rule.Apply(b.Build(), &ctx));
  EXPECT_EQ(simplified->kind(), OpKind::kScan);
}

}  // namespace
}  // namespace fusiondb
