// The semantic analysis tier (DESIGN.md §8): per-operator property
// derivation (keys, domains, row bounds), the expression-level implication
// and monotonicity checkers, and the SemanticVerifier's translation
// validation — every [semantic-*] tag has a hand-built plan that trips it
// and a minimally different one that passes. Also covers the consumers:
// JoinOnKeys firing from derived keys and the key-aware cardinality
// estimate.
#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::SharedTpcds;
using testutil::Unwrap;

PlanBuilder Items(PlanContext* ctx) {
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  return PlanBuilder::Scan(ctx, item, {"i_item_sk", "i_brand_id"});
}

PlanBuilder Sales(PlanContext* ctx) {
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));
  return PlanBuilder::Scan(ctx, ss, {"ss_sold_date_sk", "ss_item_sk"});
}

/// Rebuilds `scan` (which must be a bare ScanOp) with the given pruning
/// filter attached — the shape the optimizer's pruning rewrite produces,
/// here hand-built so tests can attach unjustified filters.
PlanPtr WithPruning(const PlanPtr& scan, ExprPtr pruning) {
  const auto& s = Cast<ScanOp>(*scan);
  return std::make_shared<ScanOp>(s.table(), s.table_columns(), s.schema(),
                                  std::move(pruning));
}

/// Asserts `st` failed with the given [semantic-*] tag in its message.
void ExpectTag(const Status& st, const char* tag) {
  ASSERT_FALSE(st.ok()) << "expected [" << tag << "] violation";
  EXPECT_NE(st.message().find(std::string("[") + tag + "]"),
            std::string::npos)
      << "expected tag [" << tag << "] in: " << st.ToString();
}

// --- derivation: scans -----------------------------------------------------

TEST(PlanPropsTest, ScanPrimaryKeyIsKey) {
  PlanContext ctx;
  PlanPtr scan = Items(&ctx).Build();
  PropertyDerivation d;
  const PlanProps& p = d.Derive(scan);
  EXPECT_TRUE(p.HasKey({scan->schema().column(0).id}))
      << "i_item_sk is item's primary key";
  EXPECT_FALSE(p.HasKey({scan->schema().column(1).id}));
  int64_t n = Unwrap(SharedTpcds().GetTable("item"))->num_rows();
  EXPECT_EQ(p.rows.min, n);
  EXPECT_EQ(p.rows.max, n);
}

TEST(PlanPropsTest, ScanWithoutKeyColumnHasNoKey) {
  PlanContext ctx;
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  PlanPtr scan = PlanBuilder::Scan(&ctx, item, {"i_brand_id"}).Build();
  PropertyDerivation d;
  EXPECT_TRUE(d.Derive(scan).keys.empty())
      << "the primary key column is not scanned";
}

TEST(PlanPropsTest, ScanPartitionColumnGetsHullDomain) {
  PlanContext ctx;
  PlanPtr scan = Sales(&ctx).Build();
  PropertyDerivation d;
  const PlanProps& p = d.Derive(scan);
  ColumnId date = scan->schema().column(0).id;
  auto it = p.domains.find(date);
  ASSERT_NE(it, p.domains.end())
      << "partitioned fact table must bound its partition column";
  EXPECT_TRUE(it->second.lo.has);
  EXPECT_TRUE(it->second.hi.has);
  // The non-partition column has no catalog-derived bounds.
  EXPECT_EQ(p.domains.count(scan->schema().column(1).id), 0u);
}

// --- derivation: relational operators --------------------------------------

TEST(PlanPropsTest, FilterTightensDomains) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  ColumnId brand = b.Col("i_brand_id").id;
  b.Filter(eb::Gt(b.Ref("i_brand_id"), eb::Int(5)));
  PropertyDerivation d;
  const PlanProps& p = d.Derive(b.Build());
  auto it = p.domains.find(brand);
  ASSERT_NE(it, p.domains.end());
  EXPECT_FALSE(it->second.nullable) << "x > 5 proves x is not NULL";
  ASSERT_TRUE(it->second.lo.has);
  EXPECT_TRUE(it->second.lo.strict);
  EXPECT_EQ(it->second.lo.value.Compare(Value::Int64(5)), 0);
}

TEST(PlanPropsTest, GroupByColumnsKeyTheAggregate) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  b.Aggregate({"i_brand_id"},
              {{"s", AggFunc::kSum, b.Ref("i_item_sk"), nullptr, false}});
  PlanPtr plan = b.Build();
  PropertyDerivation d;
  const PlanProps& p = d.Derive(plan);
  ColumnId brand = plan->schema().column(0).id;
  EXPECT_TRUE(p.HasKey({brand}));
  // FD closure: the group columns determine the aggregate outputs, so the
  // full output column set also covers the key.
  EXPECT_TRUE(p.HasKey({brand, plan->schema().column(1).id}));
}

TEST(PlanPropsTest, ScalarAggregateIsSingleRow) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  b.Aggregate({}, {{"s", AggFunc::kSum, b.Ref("i_brand_id"), nullptr, false}});
  PropertyDerivation d;
  const PlanProps& p = d.Derive(b.Build());
  EXPECT_EQ(p.rows.max, 1);
  EXPECT_TRUE(p.HasKey({})) << "a single-row relation has the empty key";
}

TEST(PlanPropsTest, InnerJoinUnionsKeys) {
  PlanContext ctx;
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  TablePtr store = Unwrap(SharedTpcds().GetTable("store"));
  PlanBuilder a = PlanBuilder::Scan(&ctx, item, {"i_item_sk"});
  PlanBuilder b = PlanBuilder::Scan(&ctx, store, {"s_store_sk"});
  ColumnId ik = a.Col("i_item_sk").id;
  ColumnId sk = b.Col("s_store_sk").id;
  a.JoinOn(JoinType::kInner, b, {{"i_item_sk", "s_store_sk"}});
  PropertyDerivation d;
  EXPECT_TRUE(d.Derive(a.Build()).HasKey({ik, sk}))
      << "PK x PK join: the union of the sides' keys keys the join";
}

TEST(PlanPropsTest, LeftJoinRightColumnsStayNullable) {
  PlanContext ctx;
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  TablePtr store = Unwrap(SharedTpcds().GetTable("store"));
  PlanBuilder a = PlanBuilder::Scan(&ctx, item, {"i_item_sk"});
  PlanBuilder b = PlanBuilder::Scan(&ctx, store, {"s_store_sk"});
  ColumnId sk = b.Col("s_store_sk").id;
  a.JoinOn(JoinType::kLeft, b, {{"i_item_sk", "s_store_sk"}});
  PropertyDerivation d;
  const PlanProps& p = d.Derive(a.Build());
  auto it = p.domains.find(sk);
  if (it != p.domains.end()) {
    EXPECT_TRUE(it->second.nullable)
        << "left-join padding can NULL the right side";
  }
}

TEST(PlanPropsTest, ValuesRowBoundsAndDomains) {
  PlanContext ctx;
  PlanPtr v = PlanBuilder::Values(&ctx, {"x"}, {DataType::kInt64},
                                  {{Value::Int64(3)}, {Value::Int64(7)}})
                  .Build();
  PropertyDerivation d;
  const PlanProps& p = d.Derive(v);
  EXPECT_EQ(p.rows.min, 2);
  EXPECT_EQ(p.rows.max, 2);
  auto it = p.domains.find(v->schema().column(0).id);
  ASSERT_NE(it, p.domains.end());
  EXPECT_FALSE(it->second.nullable);
  EXPECT_EQ(it->second.lo.value.Compare(Value::Int64(3)), 0);
  EXPECT_EQ(it->second.hi.value.Compare(Value::Int64(7)), 0);
}

// --- derivation: memoization and renumbering stability ----------------------

TEST(PlanPropsTest, SharedSubtreeDerivedOnce) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  ExprPtr brand = b.Ref("i_brand_id");
  PlanPtr scan = b.Build();
  PlanPtr f1 = std::make_shared<FilterOp>(scan, eb::Gt(brand, eb::Int(5)));
  PlanPtr f2 = std::make_shared<FilterOp>(scan, eb::Lt(brand, eb::Int(100)));
  PropertyDerivation d;
  d.Derive(f1);
  d.Derive(f2);
  EXPECT_EQ(d.nodes_derived(), 3) << "the shared scan must be derived once";
  d.Derive(f1);  // memo hit, no growth
  EXPECT_EQ(d.nodes_derived(), 3);
  EXPECT_NE(d.Lookup(scan.get()), nullptr);
  EXPECT_EQ(d.Lookup(nullptr), nullptr);
}

TEST(PlanPropsTest, PropertiesStableUnderRenumbering) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  ColumnId key = b.Col("i_item_sk").id;
  b.Filter(eb::Gt(b.Ref("i_brand_id"), eb::Int(5)));
  PlanPtr plan = b.Build();

  PlanContext other;
  other.NextId();  // shift the id space so renumbering actually renumbers
  RenumberedPlan ren = RenumberPlan(plan, &other);
  ASSERT_NE(ApplyMap(ren.mapping, key), key) << "fixture must renumber";

  PropertyDerivation d;
  const PlanProps& p0 = d.Derive(plan);
  const PlanProps& p1 = d.Derive(ren.plan);
  EXPECT_TRUE(p0.HasKey({key}));
  EXPECT_TRUE(p1.HasKey({ApplyMap(ren.mapping, key)}));
  EXPECT_EQ(p0.rows.min, p1.rows.min);
  EXPECT_EQ(p0.rows.max, p1.rows.max);
  EXPECT_EQ(p0.keys.size(), p1.keys.size());
  EXPECT_EQ(p0.domains.size(), p1.domains.size());
}

// --- expression-level checkers ---------------------------------------------

TEST(PlanPropsTest, ImpliesBasics) {
  ExprPtr x = eb::Col(1, DataType::kInt64);
  EXPECT_TRUE(Implies(eb::Gt(x, eb::Int(10)), eb::Gt(x, eb::Int(5))));
  EXPECT_FALSE(Implies(eb::Gt(x, eb::Int(5)), eb::Gt(x, eb::Int(10))));
  EXPECT_TRUE(Implies(eb::Eq(x, eb::Int(7)),
                      eb::And(eb::Ge(x, eb::Int(5)), eb::Le(x, eb::Int(10)))));
  EXPECT_TRUE(Implies(eb::Gt(x, eb::Int(5)), eb::IsNotNull(x)))
      << "a satisfied comparison proves non-NULL";
  // Vacuous and unprovable edges.
  EXPECT_TRUE(Implies(eb::Gt(x, eb::Int(5)), nullptr));
  EXPECT_TRUE(Implies(eb::Gt(x, eb::Int(5)), eb::True()));
  EXPECT_FALSE(Implies(nullptr, eb::Gt(x, eb::Int(5))));
}

TEST(PlanPropsTest, ImpliesUsesAmbientDomains) {
  ExprPtr x = eb::Col(1, DataType::kInt64);
  DomainMap ambient;
  ColumnDomain d;
  d.nullable = false;
  d.lo = {true, false, Value::Int64(1)};
  d.hi = {true, false, Value::Int64(10)};
  ambient[1] = d;
  // TRUE premise: only the ambient facts can prove the conclusion.
  EXPECT_TRUE(Implies(nullptr, eb::IsNotNull(x), &ambient));
  EXPECT_TRUE(Implies(nullptr, eb::Le(x, eb::Int(20)), &ambient));
  EXPECT_FALSE(Implies(nullptr, eb::Le(x, eb::Int(5)), &ambient));
}

TEST(PlanPropsTest, MonotonicityRecognizesPrunableShapes) {
  ExprPtr x = eb::Col(1, DataType::kInt64);
  ExprPtr y = eb::Col(2, DataType::kInt64);
  EXPECT_TRUE(IsMonotone(nullptr));
  EXPECT_TRUE(IsMonotone(eb::Gt(x, eb::Int(5))));
  EXPECT_TRUE(IsMonotone(eb::Between(x, eb::Int(1), eb::Int(9))));
  EXPECT_TRUE(IsMonotone(eb::In(x, {eb::Int(1), eb::Int(2)})));
  EXPECT_TRUE(IsMonotone(eb::IsNotNull(x)));
  // Conjuncts over different columns are fine (checked independently) ...
  EXPECT_TRUE(IsMonotone(eb::And(eb::Gt(x, eb::Int(5)), eb::Lt(y, eb::Int(3)))));
  // ... but a disjunction across columns is not decidable per column, and
  // arithmetic breaks the min/max argument entirely.
  EXPECT_FALSE(IsMonotone(eb::Or(eb::Gt(x, eb::Int(5)), eb::Lt(y, eb::Int(3)))));
  EXPECT_FALSE(IsMonotone(eb::Gt(eb::Add(x, eb::Int(1)), eb::Int(5))));
}

TEST(PlanPropsTest, TightenAndDropImpliedConjuncts) {
  ExprPtr x = eb::Col(1, DataType::kInt64);
  ExprPtr y = eb::Col(2, DataType::kInt64);
  DomainMap domains;
  TightenDomains(eb::Gt(x, eb::Int(5)), &domains);
  ASSERT_EQ(domains.count(1), 1u);
  EXPECT_FALSE(domains[1].nullable);
  EXPECT_TRUE(domains[1].lo.has && domains[1].lo.strict);

  DomainMap ambient;
  ColumnDomain d;
  d.nullable = false;
  d.lo = {true, false, Value::Int64(1)};
  d.hi = {true, false, Value::Int64(10)};
  ambient[1] = d;
  std::vector<ExprPtr> conjuncts = {eb::IsNotNull(x), eb::Le(x, eb::Int(20)),
                                    eb::Gt(y, eb::Int(0))};
  std::vector<ExprPtr> kept = DropImpliedConjuncts(conjuncts, ambient);
  ASSERT_EQ(kept.size(), 1u) << "two conjuncts are implied by the domain";
  EXPECT_EQ(kept[0].get(), conjuncts[2].get()) << "order/identity preserved";
}

TEST(PlanPropsTest, PropsToStringMentionsKeysAndRows) {
  PlanContext ctx;
  PropertyDerivation d;
  std::string s = PropsToString(d.Derive(Items(&ctx).Build()));
  EXPECT_NE(s.find("keys="), std::string::npos) << s;
  EXPECT_NE(s.find("rows="), std::string::npos) << s;
}

// --- semantic verifier: one negative test per tag ---------------------------

TEST(SemanticVerifierTest, AcceptsValidPlans) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  b.Filter(eb::Gt(b.Ref("i_brand_id"), eb::Int(5)));
  b.Aggregate({"i_brand_id"},
              {{"s", AggFunc::kSum, b.Ref("i_item_sk"), nullptr, false}});
  SemanticVerifier v;
  FUSIONDB_EXPECT_OK(v.Verify(b.Build(), "test"));
  EXPECT_EQ(v.plans_verified(), 1);
}

TEST(SemanticVerifierTest, RejectsNonMonotonePruningFilter) {
  PlanContext ctx;
  PlanPtr scan = Sales(&ctx).Build();
  // x = x on the partition column is not a column-vs-literal atom, so its
  // truth over a partition is not decidable from the partition min/max.
  ExprPtr date = eb::Col(scan->schema().column(0));
  PlanPtr bad = WithPruning(scan, eb::Eq(date, date));
  SemanticVerifier v;
  ExpectTag(v.Verify(bad, "test"), "semantic-pruning-nonmonotone");

  // The monotone form on the same column passes.
  PlanPtr good = std::make_shared<FilterOp>(
      WithPruning(scan, eb::Gt(date, eb::Int(0))), eb::Gt(date, eb::Int(0)));
  FUSIONDB_EXPECT_OK(SemanticVerifier().Verify(good, "test"));
}

TEST(SemanticVerifierTest, RejectsUnenforcedPruningFilter) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  ExprPtr brand = b.Ref("i_brand_id");
  ExprPtr item_sk = b.Ref("i_item_sk");
  PlanPtr scan = b.Build();
  // A non-root scan claims pruning on i_brand_id > 5, but nothing above
  // enforces it: executing this plan would silently drop rows.
  PlanPtr pruned = WithPruning(scan, eb::Gt(brand, eb::Int(5)));
  PlanPtr bad =
      std::make_shared<FilterOp>(pruned, eb::Gt(item_sk, eb::Int(0)));
  SemanticVerifier v;
  ExpectTag(v.Verify(bad, "test"), "semantic-pruning-unimplied");

  // With the matching Filter above, the same pruning filter verifies.
  PlanPtr good =
      std::make_shared<FilterOp>(pruned, eb::Gt(brand, eb::Int(5)));
  FUSIONDB_EXPECT_OK(SemanticVerifier().Verify(good, "test"));
}

TEST(SemanticVerifierTest, RejectsImpossibleEnforceSingleRow) {
  PlanContext ctx;
  PlanBuilder two = PlanBuilder::Values(&ctx, {"x"}, {DataType::kInt64},
                                        {{Value::Int64(1)}, {Value::Int64(2)}});
  two.EnforceSingleRow();
  SemanticVerifier v;
  ExpectTag(v.Verify(two.Build(), "test"), "semantic-single-row-impossible");

  PlanBuilder one = PlanBuilder::Values(&ctx, {"x"}, {DataType::kInt64},
                                        {{Value::Int64(1)}});
  one.EnforceSingleRow();
  FUSIONDB_EXPECT_OK(SemanticVerifier().Verify(one.Build(), "test"));
}

TEST(SemanticVerifierTest, RejectsUnprovableKeyObligation) {
  PlanContext ctx;
  PlanPtr scan = Items(&ctx).Build();
  ColumnId item_sk = scan->schema().column(0).id;
  ColumnId brand = scan->schema().column(1).id;

  SemanticLedger ledger;
  ledger.AddKey(scan, {brand}, "test-rule");
  SemanticVerifier v;
  ExpectTag(v.CheckObligations(&ledger, "test"), "semantic-key-obligation");
  EXPECT_EQ(v.obligations_checked(), 1);
  EXPECT_TRUE(ledger.empty()) << "obligations are drained even on failure";

  ledger.AddKey(scan, {item_sk}, "test-rule");
  FUSIONDB_EXPECT_OK(v.CheckObligations(&ledger, "test"));
  // A null ledger is a no-op.
  FUSIONDB_EXPECT_OK(v.CheckObligations(nullptr, "test"));
}

TEST(SemanticVerifierTest, RejectsUnprovableFilterImplication) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  ExprPtr brand = b.Ref("i_brand_id");
  PlanPtr scan = b.Build();

  // The replace-instead-of-conjoin bug: a rule kept x > 5 claiming it
  // stands in for the dropped x > 10. It does not.
  SemanticLedger ledger;
  ledger.AddImplication(scan, eb::Gt(brand, eb::Int(5)),
                        eb::Gt(brand, eb::Int(10)), "test-rule");
  SemanticVerifier v;
  ExpectTag(v.CheckObligations(&ledger, "test"),
            "semantic-filter-implication");

  // The sound direction verifies.
  ledger.AddImplication(scan, eb::Gt(brand, eb::Int(10)),
                        eb::Gt(brand, eb::Int(5)), "test-rule");
  FUSIONDB_EXPECT_OK(v.CheckObligations(&ledger, "test"));
}

TEST(SemanticVerifierTest, RejectsBrokenCrossPlanConsumer) {
  PlanContext ctx;
  PlanPtr fused = Items(&ctx).Build();
  const Schema& schema = fused->schema();
  SemanticVerifier v;

  // Well-formed: identity mapping, no compensating filter.
  FUSIONDB_EXPECT_OK(v.VerifyConsumer(fused, nullptr, {}, schema, "test"));

  // Non-boolean compensating filter.
  ExpectTag(v.VerifyConsumer(fused, eb::Col(schema.column(1)), {}, schema,
                             "test"),
            "semantic-consumer-filter");

  // Mapping routes a member column to a column the fused plan lacks.
  ColumnMap broken;
  broken[schema.column(0).id] = 999999;
  ExpectTag(v.VerifyConsumer(fused, nullptr, broken, schema, "test"),
            "semantic-consumer-filter");
}

// --- consumers of the derived properties ------------------------------------

TEST(JoinOnKeysDerivedTest, CollapsesPrimaryKeySelfJoin) {
  PlanContext ctx;
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  PlanBuilder a = PlanBuilder::Scan(&ctx, item, {"i_item_sk", "i_brand_id"});
  PlanBuilder b =
      PlanBuilder::Scan(&ctx, item, {"i_item_sk", "i_manufact_id"});
  a.JoinOn(JoinType::kInner, b, {{"i_item_sk", "i_item_sk"}});
  PlanPtr plan = a.Build();
  QueryResult baseline = MustExecute(plan);

  // No Aggregate below either side: only the scan's derived primary key
  // justifies this collapse. Run with a ledger attached so the firing's
  // key obligation is recorded and re-proved.
  SemanticLedger ledger;
  ctx.set_semantics(&ledger);
  Optimizer optimizer{OptimizerOptions::Fused()};
  PlanPtr optimized = Unwrap(optimizer.Optimize(plan, &ctx));
  ctx.set_semantics(nullptr);
  EXPECT_EQ(CountTableScans(optimized, "item"), 1)
      << PlanToString(optimized);
  EXPECT_TRUE(ResultsEquivalent(baseline, MustExecute(optimized)));
}

TEST(CardinalityDerivedTest, KeyedGroupByEstimatesInputCardinality) {
  PlanContext ctx;
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  double n = static_cast<double>(item->num_rows());

  PlanBuilder keyed = Items(&ctx);
  keyed.Aggregate({"i_item_sk"},
                  {{"s", AggFunc::kSum, keyed.Ref("i_brand_id"), nullptr,
                    false}});
  CardinalityEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.Estimate(keyed.Build()).rows, n)
      << "grouping by a key: distinct count == input cardinality";

  PlanBuilder unkeyed = Items(&ctx);
  unkeyed.Aggregate({"i_brand_id"},
                    {{"s", AggFunc::kSum, unkeyed.Ref("i_item_sk"), nullptr,
                      false}});
  CardEstimate estimate = estimator.Estimate(unkeyed.Build());
  EXPECT_GE(estimate.rows, 1.0);
  EXPECT_LT(estimate.rows, n / 2)
      << "non-key grouping keeps the sqrt prior";
}

// --- end to end: every TPC-DS query under every mode, semantics on ----------

TEST(SemanticSweepTest, AllQueriesAllModesVerify) {
  const Catalog& catalog = SharedTpcds();
  StatsFeedback feedback;
  struct ModeCase {
    const char* name;
    OptimizerOptions options;
  };
  const ModeCase modes[] = {
      {"baseline", OptimizerOptions::Baseline()},
      {"fused", OptimizerOptions::Fused()},
      {"spooling", OptimizerOptions::Spooling()},
      {"adaptive", OptimizerOptions::Adaptive(&feedback)},
  };
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    for (const ModeCase& mode : modes) {
      PlanContext ctx;
      SemanticLedger ledger;
      ctx.set_semantics(&ledger);  // activates the semantic tier
      PlanPtr plan = Unwrap(q.build(catalog, &ctx));
      Optimizer optimizer{mode.options};
      Result<PlanPtr> optimized = optimizer.Optimize(plan, &ctx);
      ASSERT_TRUE(optimized.ok())
          << q.name << " under " << mode.name << ": "
          << optimized.status().ToString();
      EXPECT_TRUE(ledger.empty())
          << q.name << " under " << mode.name
          << ": the optimizer must drain every recorded obligation";
    }
  }
}

}  // namespace
}  // namespace fusiondb
