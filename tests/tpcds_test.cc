// TPC-DS substrate: generator determinism, schema/cardinality sanity,
// partitioning, and that every benchmark query builds and returns sensible
// results.
#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::SharedTpcds;
using testutil::Unwrap;

TEST(TpcdsDatagenTest, AllTablesPresent) {
  const Catalog& catalog = SharedTpcds();
  for (const char* name :
       {"date_dim", "time_dim", "item", "store", "customer",
        "customer_address", "household_demographics", "reason", "web_site",
        "warehouse", "store_sales", "store_returns", "web_sales",
        "web_returns", "catalog_sales"}) {
    EXPECT_TRUE(catalog.GetTable(name).ok()) << name;
  }
}

TEST(TpcdsDatagenTest, RowCountsScale) {
  const Catalog& small = SharedTpcds(0.003);
  const Catalog& large = SharedTpcds(0.01);
  int64_t small_ss = Unwrap(small.GetTable("store_sales"))->num_rows();
  int64_t large_ss = Unwrap(large.GetTable("store_sales"))->num_rows();
  EXPECT_GT(large_ss, small_ss);
  // Facts scale linearly; dates are calendar-fixed.
  EXPECT_EQ(Unwrap(small.GetTable("date_dim"))->num_rows(),
            Unwrap(large.GetTable("date_dim"))->num_rows());
}

TEST(TpcdsDatagenTest, Deterministic) {
  Catalog a;
  Catalog b;
  tpcds::TpcdsOptions options;
  options.scale = 0.003;
  ASSERT_TRUE(tpcds::BuildTpcdsCatalog(options, &a).ok());
  ASSERT_TRUE(tpcds::BuildTpcdsCatalog(options, &b).ok());
  PlanContext ctx;
  PlanPtr pa = ScanOp::Make(&ctx, Unwrap(a.GetTable("store_sales")),
                            {"ss_item_sk", "ss_sales_price"});
  PlanPtr pb = ScanOp::Make(&ctx, Unwrap(b.GetTable("store_sales")),
                            {"ss_item_sk", "ss_sales_price"});
  EXPECT_TRUE(ResultsEquivalent(MustExecute(pa), MustExecute(pb)));
}

TEST(TpcdsDatagenTest, FactTablesDatePartitioned) {
  const Catalog& catalog = SharedTpcds();
  for (const char* fact : {"store_sales", "store_returns", "web_sales",
                           "web_returns", "catalog_sales"}) {
    TablePtr t = Unwrap(catalog.GetTable(fact));
    EXPECT_GE(t->partitions().size(), 50u)
        << fact << " should be partitioned monthly over ~6 years";
    EXPECT_GE(t->partition_column(), 0) << fact;
  }
  // Dimensions are a single partition.
  EXPECT_EQ(Unwrap(catalog.GetTable("item"))->partitions().size(), 1u);
}

TEST(TpcdsDatagenTest, DateDimMonthSeqMatchesPaperLiterals) {
  // The paper's Q65 filter is d_month_seq BETWEEN 1212 AND 1223 — that must
  // select exactly the twelve months of 2001.
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, Unwrap(catalog.GetTable("date_dim")),
                                    {"d_year", "d_month_seq"});
  b.Filter(eb::Between(b.Ref("d_month_seq"), eb::Int(1212), eb::Int(1223)));
  b.Aggregate({"d_year"},
              {{"days", AggFunc::kCountStar, nullptr, nullptr, false}});
  QueryResult r = MustExecute(b.Build());
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.At(0, 0), Value::Int64(2001));
  EXPECT_EQ(r.At(0, 1), Value::Int64(365));
}

TEST(TpcdsDatagenTest, ForeignKeysLandInDimensions) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanBuilder ss = PlanBuilder::Scan(&ctx, Unwrap(catalog.GetTable(
                                               "store_sales")),
                                     {"ss_item_sk"});
  PlanBuilder item = PlanBuilder::Scan(
      &ctx, Unwrap(catalog.GetTable("item")), {"i_item_sk"});
  ss.JoinOn(JoinType::kInner, item, {{"ss_item_sk", "i_item_sk"}});
  ss.Aggregate({}, {{"matched", AggFunc::kCountStar, nullptr, nullptr,
                     false}});
  QueryResult joined = MustExecute(ss.Build());
  int64_t total = Unwrap(catalog.GetTable("store_sales"))->num_rows();
  // ss_item_sk has no NULLs and always lands in item.
  EXPECT_EQ(joined.At(0, 0), Value::Int64(total));
}

TEST(TpcdsQueriesTest, RegistryLookup) {
  EXPECT_EQ(tpcds::Queries().size(), 18u);
  EXPECT_TRUE(tpcds::QueryByName("q65").ok());
  EXPECT_FALSE(tpcds::QueryByName("q999").ok());
  int applicable = 0;
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    applicable += q.fusion_applicable ? 1 : 0;
  }
  EXPECT_EQ(applicable, 9);
}

class TpcdsQueryBuildTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(TpcdsQueryBuildTest, BuildsOptimizesAndReturnsRows) {
  const Catalog& catalog = SharedTpcds();
  tpcds::TpcdsQuery q = Unwrap(tpcds::QueryByName(GetParam()));
  PlanContext ctx;
  PlanPtr plan = Unwrap(q.build(catalog, &ctx));
  PlanPtr optimized =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
  QueryResult r = MustExecute(optimized);
  // Every benchmark query must produce at least one row at test scale —
  // otherwise the comparison exercises nothing.
  EXPECT_GT(r.num_rows(), 0) << GetParam();
}

std::vector<std::string> AllNames() {
  std::vector<std::string> names;
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) names.push_back(q.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, TpcdsQueryBuildTest,
                         ::testing::ValuesIn(AllNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace fusiondb
