// Morsel-driven parallel execution: (a) every TPC-DS query returns the
// same results at parallelism 1, 2 and 8 under both optimizer
// configurations, (b) all additive ExecMetrics are thread-count-invariant,
// and (c) the ThreadPool/ParallelFor primitive behaves (work coverage,
// error propagation, zero-thread degenerate pool).
//
// This suite carries the ctest label "parallel" so it can be run alone
// under ThreadSanitizer: cmake -DFUSIONDB_SANITIZE=thread, then
// `ctest -L parallel`.
#include <atomic>
#include <numeric>

#include "plan/spool.h"
#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::SharedTpcds;
using testutil::Unwrap;

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  Status st = pool.ParallelFor(kN, [&](size_t worker, size_t index) {
    EXPECT_LT(worker, pool.num_workers());
    hits[index].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  FUSIONDB_EXPECT_OK(st);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroThreadPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1u);
  int64_t sum = 0;
  Status st = pool.ParallelFor(100, [&](size_t worker, size_t index) {
    EXPECT_EQ(worker, 0u);  // only the caller participates
    sum += static_cast<int64_t>(index);
    return Status::OK();
  });
  FUSIONDB_EXPECT_OK(st);
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  Status st = pool.ParallelFor(0, [&](size_t, size_t) {
    called = true;
    return Status::OK();
  });
  FUSIONDB_EXPECT_OK(st);
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesFirstError) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  Status st = pool.ParallelFor(1000, [&](size_t, size_t index) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (index == 7) return Status::Internal("morsel 7 failed");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("morsel 7 failed"), std::string::npos);
  // The error stops further claims: not all 1000 morsels should run (the
  // bound is loose — workers already past the flag check may finish one).
  EXPECT_LE(executed.load(), 1000);
}

/// All additive metrics; peak_hash_bytes is excluded (the peak legitimately
/// depends on how much partial state is live at once).
std::vector<int64_t> AdditiveMetrics(const ExecMetrics& m) {
  return {m.bytes_scanned,   m.rows_scanned,       m.partitions_scanned,
          m.partitions_pruned, m.rows_produced,
          m.spool_bytes_written, m.spool_bytes_read};
}

/// Runs every TPC-DS query under `options` at parallelism 1, 2 and 8 and
/// checks results and additive metrics are identical across thread counts.
void CheckThreadCountInvariance(const OptimizerOptions& options) {
  const Catalog& catalog = SharedTpcds(0.01);
  for (const tpcds::TpcdsQuery& query : tpcds::Queries()) {
    SCOPED_TRACE(query.name);
    PlanContext ctx;
    PlanPtr plan = Unwrap(query.build(catalog, &ctx));
    PlanPtr optimized = Unwrap(Optimizer(options).Optimize(plan, &ctx));
    QueryResult serial = Unwrap(ExecutePlan(optimized, {.chunk_size = 1024}));
    for (size_t parallelism : {2, 8}) {
      SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
      QueryResult parallel =
          Unwrap(ExecutePlan(optimized, {.chunk_size = 1024, .parallelism = parallelism}));
      EXPECT_TRUE(ResultsEquivalent(serial, parallel))
          << "results diverge at parallelism " << parallelism;
      EXPECT_EQ(AdditiveMetrics(serial.metrics()),
                AdditiveMetrics(parallel.metrics()))
          << "metrics diverge at parallelism " << parallelism;
    }
  }
}

TEST(ParallelExec, TpcdsBaselinePlansThreadCountInvariant) {
  CheckThreadCountInvariance(OptimizerOptions::Baseline());
}

TEST(ParallelExec, TpcdsFusedPlansThreadCountInvariant) {
  CheckThreadCountInvariance(OptimizerOptions::Fused());
}

TEST(ParallelExec, ScanStreamsChunksInPartitionOrder) {
  // A bare scan (no order-destroying operators above): the parallel path
  // must deliver rows in exactly the serial order, not just the same set.
  const Catalog& catalog = SharedTpcds(0.01);
  TablePtr table = Unwrap(catalog.GetTable("store_sales"));
  std::vector<std::string> names;
  for (const TableColumn& c : table->columns()) names.push_back(c.name);
  PlanContext ctx;
  PlanBuilder scan = PlanBuilder::Scan(&ctx, table, names);
  PlanPtr plan = scan.Build();
  QueryResult serial = Unwrap(ExecutePlan(plan, {.chunk_size = 512}));
  QueryResult parallel = Unwrap(ExecutePlan(plan, {.chunk_size = 512, .parallelism = 4}));
  EXPECT_TRUE(ResultsEqualOrdered(serial, parallel));
  EXPECT_EQ(serial.metrics().bytes_scanned, parallel.metrics().bytes_scanned);
}

TEST(ParallelExec, PartitionPruningUnaffectedByParallelism) {
  // A pruned scan must count the same pruned/scanned partitions and charge
  // the same bytes regardless of which worker skips which morsel.
  const Catalog& catalog = SharedTpcds(0.01);
  TablePtr table = Unwrap(catalog.GetTable("store_sales"));
  PlanContext ctx;
  PlanBuilder scan =
      PlanBuilder::Scan(&ctx, table, {"ss_sold_date_sk", "ss_net_profit"});
  ExprPtr pred = Expr::MakeCompare(
      CompareOp::kLt, scan.Ref("ss_sold_date_sk"),
      Expr::MakeLiteral(Value::Int64(2451000)));
  scan.Filter(pred);
  PlanPtr plan = Unwrap(
      Optimizer(OptimizerOptions::Baseline()).Optimize(scan.Build(), &ctx));
  QueryResult serial = Unwrap(ExecutePlan(plan, {.chunk_size = 1024}));
  QueryResult parallel = Unwrap(ExecutePlan(plan, {.chunk_size = 1024, .parallelism = 8}));
  ASSERT_GT(serial.metrics().partitions_pruned, 0)
      << "test premise: the predicate must prune something";
  EXPECT_TRUE(ResultsEquivalent(serial, parallel));
  EXPECT_EQ(AdditiveMetrics(serial.metrics()),
            AdditiveMetrics(parallel.metrics()));
}

TEST(ParallelExec, SpooledPlanSafeUnderParallelism) {
  // Regression test for ExecContext::GetSpool, which mutated the spool map
  // without a lock: a spooled plan whose consumers sit inside parallel
  // regions could race the lookup-or-create against the driver. Run under
  // ThreadSanitizer via `ctest -L parallel` (this suite's label) to catch
  // the race itself; result equivalence guards the functional path.
  PlanContext ctx;
  TablePtr ss = Unwrap(SharedTpcds(0.01).GetTable("store_sales"));
  PlanBuilder agg =
      PlanBuilder::Scan(&ctx, ss, {"ss_store_sk", "ss_list_price"});
  agg.Aggregate({"ss_store_sk"}, {{"total", AggFunc::kSum,
                                   agg.Ref("ss_list_price"), nullptr, false}});
  PlanPtr shared_child = agg.Build();
  PlanBuilder left =
      PlanBuilder::From(&ctx, std::make_shared<SpoolOp>(1, shared_child));
  PlanBuilder right =
      PlanBuilder::From(&ctx, std::make_shared<SpoolOp>(1, shared_child));
  left.CrossJoin(right);
  PlanPtr plan = left.Build();
  QueryResult serial = Unwrap(ExecutePlan(plan));
  QueryResult parallel = Unwrap(ExecutePlan(plan, {.parallelism = 4}));
  EXPECT_TRUE(ResultsEquivalent(serial, parallel));
  EXPECT_EQ(AdditiveMetrics(serial.metrics()),
            AdditiveMetrics(parallel.metrics()));
}

TEST(ParallelExec, AutoParallelismExecutes) {
  // parallelism = 0 resolves to hardware_concurrency; results must agree
  // with serial whatever that resolves to on this host.
  const Catalog& catalog = SharedTpcds(0.01);
  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName("q65"));
  PlanContext ctx;
  PlanPtr plan = Unwrap(query.build(catalog, &ctx));
  PlanPtr fused =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
  QueryResult serial = Unwrap(ExecutePlan(fused));
  QueryResult autop = Unwrap(ExecutePlan(fused, {.parallelism = 0}));
  EXPECT_TRUE(ResultsEquivalent(serial, autop));
  EXPECT_EQ(serial.metrics().bytes_scanned, autop.metrics().bytes_scanned);
}

}  // namespace
}  // namespace fusiondb
