// Fuse() over aggregations and MarkDistinct (Sections III.E and III.F):
// mask tightening, aggregate reuse through the mapping, compensating
// COUNT(*) guards for non-scalar group-bys, and the guarded MarkDistinct
// construction — all validated by executing the reconstructions.
#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::FuseAndCheck;
using testutil::SharedTpcds;
using testutil::Unwrap;

PlanBuilder Items(PlanContext* ctx) {
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  return PlanBuilder::Scan(
      ctx, item, {"i_item_sk", "i_brand_id", "i_category_id", "i_color",
                  "i_size", "i_current_price"});
}

TEST(FuseAggregateTest, PaperExampleFilterVsMask) {
  // G1 = GroupBy{a}, x := SUM(b) over Filter(c = 1)(T)
  // G2 = GroupBy{a}, y := AVG(b) FILTER (d = 1) over T
  // Fusing yields masked aggregates plus a compensating count for G1.
  PlanContext ctx;
  PlanBuilder g1 = Items(&ctx);
  g1.Filter(eb::Eq(g1.Ref("i_color"), eb::Str("red")));
  g1.Aggregate({"i_category_id"},
               {{"x", AggFunc::kSum, g1.Ref("i_brand_id"), nullptr, false}});
  PlanBuilder g2 = Items(&ctx);
  g2.Aggregate({"i_category_id"},
               {{"y", AggFunc::kAvg, g2.Ref("i_brand_id"),
                 eb::Eq(g2.Ref("i_size"), eb::Str("medium")), false}});
  FuseResult fused = FuseAndCheck(&ctx, g1.Build(), g2.Build());
  // G1 needs a comp-count guard (its side filtered); G2 read everything.
  EXPECT_FALSE(IsTrueLiteral(fused.left_filter));
  EXPECT_TRUE(IsTrueLiteral(fused.right_filter));
  const auto& agg = Cast<AggregateOp>(*fused.plan);
  // x (masked), y (masked), plus the compensating count for the left side.
  EXPECT_EQ(agg.aggregates().size(), 3u);
  EXPECT_EQ(agg.aggregates()[2].func, AggFunc::kCountStar);
  EXPECT_EQ(CountTableScans(fused.plan, "item"), 1);
}

TEST(FuseAggregateTest, IdenticalAggregatesReused) {
  PlanContext ctx;
  auto make = [&]() {
    PlanBuilder g = Items(&ctx);
    g.Aggregate({"i_category_id"},
                {{"mx", AggFunc::kMax, g.Ref("i_brand_id"), nullptr, false}});
    return g.Build();
  };
  PlanPtr p1 = make();
  PlanPtr p2 = make();
  FuseResult fused = FuseAndCheck(&ctx, p1, p2);
  EXPECT_TRUE(fused.Exact());
  const auto& agg = Cast<AggregateOp>(*fused.plan);
  // The second MAX maps onto the first; nothing is duplicated.
  EXPECT_EQ(agg.aggregates().size(), 1u);
  ColumnId mx2 = p2->schema().column(1).id;
  EXPECT_EQ(ApplyMap(fused.mapping, mx2), p1->schema().column(1).id);
}

TEST(FuseAggregateTest, GroupingMismatchFails) {
  PlanContext ctx;
  PlanBuilder g1 = Items(&ctx);
  g1.Aggregate({"i_category_id"},
               {{"c", AggFunc::kCountStar, nullptr, nullptr, false}});
  PlanBuilder g2 = Items(&ctx);
  g2.Aggregate({"i_color"},
               {{"c", AggFunc::kCountStar, nullptr, nullptr, false}});
  Fuser fuser(&ctx);
  EXPECT_FALSE(fuser.Fuse(g1.Build(), g2.Build()).has_value());
}

TEST(FuseAggregateTest, ScalarAggregatesNeedNoCompensation) {
  // Scalar aggregates always emit one row, so even with non-trivial L/R the
  // compensating filters stay TRUE (the V.B merge relies on this).
  PlanContext ctx;
  PlanBuilder g1 = Items(&ctx);
  g1.Filter(eb::Gt(g1.Ref("i_brand_id"), eb::Int(800)));
  g1.Aggregate({}, {{"c1", AggFunc::kCountStar, nullptr, nullptr, false}});
  PlanBuilder g2 = Items(&ctx);
  g2.Filter(eb::Lt(g2.Ref("i_brand_id"), eb::Int(100)));
  g2.Aggregate({}, {{"c2", AggFunc::kCountStar, nullptr, nullptr, false}});
  FuseResult fused = FuseAndCheck(&ctx, g1.Build(), g2.Build());
  EXPECT_TRUE(fused.Exact()) << "scalar compensations must be TRUE";
  const auto& agg = Cast<AggregateOp>(*fused.plan);
  ASSERT_EQ(agg.aggregates().size(), 2u);
  // Both counts carry their side's filter as a mask.
  EXPECT_NE(agg.aggregates()[0].mask, nullptr);
  EXPECT_NE(agg.aggregates()[1].mask, nullptr);
}

TEST(FuseAggregateTest, GroupDroppedWhenSideEmpty) {
  // The compensating count semantics: a category whose rows all fail one
  // side's filter must vanish from that side's reconstruction. Validated
  // end-to-end by FuseAndCheck; here we additionally pin the guard shape.
  PlanContext ctx;
  PlanBuilder g1 = Items(&ctx);
  g1.Filter(eb::Eq(g1.Ref("i_color"), eb::Str("red")));
  g1.Aggregate({"i_category_id"},
               {{"n", AggFunc::kCountStar, nullptr, nullptr, false}});
  PlanBuilder g2 = Items(&ctx);
  g2.Filter(eb::Eq(g2.Ref("i_color"), eb::Str("blue")));
  g2.Aggregate({"i_category_id"},
               {{"m", AggFunc::kCountStar, nullptr, nullptr, false}});
  FuseResult fused = FuseAndCheck(&ctx, g1.Build(), g2.Build());
  // comp guards have the shape count > 0.
  EXPECT_EQ(fused.left_filter->kind(), ExprKind::kCompare);
  EXPECT_EQ(fused.right_filter->kind(), ExprKind::kCompare);
}

TEST(FuseAggregateTest, DistinctFlagsMustMatchToReuse) {
  PlanContext ctx;
  PlanBuilder g1 = Items(&ctx);
  g1.Aggregate({}, {{"d", AggFunc::kCount, g1.Ref("i_brand_id"), nullptr,
                     /*distinct=*/true}});
  PlanBuilder g2 = Items(&ctx);
  g2.Aggregate({}, {{"p", AggFunc::kCount, g2.Ref("i_brand_id"), nullptr,
                     /*distinct=*/false}});
  FuseResult fused = FuseAndCheck(&ctx, g1.Build(), g2.Build());
  const auto& agg = Cast<AggregateOp>(*fused.plan);
  // Same function and argument but different distinct-ness: two aggregates.
  EXPECT_EQ(agg.aggregates().size(), 2u);
}

// --- III.F MarkDistinct -------------------------------------------------------

TEST(FuseMarkDistinctTest, ExactChildrenChainDirectly) {
  PlanContext ctx;
  auto make = [&]() {
    PlanBuilder b = Items(&ctx);
    b.MarkDistinct("m", {"i_brand_id"});
    return b.Build();
  };
  PlanPtr p1 = make();
  PlanPtr p2 = make();
  FuseResult fused = FuseAndCheck(&ctx, p1, p2);
  EXPECT_TRUE(fused.Exact());
  // Exact fusion: two chained MarkDistincts, no guard projection.
  EXPECT_EQ(CountOps(fused.plan, OpKind::kMarkDistinct), 2);
  EXPECT_EQ(CountOps(fused.plan, OpKind::kProject), 0);
}

TEST(FuseMarkDistinctTest, GuardColumnsForFilteredSides) {
  // The paper's III.F construction: different filters below the
  // MarkDistincts require guard columns appended to the distinct sets so
  // each marker tracks "first seen within my side's rows".
  PlanContext ctx;
  PlanBuilder b1 = Items(&ctx);
  b1.Filter(eb::Gt(b1.Ref("i_brand_id"), eb::Int(300)));
  b1.MarkDistinct("m1", {"i_category_id"});
  PlanBuilder b2 = Items(&ctx);
  b2.Filter(eb::Lt(b2.Ref("i_brand_id"), eb::Int(700)));
  b2.MarkDistinct("m2", {"i_category_id"});
  FuseResult fused = FuseAndCheck(&ctx, b1.Build(), b2.Build());
  EXPECT_FALSE(fused.Exact());
  EXPECT_EQ(CountOps(fused.plan, OpKind::kMarkDistinct), 2);
  // Guard projections were inserted.
  EXPECT_GE(CountOps(fused.plan, OpKind::kProject), 1);
  // And the distinct sets grew by the guard column.
  const auto& outer = Cast<MarkDistinctOp>(*fused.plan);
  EXPECT_EQ(outer.distinct_columns().size(), 2u);
}

TEST(FuseMarkDistinctTest, SkipsMarkDistinctOnMismatchedRoot) {
  // III.G: MarkDistinct only appends a column, so fusing MD(X) with Y can
  // skip the MD, fuse X with Y, and re-add the MD on top.
  PlanContext ctx;
  PlanBuilder b1 = Items(&ctx);
  b1.MarkDistinct("m", {"i_brand_id"});
  PlanPtr p2 = Items(&ctx).Build();
  FuseResult fused = FuseAndCheck(&ctx, b1.Build(), p2);
  EXPECT_TRUE(fused.Exact());
  EXPECT_EQ(CountOps(fused.plan, OpKind::kMarkDistinct), 1);
}

TEST(FuseMarkDistinctTest, LoweredDistinctAggregatesFuse) {
  // End-to-end III.E + III.F: two scalar distinct-aggregates over different
  // buckets, lowered onto MarkDistinct, then fused (the Q28 pattern).
  PlanContext ctx;
  auto make = [&](int64_t lo, int64_t hi) {
    PlanBuilder b = Items(&ctx);
    b.Filter(eb::Between(b.Ref("i_brand_id"), eb::Int(lo), eb::Int(hi)));
    b.MarkDistinct("md", {"i_category_id"});
    b.Aggregate({}, {{"cd", AggFunc::kCount, b.Ref("i_category_id"),
                      b.Ref("md"), false}});
    return b.Build();
  };
  PlanPtr p1 = make(1, 400);
  PlanPtr p2 = make(300, 900);
  FuseResult fused = FuseAndCheck(&ctx, p1, p2);
  EXPECT_TRUE(fused.Exact());  // scalar aggregates
  EXPECT_EQ(CountTableScans(fused.plan, "item"), 1);
}

}  // namespace
}  // namespace fusiondb
