// Expression binding and evaluation: three-valued logic, vectorized
// kernels, the two-chunk pair evaluator, and type errors.
#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "expr/expr_builder.h"

namespace fusiondb {
namespace {

using namespace eb;  // NOLINT

/// A two-column chunk: a(int64) = [1, 2, NULL, 4], b(float64) = [.5, NULL,
/// 2.5, 4.0], s(string) = ["x","y","z",NULL].
Chunk TestChunk() {
  Chunk c = Chunk::Empty({DataType::kInt64, DataType::kFloat64,
                          DataType::kString});
  c.columns[0].AppendInt(1);
  c.columns[0].AppendInt(2);
  c.columns[0].AppendNull();
  c.columns[0].AppendInt(4);
  c.columns[1].AppendDouble(0.5);
  c.columns[1].AppendNull();
  c.columns[1].AppendDouble(2.5);
  c.columns[1].AppendDouble(4.0);
  c.columns[2].AppendString("x");
  c.columns[2].AppendString("y");
  c.columns[2].AppendString("z");
  c.columns[2].AppendNull();
  return c;
}

Schema TestSchema() {
  return Schema({{10, "a", DataType::kInt64},
                 {11, "b", DataType::kFloat64},
                 {12, "s", DataType::kString}});
}

Column Eval(const ExprPtr& e) {
  auto bound = BindExpr(e, TestSchema());
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return bound->EvalAll(TestChunk());
}

ExprPtr A() { return Col(10, DataType::kInt64); }
ExprPtr B() { return Col(11, DataType::kFloat64); }
ExprPtr S() { return Col(12, DataType::kString); }

TEST(EvalTest, ColumnRefAndLiteral) {
  Column a = Eval(A());
  EXPECT_EQ(a.GetValue(0), Value::Int64(1));
  EXPECT_TRUE(a.IsNull(2));
  Column lit = Eval(Int(9));
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(lit.IntAt(i), 9);
}

TEST(EvalTest, BindingFailsOnUnknownColumn) {
  auto bound = BindExpr(Col(99, DataType::kInt64), TestSchema());
  EXPECT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kPlanError);
}

TEST(EvalTest, ComparisonsWithNulls) {
  Column lt = Eval(Lt(A(), Int(3)));
  EXPECT_TRUE(lt.BoolAt(0));
  EXPECT_TRUE(lt.BoolAt(1));
  EXPECT_TRUE(lt.IsNull(2));  // NULL < 3 => NULL
  EXPECT_FALSE(lt.BoolAt(3));
}

TEST(EvalTest, MixedNumericComparison) {
  // a = b compares int64 against float64: 4 == 4.0.
  Column eq = Eval(Eq(A(), B()));
  EXPECT_FALSE(eq.BoolAt(0));
  EXPECT_TRUE(eq.IsNull(1));
  EXPECT_TRUE(eq.IsNull(2));
  EXPECT_TRUE(eq.BoolAt(3));
}

TEST(EvalTest, StringComparison) {
  Column ge = Eval(Ge(S(), Str("y")));
  EXPECT_FALSE(ge.BoolAt(0));
  EXPECT_TRUE(ge.BoolAt(1));
  EXPECT_TRUE(ge.BoolAt(2));
  EXPECT_TRUE(ge.IsNull(3));
}

TEST(EvalTest, Arithmetic) {
  Column add = Eval(Add(A(), Int(10)));
  EXPECT_EQ(add.IntAt(0), 11);
  EXPECT_TRUE(add.IsNull(2));
  Column mul = Eval(Mul(A(), B()));  // promotes to float64
  EXPECT_DOUBLE_EQ(mul.DoubleAt(0), 0.5);
  EXPECT_DOUBLE_EQ(mul.DoubleAt(3), 16.0);
  // Division always yields float64 and NULL on zero divisor.
  Column div = Eval(Div(A(), Sub(A(), A())));
  EXPECT_TRUE(div.IsNull(0));
  Column div2 = Eval(Div(Int(7), Int(2)));
  EXPECT_DOUBLE_EQ(div2.DoubleAt(0), 3.5);
}

TEST(EvalTest, KleeneAndOr) {
  ExprPtr null_bool = Lt(A(), Int(0));  // NULL on row 2
  // AND: FALSE dominates NULL.
  Column a1 = Eval(And(False(), null_bool));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(a1.IsValid(i));
    EXPECT_FALSE(a1.BoolAt(i));
  }
  // AND: TRUE AND NULL => NULL.
  Column a2 = Eval(And(True(), null_bool));
  EXPECT_TRUE(a2.IsNull(2));
  EXPECT_FALSE(a2.BoolAt(0));
  // OR: TRUE dominates NULL.
  Column o1 = Eval(Or(True(), null_bool));
  EXPECT_TRUE(o1.BoolAt(2));
  // OR: FALSE OR NULL => NULL.
  Column o2 = Eval(Or(False(), null_bool));
  EXPECT_TRUE(o2.IsNull(2));
}

TEST(EvalTest, NotAndIsNull) {
  Column n = Eval(Not(Lt(A(), Int(2))));
  EXPECT_FALSE(n.BoolAt(0));
  EXPECT_TRUE(n.IsNull(2));
  Column is_null = Eval(IsNull(A()));
  EXPECT_FALSE(is_null.BoolAt(0));
  EXPECT_TRUE(is_null.BoolAt(2));
  Column is_not_null = Eval(IsNotNull(A()));
  EXPECT_TRUE(is_not_null.BoolAt(0));
  EXPECT_FALSE(is_not_null.BoolAt(2));
}

TEST(EvalTest, CaseSelectsFirstTrueArm) {
  ExprPtr e = Case({{Lt(A(), Int(2)), Str("small")},
                    {Lt(A(), Int(3)), Str("mid")}},
                   Str("big"));
  Column c = Eval(e);
  EXPECT_EQ(c.StringAt(0), "small");
  EXPECT_EQ(c.StringAt(1), "mid");
  EXPECT_EQ(c.StringAt(2), "big");  // NULL when => not matched
  EXPECT_EQ(c.StringAt(3), "big");
}

TEST(EvalTest, InListThreeValued) {
  Column in = Eval(In(A(), {Int(1), Int(4)}));
  EXPECT_TRUE(in.BoolAt(0));
  EXPECT_FALSE(in.BoolAt(1));
  EXPECT_TRUE(in.IsNull(2));  // NULL operand
  EXPECT_TRUE(in.BoolAt(3));
  // Non-matching with a NULL item => NULL.
  Column in2 = Eval(In(A(), {Int(99), NullOf(DataType::kInt64)}));
  EXPECT_TRUE(in2.IsNull(0));
}

TEST(EvalTest, BetweenBuilder) {
  Column b = Eval(Between(A(), Int(2), Int(4)));
  EXPECT_FALSE(b.BoolAt(0));
  EXPECT_TRUE(b.BoolAt(1));
  EXPECT_TRUE(b.IsNull(2));
  EXPECT_TRUE(b.BoolAt(3));
}

TEST(EvalTest, EvalFilterTreatsNullAsFail) {
  auto bound = BindExpr(Lt(A(), Int(3)), TestSchema());
  ASSERT_TRUE(bound.ok());
  // Rows 0 and 1 are TRUE; row 2 is NULL (fails the filter); row 3 is FALSE.
  SelVector keep = bound->EvalFilter(TestChunk());
  EXPECT_EQ(keep.indexes(), (std::vector<uint32_t>{0, 1}));
}

TEST(EvalTest, RowAndColumnPathsAgree) {
  // The row-wise interpreter (used by join residuals) and the vectorized
  // kernels must agree on every row.
  std::vector<ExprPtr> exprs = {
      And(Lt(A(), Int(4)), Gt(B(), Dbl(0.4))),
      Or(IsNull(A()), Eq(S(), Str("z"))),
      CaseWhen(Gt(A(), Int(1)), Add(A(), Int(1)), Int(0)),
      In(S(), {Str("x"), Str("nope")}),
  };
  Chunk chunk = TestChunk();
  for (const ExprPtr& e : exprs) {
    auto bound = BindExpr(e, TestSchema());
    ASSERT_TRUE(bound.ok());
    Column vec = bound->EvalAll(chunk);
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      EXPECT_EQ(vec.GetValue(r), bound->EvalRow(chunk, r))
          << e->ToString() << " row " << r;
    }
  }
}

TEST(EvalTest, EvalRowPairSplitsAtBoundary) {
  Chunk left = Chunk::Empty({DataType::kInt64});
  left.columns[0].AppendInt(7);
  Chunk right = Chunk::Empty({DataType::kInt64});
  right.columns[0].AppendInt(7);
  right.columns[0].AppendInt(8);
  Schema combined({{1, "l", DataType::kInt64}, {2, "r", DataType::kInt64}});
  auto bound = BindExpr(Eq(Col(1, DataType::kInt64), Col(2, DataType::kInt64)),
                        combined);
  ASSERT_TRUE(bound.ok());
  Value eq = bound->EvalRowPair(left, 0, right, 0, 1);
  EXPECT_TRUE(eq.bool_value());
  Value ne = bound->EvalRowPair(left, 0, right, 1, 1);
  EXPECT_FALSE(ne.bool_value());
}

}  // namespace
}  // namespace fusiondb
