// Spooling: the SpoolOp executor (materialize once, stream to all
// consumers) and the SpoolCommonSubexpressions pass.
#include <gtest/gtest.h>

#include "optimizer/spool_rule.h"
#include "plan/spool.h"
#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::SharedTpcds;
using testutil::Unwrap;

PlanBuilder Sales(PlanContext* ctx) {
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));
  return PlanBuilder::Scan(
      ctx, ss, {"ss_store_sk", "ss_item_sk", "ss_quantity", "ss_list_price"});
}

TEST(SpoolExecTest, SharedChildEvaluatedOnce) {
  PlanContext ctx;
  // One aggregation consumed twice through a shared spool.
  PlanBuilder agg = Sales(&ctx);
  agg.Aggregate({"ss_store_sk"}, {{"total", AggFunc::kSum,
                                   agg.Ref("ss_list_price"), nullptr, false}});
  PlanPtr shared_child = agg.Build();
  PlanPtr consumer_a = std::make_shared<SpoolOp>(1, shared_child);
  PlanPtr consumer_b = std::make_shared<SpoolOp>(1, shared_child);
  PlanBuilder left = PlanBuilder::From(&ctx, consumer_a);
  PlanBuilder right = PlanBuilder::From(&ctx, consumer_b);
  // Cross join the two consumers; if the child ran twice, bytes double.
  left.CrossJoin(right);
  QueryResult r = MustExecute(left.Build());
  // One scan's worth of bytes only.
  PlanBuilder once = Sales(&ctx);
  once.Aggregate({"ss_store_sk"},
                 {{"t", AggFunc::kSum, once.Ref("ss_list_price"), nullptr,
                   false}});
  QueryResult single = MustExecute(once.Build());
  EXPECT_EQ(r.metrics().bytes_scanned, single.metrics().bytes_scanned);
  EXPECT_GT(r.metrics().spool_bytes_written, 0);
  // Written once, read twice.
  EXPECT_EQ(r.metrics().spool_bytes_read,
            2 * r.metrics().spool_bytes_written);
  EXPECT_EQ(r.num_rows(), single.num_rows() * single.num_rows());
}

TEST(SpoolExecTest, RoundtripsAllTypes) {
  PlanContext ctx;
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  PlanBuilder b = PlanBuilder::Scan(
      &ctx, item, {"i_item_sk", "i_brand", "i_current_price"});
  PlanPtr plain = b.Build();
  PlanPtr spooled = std::make_shared<SpoolOp>(7, plain);
  EXPECT_TRUE(
      ResultsEquivalent(MustExecute(plain), MustExecute(spooled)));
}

TEST(SpoolRuleTest, DetectsDuplicatedSubtrees) {
  PlanContext ctx;
  auto make_cte = [&]() {
    PlanBuilder b = Sales(&ctx);
    b.Filter(eb::Gt(b.Ref("ss_quantity"), eb::Int(50)));
    b.Aggregate({"ss_store_sk"},
                {{"t", AggFunc::kSum, b.Ref("ss_list_price"), nullptr,
                  false}});
    return b;
  };
  PlanBuilder a = make_cte();
  PlanBuilder c = make_cte();
  ExprPtr a_store = a.Ref("ss_store_sk");
  a.Join(JoinType::kInner, c, eb::Eq(a_store, c.Ref("ss_store_sk")));
  PlanPtr plan = a.Build();
  PlanPtr spooled = Unwrap(SpoolCommonSubexpressions(plan, &ctx));
  ASSERT_NE(spooled, plan);
  EXPECT_EQ(CountOps(spooled, OpKind::kSpool), 2);
  QueryResult before = MustExecute(plan);
  QueryResult after = MustExecute(spooled);
  EXPECT_TRUE(ResultsEquivalent(before, after));
  EXPECT_LT(after.metrics().bytes_scanned, before.metrics().bytes_scanned);
}

TEST(SpoolRuleTest, DifferentSubtreesUntouched) {
  PlanContext ctx;
  PlanBuilder a = Sales(&ctx);
  a.Filter(eb::Gt(a.Ref("ss_quantity"), eb::Int(50)));
  a.Aggregate({}, {{"c1", AggFunc::kCountStar, nullptr, nullptr, false}});
  PlanBuilder b = Sales(&ctx);
  b.Filter(eb::Lt(b.Ref("ss_quantity"), eb::Int(20)));
  b.Aggregate({}, {{"c2", AggFunc::kCountStar, nullptr, nullptr, false}});
  a.CrossJoin(b);
  PlanPtr plan = a.Build();
  // Inexactly-fusable subtrees are fusion's territory, not spooling's.
  PlanPtr spooled = Unwrap(SpoolCommonSubexpressions(plan, &ctx));
  EXPECT_EQ(CountOps(spooled, OpKind::kSpool), 0);
}

TEST(SpoolRuleTest, SpoolingConfigEndToEnd) {
  // Every applicable TPC-DS query must agree across baseline, spooling and
  // fused configurations.
  const Catalog& catalog = SharedTpcds();
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (!q.fusion_applicable) continue;
    PlanContext ctx;
    PlanPtr plan = Unwrap(q.build(catalog, &ctx));
    QueryResult base = MustExecute(Unwrap(
        Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx)));
    QueryResult spool = MustExecute(Unwrap(
        Optimizer(OptimizerOptions::Spooling()).Optimize(plan, &ctx)));
    EXPECT_TRUE(ResultsEquivalent(base, spool)) << q.name;
  }
}

TEST(SpoolRuleTest, IdenticalCtesSpoolInQ65) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  tpcds::TpcdsQuery q = Unwrap(tpcds::QueryByName("q65"));
  PlanPtr plan = Unwrap(q.build(catalog, &ctx));
  PlanPtr spooled = Unwrap(
      Optimizer(OptimizerOptions::Spooling()).Optimize(plan, &ctx));
  EXPECT_GE(CountOps(spooled, OpKind::kSpool), 2);
  // The shared CTE's fact scan happens once.
  QueryResult rs = MustExecute(spooled);
  QueryResult rb = MustExecute(Unwrap(
      Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx)));
  EXPECT_LT(rs.metrics().bytes_scanned, rb.metrics().bytes_scanned);
}

}  // namespace
}  // namespace fusiondb
