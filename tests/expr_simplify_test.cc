// Simplification, absorption, contradiction detection, fingerprints and
// column remapping — the expression machinery the fusion rules depend on.
#include <gtest/gtest.h>

#include "expr/column_map.h"
#include "expr/expr_builder.h"
#include "expr/simplifier.h"

namespace fusiondb {
namespace {

using namespace eb;  // NOLINT

ExprPtr C(ColumnId id) { return Col(id, DataType::kInt64); }

TEST(SimplifyTest, ConstantFolding) {
  EXPECT_TRUE(Simplify(Gt(Int(3), Int(2)))->IsLiteralBool(true));
  EXPECT_TRUE(Simplify(Eq(Int(3), Int(2)))->IsLiteralBool(false));
  ExprPtr sum = Simplify(Add(Int(3), Int(4)));
  ASSERT_EQ(sum->kind(), ExprKind::kLiteral);
  EXPECT_EQ(sum->literal(), Value::Int64(7));
  EXPECT_TRUE(Simplify(Not(False()))->IsLiteralBool(true));
  // NULL propagation folds too.
  EXPECT_TRUE(Simplify(Gt(NullOf(DataType::kInt64), Int(1)))->IsLiteralNull());
  EXPECT_TRUE(Simplify(IsNull(NullOf(DataType::kInt64)))->IsLiteralBool(true));
}

TEST(SimplifyTest, BooleanIdentities) {
  ExprPtr p = Gt(C(1), Int(5));
  EXPECT_TRUE(ExprEquivalent(Simplify(And(p, True())), p));
  EXPECT_TRUE(Simplify(And(p, False()))->IsLiteralBool(false));
  EXPECT_TRUE(Simplify(Or(p, True()))->IsLiteralBool(true));
  EXPECT_TRUE(ExprEquivalent(Simplify(Or(p, False())), p));
  EXPECT_TRUE(ExprEquivalent(Simplify(Not(Not(p))), p));
}

TEST(SimplifyTest, FlattensAndDedupes) {
  ExprPtr p = Gt(C(1), Int(5));
  ExprPtr q = Lt(C(2), Int(9));
  ExprPtr nested = And(And(p, q), And(p, q));
  ExprPtr s = Simplify(nested);
  ASSERT_EQ(s->kind(), ExprKind::kAnd);
  EXPECT_EQ(s->children().size(), 2u);
}

TEST(SimplifyTest, Idempotent) {
  ExprPtr e = And(Gt(C(1), Int(5)), Or(Lt(C(2), Int(3)), Eq(C(3), Int(0))));
  ExprPtr once = Simplify(e);
  ExprPtr twice = Simplify(once);
  EXPECT_EQ(once, twice) << "Simplify must reach a fixpoint in one pass";
}

TEST(SimplifyTest, AbsorptionCollapsesFusionMaskChains) {
  // b1 AND (b1 OR b2) AND (b1 OR b2 OR b3)  ==>  b1, even when b1 is itself
  // a conjunction that the flattener splits apart (the exact shape repeated
  // pairwise aggregate fusion produces for Q09's masks).
  ExprPtr b1 = Between(C(1), Int(1), Int(20));
  ExprPtr b2 = Between(C(1), Int(21), Int(40));
  ExprPtr b3 = Between(C(1), Int(41), Int(60));
  ExprPtr chain = And({b1, Or(b1, b2), Or({b1, b2, b3})});
  ExprPtr s = Simplify(chain);
  EXPECT_TRUE(ExprEquivalent(s, Simplify(b1)))
      << "got: " << s->ToString();
}

TEST(SimplifyTest, DualAbsorptionUnderOr) {
  ExprPtr p = Gt(C(1), Int(5));
  ExprPtr q = Lt(C(2), Int(3));
  // p OR (p AND q) => p.
  ExprPtr s = Simplify(Or(p, And(p, q)));
  EXPECT_TRUE(ExprEquivalent(s, p)) << s->ToString();
}

TEST(SimplifyTest, CaseArmPruning) {
  ExprPtr e = Case({{False(), Int(1)}, {True(), Int(2)}}, Int(3));
  ExprPtr s = Simplify(e);
  ASSERT_EQ(s->kind(), ExprKind::kLiteral);
  EXPECT_EQ(s->literal(), Value::Int64(2));
}

TEST(ContradictionTest, DisjointRanges) {
  // The IV.D shortcut case: BETWEEN buckets that cannot overlap.
  ExprPtr both = And(Between(C(1), Int(1), Int(20)),
                     Between(C(1), Int(21), Int(40)));
  EXPECT_TRUE(IsContradiction(both));
  ExprPtr overlap = And(Between(C(1), Int(1), Int(20)),
                        Between(C(1), Int(15), Int(40)));
  EXPECT_FALSE(IsContradiction(overlap));
}

TEST(ContradictionTest, ConflictingEqualities) {
  EXPECT_TRUE(IsContradiction(And(Eq(C(1), Int(3)), Eq(C(1), Int(4)))));
  EXPECT_FALSE(IsContradiction(And(Eq(C(1), Int(3)), Eq(C(2), Int(4)))));
  ExprPtr s = Col(9, DataType::kString);
  EXPECT_TRUE(IsContradiction(And(Eq(s, Str("a")), Eq(s, Str("b")))));
  EXPECT_FALSE(IsContradiction(And(Eq(s, Str("a")), Eq(s, Str("a")))));
}

TEST(ContradictionTest, NegatedConjunct) {
  ExprPtr p = Gt(C(1), Int(5));
  EXPECT_TRUE(IsContradiction(And(p, Not(p))));
}

TEST(ContradictionTest, EqualityOutsideRange) {
  EXPECT_TRUE(IsContradiction(And(Eq(C(1), Int(100)), Lt(C(1), Int(10)))));
  EXPECT_TRUE(IsContradiction(And(Gt(C(1), Int(5)), Lt(C(1), Int(5)))));
  EXPECT_FALSE(IsContradiction(And(Ge(C(1), Int(5)), Le(C(1), Int(5)))));
}

TEST(ContradictionTest, ConservativeOnOpaquePredicates) {
  // Unprovable contradictions must return false, never a wrong true.
  EXPECT_FALSE(IsContradiction(Gt(C(1), C(2))));
  EXPECT_FALSE(IsContradiction(And(Gt(C(1), C(2)), Lt(C(1), C(2)))));
}

TEST(FingerprintTest, CommutativityAndOrientation) {
  ExprPtr a = C(1);
  ExprPtr b = C(2);
  EXPECT_TRUE(ExprEquivalent(Eq(a, b), Eq(b, a)));
  EXPECT_TRUE(ExprEquivalent(Add(a, b), Add(b, a)));
  EXPECT_TRUE(ExprEquivalent(Lt(a, b), Gt(b, a)));
  EXPECT_FALSE(ExprEquivalent(Lt(a, b), Lt(b, a)));
  EXPECT_TRUE(ExprEquivalent(And(Gt(a, Int(1)), Lt(b, Int(2))),
                             And(Lt(b, Int(2)), Gt(a, Int(1)))));
  EXPECT_FALSE(ExprEquivalent(Sub(a, b), Sub(b, a)));
}

TEST(ColumnMapTest, RemapsReferences) {
  ColumnMap m{{2, 7}};
  ExprPtr e = And(Gt(C(2), Int(1)), Lt(C(3), Int(5)));
  ExprPtr mapped = ApplyMap(m, e);
  std::vector<ColumnId> cols;
  CollectColumns(mapped, &cols);
  std::sort(cols.begin(), cols.end());
  EXPECT_EQ(cols, (std::vector<ColumnId>{3, 7}));
  // Unmapped expressions are shared, not copied.
  ExprPtr untouched = Lt(C(3), Int(5));
  EXPECT_EQ(ApplyMap(m, untouched), untouched);
  EXPECT_EQ(ApplyMap(m, ColumnId{2}), 7);
  EXPECT_EQ(ApplyMap(m, ColumnId{9}), 9);
}

TEST(ColumnMapTest, MergeDetectsConflicts) {
  ColumnMap base{{1, 2}};
  EXPECT_TRUE(MergeMaps(&base, {{3, 4}}));
  EXPECT_TRUE(MergeMaps(&base, {{1, 2}}));
  EXPECT_FALSE(MergeMaps(&base, {{1, 9}}));
}

TEST(ConjunctTest, SplitAndCombine) {
  ExprPtr p = Gt(C(1), Int(5));
  ExprPtr q = Lt(C(2), Int(3));
  std::vector<ExprPtr> parts;
  SplitConjuncts(And(And(p, True()), q), &parts);
  EXPECT_EQ(parts.size(), 2u);
  EXPECT_TRUE(IsTrueLiteral(CombineConjuncts({})));
  EXPECT_EQ(CombineConjuncts({p}), p);
  EXPECT_TRUE(ExprEquivalent(MakeConjunction(p, q), And(p, q)));
  EXPECT_TRUE(ExprEquivalent(MakeConjunction(p, True()), p));
}

}  // namespace
}  // namespace fusiondb
