// Failure injection: malformed plans, unbound columns, type errors and
// misconfigurations must surface as Status errors, never crashes.
#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::SharedTpcds;
using testutil::Unwrap;

PlanBuilder Items(PlanContext* ctx) {
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  return PlanBuilder::Scan(ctx, item, {"i_item_sk", "i_brand_id"});
}

TEST(FailureTest, FilterOnUnboundColumn) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  // Reference a column id that exists nowhere.
  PlanPtr bad = std::make_shared<FilterOp>(
      b.Build(), eb::Gt(eb::Col(99999, DataType::kInt64), eb::Int(0)));
  auto result = ExecutePlan(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPlanError);
}

TEST(FailureTest, NonBooleanFilterPredicate) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  PlanPtr bad = std::make_shared<FilterOp>(b.Build(), b.Ref("i_brand_id"));
  auto result = ExecutePlan(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(FailureTest, NullPredicate) {
  PlanContext ctx;
  PlanPtr bad = std::make_shared<FilterOp>(Items(&ctx).Build(), nullptr);
  EXPECT_FALSE(ExecutePlan(bad).ok());
}

TEST(FailureTest, AggregateOverForeignGroupColumn) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  PlanBuilder other = Items(&ctx);
  // Group by a column belonging to a different scan instance.
  PlanPtr bad = std::make_shared<AggregateOp>(
      b.Build(), std::vector<ColumnId>{other.Col("i_brand_id").id},
      std::vector<AggregateItem>{});
  auto result = ExecutePlan(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPlanError);
}

TEST(FailureTest, AggregateMissingArgument) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  PlanPtr bad = std::make_shared<AggregateOp>(
      b.Build(), std::vector<ColumnId>{},
      std::vector<AggregateItem>{
          {ctx.NextId(), "s", AggFunc::kSum, nullptr, nullptr, false}});
  EXPECT_FALSE(ExecutePlan(bad).ok());
}

TEST(FailureTest, UnionInputMappingMismatch) {
  PlanContext ctx;
  PlanBuilder a = Items(&ctx);
  PlanBuilder b = Items(&ctx);
  // Map a union output onto a column the child does not produce.
  PlanPtr bad = std::make_shared<UnionAllOp>(
      std::vector<PlanPtr>{a.Build(), b.Build()},
      Schema({{ctx.NextId(), "x", DataType::kInt64}}),
      std::vector<std::vector<ColumnId>>{{a.Col("i_item_sk").id}, {987654}});
  auto result = ExecutePlan(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPlanError);
}

TEST(FailureTest, ApplyRefusesToExecute) {
  PlanContext ctx;
  PlanBuilder outer = Items(&ctx);
  PlanBuilder inner = Items(&ctx);
  ColumnId corr = inner.Col("i_brand_id").id;
  PlanBuilder sub = inner;
  sub.Aggregate({}, {{"a", AggFunc::kAvg, inner.Ref("i_item_sk"), nullptr,
                      false}});
  outer.Apply(sub, {{"i_brand_id", corr}});
  auto result = ExecutePlan(outer.Build());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPlanError);
}

TEST(FailureTest, NegativeLimit) {
  PlanContext ctx;
  PlanPtr bad = std::make_shared<LimitOp>(Items(&ctx).Build(), -1);
  EXPECT_FALSE(ExecutePlan(bad).ok());
}

TEST(FailureTest, SortOnMissingColumn) {
  PlanContext ctx;
  PlanPtr bad = std::make_shared<SortOp>(
      Items(&ctx).Build(), std::vector<SortKey>{{424242, true}});
  EXPECT_FALSE(ExecutePlan(bad).ok());
}

TEST(FailureTest, ValuesRowArityMismatch) {
  PlanContext ctx;
  PlanPtr bad = std::make_shared<ValuesOp>(
      Schema({{ctx.NextId(), "x", DataType::kInt64}}),
      std::vector<std::vector<Value>>{{Value::Int64(1), Value::Int64(2)}});
  EXPECT_FALSE(ExecutePlan(bad).ok());
}

TEST(FailureTest, DatagenRejectsBadScale) {
  Catalog catalog;
  tpcds::TpcdsOptions options;
  options.scale = 0.0;
  EXPECT_FALSE(tpcds::BuildTpcdsCatalog(options, &catalog).ok());
  options.scale = -1.0;
  EXPECT_FALSE(tpcds::BuildTpcdsCatalog(options, &catalog).ok());
}

TEST(FailureTest, OptimizerSurvivesMalformedPlans) {
  // The optimizer must pass malformed-but-typed plans through (or error),
  // never crash; the executor then reports the problem.
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  PlanPtr bad = std::make_shared<FilterOp>(
      b.Build(), eb::Gt(eb::Col(99999, DataType::kInt64), eb::Int(0)));
  auto optimized = Optimizer(OptimizerOptions::Fused()).Optimize(bad, &ctx);
  if (optimized.ok()) {
    EXPECT_FALSE(ExecutePlan(*optimized).ok());
  }
}

TEST(FailureTest, CrossJoinWithConditionRejected) {
  PlanContext ctx;
  PlanBuilder a = Items(&ctx);
  PlanBuilder b = Items(&ctx);
  PlanPtr bad = std::make_shared<JoinOp>(
      JoinType::kCross, a.Build(), b.Build(),
      eb::Eq(a.Ref("i_item_sk"), b.Ref("i_item_sk")));
  auto result = ExecutePlan(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPlanError);
}

}  // namespace
}  // namespace fusiondb
