// Value, Column, Chunk and Schema behaviour.
#include <gtest/gtest.h>

#include "types/chunk.h"
#include "types/schema.h"

namespace fusiondb {
namespace {

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_TRUE(Value::Null(DataType::kInt64).is_null());
  EXPECT_EQ(Value::Int64(5).int_value(), 5);
  EXPECT_DOUBLE_EQ(Value::Float64(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Date(123).int_value(), 123);
}

TEST(ValueTest, StructuralEquality) {
  EXPECT_EQ(Value::Int64(3), Value::Int64(3));
  EXPECT_NE(Value::Int64(3), Value::Int64(4));
  // NULLs compare equal structurally (grouping semantics).
  EXPECT_EQ(Value::Null(DataType::kInt64), Value::Null(DataType::kString));
  EXPECT_NE(Value::Null(DataType::kInt64), Value::Int64(0));
  // Int and date share a physical class.
  EXPECT_EQ(Value::Date(9), Value::Int64(9));
  // Int and double do not.
  EXPECT_NE(Value::Int64(1), Value::Float64(1.0));
}

TEST(ValueTest, CompareOrdersNullsFirst) {
  EXPECT_LT(Value::Null(DataType::kInt64).Compare(Value::Int64(-100)), 0);
  EXPECT_EQ(Value::Int64(2).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::Int64(3).Compare(Value::Int64(2)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  // Mixed numeric comparison promotes to double.
  EXPECT_EQ(Value::Int64(2).Compare(Value::Float64(2.0)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Float64(2.5)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Int64(7).Hash());
  EXPECT_EQ(Value::String("xy").Hash(), Value::String("xy").Hash());
  EXPECT_EQ(Value::Null(DataType::kInt64).Hash(),
            Value::Null(DataType::kFloat64).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null(DataType::kInt64).ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

TEST(ColumnTest, AppendAndRead) {
  Column c(DataType::kInt64);
  c.AppendInt(10);
  c.AppendNull();
  c.AppendInt(30);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.IntAt(0), 10);
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.GetValue(2), Value::Int64(30));
  EXPECT_EQ(c.GetValue(1), Value::Null(DataType::kInt64));
}

TEST(ColumnTest, AppendValueAcrossNumericClasses) {
  Column d(DataType::kFloat64);
  d.AppendValue(Value::Int64(3));  // promoted
  d.AppendValue(Value::Float64(1.5));
  EXPECT_DOUBLE_EQ(d.DoubleAt(0), 3.0);
  EXPECT_DOUBLE_EQ(d.NumericAt(1), 1.5);
}

TEST(ColumnTest, BulkAppendAndByteSize) {
  Column a(DataType::kInt64);
  a.AppendInt(1);
  a.AppendInt(2);
  Column b(DataType::kInt64);
  b.AppendInt(3);
  a.AppendColumn(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.IntAt(2), 3);
  EXPECT_EQ(a.ByteSize(), 24);

  Column s(DataType::kString);
  s.AppendString("abc");
  s.AppendString("de");
  EXPECT_EQ(s.ByteSize(), 5);
}

TEST(ChunkTest, RowOperations) {
  Chunk c = Chunk::Empty({DataType::kInt64, DataType::kString});
  EXPECT_EQ(c.num_rows(), 0u);
  c.columns[0].AppendInt(1);
  c.columns[1].AppendString("x");
  Chunk d = Chunk::Empty({DataType::kInt64, DataType::kString});
  d.AppendRowFrom(c, 0);
  d.AppendChunk(c);
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.columns[1].StringAt(1), "x");
}

TEST(SchemaTest, LookupByIdAndName) {
  Schema s({{1, "a", DataType::kInt64}, {7, "b", DataType::kString}});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.IndexOf(7), 1);
  EXPECT_EQ(s.IndexOf(99), -1);
  EXPECT_TRUE(s.Contains(1));
  auto found = s.FindByName("b");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id, 7);
  EXPECT_FALSE(s.FindByName("zz").ok());
  auto type = s.TypeOf(1);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, DataType::kInt64);
  EXPECT_FALSE(s.TypeOf(99).ok());
}

TEST(SchemaTest, AmbiguousNameRejected) {
  Schema s({{1, "a", DataType::kInt64}, {2, "a", DataType::kInt64}});
  EXPECT_FALSE(s.FindByName("a").ok());
}

}  // namespace
}  // namespace fusiondb
