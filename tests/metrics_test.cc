// Service-level metrics registry (src/obs/metrics.h, DESIGN.md §9.4):
// counter/gauge/histogram units, the log-linear bucket scheme, snapshot
// diffing, JSON/Prometheus exposition, thread-count-invariant totals under
// concurrent recording, the structured query log, and the server smoke
// check that the `fusiondb_server_*` counters reconcile exactly with the
// per-session attribution blocks of a deterministic SubmitBatch.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::SharedTpcds;
using testutil::Unwrap;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << "cannot open " << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// --- registry units ---------------------------------------------------------

TEST(MetricsRegistryTest, CounterAddAndSnapshot) {
  MetricsRegistry registry;
  MetricId c = registry.Counter("requests_total");
  ASSERT_TRUE(c.valid());
  registry.Add(c, 1);
  registry.Add(c, 41);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Counter("requests_total"), 42);
  EXPECT_EQ(snap.Counter("never_registered"), 0);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  MetricId a = registry.Counter("dup_total");
  MetricId b = registry.Counter("dup_total");
  EXPECT_EQ(a.index, b.index);
  registry.Add(a, 1);
  registry.Add(b, 2);
  EXPECT_EQ(registry.Snapshot().Counter("dup_total"), 3);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, InvalidIdIsNoOp) {
  MetricsRegistry registry;
  MetricId invalid;
  EXPECT_FALSE(invalid.valid());
  registry.Add(invalid, 7);
  registry.Record(invalid, 7);
  registry.GaugeSet(invalid, 7);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  MetricId g = registry.Gauge("queue_depth");
  registry.GaugeSet(g, 5);
  EXPECT_EQ(registry.Snapshot().Gauge("queue_depth"), 5);
  registry.GaugeAdd(g, -2);
  registry.GaugeAdd(g, 4);
  EXPECT_EQ(registry.Snapshot().Gauge("queue_depth"), 7);
  registry.GaugeSet(g, 0);
  EXPECT_EQ(registry.Snapshot().Gauge("queue_depth"), 0);
}

// --- log-linear buckets -----------------------------------------------------

TEST(MetricBucketTest, ExactBelowSixteenAndBoundsEnclose) {
  for (int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(MetricBucketIndex(v), v);
    EXPECT_EQ(MetricBucketLowerBound(static_cast<int32_t>(v)), v);
  }
  EXPECT_EQ(MetricBucketIndex(-5), 0);  // negatives clamp to bucket 0
  // Every value lands in a bucket whose [lower, upper] range encloses it,
  // across the whole int64 span the scheme serves.
  for (int64_t v : {16LL, 17LL, 31LL, 32LL, 1000LL, 4096LL, 1000000LL,
                    123456789LL, 1LL << 40, (1LL << 62) + 12345}) {
    int32_t idx = MetricBucketIndex(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, kMetricNumBuckets);
    EXPECT_LE(MetricBucketLowerBound(idx), v) << "value " << v;
    EXPECT_GE(MetricBucketUpperBound(idx), v) << "value " << v;
  }
  // Bucket index is monotonic in the value.
  int32_t prev = -1;
  for (int64_t v = 0; v < 100000; v = v < 100 ? v + 1 : v * 2) {
    int32_t idx = MetricBucketIndex(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(MetricsRegistryTest, HistogramStatsAndQuantiles) {
  MetricsRegistry registry;
  MetricId h = registry.Histogram("latency_us");
  for (int64_t v = 1; v <= 100; ++v) registry.Record(h, v);
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* hist = snap.Histogram("latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 100);
  EXPECT_EQ(hist->sum, 5050);
  EXPECT_EQ(hist->min, 1);
  EXPECT_EQ(hist->max, 100);
  // The scheme's relative error is bounded at 1/16, so p50 of 1..100 must
  // land within [47, 50] (bucket lower bounds only ever under-estimate).
  int64_t p50 = hist->ValueAtQuantile(0.50);
  EXPECT_GE(p50, 47);
  EXPECT_LE(p50, 50);
  EXPECT_EQ(hist->ValueAtQuantile(1.0), 100);
  EXPECT_GE(hist->ValueAtQuantile(0.0), 1);
}

TEST(MetricsRegistryTest, EmptyHistogramSnapshot) {
  MetricsRegistry registry;
  registry.Histogram("never_recorded");
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* hist = snap.Histogram("never_recorded");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 0);
  EXPECT_EQ(hist->min, 0);
  EXPECT_EQ(hist->max, 0);
  EXPECT_EQ(hist->ValueAtQuantile(0.99), 0);
}

// --- snapshot diff ----------------------------------------------------------

TEST(MetricsSnapshotTest, DiffSubtractsCountersKeepsGauges) {
  MetricsRegistry registry;
  MetricId c = registry.Counter("ops_total");
  MetricId g = registry.Gauge("depth");
  MetricId h = registry.Histogram("lat");
  registry.Add(c, 10);
  registry.GaugeSet(g, 3);
  registry.Record(h, 8);
  MetricsSnapshot base = registry.Snapshot();

  registry.Add(c, 5);
  registry.GaugeSet(g, 9);
  registry.Record(h, 8);
  registry.Record(h, 200);
  MetricsSnapshot now = registry.Snapshot();

  MetricsSnapshot diff = now.Diff(base);
  EXPECT_EQ(diff.Counter("ops_total"), 5);   // rate over the window
  EXPECT_EQ(diff.Gauge("depth"), 9);         // a gauge is a level
  const HistogramSnapshot* hd = diff.Histogram("lat");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, 2);
  EXPECT_EQ(hd->sum, 208);
  int64_t bucket_total = 0;
  for (int64_t b : hd->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 2);
}

TEST(MetricsSnapshotTest, DiffAgainstEmptyBaseIsIdentityForCounters) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("fresh_total"), 4);
  MetricsSnapshot now = registry.Snapshot();
  MetricsSnapshot diff = now.Diff(MetricsSnapshot{});
  EXPECT_EQ(diff.Counter("fresh_total"), 4);
}

// --- exposition -------------------------------------------------------------

TEST(MetricsExportTest, JsonCarriesSchemaVersionAndValues) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("a_total"), 3);
  registry.GaugeSet(registry.Gauge("b"), -2);
  registry.Record(registry.Histogram("c_us"), 100);
  std::string json = MetricsToJson(registry.Snapshot());
  EXPECT_TRUE(Contains(json, "\"schema_version\":1")) << json;
  EXPECT_TRUE(Contains(json, "\"a_total\":3")) << json;
  EXPECT_TRUE(Contains(json, "\"b\":-2")) << json;
  EXPECT_TRUE(Contains(json, "\"c_us\":{\"count\":1,\"sum\":100")) << json;
}

TEST(MetricsExportTest, PrometheusRendersFamiliesLabelsAndHistograms) {
  MetricsRegistry registry;
  MetricId t1 = registry.Counter("scan_bytes_total{table=\"a\"}");
  MetricId t2 = registry.Counter("scan_bytes_total{table=\"b\"}");
  registry.Add(t1, 10);
  registry.Add(t2, 20);
  registry.GaugeSet(registry.Gauge("depth"), 4);
  MetricId h = registry.Histogram("lat_us{mode=\"fused\"}");
  registry.Record(h, 3);
  registry.Record(h, 3);
  registry.Record(h, 500);
  std::string text = MetricsToPrometheus(registry.Snapshot());

  // One TYPE line per family, even with two labeled series.
  size_t first = text.find("# TYPE scan_bytes_total counter");
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find("# TYPE scan_bytes_total counter", first + 1),
            std::string::npos);
  EXPECT_TRUE(Contains(text, "scan_bytes_total{table=\"a\"} 10")) << text;
  EXPECT_TRUE(Contains(text, "scan_bytes_total{table=\"b\"} 20")) << text;
  EXPECT_TRUE(Contains(text, "# TYPE depth gauge")) << text;
  EXPECT_TRUE(Contains(text, "depth 4")) << text;
  // Histogram: embedded labels merge with le; buckets are cumulative and
  // finish at +Inf == _count.
  EXPECT_TRUE(Contains(text, "# TYPE lat_us histogram")) << text;
  EXPECT_TRUE(Contains(text, "lat_us_bucket{mode=\"fused\",le=\"3\"} 2"))
      << text;
  EXPECT_TRUE(Contains(text, "lat_us_bucket{mode=\"fused\",le=\"+Inf\"} 3"))
      << text;
  EXPECT_TRUE(Contains(text, "lat_us_sum{mode=\"fused\"} 506")) << text;
  EXPECT_TRUE(Contains(text, "lat_us_count{mode=\"fused\"} 3")) << text;
}

TEST(MetricsExportTest, WriteMetricsJsonFailsOnBadPath) {
  MetricsRegistry registry;
  Status st = WriteMetricsJson(registry.Snapshot(),
                               "/nonexistent-dir/metrics.json");
  EXPECT_FALSE(st.ok());
}

// --- concurrency: totals are thread-count-invariant -------------------------
//
// This test carries the `parallel` ctest label (tests/CMakeLists.txt), so
// the TSan configuration exercises the lock-free shard discipline:
// concurrent Add/Record on the same metric ids from many threads, with
// snapshots racing the recording, must be data-race-free and lose nothing.

TEST(MetricsRegistryTest, ConcurrentRecordingIsExactAcrossThreads) {
  MetricsRegistry registry;
  MetricId c = registry.Counter("work_total");
  MetricId h = registry.Histogram("work_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, c, h] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.Add(c, 1);
        registry.Record(h, i % 1024);
      }
    });
  }
  // Snapshots race the recorders; totals below are taken after the join.
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot racing = registry.Snapshot();
    EXPECT_LE(racing.Counter("work_total"),
              static_cast<int64_t>(kThreads) * kPerThread);
  }
  for (std::thread& t : threads) t.join();

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Counter("work_total"),
            static_cast<int64_t>(kThreads) * kPerThread);
  const HistogramSnapshot* hist = snap.Histogram("work_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->min, 0);
  EXPECT_EQ(hist->max, 1023);
  int64_t bucket_total = 0;
  for (int64_t b : hist->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hist->count);
}

TEST(MetricsRegistryTest, LateRegistrationRacesSnapshot) {
  MetricsRegistry registry;
  std::thread registrar([&registry] {
    for (int i = 0; i < 200; ++i) {
      MetricId id = registry.Counter("late_" + std::to_string(i) + "_total");
      registry.Add(id, 1);
    }
  });
  for (int i = 0; i < 50; ++i) registry.Snapshot();
  registrar.join();
  MetricsSnapshot snap = registry.Snapshot();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(snap.Counter("late_" + std::to_string(i) + "_total"), 1);
  }
}

// --- query log --------------------------------------------------------------

TEST(QueryLogTest, AppendsOneSchemaStampedLinePerEvent) {
  std::string path = testing::TempDir() + "metrics_test_query_log.jsonl";
  std::remove(path.c_str());
  {
    std::unique_ptr<QueryLog> log = Unwrap(QueryLog::Open(path, 0));
    QueryLogEvent event;
    event.session_id = 7;
    event.mode = "fused";
    event.fingerprint = "fp:abc";
    event.shared = true;
    event.consumers = 3;
    event.bytes_scanned = 111;
    FUSIONDB_EXPECT_OK(log->Append(event));
    event.session_id = 8;
    FUSIONDB_EXPECT_OK(log->Append(event));
    EXPECT_EQ(log->events(), 2);
  }
  std::string contents = ReadFile(path);
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), 2);
  EXPECT_TRUE(Contains(contents, "\"schema_version\":1")) << contents;
  EXPECT_TRUE(Contains(contents, "\"session_id\":7")) << contents;
  EXPECT_TRUE(Contains(contents, "\"session_id\":8")) << contents;
  EXPECT_TRUE(Contains(contents, "\"mode\":\"fused\"")) << contents;
  std::remove(path.c_str());
}

TEST(QueryLogTest, SlowThresholdAndProfilePath) {
  std::string path = testing::TempDir() + "metrics_test_slow.jsonl";
  std::remove(path.c_str());
  std::unique_ptr<QueryLog> log = Unwrap(QueryLog::Open(path, 10));
  EXPECT_FALSE(log->IsSlow(9999));    // 9.999 ms < 10 ms
  EXPECT_TRUE(log->IsSlow(10000));    // exactly the threshold
  EXPECT_TRUE(log->IsSlow(250000));
  EXPECT_EQ(log->SlowProfilePath(42), path + ".slow-42.json");
  std::unique_ptr<QueryLog> off = Unwrap(QueryLog::Open(path, 0));
  EXPECT_FALSE(off->IsSlow(INT64_MAX));  // slow_ms <= 0 disables capture
  std::remove(path.c_str());
}

TEST(QueryLogTest, OpenFailsOnBadPath) {
  EXPECT_FALSE(QueryLog::Open("/nonexistent-dir/q.jsonl", 0).ok());
}

// --- server smoke: counters reconcile with BatchReport ----------------------

TEST(MetricsServerTest, CountersReconcileWithDeterministicBatch) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery* query = nullptr;
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (q.fusion_applicable) {
      query = &q;
      break;
    }
  }
  ASSERT_NE(query, nullptr);

  std::string log_path = testing::TempDir() + "metrics_test_server.jsonl";
  std::remove(log_path.c_str());
  MetricsRegistry registry;
  std::unique_ptr<QueryLog> log = Unwrap(QueryLog::Open(log_path, 0));
  ServerOptions options;
  options.metrics = &registry;
  options.query_log = log.get();
  options.mode_label = "fused";
  SessionManager manager(options);

  constexpr int kClients = 6;
  std::vector<PlanContext> contexts(kClients);
  std::vector<PlanPtr> plans;
  for (int i = 0; i < kClients; ++i) {
    plans.push_back(Unwrap(query->build(catalog, &contexts[i])));
  }
  std::vector<SessionPtr> sessions = manager.SubmitBatch(plans);
  BatchReport report = manager.last_batch_report();
  MetricsSnapshot snap = registry.Snapshot();

  // Session counts: registry vs report vs submitted.
  EXPECT_EQ(snap.Counter("fusiondb_server_sessions_total"), kClients);
  EXPECT_EQ(snap.Counter("fusiondb_server_shared_sessions_total"),
            static_cast<int64_t>(report.shared_sessions));
  EXPECT_EQ(snap.Counter("fusiondb_server_solo_sessions_total"),
            static_cast<int64_t>(report.solo_sessions));
  EXPECT_EQ(snap.Counter("fusiondb_server_shared_groups_total"),
            static_cast<int64_t>(report.shared_groups));

  // Byte accounting: the physical-bytes counter equals the report, and the
  // attributed-bytes counter equals the sum over every session's sharing
  // block — the exact shares must re-add to the physical whole.
  EXPECT_EQ(snap.Counter("fusiondb_server_bytes_scanned_total"),
            report.bytes_scanned);
  int64_t attributed = 0;
  int64_t isolated = 0;
  for (const SessionPtr& session : sessions) {
    FUSIONDB_ASSERT_OK(session->Wait().status());
    attributed += session->sharing().attributed_bytes_scanned;
    isolated += session->sharing().isolated_bytes_scanned /
                session->sharing().consumers;
  }
  EXPECT_EQ(snap.Counter("fusiondb_server_attributed_bytes_total"),
            attributed);
  EXPECT_EQ(attributed, report.bytes_scanned);
  EXPECT_EQ(snap.Counter("fusiondb_server_isolated_bytes_total"), isolated);
  EXPECT_EQ(isolated, report.isolated_bytes_scanned);

  // Latency histograms: one observation per session in both series.
  const HistogramSnapshot* queue_wait =
      snap.Histogram("fusiondb_server_queue_wait_us");
  const HistogramSnapshot* execute =
      snap.Histogram("fusiondb_server_execute_us");
  ASSERT_NE(queue_wait, nullptr);
  ASSERT_NE(execute, nullptr);
  EXPECT_EQ(queue_wait->count, kClients);
  EXPECT_EQ(execute->count, kClients);
  EXPECT_GT(execute->max, 0);

  // Per-session timing accessors carry the same series.
  for (const SessionPtr& session : sessions) {
    EXPECT_GE(session->queue_wait_us(), 0);
    EXPECT_GT(session->execute_us(), 0);
  }

  // The query log saw every session exactly once.
  EXPECT_EQ(log->events(), kClients);
  std::string contents = ReadFile(log_path);
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), kClients);
  for (const SessionPtr& session : sessions) {
    EXPECT_TRUE(Contains(
        contents, "\"session_id\":" + std::to_string(session->id())))
        << contents;
  }
  std::remove(log_path.c_str());
}

// Exec-layer counters reconcile with the executed query's own metrics, and
// per-table scan attribution sums to the total.
TEST(MetricsExecTest, ExecCountersMatchQueryResult) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery& query = tpcds::Queries().front();
  PlanContext ctx;
  PlanPtr plan = Unwrap(query.build(catalog, &ctx));
  PlanPtr optimized =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
  MetricsRegistry registry;
  QueryResult result =
      Unwrap(ExecutePlan(optimized, {.metrics = &registry}));
  MetricsSnapshot snap = registry.Snapshot();

  EXPECT_EQ(snap.Counter("fusiondb_exec_queries_total"), 1);
  EXPECT_EQ(snap.Counter("fusiondb_exec_bytes_scanned_total"),
            result.metrics().bytes_scanned);
  EXPECT_EQ(snap.Counter("fusiondb_exec_rows_scanned_total"),
            result.metrics().rows_scanned);
  EXPECT_EQ(snap.Counter("fusiondb_exec_rows_produced_total"),
            result.num_rows());

  int64_t per_table = 0;
  for (const auto& c : snap.counters) {
    if (c.first.rfind("fusiondb_exec_table_bytes_scanned_total{", 0) == 0) {
      per_table += c.second;
    }
  }
  EXPECT_EQ(per_table, result.metrics().bytes_scanned);

  const HistogramSnapshot* wall =
      snap.Histogram("fusiondb_exec_query_wall_us");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, 1);
}

// Parallel execution records the same totals as serial — the per-table
// attribution is summed once on the driver from the merged shards.
TEST(MetricsExecTest, ExecCountersThreadCountInvariant) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery& query = tpcds::Queries().front();
  PlanContext ctx;
  PlanPtr plan = Unwrap(query.build(catalog, &ctx));
  PlanPtr optimized =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));

  auto run = [&](size_t parallelism) {
    MetricsRegistry registry;
    Unwrap(ExecutePlan(
        optimized, {.parallelism = parallelism, .metrics = &registry}));
    return registry.Snapshot();
  };
  MetricsSnapshot serial = run(1);
  MetricsSnapshot parallel = run(4);
  for (const auto& c : serial.counters) {
    EXPECT_EQ(parallel.Counter(c.first), c.second) << c.first;
  }
}

}  // namespace
}  // namespace fusiondb
