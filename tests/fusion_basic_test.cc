// Fuse() over scans, filters, projections and joins (Sections III.A-III.D).
// Every test checks the semantic contract by *executing* the
// reconstruction: P1 == Project(Filter_L(P)), P2 == Project_M(Filter_R(P)).
#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::FuseAndCheck;
using testutil::SharedTpcds;
using testutil::Unwrap;

PlanBuilder Items(PlanContext* ctx, std::vector<std::string> cols) {
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  return PlanBuilder::Scan(ctx, item, std::move(cols));
}

// --- III.A scans ------------------------------------------------------------

TEST(FuseScanTest, SameTableMergesColumns) {
  PlanContext ctx;
  // SELECT i_item_sk, i_brand FROM item  /  SELECT i_brand, i_size FROM item
  PlanPtr p1 = Items(&ctx, {"i_item_sk", "i_brand"}).Build();
  PlanPtr p2 = Items(&ctx, {"i_brand", "i_size"}).Build();
  FuseResult fused = FuseAndCheck(&ctx, p1, p2);
  EXPECT_TRUE(fused.Exact());
  // Fused scan reads the union of columns: sk, brand, size.
  EXPECT_EQ(fused.plan->schema().num_columns(), 3u);
  // P2's brand maps onto P1's brand; P2's size keeps its own id.
  ColumnId p2_brand = p2->schema().column(0).id;
  ColumnId p1_brand = p1->schema().column(1).id;
  EXPECT_EQ(ApplyMap(fused.mapping, p2_brand), p1_brand);
  EXPECT_EQ(CountTableScans(fused.plan, "item"), 1);
}

TEST(FuseScanTest, DifferentTablesFail) {
  PlanContext ctx;
  PlanPtr p1 = Items(&ctx, {"i_item_sk"}).Build();
  TablePtr store = Unwrap(SharedTpcds().GetTable("store"));
  PlanPtr p2 = PlanBuilder::Scan(&ctx, store, {"s_store_sk"}).Build();
  Fuser fuser(&ctx);
  EXPECT_FALSE(fuser.Fuse(p1, p2).has_value());
}

// --- III.B filters ----------------------------------------------------------

TEST(FuseFilterTest, DisjunctionWithCompensation) {
  // The paper's III.B example: same category, disjoint brand ranges.
  PlanContext ctx;
  PlanBuilder b1 = Items(&ctx, {"i_item_desc", "i_category", "i_brand_id"});
  b1.Filter(eb::And(eb::Eq(b1.Ref("i_category"), eb::Str("Music")),
                    eb::Gt(b1.Ref("i_brand_id"), eb::Int(800))));
  PlanBuilder b2 = Items(&ctx, {"i_item_desc", "i_category", "i_brand_id"});
  b2.Filter(eb::And(eb::Eq(b2.Ref("i_category"), eb::Str("Music")),
                    eb::Lt(b2.Ref("i_brand_id"), eb::Int(50))));
  FuseResult fused = FuseAndCheck(&ctx, b1.Build(), b2.Build());
  EXPECT_FALSE(fused.Exact());
  EXPECT_EQ(CountTableScans(fused.plan, "item"), 1);
  EXPECT_EQ(CountOps(fused.plan, OpKind::kFilter), 1);
}

TEST(FuseFilterTest, EquivalentFiltersStayExact) {
  PlanContext ctx;
  PlanBuilder b1 = Items(&ctx, {"i_item_sk", "i_brand_id"});
  b1.Filter(eb::Gt(b1.Ref("i_brand_id"), eb::Int(500)));
  PlanBuilder b2 = Items(&ctx, {"i_item_sk", "i_brand_id"});
  // Same predicate written with the operands flipped.
  b2.Filter(eb::Lt(eb::Int(500), b2.Ref("i_brand_id")));
  FuseResult fused = FuseAndCheck(&ctx, b1.Build(), b2.Build());
  EXPECT_TRUE(fused.Exact());
}

// --- III.C projections ------------------------------------------------------

TEST(FuseProjectTest, SharedExpressionsMapped) {
  // The paper's III.C example: i_brand_id + 1 computed in both inputs.
  PlanContext ctx;
  PlanBuilder b1 = Items(&ctx, {"i_brand_id"});
  b1.Project({{"brand_plus_one", eb::Add(b1.Ref("i_brand_id"), eb::Int(1))}});
  PlanBuilder b2 = Items(&ctx, {"i_brand_id"});
  b2.Project({{"x", eb::Add(b2.Ref("i_brand_id"), eb::Int(1))},
              {"y", eb::Str("new brand")}});
  PlanPtr p1 = b1.Build();
  PlanPtr p2 = b2.Build();
  FuseResult fused = FuseAndCheck(&ctx, p1, p2);
  EXPECT_TRUE(fused.Exact());
  // x maps onto brand_plus_one; y is added.
  ColumnId x = p2->schema().column(0).id;
  EXPECT_EQ(ApplyMap(fused.mapping, x), p1->schema().column(0).id);
  EXPECT_EQ(fused.plan->schema().num_columns(), 2u);
}

TEST(FuseProjectTest, CompensationColumnsPassedThrough) {
  // Projections over *different* filters: L/R reference a column the
  // projections drop; fusion must re-expose it so reconstruction works
  // (this is checked by executing the reconstruction).
  PlanContext ctx;
  PlanBuilder b1 = Items(&ctx, {"i_item_desc", "i_brand_id"});
  b1.Filter(eb::Gt(b1.Ref("i_brand_id"), eb::Int(700)));
  b1.Project({{"d1", b1.Ref("i_item_desc")}});
  PlanBuilder b2 = Items(&ctx, {"i_item_desc", "i_brand_id"});
  b2.Filter(eb::Lt(b2.Ref("i_brand_id"), eb::Int(100)));
  b2.Project({{"d2", b2.Ref("i_item_desc")}});
  FuseResult fused = FuseAndCheck(&ctx, b1.Build(), b2.Build());
  EXPECT_FALSE(fused.Exact());
}

// --- III.D joins ------------------------------------------------------------

TEST(FuseJoinTest, SameShapeJoinsFuse) {
  PlanContext ctx;
  // Build both join trees with per-side filters that differ.
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));
  auto make = [&](const char* size) {
    PlanBuilder sales = PlanBuilder::Scan(
        &ctx, ss, {"ss_item_sk", "ss_store_sk", "ss_quantity"});
    PlanBuilder item = Items(&ctx, {"i_item_sk", "i_size"});
    item.Filter(eb::Eq(item.Ref("i_size"), eb::Str(size)));
    sales.JoinOn(JoinType::kInner, item, {{"ss_item_sk", "i_item_sk"}});
    return sales.Build();
  };
  PlanPtr p1 = make("medium");
  PlanPtr p2 = make("large");
  FuseResult fused = FuseAndCheck(&ctx, p1, p2);
  EXPECT_FALSE(fused.Exact());
  EXPECT_EQ(CountTableScans(fused.plan, "store_sales"), 1);
  EXPECT_EQ(CountTableScans(fused.plan, "item"), 1);
}

TEST(FuseJoinTest, DifferentConditionsFail) {
  PlanContext ctx;
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));
  PlanBuilder a = PlanBuilder::Scan(&ctx, ss, {"ss_item_sk", "ss_store_sk"});
  PlanBuilder ai = Items(&ctx, {"i_item_sk"});
  a.JoinOn(JoinType::kInner, ai, {{"ss_item_sk", "i_item_sk"}});
  PlanBuilder b = PlanBuilder::Scan(&ctx, ss, {"ss_item_sk", "ss_store_sk"});
  PlanBuilder bi = Items(&ctx, {"i_item_sk"});
  // Join on a different column: conditions are not equivalent modulo M.
  b.JoinOn(JoinType::kInner, bi, {{"ss_store_sk", "i_item_sk"}});
  Fuser fuser(&ctx);
  EXPECT_FALSE(fuser.Fuse(a.Build(), b.Build()).has_value());
}

TEST(FuseJoinTest, SemiJoinRequiresExactRightFusion) {
  PlanContext ctx;
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));
  auto make = [&](ExprPtr right_filter) {
    PlanBuilder sales = PlanBuilder::Scan(&ctx, ss, {"ss_item_sk"});
    PlanBuilder item = Items(&ctx, {"i_item_sk", "i_brand_id"});
    if (right_filter != nullptr) {
      // Rebind the filter over this instance by name.
      item.Filter(eb::Gt(item.Ref("i_brand_id"), eb::Int(500)));
    }
    sales.Join(JoinType::kSemi, item,
               eb::Eq(sales.Ref("ss_item_sk"), item.Ref("i_item_sk")));
    return sales.Build();
  };
  // Identical right sides fuse.
  PlanPtr s1 = make(eb::True());
  PlanPtr s2 = make(eb::True());
  FuseResult ok = FuseAndCheck(&ctx, s1, s2);
  EXPECT_TRUE(ok.Exact());
  // Right sides with different filters would change semi-join semantics:
  // fusion must refuse.
  PlanPtr t1 = make(eb::True());
  PlanPtr t2 = make(nullptr);
  Fuser fuser(&ctx);
  EXPECT_FALSE(fuser.Fuse(t1, t2).has_value());
}

TEST(FuseJoinTest, CrossJoinTypeMismatchFails) {
  PlanContext ctx;
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));
  PlanBuilder a = PlanBuilder::Scan(&ctx, ss, {"ss_item_sk"});
  PlanBuilder ai = Items(&ctx, {"i_item_sk"});
  a.JoinOn(JoinType::kInner, ai, {{"ss_item_sk", "i_item_sk"}});
  PlanBuilder b = PlanBuilder::Scan(&ctx, ss, {"ss_item_sk"});
  PlanBuilder bi = Items(&ctx, {"i_item_sk"});
  b.Join(JoinType::kSemi, bi, eb::Eq(b.Ref("ss_item_sk"), bi.Ref("i_item_sk")));
  Fuser fuser(&ctx);
  EXPECT_FALSE(fuser.Fuse(a.Build(), b.Build()).has_value());
}

// --- III.G defaults and mismatched roots -------------------------------------

TEST(FuseDefaultTest, LimitAndSingleRow) {
  PlanContext ctx;
  PlanBuilder a = Items(&ctx, {"i_item_sk"});
  a.Limit(5);
  PlanBuilder b = Items(&ctx, {"i_item_sk"});
  b.Limit(5);
  Fuser fuser(&ctx);
  auto same = fuser.Fuse(a.Build(), b.Build());
  ASSERT_TRUE(same.has_value());
  EXPECT_TRUE(same->Exact());

  PlanBuilder c = Items(&ctx, {"i_item_sk"});
  c.Limit(7);
  EXPECT_FALSE(fuser.Fuse(a.Build(), c.Build()).has_value());
}

TEST(FuseMismatchTest, ManufacturedTrivialFilter) {
  PlanContext ctx;
  PlanBuilder filtered = Items(&ctx, {"i_item_sk", "i_brand_id"});
  filtered.Filter(eb::Gt(filtered.Ref("i_brand_id"), eb::Int(900)));
  PlanPtr plain = Items(&ctx, {"i_item_sk", "i_brand_id"}).Build();
  FuseResult fused = FuseAndCheck(&ctx, filtered.Build(), plain);
  // The filtered side is the restricted one; the plain side must be fully
  // reconstructible (R covers everything the trivial filter let through).
  EXPECT_TRUE(IsTrueLiteral(fused.right_filter));
  EXPECT_FALSE(IsTrueLiteral(fused.left_filter));
}

TEST(FuseMismatchTest, ManufacturedIdentityProjection) {
  PlanContext ctx;
  PlanBuilder projected = Items(&ctx, {"i_brand_id"});
  projected.Project({{"x", eb::Add(projected.Ref("i_brand_id"), eb::Int(1))}});
  PlanPtr plain = Items(&ctx, {"i_brand_id"}).Build();
  FuseResult fused = FuseAndCheck(&ctx, projected.Build(), plain);
  EXPECT_TRUE(fused.Exact());
}

}  // namespace
}  // namespace fusiondb
