// Aggregation executor: grouped/scalar aggregates, per-aggregate masks
// (Section III.E semantics), DISTINCT aggregates, window aggregation, and
// MarkDistinct (Section III.F semantics).
#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::Unwrap;

/// sales(grp, amount, flag): groups a/b/c; amount NULL on every 5th row.
TablePtr SalesTable() {
  static TablePtr t = [] {
    TableBuilder b("sales", {{"grp", DataType::kString},
                             {"amount", DataType::kInt64},
                             {"flag", DataType::kInt64}});
    const char* groups[] = {"a", "a", "b", "b", "b", "c"};
    for (int64_t i = 0; i < 60; ++i) {
      Value amount = (i % 5 == 4) ? Value::Null(DataType::kInt64)
                                  : Value::Int64(i % 10);
      EXPECT_TRUE(b.AppendRow({Value::String(groups[i % 6]), amount,
                               Value::Int64(i % 2)})
                      .ok());
    }
    return Unwrap(b.Build());
  }();
  return t;
}

PlanBuilder ScanSales(PlanContext* ctx) {
  return PlanBuilder::Scan(ctx, SalesTable(), {"grp", "amount", "flag"});
}

int64_t ScalarInt(const QueryResult& r, int col = 0) {
  EXPECT_EQ(r.num_rows(), 1);
  return r.At(0, col).int_value();
}

TEST(AggregateExecTest, ScalarCountSumAvgMinMax) {
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  b.Aggregate({}, {{"cnt", AggFunc::kCountStar, nullptr, nullptr, false},
                   {"cnt_amount", AggFunc::kCount, b.Ref("amount"), nullptr,
                    false},
                   {"total", AggFunc::kSum, b.Ref("amount"), nullptr, false},
                   {"mean", AggFunc::kAvg, b.Ref("amount"), nullptr, false},
                   {"lo", AggFunc::kMin, b.Ref("amount"), nullptr, false},
                   {"hi", AggFunc::kMax, b.Ref("amount"), nullptr, false}});
  QueryResult r = MustExecute(b.Build());
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.At(0, 0), Value::Int64(60));
  EXPECT_EQ(r.At(0, 1), Value::Int64(48));  // 12 NULL amounts skipped
  EXPECT_FALSE(r.At(0, 2).is_null());
  // AVG ignores NULLs: sum / 48.
  EXPECT_DOUBLE_EQ(r.At(0, 3).double_value(),
                   r.At(0, 2).AsDouble() / 48.0);
  EXPECT_EQ(r.At(0, 4), Value::Int64(0));
  EXPECT_EQ(r.At(0, 5), Value::Int64(8));  // amounts 9 always fall on NULLs
}

TEST(AggregateExecTest, ScalarOnEmptyInputReturnsOneRow) {
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  b.Filter(eb::Lt(b.Ref("amount"), eb::Int(-1)));
  b.Aggregate({}, {{"cnt", AggFunc::kCountStar, nullptr, nullptr, false},
                   {"total", AggFunc::kSum, b.Ref("amount"), nullptr, false}});
  QueryResult r = MustExecute(b.Build());
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.At(0, 0), Value::Int64(0));
  EXPECT_TRUE(r.At(0, 1).is_null());  // SUM of nothing is NULL
}

TEST(AggregateExecTest, GroupedCounts) {
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  b.Aggregate({"grp"},
              {{"cnt", AggFunc::kCountStar, nullptr, nullptr, false}});
  QueryResult r = MustExecute(b.Build());
  EXPECT_EQ(r.num_rows(), 3);
  int64_t total = 0;
  for (int64_t i = 0; i < 3; ++i) total += r.At(i, 1).int_value();
  EXPECT_EQ(total, 60);
}

TEST(AggregateExecTest, MasksSelectSubsets) {
  // The Athena (a, m) pairs: different masks over the same input — the
  // construct aggregate fusion compiles into.
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  ExprPtr even = eb::Eq(b.Ref("flag"), eb::Int(0));
  ExprPtr odd = eb::Eq(b.Ref("flag"), eb::Int(1));
  b.Aggregate({}, {{"cnt_even", AggFunc::kCountStar, nullptr, even, false},
                   {"cnt_odd", AggFunc::kCountStar, nullptr, odd, false},
                   {"cnt_all", AggFunc::kCountStar, nullptr, nullptr, false}});
  QueryResult r = MustExecute(b.Build());
  EXPECT_EQ(ScalarInt(r, 0), 30);
  EXPECT_EQ(ScalarInt(r, 1), 30);
  EXPECT_EQ(ScalarInt(r, 2), 60);
}

TEST(AggregateExecTest, MaskedGroupStillProducesRow) {
  // Paper III.E: "aggregations with masks return an aggregated row even if
  // all input rows have been discarded by the mask" — group rows exist for
  // any input row, masks only empty the aggregate.
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  ExprPtr never = eb::Lt(b.Ref("amount"), eb::Int(-5));
  b.Aggregate({"grp"}, {{"s", AggFunc::kSum, b.Ref("amount"), never, false}});
  QueryResult r = MustExecute(b.Build());
  EXPECT_EQ(r.num_rows(), 3);
  for (int64_t i = 0; i < 3; ++i) EXPECT_TRUE(r.At(i, 1).is_null());
}

TEST(AggregateExecTest, DistinctAggregates) {
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  b.Aggregate({}, {{"d", AggFunc::kCount, b.Ref("amount"), nullptr, true},
                   {"ds", AggFunc::kSum, b.Ref("amount"), nullptr, true}});
  QueryResult r = MustExecute(b.Build());
  // i%5==4 nulls out amounts 4 and 9, leaving {0,1,2,3,5,6,7,8}.
  EXPECT_EQ(ScalarInt(r, 0), 8);
  EXPECT_EQ(r.At(0, 1), Value::Int64(0 + 1 + 2 + 3 + 5 + 6 + 7 + 8));
}

TEST(AggregateExecTest, DistinctWithMask) {
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  ExprPtr small = eb::Lt(b.Ref("amount"), eb::Int(3));
  b.Aggregate({}, {{"d", AggFunc::kCount, b.Ref("amount"), small, true}});
  QueryResult r = MustExecute(b.Build());
  EXPECT_EQ(ScalarInt(r, 0), 3);  // {0, 1, 2}
}

TEST(AggregateExecTest, NullGroupKeyFormsItsOwnGroup) {
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  b.Aggregate({"amount"},
              {{"cnt", AggFunc::kCountStar, nullptr, nullptr, false}});
  QueryResult r = MustExecute(b.Build());
  // Amounts {0,1,2,3,5,6,7,8} plus the NULL group.
  EXPECT_EQ(r.num_rows(), 9);
}

TEST(WindowExecTest, PartitionedAggregatesBroadcast) {
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  b.Window({"grp"}, {{"grp_cnt", AggFunc::kCountStar, nullptr, nullptr,
                      false},
                     {"grp_avg", AggFunc::kAvg, b.Ref("amount"), nullptr,
                      false}});
  QueryResult r = MustExecute(b.Build());
  EXPECT_EQ(r.num_rows(), 60);  // windows never change cardinality
  // Every row of group "a" carries the same count (20).
  for (int64_t i = 0; i < r.num_rows(); ++i) {
    if (r.At(i, 0) == Value::String("a")) {
      EXPECT_EQ(r.At(i, 3), Value::Int64(20));
    }
  }
}

TEST(WindowExecTest, MaskedWindowItems) {
  // Fusion can hand windows masked aggregates (IV.A over a fused input).
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  ExprPtr even = eb::Eq(b.Ref("flag"), eb::Int(0));
  b.Window({"grp"},
           {{"even_cnt", AggFunc::kCountStar, nullptr, even, false}});
  QueryResult r = MustExecute(b.Build());
  for (int64_t i = 0; i < r.num_rows(); ++i) {
    if (r.At(i, 0) == Value::String("a")) {
      EXPECT_EQ(r.At(i, 3), Value::Int64(10));
    }
  }
}

TEST(WindowExecTest, AgreesWithAggregateJoin) {
  // The semantic core of GroupByJoinToWindow: window(partition by g) equals
  // joining back the group-by result.
  PlanContext ctx;
  PlanBuilder w = ScanSales(&ctx);
  w.Window({"grp"}, {{"total", AggFunc::kSum, w.Ref("amount"), nullptr,
                      false}});
  w.Project({{"g", w.Ref("grp")}, {"t", w.Ref("total")}});
  QueryResult via_window = MustExecute(w.Build());

  PlanBuilder base = ScanSales(&ctx);
  PlanBuilder agg = ScanSales(&ctx);
  agg.Aggregate({"grp"}, {{"total", AggFunc::kSum, agg.Ref("amount"), nullptr,
                           false}});
  ExprPtr bg = base.Ref("grp");
  base.Join(JoinType::kInner, agg, eb::Eq(bg, agg.Ref("grp")));
  base.Project({{"g", bg}, {"t", base.Ref("total")}});
  QueryResult via_join = MustExecute(base.Build());
  EXPECT_TRUE(ResultsEquivalent(via_window, via_join));
}

TEST(MarkDistinctExecTest, MarksFirstOccurrences) {
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  b.MarkDistinct("first_amount", {"amount"});
  b.Aggregate({}, {{"marked", AggFunc::kCountStar, nullptr,
                    b.Ref("first_amount"), false}});
  QueryResult r = MustExecute(b.Build());
  // 8 non-null distinct amounts + the NULL combination.
  EXPECT_EQ(ScalarInt(r, 0), 9);
}

TEST(MarkDistinctExecTest, ImplementsDistinctAggregates) {
  // The III.F lowering identity: COUNT(DISTINCT x) == COUNT(x) masked by a
  // MarkDistinct marker over x.
  PlanContext ctx;
  PlanBuilder direct = ScanSales(&ctx);
  direct.Aggregate({"grp"}, {{"d", AggFunc::kCount, direct.Ref("amount"),
                              nullptr, true}});
  QueryResult expected = MustExecute(direct.Build());

  PlanBuilder lowered = ScanSales(&ctx);
  lowered.MarkDistinct("m", {"grp", "amount"});
  lowered.Aggregate({"grp"}, {{"d", AggFunc::kCount, lowered.Ref("amount"),
                               lowered.Ref("m"), false}});
  QueryResult got = MustExecute(lowered.Build());
  EXPECT_TRUE(ResultsEquivalent(expected, got));
}

TEST(MarkDistinctExecTest, StreamsAcrossChunks) {
  PlanContext ctx;
  PlanBuilder b = ScanSales(&ctx);
  b.MarkDistinct("m", {"amount"});
  b.Aggregate({}, {{"marked", AggFunc::kCountStar, nullptr, b.Ref("m"),
                    false}});
  // Tiny chunks must not reset the seen-set between chunks.
  QueryResult r = MustExecute(b.Build(), /*chunk_size=*/4);
  EXPECT_EQ(ScalarInt(r, 0), 9);
}

}  // namespace
}  // namespace fusiondb
