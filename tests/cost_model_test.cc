// The cost subsystem: plan fingerprints (determinism + sensitivity),
// catalog-seeded cardinality estimates, the StatsFeedback measured overlay,
// and the adaptive fuse-vs-spool decision end to end.
#include <gtest/gtest.h>

#include "optimizer/spool_rule.h"
#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::SharedTpcds;
using testutil::Unwrap;

PlanBuilder Sales(PlanContext* ctx) {
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));
  return PlanBuilder::Scan(
      ctx, ss, {"ss_store_sk", "ss_item_sk", "ss_quantity", "ss_list_price"});
}

/// The duplicated-CTE fixture: filter + grouped aggregate over store_sales.
PlanBuilder SalesCte(PlanContext* ctx) {
  PlanBuilder b = Sales(ctx);
  b.Filter(eb::Gt(b.Ref("ss_quantity"), eb::Int(50)));
  b.Aggregate({"ss_store_sk"},
              {{"t", AggFunc::kSum, b.Ref("ss_list_price"), nullptr, false}});
  return b;
}

/// Two instances of the CTE cross-joined: duplicates the Section IV fusion
/// rules leave alone, so the spool pass is the only rewrite that can share
/// them — exactly the adaptive decision's territory.
PlanPtr DuplicatedCtePlan(PlanContext* ctx) {
  PlanBuilder a = SalesCte(ctx);
  PlanBuilder b = SalesCte(ctx);
  a.CrossJoin(b);
  return a.Build();
}

// --- fingerprints ----------------------------------------------------------

TEST(PlanFingerprintTest, DeterministicAcrossIdRenumbering) {
  // The same logical query built in two contexts mints disjoint ColumnId
  // ranges (the second context also burns extra ids first); fingerprints
  // must agree anyway, else feedback from one run could never match the
  // next run's plan.
  PlanContext ctx1;
  PlanPtr p1 = DuplicatedCtePlan(&ctx1);
  PlanContext ctx2;
  Sales(&ctx2).Build();  // shift ctx2's id counter
  PlanPtr p2 = DuplicatedCtePlan(&ctx2);
  EXPECT_NE(p1->schema().column(0).id, p2->schema().column(0).id)
      << "fixture should renumber ids, or the test proves nothing";
  EXPECT_EQ(PlanCanonicalString(p1), PlanCanonicalString(p2));
  EXPECT_EQ(PlanFingerprint(p1), PlanFingerprint(p2));
}

TEST(PlanFingerprintTest, SensitiveToPlanChanges) {
  PlanContext ctx;
  uint64_t base = PlanFingerprint(SalesCte(&ctx).Build());

  // Different filter constant.
  PlanBuilder c1 = Sales(&ctx);
  c1.Filter(eb::Gt(c1.Ref("ss_quantity"), eb::Int(51)));
  c1.Aggregate({"ss_store_sk"},
               {{"t", AggFunc::kSum, c1.Ref("ss_list_price"), nullptr, false}});
  EXPECT_NE(PlanFingerprint(c1.Build()), base);

  // Different aggregate function.
  PlanBuilder c2 = Sales(&ctx);
  c2.Filter(eb::Gt(c2.Ref("ss_quantity"), eb::Int(50)));
  c2.Aggregate({"ss_store_sk"},
               {{"t", AggFunc::kMin, c2.Ref("ss_list_price"), nullptr, false}});
  EXPECT_NE(PlanFingerprint(c2.Build()), base);

  // Missing operator (no filter).
  PlanBuilder c3 = Sales(&ctx);
  c3.Aggregate({"ss_store_sk"},
               {{"t", AggFunc::kSum, c3.Ref("ss_list_price"), nullptr, false}});
  EXPECT_NE(PlanFingerprint(c3.Build()), base);

  // Same operator census over a different base table.
  TablePtr ws = Unwrap(SharedTpcds().GetTable("web_sales"));
  PlanBuilder c4 = PlanBuilder::Scan(
      &ctx, ws, {"ws_warehouse_sk", "ws_item_sk", "ws_quantity",
                 "ws_list_price"});
  c4.Filter(eb::Gt(c4.Ref("ws_quantity"), eb::Int(50)));
  c4.Aggregate({"ws_warehouse_sk"},
               {{"t", AggFunc::kSum, c4.Ref("ws_list_price"), nullptr, false}});
  EXPECT_NE(PlanFingerprint(c4.Build()), base);
}

// --- cardinality estimates -------------------------------------------------

TEST(CardinalityEstimatorTest, SeededFromCatalog) {
  PlanContext ctx;
  CardinalityEstimator est;  // no feedback: catalog priors only
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));

  PlanPtr scan = Sales(&ctx).Build();
  CardEstimate scan_est = est.Estimate(scan);
  EXPECT_EQ(scan_est.rows, static_cast<double>(ss->num_rows()));
  EXPECT_FALSE(scan_est.measured);

  PlanBuilder filtered = Sales(&ctx);
  filtered.Filter(eb::Gt(filtered.Ref("ss_quantity"), eb::Int(50)));
  CardEstimate filter_est = est.Estimate(filtered.Build());
  EXPECT_LT(filter_est.rows, scan_est.rows);
  EXPECT_GT(filter_est.rows, 0.0);

  PlanBuilder scalar = Sales(&ctx);
  scalar.Aggregate({}, {{"c", AggFunc::kCountStar, nullptr, nullptr, false}});
  EXPECT_EQ(est.Estimate(scalar.Build()).rows, 1.0);
}

TEST(CardinalityEstimatorTest, FeedbackOverlaysMeasurement) {
  PlanContext ctx;
  PlanPtr scan = Sales(&ctx).Build();

  StatsFeedback feedback;
  feedback.Record(PlanFingerprint(scan), 12345);
  CardinalityEstimator est(&feedback);
  CardEstimate e = est.Estimate(scan);
  EXPECT_EQ(e.rows, 12345.0);
  EXPECT_TRUE(e.measured);
  // A derived estimate over a measured child is flagged measured too.
  PlanBuilder filtered = PlanBuilder::From(&ctx, scan);
  filtered.Filter(eb::Gt(filtered.Ref("ss_quantity"), eb::Int(50)));
  EXPECT_TRUE(est.Estimate(filtered.Build()).measured);
}

TEST(StatsFeedbackTest, HarvestRecordsExecutedCardinalities) {
  PlanContext ctx;
  PlanBuilder b = SalesCte(&ctx);
  PlanPtr plan = b.Build();
  QueryResult result = MustExecute(plan);
  StatsFeedback feedback;
  EXPECT_GT(feedback.Harvest(plan, result.operator_stats()), 0u);

  // The root subtree's measured cardinality is the query's actual output.
  auto measured = feedback.Lookup(PlanFingerprint(plan));
  ASSERT_TRUE(measured.has_value());
  EXPECT_EQ(*measured, result.num_rows());

  // And the overlaid estimate now reports the measurement, replacing the
  // sqrt-heuristic prior.
  CardinalityEstimator est(&feedback);
  CardEstimate e = est.Estimate(plan);
  EXPECT_TRUE(e.measured);
  EXPECT_EQ(e.rows, static_cast<double>(result.num_rows()));
}

// --- adaptive fuse-vs-spool ------------------------------------------------

/// Records a forced cardinality for the fixture's *scan* subtree, the
/// driver of the whole CTE's cost: small → re-execution is cheaper than
/// the spool's fixed setup; large → materializing once wins.
StatsFeedback ForcedScanFeedback(int64_t rows) {
  PlanContext ctx;
  StatsFeedback feedback;
  feedback.Record(PlanFingerprint(Sales(&ctx).Build()), rows);
  return feedback;
}

TEST(AdaptiveSpoolTest, SmallCardinalityFuses) {
  PlanContext ctx;
  PlanPtr plan = DuplicatedCtePlan(&ctx);
  StatsFeedback feedback = ForcedScanFeedback(10);
  CardinalityEstimator est(&feedback);
  CostModel model(&est);

  SpoolDecision d = model.DecideSpool(SalesCte(&ctx).Build(), 2);
  EXPECT_FALSE(d.spool);
  EXPECT_TRUE(d.measured);
  EXPECT_LT(d.reexec_cost, d.spool_cost);

  PlanPtr rewritten = Unwrap(SpoolCommonSubexpressions(plan, &ctx, &model));
  EXPECT_EQ(CountOps(rewritten, OpKind::kSpool), 0);
  EXPECT_TRUE(ResultsEquivalent(MustExecute(plan), MustExecute(rewritten)));
}

TEST(AdaptiveSpoolTest, LargeCardinalitySpools) {
  PlanContext ctx;
  PlanPtr plan = DuplicatedCtePlan(&ctx);
  StatsFeedback feedback = ForcedScanFeedback(5'000'000);
  CardinalityEstimator est(&feedback);
  CostModel model(&est);

  SpoolDecision d = model.DecideSpool(SalesCte(&ctx).Build(), 2);
  EXPECT_TRUE(d.spool);
  EXPECT_TRUE(d.measured);
  EXPECT_LT(d.spool_cost, d.reexec_cost);

  PlanPtr rewritten = Unwrap(SpoolCommonSubexpressions(plan, &ctx, &model));
  EXPECT_EQ(CountOps(rewritten, OpKind::kSpool), 2);
  EXPECT_TRUE(ResultsEquivalent(MustExecute(plan), MustExecute(rewritten)));
}

TEST(AdaptiveSpoolTest, StaticPolicyIgnoresCost) {
  // The kAlways policy (null cost model) spools the duplicates regardless
  // of how small they are — the behavior adaptive mode improves on.
  PlanContext ctx;
  PlanPtr plan = DuplicatedCtePlan(&ctx);
  PlanPtr rewritten = Unwrap(SpoolCommonSubexpressions(plan, &ctx));
  EXPECT_EQ(CountOps(rewritten, OpKind::kSpool), 2);
}

TEST(AdaptiveSpoolTest, EndToEndFeedbackLoop) {
  // The full loop as run_query --mode=adaptive drives it: optimize against
  // catalog priors, execute, harvest measured cardinalities, re-optimize —
  // the second pass's cost decisions must be measurement-backed, and every
  // configuration must return identical results.
  PlanContext ctx;
  PlanPtr plan = DuplicatedCtePlan(&ctx);

  OptimizerTrace first_trace;
  ctx.set_trace(&first_trace);
  PlanPtr first = Unwrap(
      Optimizer(OptimizerOptions::Adaptive(nullptr)).Optimize(plan, &ctx));
  ctx.set_trace(nullptr);
  ASSERT_FALSE(first_trace.cost_decisions().empty());
  EXPECT_FALSE(first_trace.cost_decisions()[0].measured);

  QueryResult first_result = MustExecute(first);
  StatsFeedback feedback;
  ASSERT_GT(feedback.Harvest(first, first_result.operator_stats()), 0u);

  OptimizerTrace second_trace;
  ctx.set_trace(&second_trace);
  PlanPtr second = Unwrap(
      Optimizer(OptimizerOptions::Adaptive(&feedback)).Optimize(plan, &ctx));
  ctx.set_trace(nullptr);
  ASSERT_FALSE(second_trace.cost_decisions().empty());
  const CostDecision& d = second_trace.cost_decisions()[0];
  EXPECT_TRUE(d.measured) << "second run must price measured cardinalities";
  EXPECT_EQ(d.consumers, 2);
  EXPECT_GT(d.reexec_cost_ns, 0.0);
  EXPECT_GT(d.spool_cost_ns, 0.0);
  // The estimate visibly changed between runs (priors vs measurement).
  EXPECT_NE(first_trace.cost_decisions()[0].est_rows, d.est_rows);

  // Whatever each pass decided, results are identical to the baseline.
  QueryResult base = MustExecute(
      Unwrap(Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx)));
  EXPECT_TRUE(ResultsEquivalent(base, first_result));
  EXPECT_TRUE(ResultsEquivalent(base, MustExecute(second)));
}

TEST(AdaptiveSpoolTest, CostDecisionsExportedInProfileJson) {
  // The profile JSON is how decisions leave the process (run_query
  // --profile); each CostDecision must appear in the trace's
  // cost_decisions array with its fingerprint and verdict.
  PlanContext ctx;
  PlanPtr plan = DuplicatedCtePlan(&ctx);
  OptimizerTrace trace;
  ctx.set_trace(&trace);
  PlanPtr optimized = Unwrap(
      Optimizer(OptimizerOptions::Adaptive(nullptr)).Optimize(plan, &ctx));
  ctx.set_trace(nullptr);
  ASSERT_FALSE(trace.cost_decisions().empty());

  QueryResult result = MustExecute(optimized);
  QueryProfile profile =
      MakeQueryProfile("cte", "adaptive", optimized, result, &trace);
  std::string json = ProfileToJson(profile);
  EXPECT_NE(json.find("\"cost_decisions\":"), std::string::npos);
  const CostDecision& d = trace.cost_decisions()[0];
  EXPECT_NE(json.find("\"fingerprint\":\"" +
                      FingerprintToString(d.fingerprint) + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"spooled\":"), std::string::npos);
  EXPECT_NE(json.find("\"reexec_cost_ns\":"), std::string::npos);
}

TEST(AdaptiveSpoolTest, AdaptiveConfigMatchesBaselineOnTpcds) {
  // Adaptive mode is a pure performance policy: every applicable TPC-DS
  // query returns baseline-identical results under it, with and without
  // feedback from a prior run.
  const Catalog& catalog = SharedTpcds();
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (!q.fusion_applicable) continue;
    PlanContext ctx;
    PlanPtr plan = Unwrap(q.build(catalog, &ctx));
    QueryResult base = MustExecute(
        Unwrap(Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx)));
    PlanPtr first = Unwrap(
        Optimizer(OptimizerOptions::Adaptive(nullptr)).Optimize(plan, &ctx));
    QueryResult first_result = MustExecute(first);
    EXPECT_TRUE(ResultsEquivalent(base, first_result)) << q.name;
    StatsFeedback feedback;
    feedback.Harvest(first, first_result.operator_stats());
    PlanPtr second = Unwrap(
        Optimizer(OptimizerOptions::Adaptive(&feedback)).Optimize(plan, &ctx));
    EXPECT_TRUE(ResultsEquivalent(base, MustExecute(second))) << q.name;
  }
}

}  // namespace
}  // namespace fusiondb
