// Compiled pipelines (src/exec/pipeline.h): the interpreted pull executor is
// the oracle, and every test here is a differential check against it —
// compiled runs must render byte-identical rows in identical order and
// report identical metrics. Coverage: a fixed-seed fuzz over randomized
// scan→filter→project(→aggregate) chains, the full TPC-DS sweep under all
// four optimizer modes, parallelism invariance (the `parallel` ctest label;
// run under TSan via -DFUSIONDB_SANITIZE=thread + `ctest -L parallel`),
// fallback-reason recording, and the EXPLAIN ANALYZE / service-counter
// surfaces.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::SharedTpcds;
using testutil::Unwrap;

/// Executes `plan` with pipeline compilation on and off and asserts the two
/// executions are indistinguishable: same rows in the same order (the
/// byte-identity discipline — compiled pipelines preserve chunk boundaries
/// and accumulation order, not just multiset equality) and same metrics.
/// Returns the compiled run for callers that inspect its PipelineRecords.
QueryResult ExpectCompiledMatchesInterpreted(const PlanPtr& plan,
                                             size_t parallelism = 1) {
  QueryResult compiled = Unwrap(ExecutePlan(
      plan, {.parallelism = parallelism, .compile_pipelines = true}));
  QueryResult interpreted = Unwrap(ExecutePlan(
      plan, {.parallelism = parallelism, .compile_pipelines = false}));
  EXPECT_TRUE(ResultsEqualOrdered(compiled, interpreted))
      << "compiled and interpreted rows diverge for plan:\n"
      << PlanToString(plan);
  const ExecMetrics& c = compiled.metrics();
  const ExecMetrics& i = interpreted.metrics();
  EXPECT_EQ(c.bytes_scanned, i.bytes_scanned) << PlanToString(plan);
  EXPECT_EQ(c.rows_scanned, i.rows_scanned) << PlanToString(plan);
  EXPECT_EQ(c.partitions_scanned, i.partitions_scanned) << PlanToString(plan);
  EXPECT_EQ(c.partitions_pruned, i.partitions_pruned) << PlanToString(plan);
  EXPECT_EQ(c.rows_produced, i.rows_produced) << PlanToString(plan);
  EXPECT_EQ(c.peak_hash_bytes, i.peak_hash_bytes) << PlanToString(plan);
  // The interpreted oracle never records pipeline outcomes.
  EXPECT_TRUE(interpreted.pipelines().empty());
  return compiled;
}

// ---------------------------------------------------------------------------
// Differential fuzz: randomized chains, fixed seed.
// ---------------------------------------------------------------------------

struct FuzzColumn {
  const char* name;
  bool is_float;
  int64_t lo;  // plausible literal range for predicates
  int64_t hi;
};

struct FuzzTable {
  const char* name;
  std::vector<FuzzColumn> columns;
};

const std::vector<FuzzTable>& FuzzTables() {
  static const std::vector<FuzzTable>& tables = *new std::vector<FuzzTable>{
      {"store_sales",
       {{"ss_store_sk", false, 0, 10},
        {"ss_item_sk", false, 0, 2000},
        {"ss_quantity", false, 0, 100},
        {"ss_list_price", true, 0, 100},
        {"ss_sales_price", true, 0, 100}}},
      {"item",
       {{"i_item_sk", false, 0, 2000},
        {"i_brand_id", false, 0, 1000},
        {"i_category_id", false, 0, 10}}},
      {"date_dim",
       {{"d_date_sk", false, 2450000, 2460000},
        {"d_year", false, 1998, 2003},
        {"d_month_seq", false, 1170, 1260}}},
  };
  return tables;
}

ExprPtr RandomPredicate(std::mt19937* rng, PlanBuilder* b,
                        const FuzzColumn& col) {
  auto pick = [&](int64_t n) {
    return static_cast<int64_t>((*rng)() % static_cast<uint64_t>(n));
  };
  int64_t span = col.hi - col.lo;
  int64_t lo = col.lo + pick(span + 1);
  ExprPtr ref = b->Ref(col.name);
  ExprPtr lit = col.is_float ? eb::Dbl(static_cast<double>(lo) + 0.5)
                             : eb::Int(lo);
  switch (pick(4)) {
    case 0:
      return eb::Gt(std::move(ref), std::move(lit));
    case 1:
      return eb::Le(std::move(ref), std::move(lit));
    case 2:
      return eb::IsNotNull(std::move(ref));
    default: {
      int64_t hi = lo + pick(span + 1);
      ExprPtr hi_lit = col.is_float ? eb::Dbl(static_cast<double>(hi) + 0.5)
                                    : eb::Int(hi);
      return eb::Between(std::move(ref), std::move(lit), std::move(hi_lit));
    }
  }
}

TEST(PipelineFuzzTest, RandomChainsMatchInterpreted) {
  const Catalog& catalog = SharedTpcds(0.003);
  std::mt19937 rng(20260807);  // fixed seed: failures must reproduce
  auto pick = [&](size_t n) { return static_cast<size_t>(rng() % n); };

  for (int iter = 0; iter < 80; ++iter) {
    const FuzzTable& table = FuzzTables()[pick(FuzzTables().size())];
    std::vector<std::string> cols;
    for (const FuzzColumn& c : table.columns) cols.push_back(c.name);
    PlanContext ctx;
    PlanBuilder b = PlanBuilder::Scan(
        &ctx, Unwrap(catalog.GetTable(table.name)), cols);

    // 1-2 filters, chained (exercises the NarrowFilter composition).
    size_t num_filters = 1 + pick(2);
    for (size_t f = 0; f < num_filters; ++f) {
      b.Filter(RandomPredicate(&rng, &b, table.columns[pick(cols.size())]));
    }

    // Half the chains re-project through arithmetic (exercises EvalSel on
    // composed expressions); the rest keep the scan layout (exercises the
    // identity fast path).
    bool projected = pick(2) == 0;
    if (projected) {
      const FuzzColumn& a = table.columns[pick(cols.size())];
      const FuzzColumn& c = table.columns[pick(cols.size())];
      b.Project({{"derived", eb::Add(b.Ref(a.name), b.Ref(c.name))},
                 {"kept", b.Ref(table.columns[0].name)}});
    }

    // A third of the chains end in an aggregate sink — scalar or grouped,
    // with an occasional mask.
    if (pick(3) == 0) {
      const char* arg = projected ? "derived" : table.columns.back().name;
      ExprPtr mask = nullptr;
      if (!projected && pick(2) == 0) {
        mask = RandomPredicate(&rng, &b, table.columns[pick(cols.size())]);
      }
      std::vector<AggSpec> specs;
      specs.push_back({"s", AggFunc::kSum, b.Ref(arg), mask, false});
      specs.push_back({"n", AggFunc::kCountStar, nullptr, nullptr, false});
      if (pick(2) == 0) {
        b.Aggregate({}, std::move(specs));  // scalar
      } else {
        const char* key = projected ? "kept" : table.columns[0].name;
        b.Aggregate({key}, std::move(specs));
      }
    }

    QueryResult compiled = ExpectCompiledMatchesInterpreted(b.Build());
    // Every fuzz chain is compilable by construction; a silent fallback
    // here means the fuzz stopped exercising the compiled path.
    bool any_compiled = false;
    for (const PipelineRecord& r : compiled.pipelines()) {
      any_compiled |= r.compiled();
    }
    EXPECT_TRUE(any_compiled)
        << "iter " << iter << " fell back: " << PlanToString(b.Build());
  }
}

// ---------------------------------------------------------------------------
// Full TPC-DS sweep, all four optimizer modes.
// ---------------------------------------------------------------------------

class PipelineTpcdsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineTpcdsTest, SweepAllModes) {
  const Catalog& catalog = SharedTpcds();
  for (const std::string& mode :
       {std::string("baseline"), std::string("fused"), std::string("spooling"),
        std::string("adaptive")}) {
    tpcds::TpcdsQuery q = Unwrap(tpcds::QueryByName(GetParam()));
    PlanContext ctx;
    PlanPtr plan = Unwrap(q.build(catalog, &ctx));
    OptimizerOptions opt = mode == "baseline" ? OptimizerOptions::Baseline()
                           : mode == "spooling"
                               ? OptimizerOptions::Spooling()
                           : mode == "adaptive"
                               ? OptimizerOptions::Adaptive(nullptr)
                               : OptimizerOptions::Fused();
    PlanPtr optimized = Unwrap(Optimizer(opt).Optimize(plan, &ctx));
    SCOPED_TRACE(GetParam() + " / " + mode);
    ExpectCompiledMatchesInterpreted(optimized);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, PipelineTpcdsTest, ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
                             names.push_back(q.name);
                           }
                           return names;
                         }()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Parallelism invariance (`parallel` label; TSan-covered).
// ---------------------------------------------------------------------------

TEST(PipelineParallelTest, ThreadCountInvariant) {
  const Catalog& catalog = SharedTpcds();
  // The fusion-applicable queries have the deepest compiled chains; the
  // full sweep's serial coverage above already spans the rest.
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (!q.fusion_applicable) continue;
    PlanContext ctx;
    PlanPtr plan = Unwrap(q.build(catalog, &ctx));
    PlanPtr optimized =
        Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
    SCOPED_TRACE(q.name);
    QueryResult serial = ExpectCompiledMatchesInterpreted(optimized, 1);
    QueryResult wide = ExpectCompiledMatchesInterpreted(optimized, 4);
    EXPECT_TRUE(ResultsEqualOrdered(serial, wide)) << q.name;
    EXPECT_EQ(serial.metrics().bytes_scanned, wide.metrics().bytes_scanned);
    EXPECT_EQ(serial.metrics().peak_hash_bytes, wide.metrics().peak_hash_bytes);
  }
}

TEST(PipelineParallelTest, CompiledAggregateParallelMatchesSerial) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(
      &ctx, Unwrap(catalog.GetTable("store_sales")),
      {"ss_store_sk", "ss_quantity", "ss_sales_price"});
  b.Filter(eb::Between(b.Ref("ss_quantity"), eb::Int(5), eb::Int(80)));
  b.Aggregate({"ss_store_sk"},
              {{"revenue", AggFunc::kSum, b.Ref("ss_sales_price"),
                eb::Gt(b.Ref("ss_quantity"), eb::Int(40)), false},
               {"n", AggFunc::kCountStar, nullptr, nullptr, false}});
  PlanPtr plan = b.Build();
  QueryResult serial = ExpectCompiledMatchesInterpreted(plan, 1);
  QueryResult wide = ExpectCompiledMatchesInterpreted(plan, 4);
  // No Sort root pins the group order, and hash-map merge order legitimately
  // differs across thread counts (in both engines — exec_parallel_test makes
  // the same concession). The byte-identity contract is compiled vs
  // interpreted at equal parallelism, asserted by the two calls above.
  EXPECT_TRUE(ResultsEquivalent(serial, wide));
  EXPECT_EQ(serial.metrics().bytes_scanned, wide.metrics().bytes_scanned);
}

// ---------------------------------------------------------------------------
// Compilation outcomes: records, fallback taxonomy, observability.
// ---------------------------------------------------------------------------

TEST(PipelineRecordTest, CompiledChainRecordsOpsFused) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(
      &ctx, Unwrap(catalog.GetTable("store_sales")),
      {"ss_quantity", "ss_sales_price"});
  b.Filter(eb::Gt(b.Ref("ss_quantity"), eb::Int(10)));
  b.Aggregate({}, {{"total", AggFunc::kSum, b.Ref("ss_sales_price"), nullptr,
                    false}});
  QueryResult r = Unwrap(ExecutePlan(b.Build()));
  ASSERT_EQ(r.pipelines().size(), 1u);
  const PipelineRecord& rec = r.pipelines()[0];
  EXPECT_TRUE(rec.compiled());
  EXPECT_EQ(rec.root_kind, "Aggregate");
  EXPECT_EQ(rec.ops_fused, 3);  // aggregate + filter + scan
  EXPECT_EQ(rec.root_op_id, 0);
}

TEST(PipelineRecordTest, JoinFedChainFallsBackWithSourceReason) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanBuilder ss = PlanBuilder::Scan(
      &ctx, Unwrap(catalog.GetTable("store_sales")),
      {"ss_item_sk", "ss_quantity"});
  PlanBuilder item = PlanBuilder::Scan(&ctx, Unwrap(catalog.GetTable("item")),
                                       {"i_item_sk"});
  ss.JoinOn(JoinType::kInner, item, {{"ss_item_sk", "i_item_sk"}});
  // Chain head above the join: its source is a breaker, so it must fall
  // back and say why.
  ss.Filter(eb::Gt(ss.Ref("ss_quantity"), eb::Int(90)));
  QueryResult r = Unwrap(ExecutePlan(ss.Build()));
  bool saw_join_fallback = false;
  for (const PipelineRecord& rec : r.pipelines()) {
    if (!rec.compiled() && rec.fallback == "source-join") {
      saw_join_fallback = true;
    }
  }
  EXPECT_TRUE(saw_join_fallback);
}

TEST(PipelineRecordTest, DisablingCompilationRecordsNothing) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(
      &ctx, Unwrap(catalog.GetTable("item")), {"i_item_sk"});
  b.Filter(eb::Gt(b.Ref("i_item_sk"), eb::Int(0)));
  QueryResult r =
      Unwrap(ExecutePlan(b.Build(), {.compile_pipelines = false}));
  EXPECT_TRUE(r.pipelines().empty());
}

TEST(PipelineObsTest, ExplainAnalyzeAnnotatesPipelines) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(
      &ctx, Unwrap(catalog.GetTable("store_sales")),
      {"ss_quantity", "ss_sales_price"});
  b.Filter(eb::Gt(b.Ref("ss_quantity"), eb::Int(10)));
  PlanPtr plan = b.Build();
  QueryResult r = Unwrap(ExecutePlan(plan));
  std::string text = ExplainAnalyze(plan, r);
  EXPECT_NE(text.find("pipeline=0"), std::string::npos) << text;
  EXPECT_NE(text.find("pipelines:"), std::string::npos) << text;
  EXPECT_NE(text.find("ops_fused=2"), std::string::npos) << text;

  QueryProfile profile = MakeQueryProfile("chain", "fused", plan, r);
  std::string json = ProfileToJson(profile);
  EXPECT_NE(json.find("\"pipelines\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ops_fused\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pipeline\":0"), std::string::npos) << json;
}

TEST(PipelineObsTest, ServiceCountersRecordOutcomes) {
  const Catalog& catalog = SharedTpcds();
  MetricsRegistry registry;
  {
    PlanContext ctx;
    PlanBuilder b = PlanBuilder::Scan(
        &ctx, Unwrap(catalog.GetTable("item")), {"i_item_sk"});
    b.Filter(eb::Gt(b.Ref("i_item_sk"), eb::Int(0)));
    Unwrap(ExecutePlan(b.Build(), {.metrics = &registry}));
  }
  {
    PlanContext ctx;
    PlanBuilder ss = PlanBuilder::Scan(
        &ctx, Unwrap(catalog.GetTable("store_sales")), {"ss_item_sk"});
    PlanBuilder item = PlanBuilder::Scan(
        &ctx, Unwrap(catalog.GetTable("item")), {"i_item_sk"});
    ss.JoinOn(JoinType::kInner, item, {{"ss_item_sk", "i_item_sk"}});
    ss.Filter(eb::Gt(ss.Ref("ss_item_sk"), eb::Int(0)));
    Unwrap(ExecutePlan(ss.Build(), {.metrics = &registry}));
  }
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Counter("fusiondb_exec_pipelines_compiled_total"), 1);
  EXPECT_EQ(snap.Counter(
                "fusiondb_exec_pipeline_fallbacks_total{reason=\"source-join\"}"),
            1);
}

}  // namespace
}  // namespace fusiondb
