// The four Section IV rules: pattern recognition, plan shapes after
// rewriting, and executed equivalence against the unrewritten plan.
#include <gtest/gtest.h>

#include "optimizer/rules.h"
#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::SharedTpcds;
using testutil::Unwrap;

/// Narrows `plan` to `schema`'s columns so result comparisons are not
/// confused by superset schemas rule rewrites may leave behind.
PlanPtr Narrow(const PlanPtr& plan, const Schema& schema) {
  std::vector<NamedExpr> exprs;
  for (const ColumnInfo& c : schema.columns()) {
    exprs.push_back({c.id, c.name, Expr::MakeColumnRef(c.id, c.type)});
  }
  return std::make_shared<ProjectOp>(plan, std::move(exprs));
}

PlanBuilder Sales(PlanContext* ctx) {
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));
  return PlanBuilder::Scan(
      ctx, ss, {"ss_store_sk", "ss_item_sk", "ss_quantity", "ss_list_price"});
}

/// Applies one rule at the root only.
PlanPtr ApplyAtRoot(const Rule& rule, const PlanPtr& plan, PlanContext* ctx) {
  return Unwrap(rule.Apply(plan, ctx));
}

void ExpectSameResults(const PlanPtr& a, const PlanPtr& b) {
  QueryResult ra = MustExecute(a);
  QueryResult rb = MustExecute(Narrow(b, a->schema()));
  EXPECT_TRUE(ResultsEquivalent(ra, rb))
      << "rewrite changed results\nbefore:\n"
      << PlanToString(a) << "\nafter:\n"
      << PlanToString(b);
}

// --- GroupByJoinToWindow (IV.A) ----------------------------------------------

PlanPtr GroupByJoinPattern(PlanContext* ctx, bool with_extra_tables) {
  // sales joined with AVG-per-store of an identical sales instance.
  PlanBuilder left = Sales(ctx);
  PlanBuilder agg_in = Sales(ctx);
  PlanBuilder agg = agg_in;
  agg.Aggregate({"ss_store_sk"}, {{"avg_price", AggFunc::kAvg,
                                   agg_in.Ref("ss_list_price"), nullptr,
                                   false}});
  ExprPtr left_store = left.Ref("ss_store_sk");
  ExprPtr left_price = left.Ref("ss_list_price");
  if (with_extra_tables) {
    // Interpose another join so the pattern is only visible n-ary (IV.E).
    TablePtr store = Unwrap(SharedTpcds().GetTable("store"));
    PlanBuilder st = PlanBuilder::Scan(ctx, store, {"s_store_sk"});
    left.Join(JoinType::kInner, st, eb::Eq(left_store, st.Ref("s_store_sk")));
  }
  left.Join(JoinType::kInner, agg,
            eb::And(eb::Eq(left_store, agg.Ref("ss_store_sk")),
                    eb::Gt(left_price, agg.Ref("avg_price"))));
  return left.Build();
}

TEST(GroupByJoinToWindowTest, RewritesAdjacentPattern) {
  PlanContext ctx;
  PlanPtr plan = GroupByJoinPattern(&ctx, /*with_extra_tables=*/false);
  GroupByJoinToWindowRule rule;
  PlanPtr rewritten = ApplyAtRoot(rule, plan, &ctx);
  ASSERT_NE(rewritten, plan);
  EXPECT_EQ(CountOps(rewritten, OpKind::kWindow), 1);
  EXPECT_EQ(CountOps(rewritten, OpKind::kAggregate), 0);
  EXPECT_EQ(CountTableScans(rewritten, "store_sales"), 1);
  ExpectSameResults(plan, rewritten);
}

TEST(GroupByJoinToWindowTest, RewritesThroughNaryJoin) {
  PlanContext ctx;
  PlanPtr plan = GroupByJoinPattern(&ctx, /*with_extra_tables=*/true);
  GroupByJoinToWindowRule rule;
  PlanPtr rewritten = ApplyAtRoot(rule, plan, &ctx);
  ASSERT_NE(rewritten, plan);
  EXPECT_EQ(CountOps(rewritten, OpKind::kWindow), 1);
  EXPECT_EQ(CountTableScans(rewritten, "store_sales"), 1);
  EXPECT_EQ(CountTableScans(rewritten, "store"), 1);
  ExpectSameResults(plan, rewritten);
}

TEST(GroupByJoinToWindowTest, RequiresExactFusion) {
  // If the aggregated instance filters differently, fusion is inexact and
  // the rule must not fire.
  PlanContext ctx;
  PlanBuilder left = Sales(&ctx);
  PlanBuilder agg_in = Sales(&ctx);
  agg_in.Filter(eb::Gt(agg_in.Ref("ss_quantity"), eb::Int(50)));
  PlanBuilder agg = agg_in;
  agg.Aggregate({"ss_store_sk"},
                {{"avg_price", AggFunc::kAvg, agg_in.Ref("ss_list_price"),
                  nullptr, false}});
  left.Join(JoinType::kInner, agg,
            eb::Eq(left.Ref("ss_store_sk"), agg.Ref("ss_store_sk")));
  PlanPtr plan = left.Build();
  GroupByJoinToWindowRule rule;
  EXPECT_EQ(ApplyAtRoot(rule, plan, &ctx), plan);
}

TEST(GroupByJoinToWindowTest, RequiresKeysCoveredByJoin) {
  // Join on a non-grouping column: no rewrite.
  PlanContext ctx;
  PlanBuilder left = Sales(&ctx);
  PlanBuilder agg_in = Sales(&ctx);
  PlanBuilder agg = agg_in;
  agg.Aggregate({"ss_store_sk"},
                {{"avg_price", AggFunc::kAvg, agg_in.Ref("ss_list_price"),
                  nullptr, false}});
  left.Join(JoinType::kInner, agg,
            eb::Gt(left.Ref("ss_list_price"), agg.Ref("avg_price")));
  PlanPtr plan = left.Build();
  GroupByJoinToWindowRule rule;
  EXPECT_EQ(ApplyAtRoot(rule, plan, &ctx), plan);
}

// --- JoinOnKeys (IV.B) ---------------------------------------------------------

TEST(JoinOnKeysTest, GroupedSelfJoinCollapses) {
  PlanContext ctx;
  auto make = [&](const char* name, AggFunc fn) {
    PlanBuilder g = Sales(&ctx);
    g.Aggregate({"ss_store_sk"},
                {{name, fn, g.Ref("ss_list_price"), nullptr, false}});
    return g;
  };
  PlanBuilder a = make("mx", AggFunc::kMax);
  PlanBuilder b = make("mn", AggFunc::kMin);
  a.JoinOn(JoinType::kInner, b, {{"ss_store_sk", "ss_store_sk"}});
  PlanPtr plan = a.Build();
  JoinOnKeysRule rule;
  PlanPtr rewritten = ApplyAtRoot(rule, plan, &ctx);
  ASSERT_NE(rewritten, plan);
  EXPECT_EQ(CountOps(rewritten, OpKind::kJoin), 0);
  EXPECT_EQ(CountOps(rewritten, OpKind::kAggregate), 1);
  EXPECT_EQ(CountTableScans(rewritten, "store_sales"), 1);
  ExpectSameResults(plan, rewritten);
}

TEST(JoinOnKeysTest, ScalarCrossJoinCollapsesAll) {
  // The Q09 shape: N scalar aggregates cross-joined collapse to one.
  PlanContext ctx;
  std::optional<PlanBuilder> root;
  for (int i = 0; i < 4; ++i) {
    PlanBuilder g = Sales(&ctx);
    g.Filter(eb::Between(g.Ref("ss_quantity"), eb::Int(i * 25 + 1),
                         eb::Int(i * 25 + 25)));
    g.Aggregate({}, {{"c" + std::to_string(i), AggFunc::kCountStar, nullptr,
                      nullptr, false}});
    if (!root.has_value()) {
      root = g;
    } else {
      root->CrossJoin(g);
    }
  }
  PlanPtr plan = root->Build();
  JoinOnKeysRule rule;
  PlanPtr rewritten = ApplyAtRoot(rule, plan, &ctx);
  ASSERT_NE(rewritten, plan);
  EXPECT_EQ(CountTableScans(rewritten, "store_sales"), 1);
  EXPECT_EQ(CountOps(rewritten, OpKind::kAggregate), 1);
  const auto* agg = nullptr == rewritten ? nullptr : &Cast<AggregateOp>(
      *(rewritten->kind() == OpKind::kAggregate ? rewritten
                                                : rewritten->child(0)));
  if (agg != nullptr) {
    EXPECT_EQ(agg->aggregates().size(), 4u);
  }
  ExpectSameResults(plan, rewritten);
}

TEST(JoinOnKeysTest, DifferentKeyArityDoesNotFire) {
  PlanContext ctx;
  PlanBuilder a = Sales(&ctx);
  a.Aggregate({"ss_store_sk", "ss_item_sk"},
              {{"c", AggFunc::kCountStar, nullptr, nullptr, false}});
  PlanBuilder b = Sales(&ctx);
  b.Aggregate({"ss_store_sk"},
              {{"d", AggFunc::kCountStar, nullptr, nullptr, false}});
  a.JoinOn(JoinType::kInner, b, {{"ss_store_sk", "ss_store_sk"}});
  PlanPtr plan = a.Build();
  JoinOnKeysRule rule;
  EXPECT_EQ(ApplyAtRoot(rule, plan, &ctx), plan);
}

TEST(JoinOnKeysTest, PartialKeyJoinDoesNotFire) {
  // Joining two-key aggregates on only one key would change multiplicity;
  // the rule must stay away.
  PlanContext ctx;
  auto make = [&](const char* name) {
    PlanBuilder g = Sales(&ctx);
    g.Aggregate({"ss_store_sk", "ss_item_sk"},
                {{name, AggFunc::kCountStar, nullptr, nullptr, false}});
    return g;
  };
  PlanBuilder a = make("c1");
  PlanBuilder b = make("c2");
  a.JoinOn(JoinType::kInner, b, {{"ss_store_sk", "ss_store_sk"}});
  PlanPtr plan = a.Build();
  JoinOnKeysRule rule;
  EXPECT_EQ(ApplyAtRoot(rule, plan, &ctx), plan);
}

// --- UnionAllOnJoin (IV.C) -----------------------------------------------------

TEST(UnionAllOnJoinTest, PushesUnionBelowSemiJoin) {
  PlanContext ctx;
  // Two branches semi-joining different facts against the same subquery.
  auto make_branch = [&](const char* fact, const char* item_col,
                         const char* qty_col) {
    TablePtr t = Unwrap(SharedTpcds().GetTable(fact));
    PlanBuilder f = PlanBuilder::Scan(&ctx, t, {item_col, qty_col});
    PlanBuilder z = Sales(&ctx);
    z.Aggregate({"ss_item_sk"},
                {{"n", AggFunc::kCountStar, nullptr, nullptr, false}});
    z.Filter(eb::Gt(z.Ref("n"), eb::Int(2)));
    z.Select({"ss_item_sk"});
    f.Join(JoinType::kSemi, z, eb::Eq(f.Ref(item_col), z.Ref("ss_item_sk")));
    f.Project({{"q", f.Ref(qty_col)}});
    return f;
  };
  PlanBuilder b1 = make_branch("catalog_sales", "cs_item_sk", "cs_quantity");
  PlanBuilder b2 = make_branch("web_sales", "ws_item_sk", "ws_quantity");
  PlanPtr plan = PlanBuilder::UnionAll(&ctx, {b1, b2}).Build();
  UnionAllOnJoinRule rule;
  PlanPtr rewritten = ApplyAtRoot(rule, plan, &ctx);
  ASSERT_NE(rewritten, plan);
  // The common subquery is now evaluated once.
  EXPECT_EQ(CountTableScans(rewritten, "store_sales"), 1);
  EXPECT_EQ(CountTableScans(plan, "store_sales"), 2);
  ExpectSameResults(plan, rewritten);
}

TEST(UnionAllOnJoinTest, DifferentRightSidesDoNotFire) {
  PlanContext ctx;
  auto make_branch = [&](const char* fact, const char* item_col,
                         const char* other_table, const char* other_col) {
    TablePtr t = Unwrap(SharedTpcds().GetTable(fact));
    PlanBuilder f = PlanBuilder::Scan(&ctx, t, {item_col});
    TablePtr o = Unwrap(SharedTpcds().GetTable(other_table));
    PlanBuilder z = PlanBuilder::Scan(&ctx, o, {other_col});
    f.Join(JoinType::kSemi, z, eb::Eq(f.Ref(item_col), z.Ref(other_col)));
    f.Project({{"v", f.Ref(item_col)}});
    return f;
  };
  PlanBuilder b1 =
      make_branch("catalog_sales", "cs_item_sk", "item", "i_item_sk");
  PlanBuilder b2 =
      make_branch("web_sales", "ws_item_sk", "store", "s_store_sk");
  PlanPtr plan = PlanBuilder::UnionAll(&ctx, {b1, b2}).Build();
  UnionAllOnJoinRule rule;
  EXPECT_EQ(ApplyAtRoot(rule, plan, &ctx), plan);
}

// --- UnionAllFuse (IV.D) -------------------------------------------------------

TEST(UnionAllFuseTest, TagTableForOverlappingBranches) {
  PlanContext ctx;
  auto make = [&](int64_t lo) {
    PlanBuilder b = Sales(&ctx);
    b.Filter(eb::Ge(b.Ref("ss_quantity"), eb::Int(lo)));
    b.Select({"ss_item_sk"});
    return b;
  };
  // Overlapping predicates (>=20 and >=60): the tag table is required.
  PlanPtr plan = PlanBuilder::UnionAll(&ctx, {make(20), make(60)}).Build();
  UnionAllFuseRule rule;
  PlanPtr rewritten = ApplyAtRoot(rule, plan, &ctx);
  ASSERT_NE(rewritten, plan);
  EXPECT_EQ(CountOps(rewritten, OpKind::kValues), 1);
  EXPECT_EQ(CountOps(rewritten, OpKind::kUnionAll), 0);
  EXPECT_EQ(CountTableScans(rewritten, "store_sales"), 1);
  ExpectSameResults(plan, rewritten);
}

TEST(UnionAllFuseTest, ContradictionShortcutSkipsTagTable) {
  PlanContext ctx;
  auto make = [&](int64_t lo, int64_t hi) {
    PlanBuilder b = Sales(&ctx);
    b.Filter(eb::Between(b.Ref("ss_quantity"), eb::Int(lo), eb::Int(hi)));
    b.Select({"ss_item_sk"});
    return b;
  };
  PlanPtr plan = PlanBuilder::UnionAll(&ctx, {make(1, 20), make(21, 40)})
                     .Build();
  UnionAllFuseRule rule;
  PlanPtr rewritten = ApplyAtRoot(rule, plan, &ctx);
  ASSERT_NE(rewritten, plan);
  EXPECT_EQ(CountOps(rewritten, OpKind::kValues), 0);
  EXPECT_EQ(CountOps(rewritten, OpKind::kJoin), 0);
  ExpectSameResults(plan, rewritten);
}

TEST(UnionAllFuseTest, NaryUnionFusesAllBranches) {
  PlanContext ctx;
  std::vector<PlanBuilder> branches;
  for (int i = 0; i < 4; ++i) {
    PlanBuilder b = Sales(&ctx);
    b.Filter(eb::Ge(b.Ref("ss_quantity"), eb::Int(20 * i)));
    b.Select({"ss_item_sk", "ss_quantity"});
    branches.push_back(b);
  }
  PlanPtr plan = PlanBuilder::UnionAll(&ctx, branches).Build();
  UnionAllFuseRule rule;
  PlanPtr rewritten = ApplyAtRoot(rule, plan, &ctx);
  ASSERT_NE(rewritten, plan);
  EXPECT_EQ(CountTableScans(rewritten, "store_sales"), 1);
  const auto* values = CastPtr<ValuesOp>([&] {
    // Find the Values op.
    std::function<PlanPtr(const PlanPtr&)> find = [&](const PlanPtr& p) {
      if (p->kind() == OpKind::kValues) return p;
      for (const PlanPtr& c : p->children()) {
        PlanPtr f = find(c);
        if (f != nullptr) return f;
      }
      return PlanPtr();
    };
    return find(rewritten);
  }());
  ASSERT_NE(values, nullptr);
  EXPECT_EQ(values->rows().size(), 4u);
  ExpectSameResults(plan, rewritten);
}

TEST(UnionAllFuseTest, UnfusableBranchesUntouched) {
  PlanContext ctx;
  PlanBuilder a = Sales(&ctx);
  a.Select({"ss_item_sk"});
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  PlanBuilder b = PlanBuilder::Scan(&ctx, item, {"i_item_sk"});
  PlanPtr plan = PlanBuilder::UnionAll(&ctx, {a, b}).Build();
  UnionAllFuseRule rule;
  EXPECT_EQ(ApplyAtRoot(rule, plan, &ctx), plan);
}

}  // namespace
}  // namespace fusiondb
