// Whole-optimizer properties: schema stability, idempotence, configuration
// behaviour, and the paper-expected plan shapes for the studied queries.
#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::SharedTpcds;
using testutil::Unwrap;

PlanPtr BuildQuery(const std::string& name, PlanContext* ctx) {
  tpcds::TpcdsQuery q = Unwrap(tpcds::QueryByName(name));
  return Unwrap(q.build(SharedTpcds(), ctx));
}

TEST(OptimizerTest, PreservesOutputSchemaExactly) {
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    PlanContext ctx;
    PlanPtr plan = Unwrap(q.build(SharedTpcds(), &ctx));
    for (const OptimizerOptions& options :
         {OptimizerOptions::Baseline(), OptimizerOptions::Fused()}) {
      PlanPtr optimized = Unwrap(Optimizer(options).Optimize(plan, &ctx));
      ASSERT_EQ(optimized->schema().num_columns(),
                plan->schema().num_columns())
          << q.name;
      for (size_t i = 0; i < plan->schema().num_columns(); ++i) {
        EXPECT_EQ(optimized->schema().column(i).id,
                  plan->schema().column(i).id)
            << q.name << " column " << i;
        EXPECT_EQ(optimized->schema().column(i).type,
                  plan->schema().column(i).type);
      }
    }
  }
}

TEST(OptimizerTest, Idempotent) {
  for (const char* name : {"q65", "q09", "q23", "q95", "q03"}) {
    PlanContext ctx;
    PlanPtr plan = BuildQuery(name, &ctx);
    Optimizer optimizer(OptimizerOptions::Fused());
    PlanPtr once = Unwrap(optimizer.Optimize(plan, &ctx));
    PlanPtr twice = Unwrap(optimizer.Optimize(once, &ctx));
    // A second run must not change structure (operator census identical).
    EXPECT_EQ(CountAllOps(once), CountAllOps(twice)) << name;
    EXPECT_TRUE(
        ResultsEquivalent(MustExecute(once), MustExecute(twice)))
        << name;
  }
}

TEST(OptimizerTest, PaperPlanShapes) {
  // The Section V deep-dive shapes: what appears and what disappears.
  PlanContext ctx;
  Optimizer fused(OptimizerOptions::Fused());

  // Q01/Q65: the duplicated aggregation becomes a Window.
  for (const char* name : {"q01", "q30", "q65", "q65v"}) {
    PlanPtr p = Unwrap(fused.Optimize(BuildQuery(name, &ctx), &ctx));
    EXPECT_EQ(CountOps(p, OpKind::kWindow), 1) << name;
  }
  // Q09: one scan of store_sales carrying all 15 aggregates.
  PlanPtr q09 = Unwrap(fused.Optimize(BuildQuery("q09", &ctx), &ctx));
  EXPECT_EQ(CountTableScans(q09, "store_sales"), 1);
  // Q23: one instance of each CTE and of date_dim.
  PlanPtr q23 = Unwrap(fused.Optimize(BuildQuery("q23", &ctx), &ctx));
  EXPECT_EQ(CountTableScans(q23, "store_sales"), 2);  // two distinct CTEs
  EXPECT_EQ(CountTableScans(q23, "date_dim"), 2);     // CTE + fact filter
  EXPECT_EQ(CountOps(q23, OpKind::kUnionAll), 1);
  // Q95: the ws_wh self-join evaluated once (2 web_sales scans inside the
  // fused ws_wh + 1 driving scan = 3, vs 5 in the baseline).
  PlanPtr q95b = Unwrap(Optimizer(OptimizerOptions::Baseline())
                            .Optimize(BuildQuery("q95", &ctx), &ctx));
  PlanPtr q95f = Unwrap(fused.Optimize(BuildQuery("q95", &ctx), &ctx));
  EXPECT_EQ(CountTableScans(q95b, "web_sales"), 5);
  EXPECT_EQ(CountTableScans(q95f, "web_sales"), 3);
}

TEST(OptimizerTest, BaselineAppliesNoFusionRules) {
  PlanContext ctx;
  PlanPtr plan = BuildQuery("q65", &ctx);
  PlanPtr baseline =
      Unwrap(Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx));
  EXPECT_EQ(CountOps(baseline, OpKind::kWindow), 0);
  EXPECT_EQ(CountTableScans(baseline, "store_sales"), 2);
}

TEST(OptimizerTest, IndividualRuleToggles) {
  PlanContext ctx;
  OptimizerOptions no_window = OptimizerOptions::Fused();
  no_window.enable_group_by_join_to_window = false;
  PlanPtr q65 = Unwrap(Optimizer(no_window).Optimize(
      BuildQuery("q65", &ctx), &ctx));
  EXPECT_EQ(CountOps(q65, OpKind::kWindow), 0);

  OptimizerOptions no_union = OptimizerOptions::Fused();
  no_union.enable_union_all_on_join = false;
  PlanPtr q23 = Unwrap(Optimizer(no_union).Optimize(
      BuildQuery("q23", &ctx), &ctx));
  EXPECT_EQ(CountTableScans(q23, "store_sales"), 4);  // both CTEs duplicated
}

TEST(OptimizerTest, MarkDistinctLoweringConfigEquivalence) {
  // Q28 and Q95 (distinct aggregates) under both distinct strategies.
  for (const char* name : {"q28", "q95"}) {
    PlanContext ctx;
    PlanPtr plan = BuildQuery(name, &ctx);
    OptimizerOptions with_md = OptimizerOptions::Fused();
    with_md.enable_distinct_lowering = true;
    PlanPtr native = Unwrap(
        Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
    PlanPtr lowered = Unwrap(Optimizer(with_md).Optimize(plan, &ctx));
    EXPECT_GT(CountOps(lowered, OpKind::kMarkDistinct), 0) << name;
    EXPECT_TRUE(ResultsEquivalent(MustExecute(native), MustExecute(lowered)))
        << name;
  }
}

TEST(OptimizerTest, PartitionPruningSurvivesFusion) {
  // The fused Q65 plan must still prune date partitions... the date filter
  // sits on date_dim (not the fact), so check on a direct fact filter.
  PlanContext ctx;
  TablePtr ss = Unwrap(SharedTpcds().GetTable("store_sales"));
  auto make = [&]() {
    PlanBuilder b = PlanBuilder::Scan(&ctx, ss,
                                      {"ss_sold_date_sk", "ss_quantity"});
    b.Filter(eb::Gt(b.Ref("ss_sold_date_sk"), eb::Int(2452500)));
    b.Aggregate({}, {{"c", AggFunc::kCountStar, nullptr, nullptr, false}});
    return b;
  };
  PlanBuilder q = make();
  q.CrossJoin(make());
  PlanPtr fused = Unwrap(
      Optimizer(OptimizerOptions::Fused()).Optimize(q.Build(), &ctx));
  QueryResult r = MustExecute(fused);
  EXPECT_GT(r.metrics().partitions_pruned, 0);
  EXPECT_EQ(CountTableScans(fused, "store_sales"), 1);
}

}  // namespace
}  // namespace fusiondb
