// Table building, partitioning, key metadata, byte accounting, and the
// column-page encoding roundtrip.
#include <gtest/gtest.h>

#include <random>

#include "catalog/catalog.h"
#include "catalog/encoding.h"

namespace fusiondb {
namespace {

Result<TablePtr> MakePartitionedTable() {
  TableBuilder b("t", {{"k", DataType::kInt64}, {"v", DataType::kFloat64}});
  FUSIONDB_RETURN_IF_ERROR(b.PartitionBy("k", 10));
  for (int64_t i = 0; i < 100; ++i) {
    FUSIONDB_RETURN_IF_ERROR(
        b.AppendRow({Value::Int64(i), Value::Float64(i * 0.5)}));
  }
  return b.Build();
}

TEST(TableBuilderTest, PartitionsByBucket) {
  auto table = MakePartitionedTable();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->partitions().size(), 10u);
  EXPECT_EQ((*table)->num_rows(), 100);
  // Partition min/max ranges must tile the key space.
  for (const Partition& p : (*table)->partitions()) {
    EXPECT_EQ(p.num_rows(), 10u);
    EXPECT_EQ(p.max_key - p.min_key, 9);
  }
}

TEST(TableBuilderTest, UnpartitionedSinglePartition) {
  TableBuilder b("t", {{"x", DataType::kInt64}});
  ASSERT_TRUE(b.AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(2)}).ok());
  auto table = b.Build();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->partitions().size(), 1u);
}

TEST(TableBuilderTest, EmptyTableHasSchemaPartition) {
  TableBuilder b("t", {{"x", DataType::kInt64}});
  auto table = b.Build();
  ASSERT_TRUE(table.ok());
  ASSERT_EQ((*table)->partitions().size(), 1u);
  EXPECT_EQ((*table)->num_rows(), 0);
}

TEST(TableBuilderTest, RejectsArityMismatchAndBadColumns) {
  TableBuilder b("t", {{"x", DataType::kInt64}});
  EXPECT_FALSE(b.AppendRow({Value::Int64(1), Value::Int64(2)}).ok());
  EXPECT_FALSE(b.PartitionBy("nope", 10).ok());
  TableBuilder s("t2", {{"x", DataType::kString}});
  EXPECT_FALSE(s.PartitionBy("x", 10).ok());
  EXPECT_FALSE(b.SetPrimaryKey({"nope"}).ok());
}

TEST(TableBuilderTest, PrimaryKeyRecorded) {
  TableBuilder b("t", {{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  ASSERT_TRUE(b.SetPrimaryKey({"b"}).ok());
  auto table = b.Build();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->primary_key(), std::vector<int>{1});
}

TEST(TableTest, BytesOfSelectsColumns) {
  auto table = MakePartitionedTable();
  ASSERT_TRUE(table.ok());
  int64_t both = (*table)->BytesOf({0, 1});
  int64_t first = (*table)->BytesOf({0});
  EXPECT_GT(both, first);
  EXPECT_GT(first, 0);
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  auto table = MakePartitionedTable();
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(catalog.RegisterTable(*table).ok());
  EXPECT_TRUE(catalog.GetTable("t").ok());
  EXPECT_FALSE(catalog.GetTable("missing").ok());
  // Duplicate registration rejected.
  EXPECT_FALSE(catalog.RegisterTable(*table).ok());
  EXPECT_FALSE(catalog.RegisterTable(nullptr).ok());
  EXPECT_EQ(catalog.TableNames().size(), 1u);
}

// --- Encoding roundtrips -----------------------------------------------------

Column RandomColumn(DataType type, size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Column c(type);
  for (size_t i = 0; i < n; ++i) {
    if (rng() % 10 == 0) {
      c.AppendNull();
      continue;
    }
    switch (type) {
      case DataType::kBool:
        c.AppendBool(rng() % 2 == 0);
        break;
      case DataType::kInt64:
      case DataType::kDate:
        c.AppendInt(static_cast<int64_t>(rng()) % 1000000 - 500000);
        break;
      case DataType::kFloat64:
        c.AppendDouble(static_cast<double>(rng() % 100000) / 7.0);
        break;
      case DataType::kString:
        c.AppendString(std::string(rng() % 20, 'a' + rng() % 26));
        break;
    }
  }
  return c;
}

class EncodingRoundtripTest
    : public ::testing::TestWithParam<std::tuple<DataType, size_t>> {};

TEST_P(EncodingRoundtripTest, Roundtrips) {
  auto [type, n] = GetParam();
  Column original = RandomColumn(type, n, 1234 + n);
  EncodedColumn page = EncodeColumn(original);
  EXPECT_EQ(page.num_rows, n);
  auto decoded = DecodeColumn(page);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(decoded->GetValue(i), original.GetValue(i)) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, EncodingRoundtripTest,
    ::testing::Combine(::testing::Values(DataType::kBool, DataType::kInt64,
                                         DataType::kDate, DataType::kFloat64,
                                         DataType::kString),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{7},
                                         size_t{1000})));

TEST(EncodingTest, CorruptPagesFailGracefully) {
  Column c(DataType::kInt64);
  for (int i = 0; i < 100; ++i) c.AppendInt(i * 1000);
  EncodedColumn page = EncodeColumn(c);
  // Truncate the buffer: decode must error, not crash.
  page.buffer.resize(page.buffer.size() / 2);
  EXPECT_FALSE(DecodeColumn(page).ok());
  page.buffer.clear();
  EXPECT_FALSE(DecodeColumn(page).ok());
}

TEST(EncodingTest, DeltaEncodingCompressesSortedKeys) {
  Column sorted(DataType::kInt64);
  for (int i = 0; i < 10000; ++i) sorted.AppendInt(2450815 + i);
  EncodedColumn page = EncodeColumn(sorted);
  // Delta+varint: sorted surrogate keys take ~1-2 bytes each, far below the
  // 8-byte raw width.
  EXPECT_LT(page.ByteSize(), 10000 * 3);
}

}  // namespace
}  // namespace fusiondb
