// Hash join executor: inner/left/semi/cross, residual predicates, NULL
// keys, and working-memory accounting.
#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::Unwrap;

/// left(id, grp): (1,10) (2,20) (3,NULL) (4,40)
TablePtr LeftTable() {
  static TablePtr t = [] {
    TableBuilder b("left_t", {{"id", DataType::kInt64},
                              {"grp", DataType::kInt64}});
    EXPECT_TRUE(b.AppendRow({Value::Int64(1), Value::Int64(10)}).ok());
    EXPECT_TRUE(b.AppendRow({Value::Int64(2), Value::Int64(20)}).ok());
    EXPECT_TRUE(b.AppendRow({Value::Int64(3), Value::Null(DataType::kInt64)})
                    .ok());
    EXPECT_TRUE(b.AppendRow({Value::Int64(4), Value::Int64(40)}).ok());
    return Unwrap(b.Build());
  }();
  return t;
}

/// right(ref, tagname): (10,"a") (10,"b") (20,"c") (NULL,"n") (99,"z")
TablePtr RightTable() {
  static TablePtr t = [] {
    TableBuilder b("right_t", {{"ref", DataType::kInt64},
                               {"tagname", DataType::kString}});
    EXPECT_TRUE(b.AppendRow({Value::Int64(10), Value::String("a")}).ok());
    EXPECT_TRUE(b.AppendRow({Value::Int64(10), Value::String("b")}).ok());
    EXPECT_TRUE(b.AppendRow({Value::Int64(20), Value::String("c")}).ok());
    EXPECT_TRUE(
        b.AppendRow({Value::Null(DataType::kInt64), Value::String("n")}).ok());
    EXPECT_TRUE(b.AppendRow({Value::Int64(99), Value::String("z")}).ok());
    return Unwrap(b.Build());
  }();
  return t;
}

std::pair<PlanBuilder, PlanBuilder> Scans(PlanContext* ctx) {
  return {PlanBuilder::Scan(ctx, LeftTable(), {"id", "grp"}),
          PlanBuilder::Scan(ctx, RightTable(), {"ref", "tagname"})};
}

TEST(JoinExecTest, InnerJoinMultiplicity) {
  PlanContext ctx;
  auto [l, r] = Scans(&ctx);
  l.JoinOn(JoinType::kInner, r, {{"grp", "ref"}});
  QueryResult result = MustExecute(l.Build());
  // id=1 matches two right rows, id=2 one; NULL grp and 40 match none.
  EXPECT_EQ(result.num_rows(), 3);
}

TEST(JoinExecTest, NullKeysNeverJoin) {
  PlanContext ctx;
  auto [l, r] = Scans(&ctx);
  l.JoinOn(JoinType::kInner, r, {{"grp", "ref"}});
  QueryResult result = MustExecute(l.Build());
  for (int64_t i = 0; i < result.num_rows(); ++i) {
    EXPECT_FALSE(result.At(i, 1).is_null());
    EXPECT_FALSE(result.At(i, 2).is_null());
  }
}

TEST(JoinExecTest, LeftJoinNullExtends) {
  PlanContext ctx;
  auto [l, r] = Scans(&ctx);
  l.JoinOn(JoinType::kLeft, r, {{"grp", "ref"}});
  QueryResult result = MustExecute(l.Build());
  // 3 matches + 2 unmatched left rows (id=3 NULL grp, id=4).
  EXPECT_EQ(result.num_rows(), 5);
  int nulls = 0;
  for (int64_t i = 0; i < result.num_rows(); ++i) {
    nulls += result.At(i, 3).is_null() ? 1 : 0;
  }
  EXPECT_EQ(nulls, 2);
}

TEST(JoinExecTest, SemiJoinEmitsLeftOnce) {
  PlanContext ctx;
  auto [l, r] = Scans(&ctx);
  l.Join(JoinType::kSemi, r, eb::Eq(l.Ref("grp"), r.Ref("ref")));
  QueryResult result = MustExecute(l.Build());
  // id=1 (despite two matches) and id=2.
  EXPECT_EQ(result.num_rows(), 2);
  EXPECT_EQ(result.schema().num_columns(), 2u);
}

TEST(JoinExecTest, ResidualPredicate) {
  PlanContext ctx;
  auto [l, r] = Scans(&ctx);
  // Equi join + non-equi residual on the right string column.
  l.JoinOn(JoinType::kInner, r, {{"grp", "ref"}},
           eb::Ne(r.Ref("tagname"), eb::Str("a")));
  QueryResult result = MustExecute(l.Build());
  EXPECT_EQ(result.num_rows(), 2);  // (1,b) and (2,c)
}

TEST(JoinExecTest, PureNonEquiFallsBackToNestedLoop) {
  PlanContext ctx;
  auto [l, r] = Scans(&ctx);
  l.Join(JoinType::kInner, r, eb::Lt(l.Ref("grp"), r.Ref("ref")));
  QueryResult result = MustExecute(l.Build());
  // grp=10 < {20,99} => 2; grp=20 < {99} => 1; grp=40 < {99} => 1.
  EXPECT_EQ(result.num_rows(), 4);
}

TEST(JoinExecTest, CrossJoinFullProduct) {
  PlanContext ctx;
  auto [l, r] = Scans(&ctx);
  l.CrossJoin(r);
  QueryResult result = MustExecute(l.Build());
  EXPECT_EQ(result.num_rows(), 20);
}

TEST(JoinExecTest, BuildSideMemoryAccounted) {
  PlanContext ctx;
  auto [l, r] = Scans(&ctx);
  l.JoinOn(JoinType::kInner, r, {{"grp", "ref"}});
  QueryResult result = MustExecute(l.Build());
  EXPECT_GT(result.metrics().peak_hash_bytes, 0);
}

TEST(JoinExecTest, SelfJoinWithInequality) {
  // The Q95 ws_wh shape: self-join on a key with an inequality residual.
  PlanContext ctx;
  PlanBuilder a = PlanBuilder::Scan(&ctx, RightTable(), {"ref", "tagname"});
  PlanBuilder b = PlanBuilder::Scan(&ctx, RightTable(), {"ref", "tagname"});
  ExprPtr cond = eb::And(eb::Eq(a.Ref("ref"), b.Ref("ref")),
                         eb::Ne(a.Ref("tagname"), b.Ref("tagname")));
  a.Join(JoinType::kInner, b, cond);
  QueryResult result = MustExecute(a.Build());
  // ref=10 has two rows with different tags -> (a,b) and (b,a).
  EXPECT_EQ(result.num_rows(), 2);
}

}  // namespace
}  // namespace fusiondb
