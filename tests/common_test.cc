// Status / Result plumbing.
#include "common/status.h"

#include <gtest/gtest.h>

namespace fusiondb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "invalid_argument: bad thing");
}

TEST(StatusTest, CopyingSharesState) {
  Status st = Status::Internal("boom");
  Status copy = st;
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.message(), "boom");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::PlanError("x").code(), StatusCode::kPlanError);
  EXPECT_EQ(Status::ExecutionError("x").code(), StatusCode::kExecutionError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::TypeError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Result<int> Doubler(Result<int> in) {
  FUSIONDB_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Doubler(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubler(Status::Internal("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

Status Checker(bool fail) {
  FUSIONDB_RETURN_IF_ERROR(fail ? Status::PlanError("stop") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfError) {
  EXPECT_TRUE(Checker(false).ok());
  EXPECT_EQ(Checker(true).code(), StatusCode::kPlanError);
}

}  // namespace
}  // namespace fusiondb
