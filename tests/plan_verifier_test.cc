// PlanVerifier: hand-built broken plans must be rejected with the right
// invariant tag and status code, and every TPC-DS plan — before and after
// optimization, in every configuration — must verify cleanly.
#include <gtest/gtest.h>

#include "analysis/plan_verifier.h"
#include "plan/spool.h"
#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::SharedTpcds;
using testutil::Unwrap;

PlanBuilder Items(PlanContext* ctx) {
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  return PlanBuilder::Scan(ctx, item, {"i_item_sk", "i_brand_id"});
}

/// Asserts `plan` is rejected with `code` and an invariant tag in brackets.
void ExpectViolation(const PlanPtr& plan, StatusCode code, const char* tag) {
  Status st = PlanVerifier::Verify(plan, "test");
  ASSERT_FALSE(st.ok()) << "expected [" << tag << "] violation, plan:\n"
                        << PlanToString(plan);
  EXPECT_EQ(st.code(), code) << st.ToString();
  EXPECT_NE(st.message().find(std::string("[") + tag + "]"),
            std::string::npos)
      << "expected tag [" << tag << "] in: " << st.ToString();
  // Diagnostics must carry the pretty-printed offending subplan.
  EXPECT_NE(st.message().find("offending subplan:"), std::string::npos)
      << st.ToString();
}

TEST(PlanVerifierTest, AcceptsValidPlan) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  PlanPtr plan = std::make_shared<FilterOp>(
      b.Build(), eb::Gt(b.Ref("i_brand_id"), eb::Int(0)));
  FUSIONDB_EXPECT_OK(PlanVerifier::Verify(plan, "test"));
}

TEST(PlanVerifierTest, RejectsUnboundColumnReference) {
  PlanContext ctx;
  PlanPtr bad = std::make_shared<FilterOp>(
      Items(&ctx).Build(),
      eb::Gt(eb::Col(99999, DataType::kInt64), eb::Int(0)));
  ExpectViolation(bad, StatusCode::kPlanError, "unresolved-column");
}

TEST(PlanVerifierTest, RejectsNonBooleanPredicate) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  PlanPtr bad = std::make_shared<FilterOp>(b.Build(), b.Ref("i_brand_id"));
  ExpectViolation(bad, StatusCode::kTypeError, "predicate-not-boolean");
}

TEST(PlanVerifierTest, RejectsUnionMappingArityMismatch) {
  PlanContext ctx;
  PlanBuilder a = Items(&ctx);
  PlanBuilder b = Items(&ctx);
  // The second input maps two columns onto a single-column output.
  PlanPtr bad = std::make_shared<UnionAllOp>(
      std::vector<PlanPtr>{a.Build(), b.Build()},
      Schema({{ctx.NextId(), "x", DataType::kInt64}}),
      std::vector<std::vector<ColumnId>>{
          {a.Col("i_item_sk").id},
          {b.Col("i_item_sk").id, b.Col("i_brand_id").id}});
  ExpectViolation(bad, StatusCode::kPlanError, "union-mapping-arity");
}

TEST(PlanVerifierTest, RejectsUnionBranchFeedingWrongType) {
  PlanContext ctx;
  ColumnId ia = ctx.NextId();
  ColumnId fb = ctx.NextId();
  PlanPtr ints = std::make_shared<ValuesOp>(
      Schema({{ia, "a", DataType::kInt64}}),
      std::vector<std::vector<Value>>{{Value::Int64(1)}});
  PlanPtr floats = std::make_shared<ValuesOp>(
      Schema({{fb, "b", DataType::kFloat64}}),
      std::vector<std::vector<Value>>{{Value::Float64(2.5)}});
  // Output declares int64, second branch feeds it float64.
  PlanPtr bad = std::make_shared<UnionAllOp>(
      std::vector<PlanPtr>{ints, floats},
      Schema({{ctx.NextId(), "x", DataType::kInt64}}),
      std::vector<std::vector<ColumnId>>{{ia}, {fb}});
  ExpectViolation(bad, StatusCode::kTypeError, "union-branch-type");
}

TEST(PlanVerifierTest, RejectsSpoolConsumersWithDivergedProducers) {
  PlanContext ctx;
  ColumnId a = ctx.NextId();
  ColumnId b = ctx.NextId();
  // Two spools claim id 7 but materialize *different* subtrees: one
  // consumer would silently read the other relation's buffer.
  PlanPtr left = std::make_shared<SpoolOp>(
      7, std::make_shared<ValuesOp>(
             Schema({{a, "a", DataType::kInt64}}),
             std::vector<std::vector<Value>>{{Value::Int64(1)}}));
  PlanPtr right = std::make_shared<SpoolOp>(
      7, std::make_shared<ValuesOp>(
             Schema({{b, "b", DataType::kInt64}}),
             std::vector<std::vector<Value>>{{Value::Int64(2)}}));
  PlanPtr bad = std::make_shared<UnionAllOp>(
      std::vector<PlanPtr>{left, right},
      Schema({{ctx.NextId(), "x", DataType::kInt64}}),
      std::vector<std::vector<ColumnId>>{{a}, {b}});
  ExpectViolation(bad, StatusCode::kPlanError, "dangling-spool");
}

TEST(PlanVerifierTest, AcceptsSpoolConsumersSharingOneProducer) {
  PlanContext ctx;
  ColumnId a = ctx.NextId();
  PlanPtr producer = std::make_shared<ValuesOp>(
      Schema({{a, "a", DataType::kInt64}}),
      std::vector<std::vector<Value>>{{Value::Int64(1)}});
  PlanPtr left = std::make_shared<SpoolOp>(7, producer);
  PlanPtr right = std::make_shared<SpoolOp>(7, producer);
  PlanPtr plan = std::make_shared<UnionAllOp>(
      std::vector<PlanPtr>{left, right},
      Schema({{ctx.NextId(), "x", DataType::kInt64}}),
      std::vector<std::vector<ColumnId>>{{a}, {a}});
  FUSIONDB_EXPECT_OK(PlanVerifier::Verify(plan, "test"));
}

TEST(PlanVerifierTest, RejectsSortOnMissingColumn) {
  PlanContext ctx;
  PlanPtr bad = std::make_shared<SortOp>(
      Items(&ctx).Build(), std::vector<SortKey>{{424242, true}});
  ExpectViolation(bad, StatusCode::kPlanError, "sort-key-unresolved");
}

TEST(PlanVerifierTest, RejectsNegativeLimit) {
  PlanContext ctx;
  PlanPtr bad = std::make_shared<LimitOp>(Items(&ctx).Build(), -5);
  ExpectViolation(bad, StatusCode::kPlanError, "limit-negative");
}

TEST(PlanVerifierTest, AcceptsLimitOverSortThroughOrderPreservingOps) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  PlanPtr sorted = std::make_shared<SortOp>(
      b.Build(), std::vector<SortKey>{{b.Col("i_brand_id").id, true}});
  PlanPtr filtered = std::make_shared<FilterOp>(
      sorted, eb::Gt(b.Ref("i_brand_id"), eb::Int(0)));
  PlanPtr plan = std::make_shared<LimitOp>(filtered, 10);
  FUSIONDB_EXPECT_OK(PlanVerifier::Verify(plan, "test"));
}

TEST(PlanVerifierTest, RejectsLimitWhoseSortOrderingIsDestroyed) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  PlanPtr sorted = std::make_shared<SortOp>(
      b.Build(), std::vector<SortKey>{{b.Col("i_brand_id").id, true}});
  // An aggregate between the Sort and the Limit re-buckets rows, so the
  // Limit no longer takes the top-K of the sorted stream.
  PlanPtr agg = std::make_shared<AggregateOp>(
      sorted, std::vector<ColumnId>{b.Col("i_brand_id").id},
      std::vector<AggregateItem>{});
  PlanPtr bad = std::make_shared<LimitOp>(agg, 10);
  ExpectViolation(bad, StatusCode::kPlanError, "limit-sort-order-destroyed");
}

TEST(PlanVerifierTest, NestedLimitOwnsItsOwnSort) {
  // The Sort below an inner Limit belongs to that Limit's top-K contract;
  // the outer Limit over the aggregate makes no ordering claim.
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  PlanPtr sorted = std::make_shared<SortOp>(
      b.Build(), std::vector<SortKey>{{b.Col("i_brand_id").id, true}});
  PlanPtr inner = std::make_shared<LimitOp>(sorted, 5);
  PlanPtr agg = std::make_shared<AggregateOp>(
      inner, std::vector<ColumnId>{b.Col("i_brand_id").id},
      std::vector<AggregateItem>{});
  PlanPtr plan = std::make_shared<LimitOp>(agg, 10);
  FUSIONDB_EXPECT_OK(PlanVerifier::Verify(plan, "test"));
}

TEST(PlanVerifierTest, RejectsValuesRowArityMismatch) {
  PlanContext ctx;
  PlanPtr bad = std::make_shared<ValuesOp>(
      Schema({{ctx.NextId(), "a", DataType::kInt64},
              {ctx.NextId(), "b", DataType::kInt64}}),
      std::vector<std::vector<Value>>{{Value::Int64(1)}});
  ExpectViolation(bad, StatusCode::kPlanError, "values-row-arity");
}

TEST(PlanVerifierTest, RejectsValuesCellTypeMismatch) {
  PlanContext ctx;
  PlanPtr bad = std::make_shared<ValuesOp>(
      Schema({{ctx.NextId(), "a", DataType::kInt64}}),
      std::vector<std::vector<Value>>{{Value::String("oops")}});
  ExpectViolation(bad, StatusCode::kTypeError, "values-cell-type");
}

TEST(PlanVerifierTest, RejectsForeignGroupByColumn) {
  PlanContext ctx;
  PlanBuilder b = Items(&ctx);
  PlanBuilder other = Items(&ctx);
  PlanPtr bad = std::make_shared<AggregateOp>(
      b.Build(), std::vector<ColumnId>{other.Col("i_brand_id").id},
      std::vector<AggregateItem>{});
  ExpectViolation(bad, StatusCode::kPlanError, "aggregate-group-unresolved");
}

TEST(PlanVerifierTest, RejectsCrossJoinWithRealCondition) {
  PlanContext ctx;
  PlanBuilder a = Items(&ctx);
  PlanBuilder b = Items(&ctx);
  PlanPtr bad = std::make_shared<JoinOp>(
      JoinType::kCross, a.Build(), b.Build(),
      eb::Eq(a.Ref("i_item_sk"), b.Ref("i_item_sk")));
  ExpectViolation(bad, StatusCode::kPlanError, "cross-join-condition");
}

TEST(PlanVerifierTest, ContextAppearsInViolationMessage) {
  PlanContext ctx;
  PlanPtr bad = std::make_shared<LimitOp>(Items(&ctx).Build(), -1);
  Status st = PlanVerifier::Verify(bad, "unit-test-context");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unit-test-context"), std::string::npos)
      << st.ToString();
}

// Every freshly-built TPC-DS plan must verify before optimization. This
// includes the correlated queries whose plans still contain Apply: Apply is
// structurally valid pre-decorrelation (the executor, not the verifier,
// refuses to run it).
TEST(PlanVerifierTest, AllTpcdsPlansVerifyUnoptimized) {
  const Catalog& catalog = SharedTpcds();
  PlanContext ctx;
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    PlanPtr plan = Unwrap(q.build(catalog, &ctx));
    FUSIONDB_ASSERT_OK(PlanVerifier::Verify(plan, q.name + " unoptimized"));
  }
}

// Every TPC-DS plan must verify after optimization under every
// configuration: a rewrite that emits an invalid plan is a bug even when the
// plan happens to execute.
TEST(PlanVerifierTest, AllTpcdsPlansVerifyAfterOptimization) {
  const Catalog& catalog = SharedTpcds();
  const struct {
    const char* name;
    OptimizerOptions options;
  } configs[] = {
      {"baseline", OptimizerOptions::Baseline()},
      {"fused", OptimizerOptions::Fused()},
      {"spooling", OptimizerOptions::Spooling()},
  };
  for (const auto& cfg : configs) {
    Optimizer optimizer(cfg.options);
    for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
      PlanContext ctx;
      PlanPtr plan = Unwrap(q.build(catalog, &ctx));
      PlanPtr optimized = Unwrap(optimizer.Optimize(plan, &ctx));
      FUSIONDB_ASSERT_OK(PlanVerifier::Verify(
          optimized, q.name + std::string(" optimized/") + cfg.name));
    }
  }
}

}  // namespace
}  // namespace fusiondb
