// Logical plan construction: PlanBuilder, schema propagation,
// CloneWithChildren, the plan printer and structural helpers.
#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::SharedTpcds;
using testutil::Unwrap;

PlanBuilder ScanItems(PlanContext* ctx) {
  TablePtr item = Unwrap(SharedTpcds().GetTable("item"));
  return PlanBuilder::Scan(ctx, item,
                           {"i_item_sk", "i_brand_id", "i_category"});
}

TEST(PlanBuilderTest, ScanMintsFreshIds) {
  PlanContext ctx;
  PlanBuilder a = ScanItems(&ctx);
  PlanBuilder b = ScanItems(&ctx);
  // Two instances of the same table get disjoint column identities —
  // Athena's convention, which fusion relies on.
  for (const ColumnInfo& ca : a.schema().columns()) {
    EXPECT_FALSE(b.schema().Contains(ca.id));
  }
  EXPECT_EQ(a.Build()->kind(), OpKind::kScan);
  EXPECT_EQ(Cast<ScanOp>(*a.Build()).table()->name(), "item");
}

TEST(PlanBuilderTest, FilterProjectSchemas) {
  PlanContext ctx;
  PlanBuilder b = ScanItems(&ctx);
  ColumnId sk = b.Col("i_item_sk").id;
  b.Filter(eb::Gt(b.Ref("i_item_sk"), eb::Int(10)));
  EXPECT_EQ(b.schema().num_columns(), 3u);  // filters pass through
  b.Project({{"doubled", eb::Mul(b.Ref("i_item_sk"), eb::Int(2))}});
  EXPECT_EQ(b.schema().num_columns(), 1u);
  EXPECT_EQ(b.schema().column(0).name, "doubled");
  EXPECT_FALSE(b.schema().Contains(sk));
}

TEST(PlanBuilderTest, SelectKeepsIds) {
  PlanContext ctx;
  PlanBuilder b = ScanItems(&ctx);
  ColumnId sk = b.Col("i_item_sk").id;
  b.Select({"i_item_sk"});
  EXPECT_EQ(b.schema().num_columns(), 1u);
  EXPECT_EQ(b.schema().column(0).id, sk);
}

TEST(PlanBuilderTest, JoinSchemasByType) {
  PlanContext ctx;
  PlanBuilder l = ScanItems(&ctx);
  PlanBuilder r = ScanItems(&ctx);
  size_t lw = l.schema().num_columns();
  PlanBuilder inner = l;
  inner.JoinOn(JoinType::kInner, r, {{"i_item_sk", "i_item_sk"}});
  EXPECT_EQ(inner.schema().num_columns(), 2 * lw);
  PlanBuilder semi = ScanItems(&ctx);
  PlanBuilder r2 = ScanItems(&ctx);
  semi.Join(JoinType::kSemi, r2,
            eb::Eq(semi.Ref("i_item_sk"), r2.Ref("i_item_sk")));
  EXPECT_EQ(semi.schema().num_columns(), lw);
}

TEST(PlanBuilderTest, AggregateSchema) {
  PlanContext ctx;
  PlanBuilder b = ScanItems(&ctx);
  ColumnId cat = b.Col("i_category").id;
  b.Aggregate({"i_category"},
              {{"cnt", AggFunc::kCountStar, nullptr, nullptr, false},
               {"max_brand", AggFunc::kMax, b.Ref("i_brand_id"), nullptr,
                false}});
  ASSERT_EQ(b.schema().num_columns(), 3u);
  EXPECT_EQ(b.schema().column(0).id, cat);  // group cols keep identity
  EXPECT_EQ(b.schema().column(1).type, DataType::kInt64);
  const auto& agg = Cast<AggregateOp>(*b.Build());
  EXPECT_FALSE(agg.IsScalar());
  EXPECT_EQ(agg.aggregates()[0].result_type(), DataType::kInt64);
}

TEST(PlanBuilderTest, AggResultTypes) {
  EXPECT_EQ(AggResultType(AggFunc::kAvg, DataType::kInt64),
            DataType::kFloat64);
  EXPECT_EQ(AggResultType(AggFunc::kSum, DataType::kInt64), DataType::kInt64);
  EXPECT_EQ(AggResultType(AggFunc::kSum, DataType::kFloat64),
            DataType::kFloat64);
  EXPECT_EQ(AggResultType(AggFunc::kMin, DataType::kString),
            DataType::kString);
  EXPECT_EQ(AggResultType(AggFunc::kCount, DataType::kString),
            DataType::kInt64);
}

TEST(PlanBuilderTest, WindowAppendsColumns) {
  PlanContext ctx;
  PlanBuilder b = ScanItems(&ctx);
  b.Window({"i_category"}, {{"avg_brand", AggFunc::kAvg, b.Ref("i_brand_id"),
                             nullptr, false}});
  EXPECT_EQ(b.schema().num_columns(), 4u);
  EXPECT_EQ(b.schema().column(3).type, DataType::kFloat64);
}

TEST(PlanBuilderTest, UnionAllPositional) {
  PlanContext ctx;
  PlanBuilder a = ScanItems(&ctx);
  a.Select({"i_item_sk"});
  PlanBuilder b = ScanItems(&ctx);
  b.Select({"i_item_sk"});
  PlanBuilder u = PlanBuilder::UnionAll(&ctx, {a, b});
  EXPECT_EQ(u.schema().num_columns(), 1u);
  const auto& op = Cast<UnionAllOp>(*u.Build());
  EXPECT_EQ(op.num_children(), 2u);
  EXPECT_EQ(op.input_columns()[0][0], a.schema().column(0).id);
}

TEST(PlanTest, CloneWithChildrenRecomputesSchema) {
  PlanContext ctx;
  PlanBuilder b = ScanItems(&ctx);
  ExprPtr pred = eb::Gt(b.Ref("i_brand_id"), eb::Int(3));
  PlanPtr filter = std::make_shared<FilterOp>(b.Build(), pred);
  // Re-parent the filter over a narrower scan that still has the column.
  PlanBuilder narrow = PlanBuilder::From(
      &ctx, b.Build());
  PlanPtr clone = filter->CloneWithChildren({narrow.Build()});
  EXPECT_EQ(clone->kind(), OpKind::kFilter);
  EXPECT_EQ(Cast<FilterOp>(*clone).predicate(), pred);
}

TEST(PlanPrinterTest, RendersAndCounts) {
  PlanContext ctx;
  PlanBuilder b = ScanItems(&ctx);
  b.Filter(eb::Gt(b.Ref("i_brand_id"), eb::Int(10)));
  b.Aggregate({"i_category"},
              {{"cnt", AggFunc::kCountStar, nullptr, nullptr, false}});
  b.Sort({{"cnt", false}});
  b.Limit(5);
  PlanPtr plan = b.Build();
  std::string text = PlanToString(plan);
  EXPECT_NE(text.find("Scan(item)"), std::string::npos);
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
  EXPECT_NE(text.find("Limit 5"), std::string::npos);
  EXPECT_EQ(CountOps(plan, OpKind::kFilter), 1);
  EXPECT_EQ(CountTableScans(plan, "item"), 1);
  EXPECT_EQ(CountTableScans(plan, "store"), 0);
  EXPECT_EQ(CountAllOps(plan), 5);
}

TEST(PlanTest, ValuesAndSingleRow) {
  PlanContext ctx;
  PlanBuilder v = PlanBuilder::Values(
      &ctx, {"tag"}, {DataType::kInt64},
      {{Value::Int64(1)}, {Value::Int64(2)}});
  EXPECT_EQ(Cast<ValuesOp>(*v.Build()).rows().size(), 2u);
  v.EnforceSingleRow();
  EXPECT_EQ(v.Build()->kind(), OpKind::kEnforceSingleRow);
}

TEST(PlanTest, ApplySchemaAppendsScalar) {
  PlanContext ctx;
  PlanBuilder outer = ScanItems(&ctx);
  PlanBuilder inner = ScanItems(&ctx);
  ColumnId corr = inner.Col("i_category").id;
  PlanBuilder sub = inner;
  sub.Aggregate({}, {{"avg_b", AggFunc::kAvg, inner.Ref("i_brand_id"),
                      nullptr, false}});
  outer.Apply(sub, {{"i_category", corr}});
  EXPECT_EQ(outer.schema().num_columns(), 4u);
  EXPECT_EQ(outer.schema().column(3).name, "avg_b");
  const auto& apply = Cast<ApplyOp>(*outer.Build());
  EXPECT_EQ(apply.correlation().size(), 1u);
}

}  // namespace
}  // namespace fusiondb
