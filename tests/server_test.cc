// Cross-query fusion server (src/server), driven through the
// fusiondb::Engine front door: N concurrent sessions over the engine's
// server must return exactly what N isolated engine runs would — same
// schema ids/names/types, same rows in the same order — while fused groups
// scan strictly fewer bytes than their members would in isolation.
//
// Batch composition is probed deterministically via SubmitBatch on the
// SessionManager that StartServer returns; the admission-window path is
// exercised through Engine::Submit in the concurrency test.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::SharedTpcds;
using testutil::Unwrap;

/// The isolated reference: the same query prepared, optimized and executed
/// on its own, exactly as a standalone client would.
QueryResult IsolatedRun(Engine* engine, const Engine::PlanBuilder& build,
                        const OptimizerOptions& optimizer) {
  PreparedQuery query = Unwrap(engine->Prepare(build));
  QueryOptions options;
  options.optimizer = optimizer;
  PlanPtr optimized = Unwrap(engine->Optimize(&query, options));
  return Unwrap(engine->ExecuteOptimized(optimized, options));
}

/// Byte-identical: schema (ids, names, types) and rows, order-sensitive.
void ExpectIdentical(const QueryResult& got, const QueryResult& want) {
  ASSERT_EQ(got.schema().num_columns(), want.schema().num_columns());
  for (size_t i = 0; i < want.schema().num_columns(); ++i) {
    EXPECT_EQ(got.schema().column(i).id, want.schema().column(i).id);
    EXPECT_EQ(got.schema().column(i).name, want.schema().column(i).name);
    EXPECT_EQ(got.schema().column(i).type, want.schema().column(i).type);
  }
  EXPECT_EQ(got.num_rows(), want.num_rows());
  EXPECT_TRUE(ResultsEqualOrdered(got, want));
}

const std::vector<const tpcds::TpcdsQuery*>& FusionQueries() {
  static auto& queries = *new std::vector<const tpcds::TpcdsQuery*>([] {
    std::vector<const tpcds::TpcdsQuery*> out;
    for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
      if (q.fusion_applicable) out.push_back(&q);
    }
    return out;
  }());
  return queries;
}

OptimizerOptions ModeOptions(const std::string& mode) {
  if (mode == "baseline") return OptimizerOptions::Baseline();
  if (mode == "spooling") return OptimizerOptions::Spooling();
  if (mode == "adaptive") return OptimizerOptions::Adaptive(nullptr);
  return OptimizerOptions::Fused();
}

/// Prepares kClients copies of the query (each with its own column-id
/// space, as independent clients would) and returns their plans; the
/// PreparedQuery objects stay alive in `out`.
std::vector<PlanPtr> PreparePlans(Engine* engine,
                                  const Engine::PlanBuilder& build, int clients,
                                  std::vector<PreparedQuery>* out) {
  std::vector<PlanPtr> plans;
  for (int i = 0; i < clients; ++i) {
    out->push_back(Unwrap(engine->Prepare(build)));
    plans.push_back(out->back().plan());
  }
  return plans;
}

// N identical queries through the server == N isolated runs, under every
// optimizer mode. Cross-query sharing composes with — never alters — the
// within-plan optimization the mode selects.
TEST(ServerTest, ByteIdenticalToIsolatedAcrossModes) {
  Engine engine(SharedTpcds());
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  constexpr int kClients = 4;
  for (const std::string mode :
       {"baseline", "fused", "spooling", "adaptive"}) {
    SCOPED_TRACE(mode);
    ServerOptions options;
    options.optimizer = ModeOptions(mode);
    SessionManager& manager = *Unwrap(engine.StartServer(options));

    std::vector<PreparedQuery> prepared;
    std::vector<SessionPtr> sessions = manager.SubmitBatch(
        PreparePlans(&engine, query.build, kClients, &prepared));
    for (int i = 0; i < kClients; ++i) {
      SCOPED_TRACE(i);
      ASSERT_TRUE(sessions[static_cast<size_t>(i)]->Wait().ok())
          << sessions[static_cast<size_t>(i)]->Wait().status().ToString();
      // Fresh prepare per reference run: the isolated client never saw the
      // server's renumbered id space.
      QueryResult isolated =
          IsolatedRun(&engine, query.build, options.optimizer);
      ExpectIdentical(*sessions[static_cast<size_t>(i)]->Wait(), isolated);
    }
    engine.StopServer();
  }
}

// Results do not depend on how many sessions share the batch.
TEST(ServerTest, SessionCountInvariance) {
  Engine engine(SharedTpcds());
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  QueryResult isolated =
      IsolatedRun(&engine, query.build, OptimizerOptions::Fused());
  for (int n : {1, 2, 5, 8}) {
    SCOPED_TRACE(n);
    SessionManager& manager = *Unwrap(engine.StartServer());
    std::vector<PreparedQuery> prepared;
    std::vector<SessionPtr> sessions =
        manager.SubmitBatch(PreparePlans(&engine, query.build, n, &prepared));
    for (const SessionPtr& s : sessions) {
      ASSERT_TRUE(s->Wait().ok()) << s->Wait().status().ToString();
      ExpectIdentical(*s->Wait(), isolated);
      EXPECT_EQ(s->shared(), n >= 2);
    }
    engine.StopServer();
  }
}

// The headline property: >= 2 identical concurrent queries pay one scan.
TEST(ServerTest, SharedGroupScansFewerBytesThanIsolated) {
  Engine engine(SharedTpcds());
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  constexpr int kClients = 4;
  SessionManager& manager = *Unwrap(engine.StartServer());
  std::vector<PreparedQuery> prepared;
  std::vector<SessionPtr> sessions = manager.SubmitBatch(
      PreparePlans(&engine, query.build, kClients, &prepared));
  for (const SessionPtr& s : sessions) ASSERT_TRUE(s->Wait().ok());

  BatchReport report = manager.last_batch_report();
  EXPECT_EQ(report.sessions, static_cast<size_t>(kClients));
  EXPECT_EQ(report.shared_groups, 1u);
  EXPECT_EQ(report.shared_sessions, static_cast<size_t>(kClients));
  EXPECT_EQ(report.solo_sessions, 0u);
  // One shared scan vs kClients isolated scans.
  EXPECT_GT(report.bytes_scanned, 0);
  EXPECT_LT(report.bytes_scanned, report.isolated_bytes_scanned);
  EXPECT_EQ(report.isolated_bytes_scanned, kClients * report.bytes_scanned);

  // Per-session attribution splits the shared scan.
  ASSERT_EQ(report.attributions.size(), static_cast<size_t>(kClients));
  int64_t attributed = 0;
  for (const SessionAttribution& a : report.attributions) {
    EXPECT_EQ(a.consumers, kClients);
    attributed += a.attributed_bytes_scanned;
  }
  EXPECT_EQ(attributed, report.bytes_scanned);

  // The share-vs-solo pricing was recorded as a cross-query decision.
  ASSERT_EQ(report.decisions.size(), 1u);
  EXPECT_TRUE(report.decisions[0].cross_query);
  EXPECT_TRUE(report.decisions[0].spooled);  // spooled == shared
  EXPECT_EQ(report.decisions[0].consumers, kClients);

  // Session-level sharing attribution matches, and the profile carries it.
  for (const SessionPtr& s : sessions) {
    EXPECT_TRUE(s->shared());
    EXPECT_EQ(s->sharing().consumers, kClients);
    EXPECT_EQ(s->sharing().shared_bytes_scanned, report.bytes_scanned);
  }
  QueryProfile profile =
      MakeSessionProfile(*sessions[0], query.name, "server-fused");
  std::string json = ProfileToJson(profile);
  EXPECT_NE(json.find("\"sharing\""), std::string::npos);
  EXPECT_NE(json.find("\"consumers\":4"), std::string::npos);
  engine.StopServer();
}

// An admission batch of one cannot share: window/batch boundaries isolate.
TEST(ServerTest, BatchOfOneNeverShares) {
  Engine engine(SharedTpcds());
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  ServerOptions options;
  options.window.max_batch = 1;  // window of 1: every query its own batch
  SessionManager& manager = *Unwrap(engine.StartServer(options));
  constexpr int kClients = 3;
  std::vector<PreparedQuery> prepared;
  std::vector<SessionPtr> sessions = manager.SubmitBatch(
      PreparePlans(&engine, query.build, kClients, &prepared));
  int64_t solo_bytes = 0;
  for (const SessionPtr& s : sessions) {
    ASSERT_TRUE(s->Wait().ok());
    EXPECT_FALSE(s->shared());
    EXPECT_EQ(s->sharing().consumers, 1);
    solo_bytes += s->sharing().shared_bytes_scanned;
  }
  // No sharing: total bytes == sum of per-session bytes == isolated.
  EXPECT_EQ(manager.total_bytes_scanned(), solo_bytes);
  EXPECT_EQ(manager.total_isolated_bytes_scanned(), solo_bytes);
  EXPECT_EQ(manager.total_shared_sessions(), 0);
  engine.StopServer();
}

// Overlapping-but-different queries: same scan, different filters. Fuse
// widens to the disjunction and each session's compensating filter
// restores exactly its own rows.
TEST(ServerTest, DifferentFiltersShareOneScan) {
  Engine engine(SharedTpcds());

  auto make_build = [](int64_t lo, int64_t hi) -> Engine::PlanBuilder {
    return [lo, hi](const Catalog& catalog,
                    PlanContext* ctx) -> Result<PlanPtr> {
      TablePtr store_sales = Unwrap(catalog.GetTable("store_sales"));
      PlanBuilder b = PlanBuilder::Scan(
          ctx, store_sales, {"ss_item_sk", "ss_quantity", "ss_sales_price"});
      b.Filter(eb::And({eb::Ge(b.Ref("ss_quantity"), eb::Int(lo)),
                        eb::Lt(b.Ref("ss_quantity"), eb::Int(hi))}));
      return b.Build();
    };
  };

  PreparedQuery q1 = Unwrap(engine.Prepare(make_build(0, 50)));
  PreparedQuery q2 = Unwrap(engine.Prepare(make_build(25, 80)));
  SessionManager& manager = *Unwrap(engine.StartServer());
  std::vector<SessionPtr> sessions =
      manager.SubmitBatch({q1.plan(), q2.plan()});
  for (const SessionPtr& s : sessions) ASSERT_TRUE(s->Wait().ok());

  ExpectIdentical(*sessions[0]->Wait(),
                  IsolatedRun(&engine, make_build(0, 50),
                              OptimizerOptions::Fused()));
  ExpectIdentical(*sessions[1]->Wait(),
                  IsolatedRun(&engine, make_build(25, 80),
                              OptimizerOptions::Fused()));
  // Both were served from one fused scan.
  EXPECT_TRUE(sessions[0]->shared());
  EXPECT_TRUE(sessions[1]->shared());
  EXPECT_LT(manager.total_bytes_scanned(),
            manager.total_isolated_bytes_scanned());
  engine.StopServer();
}

// Submitting before StartServer is an error; submitting after Stop() fails
// the session instead of hanging it.
TEST(ServerTest, SubmitAfterStopFails) {
  Engine engine(SharedTpcds());
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  PreparedQuery prepared = Unwrap(engine.Prepare(query.build));
  EXPECT_FALSE(engine.Submit(prepared).ok());  // no server running yet
  SessionManager& manager = *Unwrap(engine.StartServer());
  manager.Stop();
  SessionPtr session = Unwrap(engine.Submit(prepared));
  EXPECT_FALSE(session->Wait().ok());
  engine.StopServer();
}

// ExecuteSync is Submit + Wait through the same admission pipeline.
TEST(ServerTest, ExecuteSyncMatchesIsolated) {
  Engine engine(SharedTpcds());
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  PreparedQuery prepared = Unwrap(engine.Prepare(query.build));
  SessionManager& manager = *Unwrap(engine.StartServer());
  Result<QueryResult> result = manager.ExecuteSync(prepared.plan());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  QueryResult isolated =
      IsolatedRun(&engine, query.build, OptimizerOptions::Fused());
  ExpectIdentical(*result, isolated);
  engine.StopServer();
}

// Concurrent submission from many client threads through Engine::Submit
// (admission window path). Runs under ThreadSanitizer via the `parallel`
// ctest label; a generous window keeps the batch composition stable
// enough that at least some sessions share, but correctness must hold for
// every composition the scheduler produces.
TEST(ServerTest, ConcurrentSubmissionIsCorrect) {
  Engine engine(SharedTpcds());
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  QueryResult isolated =
      IsolatedRun(&engine, query.build, OptimizerOptions::Fused());

  ServerOptions options;
  options.window.window_ms = 100;  // hold the batch open for all clients
  SessionManager& manager = *Unwrap(engine.StartServer(options));
  constexpr int kThreads = 8;
  std::vector<SessionPtr> sessions(kThreads);
  {
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      clients.emplace_back([&, i] {
        PreparedQuery client_query = Unwrap(engine.Prepare(query.build));
        sessions[static_cast<size_t>(i)] =
            Unwrap(engine.Submit(client_query));
        sessions[static_cast<size_t>(i)]->Wait();
      });
    }
    for (std::thread& t : clients) t.join();
  }
  manager.Stop();  // drain before reading the totals
  EXPECT_EQ(manager.total_queries(), kThreads);
  engine.StopServer();
  for (const SessionPtr& s : sessions) {
    ASSERT_TRUE(s->Wait().ok()) << s->Wait().status().ToString();
    ExpectIdentical(*s->Wait(), isolated);
  }
}

// Cross-query decisions land in the caller-provided optimizer trace.
TEST(ServerTest, TraceRecordsCrossQueryDecisions) {
  Engine engine(SharedTpcds());
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  OptimizerTrace trace;
  ServerOptions options;
  options.trace = &trace;
  SessionManager& manager = *Unwrap(engine.StartServer(options));
  std::vector<PreparedQuery> prepared;
  for (const SessionPtr& s : manager.SubmitBatch(
           PreparePlans(&engine, query.build, 2, &prepared))) {
    ASSERT_TRUE(s->Wait().ok());
  }
  bool found = false;
  for (const CostDecision& d : trace.cost_decisions()) {
    if (d.cross_query) {
      found = true;
      EXPECT_EQ(d.consumers, 2);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(trace.ToString().find("[cross-query]"), std::string::npos);
  engine.StopServer();
}

// SQL text submitted to the server: Prepare parses + binds against the
// engine's catalog; the session result matches the isolated SQL run.
TEST(ServerTest, SqlSessionMatchesIsolated) {
  Engine engine(SharedTpcds());
  const std::string sql =
      "SELECT ss_item_sk, SUM(ss_sales_price) AS total "
      "FROM store_sales WHERE ss_quantity > 10 "
      "GROUP BY ss_item_sk ORDER BY ss_item_sk LIMIT 50";
  PreparedQuery reference = Unwrap(engine.Prepare(sql));
  QueryResult isolated = Unwrap(engine.Execute(&reference));

  SessionManager& manager = *Unwrap(engine.StartServer());
  std::vector<PreparedQuery> clients;
  std::vector<PlanPtr> plans;
  for (int i = 0; i < 2; ++i) {
    clients.push_back(Unwrap(engine.Prepare(sql)));
    plans.push_back(clients.back().plan());
  }
  for (const SessionPtr& s : manager.SubmitBatch(plans)) {
    ASSERT_TRUE(s->Wait().ok()) << s->Wait().status().ToString();
    ASSERT_EQ(s->Wait()->num_rows(), isolated.num_rows());
    EXPECT_TRUE(ResultsEqualOrdered(*s->Wait(), isolated));
  }
  engine.StopServer();
}

}  // namespace
}  // namespace fusiondb
