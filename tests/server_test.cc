// Cross-query fusion server (src/server): N concurrent sessions over one
// SessionManager must return exactly what N isolated runs would — same
// schema ids/names/types, same rows in the same order — while fused groups
// scan strictly fewer bytes than their members would in isolation.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::SharedTpcds;
using testutil::Unwrap;

/// The isolated reference: the same plan optimized and executed on its
/// own, exactly as a standalone client would.
QueryResult IsolatedRun(const PlanPtr& plan, PlanContext* ctx,
                        const OptimizerOptions& options) {
  PlanPtr optimized = Unwrap(Optimizer(options).Optimize(plan, ctx));
  return Unwrap(ExecutePlan(optimized));
}

/// Byte-identical: schema (ids, names, types) and rows, order-sensitive.
void ExpectIdentical(const QueryResult& got, const QueryResult& want) {
  ASSERT_EQ(got.schema().num_columns(), want.schema().num_columns());
  for (size_t i = 0; i < want.schema().num_columns(); ++i) {
    EXPECT_EQ(got.schema().column(i).id, want.schema().column(i).id);
    EXPECT_EQ(got.schema().column(i).name, want.schema().column(i).name);
    EXPECT_EQ(got.schema().column(i).type, want.schema().column(i).type);
  }
  EXPECT_EQ(got.num_rows(), want.num_rows());
  EXPECT_TRUE(ResultsEqualOrdered(got, want));
}

const std::vector<const tpcds::TpcdsQuery*>& FusionQueries() {
  static auto& queries = *new std::vector<const tpcds::TpcdsQuery*>([] {
    std::vector<const tpcds::TpcdsQuery*> out;
    for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
      if (q.fusion_applicable) out.push_back(&q);
    }
    return out;
  }());
  return queries;
}

OptimizerOptions ModeOptions(const std::string& mode) {
  if (mode == "baseline") return OptimizerOptions::Baseline();
  if (mode == "spooling") return OptimizerOptions::Spooling();
  if (mode == "adaptive") return OptimizerOptions::Adaptive(nullptr);
  return OptimizerOptions::Fused();
}

// N identical queries through the server == N isolated runs, under every
// optimizer mode. Cross-query sharing composes with — never alters — the
// within-plan optimization the mode selects.
TEST(ServerTest, ByteIdenticalToIsolatedAcrossModes) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  constexpr int kClients = 4;
  for (const std::string mode :
       {"baseline", "fused", "spooling", "adaptive"}) {
    SCOPED_TRACE(mode);
    ServerOptions options;
    options.optimizer = ModeOptions(mode);
    SessionManager manager(options);

    std::vector<PlanContext> contexts(kClients);
    std::vector<PlanPtr> plans;
    for (int i = 0; i < kClients; ++i) {
      plans.push_back(Unwrap(query.build(catalog, &contexts[i])));
    }
    std::vector<SessionPtr> sessions = manager.SubmitBatch(plans);
    for (int i = 0; i < kClients; ++i) {
      SCOPED_TRACE(i);
      ASSERT_TRUE(sessions[static_cast<size_t>(i)]->Wait().ok())
          << sessions[static_cast<size_t>(i)]->Wait().status().ToString();
      // Fresh context per reference run: the isolated client never saw the
      // server's renumbered id space.
      PlanContext ref_ctx;
      PlanPtr ref_plan = Unwrap(query.build(catalog, &ref_ctx));
      QueryResult isolated = IsolatedRun(ref_plan, &ref_ctx, options.optimizer);
      ExpectIdentical(*sessions[static_cast<size_t>(i)]->Wait(), isolated);
    }
  }
}

// Results do not depend on how many sessions share the batch.
TEST(ServerTest, SessionCountInvariance) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  PlanContext ref_ctx;
  QueryResult isolated = IsolatedRun(Unwrap(query.build(catalog, &ref_ctx)),
                                     &ref_ctx, OptimizerOptions::Fused());
  for (int n : {1, 2, 5, 8}) {
    SCOPED_TRACE(n);
    SessionManager manager;
    std::vector<PlanContext> contexts(static_cast<size_t>(n));
    std::vector<PlanPtr> plans;
    for (int i = 0; i < n; ++i) {
      plans.push_back(Unwrap(query.build(catalog, &contexts[static_cast<size_t>(i)])));
    }
    std::vector<SessionPtr> sessions = manager.SubmitBatch(plans);
    for (const SessionPtr& s : sessions) {
      ASSERT_TRUE(s->Wait().ok()) << s->Wait().status().ToString();
      ExpectIdentical(*s->Wait(), isolated);
      EXPECT_EQ(s->shared(), n >= 2);
    }
  }
}

// The headline property: >= 2 identical concurrent queries pay one scan.
TEST(ServerTest, SharedGroupScansFewerBytesThanIsolated) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  constexpr int kClients = 4;
  SessionManager manager;
  std::vector<PlanContext> contexts(kClients);
  std::vector<PlanPtr> plans;
  for (int i = 0; i < kClients; ++i) {
    plans.push_back(Unwrap(query.build(catalog, &contexts[i])));
  }
  std::vector<SessionPtr> sessions = manager.SubmitBatch(plans);
  for (const SessionPtr& s : sessions) ASSERT_TRUE(s->Wait().ok());

  BatchReport report = manager.last_batch_report();
  EXPECT_EQ(report.sessions, static_cast<size_t>(kClients));
  EXPECT_EQ(report.shared_groups, 1u);
  EXPECT_EQ(report.shared_sessions, static_cast<size_t>(kClients));
  EXPECT_EQ(report.solo_sessions, 0u);
  // One shared scan vs kClients isolated scans.
  EXPECT_GT(report.bytes_scanned, 0);
  EXPECT_LT(report.bytes_scanned, report.isolated_bytes_scanned);
  EXPECT_EQ(report.isolated_bytes_scanned, kClients * report.bytes_scanned);

  // Per-session attribution splits the shared scan.
  ASSERT_EQ(report.attributions.size(), static_cast<size_t>(kClients));
  int64_t attributed = 0;
  for (const SessionAttribution& a : report.attributions) {
    EXPECT_EQ(a.consumers, kClients);
    attributed += a.attributed_bytes_scanned;
  }
  EXPECT_EQ(attributed, report.bytes_scanned);

  // The share-vs-solo pricing was recorded as a cross-query decision.
  ASSERT_EQ(report.decisions.size(), 1u);
  EXPECT_TRUE(report.decisions[0].cross_query);
  EXPECT_TRUE(report.decisions[0].spooled);  // spooled == shared
  EXPECT_EQ(report.decisions[0].consumers, kClients);

  // Session-level sharing attribution matches, and the profile carries it.
  for (const SessionPtr& s : sessions) {
    EXPECT_TRUE(s->shared());
    EXPECT_EQ(s->sharing().consumers, kClients);
    EXPECT_EQ(s->sharing().shared_bytes_scanned, report.bytes_scanned);
  }
  QueryProfile profile =
      MakeSessionProfile(*sessions[0], query.name, "server-fused");
  std::string json = ProfileToJson(profile);
  EXPECT_NE(json.find("\"sharing\""), std::string::npos);
  EXPECT_NE(json.find("\"consumers\":4"), std::string::npos);
}

// An admission batch of one cannot share: window/batch boundaries isolate.
TEST(ServerTest, BatchOfOneNeverShares) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  ServerOptions options;
  options.window.max_batch = 1;  // window of 1: every query its own batch
  SessionManager manager(options);
  constexpr int kClients = 3;
  std::vector<PlanContext> contexts(kClients);
  std::vector<PlanPtr> plans;
  for (int i = 0; i < kClients; ++i) {
    plans.push_back(Unwrap(query.build(catalog, &contexts[i])));
  }
  std::vector<SessionPtr> sessions = manager.SubmitBatch(plans);
  int64_t solo_bytes = 0;
  for (const SessionPtr& s : sessions) {
    ASSERT_TRUE(s->Wait().ok());
    EXPECT_FALSE(s->shared());
    EXPECT_EQ(s->sharing().consumers, 1);
    solo_bytes += s->sharing().shared_bytes_scanned;
  }
  // No sharing: total bytes == sum of per-session bytes == isolated.
  EXPECT_EQ(manager.total_bytes_scanned(), solo_bytes);
  EXPECT_EQ(manager.total_isolated_bytes_scanned(), solo_bytes);
  EXPECT_EQ(manager.total_shared_sessions(), 0);
}

// Overlapping-but-different queries: same scan, different filters. Fuse
// widens to the disjunction and each session's compensating filter
// restores exactly its own rows.
TEST(ServerTest, DifferentFiltersShareOneScan) {
  const Catalog& catalog = SharedTpcds();
  TablePtr store_sales = Unwrap(catalog.GetTable("store_sales"));

  auto build = [&](PlanContext* ctx, int64_t lo, int64_t hi) {
    PlanBuilder b = PlanBuilder::Scan(
        ctx, store_sales, {"ss_item_sk", "ss_quantity", "ss_sales_price"});
    b.Filter(eb::And({eb::Ge(b.Ref("ss_quantity"), eb::Int(lo)),
                      eb::Lt(b.Ref("ss_quantity"), eb::Int(hi))}));
    return b.Build();
  };

  PlanContext ctx1, ctx2, ref1, ref2;
  std::vector<PlanPtr> plans = {build(&ctx1, 0, 50), build(&ctx2, 25, 80)};
  SessionManager manager;
  std::vector<SessionPtr> sessions = manager.SubmitBatch(plans);
  for (const SessionPtr& s : sessions) ASSERT_TRUE(s->Wait().ok());

  ExpectIdentical(*sessions[0]->Wait(),
                  IsolatedRun(build(&ref1, 0, 50), &ref1,
                              OptimizerOptions::Fused()));
  ExpectIdentical(*sessions[1]->Wait(),
                  IsolatedRun(build(&ref2, 25, 80), &ref2,
                              OptimizerOptions::Fused()));
  // Both were served from one fused scan.
  EXPECT_TRUE(sessions[0]->shared());
  EXPECT_TRUE(sessions[1]->shared());
  EXPECT_LT(manager.total_bytes_scanned(),
            manager.total_isolated_bytes_scanned());
}

// Submitting after Stop() fails the session instead of hanging it.
TEST(ServerTest, SubmitAfterStopFails) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  PlanContext ctx;
  PlanPtr plan = Unwrap(query.build(catalog, &ctx));
  SessionManager manager;
  manager.Stop();
  SessionPtr session = manager.Submit(plan);
  EXPECT_FALSE(session->Wait().ok());
}

// ExecuteSync is Submit + Wait through the same admission pipeline.
TEST(ServerTest, ExecuteSyncMatchesIsolated) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  PlanContext ctx, ref_ctx;
  SessionManager manager;
  Result<QueryResult> result =
      manager.ExecuteSync(Unwrap(query.build(catalog, &ctx)));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  QueryResult isolated = IsolatedRun(Unwrap(query.build(catalog, &ref_ctx)),
                                     &ref_ctx, OptimizerOptions::Fused());
  ExpectIdentical(*result, isolated);
}

// Concurrent submission from many client threads through the coordinator
// (admission window path). Runs under ThreadSanitizer via the `parallel`
// ctest label; a generous window keeps the batch composition stable
// enough that at least some sessions share, but correctness must hold for
// every composition the scheduler produces.
TEST(ServerTest, ConcurrentSubmissionIsCorrect) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  PlanContext ref_ctx;
  QueryResult isolated = IsolatedRun(Unwrap(query.build(catalog, &ref_ctx)),
                                     &ref_ctx, OptimizerOptions::Fused());

  ServerOptions options;
  options.window.window_ms = 100;  // hold the batch open for all clients
  SessionManager manager(options);
  constexpr int kThreads = 8;
  std::vector<SessionPtr> sessions(kThreads);
  {
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      clients.emplace_back([&, i] {
        PlanContext ctx;
        PlanPtr plan = Unwrap(query.build(catalog, &ctx));
        sessions[static_cast<size_t>(i)] = manager.Submit(plan);
        sessions[static_cast<size_t>(i)]->Wait();
      });
    }
    for (std::thread& t : clients) t.join();
  }
  manager.Stop();
  EXPECT_EQ(manager.total_queries(), kThreads);
  for (const SessionPtr& s : sessions) {
    ASSERT_TRUE(s->Wait().ok()) << s->Wait().status().ToString();
    ExpectIdentical(*s->Wait(), isolated);
  }
}

// Cross-query decisions land in the caller-provided optimizer trace.
TEST(ServerTest, TraceRecordsCrossQueryDecisions) {
  const Catalog& catalog = SharedTpcds();
  const tpcds::TpcdsQuery& query = *FusionQueries().front();
  OptimizerTrace trace;
  ServerOptions options;
  options.trace = &trace;
  SessionManager manager(options);
  std::vector<PlanContext> contexts(2);
  std::vector<PlanPtr> plans = {Unwrap(query.build(catalog, &contexts[0])),
                                Unwrap(query.build(catalog, &contexts[1]))};
  for (const SessionPtr& s : manager.SubmitBatch(plans)) {
    ASSERT_TRUE(s->Wait().ok());
  }
  bool found = false;
  for (const CostDecision& d : trace.cost_decisions()) {
    if (d.cross_query) {
      found = true;
      EXPECT_EQ(d.consumers, 2);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(trace.ToString().find("[cross-query]"), std::string::npos);
}

}  // namespace
}  // namespace fusiondb
