// End-to-end equivalence: every TPC-DS query must return identical results
// under the baseline and fused optimizer configurations, the fused plan of
// an applicable query must scan no more bytes than the baseline, and filler
// queries' plans must be untouched by the fusion rules.
#include <map>

#include <gtest/gtest.h>

#include "test_util.h"

namespace fusiondb {
namespace {

using testutil::MustExecute;
using testutil::SharedTpcds;
using testutil::Unwrap;

struct Case {
  std::string query;
  double scale;
};

class TpcdsEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(TpcdsEquivalenceTest, BaselineMatchesFused) {
  const Case& c = GetParam();
  const Catalog& catalog = SharedTpcds(c.scale);
  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName(c.query));

  PlanContext ctx;
  PlanPtr plan = Unwrap(query.build(catalog, &ctx));

  PlanPtr baseline =
      Unwrap(Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx));
  PlanPtr fused =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));

  QueryResult base_result = MustExecute(baseline);
  QueryResult fused_result = MustExecute(fused);

  EXPECT_TRUE(ResultsEquivalent(base_result, fused_result))
      << "query " << c.query << " results diverge\nbaseline plan:\n"
      << PlanToString(baseline) << "\nfused plan:\n"
      << PlanToString(fused) << "\nbaseline result:\n"
      << base_result.ToString() << "\nfused result:\n"
      << fused_result.ToString();

  if (query.fusion_applicable) {
    EXPECT_LE(fused_result.metrics().bytes_scanned,
              base_result.metrics().bytes_scanned)
        << "query " << c.query << ": fusion increased bytes scanned";
    EXPECT_LT(fused_result.metrics().bytes_scanned,
              base_result.metrics().bytes_scanned)
        << "query " << c.query
        << ": applicable query shows no scan reduction\nfused plan:\n"
        << PlanToString(fused);
  } else {
    // Filler queries must be untouched by the fusion rules: identical
    // operator counts and scan volume.
    EXPECT_EQ(CountAllOps(baseline), CountAllOps(fused))
        << "query " << c.query << " plan changed unexpectedly";
    EXPECT_EQ(base_result.metrics().bytes_scanned,
              fused_result.metrics().bytes_scanned);
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    cases.push_back({q.name, 0.01});
  }
  // A second scale for the paper-studied queries to check the rewrites are
  // not data-size flukes.
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (q.fusion_applicable) cases.push_back({q.name, 0.003});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, TpcdsEquivalenceTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string scale = std::to_string(
          static_cast<int>(info.param.scale * 1000));
      return info.param.query + "_scale" + scale;
    });

}  // namespace
}  // namespace fusiondb
