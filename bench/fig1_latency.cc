// Figure 1 reproduction: latency improvement of the fusion rules for the
// paper's selected queries. The paper reports speedups ranging from <10%
// (window-rewrite queries at 3TB, where parallel scans hide latency) to
// over 6x (scalar-aggregate merges).
#include <cstdio>

#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

int main() {
  BenchEngine();  // build the catalog before the header prints
  BenchReport report("fig1_latency");
  std::printf("\nFigure 1 — latency improvement for selected queries\n");
  std::printf("(speedup = baseline latency / fused latency)\n\n");
  std::printf("%-6s %-8s %14s %14s %9s %7s\n", "query", "section",
              "baseline (ms)", "fused (ms)", "speedup", "match");
  std::printf("%s\n", std::string(66, '-').c_str());
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (!q.fusion_applicable) continue;
    Comparison c = CompareQuery(q);
    AddComparison(&report, q.name, c);
    std::printf("%-6s %-8s %14.2f %14.2f %8.2fx %7s\n", q.name.c_str(),
                q.paper_section.c_str(), c.baseline.latency_ms,
                c.fused.latency_ms,
                c.baseline.latency_ms / c.fused.latency_ms,
                c.results_match ? "yes" : "NO");
  }
  std::printf(
      "\npaper (3TB, production cluster): Q01/Q30/Q65 below 10%%; "
      "Q09/Q28/Q88 3x-6x; Q23 ~2x; Q95 ~30%%.\n");
  report.Write();
  return 0;
}
