// Micro-benchmarks (google-benchmark) for the optimizer-side machinery:
// the Fuse primitive over plans of increasing depth, expression
// simplification/fingerprinting, and whole-query optimization time — the
// compile-time overhead the paper's rules add to the engine.
#include <benchmark/benchmark.h>

#include "bench_gbench.h"
#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

namespace {

/// A filter/project chain of the given depth over a store_sales scan.
PlanBuilder DeepChain(const Catalog& catalog, PlanContext* ctx, int depth) {
  TablePtr t = Unwrap(catalog.GetTable("store_sales"));
  PlanBuilder b = PlanBuilder::Scan(
      ctx, t, {"ss_quantity", "ss_list_price", "ss_net_profit"});
  for (int i = 0; i < depth; ++i) {
    b.Filter(eb::Gt(b.Ref("ss_quantity"), eb::Int(i)));
    b.ProjectPlus({{"d" + std::to_string(i),
                    eb::Add(b.Ref("ss_quantity"), eb::Int(i))}});
  }
  return b;
}

void BM_FuseDeepPlans(benchmark::State& state) {
  const Catalog& catalog = BenchCatalog();
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PlanContext ctx;
    PlanBuilder p1 = DeepChain(catalog, &ctx, depth);
    PlanBuilder p2 = DeepChain(catalog, &ctx, depth);
    Fuser fuser(&ctx);
    auto fused = fuser.Fuse(p1.Build(), p2.Build());
    benchmark::DoNotOptimize(fused);
    if (!fused.has_value()) state.SkipWithError("fusion failed");
  }
}
BENCHMARK(BM_FuseDeepPlans)->Arg(2)->Arg(8)->Arg(32);

void BM_FuseAggregates(benchmark::State& state) {
  const Catalog& catalog = BenchCatalog();
  int aggs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PlanContext ctx;
    auto make = [&]() {
      TablePtr t = Unwrap(catalog.GetTable("store_sales"));
      PlanBuilder b =
          PlanBuilder::Scan(&ctx, t, {"ss_store_sk", "ss_list_price"});
      std::vector<AggSpec> specs;
      for (int i = 0; i < aggs; ++i) {
        specs.push_back({"a" + std::to_string(i), AggFunc::kSum,
                         b.Ref("ss_list_price"),
                         eb::Gt(b.Ref("ss_list_price"), eb::Dbl(i * 1.0)),
                         false});
      }
      b.Aggregate({"ss_store_sk"}, std::move(specs));
      return b;
    };
    PlanBuilder g1 = make();
    PlanBuilder g2 = make();
    Fuser fuser(&ctx);
    auto fused = fuser.Fuse(g1.Build(), g2.Build());
    benchmark::DoNotOptimize(fused);
  }
}
BENCHMARK(BM_FuseAggregates)->Arg(1)->Arg(8)->Arg(32);

void BM_OptimizeQuery(benchmark::State& state, const char* name,
                      bool fused_rules) {
  const Catalog& catalog = BenchCatalog();
  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName(name));
  for (auto _ : state) {
    PlanContext ctx;
    PlanPtr plan = Unwrap(query.build(catalog, &ctx));
    Optimizer optimizer(fused_rules ? OptimizerOptions::Fused()
                                    : OptimizerOptions::Baseline());
    auto optimized = optimizer.Optimize(plan, &ctx);
    benchmark::DoNotOptimize(optimized);
    if (!optimized.ok()) state.SkipWithError("optimize failed");
  }
}
BENCHMARK_CAPTURE(BM_OptimizeQuery, q09_baseline, "q09", false);
BENCHMARK_CAPTURE(BM_OptimizeQuery, q09_fused, "q09", true);
BENCHMARK_CAPTURE(BM_OptimizeQuery, q23_baseline, "q23", false);
BENCHMARK_CAPTURE(BM_OptimizeQuery, q23_fused, "q23", true);
BENCHMARK_CAPTURE(BM_OptimizeQuery, q95_fused, "q95", true);

void BM_Simplify(benchmark::State& state) {
  PlanContext ctx;
  ExprPtr col = eb::Col(1, DataType::kInt64);
  std::vector<ExprPtr> buckets;
  for (int i = 0; i < 8; ++i) {
    buckets.push_back(eb::Between(col, eb::Int(i * 10), eb::Int(i * 10 + 9)));
  }
  // The mask-chain shape fusion produces: b0 AND (b0 OR b1) AND ...
  std::vector<ExprPtr> conjuncts{buckets[0]};
  std::vector<ExprPtr> ors;
  for (int i = 0; i < 8; ++i) {
    ors.push_back(buckets[i]);
    conjuncts.push_back(eb::Or(ors));
  }
  ExprPtr chain = eb::And(conjuncts);
  for (auto _ : state) {
    ExprPtr simplified = Simplify(chain);
    benchmark::DoNotOptimize(simplified);
  }
}
BENCHMARK(BM_Simplify);

}  // namespace

int main(int argc, char** argv) {
  return RunGbenchWithReport("fusion_micro", argc, argv);
}
