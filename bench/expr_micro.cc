// Micro-benchmarks for vectorized expression evaluation: the bind-time typed
// kernels + selection-vector path against the row-at-a-time interpreter over
// identical synthesized chunks. Each benchmark comes as a Row/Vec pair (the
// Row variant flips the evaluator's testing toggle) so the speedup table in
// EXPERIMENTS.md reads straight out of BENCH_expr_micro.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_gbench.h"
#include "bench_util.h"
#include "expr/evaluator.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

namespace {

constexpr size_t kRows = 1 << 16;

// Deterministic LCG so every run (and both variants) sees the same data.
uint64_t Lcg(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

Schema TestSchema() {
  return Schema({{1, "a", DataType::kInt64},
                 {2, "b", DataType::kFloat64},
                 {3, "c", DataType::kInt64}});
}

const Chunk& TestChunk() {
  static Chunk* chunk = [] {
    auto* c = new Chunk(Chunk::Empty(
        {DataType::kInt64, DataType::kFloat64, DataType::kInt64}));
    uint64_t state = 42;
    for (size_t i = 0; i < kRows; ++i) {
      if (Lcg(&state) % 20 == 0) {
        c->columns[0].AppendNull();
      } else {
        c->columns[0].AppendInt(static_cast<int64_t>(Lcg(&state) % 100));
      }
      if (Lcg(&state) % 20 == 0) {
        c->columns[1].AppendNull();
      } else {
        c->columns[1].AppendDouble(static_cast<double>(Lcg(&state) % 1000) /
                                   10.0);
      }
      c->columns[2].AppendInt(static_cast<int64_t>(Lcg(&state) % 1000));
    }
    return c;
  }();
  return *chunk;
}

BoundExpr Bind(const ExprPtr& e) {
  auto bound = BindExpr(e, TestSchema());
  DieIf(bound.status());
  return std::move(bound).ValueOrDie();
}

/// Scoped row-at-a-time toggle for the *Row benchmark variants.
struct RowMode {
  explicit RowMode(bool on) { SetRowAtATimeEvalForTesting(on); }
  ~RowMode() { SetRowAtATimeEvalForTesting(false); }
};

void RunFilterBench(benchmark::State& state, const ExprPtr& expr,
                    bool row_mode) {
  RowMode mode(row_mode);
  BoundExpr bound = Bind(expr);
  const Chunk& chunk = TestChunk();
  for (auto _ : state) {
    SelVector sel = bound.EvalFilter(chunk);
    benchmark::DoNotOptimize(sel.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}

// col < literal over an int column: the minimal kernel-vs-interpreter gap.
ExprPtr CompareColLit() {
  return eb::Lt(eb::Col(1, DataType::kInt64), eb::Int(50));
}
void BM_CompareColLitRow(benchmark::State& state) {
  RunFilterBench(state, CompareColLit(), true);
}
void BM_CompareColLitVec(benchmark::State& state) {
  RunFilterBench(state, CompareColLit(), false);
}
BENCHMARK(BM_CompareColLitRow);
BENCHMARK(BM_CompareColLitVec);

// Conjunct chain: selectivity drops per conjunct, so progressive narrowing
// touches fewer rows at every step; the interpreter pays every row for every
// conjunct.
ExprPtr FilterChain() {
  return eb::And(
      eb::And(eb::Ge(eb::Col(1, DataType::kInt64), eb::Int(10)),
              eb::Lt(eb::Col(1, DataType::kInt64), eb::Int(60))),
      eb::Gt(eb::Col(2, DataType::kFloat64), eb::Dbl(25.0)));
}
void BM_FilterChainRow(benchmark::State& state) {
  RunFilterBench(state, FilterChain(), true);
}
void BM_FilterChainVec(benchmark::State& state) {
  RunFilterBench(state, FilterChain(), false);
}
BENCHMARK(BM_FilterChainRow);
BENCHMARK(BM_FilterChainVec);

// Column-vs-column comparison (no literal shortcut).
ExprPtr CompareColCol() {
  return eb::Lt(eb::Col(1, DataType::kInt64), eb::Col(3, DataType::kInt64));
}
void BM_CompareColColRow(benchmark::State& state) {
  RunFilterBench(state, CompareColCol(), true);
}
void BM_CompareColColVec(benchmark::State& state) {
  RunFilterBench(state, CompareColCol(), false);
}
BENCHMARK(BM_CompareColColRow);
BENCHMARK(BM_CompareColColVec);

// Masked-aggregate mask evaluation: the per-chunk work AggregateExec does
// for a fused query's deduplicated masks — k bucket conditions evaluated as
// selection vectors over the same chunk (paper Section III.E shape).
void RunMaskBench(benchmark::State& state, bool row_mode) {
  RowMode mode(row_mode);
  int num_masks = static_cast<int>(state.range(0));
  std::vector<BoundExpr> masks;
  masks.reserve(num_masks);
  for (int i = 0; i < num_masks; ++i) {
    masks.push_back(Bind(
        eb::Between(eb::Col(1, DataType::kInt64), eb::Int(i * 5),
                    eb::Int(i * 5 + 20))));
  }
  const Chunk& chunk = TestChunk();
  for (auto _ : state) {
    size_t total = 0;
    for (const BoundExpr& m : masks) {
      SelVector sel = m.EvalFilter(chunk);
      total += sel.size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kRows * num_masks));
}
void BM_MaskEvalRow(benchmark::State& state) { RunMaskBench(state, true); }
void BM_MaskEvalVec(benchmark::State& state) { RunMaskBench(state, false); }
BENCHMARK(BM_MaskEvalRow)->Arg(4)->Arg(16);
BENCHMARK(BM_MaskEvalVec)->Arg(4)->Arg(16);

// Projection arithmetic: (a + c) * 2 evaluated as a column.
ExprPtr ProjectArith() {
  return eb::Mul(eb::Add(eb::Col(1, DataType::kInt64),
                         eb::Col(3, DataType::kInt64)),
                 eb::Int(2));
}
void RunProjectBench(benchmark::State& state, bool row_mode) {
  RowMode mode(row_mode);
  BoundExpr bound = Bind(ProjectArith());
  const Chunk& chunk = TestChunk();
  for (auto _ : state) {
    Column out = bound.EvalAll(chunk);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}
void BM_ProjectArithRow(benchmark::State& state) {
  RunProjectBench(state, true);
}
void BM_ProjectArithVec(benchmark::State& state) {
  RunProjectBench(state, false);
}
BENCHMARK(BM_ProjectArithRow);
BENCHMARK(BM_ProjectArithVec);

// Bulk gather vs per-row copy: the row-assembly primitive behind Filter,
// Limit, Sort and join output.
void BM_GatherRows(benchmark::State& state) {
  const Chunk& chunk = TestChunk();
  SelVector sel;
  for (uint32_t r = 0; r < kRows; r += 2) sel.push_back(r);
  for (auto _ : state) {
    Chunk out = chunk.Gather(sel);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * sel.size()));
}
void BM_AppendRowFrom(benchmark::State& state) {
  const Chunk& chunk = TestChunk();
  std::vector<DataType> types;
  for (const Column& c : chunk.columns) types.push_back(c.type());
  for (auto _ : state) {
    Chunk out = Chunk::Empty(types);
    for (uint32_t r = 0; r < kRows; r += 2) out.AppendRowFrom(chunk, r);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * (kRows / 2)));
}
BENCHMARK(BM_GatherRows);
BENCHMARK(BM_AppendRowFrom);

}  // namespace

int main(int argc, char** argv) {
  return RunGbenchWithReport("expr_micro", argc, argv);
}
