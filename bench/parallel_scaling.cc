// Morsel-driven parallel execution: latency of every fusion-applicable
// TPC-DS query (baseline and fused plans) swept over thread counts, plus a
// correctness sweep asserting results and bytes_scanned are thread-count
// invariant. The interesting shape: scans and aggregation builds dominate
// these queries, so latency should drop near-linearly until the thread
// count exceeds either the physical cores or the partition count of the
// largest scanned table.
//
// Usage: parallel_scaling [max_threads]     (default: up to 8, capped at
// 2x hardware_concurrency; FUSIONDB_BENCH_SCALE scales the data)
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

namespace {

QueryOptions ThreadedOptions(size_t threads) {
  QueryOptions options = BenchOptions(OptimizerOptions());
  options.exec.parallelism = threads;
  return options;
}

double MedianLatencyMs(const PlanPtr& plan, size_t threads, int repeats) {
  std::vector<double> times;
  times.reserve(repeats);
  for (int i = 0; i < repeats; ++i) {
    QueryResult r = Unwrap(
        BenchEngine().ExecuteOptimized(plan, ThreadedOptions(threads)));
    times.push_back(r.wall_ms());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  size_t max_threads = argc > 1 ? std::atoi(argv[1]) : 8;
  if (max_threads > 2 * hw) max_threads = 2 * hw < 2 ? 2 : 2 * hw;
  if (max_threads < 1) max_threads = 1;
  std::vector<size_t> sweep;
  for (size_t t = 1; t <= max_threads; t *= 2) sweep.push_back(t);

  Engine& engine = BenchEngine();
  BenchReport report("parallel_scaling");
  std::printf("\nParallel scaling — morsel-driven execution, %u hardware "
              "thread(s) on this host\n\n",
              hw);
  std::printf("%-6s %-9s", "query", "plan");
  for (size_t t : sweep) std::printf(" %7zu-thr", t);
  std::printf(" %9s %6s\n", "speedup", "ok");
  std::printf("%s\n", std::string(16 + 11 * sweep.size() + 17, '-').c_str());

  bool all_ok = true;
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (!q.fusion_applicable) continue;
    PreparedQuery prepared = Unwrap(engine.Prepare(q.build));
    for (bool fused : {false, true}) {
      OptimizerOptions options =
          fused ? OptimizerOptions::Fused() : OptimizerOptions::Baseline();
      PlanPtr optimized =
          Unwrap(engine.Optimize(&prepared, BenchOptions(options)));

      // Correctness gate: results and scan accounting must not depend on
      // the thread count.
      QueryResult serial =
          Unwrap(engine.ExecuteOptimized(optimized, ThreadedOptions(1)));
      bool ok = true;
      for (size_t t : sweep) {
        if (t == 1) continue;
        QueryResult r =
            Unwrap(engine.ExecuteOptimized(optimized, ThreadedOptions(t)));
        ok = ok && ResultsEquivalent(serial, r) &&
             r.metrics().bytes_scanned == serial.metrics().bytes_scanned &&
             r.metrics().rows_scanned == serial.metrics().rows_scanned;
      }
      all_ok = all_ok && ok;

      std::printf("%-6s %-9s", q.name.c_str(), fused ? "fused" : "baseline");
      double base_ms = 0.0;
      double best_ms = 0.0;
      for (size_t t : sweep) {
        double ms = MedianLatencyMs(optimized, t, 3);
        if (t == 1) base_ms = ms;
        best_ms = ms;
        // bytes/memory come from the serial run: both are thread-count
        // invariant (the gate above checks bytes explicitly).
        report.Add({q.name, fused ? "fused" : "baseline", ms,
                    serial.metrics().bytes_scanned,
                    serial.metrics().peak_hash_bytes,
                    static_cast<int64_t>(t)});
        std::printf(" %8.2fms", ms);
      }
      std::printf(" %8.2fx %6s\n", base_ms / best_ms, ok ? "yes" : "NO");
    }
  }
  std::printf(
      "\nspeedup = 1-thread latency / %zu-thread latency. Expect ~linear "
      "scaling up to the core count on scan/aggregation-bound queries; a "
      "single-core host shows ~1.0x (the sweep then only checks "
      "thread-count invariance).\n",
      sweep.back());
  report.Write();
  return all_ok ? 0 : 1;
}
