// Micro-benchmarks (google-benchmark) for the execution substrate: page
// decode, filter and aggregation throughput — the quantities that make the
// bytes-scanned metric track latency in this engine.
#include <benchmark/benchmark.h>

#include "bench_gbench.h"
#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

namespace {

void BM_ScanDecode(benchmark::State& state) {
  const Catalog& catalog = BenchCatalog();
  TablePtr t = Unwrap(catalog.GetTable("store_sales"));
  PlanContext ctx;
  PlanPtr plan = ScanOp::Make(&ctx, t, {"ss_quantity", "ss_list_price"});
  int64_t bytes = 0;
  for (auto _ : state) {
    QueryResult r = Unwrap(ExecutePlan(plan));
    bytes = r.metrics().bytes_scanned;
    benchmark::DoNotOptimize(r.num_rows());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_ScanDecode);

void BM_FilterThroughput(benchmark::State& state) {
  const Catalog& catalog = BenchCatalog();
  TablePtr t = Unwrap(catalog.GetTable("store_sales"));
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, t, {"ss_quantity", "ss_list_price"});
  b.Filter(eb::And(eb::Between(b.Ref("ss_quantity"), eb::Int(10), eb::Int(60)),
                   eb::Gt(b.Ref("ss_list_price"), eb::Dbl(50.0))));
  PlanPtr plan = b.Build();
  for (auto _ : state) {
    QueryResult r = Unwrap(ExecutePlan(plan));
    benchmark::DoNotOptimize(r.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * t->num_rows());
}
BENCHMARK(BM_FilterThroughput);

void BM_MaskedAggregation(benchmark::State& state) {
  const Catalog& catalog = BenchCatalog();
  TablePtr t = Unwrap(catalog.GetTable("store_sales"));
  int num_masks = static_cast<int>(state.range(0));
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, t, {"ss_store_sk", "ss_quantity",
                                              "ss_list_price"});
  std::vector<AggSpec> specs;
  for (int i = 0; i < num_masks; ++i) {
    specs.push_back(
        {"s" + std::to_string(i), AggFunc::kSum, b.Ref("ss_list_price"),
         eb::Between(b.Ref("ss_quantity"), eb::Int(i * 5), eb::Int(i * 5 + 20)),
         false});
  }
  b.Aggregate({"ss_store_sk"}, std::move(specs));
  PlanPtr plan = b.Build();
  for (auto _ : state) {
    QueryResult r = Unwrap(ExecutePlan(plan));
    benchmark::DoNotOptimize(r.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * t->num_rows());
}
BENCHMARK(BM_MaskedAggregation)->Arg(1)->Arg(4)->Arg(16);

void BM_HashJoin(benchmark::State& state) {
  const Catalog& catalog = BenchCatalog();
  TablePtr ss = Unwrap(catalog.GetTable("store_sales"));
  TablePtr item = Unwrap(catalog.GetTable("item"));
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, ss, {"ss_item_sk", "ss_quantity"});
  PlanBuilder i = PlanBuilder::Scan(&ctx, item, {"i_item_sk", "i_brand_id"});
  b.JoinOn(JoinType::kInner, i, {{"ss_item_sk", "i_item_sk"}});
  b.Aggregate({}, {{"total", AggFunc::kSum, b.Ref("ss_quantity"), nullptr,
                    false}});
  PlanPtr plan = b.Build();
  for (auto _ : state) {
    QueryResult r = Unwrap(ExecutePlan(plan));
    benchmark::DoNotOptimize(r.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * ss->num_rows());
}
BENCHMARK(BM_HashJoin);

void BM_MarkDistinct(benchmark::State& state) {
  const Catalog& catalog = BenchCatalog();
  TablePtr t = Unwrap(catalog.GetTable("store_sales"));
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, t, {"ss_quantity", "ss_list_price"});
  b.MarkDistinct("marker", {"ss_list_price"});
  b.Aggregate({}, {{"d", AggFunc::kCountStar, nullptr, b.Ref("marker"),
                    false}});
  PlanPtr plan = b.Build();
  for (auto _ : state) {
    QueryResult r = Unwrap(ExecutePlan(plan));
    benchmark::DoNotOptimize(r.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * t->num_rows());
}
BENCHMARK(BM_MarkDistinct);

void BM_WindowAggregation(benchmark::State& state) {
  const Catalog& catalog = BenchCatalog();
  TablePtr t = Unwrap(catalog.GetTable("store_sales"));
  PlanContext ctx;
  PlanBuilder b = PlanBuilder::Scan(&ctx, t, {"ss_store_sk", "ss_list_price"});
  b.Window({"ss_store_sk"}, {{"avg_price", AggFunc::kAvg,
                              b.Ref("ss_list_price"), nullptr, false}});
  b.Aggregate({}, {{"cnt", AggFunc::kCountStar, nullptr, nullptr, false}});
  PlanPtr plan = b.Build();
  for (auto _ : state) {
    QueryResult r = Unwrap(ExecutePlan(plan));
    benchmark::DoNotOptimize(r.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * t->num_rows());
}
BENCHMARK(BM_WindowAggregation);

}  // namespace

int main(int argc, char** argv) {
  return RunGbenchWithReport("exec_micro", argc, argv);
}
