// Shared helpers for the figure/table reproduction benches.
#ifndef FUSIONDB_BENCH_BENCH_UTIL_H_
#define FUSIONDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "fusiondb.h"

namespace fusiondb::bench {

inline void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

/// Scale factor for benches; override with FUSIONDB_BENCH_SCALE.
inline double BenchScale() {
  const char* env = std::getenv("FUSIONDB_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 0.05;
}

/// Builds the benchmark catalog once per process.
inline const Catalog& BenchCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    tpcds::TpcdsOptions options;
    options.scale = BenchScale();
    std::fprintf(stderr, "building TPC-DS catalog at scale %.3f...\n",
                 options.scale);
    DieIf(tpcds::BuildTpcdsCatalog(options, c));
    return c;
  }();
  return *catalog;
}

struct RunStats {
  double latency_ms = 0.0;
  int64_t bytes_scanned = 0;
  int64_t peak_hash_bytes = 0;
  int64_t rows = 0;
};

/// Optimizes and executes `plan`; latency is the median of `repeats` runs.
inline RunStats RunPlan(const PlanPtr& plan, const OptimizerOptions& options,
                        PlanContext* ctx, int repeats = 3) {
  Optimizer optimizer(options);
  PlanPtr optimized = Unwrap(optimizer.Optimize(plan, ctx));
  RunStats stats;
  std::vector<double> times;
  for (int i = 0; i < repeats; ++i) {
    QueryResult result = Unwrap(ExecutePlan(optimized));
    times.push_back(result.wall_ms());
    stats.bytes_scanned = result.metrics().bytes_scanned;
    stats.peak_hash_bytes = result.metrics().peak_hash_bytes;
    stats.rows = result.num_rows();
  }
  std::sort(times.begin(), times.end());
  stats.latency_ms = times[times.size() / 2];
  return stats;
}

/// Builds, runs baseline and fused, and checks the results agree.
struct Comparison {
  RunStats baseline;
  RunStats fused;
  bool results_match = false;
};

inline Comparison CompareQuery(const tpcds::TpcdsQuery& query,
                               const Catalog& catalog, int repeats = 3) {
  PlanContext ctx;
  PlanPtr plan = Unwrap(query.build(catalog, &ctx));
  PlanPtr baseline =
      Unwrap(Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx));
  PlanPtr fused =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
  QueryResult rb = Unwrap(ExecutePlan(baseline));
  QueryResult rf = Unwrap(ExecutePlan(fused));
  Comparison out;
  out.results_match = ResultsEquivalent(rb, rf);
  out.baseline = RunPlan(plan, OptimizerOptions::Baseline(), &ctx, repeats);
  out.fused = RunPlan(plan, OptimizerOptions::Fused(), &ctx, repeats);
  return out;
}

}  // namespace fusiondb::bench

#endif  // FUSIONDB_BENCH_BENCH_UTIL_H_
