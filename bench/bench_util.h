// Shared helpers for the figure/table reproduction benches.
#ifndef FUSIONDB_BENCH_BENCH_UTIL_H_
#define FUSIONDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "fusiondb.h"
#include "obs/json_writer.h"

namespace fusiondb::bench {

inline void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

/// Scale factor for benches; override with FUSIONDB_BENCH_SCALE.
inline double BenchScale() {
  const char* env = std::getenv("FUSIONDB_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 0.05;
}

/// The process-wide bench engine: owns the TPC-DS catalog (built once at
/// BenchScale) and the shared prepare/optimize/execute flow. Micro benches
/// that probe one layer in isolation may still grab `.catalog()` and call
/// the low-level entry points directly; everything query-shaped goes
/// through the engine.
inline Engine& BenchEngine() {
  static Engine* engine = [] {
    auto* e = new Engine();
    tpcds::TpcdsOptions options;
    options.scale = BenchScale();
    std::fprintf(stderr, "building TPC-DS catalog at scale %.3f...\n",
                 options.scale);
    DieIf(tpcds::BuildTpcdsCatalog(options, e->mutable_catalog()));
    return e;
  }();
  return *engine;
}

inline const Catalog& BenchCatalog() { return BenchEngine().catalog(); }

/// Latency repeats per measurement (median taken); override with
/// FUSIONDB_BENCH_REPEATS (CI smoke runs set 1).
inline int BenchRepeats() {
  const char* env = std::getenv("FUSIONDB_BENCH_REPEATS");
  int n = env != nullptr ? std::atoi(env) : 3;
  return n < 1 ? 1 : n;
}

/// Per-operator profiling during benches; disable with
/// FUSIONDB_BENCH_PROFILE=0 (used to measure the profiling overhead
/// itself, see EXPERIMENTS.md).
inline bool BenchProfileEnabled() {
  const char* env = std::getenv("FUSIONDB_BENCH_PROFILE");
  return env == nullptr || std::atoi(env) != 0;
}

/// Compiled pipelines during benches; disable with FUSIONDB_BENCH_COMPILE=0
/// to run every chain on the interpreted pull operators. tools/check.sh
/// runs the whole-workload and fused-chain benches under both settings and
/// gates the off-vs-on deltas with bench_diff.py (see EXPERIMENTS.md).
inline bool BenchCompilePipelines() {
  const char* env = std::getenv("FUSIONDB_BENCH_COMPILE");
  return env == nullptr || std::atoi(env) != 0;
}

/// Service-metrics recording during benches; enable with
/// FUSIONDB_BENCH_METRICS=1 to measure the registry's always-on recording
/// cost (tools/check.sh gates the overhead at <= 2% on tpcds_overall, see
/// EXPERIMENTS.md). Null when the knob is off.
inline MetricsRegistry* BenchMetricsRegistry() {
  const char* env = std::getenv("FUSIONDB_BENCH_METRICS");
  if (env == nullptr || std::atoi(env) == 0) return nullptr;
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

/// One measurement row in a bench's machine-readable report.
struct BenchRecord {
  std::string query;
  std::string config;  // e.g. "baseline", "fused", "spool"
  double wall_ms = 0.0;
  int64_t bytes_scanned = 0;
  int64_t peak_hash_bytes = 0;
  int64_t threads = 1;
};

/// Accumulates BenchRecords and writes BENCH_<name>.json in the working
/// directory (schema documented in EXPERIMENTS.md), so figure data can be
/// consumed by scripts instead of scraped from stdout.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Add(BenchRecord record) { records_.push_back(std::move(record)); }

  void Write() const {
    JsonWriter w;
    w.BeginObject();
    w.Field("bench", name_);
    w.Field("scale", BenchScale());
    w.Field("profile_enabled", BenchProfileEnabled());
    w.Key("records");
    w.BeginArray();
    for (const BenchRecord& r : records_) {
      w.BeginObject();
      w.Field("query", r.query);
      w.Field("config", r.config);
      w.Field("wall_ms", r.wall_ms);
      w.Field("bytes_scanned", r.bytes_scanned);
      w.Field("peak_hash_bytes", r.peak_hash_bytes);
      w.Field("threads", r.threads);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    const std::string& json = w.str();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu records)\n", path.c_str(),
                 records_.size());
  }

 private:
  std::string name_;
  std::vector<BenchRecord> records_;
};

/// QueryOptions carrying the bench environment knobs (profiling, pipeline
/// compilation, metrics recording) on top of the given optimizer config.
inline QueryOptions BenchOptions(const OptimizerOptions& optimizer) {
  QueryOptions options;
  options.optimizer = optimizer;
  options.exec.profile = BenchProfileEnabled();
  options.exec.compile_pipelines = BenchCompilePipelines();
  options.exec.metrics = BenchMetricsRegistry();
  return options;
}

struct RunStats {
  double latency_ms = 0.0;
  int64_t bytes_scanned = 0;
  int64_t peak_hash_bytes = 0;
  int64_t rows = 0;
};

/// Optimizes the prepared query under `options` and executes it through the
/// bench engine; latency is the median of `repeats` runs.
inline RunStats RunPrepared(PreparedQuery* query,
                            const OptimizerOptions& options, int repeats = 0) {
  if (repeats <= 0) repeats = BenchRepeats();
  Engine& engine = BenchEngine();
  QueryOptions bench_options = BenchOptions(options);
  PlanPtr optimized = Unwrap(engine.Optimize(query, bench_options));
  RunStats stats;
  std::vector<double> times;
  for (int i = 0; i < repeats; ++i) {
    QueryResult result =
        Unwrap(engine.ExecuteOptimized(optimized, bench_options));
    times.push_back(result.wall_ms());
    stats.bytes_scanned = result.metrics().bytes_scanned;
    stats.peak_hash_bytes = result.metrics().peak_hash_bytes;
    stats.rows = result.num_rows();
  }
  std::sort(times.begin(), times.end());
  stats.latency_ms = times[times.size() / 2];
  return stats;
}

/// Builds, runs baseline and fused, and checks the results agree.
struct Comparison {
  RunStats baseline;
  RunStats fused;
  bool results_match = false;
};

inline Comparison CompareQuery(const tpcds::TpcdsQuery& query,
                               int repeats = 0) {
  Engine& engine = BenchEngine();
  PreparedQuery prepared = Unwrap(engine.Prepare(query.build));
  QueryOptions baseline = BenchOptions(OptimizerOptions::Baseline());
  QueryOptions fused = BenchOptions(OptimizerOptions::Fused());
  QueryResult rb = Unwrap(engine.ExecuteOptimized(
      Unwrap(engine.Optimize(&prepared, baseline)), baseline));
  QueryResult rf = Unwrap(engine.ExecuteOptimized(
      Unwrap(engine.Optimize(&prepared, fused)), fused));
  Comparison out;
  out.results_match = ResultsEquivalent(rb, rf);
  out.baseline =
      RunPrepared(&prepared, OptimizerOptions::Baseline(), repeats);
  out.fused = RunPrepared(&prepared, OptimizerOptions::Fused(), repeats);
  return out;
}

/// Records a Comparison as one "baseline" and one "fused" BenchRecord.
inline void AddComparison(BenchReport* report, const std::string& query,
                          const Comparison& c, int64_t threads = 1) {
  report->Add({query, "baseline", c.baseline.latency_ms,
               c.baseline.bytes_scanned, c.baseline.peak_hash_bytes, threads});
  report->Add({query, "fused", c.fused.latency_ms, c.fused.bytes_scanned,
               c.fused.peak_hash_bytes, threads});
}

}  // namespace fusiondb::bench

#endif  // FUSIONDB_BENCH_BENCH_UTIL_H_
