// Figure 2 reproduction: fraction of input data read by the fused plans
// compared to the baseline. The paper reports 15%-80% of baseline bytes
// (i.e. at least ~20% reduction on every selected query), which under
// Athena's pay-per-TB billing is a direct customer cost reduction.
#include <cstdio>

#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

int main() {
  BenchEngine();  // build the catalog before the header prints
  BenchReport report("fig2_bytes_scanned");
  std::printf("\nFigure 2 — reduction in data read for selected queries\n");
  std::printf("(fraction = fused bytes scanned / baseline bytes scanned)\n\n");
  std::printf("%-6s %-8s %16s %16s %10s %7s\n", "query", "section",
              "baseline (B)", "fused (B)", "fraction", "match");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (!q.fusion_applicable) continue;
    Comparison c = CompareQuery(q, /*repeats=*/1);
    AddComparison(&report, q.name, c);
    std::printf("%-6s %-8s %16lld %16lld %9.1f%% %7s\n", q.name.c_str(),
                q.paper_section.c_str(),
                static_cast<long long>(c.baseline.bytes_scanned),
                static_cast<long long>(c.fused.bytes_scanned),
                100.0 * static_cast<double>(c.fused.bytes_scanned) /
                    static_cast<double>(c.baseline.bytes_scanned),
                c.results_match ? "yes" : "NO");
  }
  std::printf(
      "\npaper (3TB): selected queries read 15%%-80%% of baseline bytes "
      "(>=~20%% reduction each); Q09/Q28/Q88 cut 60%%-85%%.\n");
  report.Write();
  return 0;
}
