// Cross-query fusion server throughput: N closed-loop clients submit the
// same TPC-DS query concurrently; the session layer batches them over the
// admission window and shares one scan per group (DESIGN.md §12). The
// interesting shape: solo-mode bytes scanned grow linearly with the client
// count while shared-mode bytes grow with the number of admission batches
// (client_count / max_batch), so queries/sec degrades far more slowly.
//
// Three outputs:
//   stdout table                            client sweep, shared vs solo
//   BENCH_multi_client_throughput.json      records keyed (query, config,
//                                           clients-as-threads)
//   BENCH_multi_client_throughput.solo.json / .shared.json
//       paired single-client gate reports, keys (query, "", 1):
//       tools/bench_diff.py fails the build when routing a lone query
//       through the sharing path costs more than the threshold.
//
// Env: FUSIONDB_BENCH_SCALE (data), FUSIONDB_BENCH_REPEATS (gate best-of-N),
// FUSIONDB_BENCH_MAX_CLIENTS (caps the sweep, default 1000).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

namespace {

size_t MaxClients() {
  const char* env = std::getenv("FUSIONDB_BENCH_MAX_CLIENTS");
  long n = env != nullptr ? std::atol(env) : 1000;
  return n < 1 ? 1 : static_cast<size_t>(n);
}

/// One closed-loop round: every client submits `query` once; the batch is
/// processed synchronously (SubmitBatch — deterministic admission, no
/// timer noise). Returns the manager so callers can read the totals.
struct RoundResult {
  double wall_ms = 0.0;
  int64_t bytes_scanned = 0;
  int64_t isolated_bytes = 0;
  int64_t shared_sessions = 0;
  std::vector<SessionPtr> sessions;
};

RoundResult RunRound(const Catalog& catalog, const tpcds::TpcdsQuery& query,
                     size_t clients, bool sharing) {
  std::vector<PlanPtr> plans;
  plans.reserve(clients);
  std::vector<PlanContext> contexts(clients);
  for (size_t i = 0; i < clients; ++i) {
    plans.push_back(Unwrap(query.build(catalog, &contexts[i])));
  }
  ServerOptions options;
  options.enable_sharing = sharing;
  SessionManager manager(options);
  int64_t start = NowNanos();
  RoundResult round;
  round.sessions = manager.SubmitBatch(plans);
  round.wall_ms = static_cast<double>(NowNanos() - start) * 1e-6;
  round.bytes_scanned = manager.total_bytes_scanned();
  round.isolated_bytes = manager.total_isolated_bytes_scanned();
  round.shared_sessions = manager.total_shared_sessions();
  for (const SessionPtr& s : round.sessions) DieIf(s->Wait().status());
  return round;
}

}  // namespace

int main() {
  const Catalog& catalog = BenchCatalog();
  int repeats = BenchRepeats();
  size_t max_clients = MaxClients();

  std::vector<const tpcds::TpcdsQuery*> queries;
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (q.fusion_applicable) queries.push_back(&q);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no fusion-applicable queries\n");
    return 1;
  }

  BenchReport report("multi_client_throughput");
  bool all_ok = true;

  // --- single-client gate: solo path vs sharing path for a lone query ----
  // With one client no group can form, so any delta is pure session-layer
  // overhead (renumbering, grouping, fan-out plumbing). bench_diff.py
  // holds it under threshold. Best-of-N, not median: both configs run the
  // identical code path here, so the minimum isolates the deterministic
  // cost from scheduler noise that medians at small N do not reject.
  BenchReport solo_gate("multi_client_throughput.solo");
  BenchReport shared_gate("multi_client_throughput.shared");
  std::printf("\nSingle-client latency: sharing path overhead per query\n\n");
  std::printf("%-6s %12s %12s\n", "query", "solo ms", "shared ms");
  for (const tpcds::TpcdsQuery* q : queries) {
    std::vector<double> solo_ms, shared_ms;
    RoundResult last_solo, last_shared;
    for (int r = 0; r < repeats; ++r) {
      last_solo = RunRound(catalog, *q, 1, /*sharing=*/false);
      last_shared = RunRound(catalog, *q, 1, /*sharing=*/true);
      solo_ms.push_back(last_solo.wall_ms);
      shared_ms.push_back(last_shared.wall_ms);
    }
    double solo_best = *std::min_element(solo_ms.begin(), solo_ms.end());
    double shared_best =
        *std::min_element(shared_ms.begin(), shared_ms.end());
    all_ok = all_ok &&
             ResultsEquivalent(*last_solo.sessions[0]->result(),
                               *last_shared.sessions[0]->result());
    solo_gate.Add({q->name, "", solo_best, last_solo.bytes_scanned, 0, 1});
    shared_gate.Add(
        {q->name, "", shared_best, last_shared.bytes_scanned, 0, 1});
    std::printf("%-6s %10.2fms %10.2fms\n", q->name.c_str(), solo_best,
                shared_best);
  }

  // --- client sweep: closed-loop throughput, shared vs solo --------------
  const tpcds::TpcdsQuery& sweep_query = *queries.front();
  std::vector<size_t> levels;
  for (size_t n : {1u, 4u, 16u, 64u, 256u, 1000u}) {
    if (n <= max_clients) levels.push_back(n);
  }
  std::printf("\nClient sweep — query %s, identical from every client "
              "(max_batch=64 per admission batch)\n\n",
              sweep_query.name.c_str());
  std::printf("%-8s %-8s %12s %10s %16s %16s %8s\n", "clients", "config",
              "wall ms", "q/s", "bytes scanned", "isolated est", "shared");
  for (size_t n : levels) {
    for (bool sharing : {false, true}) {
      RoundResult round = RunRound(catalog, sweep_query, n, sharing);
      double qps = round.wall_ms > 0.0
                       ? static_cast<double>(n) / (round.wall_ms * 1e-3)
                       : 0.0;
      const char* config = sharing ? "shared" : "solo";
      report.Add({sweep_query.name, config, round.wall_ms,
                  round.bytes_scanned, 0, static_cast<int64_t>(n)});
      std::printf("%-8zu %-8s %10.2fms %10.1f %16lld %16lld %5lld/%zu\n", n,
                  config, round.wall_ms, qps,
                  static_cast<long long>(round.bytes_scanned),
                  static_cast<long long>(round.isolated_bytes),
                  static_cast<long long>(round.shared_sessions), n);
      // The acceptance property: with >= 2 identical concurrent queries,
      // sharing must scan strictly fewer bytes than isolated execution.
      if (sharing && n >= 2) {
        all_ok = all_ok && round.bytes_scanned < round.isolated_bytes &&
                 round.shared_sessions == static_cast<int64_t>(n);
      }
    }
  }

  std::printf("\nshared-mode bytes grow per admission batch "
              "(ceil(clients/64) scans), solo-mode per client. "
              "correctness + sharing assertions: %s\n",
              all_ok ? "ok" : "FAILED");
  report.Write();
  solo_gate.Write();
  shared_gate.Write();
  return all_ok ? 0 : 1;
}
