// Fusion vs spooling — the paper's central positioning: spooling [21] is
// the general mechanism for common subexpressions, but "in certain
// scenarios we can do better than spooling ... completely removing multiple
// instances of the common subquery without the need to store intermediate
// results". Three predictions to check:
//   1. where both apply (identical CTEs: Q01/Q23/Q65/Q95), fusion is at
//      least as good and avoids spool working memory entirely;
//   2. spooling requires *identical* subtrees, so it cannot touch the
//      similar-but-different subexpressions of Q09/Q28/Q88 — fusion's
//      compensation machinery covers them;
//   3. spool consumers pay a serialize/deserialize round per read.
#include <cstdio>

#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

int main() {
  Engine& engine = BenchEngine();
  BenchReport report("spool_vs_fusion");
  bool diverged = false;
  std::printf("\nFusion vs spooling (baseline-normalized latency)\n\n");
  std::printf("%-6s %10s %10s %10s %7s %13s %13s %13s\n", "query",
              "base (ms)", "spool(ms)", "fused(ms)", "spools",
              "spool mem (B)", "spool..mem", "fused mem (B)");
  std::printf("%s\n", std::string(92, '-').c_str());
  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (!q.fusion_applicable) continue;
    PreparedQuery prepared = Unwrap(engine.Prepare(q.build));
    QueryOptions spool_options = BenchOptions(OptimizerOptions::Spooling());
    PlanPtr spool_plan = Unwrap(engine.Optimize(&prepared, spool_options));
    int spools = CountOps(spool_plan, OpKind::kSpool);

    RunStats base = RunPrepared(&prepared, OptimizerOptions::Baseline());
    RunStats spool = RunPrepared(&prepared, OptimizerOptions::Spooling());
    RunStats fused = RunPrepared(&prepared, OptimizerOptions::Fused());
    report.Add({q.name, "baseline", base.latency_ms, base.bytes_scanned,
                base.peak_hash_bytes, 1});
    report.Add({q.name, "spool", spool.latency_ms, spool.bytes_scanned,
                spool.peak_hash_bytes, 1});
    report.Add({q.name, "fused", fused.latency_ms, fused.bytes_scanned,
                fused.peak_hash_bytes, 1});

    // Correctness across all three configurations.
    QueryOptions base_options = BenchOptions(OptimizerOptions::Baseline());
    QueryOptions fused_options = BenchOptions(OptimizerOptions::Fused());
    QueryResult rb = Unwrap(engine.ExecuteOptimized(
        Unwrap(engine.Optimize(&prepared, base_options)), base_options));
    QueryResult rs = Unwrap(engine.ExecuteOptimized(spool_plan, spool_options));
    QueryResult rf = Unwrap(engine.ExecuteOptimized(
        Unwrap(engine.Optimize(&prepared, fused_options)), fused_options));
    bool match = ResultsEquivalent(rb, rs) && ResultsEquivalent(rb, rf);
    diverged |= !match;
    const char* ok = match ? "" : "  RESULTS DIVERGE";
    std::printf("%-6s %10.2f %10.2f %10.2f %7d %13lld %13s %13lld%s\n",
                q.name.c_str(), base.latency_ms, spool.latency_ms,
                fused.latency_ms, spools,
                static_cast<long long>(spool.peak_hash_bytes), "",
                static_cast<long long>(fused.peak_hash_bytes), ok);
  }
  std::printf(
      "\nReading: Q09/Q28 show 0 spools — their per-bucket subexpressions "
      "differ, so only fusion (with compensating masks) collapses them. Q88 "
      "spools its identical demographic/store fragments but cannot share "
      "the differing time windows. Where both apply, fusion needs no spool "
      "buffers and skips the per-read deserialization.\n");
  report.Write();
  if (diverged) {
    std::fprintf(stderr, "spool_vs_fusion: results diverged\n");
    return 1;
  }
  return 0;
}
