// Fused-chain micro-benchmarks for the compiled-pipeline executor
// (src/exec/pipeline.h): each measurement is a non-blocking
// scan→filter→project(→aggregate) chain — exactly the shapes the bind-time
// compiler fuses into one push loop per morsel. Run twice by tools/check.sh
// (FUSIONDB_BENCH_COMPILE=0 then 1) and diffed with bench_diff.py: the
// compiled configuration must beat the interpreted pull operators by >= 10%
// summed over the chains (EXPERIMENTS.md).
//
// Plans execute as built, without the optimizer: this bench isolates the
// *executor's* fused-vs-pull delta on a given operator chain, and the
// simplifier would fold the stacked-filter chains into one conjunct —
// erasing the multi-operator shape (filter→project→aggregate runs) that
// optimized TPC-DS plans still hand the executor. Whole-plan effects are
// tpcds_overall's job.
//
// The bench asserts compiled-vs-interpreted byte-identity on every chain
// before timing it, so a run that would publish numbers for divergent
// executions fails instead.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

namespace {

struct Chain {
  std::string name;
  // Report config label: "chain" entries are the multi-boundary shapes the
  // compiler exists for, gated for >= 10% speedup by tools/check.sh;
  // "floor" entries are single-boundary or sink-dominated shapes that tie
  // by design and ride along as honesty checks (regressions there show up
  // in the whole-workload tpcds_overall gate instead).
  std::string config;
  std::function<PlanPtr(const Catalog&, PlanContext*)> build;
};

// The wide column set the filter/project chains carry. Fusion's savings is
// the intermediate materialization it skips — each interpreted FilterExec
// re-gathers every column of its chunk — so the chains scan the realistic
// wide projection an analytic query keeps, not a minimal two-column one.
// (The aggregate chains stay narrow: column pruning legitimately strips an
// aggregation's scan down to the referenced columns in both engines.)
const std::vector<std::string>& WideColumns() {
  static const std::vector<std::string> cols = {
      "ss_sold_date_sk",  "ss_item_sk",     "ss_customer_sk",
      "ss_store_sk",      "ss_quantity",    "ss_list_price",
      "ss_sales_price",   "ss_net_profit"};
  return cols;
}

std::vector<Chain> Chains() {
  return {
      // Single boundary: interpreted gathers once at the filter, compiled
      // gathers once at emission — an honest floor, near-tie by design.
      {"scan_filter", "floor",
       [](const Catalog& c, PlanContext* ctx) {
         TablePtr t = Unwrap(c.GetTable("store_sales"));
         PlanBuilder b = PlanBuilder::Scan(ctx, t, WideColumns());
         b.Filter(eb::Gt(b.Ref("ss_list_price"), eb::Dbl(20.0)));
         return b.Build();
       }},
      // Three stacked filters, each passing most rows: the interpreted path
      // re-materializes all eight columns after every stage; the compiled
      // loop narrows one SelVector and gathers once.
      {"scan_filter_chain", "chain",
       [](const Catalog& c, PlanContext* ctx) {
         TablePtr t = Unwrap(c.GetTable("store_sales"));
         PlanBuilder b = PlanBuilder::Scan(ctx, t, WideColumns());
         b.Filter(eb::Between(b.Ref("ss_quantity"), eb::Int(2), eb::Int(95)));
         b.Filter(eb::Gt(b.Ref("ss_list_price"), eb::Dbl(10.0)));
         b.Filter(eb::IsNotNull(b.Ref("ss_net_profit")));
         return b.Build();
       }},
      {"scan_filter_project", "chain",
       [](const Catalog& c, PlanContext* ctx) {
         TablePtr t = Unwrap(c.GetTable("store_sales"));
         PlanBuilder b = PlanBuilder::Scan(ctx, t, WideColumns());
         b.Filter(eb::Gt(b.Ref("ss_quantity"), eb::Int(5)));
         b.Project({{"discount", eb::Sub(b.Ref("ss_list_price"),
                                         b.Ref("ss_sales_price"))},
                    {"date", b.Ref("ss_sold_date_sk")},
                    {"item", b.Ref("ss_item_sk")},
                    {"customer", b.Ref("ss_customer_sk")},
                    {"store", b.Ref("ss_store_sk")},
                    {"qty", b.Ref("ss_quantity")},
                    {"profit", b.Ref("ss_net_profit")}});
         return b.Build();
       }},
      // The full fused shape: two filters, a projection computing a derived
      // measure, and a scalar aggregate over it — four operator boundaries
      // collapsed into one loop.
      {"scan_pipeline_deep", "chain",
       [](const Catalog& c, PlanContext* ctx) {
         TablePtr t = Unwrap(c.GetTable("store_sales"));
         PlanBuilder b = PlanBuilder::Scan(ctx, t, WideColumns());
         b.Filter(eb::Between(b.Ref("ss_quantity"), eb::Int(2), eb::Int(95)));
         b.Filter(eb::Gt(b.Ref("ss_list_price"), eb::Dbl(10.0)));
         b.Project({{"margin", eb::Sub(b.Ref("ss_sales_price"),
                                       b.Ref("ss_net_profit"))},
                    {"qty", b.Ref("ss_quantity")}});
         b.Aggregate({}, {{"total_margin", AggFunc::kSum, b.Ref("margin"),
                           nullptr, false},
                          {"n", AggFunc::kCountStar, nullptr, nullptr, false}});
         return b.Build();
       }},
      {"scan_filter_scalar_agg", "chain",
       [](const Catalog& c, PlanContext* ctx) {
         TablePtr t = Unwrap(c.GetTable("store_sales"));
         PlanBuilder b = PlanBuilder::Scan(
             ctx, t, {"ss_quantity", "ss_list_price", "ss_sales_price"});
         b.Filter(eb::Between(b.Ref("ss_quantity"), eb::Int(2), eb::Int(95)));
         b.Filter(eb::Gt(b.Ref("ss_list_price"), eb::Dbl(10.0)));
         b.Aggregate({}, {{"total", AggFunc::kSum, b.Ref("ss_sales_price"),
                           nullptr, false},
                          {"n", AggFunc::kCountStar, nullptr, nullptr, false}});
         return b.Build();
       }},
      {"scan_filter_group_agg", "floor",
       [](const Catalog& c, PlanContext* ctx) {
         TablePtr t = Unwrap(c.GetTable("store_sales"));
         PlanBuilder b = PlanBuilder::Scan(
             ctx, t, {"ss_store_sk", "ss_quantity", "ss_sales_price"});
         b.Filter(eb::Between(b.Ref("ss_quantity"), eb::Int(1), eb::Int(90)));
         b.Aggregate({"ss_store_sk"},
                     {{"revenue", AggFunc::kSum, b.Ref("ss_sales_price"),
                       nullptr, false}});
         return b.Build();
       }},
      // Mask evaluation dominates and is shared code (agg_build) in both
      // engines — the other honest floor entry.
      {"scan_masked_agg", "floor",
       [](const Catalog& c, PlanContext* ctx) {
         TablePtr t = Unwrap(c.GetTable("store_sales"));
         PlanBuilder b = PlanBuilder::Scan(
             ctx, t, {"ss_store_sk", "ss_quantity", "ss_list_price"});
         std::vector<AggSpec> specs;
         for (int i = 0; i < 2; ++i) {
           specs.push_back({"s" + std::to_string(i), AggFunc::kSum,
                            b.Ref("ss_list_price"),
                            eb::Between(b.Ref("ss_quantity"), eb::Int(i * 40),
                                        eb::Int(i * 40 + 45)),
                            false});
         }
         b.Aggregate({"ss_store_sk"}, std::move(specs));
         return b.Build();
       }},
  };
}

/// Times ExecutePlan directly (no optimizer pass — see the header comment);
/// latency is the median of BenchRepeats() runs, matching RunPlan's
/// discipline and env knobs.
RunStats TimePlan(const PlanPtr& plan) {
  RunStats stats;
  std::vector<double> times;
  int repeats = BenchRepeats();
  for (int i = 0; i < repeats; ++i) {
    QueryResult result = Unwrap(
        ExecutePlan(plan, {.profile = BenchProfileEnabled(),
                           .compile_pipelines = BenchCompilePipelines(),
                           .metrics = BenchMetricsRegistry()}));
    times.push_back(result.wall_ms());
    stats.bytes_scanned = result.metrics().bytes_scanned;
    stats.peak_hash_bytes = result.metrics().peak_hash_bytes;
    stats.rows = result.num_rows();
  }
  std::sort(times.begin(), times.end());
  stats.latency_ms = times[times.size() / 2];
  return stats;
}

}  // namespace

int main() {
  const Catalog& catalog = BenchCatalog();
  bool compiled = BenchCompilePipelines();
  BenchReport report("pipeline_micro");
  std::printf("\nFused-chain micro-bench (compile_pipelines=%s)\n\n",
              compiled ? "on" : "off");
  std::printf("%-24s %12s %12s %8s\n", "chain", "wall (ms)", "bytes", "rows");

  for (const Chain& chain : Chains()) {
    PlanContext ctx;
    PlanPtr plan = chain.build(catalog, &ctx);

    // Differential guard: both execution models must render identical rows
    // and read identical bytes before this chain's numbers count.
    QueryResult compiled_r =
        Unwrap(ExecutePlan(plan, {.compile_pipelines = true}));
    QueryResult interp_r =
        Unwrap(ExecutePlan(plan, {.compile_pipelines = false}));
    if (!ResultsEquivalent(compiled_r, interp_r) ||
        compiled_r.metrics().bytes_scanned !=
            interp_r.metrics().bytes_scanned) {
      std::fprintf(stderr,
                   "pipeline_micro: %s: compiled and interpreted executions "
                   "diverge\n",
                   chain.name.c_str());
      return 1;
    }

    RunStats stats = TimePlan(plan);
    std::printf("%-24s %12.3f %12lld %8lld\n", chain.name.c_str(),
                stats.latency_ms, static_cast<long long>(stats.bytes_scanned),
                static_cast<long long>(stats.rows));
    // The config label is constant per chain across the off/on runs, so
    // bench_diff keys still match between the two report files while its
    // --config filter can gate just the fused-chain population.
    report.Add({chain.name, chain.config, stats.latency_ms, stats.bytes_scanned,
                0, 1});
  }
  report.Write();
  return 0;
}
