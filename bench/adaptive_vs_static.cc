// Adaptive (cost-model fuse-vs-spool with measured feedback) versus the
// best static configuration per query (DESIGN.md §11).
//
// The static policies each have a failure mode: Fused() leaves duplicates
// fusion cannot merge re-executing per consumer; Spooling() materializes
// everything, paying setup + serialize/deserialize even for tiny subtrees.
// Adaptive mode prices each candidate, so the prediction is that it tracks
// whichever static policy wins on each query (within noise): never much
// worse than best-static, sometimes better than either fixed choice.
//
// Adaptive latency is measured *with* feedback from a profiled first run —
// the steady state of a repeated workload, which is the paper's setting
// (recurring dashboards/ETL queries).
//
// Reports:
//   BENCH_adaptive_vs_static.json          all configs, labeled
//   BENCH_adaptive_vs_static.static.json   best-static, keys (query, "", 1)
//   BENCH_adaptive_vs_static.adaptive.json adaptive,    keys (query, "", 1)
// The latter two share keys so tools/bench_diff.py can gate adaptive
// against best-static directly (see tools/check.sh).
//
// Because this bench *gates* (unlike the report-only benches), its
// measurement must be robust on millisecond-scale queries in a shared
// CI container. Two defenses: repeats are interleaved round-robin
// across the three configurations, so slow drift within the process
// (allocator growth, CPU frequency, cache state) hits every config
// equally rather than whichever was measured last — without this,
// byte-identical plans measured in consecutive blocks differ by >15%;
// and the gate reports carry best-of-N latency (the least-interfered
// run) while the labeled report and stdout keep the median, the
// convention of the other benches.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

namespace {

/// Optimizes with adaptive mode in its steady state: a profiled run under
/// priors (the still-empty feedback store) feeds measured cardinalities
/// into the measured optimization.
PlanPtr AdaptiveSteadyState(Engine& engine, PreparedQuery* query,
                            StatsFeedback* feedback) {
  QueryOptions options = BenchOptions(OptimizerOptions::Adaptive(feedback));
  PlanPtr first = Unwrap(engine.Optimize(query, options));
  QueryResult warm = Unwrap(engine.ExecuteOptimized(first, options));
  feedback->Harvest(first, warm.operator_stats());
  return Unwrap(engine.Optimize(query, options));
}

/// Accumulates interleaved timings; latency_ms = median (as elsewhere),
/// min_ms = best-of-N (used by the regression gate).
struct Measured {
  RunStats stats;
  double min_ms = 0.0;
  std::vector<double> times;

  void Run(const PlanPtr& optimized) {
    QueryResult result = Unwrap(BenchEngine().ExecuteOptimized(
        optimized, BenchOptions(OptimizerOptions())));
    times.push_back(result.wall_ms());
    stats.bytes_scanned = result.metrics().bytes_scanned;
    stats.peak_hash_bytes = result.metrics().peak_hash_bytes;
    stats.rows = result.num_rows();
  }

  void Finish() {
    std::sort(times.begin(), times.end());
    stats.latency_ms = times[times.size() / 2];
    min_ms = times.front();
  }
};

}  // namespace

int main() {
  Engine& engine = BenchEngine();
  BenchReport report("adaptive_vs_static");
  BenchReport static_best("adaptive_vs_static.static");
  BenchReport adaptive_only("adaptive_vs_static.adaptive");
  bool diverged = false;

  std::printf("\nAdaptive vs static configurations (median latency)\n\n");
  std::printf("%-6s %10s %10s %10s %10s %8s\n", "query", "fused(ms)",
              "spool(ms)", "adapt(ms)", "best-stat", "match");
  std::printf("%s\n", std::string(62, '-').c_str());

  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (!q.fusion_applicable) continue;
    PreparedQuery prepared = Unwrap(engine.Prepare(q.build));

    PlanPtr fused_plan = Unwrap(
        engine.Optimize(&prepared, BenchOptions(OptimizerOptions::Fused())));
    PlanPtr spool_plan = Unwrap(engine.Optimize(
        &prepared, BenchOptions(OptimizerOptions::Spooling())));
    StatsFeedback feedback;
    PlanPtr adaptive_plan = AdaptiveSteadyState(engine, &prepared, &feedback);

    Measured fused, spool, adaptive;
    for (int i = 0; i < BenchRepeats(); ++i) {
      fused.Run(fused_plan);
      spool.Run(spool_plan);
      adaptive.Run(adaptive_plan);
    }
    fused.Finish();
    spool.Finish();
    adaptive.Finish();

    QueryOptions base_options = BenchOptions(OptimizerOptions::Baseline());
    QueryResult rb = Unwrap(engine.ExecuteOptimized(
        Unwrap(engine.Optimize(&prepared, base_options)), base_options));
    bool match = ResultsEquivalent(
        rb, Unwrap(engine.ExecuteOptimized(adaptive_plan, base_options)));
    diverged |= !match;

    const Measured& best = fused.min_ms <= spool.min_ms ? fused : spool;
    report.Add({q.name, "fused", fused.stats.latency_ms,
                fused.stats.bytes_scanned, fused.stats.peak_hash_bytes, 1});
    report.Add({q.name, "spooling", spool.stats.latency_ms,
                spool.stats.bytes_scanned, spool.stats.peak_hash_bytes, 1});
    report.Add({q.name, "adaptive", adaptive.stats.latency_ms,
                adaptive.stats.bytes_scanned, adaptive.stats.peak_hash_bytes,
                1});
    static_best.Add({q.name, "", best.min_ms, best.stats.bytes_scanned,
                     best.stats.peak_hash_bytes, 1});
    adaptive_only.Add({q.name, "", adaptive.min_ms,
                       adaptive.stats.bytes_scanned,
                       adaptive.stats.peak_hash_bytes, 1});

    std::printf("%-6s %10.2f %10.2f %10.2f %10.2f %8s\n", q.name.c_str(),
                fused.stats.latency_ms, spool.stats.latency_ms,
                adaptive.stats.latency_ms, best.stats.latency_ms,
                match ? "yes" : "NO");
  }

  std::printf(
      "\nReading: gate with tools/bench_diff.py "
      "BENCH_adaptive_vs_static.static.json "
      "BENCH_adaptive_vs_static.adaptive.json — adaptive more than the "
      "threshold slower than the best static policy on any query fails.\n");
  report.Write();
  static_best.Write();
  adaptive_only.Write();
  if (diverged) {
    std::fprintf(stderr, "adaptive_vs_static: results diverged\n");
    return 1;
  }
  return 0;
}
