// Whole-workload reproduction of the paper's headline numbers:
//   - 14% improvement over the full 99-query TPC-DS run,
//   - ~60% average improvement on the subset whose plans change,
//   - some queries improving more than 6x,
//   - plans of non-applicable queries untouched.
// Our workload is the applicable set plus a filler set standing in for the
// rest of the benchmark, so the overall percentage depends on the
// applicable:filler mix; the per-subset numbers are the comparable ones.
// Also reports peak hash-table memory, reproducing the Section V.C
// observation that fusing Q23 halves intermediate state.
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

int main() {
  BenchEngine();  // build the catalog before the header prints
  BenchReport report("tpcds_overall");
  std::printf("\nWhole-workload comparison (Section V headline numbers)\n\n");
  std::printf("%-6s %-5s %12s %12s %9s %13s %13s %7s\n", "query", "appl",
              "base (ms)", "fused (ms)", "speedup", "base mem (B)",
              "fused mem (B)", "match");
  std::printf("%s\n", std::string(85, '-').c_str());

  double total_base = 0.0;
  double total_fused = 0.0;
  double applicable_ratio_sum = 0.0;
  int applicable_count = 0;
  double best_speedup = 0.0;
  std::string best_query;
  bool all_match = true;

  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    Comparison c = CompareQuery(q);
    AddComparison(&report, q.name, c);
    double speedup = c.baseline.latency_ms / c.fused.latency_ms;
    std::printf("%-6s %-5s %12.2f %12.2f %8.2fx %13lld %13lld %7s\n",
                q.name.c_str(), q.fusion_applicable ? "yes" : "no",
                c.baseline.latency_ms, c.fused.latency_ms, speedup,
                static_cast<long long>(c.baseline.peak_hash_bytes),
                static_cast<long long>(c.fused.peak_hash_bytes),
                c.results_match ? "yes" : "NO");
    all_match &= c.results_match;
    total_base += c.baseline.latency_ms;
    total_fused += c.fused.latency_ms;
    if (q.fusion_applicable) {
      applicable_ratio_sum += 1.0 - c.fused.latency_ms / c.baseline.latency_ms;
      ++applicable_count;
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_query = q.name;
      }
    }
  }

  std::printf("%s\n", std::string(85, '-').c_str());
  std::printf("all results match: %s\n", all_match ? "yes" : "NO");
  std::printf("overall workload improvement: %.1f%%   (paper: 14%%)\n",
              100.0 * (1.0 - total_fused / total_base));
  std::printf(
      "mean improvement on plan-changed queries: %.1f%%   (paper: ~60%%)\n",
      100.0 * applicable_ratio_sum / applicable_count);
  std::printf("best speedup: %s at %.2fx   (paper: over 6x)\n",
              best_query.c_str(), best_speedup);
  report.Write();
  return 0;
}
