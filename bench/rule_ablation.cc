// Ablation over the Section IV rules: each rule is disabled in turn (the
// others stay on) and every applicable query is re-measured, showing which
// rewrite is responsible for each query's gains — the composability point
// the paper makes against Blitz's monolithic super-operators.
// A final axis compares the two DISTINCT strategies: native masked DISTINCT
// aggregates vs the Section III.F MarkDistinct lowering.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace fusiondb;         // NOLINT
using namespace fusiondb::bench;  // NOLINT

namespace {

struct Variant {
  std::string name;
  OptimizerOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> out;
  out.push_back({"all-rules", OptimizerOptions::Fused()});
  {
    OptimizerOptions o = OptimizerOptions::Fused();
    o.enable_group_by_join_to_window = false;
    out.push_back({"-window", o});
  }
  {
    OptimizerOptions o = OptimizerOptions::Fused();
    o.enable_join_on_keys = false;
    out.push_back({"-joinkeys", o});
  }
  {
    OptimizerOptions o = OptimizerOptions::Fused();
    o.enable_union_all_on_join = false;
    out.push_back({"-unionjoin", o});
  }
  {
    OptimizerOptions o = OptimizerOptions::Fused();
    o.enable_union_all_fuse = false;
    out.push_back({"-unionfuse", o});
  }
  {
    OptimizerOptions o = OptimizerOptions::Fused();
    o.enable_distinct_lowering = true;
    out.push_back({"+markdist", o});
  }
  out.push_back({"baseline", OptimizerOptions::Baseline()});
  return out;
}

}  // namespace

int main() {
  Engine& engine = BenchEngine();
  BenchReport report("rule_ablation");
  std::vector<Variant> variants = Variants();

  std::printf("\nRule ablation — bytes scanned per optimizer variant\n\n");
  std::printf("%-6s", "query");
  for (const Variant& v : variants) std::printf(" %12s", v.name.c_str());
  std::printf("\n%s\n", std::string(6 + 13 * variants.size(), '-').c_str());

  for (const tpcds::TpcdsQuery& q : tpcds::Queries()) {
    if (!q.fusion_applicable) continue;
    std::printf("%-6s", q.name.c_str());
    for (const Variant& v : variants) {
      PreparedQuery prepared = Unwrap(engine.Prepare(q.build));
      RunStats stats = RunPrepared(&prepared, v.options, /*repeats=*/1);
      report.Add({q.name, v.name, stats.latency_ms, stats.bytes_scanned,
                  stats.peak_hash_bytes, 1});
      std::printf(" %12lld", static_cast<long long>(stats.bytes_scanned));
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: a query's bytes jump back to the baseline level exactly "
      "when the rule that rewrites it is disabled.\n");
  report.Write();
  return 0;
}
