// Glue between the google-benchmark micros and the BENCH_<name>.json
// report: a console reporter that mirrors every run into a BenchReport,
// and a BENCHMARK_MAIN() replacement that writes the report on exit.
#ifndef FUSIONDB_BENCH_BENCH_GBENCH_H_
#define FUSIONDB_BENCH_BENCH_GBENCH_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"

namespace fusiondb::bench {

/// Captures each run as a BenchRecord (query = benchmark name, config =
/// "micro", wall_ms = real time per iteration) while still printing the
/// normal console table. Bytes/memory fields stay zero: the micros
/// measure throughput of single operators, not whole-query scans.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      report_->Add({run.benchmark_name(), "micro",
                    run.real_accumulated_time / iters * 1e3, 0, 0, 1});
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body.
inline int RunGbenchWithReport(const std::string& name, int argc,
                               char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchReport report(name);
  RecordingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.Write();
  return 0;
}

}  // namespace fusiondb::bench

#endif  // FUSIONDB_BENCH_BENCH_GBENCH_H_
