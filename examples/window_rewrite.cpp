// The paper's motivating example (Section I / Q65): a common aggregation
// block is aggregated again and joined back to itself; the
// GroupByJoinToWindow rule (IV.A) replaces both instances with a single
// windowed aggregation, reading store_sales and date_dim once.
#include <cstdio>
#include <cstdlib>

#include "fusiondb.h"

using namespace fusiondb;  // NOLINT: example code

namespace {

void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  Engine engine;
  tpcds::TpcdsOptions options;
  options.scale = scale;
  DieIf(tpcds::BuildTpcdsCatalog(options, engine.mutable_catalog()));

  // The Section I variant of Q65 (36-month window).
  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName("q65v"));
  PreparedQuery prepared = Unwrap(engine.Prepare(query.build));

  PlanPtr baseline =
      Unwrap(engine.Optimize(&prepared, QueryOptions::Baseline()));
  PlanPtr fused = Unwrap(engine.Optimize(&prepared, QueryOptions::Fused()));

  std::printf("baseline reads store_sales %d times; fused %d time(s)\n",
              CountTableScans(baseline, "store_sales"),
              CountTableScans(fused, "store_sales"));
  std::printf("baseline window ops: %d; fused window ops: %d\n\n",
              CountOps(baseline, OpKind::kWindow),
              CountOps(fused, OpKind::kWindow));
  std::printf("== fused plan ==\n%s\n", PlanToString(fused).c_str());

  QueryResult rb =
      Unwrap(engine.ExecuteOptimized(baseline, QueryOptions::Baseline()));
  QueryResult rf =
      Unwrap(engine.ExecuteOptimized(fused, QueryOptions::Fused()));
  std::printf("results match: %s\n", ResultsEquivalent(rb, rf) ? "yes" : "NO");
  std::printf("latency: %.2f ms -> %.2f ms (%.0f%% faster)\n", rb.wall_ms(),
              rf.wall_ms(), 100.0 * (1.0 - rf.wall_ms() / rb.wall_ms()));
  std::printf("bytes scanned: %lld -> %lld (%.0f%% less data)\n",
              static_cast<long long>(rb.metrics().bytes_scanned),
              static_cast<long long>(rf.metrics().bytes_scanned),
              100.0 * (1.0 - static_cast<double>(rf.metrics().bytes_scanned) /
                                 static_cast<double>(rb.metrics().bytes_scanned)));
  std::printf(
      "(paper, Section I: this rewrite cut latency 48%% and data scanned "
      "almost 50%%)\n");
  return 0;
}
