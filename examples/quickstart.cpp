// Quickstart: build a table, express a query with a duplicated
// subexpression, optimize it with and without the fusion rules, and compare
// plans, results and scan volume.
#include <cstdio>
#include <cstdlib>

#include "fusiondb.h"

using namespace fusiondb;  // NOLINT: example code

namespace {

void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  // 1. A small orders table.
  TableBuilder builder("orders", {{"order_id", DataType::kInt64},
                                  {"region", DataType::kString},
                                  {"amount", DataType::kFloat64}});
  const char* regions[] = {"east", "west", "north", "south"};
  for (int64_t i = 1; i <= 10000; ++i) {
    DieIf(builder.AppendRow({Value::Int64(i), Value::String(regions[i % 4]),
                             Value::Float64(static_cast<double>(i % 997))}));
  }
  Catalog catalog;
  DieIf(catalog.RegisterTable(Unwrap(builder.Build())));
  TablePtr orders = Unwrap(catalog.GetTable("orders"));

  // 2. A query that reads the table twice: orders joined against their
  //    per-region average (the paper's motivating shape):
  //      SELECT order_id, amount, avg_amount
  //      FROM orders o, (SELECT region, AVG(amount) avg_amount
  //                      FROM orders GROUP BY region) r
  //      WHERE o.region = r.region AND o.amount > r.avg_amount
  PlanContext ctx;
  PlanBuilder agg = PlanBuilder::Scan(&ctx, orders, {"region", "amount"});
  agg.Aggregate({"region"}, {{"avg_amount", AggFunc::kAvg, agg.Ref("amount"),
                              nullptr, false}});
  PlanBuilder q = PlanBuilder::Scan(&ctx, orders,
                                    {"order_id", "region", "amount"});
  ExprPtr o_region = q.Ref("region");
  ExprPtr o_amount = q.Ref("amount");
  q.Join(JoinType::kInner, agg,
         eb::And(eb::Eq(o_region, agg.Ref("region")),
                 eb::Gt(o_amount, agg.Ref("avg_amount"))));
  q.Select({"order_id", "amount", "avg_amount"});
  PlanPtr plan = q.Build();

  // 3. Optimize twice: baseline vs fusion rules on.
  PlanPtr baseline =
      Unwrap(Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx));
  PlanPtr fused =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));

  std::printf("== baseline plan (reads 'orders' %d times) ==\n%s\n",
              CountTableScans(baseline, "orders"),
              PlanToString(baseline).c_str());
  std::printf("== fused plan (reads 'orders' %d times) ==\n%s\n",
              CountTableScans(fused, "orders"), PlanToString(fused).c_str());

  // 4. Execute both and compare.
  QueryResult base_result = Unwrap(ExecutePlan(baseline));
  QueryResult fused_result = Unwrap(ExecutePlan(fused));
  std::printf("results match: %s\n",
              ResultsEquivalent(base_result, fused_result) ? "yes" : "NO");
  std::printf("rows: %lld\n",
              static_cast<long long>(base_result.num_rows()));
  std::printf("bytes scanned: baseline=%lld fused=%lld (%.0f%% of baseline)\n",
              static_cast<long long>(base_result.metrics().bytes_scanned),
              static_cast<long long>(fused_result.metrics().bytes_scanned),
              100.0 *
                  static_cast<double>(fused_result.metrics().bytes_scanned) /
                  static_cast<double>(base_result.metrics().bytes_scanned));
  return 0;
}
