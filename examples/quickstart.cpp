// Quickstart: build a table, express a query with a duplicated
// subexpression — as SQL text, through the fusiondb::Engine front door —
// optimize it with and without the fusion rules, and compare plans, results
// and scan volume.
#include <cstdio>
#include <cstdlib>

#include "fusiondb.h"

using namespace fusiondb;  // NOLINT: example code

namespace {

void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  // 1. A small orders table, registered with the engine's catalog.
  TableBuilder builder("orders", {{"order_id", DataType::kInt64},
                                  {"region", DataType::kString},
                                  {"amount", DataType::kFloat64}});
  const char* regions[] = {"east", "west", "north", "south"};
  for (int64_t i = 1; i <= 10000; ++i) {
    DieIf(builder.AppendRow({Value::Int64(i), Value::String(regions[i % 4]),
                             Value::Float64(static_cast<double>(i % 997))}));
  }
  Engine engine;
  DieIf(engine.mutable_catalog()->RegisterTable(Unwrap(builder.Build())));

  // 2. A query that reads the table twice: orders joined against their
  //    per-region average (the paper's motivating shape). Plain SQL — the
  //    engine parses and binds it; malformed text would come back with a
  //    caret-position diagnostic.
  PreparedQuery query = Unwrap(engine.Prepare(
      "SELECT o.order_id, o.amount, r.avg_amount "
      "FROM orders o JOIN (SELECT region, AVG(amount) AS avg_amount "
      "                    FROM orders GROUP BY region) r "
      "  ON o.region = r.region AND o.amount > r.avg_amount"));

  // 3. Optimize twice: baseline vs fusion rules on.
  PlanPtr baseline = Unwrap(engine.Optimize(&query, QueryOptions::Baseline()));
  PlanPtr fused = Unwrap(engine.Optimize(&query, QueryOptions::Fused()));

  std::printf("== baseline plan (reads 'orders' %d times) ==\n%s\n",
              CountTableScans(baseline, "orders"),
              PlanToString(baseline).c_str());
  std::printf("== fused plan (reads 'orders' %d times) ==\n%s\n",
              CountTableScans(fused, "orders"), PlanToString(fused).c_str());

  // 4. Execute both and compare.
  QueryResult base_result =
      Unwrap(engine.ExecuteOptimized(baseline, QueryOptions::Baseline()));
  QueryResult fused_result =
      Unwrap(engine.ExecuteOptimized(fused, QueryOptions::Fused()));
  std::printf("results match: %s\n",
              ResultsEquivalent(base_result, fused_result) ? "yes" : "NO");
  std::printf("rows: %lld\n",
              static_cast<long long>(base_result.num_rows()));
  std::printf("bytes scanned: baseline=%lld fused=%lld (%.0f%% of baseline)\n",
              static_cast<long long>(base_result.metrics().bytes_scanned),
              static_cast<long long>(fused_result.metrics().bytes_scanned),
              100.0 *
                  static_cast<double>(fused_result.metrics().bytes_scanned) /
                  static_cast<double>(base_result.metrics().bytes_scanned));
  return 0;
}
