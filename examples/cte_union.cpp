// The paper's Section I CTE example:
//
//   WITH cte AS (...complex_subquery...)
//   SELECT customer_id FROM cte WHERE fname = 'John'
//   UNION ALL
//   SELECT customer_id FROM cte WHERE lname = 'Smith'
//
// The UnionAll rule (IV.D) rewrites it to read the CTE once, cross-joined
// with a constant (VALUES) tag table:
//
//   SELECT customer_id FROM cte, (VALUES (1), (2)) T(tag)
//   WHERE (fname = 'John' AND tag = 1) OR (lname = 'Smith' AND tag = 2)
#include <cstdio>
#include <cstdlib>

#include "fusiondb.h"

using namespace fusiondb;  // NOLINT: example code

namespace {

void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

// "complex_subquery": a filter + computed column over the table. Each
// UNION branch instantiates its own copy, as a streaming engine would.
PlanBuilder MakeCte(const Catalog& catalog, PlanContext* ctx) {
  TablePtr customers = Unwrap(catalog.GetTable("customers"));
  PlanBuilder b = PlanBuilder::Scan(ctx, customers,
                                    {"customer_id", "fname", "lname", "spend"});
  b.Filter(eb::Gt(b.Ref("spend"), eb::Dbl(100.0)));
  return b;
}

}  // namespace

int main() {
  // The CTE's source table, registered with the engine's catalog.
  TableBuilder builder("customers", {{"customer_id", DataType::kInt64},
                                     {"fname", DataType::kString},
                                     {"lname", DataType::kString},
                                     {"spend", DataType::kFloat64}});
  const char* fnames[] = {"John", "Mary", "Ana", "Luis"};
  const char* lnames[] = {"Smith", "Jones", "Brown", "Lee"};
  for (int64_t i = 1; i <= 50000; ++i) {
    DieIf(builder.AppendRow(
        {Value::Int64(i), Value::String(fnames[i % 4]),
         Value::String(lnames[(i / 4) % 4]),
         Value::Float64(static_cast<double>(i % 1000))}));
  }
  Engine engine;
  DieIf(engine.mutable_catalog()->RegisterTable(Unwrap(builder.Build())));

  PreparedQuery query = Unwrap(
      engine.Prepare([](const Catalog& catalog,
                        PlanContext* ctx) -> Result<PlanPtr> {
        PlanBuilder branch1 = MakeCte(catalog, ctx);
        branch1.Filter(eb::Eq(branch1.Ref("fname"), eb::Str("John")));
        branch1.Select({"customer_id"});
        PlanBuilder branch2 = MakeCte(catalog, ctx);
        branch2.Filter(eb::Eq(branch2.Ref("lname"), eb::Str("Smith")));
        branch2.Select({"customer_id"});
        return PlanBuilder::UnionAll(ctx, {branch1, branch2}).Build();
      }));

  PlanPtr baseline = Unwrap(engine.Optimize(&query, QueryOptions::Baseline()));
  PlanPtr fused = Unwrap(engine.Optimize(&query, QueryOptions::Fused()));

  std::printf("== baseline: %d scans of 'customers' ==\n%s\n",
              CountTableScans(baseline, "customers"),
              PlanToString(baseline).c_str());
  std::printf("== fused: %d scan, tag table has %d Values op ==\n%s\n",
              CountTableScans(fused, "customers"),
              CountOps(fused, OpKind::kValues), PlanToString(fused).c_str());

  QueryResult rb =
      Unwrap(engine.ExecuteOptimized(baseline, QueryOptions::Baseline()));
  QueryResult rf = Unwrap(engine.ExecuteOptimized(fused, QueryOptions::Fused()));
  std::printf("results match: %s (%lld rows)\n",
              ResultsEquivalent(rb, rf) ? "yes" : "NO",
              static_cast<long long>(rb.num_rows()));
  std::printf("bytes scanned: %lld -> %lld\n",
              static_cast<long long>(rb.metrics().bytes_scanned),
              static_cast<long long>(rf.metrics().bytes_scanned));

  // Contradiction shortcut: disjoint branch predicates need no tag table.
  PreparedQuery disjoint = Unwrap(
      engine.Prepare([](const Catalog& catalog,
                        PlanContext* ctx) -> Result<PlanPtr> {
        PlanBuilder b1 = MakeCte(catalog, ctx);
        b1.Filter(eb::Lt(b1.Ref("spend"), eb::Dbl(300.0)));
        b1.Select({"customer_id"});
        PlanBuilder b2 = MakeCte(catalog, ctx);
        b2.Filter(eb::Gt(b2.Ref("spend"), eb::Dbl(700.0)));
        b2.Select({"customer_id"});
        return PlanBuilder::UnionAll(ctx, {b1, b2}).Build();
      }));
  PlanPtr fused2 = Unwrap(engine.Optimize(&disjoint, QueryOptions::Fused()));
  std::printf(
      "\n== disjoint branches (contradiction shortcut): %d Values ops ==\n%s\n",
      CountOps(fused2, OpKind::kValues), PlanToString(fused2).c_str());
  QueryResult r2b = Unwrap(engine.ExecuteOptimized(
      Unwrap(engine.Optimize(&disjoint, QueryOptions::Baseline())),
      QueryOptions::Baseline()));
  QueryResult r2f =
      Unwrap(engine.ExecuteOptimized(fused2, QueryOptions::Fused()));
  std::printf("results match: %s\n", ResultsEquivalent(r2b, r2f) ? "yes" : "NO");
  return 0;
}
