// Section V.C walkthrough (Q23): two branches that compute the same
// expensive insights (frequent items, best customers) over *different* fact
// tables. UnionAllOnJoin (IV.C) repeatedly pushes the UNION ALL below the
// joins, so each common subexpression — and date_dim — is evaluated once,
// and peak hash-table memory drops since only one instance of each CTE's
// state is live.
#include <cstdio>
#include <cstdlib>

#include "fusiondb.h"

using namespace fusiondb;  // NOLINT: example code

namespace {

void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

int ScanCount(const PlanPtr& plan, const Catalog& catalog) {
  int total = 0;
  for (const std::string& t : catalog.TableNames()) {
    total += CountTableScans(plan, t);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  Engine engine;
  tpcds::TpcdsOptions options;
  options.scale = scale;
  DieIf(tpcds::BuildTpcdsCatalog(options, engine.mutable_catalog()));
  const Catalog& catalog = engine.catalog();

  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName("q23"));
  PreparedQuery prepared = Unwrap(engine.Prepare(query.build));

  PlanPtr baseline =
      Unwrap(engine.Optimize(&prepared, QueryOptions::Baseline()));
  PlanPtr fused = Unwrap(engine.Optimize(&prepared, QueryOptions::Fused()));

  std::printf("total table scans: baseline %d, fused %d\n",
              ScanCount(baseline, catalog), ScanCount(fused, catalog));
  std::printf("store_sales scans (the CTE source): baseline %d, fused %d\n",
              CountTableScans(baseline, "store_sales"),
              CountTableScans(fused, "store_sales"));
  std::printf("date_dim scans: baseline %d, fused %d\n\n",
              CountTableScans(baseline, "date_dim"),
              CountTableScans(fused, "date_dim"));

  QueryResult rb =
      Unwrap(engine.ExecuteOptimized(baseline, QueryOptions::Baseline()));
  QueryResult rf =
      Unwrap(engine.ExecuteOptimized(fused, QueryOptions::Fused()));
  std::printf("results match: %s\n", ResultsEquivalent(rb, rf) ? "yes" : "NO");
  std::printf("latency: %.2f ms -> %.2f ms (%.2fx)\n", rb.wall_ms(),
              rf.wall_ms(), rb.wall_ms() / rf.wall_ms());
  std::printf("bytes scanned: %lld -> %lld\n",
              static_cast<long long>(rb.metrics().bytes_scanned),
              static_cast<long long>(rf.metrics().bytes_scanned));
  std::printf("peak hash memory: %lld -> %lld (%.0f%% less working state)\n",
              static_cast<long long>(rb.metrics().peak_hash_bytes),
              static_cast<long long>(rf.metrics().peak_hash_bytes),
              100.0 * (1.0 - static_cast<double>(rf.metrics().peak_hash_bytes) /
                                 static_cast<double>(rb.metrics().peak_hash_bytes)));
  std::printf(
      "\n(paper, Section V.C: ~2x latency, ~half the bytes; the halved "
      "intermediate state also avoided spilling at larger scales)\n");
  return 0;
}
