// Section V.B walkthrough (Q09 shape): many scalar subqueries over the same
// fact table with different predicates collapse — via the JoinOnKeys rule's
// scalar specialization — into a single aggregation whose aggregates carry
// masks, reading store_sales once instead of fifteen times.
#include <cstdio>
#include <cstdlib>

#include "fusiondb.h"

using namespace fusiondb;  // NOLINT: example code

namespace {

void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  Catalog catalog;
  tpcds::TpcdsOptions options;
  options.scale = scale;
  DieIf(tpcds::BuildTpcdsCatalog(options, &catalog));

  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName("q09"));
  PlanContext ctx;
  PlanPtr plan = Unwrap(query.build(catalog, &ctx));

  PlanPtr baseline =
      Unwrap(Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx));
  PlanPtr fused =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));

  std::printf("store_sales scans: baseline %d, fused %d\n",
              CountTableScans(baseline, "store_sales"),
              CountTableScans(fused, "store_sales"));
  std::printf("aggregate ops:     baseline %d, fused %d\n\n",
              CountOps(baseline, OpKind::kAggregate),
              CountOps(fused, OpKind::kAggregate));

  QueryResult rb = Unwrap(ExecutePlan(baseline));
  QueryResult rf = Unwrap(ExecutePlan(fused));
  std::printf("results match: %s\n", ResultsEquivalent(rb, rf) ? "yes" : "NO");
  std::printf("latency: %.2f ms -> %.2f ms (%.2fx)\n", rb.wall_ms(),
              rf.wall_ms(), rb.wall_ms() / rf.wall_ms());
  std::printf("bytes scanned: %lld -> %lld (%.0f%% reduction)\n",
              static_cast<long long>(rb.metrics().bytes_scanned),
              static_cast<long long>(rf.metrics().bytes_scanned),
              100.0 * (1.0 - static_cast<double>(rf.metrics().bytes_scanned) /
                                 static_cast<double>(rb.metrics().bytes_scanned)));
  std::printf("\nbuckets (fused):\n%s", rf.ToString(5).c_str());
  std::printf(
      "\n(paper, Section V.B: 3x-6x latency and 60%%-85%% fewer bytes for "
      "this pattern)\n");
  return 0;
}
