// Section V.B walkthrough (Q09 shape): many scalar subqueries over the same
// fact table with different predicates collapse — via the JoinOnKeys rule's
// scalar specialization — into a single aggregation whose aggregates carry
// masks, reading store_sales once instead of fifteen times.
#include <cstdio>
#include <cstdlib>

#include "fusiondb.h"

using namespace fusiondb;  // NOLINT: example code

namespace {

void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  Engine engine;
  tpcds::TpcdsOptions options;
  options.scale = scale;
  DieIf(tpcds::BuildTpcdsCatalog(options, engine.mutable_catalog()));

  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName("q09"));
  PreparedQuery prepared = Unwrap(engine.Prepare(query.build));

  PlanPtr baseline =
      Unwrap(engine.Optimize(&prepared, QueryOptions::Baseline()));
  PlanPtr fused = Unwrap(engine.Optimize(&prepared, QueryOptions::Fused()));

  std::printf("store_sales scans: baseline %d, fused %d\n",
              CountTableScans(baseline, "store_sales"),
              CountTableScans(fused, "store_sales"));
  std::printf("aggregate ops:     baseline %d, fused %d\n\n",
              CountOps(baseline, OpKind::kAggregate),
              CountOps(fused, OpKind::kAggregate));

  QueryResult rb =
      Unwrap(engine.ExecuteOptimized(baseline, QueryOptions::Baseline()));
  QueryResult rf =
      Unwrap(engine.ExecuteOptimized(fused, QueryOptions::Fused()));
  std::printf("results match: %s\n", ResultsEquivalent(rb, rf) ? "yes" : "NO");
  std::printf("latency: %.2f ms -> %.2f ms (%.2fx)\n", rb.wall_ms(),
              rf.wall_ms(), rb.wall_ms() / rf.wall_ms());
  std::printf("bytes scanned: %lld -> %lld (%.0f%% reduction)\n",
              static_cast<long long>(rb.metrics().bytes_scanned),
              static_cast<long long>(rf.metrics().bytes_scanned),
              100.0 * (1.0 - static_cast<double>(rf.metrics().bytes_scanned) /
                                 static_cast<double>(rb.metrics().bytes_scanned)));
  std::printf("\nbuckets (fused):\n%s", rf.ToString(5).c_str());
  std::printf(
      "\n(paper, Section V.B: 3x-6x latency and 60%%-85%% fewer bytes for "
      "this pattern)\n");
  return 0;
}
