// run_query: execute one TPC-DS query by name under both optimizer
// configurations, printing plans, results and metrics.
//
// Usage: run_query [query=q65] [scale=0.01] [flags]
//   --plans             print baseline and fused plans before executing
//   --explain           print the plans and exit without executing
//   --explain-analyze   print plans annotated with per-operator runtime
//                       stats after executing (EXPLAIN ANALYZE)
//   --trace-optimizer   print the optimizer/fusion trace for the fused
//                       configuration (rules attempted/fired, fusion steps)
//   --profile=PATH      write a JSON QueryProfile of the fused execution
//   --threads=N         morsel-driven intra-query parallelism (0 = all
//                       cores; default 1 = single-threaded)
// Unknown --flags are rejected with exit code 2.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fusiondb.h"

using namespace fusiondb;  // NOLINT: example code

namespace {

void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "q65";
  double scale = 0.01;
  bool show_plans = false;
  bool explain_only = false;
  bool explain_analyze = false;
  bool trace_optimizer = false;
  std::string profile_path;
  size_t threads = 1;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plans") == 0) {
      show_plans = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain_only = true;
    } else if (std::strcmp(argv[i], "--explain-analyze") == 0) {
      explain_analyze = true;
    } else if (std::strcmp(argv[i], "--trace-optimizer") == 0) {
      trace_optimizer = true;
    } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      profile_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "run_query: unknown flag '%s'\n", argv[i]);
      std::fprintf(stderr,
                   "usage: run_query [query] [scale] [--plans] [--explain] "
                   "[--explain-analyze] [--trace-optimizer] [--profile=PATH] "
                   "[--threads=N]\n");
      return 2;
    } else if (++positional == 1) {
      name = argv[i];
    } else if (positional == 2) {
      scale = std::atof(argv[i]);
    }
  }

  std::fprintf(stderr, "building TPC-DS catalog at scale %.3f...\n", scale);
  Catalog catalog;
  tpcds::TpcdsOptions options;
  options.scale = scale;
  DieIf(tpcds::BuildTpcdsCatalog(options, &catalog));

  tpcds::TpcdsQuery query = Unwrap(tpcds::QueryByName(name));
  PlanContext ctx;
  PlanPtr plan = Unwrap(query.build(catalog, &ctx));

  std::fprintf(stderr, "optimizing (baseline)...\n");
  PlanPtr baseline =
      Unwrap(Optimizer(OptimizerOptions::Baseline()).Optimize(plan, &ctx));
  std::fprintf(stderr, "optimizing (fused)...\n");
  // The trace rides on the PlanContext only around the fused optimization,
  // so it records exactly the rewrite sequence that produced `fused`.
  OptimizerTrace trace;
  bool want_trace = trace_optimizer || !profile_path.empty();
  if (want_trace) ctx.set_trace(&trace);
  PlanPtr fused =
      Unwrap(Optimizer(OptimizerOptions::Fused()).Optimize(plan, &ctx));
  if (want_trace) ctx.set_trace(nullptr);

  if (show_plans || explain_only) {
    std::printf("== baseline plan ==\n%s\n", PlanToString(baseline).c_str());
    std::printf("== fused plan ==\n%s\n", PlanToString(fused).c_str());
  }
  if (trace_optimizer) {
    std::printf("== optimizer trace (fused) ==\n%s\n",
                trace.ToString().c_str());
  }
  if (explain_only) return 0;

  std::fprintf(stderr, "executing (baseline, threads=%zu)...\n", threads);
  QueryResult base_result = Unwrap(ExecutePlan(baseline, 4096, threads));
  std::fprintf(stderr, "executing (fused, threads=%zu)...\n", threads);
  QueryResult fused_result = Unwrap(ExecutePlan(fused, 4096, threads));

  if (explain_analyze) {
    std::printf("== baseline (explain analyze) ==\n%s\n",
                ExplainAnalyze(baseline, base_result).c_str());
    std::printf("== fused (explain analyze) ==\n%s\n",
                ExplainAnalyze(fused, fused_result).c_str());
  }
  if (!profile_path.empty()) {
    QueryProfile profile =
        MakeQueryProfile(name, "fused", fused, fused_result, &trace);
    DieIf(WriteProfileJson(profile, profile_path));
    std::fprintf(stderr, "profile written to %s\n", profile_path.c_str());
  }

  std::printf("query %s (%s)\n", name.c_str(),
              query.fusion_applicable ? "fusion-applicable" : "filler");
  std::printf("results match: %s\n",
              ResultsEquivalent(base_result, fused_result) ? "yes" : "NO");
  std::printf("%-22s %14s %14s\n", "", "baseline", "fused");
  std::printf("%-22s %14.2f %14.2f\n", "latency (ms)", base_result.wall_ms(),
              fused_result.wall_ms());
  std::printf("%-22s %14lld %14lld\n", "bytes scanned",
              static_cast<long long>(base_result.metrics().bytes_scanned),
              static_cast<long long>(fused_result.metrics().bytes_scanned));
  std::printf("%-22s %14lld %14lld\n", "rows scanned",
              static_cast<long long>(base_result.metrics().rows_scanned),
              static_cast<long long>(fused_result.metrics().rows_scanned));
  std::printf("%-22s %14lld %14lld\n", "peak hash bytes",
              static_cast<long long>(base_result.metrics().peak_hash_bytes),
              static_cast<long long>(fused_result.metrics().peak_hash_bytes));
  std::printf("%-22s %14lld %14lld\n", "result rows",
              static_cast<long long>(base_result.num_rows()),
              static_cast<long long>(fused_result.num_rows()));
  std::printf("\nfirst rows:\n%s", fused_result.ToString(5).c_str());
  return 0;
}
