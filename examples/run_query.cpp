// run_query: execute one query — a TPC-DS query by name, or arbitrary SQL —
// under a selected optimizer configuration, with the un-fused baseline run
// alongside as the correctness/metrics reference. Everything goes through
// the fusiondb::Engine facade (DESIGN.md §14).
//
// Usage: run_query [query=q65] [scale=0.01] [flags]
//   --sql=TEXT          execute this SQL statement instead of a named
//                       TPC-DS query. Malformed SQL prints a caret-position
//                       diagnostic snippet and exits 2.
//   --repl              interactive mode: read one SQL statement per line
//                       from stdin and execute each under --mode. Errors
//                       print their caret snippet and the loop continues.
//   --mode=M            optimizer configuration for the measured run:
//                         baseline — all Section IV fusion rules off
//                         fused    — fusion rules on (default)
//                         spooling — fusion off, every duplicate spooled
//                         adaptive — fusion on, cost-model fuse-vs-spool;
//                                    runs twice, feeding the first run's
//                                    measured cardinalities back into the
//                                    second optimization
//   --plans             print baseline and optimized plans before executing
//   --explain           print the plans and exit without executing
//   --explain-analyze   print plans annotated with per-operator runtime
//                       stats after executing (EXPLAIN ANALYZE)
//   --trace-optimizer   print the optimizer/fusion trace for the selected
//                       mode (rules attempted/fired, fusion steps, and in
//                       adaptive mode the cost decisions of both passes)
//   --profile=PATH      write a JSON QueryProfile of the measured execution
//   --threads=N         morsel-driven intra-query parallelism (0 = all
//                       cores; default 1 = single-threaded)
//   --no-compile-pipelines
//                       disable bind-time pipeline compilation; every chain
//                       runs on the interpreted pull operators (the
//                       differential oracle — DESIGN.md §13)
//   --server            cross-query fusion server mode: N concurrent
//                       clients submit the same query; the session layer
//                       batches them over the admission window and shares
//                       one scan across the group (DESIGN.md §12)
//   --clients=N         number of concurrent client threads (default 4;
//                       server mode only)
//   --window-ms=M       admission window in milliseconds (default 50 so
//                       all clients land in one batch; server mode only)
//   --metrics=PATH      record into a service MetricsRegistry and write the
//                       final snapshot JSON to PATH on exit. In server mode
//                       the written counters are cross-checked against the
//                       summed per-session attribution blocks; a mismatch
//                       exits 1.
//   --query-log=PATH    append one JSONL event per completed session to
//                       PATH (server mode only)
//   --slow-ms=N         sessions slower than N ms (queue + execute) are
//                       marked slow and auto-capture their full profile
//                       next to the query log (requires --query-log)
// Unknown --flags, unknown --mode values and malformed --sql are rejected
// with exit code 2. Telemetry write failures (--profile, --metrics,
// --query-log open) exit 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "fusiondb.h"

using namespace fusiondb;  // NOLINT: example code

namespace {

void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieIf(result.status());
  return std::move(result).ValueOrDie();
}

void Usage() {
  std::fprintf(stderr,
               "usage: run_query [query] [scale] [--sql=TEXT] [--repl] "
               "[--mode={baseline,fused,spooling,adaptive}] [--plans] "
               "[--explain] [--explain-analyze] [--trace-optimizer] "
               "[--profile=PATH] [--threads=N] [--no-compile-pipelines] "
               "[--server] [--clients=N] [--window-ms=M] "
               "[--metrics=PATH] [--query-log=PATH] [--slow-ms=N]\n");
}

/// Prepares SQL through the engine; on failure prints the caret-position
/// diagnostic snippet ("sql:LINE:COL: message" plus the offending line).
Result<PreparedQuery> PrepareSqlVerbose(Engine* engine,
                                        const std::string& sql_text) {
  sql::ParseResult parse;
  auto prepared = engine->Prepare(sql_text, &parse);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s", parse.FormatErrors().c_str());
  }
  return prepared;
}

/// One REPL turn: parse, bind, execute, render. Errors are reported with
/// their caret snippet; the loop continues either way.
void ReplExecute(Engine* engine, const std::string& line,
                 const QueryOptions& options) {
  auto prepared = PrepareSqlVerbose(engine, line);
  if (!prepared.ok()) return;
  PreparedQuery query = std::move(prepared).ValueOrDie();
  auto result = engine->Execute(&query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->ToString().c_str());
  std::printf("(%lld rows, %.2f ms, %lld bytes scanned)\n",
              static_cast<long long>(result->num_rows()), result->wall_ms(),
              static_cast<long long>(result->metrics().bytes_scanned));
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "q65";
  double scale = 0.01;
  std::string mode = "fused";
  std::string sql_text;
  bool repl = false;
  bool show_plans = false;
  bool explain_only = false;
  bool explain_analyze = false;
  bool trace_optimizer = false;
  std::string profile_path;
  size_t threads = 1;
  bool compile_pipelines = true;
  bool server = false;
  int clients = 4;
  int64_t window_ms = 50;
  std::string metrics_path;
  std::string query_log_path;
  int64_t slow_ms = 0;
  std::vector<std::string> positionals;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plans") == 0) {
      show_plans = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain_only = true;
    } else if (std::strcmp(argv[i], "--explain-analyze") == 0) {
      explain_analyze = true;
    } else if (std::strcmp(argv[i], "--trace-optimizer") == 0) {
      trace_optimizer = true;
    } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      mode = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--sql=", 6) == 0) {
      sql_text = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--sql") == 0 && i + 1 < argc) {
      sql_text = argv[++i];
    } else if (std::strcmp(argv[i], "--repl") == 0) {
      repl = true;
    } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      profile_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--no-compile-pipelines") == 0) {
      compile_pipelines = false;
    } else if (std::strcmp(argv[i], "--server") == 0) {
      server = true;
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--window-ms=", 12) == 0) {
      window_ms = std::atoll(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--query-log=", 12) == 0) {
      query_log_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--slow-ms=", 10) == 0) {
      slow_ms = std::atoll(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "run_query: unknown flag '%s'\n", argv[i]);
      Usage();
      return 2;
    } else {
      positionals.push_back(argv[i]);
    }
  }
  // With --sql/--repl there is no query name to name: the first positional
  // is the scale. Otherwise: [query] [scale].
  if (!sql_text.empty() || repl) {
    if (!positionals.empty()) scale = std::atof(positionals[0].c_str());
  } else {
    if (!positionals.empty()) name = positionals[0];
    if (positionals.size() >= 2) scale = std::atof(positionals[1].c_str());
  }
  auto mode_options = QueryOptions::FromModeName(mode);
  if (!mode_options.ok()) {
    std::fprintf(stderr, "run_query: unknown mode '%s'\n", mode.c_str());
    Usage();
    return 2;
  }
  if (!query_log_path.empty() && !server) {
    std::fprintf(stderr, "run_query: --query-log requires --server\n");
    return 2;
  }
  if (slow_ms > 0 && query_log_path.empty()) {
    std::fprintf(stderr, "run_query: --slow-ms requires --query-log\n");
    return 2;
  }
  if (repl && (server || !sql_text.empty())) {
    std::fprintf(stderr, "run_query: --repl excludes --server and --sql\n");
    return 2;
  }

  std::fprintf(stderr, "building TPC-DS catalog at scale %.3f...\n", scale);
  Engine engine;
  tpcds::TpcdsOptions catalog_options;
  catalog_options.scale = scale;
  DieIf(tpcds::BuildTpcdsCatalog(catalog_options, engine.mutable_catalog()));

  if (repl) {
    QueryOptions repl_options = *mode_options;
    repl_options.exec.parallelism = threads;
    repl_options.exec.compile_pipelines = compile_pipelines;
    std::fprintf(stderr, "fusiondb repl (%s mode) — one SQL statement per "
                         "line; 'exit' to quit\n", mode.c_str());
    std::string line;
    while (true) {
      std::fputs("fusiondb> ", stderr);
      std::fflush(stderr);
      if (!std::getline(std::cin, line)) break;
      if (line.empty()) continue;
      if (line == "exit" || line == "quit" || line == "\\q") break;
      ReplExecute(&engine, line, repl_options);
    }
    return 0;
  }

  // Resolve what to run: arbitrary SQL (caret diagnostics, exit 2 on bad
  // input) or a named TPC-DS plan constructor — both become the same
  // PreparedQuery.
  tpcds::TpcdsQuery query;
  bool from_sql = !sql_text.empty();
  if (from_sql) {
    name = "sql";
  } else {
    query = Unwrap(tpcds::QueryByName(name));
  }
  auto prepare = [&]() -> Result<PreparedQuery> {
    return from_sql ? PrepareSqlVerbose(&engine, sql_text)
                    : engine.Prepare(query.build);
  };
  auto first_prepared = prepare();
  if (!first_prepared.ok()) {
    if (from_sql) return 2;  // diagnostics already printed with carets
    DieIf(first_prepared.status());
  }
  PreparedQuery prepared = std::move(first_prepared).ValueOrDie();

  if (server) {
    if (clients < 1) {
      std::fprintf(stderr, "run_query: --clients must be >= 1\n");
      return 2;
    }
    QueryOptions options = *mode_options;
    options.exec.parallelism = threads;
    options.exec.compile_pipelines = compile_pipelines;
    if (mode == "adaptive") {
      // Server sessions optimize once per submission; run single-pass
      // against the engine's (initially empty) feedback store.
      options.optimizer.feedback = engine.feedback();
    }

    // Isolated reference: one client, optimized and executed on its own.
    PlanPtr ref_optimized = Unwrap(engine.Optimize(&prepared, options));
    std::fprintf(stderr, "executing isolated reference (%s)...\n",
                 mode.c_str());
    QueryResult isolated =
        Unwrap(engine.ExecuteOptimized(ref_optimized, options));

    // Compiled-vs-interpreted self-check: the same plan executed with
    // pipeline compilation toggled must read identical bytes and render
    // identical rows (the interpreted pull path is the oracle). Any drift
    // is an executor bug, so it fails the run like a metrics mismatch.
    QueryOptions flipped = options;
    flipped.exec.compile_pipelines = !compile_pipelines;
    QueryResult cross_check =
        Unwrap(engine.ExecuteOptimized(ref_optimized, flipped));
    bool pipelines_reconciled = true;
    if (!ResultsEquivalent(isolated, cross_check) ||
        isolated.metrics().bytes_scanned !=
            cross_check.metrics().bytes_scanned) {
      std::fprintf(stderr,
                   "run_query: compiled-vs-interpreted self-check FAILED: "
                   "bytes %lld vs %lld\n",
                   static_cast<long long>(isolated.metrics().bytes_scanned),
                   static_cast<long long>(cross_check.metrics().bytes_scanned));
      pipelines_reconciled = false;
    }

    ServerOptions server_options;
    server_options.window.window_ms = window_ms;
    server_options.optimizer = options.optimizer;
    server_options.exec.parallelism = threads;
    server_options.exec.compile_pipelines = compile_pipelines;
    OptimizerTrace server_trace;
    bool want_trace = trace_optimizer || !profile_path.empty();
    if (want_trace) server_options.trace = &server_trace;
    MetricsRegistry registry;
    if (!metrics_path.empty()) server_options.metrics = &registry;
    std::unique_ptr<QueryLog> query_log;
    if (!query_log_path.empty()) {
      query_log = Unwrap(QueryLog::Open(query_log_path, slow_ms));
      server_options.query_log = query_log.get();
    }
    server_options.mode_label = mode;
    SessionManager& manager = *Unwrap(engine.StartServer(server_options));

    // Each client prepares its own query (its own PlanContext — the server
    // renumbers the colliding column ids into one shared space) and submits
    // it through the engine.
    std::fprintf(stderr,
                 "server: %d clients, admission window %lld ms, mode %s\n",
                 clients, static_cast<long long>(window_ms), mode.c_str());
    std::vector<SessionPtr> sessions(static_cast<size_t>(clients));
    std::vector<std::thread> client_threads;
    client_threads.reserve(static_cast<size_t>(clients));
    for (int i = 0; i < clients; ++i) {
      client_threads.emplace_back([&, i] {
        PreparedQuery client_query = Unwrap(prepare());
        sessions[static_cast<size_t>(i)] =
            Unwrap(engine.Submit(client_query));
        sessions[static_cast<size_t>(i)]->Wait();
      });
    }
    for (std::thread& t : client_threads) t.join();
    engine.StopServer();

    int matched = 0;
    int shared = 0;
    for (const SessionPtr& session : sessions) {
      DieIf(session->Wait().status());
      if (ResultsEquivalent(*session->Wait(), isolated)) ++matched;
      if (session->shared()) ++shared;
    }

    if (trace_optimizer) {
      std::printf("== server optimizer trace (%s) ==\n%s\n", mode.c_str(),
                  server_trace.ToString().c_str());
    }
    if (!profile_path.empty()) {
      QueryProfile profile =
          MakeSessionProfile(*sessions.front(), name, "server-" + mode);
      profile.trace = want_trace ? &server_trace : nullptr;
      DieIf(WriteProfileJson(profile, profile_path));
      std::fprintf(stderr, "profile written to %s\n", profile_path.c_str());
    }

    // Reconcile the service counters against the per-session attribution
    // blocks: the registry's session counts and attributed bytes must equal
    // the sums over what each session was told, and the physical bytes
    // counter must equal the manager's own total. Any drift is a telemetry
    // bug, so it fails the run.
    bool reconciled = true;
    if (!metrics_path.empty()) {
      MetricsSnapshot snap = registry.Snapshot();
      int64_t attributed = 0;
      for (const SessionPtr& session : sessions) {
        attributed += session->sharing().attributed_bytes_scanned;
      }
      int64_t snap_sessions =
          snap.Counter("fusiondb_server_shared_sessions_total") +
          snap.Counter("fusiondb_server_solo_sessions_total");
      struct Check {
        const char* what;
        int64_t metric;
        int64_t expected;
      } checks[] = {
          {"attributed bytes",
           snap.Counter("fusiondb_server_attributed_bytes_total"), attributed},
          {"physical bytes", snap.Counter("fusiondb_server_bytes_scanned_total"),
           manager.total_bytes_scanned()},
          {"sessions", snap_sessions, static_cast<int64_t>(clients)},
      };
      for (const Check& c : checks) {
        if (c.metric != c.expected) {
          std::fprintf(stderr,
                       "run_query: metrics reconciliation FAILED: %s counter "
                       "%lld != session-sum %lld\n",
                       c.what, static_cast<long long>(c.metric),
                       static_cast<long long>(c.expected));
          reconciled = false;
        }
      }
      DieIf(WriteMetricsJson(snap, metrics_path));
      std::fprintf(stderr, "metrics snapshot written to %s\n",
                   metrics_path.c_str());
    }
    if (query_log != nullptr) {
      std::fprintf(stderr, "query log: %lld events appended to %s\n",
                   static_cast<long long>(query_log->events()),
                   query_log->path().c_str());
    }

    std::printf("query %s, server mode (%s), %d clients\n", name.c_str(),
                mode.c_str(), clients);
    std::printf("results match isolated: %d/%d%s\n", matched, clients,
                matched == clients ? "" : "  <-- MISMATCH");
    std::printf("sessions served shared: %d/%d\n", shared, clients);
    std::printf("%-28s %14lld\n", "bytes scanned (server)",
                static_cast<long long>(manager.total_bytes_scanned()));
    std::printf("%-28s %14lld\n", "bytes scanned (isolated est)",
                static_cast<long long>(manager.total_isolated_bytes_scanned()));
    std::printf("%-28s %14lld\n", "bytes scanned (1 client)",
                static_cast<long long>(isolated.metrics().bytes_scanned));
    std::printf("\nfirst rows:\n%s",
                (*sessions.front()->result()).ToString(5).c_str());
    return matched == clients && reconciled && pipelines_reconciled ? 0 : 1;
  }

  std::fprintf(stderr, "optimizing (baseline)...\n");
  PlanPtr baseline =
      Unwrap(engine.Optimize(&prepared, QueryOptions::Baseline()));

  // The trace rides on the PlanContext only around the measured mode's
  // optimization, so it records exactly the rewrites that produced the
  // measured plan. Adaptive mode optimizes twice — once against catalog
  // priors, once against measured feedback — with a trace per pass.
  OptimizerTrace trace;        // the measured plan's trace (adaptive: pass 2)
  OptimizerTrace first_trace;  // adaptive pass 1 (priors only)
  bool want_trace = trace_optimizer || !profile_path.empty();
  QueryOptions exec_knobs = *mode_options;
  exec_knobs.exec.parallelism = threads;
  exec_knobs.exec.compile_pipelines = compile_pipelines;
  PlanPtr optimized;
  if (mode == "adaptive") {
    std::fprintf(stderr, "optimizing (adaptive, catalog priors)...\n");
    QueryOptions first_pass = exec_knobs;
    first_pass.optimizer.feedback = engine.feedback();
    if (want_trace) first_pass.trace = &first_trace;
    PlanPtr first = Unwrap(engine.Optimize(&prepared, first_pass));
    std::fprintf(stderr, "executing feedback run (threads=%zu)...\n", threads);
    QueryResult first_result =
        Unwrap(engine.ExecuteOptimized(first, first_pass));
    size_t harvested =
        engine.feedback()->Harvest(first, first_result.operator_stats());
    std::fprintf(stderr, "harvested %zu measured cardinalities\n", harvested);
    std::fprintf(stderr, "optimizing (adaptive, measured feedback)...\n");
    QueryOptions second_pass = exec_knobs;
    second_pass.optimizer.feedback = engine.feedback();
    if (want_trace) second_pass.trace = &trace;
    optimized = Unwrap(engine.Optimize(&prepared, second_pass));
  } else {
    std::fprintf(stderr, "optimizing (%s)...\n", mode.c_str());
    QueryOptions pass = exec_knobs;
    if (want_trace) pass.trace = &trace;
    optimized = Unwrap(engine.Optimize(&prepared, pass));
  }

  if (show_plans || explain_only) {
    // Each node is annotated with its derived semantic properties (row
    // bounds, candidate keys, column domains — src/analysis/plan_props.h).
    PropertyDerivation props;
    props.Derive(baseline);
    props.Derive(optimized);
    PlanAnnotator annotate = [&props](const LogicalOp& op, int) {
      const PlanProps* p = props.Lookup(&op);
      return p == nullptr ? std::string() : "  {" + PropsToString(*p) + "}";
    };
    std::printf("== baseline plan ==\n%s\n",
                PlanToString(baseline, annotate).c_str());
    std::printf("== %s plan ==\n%s\n", mode.c_str(),
                PlanToString(optimized, annotate).c_str());
  }
  if (trace_optimizer) {
    if (mode == "adaptive") {
      std::printf("== optimizer trace (adaptive, catalog priors) ==\n%s\n",
                  first_trace.ToString().c_str());
      std::printf("== optimizer trace (adaptive, measured feedback) ==\n%s\n",
                  trace.ToString().c_str());
    } else {
      std::printf("== optimizer trace (%s) ==\n%s\n", mode.c_str(),
                  trace.ToString().c_str());
    }
  }
  if (explain_only) return 0;

  std::fprintf(stderr, "executing (baseline, threads=%zu)...\n", threads);
  QueryResult base_result =
      Unwrap(engine.ExecuteOptimized(baseline, exec_knobs));
  std::fprintf(stderr, "executing (%s, threads=%zu)...\n", mode.c_str(),
               threads);
  // The measured run records into the service registry when --metrics is
  // given (the baseline reference run does not), so the snapshot describes
  // exactly the measured execution.
  MetricsRegistry registry;
  QueryOptions measured = exec_knobs;
  measured.exec.metrics = metrics_path.empty() ? nullptr : &registry;
  QueryResult mode_result =
      Unwrap(engine.ExecuteOptimized(optimized, measured));

  if (explain_analyze) {
    std::printf("== baseline (explain analyze) ==\n%s\n",
                ExplainAnalyze(baseline, base_result).c_str());
    std::printf("== %s (explain analyze) ==\n%s\n", mode.c_str(),
                ExplainAnalyze(optimized, mode_result).c_str());
  }
  if (!profile_path.empty()) {
    QueryProfile profile =
        MakeQueryProfile(name, mode, optimized, mode_result, &trace);
    DieIf(WriteProfileJson(profile, profile_path));
    std::fprintf(stderr, "profile written to %s\n", profile_path.c_str());
  }
  if (!metrics_path.empty()) {
    DieIf(WriteMetricsJson(registry.Snapshot(), metrics_path));
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 metrics_path.c_str());
  }

  std::printf("query %s (%s)\n", name.c_str(),
              from_sql ? "sql"
              : query.fusion_applicable ? "fusion-applicable"
                                        : "filler");
  std::printf("results match: %s\n",
              ResultsEquivalent(base_result, mode_result) ? "yes" : "NO");
  std::printf("%-22s %14s %14s\n", "", "baseline", mode.c_str());
  std::printf("%-22s %14.2f %14.2f\n", "latency (ms)", base_result.wall_ms(),
              mode_result.wall_ms());
  std::printf("%-22s %14lld %14lld\n", "bytes scanned",
              static_cast<long long>(base_result.metrics().bytes_scanned),
              static_cast<long long>(mode_result.metrics().bytes_scanned));
  std::printf("%-22s %14lld %14lld\n", "rows scanned",
              static_cast<long long>(base_result.metrics().rows_scanned),
              static_cast<long long>(mode_result.metrics().rows_scanned));
  std::printf("%-22s %14lld %14lld\n", "peak hash bytes",
              static_cast<long long>(base_result.metrics().peak_hash_bytes),
              static_cast<long long>(mode_result.metrics().peak_hash_bytes));
  std::printf("%-22s %14lld %14lld\n", "spool bytes written",
              static_cast<long long>(base_result.metrics().spool_bytes_written),
              static_cast<long long>(mode_result.metrics().spool_bytes_written));
  std::printf("%-22s %14lld %14lld\n", "result rows",
              static_cast<long long>(base_result.num_rows()),
              static_cast<long long>(mode_result.num_rows()));
  std::printf("\nfirst rows:\n%s", mode_result.ToString(5).c_str());
  return 0;
}
