file(REMOVE_RECURSE
  "CMakeFiles/rules_fusion_test.dir/rules_fusion_test.cc.o"
  "CMakeFiles/rules_fusion_test.dir/rules_fusion_test.cc.o.d"
  "rules_fusion_test"
  "rules_fusion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
