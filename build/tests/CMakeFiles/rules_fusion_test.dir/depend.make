# Empty dependencies file for rules_fusion_test.
# This may be replaced when dependencies are built.
