# Empty compiler generated dependencies file for fusion_aggregate_test.
# This may be replaced when dependencies are built.
