file(REMOVE_RECURSE
  "CMakeFiles/fusion_aggregate_test.dir/fusion_aggregate_test.cc.o"
  "CMakeFiles/fusion_aggregate_test.dir/fusion_aggregate_test.cc.o.d"
  "fusion_aggregate_test"
  "fusion_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
