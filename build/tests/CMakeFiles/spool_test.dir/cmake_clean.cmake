file(REMOVE_RECURSE
  "CMakeFiles/spool_test.dir/spool_test.cc.o"
  "CMakeFiles/spool_test.dir/spool_test.cc.o.d"
  "spool_test"
  "spool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
