# Empty dependencies file for spool_test.
# This may be replaced when dependencies are built.
