# Empty dependencies file for rules_substrate_test.
# This may be replaced when dependencies are built.
