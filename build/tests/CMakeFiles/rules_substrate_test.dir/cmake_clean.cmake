file(REMOVE_RECURSE
  "CMakeFiles/rules_substrate_test.dir/rules_substrate_test.cc.o"
  "CMakeFiles/rules_substrate_test.dir/rules_substrate_test.cc.o.d"
  "rules_substrate_test"
  "rules_substrate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_substrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
