file(REMOVE_RECURSE
  "CMakeFiles/integration_equivalence_test.dir/integration_equivalence_test.cc.o"
  "CMakeFiles/integration_equivalence_test.dir/integration_equivalence_test.cc.o.d"
  "integration_equivalence_test"
  "integration_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
