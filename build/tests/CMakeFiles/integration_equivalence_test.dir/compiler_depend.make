# Empty compiler generated dependencies file for integration_equivalence_test.
# This may be replaced when dependencies are built.
