file(REMOVE_RECURSE
  "CMakeFiles/fusion_property_test.dir/fusion_property_test.cc.o"
  "CMakeFiles/fusion_property_test.dir/fusion_property_test.cc.o.d"
  "fusion_property_test"
  "fusion_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
