
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fusion_property_test.cc" "tests/CMakeFiles/fusion_property_test.dir/fusion_property_test.cc.o" "gcc" "tests/CMakeFiles/fusion_property_test.dir/fusion_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tpcds/CMakeFiles/fusiondb_tpcds.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/fusiondb_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/fusiondb_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/fusiondb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/fusiondb_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/fusiondb_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/fusiondb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/fusiondb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fusiondb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
