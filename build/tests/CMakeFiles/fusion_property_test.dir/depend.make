# Empty dependencies file for fusion_property_test.
# This may be replaced when dependencies are built.
