file(REMOVE_RECURSE
  "CMakeFiles/fusion_basic_test.dir/fusion_basic_test.cc.o"
  "CMakeFiles/fusion_basic_test.dir/fusion_basic_test.cc.o.d"
  "fusion_basic_test"
  "fusion_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
