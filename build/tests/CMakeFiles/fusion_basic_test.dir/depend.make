# Empty dependencies file for fusion_basic_test.
# This may be replaced when dependencies are built.
