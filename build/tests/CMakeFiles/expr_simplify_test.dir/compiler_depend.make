# Empty compiler generated dependencies file for expr_simplify_test.
# This may be replaced when dependencies are built.
