file(REMOVE_RECURSE
  "CMakeFiles/expr_simplify_test.dir/expr_simplify_test.cc.o"
  "CMakeFiles/expr_simplify_test.dir/expr_simplify_test.cc.o.d"
  "expr_simplify_test"
  "expr_simplify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
