file(REMOVE_RECURSE
  "CMakeFiles/spool_vs_fusion.dir/spool_vs_fusion.cc.o"
  "CMakeFiles/spool_vs_fusion.dir/spool_vs_fusion.cc.o.d"
  "spool_vs_fusion"
  "spool_vs_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spool_vs_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
