# Empty dependencies file for spool_vs_fusion.
# This may be replaced when dependencies are built.
