file(REMOVE_RECURSE
  "CMakeFiles/tpcds_overall.dir/tpcds_overall.cc.o"
  "CMakeFiles/tpcds_overall.dir/tpcds_overall.cc.o.d"
  "tpcds_overall"
  "tpcds_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
