# Empty dependencies file for tpcds_overall.
# This may be replaced when dependencies are built.
