file(REMOVE_RECURSE
  "CMakeFiles/exec_micro.dir/exec_micro.cc.o"
  "CMakeFiles/exec_micro.dir/exec_micro.cc.o.d"
  "exec_micro"
  "exec_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
