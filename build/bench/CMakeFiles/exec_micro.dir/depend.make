# Empty dependencies file for exec_micro.
# This may be replaced when dependencies are built.
