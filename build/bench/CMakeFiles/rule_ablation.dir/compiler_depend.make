# Empty compiler generated dependencies file for rule_ablation.
# This may be replaced when dependencies are built.
