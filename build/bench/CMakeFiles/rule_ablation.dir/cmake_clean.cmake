file(REMOVE_RECURSE
  "CMakeFiles/rule_ablation.dir/rule_ablation.cc.o"
  "CMakeFiles/rule_ablation.dir/rule_ablation.cc.o.d"
  "rule_ablation"
  "rule_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
