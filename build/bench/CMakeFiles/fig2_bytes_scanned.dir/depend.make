# Empty dependencies file for fig2_bytes_scanned.
# This may be replaced when dependencies are built.
