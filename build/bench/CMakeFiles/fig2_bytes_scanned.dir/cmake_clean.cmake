file(REMOVE_RECURSE
  "CMakeFiles/fig2_bytes_scanned.dir/fig2_bytes_scanned.cc.o"
  "CMakeFiles/fig2_bytes_scanned.dir/fig2_bytes_scanned.cc.o.d"
  "fig2_bytes_scanned"
  "fig2_bytes_scanned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bytes_scanned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
