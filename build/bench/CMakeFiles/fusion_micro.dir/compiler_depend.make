# Empty compiler generated dependencies file for fusion_micro.
# This may be replaced when dependencies are built.
