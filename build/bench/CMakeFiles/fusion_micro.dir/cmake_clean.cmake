file(REMOVE_RECURSE
  "CMakeFiles/fusion_micro.dir/fusion_micro.cc.o"
  "CMakeFiles/fusion_micro.dir/fusion_micro.cc.o.d"
  "fusion_micro"
  "fusion_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
