file(REMOVE_RECURSE
  "CMakeFiles/union_refactor.dir/union_refactor.cpp.o"
  "CMakeFiles/union_refactor.dir/union_refactor.cpp.o.d"
  "union_refactor"
  "union_refactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_refactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
