# Empty compiler generated dependencies file for union_refactor.
# This may be replaced when dependencies are built.
