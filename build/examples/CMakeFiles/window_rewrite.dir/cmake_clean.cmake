file(REMOVE_RECURSE
  "CMakeFiles/window_rewrite.dir/window_rewrite.cpp.o"
  "CMakeFiles/window_rewrite.dir/window_rewrite.cpp.o.d"
  "window_rewrite"
  "window_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
