# Empty dependencies file for window_rewrite.
# This may be replaced when dependencies are built.
