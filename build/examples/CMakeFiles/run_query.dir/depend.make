# Empty dependencies file for run_query.
# This may be replaced when dependencies are built.
