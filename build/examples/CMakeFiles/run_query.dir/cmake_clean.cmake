file(REMOVE_RECURSE
  "CMakeFiles/run_query.dir/run_query.cpp.o"
  "CMakeFiles/run_query.dir/run_query.cpp.o.d"
  "run_query"
  "run_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
