file(REMOVE_RECURSE
  "CMakeFiles/cte_union.dir/cte_union.cpp.o"
  "CMakeFiles/cte_union.dir/cte_union.cpp.o.d"
  "cte_union"
  "cte_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cte_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
