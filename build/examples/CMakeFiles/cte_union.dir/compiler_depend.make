# Empty compiler generated dependencies file for cte_union.
# This may be replaced when dependencies are built.
