file(REMOVE_RECURSE
  "CMakeFiles/scalar_aggregates.dir/scalar_aggregates.cpp.o"
  "CMakeFiles/scalar_aggregates.dir/scalar_aggregates.cpp.o.d"
  "scalar_aggregates"
  "scalar_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
