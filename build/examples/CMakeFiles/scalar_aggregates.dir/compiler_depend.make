# Empty compiler generated dependencies file for scalar_aggregates.
# This may be replaced when dependencies are built.
