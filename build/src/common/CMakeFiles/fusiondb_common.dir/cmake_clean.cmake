file(REMOVE_RECURSE
  "CMakeFiles/fusiondb_common.dir/status.cc.o"
  "CMakeFiles/fusiondb_common.dir/status.cc.o.d"
  "libfusiondb_common.a"
  "libfusiondb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusiondb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
