file(REMOVE_RECURSE
  "libfusiondb_common.a"
)
