# Empty dependencies file for fusiondb_common.
# This may be replaced when dependencies are built.
