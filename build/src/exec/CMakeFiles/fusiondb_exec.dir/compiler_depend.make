# Empty compiler generated dependencies file for fusiondb_exec.
# This may be replaced when dependencies are built.
