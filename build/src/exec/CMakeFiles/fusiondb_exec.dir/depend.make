# Empty dependencies file for fusiondb_exec.
# This may be replaced when dependencies are built.
