
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate_exec.cc" "src/exec/CMakeFiles/fusiondb_exec.dir/aggregate_exec.cc.o" "gcc" "src/exec/CMakeFiles/fusiondb_exec.dir/aggregate_exec.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/fusiondb_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/fusiondb_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/join_exec.cc" "src/exec/CMakeFiles/fusiondb_exec.dir/join_exec.cc.o" "gcc" "src/exec/CMakeFiles/fusiondb_exec.dir/join_exec.cc.o.d"
  "/root/repo/src/exec/query_result.cc" "src/exec/CMakeFiles/fusiondb_exec.dir/query_result.cc.o" "gcc" "src/exec/CMakeFiles/fusiondb_exec.dir/query_result.cc.o.d"
  "/root/repo/src/exec/scan_exec.cc" "src/exec/CMakeFiles/fusiondb_exec.dir/scan_exec.cc.o" "gcc" "src/exec/CMakeFiles/fusiondb_exec.dir/scan_exec.cc.o.d"
  "/root/repo/src/exec/simple_exec.cc" "src/exec/CMakeFiles/fusiondb_exec.dir/simple_exec.cc.o" "gcc" "src/exec/CMakeFiles/fusiondb_exec.dir/simple_exec.cc.o.d"
  "/root/repo/src/exec/sort_exec.cc" "src/exec/CMakeFiles/fusiondb_exec.dir/sort_exec.cc.o" "gcc" "src/exec/CMakeFiles/fusiondb_exec.dir/sort_exec.cc.o.d"
  "/root/repo/src/exec/spool_exec.cc" "src/exec/CMakeFiles/fusiondb_exec.dir/spool_exec.cc.o" "gcc" "src/exec/CMakeFiles/fusiondb_exec.dir/spool_exec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/fusiondb_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/fusiondb_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/fusiondb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/fusiondb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fusiondb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
