file(REMOVE_RECURSE
  "CMakeFiles/fusiondb_exec.dir/aggregate_exec.cc.o"
  "CMakeFiles/fusiondb_exec.dir/aggregate_exec.cc.o.d"
  "CMakeFiles/fusiondb_exec.dir/executor.cc.o"
  "CMakeFiles/fusiondb_exec.dir/executor.cc.o.d"
  "CMakeFiles/fusiondb_exec.dir/join_exec.cc.o"
  "CMakeFiles/fusiondb_exec.dir/join_exec.cc.o.d"
  "CMakeFiles/fusiondb_exec.dir/query_result.cc.o"
  "CMakeFiles/fusiondb_exec.dir/query_result.cc.o.d"
  "CMakeFiles/fusiondb_exec.dir/scan_exec.cc.o"
  "CMakeFiles/fusiondb_exec.dir/scan_exec.cc.o.d"
  "CMakeFiles/fusiondb_exec.dir/simple_exec.cc.o"
  "CMakeFiles/fusiondb_exec.dir/simple_exec.cc.o.d"
  "CMakeFiles/fusiondb_exec.dir/sort_exec.cc.o"
  "CMakeFiles/fusiondb_exec.dir/sort_exec.cc.o.d"
  "CMakeFiles/fusiondb_exec.dir/spool_exec.cc.o"
  "CMakeFiles/fusiondb_exec.dir/spool_exec.cc.o.d"
  "libfusiondb_exec.a"
  "libfusiondb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusiondb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
