file(REMOVE_RECURSE
  "libfusiondb_exec.a"
)
