file(REMOVE_RECURSE
  "libfusiondb_tpcds.a"
)
