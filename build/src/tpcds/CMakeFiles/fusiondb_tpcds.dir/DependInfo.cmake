
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpcds/datagen.cc" "src/tpcds/CMakeFiles/fusiondb_tpcds.dir/datagen.cc.o" "gcc" "src/tpcds/CMakeFiles/fusiondb_tpcds.dir/datagen.cc.o.d"
  "/root/repo/src/tpcds/queries.cc" "src/tpcds/CMakeFiles/fusiondb_tpcds.dir/queries.cc.o" "gcc" "src/tpcds/CMakeFiles/fusiondb_tpcds.dir/queries.cc.o.d"
  "/root/repo/src/tpcds/queries_filler.cc" "src/tpcds/CMakeFiles/fusiondb_tpcds.dir/queries_filler.cc.o" "gcc" "src/tpcds/CMakeFiles/fusiondb_tpcds.dir/queries_filler.cc.o.d"
  "/root/repo/src/tpcds/queries_fusable.cc" "src/tpcds/CMakeFiles/fusiondb_tpcds.dir/queries_fusable.cc.o" "gcc" "src/tpcds/CMakeFiles/fusiondb_tpcds.dir/queries_fusable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/fusiondb_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/fusiondb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/fusiondb_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/fusiondb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fusiondb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
