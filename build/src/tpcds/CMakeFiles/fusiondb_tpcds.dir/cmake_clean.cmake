file(REMOVE_RECURSE
  "CMakeFiles/fusiondb_tpcds.dir/datagen.cc.o"
  "CMakeFiles/fusiondb_tpcds.dir/datagen.cc.o.d"
  "CMakeFiles/fusiondb_tpcds.dir/queries.cc.o"
  "CMakeFiles/fusiondb_tpcds.dir/queries.cc.o.d"
  "CMakeFiles/fusiondb_tpcds.dir/queries_filler.cc.o"
  "CMakeFiles/fusiondb_tpcds.dir/queries_filler.cc.o.d"
  "CMakeFiles/fusiondb_tpcds.dir/queries_fusable.cc.o"
  "CMakeFiles/fusiondb_tpcds.dir/queries_fusable.cc.o.d"
  "libfusiondb_tpcds.a"
  "libfusiondb_tpcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusiondb_tpcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
