# Empty dependencies file for fusiondb_tpcds.
# This may be replaced when dependencies are built.
