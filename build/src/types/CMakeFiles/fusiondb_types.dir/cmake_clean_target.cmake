file(REMOVE_RECURSE
  "libfusiondb_types.a"
)
