file(REMOVE_RECURSE
  "CMakeFiles/fusiondb_types.dir/column.cc.o"
  "CMakeFiles/fusiondb_types.dir/column.cc.o.d"
  "CMakeFiles/fusiondb_types.dir/schema.cc.o"
  "CMakeFiles/fusiondb_types.dir/schema.cc.o.d"
  "CMakeFiles/fusiondb_types.dir/value.cc.o"
  "CMakeFiles/fusiondb_types.dir/value.cc.o.d"
  "libfusiondb_types.a"
  "libfusiondb_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusiondb_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
