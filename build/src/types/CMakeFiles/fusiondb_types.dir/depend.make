# Empty dependencies file for fusiondb_types.
# This may be replaced when dependencies are built.
