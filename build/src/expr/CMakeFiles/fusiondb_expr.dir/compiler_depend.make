# Empty compiler generated dependencies file for fusiondb_expr.
# This may be replaced when dependencies are built.
