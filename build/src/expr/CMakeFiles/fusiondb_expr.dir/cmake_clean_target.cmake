file(REMOVE_RECURSE
  "libfusiondb_expr.a"
)
