file(REMOVE_RECURSE
  "CMakeFiles/fusiondb_expr.dir/column_map.cc.o"
  "CMakeFiles/fusiondb_expr.dir/column_map.cc.o.d"
  "CMakeFiles/fusiondb_expr.dir/evaluator.cc.o"
  "CMakeFiles/fusiondb_expr.dir/evaluator.cc.o.d"
  "CMakeFiles/fusiondb_expr.dir/expr.cc.o"
  "CMakeFiles/fusiondb_expr.dir/expr.cc.o.d"
  "CMakeFiles/fusiondb_expr.dir/scalar_ops.cc.o"
  "CMakeFiles/fusiondb_expr.dir/scalar_ops.cc.o.d"
  "CMakeFiles/fusiondb_expr.dir/simplifier.cc.o"
  "CMakeFiles/fusiondb_expr.dir/simplifier.cc.o.d"
  "libfusiondb_expr.a"
  "libfusiondb_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusiondb_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
