# Empty compiler generated dependencies file for fusiondb_optimizer.
# This may be replaced when dependencies are built.
