
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/prune_columns.cc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/prune_columns.cc.o" "gcc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/prune_columns.cc.o.d"
  "/root/repo/src/optimizer/rewrite_utils.cc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rewrite_utils.cc.o" "gcc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rewrite_utils.cc.o.d"
  "/root/repo/src/optimizer/rules_basic.cc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_basic.cc.o" "gcc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_basic.cc.o.d"
  "/root/repo/src/optimizer/rules_decorrelate.cc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_decorrelate.cc.o" "gcc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_decorrelate.cc.o.d"
  "/root/repo/src/optimizer/rules_distinct.cc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_distinct.cc.o" "gcc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_distinct.cc.o.d"
  "/root/repo/src/optimizer/rules_join_keys.cc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_join_keys.cc.o" "gcc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_join_keys.cc.o.d"
  "/root/repo/src/optimizer/rules_union.cc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_union.cc.o" "gcc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_union.cc.o.d"
  "/root/repo/src/optimizer/rules_window.cc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_window.cc.o" "gcc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/rules_window.cc.o.d"
  "/root/repo/src/optimizer/spool_rule.cc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/spool_rule.cc.o" "gcc" "src/optimizer/CMakeFiles/fusiondb_optimizer.dir/spool_rule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fusion/CMakeFiles/fusiondb_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/fusiondb_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/fusiondb_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/fusiondb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/fusiondb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fusiondb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
