file(REMOVE_RECURSE
  "libfusiondb_optimizer.a"
)
