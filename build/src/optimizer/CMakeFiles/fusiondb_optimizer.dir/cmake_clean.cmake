file(REMOVE_RECURSE
  "CMakeFiles/fusiondb_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/fusiondb_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/fusiondb_optimizer.dir/prune_columns.cc.o"
  "CMakeFiles/fusiondb_optimizer.dir/prune_columns.cc.o.d"
  "CMakeFiles/fusiondb_optimizer.dir/rewrite_utils.cc.o"
  "CMakeFiles/fusiondb_optimizer.dir/rewrite_utils.cc.o.d"
  "CMakeFiles/fusiondb_optimizer.dir/rules_basic.cc.o"
  "CMakeFiles/fusiondb_optimizer.dir/rules_basic.cc.o.d"
  "CMakeFiles/fusiondb_optimizer.dir/rules_decorrelate.cc.o"
  "CMakeFiles/fusiondb_optimizer.dir/rules_decorrelate.cc.o.d"
  "CMakeFiles/fusiondb_optimizer.dir/rules_distinct.cc.o"
  "CMakeFiles/fusiondb_optimizer.dir/rules_distinct.cc.o.d"
  "CMakeFiles/fusiondb_optimizer.dir/rules_join_keys.cc.o"
  "CMakeFiles/fusiondb_optimizer.dir/rules_join_keys.cc.o.d"
  "CMakeFiles/fusiondb_optimizer.dir/rules_union.cc.o"
  "CMakeFiles/fusiondb_optimizer.dir/rules_union.cc.o.d"
  "CMakeFiles/fusiondb_optimizer.dir/rules_window.cc.o"
  "CMakeFiles/fusiondb_optimizer.dir/rules_window.cc.o.d"
  "CMakeFiles/fusiondb_optimizer.dir/spool_rule.cc.o"
  "CMakeFiles/fusiondb_optimizer.dir/spool_rule.cc.o.d"
  "libfusiondb_optimizer.a"
  "libfusiondb_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusiondb_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
