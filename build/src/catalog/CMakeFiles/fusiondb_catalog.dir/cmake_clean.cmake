file(REMOVE_RECURSE
  "CMakeFiles/fusiondb_catalog.dir/encoding.cc.o"
  "CMakeFiles/fusiondb_catalog.dir/encoding.cc.o.d"
  "CMakeFiles/fusiondb_catalog.dir/table.cc.o"
  "CMakeFiles/fusiondb_catalog.dir/table.cc.o.d"
  "libfusiondb_catalog.a"
  "libfusiondb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusiondb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
