# Empty compiler generated dependencies file for fusiondb_catalog.
# This may be replaced when dependencies are built.
