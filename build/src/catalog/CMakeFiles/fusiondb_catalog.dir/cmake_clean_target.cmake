file(REMOVE_RECURSE
  "libfusiondb_catalog.a"
)
