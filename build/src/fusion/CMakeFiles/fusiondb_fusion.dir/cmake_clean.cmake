file(REMOVE_RECURSE
  "CMakeFiles/fusiondb_fusion.dir/fuse.cc.o"
  "CMakeFiles/fusiondb_fusion.dir/fuse.cc.o.d"
  "libfusiondb_fusion.a"
  "libfusiondb_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusiondb_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
