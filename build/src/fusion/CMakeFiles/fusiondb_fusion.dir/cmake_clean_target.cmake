file(REMOVE_RECURSE
  "libfusiondb_fusion.a"
)
