# Empty dependencies file for fusiondb_fusion.
# This may be replaced when dependencies are built.
