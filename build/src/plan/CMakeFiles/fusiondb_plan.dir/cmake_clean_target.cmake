file(REMOVE_RECURSE
  "libfusiondb_plan.a"
)
