
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/logical_plan.cc" "src/plan/CMakeFiles/fusiondb_plan.dir/logical_plan.cc.o" "gcc" "src/plan/CMakeFiles/fusiondb_plan.dir/logical_plan.cc.o.d"
  "/root/repo/src/plan/plan_builder.cc" "src/plan/CMakeFiles/fusiondb_plan.dir/plan_builder.cc.o" "gcc" "src/plan/CMakeFiles/fusiondb_plan.dir/plan_builder.cc.o.d"
  "/root/repo/src/plan/plan_printer.cc" "src/plan/CMakeFiles/fusiondb_plan.dir/plan_printer.cc.o" "gcc" "src/plan/CMakeFiles/fusiondb_plan.dir/plan_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/fusiondb_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/fusiondb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/fusiondb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fusiondb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
