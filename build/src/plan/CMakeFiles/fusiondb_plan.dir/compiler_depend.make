# Empty compiler generated dependencies file for fusiondb_plan.
# This may be replaced when dependencies are built.
