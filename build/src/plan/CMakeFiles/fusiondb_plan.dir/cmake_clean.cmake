file(REMOVE_RECURSE
  "CMakeFiles/fusiondb_plan.dir/logical_plan.cc.o"
  "CMakeFiles/fusiondb_plan.dir/logical_plan.cc.o.d"
  "CMakeFiles/fusiondb_plan.dir/plan_builder.cc.o"
  "CMakeFiles/fusiondb_plan.dir/plan_builder.cc.o.d"
  "CMakeFiles/fusiondb_plan.dir/plan_printer.cc.o"
  "CMakeFiles/fusiondb_plan.dir/plan_printer.cc.o.d"
  "libfusiondb_plan.a"
  "libfusiondb_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusiondb_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
