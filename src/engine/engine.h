// fusiondb::Engine — the unified front door (DESIGN.md §14).
//
// One object owns the catalog, the service metrics registry, the adaptive
// stats-feedback store and (lazily) the cross-query fusion server, and the
// whole prepare/optimize/execute flow runs through two calls:
//
//   Engine engine(catalog);
//   FUSIONDB_ASSIGN_OR_RETURN(PreparedQuery q,
//                             engine.Prepare("SELECT ... FROM ..."));
//   FUSIONDB_ASSIGN_OR_RETURN(QueryResult r,
//                             engine.Execute(q, QueryOptions::Fused()));
//
// Prepare accepts either SQL text (parsed + bound by src/sql) or a plan
// builder callback with the TpcdsQuery::build shape, so hand-built plans
// and SQL share one execution path. Execute consolidates what used to be
// scattered across call sites: mode selection (QueryOptions factories),
// optimizer trace attachment, adaptive two-pass feedback (optimize against
// priors, execute, harvest measured cardinalities, re-optimize), metrics
// wiring and final execution.
//
// The low-level entry points (Optimizer::Optimize, ExecutePlan,
// SessionManager) remain public for unit tests and benches that need to
// probe one layer in isolation.
#ifndef FUSIONDB_ENGINE_ENGINE_H_
#define FUSIONDB_ENGINE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "cost/stats_feedback.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/optimizer_trace.h"
#include "optimizer/optimizer.h"
#include "plan/logical_plan.h"
#include "plan/plan_context.h"
#include "server/session_manager.h"
#include "sql/sql.h"

namespace fusiondb {

/// Everything one execution needs: the optimizer configuration, the
/// executor knobs, and the observability hookups.
struct QueryOptions {
  OptimizerOptions optimizer;
  ExecOptions exec;

  /// Optional optimizer/fusion trace (not owned). Attached to the prepared
  /// query's PlanContext for the duration of optimization; in adaptive
  /// two-pass mode it records the measured-feedback pass (the one that
  /// produced the executed plan).
  OptimizerTrace* trace = nullptr;

  /// Record execution counters into the engine's metrics registry (in
  /// addition to any registry already set on `exec.metrics`).
  bool record_metrics = false;

  static QueryOptions Baseline() {
    QueryOptions q;
    q.optimizer = OptimizerOptions::Baseline();
    return q;
  }
  static QueryOptions Fused() { return QueryOptions(); }
  static QueryOptions Spooling() {
    QueryOptions q;
    q.optimizer = OptimizerOptions::Spooling();
    return q;
  }
  /// Adaptive fuse-vs-spool. Leave `optimizer.feedback` null to use the
  /// engine's own accumulated feedback (Execute then runs the two-pass
  /// loop: priors -> execute -> harvest -> re-optimize -> execute).
  static QueryOptions Adaptive() {
    QueryOptions q;
    q.optimizer = OptimizerOptions::Adaptive(nullptr);
    return q;
  }

  /// "baseline" / "fused" / "spooling" / "adaptive" — the --mode vocabulary
  /// shared by run_query, the benches and the fuzz harness.
  static Result<QueryOptions> FromModeName(const std::string& mode);
};

/// A bound query: its own PlanContext (column-id space) plus the logical
/// plan rooted in it. Produced by Engine::Prepare; movable, not copyable.
class PreparedQuery {
 public:
  PreparedQuery() = default;
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;

  const PlanPtr& plan() const { return plan_; }
  PlanContext* context() { return ctx_.get(); }

  /// The SQL text this query was prepared from (empty for plan builders).
  const std::string& sql() const { return sql_; }

 private:
  friend class Engine;
  std::unique_ptr<PlanContext> ctx_;
  PlanPtr plan_;
  std::string sql_;
};

class Engine {
 public:
  /// The builder-callback shape shared with tpcds::TpcdsQuery::build.
  using PlanBuilder =
      std::function<Result<PlanPtr>(const Catalog&, PlanContext*)>;

  Engine() = default;
  explicit Engine(Catalog catalog) : catalog_(std::move(catalog)) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Catalog& catalog() const { return catalog_; }
  /// For registering tables after construction. Must not be called while a
  /// server started by StartServer is running.
  Catalog* mutable_catalog() { return &catalog_; }

  /// Parses and binds one SQL statement. When `parse` is non-null it
  /// receives the full ParseResult (text + positional diagnostics) so
  /// callers can render caret snippets; the returned Status carries the
  /// first diagnostic either way.
  Result<PreparedQuery> Prepare(const std::string& sql_text,
                                sql::ParseResult* parse = nullptr);

  /// Binds a hand-built plan through the same PreparedQuery surface.
  Result<PreparedQuery> Prepare(const PlanBuilder& build);

  /// Optimizes the prepared plan under `options`. Adaptive mode with a null
  /// `optimizer.feedback` uses the engine's accumulated feedback store
  /// (catalog priors when nothing has been harvested yet).
  Result<PlanPtr> Optimize(PreparedQuery* query,
                           const QueryOptions& options = QueryOptions());

  /// Executes an already-optimized plan under `options.exec`.
  Result<QueryResult> ExecuteOptimized(const PlanPtr& optimized,
                                       const QueryOptions& options);

  /// Optimize + execute. In adaptive mode with no explicit feedback this is
  /// the paper's two-pass loop: optimize against the current feedback,
  /// execute profiled, harvest measured cardinalities into the engine's
  /// store, re-optimize against them and execute the re-optimized plan.
  Result<QueryResult> Execute(PreparedQuery* query,
                              const QueryOptions& options = QueryOptions());

  /// One-call convenience: Prepare(sql) + Execute.
  Result<QueryResult> ExecuteSql(const std::string& sql_text,
                                 const QueryOptions& options = QueryOptions());

  // --- cross-query fusion server (DESIGN.md §12) ---------------------------

  /// Starts the session-manager server. At most one at a time; returns the
  /// running instance. When `options.metrics` is null the engine's registry
  /// is wired in.
  Result<SessionManager*> StartServer(ServerOptions options = ServerOptions());

  /// The running server, or null.
  SessionManager* server() { return server_.get(); }

  /// Submits a prepared query's plan to the running server.
  Result<SessionPtr> Submit(const PreparedQuery& query);

  /// Drains and stops the server. Idempotent.
  void StopServer();

  // --- owned observability state -------------------------------------------

  MetricsRegistry* metrics() { return &metrics_; }
  StatsFeedback* feedback() { return &feedback_; }

 private:
  Catalog catalog_;
  MetricsRegistry metrics_;
  StatsFeedback feedback_;
  std::unique_ptr<SessionManager> server_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_ENGINE_ENGINE_H_
