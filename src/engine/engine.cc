#include "engine/engine.h"

#include <utility>

namespace fusiondb {

Result<QueryOptions> QueryOptions::FromModeName(const std::string& mode) {
  if (mode == "baseline") return Baseline();
  if (mode == "fused") return Fused();
  if (mode == "spooling") return Spooling();
  if (mode == "adaptive") return Adaptive();
  return Status::InvalidArgument(
      "unknown mode '" + mode +
      "' (expected baseline, fused, spooling or adaptive)");
}

Result<PreparedQuery> Engine::Prepare(const std::string& sql_text,
                                      sql::ParseResult* parse) {
  PreparedQuery query;
  query.ctx_ = std::make_unique<PlanContext>();
  query.sql_ = sql_text;
  sql::ParseResult result =
      sql::ParseAndBind(sql_text, catalog_, query.ctx_.get());
  Status status = result.status();
  if (parse != nullptr) *parse = std::move(result);
  if (!status.ok()) return status;
  query.plan_ = parse != nullptr ? parse->plan : result.plan;
  return query;
}

Result<PreparedQuery> Engine::Prepare(const PlanBuilder& build) {
  PreparedQuery query;
  query.ctx_ = std::make_unique<PlanContext>();
  FUSIONDB_ASSIGN_OR_RETURN(query.plan_, build(catalog_, query.ctx_.get()));
  return query;
}

Result<PlanPtr> Engine::Optimize(PreparedQuery* query,
                                 const QueryOptions& options) {
  if (query == nullptr || query->plan() == nullptr) {
    return Status::InvalidArgument("Optimize: query is not prepared");
  }
  OptimizerOptions opt = options.optimizer;
  if (opt.spool_mode == SpoolMode::kAdaptive && opt.feedback == nullptr) {
    opt.feedback = &feedback_;
  }
  PlanContext* ctx = query->context();
  if (options.trace != nullptr) ctx->set_trace(options.trace);
  Result<PlanPtr> optimized = Optimizer(opt).Optimize(query->plan(), ctx);
  if (options.trace != nullptr) ctx->set_trace(nullptr);
  return optimized;
}

Result<QueryResult> Engine::ExecuteOptimized(const PlanPtr& optimized,
                                             const QueryOptions& options) {
  ExecOptions exec_options = options.exec;
  if (options.record_metrics && exec_options.metrics == nullptr) {
    exec_options.metrics = &metrics_;
  }
  return ExecutePlan(optimized, exec_options);
}

Result<QueryResult> Engine::Execute(PreparedQuery* query,
                                    const QueryOptions& options) {
  if (query == nullptr || query->plan() == nullptr) {
    return Status::InvalidArgument("Execute: query is not prepared");
  }
  bool two_pass = options.optimizer.spool_mode == SpoolMode::kAdaptive &&
                  options.optimizer.feedback == nullptr;
  if (two_pass) {
    // Pass 1: optimize against whatever the engine has measured so far
    // (catalog priors when empty), execute profiled, and harvest every
    // subtree's measured cardinality into the feedback store.
    QueryOptions first = options;
    first.trace = nullptr;  // the caller's trace records the measured pass
    first.exec.profile = true;
    FUSIONDB_ASSIGN_OR_RETURN(PlanPtr first_plan, Optimize(query, first));
    FUSIONDB_ASSIGN_OR_RETURN(QueryResult first_result,
                              ExecuteOptimized(first_plan, first));
    feedback_.Harvest(first_plan, first_result.operator_stats());
  }
  FUSIONDB_ASSIGN_OR_RETURN(PlanPtr optimized, Optimize(query, options));
  return ExecuteOptimized(optimized, options);
}

Result<QueryResult> Engine::ExecuteSql(const std::string& sql_text,
                                       const QueryOptions& options) {
  FUSIONDB_ASSIGN_OR_RETURN(PreparedQuery query, Prepare(sql_text));
  return Execute(&query, options);
}

Result<SessionManager*> Engine::StartServer(ServerOptions options) {
  if (server_ != nullptr) {
    return Status::InvalidArgument("a server is already running");
  }
  if (options.metrics == nullptr) options.metrics = &metrics_;
  server_ = std::make_unique<SessionManager>(std::move(options));
  return server_.get();
}

Result<SessionPtr> Engine::Submit(const PreparedQuery& query) {
  if (server_ == nullptr) {
    return Status::InvalidArgument("Submit: no server running; call "
                                   "StartServer first");
  }
  if (query.plan() == nullptr) {
    return Status::InvalidArgument("Submit: query is not prepared");
  }
  return server_->Submit(query.plan());
}

void Engine::StopServer() {
  if (server_ == nullptr) return;
  server_->Stop();
  server_.reset();
}

}  // namespace fusiondb
