// Multi-root plans: the container the cross-query server batches over.
//
// Plans submitted by different sessions were built in different
// PlanContexts, so their ColumnIds collide (every context starts minting at
// 1). Before two submitted plans can be compared or fused, each must be
// *renumbered* into one shared id space: RenumberPlan rebuilds a plan
// bottom-up, minting a fresh id for every defined column from the target
// context and rewriting all references, and returns the old->new ColumnMap
// so callers can still name the original output columns. Renumbering is
// semantics-preserving — PlanFingerprint (which canonicalizes ids away) is
// unchanged by construction.
//
// PlanBundle holds N renumbered roots over one PlanContext: a multi-root
// plan. It is the unit the server's admission window produces and the
// cross-plan fuser consumes.
#ifndef FUSIONDB_PLAN_MULTI_PLAN_H_
#define FUSIONDB_PLAN_MULTI_PLAN_H_

#include <vector>

#include "expr/column_map.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// A plan rebuilt into another PlanContext's id space, plus the mapping
/// from the original plan's ColumnIds to the fresh ones (covers every
/// column defined anywhere in the tree, not just the root schema).
struct RenumberedPlan {
  PlanPtr plan;
  ColumnMap mapping;  // original id -> renumbered id
};

/// Rebuilds `plan` with every ColumnId freshly minted from `ctx`. Shared
/// subtrees (plan DAGs, e.g. duplicated spool inputs) are renumbered once
/// and stay shared in the output.
RenumberedPlan RenumberPlan(const PlanPtr& plan, PlanContext* ctx);

/// An ordered set of plan roots sharing one PlanContext id space. AddRoot
/// renumbers the incoming plan (which may come from any context) into the
/// bundle's context.
class PlanBundle {
 public:
  explicit PlanBundle(PlanContext* ctx) : ctx_(ctx) {}

  struct Root {
    PlanPtr plan;       // renumbered into the bundle's context
    ColumnMap mapping;  // submitted plan's ids -> bundle ids
  };

  /// Renumbers `plan` into the bundle's context and appends it as a root.
  /// Returns the root's index.
  size_t AddRoot(const PlanPtr& plan) {
    RenumberedPlan r = RenumberPlan(plan, ctx_);
    roots_.push_back({std::move(r.plan), std::move(r.mapping)});
    return roots_.size() - 1;
  }

  size_t num_roots() const { return roots_.size(); }
  const Root& root(size_t i) const { return roots_[i]; }
  PlanContext* ctx() const { return ctx_; }

 private:
  PlanContext* ctx_;  // not owned; must outlive the bundle
  std::vector<Root> roots_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_PLAN_MULTI_PLAN_H_
