// PlanContext: per-query state shared by planning, optimization and fusion —
// chiefly the ColumnId allocator. Following Athena's convention, every
// operator instantiation mints fresh column identities, so fusion can reason
// about "the same column" purely by id.
#ifndef FUSIONDB_PLAN_PLAN_CONTEXT_H_
#define FUSIONDB_PLAN_PLAN_CONTEXT_H_

#include <vector>

#include "types/schema.h"

namespace fusiondb {

class OptimizerTrace;  // obs/optimizer_trace.h; forward-declared so the
                       // plan layer takes no dependency on the obs library
class SemanticLedger;  // analysis/semantic_ledger.h; forward-declared for
                       // the same reason (rules record semantic obligations
                       // through the context without a link dependency)
class MetricsRegistry;  // obs/metrics.h; forward-declared likewise (the
                        // optimizer records service counters through the
                        // context without a link dependency)

class PlanContext {
 public:
  ColumnId NextId() { return next_id_++; }

  std::vector<ColumnId> NextIds(size_t n) {
    std::vector<ColumnId> ids;
    ids.reserve(n);
    for (size_t i = 0; i < n; ++i) ids.push_back(NextId());
    return ids;
  }

  /// The next id that would be allocated (diagnostics only).
  ColumnId Peek() const { return next_id_; }

  /// Optional optimizer/fusion trace collector (not owned; may be null, the
  /// default). Riding on PlanContext keeps every Rule::Apply and Fuser
  /// signature unchanged while making the trace reachable wherever plans
  /// are rewritten.
  OptimizerTrace* trace() const { return trace_; }
  void set_trace(OptimizerTrace* trace) { trace_ = trace; }

  /// Optional semantic-obligation ledger (not owned; may be null, the
  /// default). When set, rewrite rules record the semantic facts they rely
  /// on — key claims, filter implications — and the optimizer's semantic
  /// tier re-proves each one after the firing (DESIGN.md §8).
  SemanticLedger* semantics() const { return semantics_; }
  void set_semantics(SemanticLedger* ledger) { semantics_ = ledger; }

  /// Optional service-level metrics registry (not owned; may be null, the
  /// default). When set, the optimizer records rule firings, cost verdicts
  /// and verifier failures as `fusiondb_optimizer_*` counters.
  MetricsRegistry* metrics() const { return metrics_; }
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  ColumnId next_id_ = 1;
  OptimizerTrace* trace_ = nullptr;
  SemanticLedger* semantics_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace fusiondb

#endif  // FUSIONDB_PLAN_PLAN_CONTEXT_H_
