// Plan pretty-printing and structural helpers used by examples, tests and
// the benchmark reports (the paper's Section V shows plan before/after
// diffs; PlanToString is how we surface the same evidence).
#ifndef FUSIONDB_PLAN_PLAN_PRINTER_H_
#define FUSIONDB_PLAN_PLAN_PRINTER_H_

#include <functional>
#include <string>

#include "plan/logical_plan.h"

namespace fusiondb {

/// Indented multi-line rendering of a plan tree.
std::string PlanToString(const PlanPtr& plan);

/// Per-node annotation hook for the annotated rendering below: receives the
/// node and its preorder index (the stable operator id used by the
/// profiling layer) and returns text appended to the node's line. May be
/// null (plain rendering).
using PlanAnnotator = std::function<std::string(const LogicalOp&, int)>;

/// PlanToString with a per-node annotation — the substrate of EXPLAIN
/// ANALYZE (obs/profile.h). The preorder indices handed to the annotator
/// match BuildExecutor's operator-id assignment exactly.
std::string PlanToString(const PlanPtr& plan, const PlanAnnotator& annotate);

/// Number of operators of the given kind anywhere in the tree.
int CountOps(const PlanPtr& plan, OpKind kind);

/// Number of scans of the named table in the tree (how many times a plan
/// reads that table — the quantity fusion reduces).
int CountTableScans(const PlanPtr& plan, const std::string& table_name);

/// Total operator count.
int CountAllOps(const PlanPtr& plan);

}  // namespace fusiondb

#endif  // FUSIONDB_PLAN_PLAN_PRINTER_H_
