// Plan pretty-printing and structural helpers used by examples, tests and
// the benchmark reports (the paper's Section V shows plan before/after
// diffs; PlanToString is how we surface the same evidence).
#ifndef FUSIONDB_PLAN_PLAN_PRINTER_H_
#define FUSIONDB_PLAN_PLAN_PRINTER_H_

#include <string>

#include "plan/logical_plan.h"

namespace fusiondb {

/// Indented multi-line rendering of a plan tree.
std::string PlanToString(const PlanPtr& plan);

/// Number of operators of the given kind anywhere in the tree.
int CountOps(const PlanPtr& plan, OpKind kind);

/// Number of scans of the named table in the tree (how many times a plan
/// reads that table — the quantity fusion reduces).
int CountTableScans(const PlanPtr& plan, const std::string& table_name);

/// Total operator count.
int CountAllOps(const PlanPtr& plan);

}  // namespace fusiondb

#endif  // FUSIONDB_PLAN_PLAN_PRINTER_H_
