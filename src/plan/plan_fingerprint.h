// Deterministic plan fingerprints: a canonical 64-bit hash of a logical
// subtree covering operator kinds and parameters, expressions, and the base
// tables scanned — and *stable across ColumnId renumbering*. Two builds of
// the same logical query in different PlanContexts (whose scans mint
// different ids) fingerprint identically, so measured statistics harvested
// from one execution can be matched to the same subtree in a later
// optimization pass (the StatsFeedback overlay in src/cost).
//
// Canonicalization: ColumnIds are rewritten to dense ordinals assigned in a
// deterministic post-order walk of the subtree (scan/project/aggregate/...
// output columns in schema order, children left-to-right before parents),
// so the numbering depends only on plan structure. AND/OR operands and
// commutative comparisons are ordered canonically, mirroring
// ExprFingerprint. Spool ids are ignored (they are allocation artifacts).
//
// Equal fingerprints mean structurally identical computations up to id
// renumbering; as with any hash, collisions are possible but the canonical
// string (exposed for tests and debugging) is collision-free.
#ifndef FUSIONDB_PLAN_PLAN_FINGERPRINT_H_
#define FUSIONDB_PLAN_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "plan/logical_plan.h"

namespace fusiondb {

/// Canonical serialization of `plan` (ColumnIds replaced by structural
/// ordinals). Deterministic across processes and PlanContext id ranges.
std::string PlanCanonicalString(const PlanPtr& plan);

/// FNV-1a 64-bit hash of PlanCanonicalString(plan).
uint64_t PlanFingerprint(const PlanPtr& plan);

/// Fingerprint rendered for traces/JSON ("fp:0123456789abcdef").
std::string FingerprintToString(uint64_t fingerprint);

}  // namespace fusiondb

#endif  // FUSIONDB_PLAN_PLAN_FINGERPRINT_H_
