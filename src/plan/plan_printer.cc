#include "plan/plan_printer.h"

#include <sstream>

#include "plan/spool.h"

namespace fusiondb {

namespace {

/// The verifier pretty-prints malformed subplans, so the printer must
/// tolerate null expressions instead of dereferencing them.
std::string ExprStr(const ExprPtr& e) {
  return e == nullptr ? "<null>" : e->ToString();
}

void PrintNode(const PlanPtr& plan, int indent, std::ostream& os,
               const PlanAnnotator& annotate, int* counter) {
  int preorder_index = (*counter)++;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << OpKindName(plan->kind());
  switch (plan->kind()) {
    case OpKind::kScan: {
      const auto& scan = Cast<ScanOp>(*plan);
      os << "(" << scan.table()->name() << ")";
      if (scan.pruning_filter() != nullptr) {
        os << " prune: " << scan.pruning_filter()->ToString();
      }
      break;
    }
    case OpKind::kFilter:
      os << " " << ExprStr(Cast<FilterOp>(*plan).predicate());
      break;
    case OpKind::kProject: {
      const auto& proj = Cast<ProjectOp>(*plan);
      os << " [";
      for (size_t i = 0; i < proj.exprs().size(); ++i) {
        if (i > 0) os << ", ";
        const NamedExpr& e = proj.exprs()[i];
        os << e.name << "#" << e.id << ":=" << ExprStr(e.expr);
      }
      os << "]";
      break;
    }
    case OpKind::kJoin: {
      const auto& join = Cast<JoinOp>(*plan);
      os << "(" << JoinTypeName(join.join_type()) << ") on "
         << ExprStr(join.condition());
      break;
    }
    case OpKind::kAggregate: {
      const auto& agg = Cast<AggregateOp>(*plan);
      os << " group=[";
      for (size_t i = 0; i < agg.group_by().size(); ++i) {
        if (i > 0) os << ", ";
        os << "#" << agg.group_by()[i];
      }
      os << "] aggs=[";
      for (size_t i = 0; i < agg.aggregates().size(); ++i) {
        if (i > 0) os << ", ";
        const AggregateItem& a = agg.aggregates()[i];
        os << a.name << "#" << a.id << ":=" << AggFuncName(a.func);
        if (a.distinct) os << " distinct";
        if (a.arg != nullptr) os << "(" << a.arg->ToString() << ")";
        if (a.mask != nullptr) os << " mask " << a.mask->ToString();
      }
      os << "]";
      break;
    }
    case OpKind::kWindow: {
      const auto& win = Cast<WindowOp>(*plan);
      os << " partition=[";
      for (size_t i = 0; i < win.partition_by().size(); ++i) {
        if (i > 0) os << ", ";
        os << "#" << win.partition_by()[i];
      }
      os << "] items=[";
      for (size_t i = 0; i < win.items().size(); ++i) {
        if (i > 0) os << ", ";
        const WindowItem& w = win.items()[i];
        os << w.name << "#" << w.id << ":=" << AggFuncName(w.func);
        if (w.arg != nullptr) os << "(" << w.arg->ToString() << ")";
        if (w.mask != nullptr) os << " mask " << w.mask->ToString();
      }
      os << "]";
      break;
    }
    case OpKind::kMarkDistinct: {
      const auto& md = Cast<MarkDistinctOp>(*plan);
      os << " marker#" << md.marker() << " over [";
      for (size_t i = 0; i < md.distinct_columns().size(); ++i) {
        if (i > 0) os << ", ";
        os << "#" << md.distinct_columns()[i];
      }
      os << "]";
      break;
    }
    case OpKind::kValues: {
      os << " rows=" << Cast<ValuesOp>(*plan).rows().size();
      break;
    }
    case OpKind::kLimit:
      os << " " << Cast<LimitOp>(*plan).limit();
      break;
    case OpKind::kSpool:
      os << " id=" << Cast<SpoolOp>(*plan).spool_id();
      break;
    case OpKind::kApply: {
      const auto& apply = Cast<ApplyOp>(*plan);
      os << " corr=[";
      for (size_t i = 0; i < apply.correlation().size(); ++i) {
        if (i > 0) os << ", ";
        os << "#" << apply.correlation()[i].first << "=#"
           << apply.correlation()[i].second;
      }
      os << "]";
      break;
    }
    case OpKind::kUnionAll:
    case OpKind::kSort:
    case OpKind::kEnforceSingleRow:
      break;  // nothing beyond the kind name and schema
  }
  os << "  -> " << plan->schema().ToString();
  if (annotate != nullptr) os << annotate(*plan, preorder_index);
  os << "\n";
  for (const PlanPtr& c : plan->children()) {
    PrintNode(c, indent + 1, os, annotate, counter);
  }
}

}  // namespace

std::string PlanToString(const PlanPtr& plan) {
  return PlanToString(plan, PlanAnnotator());
}

std::string PlanToString(const PlanPtr& plan, const PlanAnnotator& annotate) {
  std::ostringstream os;
  int counter = 0;
  PrintNode(plan, 0, os, annotate, &counter);
  return os.str();
}

int CountOps(const PlanPtr& plan, OpKind kind) {
  int n = plan->kind() == kind ? 1 : 0;
  for (const PlanPtr& c : plan->children()) n += CountOps(c, kind);
  return n;
}

int CountTableScans(const PlanPtr& plan, const std::string& table_name) {
  int n = 0;
  if (plan->kind() == OpKind::kScan &&
      Cast<ScanOp>(*plan).table()->name() == table_name) {
    n = 1;
  }
  for (const PlanPtr& c : plan->children()) {
    n += CountTableScans(c, table_name);
  }
  return n;
}

int CountAllOps(const PlanPtr& plan) {
  int n = 1;
  for (const PlanPtr& c : plan->children()) n += CountAllOps(c);
  return n;
}

}  // namespace fusiondb
