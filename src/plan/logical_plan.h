// Logical relational algebra. Operators are immutable and shared; the
// optimizer rewrites by building new trees over existing subtrees.
//
// The operator set mirrors the paper's: Scan, Filter, Project, Join
// (inner/left/semi/cross), Aggregate with *per-aggregate masks* (Section
// III.E: each aggregate is a pair (a, m) of function and boolean mask),
// Window, MarkDistinct (Section III.F), UnionAll, Values (the "constant
// table" of rule IV.D), Sort, Limit, EnforceSingleRow (III.G) and Apply
// (correlated scalar subquery placeholder removed by decorrelation).
#ifndef FUSIONDB_PLAN_LOGICAL_PLAN_H_
#define FUSIONDB_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/check.h"
#include "expr/expr.h"
#include "plan/plan_context.h"

namespace fusiondb {

enum class OpKind : uint8_t {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kWindow,
  kMarkDistinct,
  kUnionAll,
  kValues,
  kSort,
  kLimit,
  kEnforceSingleRow,
  kApply,
  kSpool,
};

const char* OpKindName(OpKind kind);

enum class JoinType : uint8_t { kInner, kLeft, kSemi, kCross };

const char* JoinTypeName(JoinType t);

enum class AggFunc : uint8_t { kCountStar, kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc f);

/// Result type of an aggregate over an argument of type `arg`.
DataType AggResultType(AggFunc f, DataType arg);

class LogicalOp;
using PlanPtr = std::shared_ptr<const LogicalOp>;

/// Base of all logical operators.
class LogicalOp {
 public:
  LogicalOp(OpKind kind, std::vector<PlanPtr> children, Schema schema)
      : kind_(kind), children_(std::move(children)), schema_(std::move(schema)) {}
  virtual ~LogicalOp() = default;

  LogicalOp(const LogicalOp&) = delete;
  LogicalOp& operator=(const LogicalOp&) = delete;

  OpKind kind() const { return kind_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  size_t num_children() const { return children_.size(); }
  const PlanPtr& child(size_t i) const { return children_[i]; }
  const Schema& schema() const { return schema_; }

  /// Rebuilds this operator over new children, recomputing pass-through
  /// schemas. Operator parameters (predicates, aggregates, ...) are shared.
  virtual PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const = 0;

 private:
  OpKind kind_;
  std::vector<PlanPtr> children_;
  Schema schema_;
};

/// Downcast with a kind check (bugs abort; never user-triggerable).
template <typename T>
const T& Cast(const LogicalOp& op) {
  FUSIONDB_CHECK(op.kind() == T::kKind, "bad plan cast");
  return static_cast<const T&>(op);
}
template <typename T>
const T* CastPtr(const PlanPtr& op) {
  FUSIONDB_CHECK(op->kind() == T::kKind, "bad plan cast");
  return static_cast<const T*>(op.get());
}

// ---------------------------------------------------------------------------

/// Scan of a catalog table. Reads `table_columns[i]` of the table as output
/// column i of `schema` (fresh ids). `pruning_filter`, when set by the
/// optimizer, restricts which partitions are read (it is a conjunction over
/// this scan's columns that is *also* enforced by a Filter above, so the
/// scan may use it solely for partition pruning).
class ScanOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kScan;

  ScanOp(TablePtr table, std::vector<int> table_columns, Schema schema,
         ExprPtr pruning_filter = nullptr)
      : LogicalOp(kKind, {}, std::move(schema)),
        table_(std::move(table)),
        table_columns_(std::move(table_columns)),
        pruning_filter_(std::move(pruning_filter)) {
    FUSIONDB_CHECK(table_columns_.size() == this->schema().num_columns(),
                   "scan schema/column mismatch");
  }

  /// Creates a scan over the named table columns, minting fresh ids.
  static PlanPtr Make(PlanContext* ctx, TablePtr table,
                      const std::vector<std::string>& columns);

  const TablePtr& table() const { return table_; }
  const std::vector<int>& table_columns() const { return table_columns_; }
  const ExprPtr& pruning_filter() const { return pruning_filter_; }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    FUSIONDB_CHECK(children.empty(), "scan has no children");
    return std::make_shared<ScanOp>(table_, table_columns_, schema(),
                                    pruning_filter_);
  }

 private:
  TablePtr table_;
  std::vector<int> table_columns_;
  ExprPtr pruning_filter_;
};

/// Row filter; output schema equals the child's.
class FilterOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kFilter;

  FilterOp(PlanPtr input, ExprPtr predicate)
      : LogicalOp(kKind, {input}, input->schema()),
        predicate_(std::move(predicate)) {}

  const ExprPtr& predicate() const { return predicate_; }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<FilterOp>(children[0], predicate_);
  }

 private:
  ExprPtr predicate_;
};

/// One output column of a projection: out id/name plus defining expression
/// over the child's columns.
struct NamedExpr {
  ColumnId id = kInvalidColumnId;
  std::string name;
  ExprPtr expr;
};

class ProjectOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kProject;

  ProjectOp(PlanPtr input, std::vector<NamedExpr> exprs)
      : LogicalOp(kKind, {input}, SchemaOf(exprs)), exprs_(std::move(exprs)) {}

  const std::vector<NamedExpr>& exprs() const { return exprs_; }

  /// Identity projection passing through every child column (same ids).
  static PlanPtr MakeIdentity(PlanPtr input);

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<ProjectOp>(children[0], exprs_);
  }

 private:
  static Schema SchemaOf(const std::vector<NamedExpr>& exprs) {
    std::vector<ColumnInfo> cols;
    cols.reserve(exprs.size());
    for (const NamedExpr& e : exprs) {
      cols.push_back({e.id, e.name, e.expr->type()});
    }
    return Schema(std::move(cols));
  }

  std::vector<NamedExpr> exprs_;
};

/// Binary join. For kInner/kLeft/kCross the output schema is
/// left-then-right; for kSemi it is the left schema only. kCross requires a
/// TRUE condition.
class JoinOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kJoin;

  JoinOp(JoinType join_type, PlanPtr left, PlanPtr right, ExprPtr condition)
      : LogicalOp(kKind, {left, right}, SchemaOf(join_type, *left, *right)),
        join_type_(join_type),
        condition_(std::move(condition)) {}

  JoinType join_type() const { return join_type_; }
  const ExprPtr& condition() const { return condition_; }
  const PlanPtr& left() const { return child(0); }
  const PlanPtr& right() const { return child(1); }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<JoinOp>(join_type_, children[0], children[1],
                                    condition_);
  }

 private:
  static Schema SchemaOf(JoinType t, const LogicalOp& l, const LogicalOp& r) {
    std::vector<ColumnInfo> cols = l.schema().columns();
    if (t != JoinType::kSemi) {
      for (const ColumnInfo& c : r.schema().columns()) cols.push_back(c);
    }
    return Schema(std::move(cols));
  }

  JoinType join_type_;
  ExprPtr condition_;
};

/// One aggregate of a GroupBy: Athena-style (function, mask) pair (III.E).
/// `mask` may be null (TRUE). `arg` is null for COUNT(*). When `distinct`
/// is set the aggregate considers only distinct argument values; the
/// optimizer can lower this onto MarkDistinct (III.F), and the executor also
/// evaluates it directly so un-optimized plans remain runnable.
struct AggregateItem {
  ColumnId id = kInvalidColumnId;
  std::string name;
  AggFunc func = AggFunc::kCountStar;
  ExprPtr arg;   // null for COUNT(*)
  ExprPtr mask;  // null means TRUE
  bool distinct = false;

  DataType result_type() const {
    return AggResultType(func, arg == nullptr ? DataType::kInt64 : arg->type());
  }
};

/// Hash aggregation. `group_by` lists child output columns (their ids are
/// preserved in the output schema, followed by the aggregate columns).
/// An empty `group_by` is a scalar aggregate producing exactly one row.
class AggregateOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kAggregate;

  AggregateOp(PlanPtr input, std::vector<ColumnId> group_by,
              std::vector<AggregateItem> aggregates)
      : LogicalOp(kKind, {input}, SchemaOf(*input, group_by, aggregates)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)) {}

  const std::vector<ColumnId>& group_by() const { return group_by_; }
  const std::vector<AggregateItem>& aggregates() const { return aggregates_; }
  bool IsScalar() const { return group_by_.empty(); }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<AggregateOp>(children[0], group_by_, aggregates_);
  }

 private:
  static Schema SchemaOf(const LogicalOp& input,
                         const std::vector<ColumnId>& group_by,
                         const std::vector<AggregateItem>& aggs) {
    std::vector<ColumnInfo> cols;
    for (ColumnId g : group_by) {
      int idx = input.schema().IndexOf(g);
      if (idx < 0) {
        // Unresolved group column: keep a placeholder so plan construction
        // stays total; the executor reports kPlanError when binding.
        cols.push_back({g, "$unresolved", DataType::kInt64});
        continue;
      }
      cols.push_back(input.schema().column(idx));
    }
    for (const AggregateItem& a : aggs) {
      cols.push_back({a.id, a.name, a.result_type()});
    }
    return Schema(std::move(cols));
  }

  std::vector<ColumnId> group_by_;
  std::vector<AggregateItem> aggregates_;
};

/// One windowed aggregate: function over the whole partition (no frames /
/// ordering — the paper's rewrites only need unbounded partition windows).
/// Masks appear when fusion tightened an aggregate before the rewrite.
struct WindowItem {
  ColumnId id = kInvalidColumnId;
  std::string name;
  AggFunc func = AggFunc::kCountStar;
  ExprPtr arg;   // null for COUNT(*)
  ExprPtr mask;  // null means TRUE

  DataType result_type() const {
    return AggResultType(func, arg == nullptr ? DataType::kInt64 : arg->type());
  }
};

/// Windowed aggregation partitioned by `partition_by` (child columns).
/// Output schema = child schema + one column per item.
class WindowOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kWindow;

  WindowOp(PlanPtr input, std::vector<ColumnId> partition_by,
           std::vector<WindowItem> items)
      : LogicalOp(kKind, {input}, SchemaOf(*input, items)),
        partition_by_(std::move(partition_by)),
        items_(std::move(items)) {}

  const std::vector<ColumnId>& partition_by() const { return partition_by_; }
  const std::vector<WindowItem>& items() const { return items_; }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<WindowOp>(children[0], partition_by_, items_);
  }

 private:
  static Schema SchemaOf(const LogicalOp& input,
                         const std::vector<WindowItem>& items) {
    std::vector<ColumnInfo> cols = input.schema().columns();
    for (const WindowItem& w : items) {
      cols.push_back({w.id, w.name, w.result_type()});
    }
    return Schema(std::move(cols));
  }

  std::vector<ColumnId> partition_by_;
  std::vector<WindowItem> items_;
};

/// MarkDistinct (Section III.F): passes the input through and appends a
/// boolean column that is TRUE the first time each combination of
/// `distinct_columns` is seen.
class MarkDistinctOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kMarkDistinct;

  MarkDistinctOp(PlanPtr input, ColumnId marker, std::string marker_name,
                 std::vector<ColumnId> distinct_columns)
      : LogicalOp(kKind, {input}, SchemaOf(*input, marker, marker_name)),
        marker_(marker),
        distinct_columns_(std::move(distinct_columns)) {}

  ColumnId marker() const { return marker_; }
  const std::vector<ColumnId>& distinct_columns() const {
    return distinct_columns_;
  }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    int idx = schema().IndexOf(marker_);
    return std::make_shared<MarkDistinctOp>(children[0], marker_,
                                            schema().column(idx).name,
                                            distinct_columns_);
  }

 private:
  static Schema SchemaOf(const LogicalOp& input, ColumnId marker,
                         const std::string& name) {
    std::vector<ColumnInfo> cols = input.schema().columns();
    cols.push_back({marker, name, DataType::kBool});
    return Schema(std::move(cols));
  }

  ColumnId marker_;
  std::vector<ColumnId> distinct_columns_;
};

/// N-ary bag union. `input_columns[c][o]` names the column of child `c` that
/// feeds output position `o` (the paper's positional mapping "UM").
class UnionAllOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kUnionAll;

  UnionAllOp(std::vector<PlanPtr> inputs, Schema output_schema,
             std::vector<std::vector<ColumnId>> input_columns)
      : LogicalOp(kKind, std::move(inputs), std::move(output_schema)),
        input_columns_(std::move(input_columns)) {
    FUSIONDB_CHECK(input_columns_.size() == num_children(),
                   "union input mapping arity");
  }

  const std::vector<std::vector<ColumnId>>& input_columns() const {
    return input_columns_;
  }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<UnionAllOp>(std::move(children), schema(),
                                        input_columns_);
  }

 private:
  std::vector<std::vector<ColumnId>> input_columns_;
};

/// Inline constant table (VALUES). Used by rule IV.D as the tag table.
class ValuesOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kValues;

  ValuesOp(Schema schema, std::vector<std::vector<Value>> rows)
      : LogicalOp(kKind, {}, std::move(schema)), rows_(std::move(rows)) {}

  const std::vector<std::vector<Value>>& rows() const { return rows_; }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    FUSIONDB_CHECK(children.empty(), "values has no children");
    return std::make_shared<ValuesOp>(schema(), rows_);
  }

 private:
  std::vector<std::vector<Value>> rows_;
};

struct SortKey {
  ColumnId column = kInvalidColumnId;
  bool ascending = true;
};

class SortOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kSort;

  SortOp(PlanPtr input, std::vector<SortKey> keys)
      : LogicalOp(kKind, {input}, input->schema()), keys_(std::move(keys)) {}

  const std::vector<SortKey>& keys() const { return keys_; }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<SortOp>(children[0], keys_);
  }

 private:
  std::vector<SortKey> keys_;
};

class LimitOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kLimit;

  LimitOp(PlanPtr input, int64_t limit)
      : LogicalOp(kKind, {input}, input->schema()), limit_(limit) {}

  int64_t limit() const { return limit_; }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<LimitOp>(children[0], limit_);
  }

 private:
  int64_t limit_;
};

/// Asserts its input has exactly one row (errors otherwise). Mentioned in
/// Section III.G as an operator with a default Fuse implementation.
class EnforceSingleRowOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kEnforceSingleRow;

  explicit EnforceSingleRowOp(PlanPtr input)
      : LogicalOp(kKind, {input}, input->schema()) {}

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<EnforceSingleRowOp>(children[0]);
  }
};

/// Correlated scalar-aggregate subquery, pre-decorrelation:
///   children = {outer input, inner subplan}
/// where the inner subplan is a *scalar* AggregateOp whose correlation
/// predicates were lifted into `correlation` — pairs (outer column, inner
/// column of the aggregate's input) equated by the original subquery.
/// Output schema: outer schema + the aggregate's single output column.
///
/// The executor does not run Apply; the decorrelation rule (always on, it
/// predates the paper's rules per [20]) turns it into Join + GroupBy.
class ApplyOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kApply;

  ApplyOp(PlanPtr outer, PlanPtr scalar_agg,
          std::vector<std::pair<ColumnId, ColumnId>> correlation)
      : LogicalOp(kKind, {outer, scalar_agg}, SchemaOf(*outer, *scalar_agg)),
        correlation_(std::move(correlation)) {}

  const std::vector<std::pair<ColumnId, ColumnId>>& correlation() const {
    return correlation_;
  }
  const PlanPtr& outer() const { return child(0); }
  const PlanPtr& subquery() const { return child(1); }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<ApplyOp>(children[0], children[1], correlation_);
  }

 private:
  static Schema SchemaOf(const LogicalOp& outer, const LogicalOp& sub) {
    std::vector<ColumnInfo> cols = outer.schema().columns();
    FUSIONDB_CHECK(sub.schema().num_columns() == 1,
                   "apply subquery must output a single scalar column");
    cols.push_back(sub.schema().column(0));
    return Schema(std::move(cols));
  }

  std::vector<std::pair<ColumnId, ColumnId>> correlation_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_PLAN_LOGICAL_PLAN_H_
