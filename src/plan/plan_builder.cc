#include "plan/plan_builder.h"

#include "expr/simplifier.h"

namespace fusiondb {

PlanBuilder PlanBuilder::Scan(PlanContext* ctx, const TablePtr& table,
                              std::vector<std::string> columns) {
  return PlanBuilder(ctx, ScanOp::Make(ctx, table, columns));
}

PlanBuilder PlanBuilder::Values(PlanContext* ctx,
                                std::vector<std::string> names,
                                std::vector<DataType> types,
                                std::vector<std::vector<Value>> rows) {
  FUSIONDB_CHECK(names.size() == types.size(), "values arity");
  std::vector<ColumnInfo> cols;
  cols.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    cols.push_back({ctx->NextId(), names[i], types[i]});
  }
  return PlanBuilder(
      ctx, std::make_shared<ValuesOp>(Schema(std::move(cols)), std::move(rows)));
}

PlanBuilder PlanBuilder::From(PlanContext* ctx, PlanPtr plan) {
  return PlanBuilder(ctx, std::move(plan));
}

PlanBuilder PlanBuilder::UnionAll(PlanContext* ctx,
                                  std::vector<PlanBuilder> inputs) {
  FUSIONDB_CHECK(!inputs.empty(), "union needs inputs");
  size_t width = inputs[0].schema().num_columns();
  std::vector<ColumnInfo> out_cols;
  out_cols.reserve(width);
  for (const ColumnInfo& c : inputs[0].schema().columns()) {
    out_cols.push_back({ctx->NextId(), c.name, c.type});
  }
  std::vector<PlanPtr> children;
  std::vector<std::vector<ColumnId>> input_columns;
  for (const PlanBuilder& b : inputs) {
    FUSIONDB_CHECK(b.schema().num_columns() == width, "union width mismatch");
    std::vector<ColumnId> ids;
    ids.reserve(width);
    for (const ColumnInfo& c : b.schema().columns()) ids.push_back(c.id);
    children.push_back(b.Build());
    input_columns.push_back(std::move(ids));
  }
  return PlanBuilder(ctx, std::make_shared<UnionAllOp>(
                              std::move(children), Schema(std::move(out_cols)),
                              std::move(input_columns)));
}

ColumnInfo PlanBuilder::Col(const std::string& name) const {
  Result<ColumnInfo> r = plan_->schema().FindByName(name);
  FUSIONDB_CHECK(r.ok(), ("PlanBuilder: " + r.status().ToString()).c_str());
  return *r;
}

ExprPtr PlanBuilder::Ref(const std::string& name) const {
  ColumnInfo c = Col(name);
  return Expr::MakeColumnRef(c.id, c.type);
}

PlanBuilder& PlanBuilder::Filter(ExprPtr predicate) {
  plan_ = std::make_shared<FilterOp>(plan_, std::move(predicate));
  return *this;
}

PlanBuilder& PlanBuilder::Project(
    std::vector<std::pair<std::string, ExprPtr>> exprs) {
  std::vector<NamedExpr> named;
  named.reserve(exprs.size());
  for (auto& [name, expr] : exprs) {
    named.push_back({ctx_->NextId(), name, std::move(expr)});
  }
  plan_ = std::make_shared<ProjectOp>(plan_, std::move(named));
  return *this;
}

PlanBuilder& PlanBuilder::Select(std::vector<std::string> columns) {
  std::vector<NamedExpr> named;
  named.reserve(columns.size());
  for (const std::string& name : columns) {
    ColumnInfo c = Col(name);
    named.push_back({c.id, c.name, Expr::MakeColumnRef(c.id, c.type)});
  }
  plan_ = std::make_shared<ProjectOp>(plan_, std::move(named));
  return *this;
}

PlanBuilder& PlanBuilder::ProjectPlus(
    std::vector<std::pair<std::string, ExprPtr>> extra) {
  std::vector<NamedExpr> named;
  named.reserve(schema().num_columns() + extra.size());
  for (const ColumnInfo& c : schema().columns()) {
    named.push_back({c.id, c.name, Expr::MakeColumnRef(c.id, c.type)});
  }
  for (auto& [name, expr] : extra) {
    named.push_back({ctx_->NextId(), name, std::move(expr)});
  }
  plan_ = std::make_shared<ProjectOp>(plan_, std::move(named));
  return *this;
}

PlanBuilder& PlanBuilder::Join(JoinType type, const PlanBuilder& right,
                               ExprPtr condition) {
  if (condition == nullptr) {
    condition = Expr::MakeLiteral(Value::Bool(true));
  }
  plan_ = std::make_shared<JoinOp>(type, plan_, right.Build(),
                                   std::move(condition));
  return *this;
}

PlanBuilder& PlanBuilder::JoinOn(
    JoinType type, const PlanBuilder& right,
    const std::vector<std::pair<std::string, std::string>>& eq,
    ExprPtr residual) {
  std::vector<ExprPtr> conjuncts;
  for (const auto& [l, r] : eq) {
    ColumnInfo lc = Col(l);
    ColumnInfo rc = right.Col(r);
    conjuncts.push_back(
        Expr::MakeCompare(CompareOp::kEq, Expr::MakeColumnRef(lc.id, lc.type),
                          Expr::MakeColumnRef(rc.id, rc.type)));
  }
  if (residual != nullptr) conjuncts.push_back(std::move(residual));
  return Join(type, right, CombineConjuncts(conjuncts));
}

PlanBuilder& PlanBuilder::CrossJoin(const PlanBuilder& right) {
  return Join(JoinType::kCross, right, Expr::MakeLiteral(Value::Bool(true)));
}

PlanBuilder& PlanBuilder::Aggregate(const std::vector<std::string>& group_by,
                                    std::vector<AggSpec> aggs) {
  std::vector<ColumnId> group_ids;
  group_ids.reserve(group_by.size());
  for (const std::string& g : group_by) group_ids.push_back(Col(g).id);
  std::vector<AggregateItem> items;
  items.reserve(aggs.size());
  for (AggSpec& a : aggs) {
    items.push_back({ctx_->NextId(), std::move(a.name), a.func, std::move(a.arg),
                     std::move(a.mask), a.distinct});
  }
  plan_ = std::make_shared<AggregateOp>(plan_, std::move(group_ids),
                                        std::move(items));
  return *this;
}

PlanBuilder& PlanBuilder::Window(const std::vector<std::string>& partition_by,
                                 std::vector<AggSpec> items) {
  std::vector<ColumnId> part_ids;
  part_ids.reserve(partition_by.size());
  for (const std::string& p : partition_by) part_ids.push_back(Col(p).id);
  std::vector<WindowItem> wins;
  wins.reserve(items.size());
  for (AggSpec& a : items) {
    FUSIONDB_CHECK(!a.distinct, "distinct window aggregates unsupported");
    wins.push_back(
        {ctx_->NextId(), std::move(a.name), a.func, std::move(a.arg),
         std::move(a.mask)});
  }
  plan_ = std::make_shared<WindowOp>(plan_, std::move(part_ids),
                                     std::move(wins));
  return *this;
}

PlanBuilder& PlanBuilder::MarkDistinct(const std::string& marker_name,
                                       const std::vector<std::string>& columns) {
  std::vector<ColumnId> ids;
  ids.reserve(columns.size());
  for (const std::string& c : columns) ids.push_back(Col(c).id);
  plan_ = std::make_shared<MarkDistinctOp>(plan_, ctx_->NextId(), marker_name,
                                           std::move(ids));
  return *this;
}

PlanBuilder& PlanBuilder::Sort(
    const std::vector<std::pair<std::string, bool>>& keys) {
  std::vector<SortKey> sort_keys;
  sort_keys.reserve(keys.size());
  for (const auto& [name, asc] : keys) {
    sort_keys.push_back({Col(name).id, asc});
  }
  plan_ = std::make_shared<SortOp>(plan_, std::move(sort_keys));
  return *this;
}

PlanBuilder& PlanBuilder::Limit(int64_t n) {
  plan_ = std::make_shared<LimitOp>(plan_, n);
  return *this;
}

PlanBuilder& PlanBuilder::EnforceSingleRow() {
  plan_ = std::make_shared<EnforceSingleRowOp>(plan_);
  return *this;
}

PlanBuilder& PlanBuilder::Apply(
    const PlanBuilder& scalar_subquery,
    const std::vector<std::pair<std::string, ColumnId>>& correlation) {
  std::vector<std::pair<ColumnId, ColumnId>> corr;
  corr.reserve(correlation.size());
  for (const auto& [outer_name, inner_id] : correlation) {
    corr.push_back({Col(outer_name).id, inner_id});
  }
  plan_ = std::make_shared<ApplyOp>(plan_, scalar_subquery.Build(),
                                    std::move(corr));
  return *this;
}

}  // namespace fusiondb
