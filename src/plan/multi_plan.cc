#include "plan/multi_plan.h"

#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "plan/spool.h"

namespace fusiondb {

namespace {

/// One renumbering walk: the accumulated old->new map (ids are unique
/// within the source plan's context, so a single map covers the whole
/// tree) and a per-node memo that keeps shared subtrees shared.
struct RenumberState {
  PlanContext* ctx;
  ColumnMap map;
  std::unordered_map<const LogicalOp*, PlanPtr> memo;

  ColumnId Fresh(ColumnId old_id) {
    ColumnId id = ctx->NextId();
    map[old_id] = id;
    return id;
  }
};

/// ApplyMap for nullable operator parameters (pruning filters, aggregate
/// args and masks use nullptr for "absent"/"TRUE").
ExprPtr MapExpr(const ColumnMap& m, const ExprPtr& expr) {
  return expr == nullptr ? nullptr : ApplyMap(m, expr);
}

/// New ColumnInfos for `schema` with fresh ids registered in the map.
std::vector<ColumnInfo> FreshColumns(const Schema& schema, RenumberState* st) {
  std::vector<ColumnInfo> cols;
  cols.reserve(schema.num_columns());
  for (const ColumnInfo& c : schema.columns()) {
    cols.push_back({st->Fresh(c.id), c.name, c.type});
  }
  return cols;
}

PlanPtr RenumberNode(const PlanPtr& plan, RenumberState* st) {
  auto it = st->memo.find(plan.get());
  if (it != st->memo.end()) return it->second;

  // Children first: every reference a node's parameters hold points at a
  // column defined at or below its children (or, for leaves, at the node's
  // own freshly minted schema), so by the time parameters are remapped the
  // map already covers them.
  std::vector<PlanPtr> children;
  children.reserve(plan->num_children());
  for (const PlanPtr& c : plan->children()) {
    children.push_back(RenumberNode(c, st));
  }

  PlanPtr out;
  switch (plan->kind()) {
    case OpKind::kScan: {
      const auto& scan = Cast<ScanOp>(*plan);
      Schema schema(FreshColumns(scan.schema(), st));
      // The pruning filter references the scan's own output columns, so it
      // is remapped after those ids are minted.
      out = std::make_shared<ScanOp>(scan.table(), scan.table_columns(),
                                     std::move(schema),
                                     MapExpr(st->map, scan.pruning_filter()));
      break;
    }
    case OpKind::kValues: {
      const auto& values = Cast<ValuesOp>(*plan);
      out = std::make_shared<ValuesOp>(Schema(FreshColumns(values.schema(), st)),
                                       values.rows());
      break;
    }
    case OpKind::kFilter: {
      const auto& filter = Cast<FilterOp>(*plan);
      out = std::make_shared<FilterOp>(children[0],
                                       ApplyMap(st->map, filter.predicate()));
      break;
    }
    case OpKind::kProject: {
      const auto& project = Cast<ProjectOp>(*plan);
      std::vector<NamedExpr> exprs;
      exprs.reserve(project.exprs().size());
      for (const NamedExpr& e : project.exprs()) {
        ExprPtr expr = ApplyMap(st->map, e.expr);  // refs child ids: map first
        exprs.push_back({st->Fresh(e.id), e.name, std::move(expr)});
      }
      out = std::make_shared<ProjectOp>(children[0], std::move(exprs));
      break;
    }
    case OpKind::kJoin: {
      const auto& join = Cast<JoinOp>(*plan);
      out = std::make_shared<JoinOp>(join.join_type(), children[0], children[1],
                                     ApplyMap(st->map, join.condition()));
      break;
    }
    case OpKind::kAggregate: {
      const auto& agg = Cast<AggregateOp>(*plan);
      std::vector<ColumnId> group_by;
      group_by.reserve(agg.group_by().size());
      for (ColumnId g : agg.group_by()) {
        group_by.push_back(ApplyMap(st->map, g));
      }
      std::vector<AggregateItem> items;
      items.reserve(agg.aggregates().size());
      for (const AggregateItem& a : agg.aggregates()) {
        AggregateItem item = a;
        item.arg = MapExpr(st->map, a.arg);
        item.mask = MapExpr(st->map, a.mask);
        item.id = st->Fresh(a.id);
        items.push_back(std::move(item));
      }
      out = std::make_shared<AggregateOp>(children[0], std::move(group_by),
                                          std::move(items));
      break;
    }
    case OpKind::kWindow: {
      const auto& window = Cast<WindowOp>(*plan);
      std::vector<ColumnId> partition_by;
      partition_by.reserve(window.partition_by().size());
      for (ColumnId p : window.partition_by()) {
        partition_by.push_back(ApplyMap(st->map, p));
      }
      std::vector<WindowItem> items;
      items.reserve(window.items().size());
      for (const WindowItem& w : window.items()) {
        WindowItem item = w;
        item.arg = MapExpr(st->map, w.arg);
        item.mask = MapExpr(st->map, w.mask);
        item.id = st->Fresh(w.id);
        items.push_back(std::move(item));
      }
      out = std::make_shared<WindowOp>(children[0], std::move(partition_by),
                                       std::move(items));
      break;
    }
    case OpKind::kMarkDistinct: {
      const auto& mark = Cast<MarkDistinctOp>(*plan);
      std::vector<ColumnId> distinct;
      distinct.reserve(mark.distinct_columns().size());
      for (ColumnId d : mark.distinct_columns()) {
        distinct.push_back(ApplyMap(st->map, d));
      }
      int idx = mark.schema().IndexOf(mark.marker());
      FUSIONDB_CHECK(idx >= 0, "mark-distinct marker missing from schema");
      out = std::make_shared<MarkDistinctOp>(
          children[0], st->Fresh(mark.marker()), mark.schema().column(idx).name,
          std::move(distinct));
      break;
    }
    case OpKind::kUnionAll: {
      const auto& u = Cast<UnionAllOp>(*plan);
      std::vector<std::vector<ColumnId>> input_columns;
      input_columns.reserve(u.input_columns().size());
      for (const std::vector<ColumnId>& per_child : u.input_columns()) {
        std::vector<ColumnId> mapped;
        mapped.reserve(per_child.size());
        for (ColumnId c : per_child) mapped.push_back(ApplyMap(st->map, c));
        input_columns.push_back(std::move(mapped));
      }
      out = std::make_shared<UnionAllOp>(std::move(children),
                                         Schema(FreshColumns(u.schema(), st)),
                                         std::move(input_columns));
      break;
    }
    case OpKind::kSort: {
      const auto& sort = Cast<SortOp>(*plan);
      std::vector<SortKey> keys;
      keys.reserve(sort.keys().size());
      for (const SortKey& k : sort.keys()) {
        keys.push_back({ApplyMap(st->map, k.column), k.ascending});
      }
      out = std::make_shared<SortOp>(children[0], std::move(keys));
      break;
    }
    case OpKind::kApply: {
      const auto& apply = Cast<ApplyOp>(*plan);
      std::vector<std::pair<ColumnId, ColumnId>> correlation;
      correlation.reserve(apply.correlation().size());
      for (const auto& [outer, inner] : apply.correlation()) {
        correlation.push_back(
            {ApplyMap(st->map, outer), ApplyMap(st->map, inner)});
      }
      out = std::make_shared<ApplyOp>(children[0], children[1],
                                      std::move(correlation));
      break;
    }
    // Pass-through operators: the schema is the child's and every parameter
    // is id-free, so CloneWithChildren over renumbered children suffices.
    case OpKind::kLimit:
    case OpKind::kEnforceSingleRow:
    case OpKind::kSpool:
      out = plan->CloneWithChildren(std::move(children));
      break;
  }
  FUSIONDB_CHECK(out != nullptr, "renumber: unhandled operator kind");
  st->memo.emplace(plan.get(), out);
  return out;
}

}  // namespace

RenumberedPlan RenumberPlan(const PlanPtr& plan, PlanContext* ctx) {
  RenumberState st{ctx, {}, {}};
  PlanPtr out = RenumberNode(plan, &st);
  return {std::move(out), std::move(st.map)};
}

}  // namespace fusiondb
