// Spool: the materialization-based alternative to fusion.
//
// The paper positions spooling [21] as the general way to handle common
// subexpressions — evaluate once, materialize, read from every consumer —
// and argues its rewrites beat spooling where they apply because spooling
// "not only write[s] those intermediates, but need[s] to read them multiple
// times". FusionDB implements spooling so that claim is measurable
// (bench/spool_vs_fusion).
//
// A SpoolOp tags a subplan with a spool id. All SpoolOps sharing an id must
// share the *same child subtree* (plans are shared_ptr trees, so a DAG is
// representable); at execution the first consumer materializes the child
// once and every consumer streams from the shared buffer.
#ifndef FUSIONDB_PLAN_SPOOL_H_
#define FUSIONDB_PLAN_SPOOL_H_

#include "plan/logical_plan.h"

namespace fusiondb {

class SpoolOp final : public LogicalOp {
 public:
  static constexpr OpKind kKind = OpKind::kSpool;

  SpoolOp(int32_t spool_id, PlanPtr input)
      : LogicalOp(kKind, {input}, input->schema()), spool_id_(spool_id) {}

  int32_t spool_id() const { return spool_id_; }

  PlanPtr CloneWithChildren(std::vector<PlanPtr> children) const override {
    return std::make_shared<SpoolOp>(spool_id_, children[0]);
  }

 private:
  int32_t spool_id_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_PLAN_SPOOL_H_
