#include "plan/logical_plan.h"

namespace fusiondb {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "Scan";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kProject:
      return "Project";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kAggregate:
      return "Aggregate";
    case OpKind::kWindow:
      return "Window";
    case OpKind::kMarkDistinct:
      return "MarkDistinct";
    case OpKind::kUnionAll:
      return "UnionAll";
    case OpKind::kValues:
      return "Values";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kLimit:
      return "Limit";
    case OpKind::kEnforceSingleRow:
      return "EnforceSingleRow";
    case OpKind::kApply:
      return "Apply";
    case OpKind::kSpool:
      return "Spool";
  }
  return "Unknown";
}

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "Inner";
    case JoinType::kLeft:
      return "Left";
    case JoinType::kSemi:
      return "Semi";
    case JoinType::kCross:
      return "Cross";
  }
  return "Unknown";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "unknown";
}

DataType AggResultType(AggFunc f, DataType arg) {
  switch (f) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kSum:
      return arg == DataType::kFloat64 ? DataType::kFloat64 : DataType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg;
    case AggFunc::kAvg:
      return DataType::kFloat64;
  }
  return arg;
}

PlanPtr ScanOp::Make(PlanContext* ctx, TablePtr table,
                     const std::vector<std::string>& columns) {
  std::vector<int> table_columns;
  std::vector<ColumnInfo> cols;
  table_columns.reserve(columns.size());
  cols.reserve(columns.size());
  for (const std::string& name : columns) {
    int idx = table->ColumnIndex(name);
    FUSIONDB_CHECK(idx >= 0, ("scan of unknown column " + name).c_str());
    table_columns.push_back(idx);
    cols.push_back({ctx->NextId(), name, table->columns()[idx].type});
  }
  return std::make_shared<ScanOp>(std::move(table), std::move(table_columns),
                                  Schema(std::move(cols)));
}

PlanPtr ProjectOp::MakeIdentity(PlanPtr input) {
  std::vector<NamedExpr> exprs;
  exprs.reserve(input->schema().num_columns());
  for (const ColumnInfo& c : input->schema().columns()) {
    exprs.push_back({c.id, c.name, Expr::MakeColumnRef(c.id, c.type)});
  }
  return std::make_shared<ProjectOp>(std::move(input), std::move(exprs));
}

}  // namespace fusiondb
