#include "plan/plan_fingerprint.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "plan/spool.h"

namespace fusiondb {

namespace {

/// ColumnId -> structural ordinal. Ordinals are handed out in a
/// deterministic walk, so equal plans (up to renumbering) build equal maps.
class ColumnCanon {
 public:
  int Define(ColumnId id) {
    auto [it, inserted] = map_.emplace(id, next_);
    if (inserted) ++next_;
    return it->second;
  }

  /// Ordinal for a referenced column. References to columns no pass has
  /// defined (unbound plans) still canonicalize: the first reference in
  /// serialization order defines the ordinal.
  int Resolve(ColumnId id) { return Define(id); }

 private:
  std::unordered_map<ColumnId, int> map_;
  int next_ = 0;
};

/// Pass 1: walk children-first, left-to-right, defining every column each
/// operator *introduces* in schema order. After this pass every column a
/// parent can reference has a structural ordinal.
void AssignDefinitions(const LogicalOp& op, ColumnCanon* canon) {
  for (const PlanPtr& c : op.children()) AssignDefinitions(*c, canon);
  switch (op.kind()) {
    case OpKind::kScan:
    case OpKind::kValues:
      for (const ColumnInfo& c : op.schema().columns()) canon->Define(c.id);
      break;
    case OpKind::kProject:
      for (const NamedExpr& e : Cast<ProjectOp>(op).exprs()) {
        canon->Define(e.id);
      }
      break;
    case OpKind::kAggregate:
      for (const AggregateItem& a : Cast<AggregateOp>(op).aggregates()) {
        canon->Define(a.id);
      }
      break;
    case OpKind::kWindow:
      for (const WindowItem& w : Cast<WindowOp>(op).items()) {
        canon->Define(w.id);
      }
      break;
    case OpKind::kMarkDistinct:
      canon->Define(Cast<MarkDistinctOp>(op).marker());
      break;
    case OpKind::kUnionAll:
      for (const ColumnInfo& c : op.schema().columns()) canon->Define(c.id);
      break;
    case OpKind::kFilter:
    case OpKind::kJoin:
    case OpKind::kSort:
    case OpKind::kLimit:
    case OpKind::kEnforceSingleRow:
    case OpKind::kApply:
    case OpKind::kSpool:
      break;  // pass-through schemas introduce no columns
  }
}

std::string CanonExpr(const ExprPtr& e, ColumnCanon* canon);

std::string CanonExprOrNull(const ExprPtr& e, ColumnCanon* canon) {
  return e == nullptr ? std::string("_") : CanonExpr(e, canon);
}

/// Canonical expression serialization with ordinal column references.
/// Mirrors ExprFingerprint's canonicalization (sorted AND/OR operands,
/// oriented commutative comparisons) so renumbering-stable fingerprints keep
/// the same equivalences.
std::string CanonExpr(const ExprPtr& e, ColumnCanon* canon) {
  std::ostringstream os;
  switch (e->kind()) {
    case ExprKind::kColumnRef:
      os << "c" << canon->Resolve(e->column_id());
      break;
    case ExprKind::kLiteral:
      os << "lit" << static_cast<int>(e->type()) << ":"
         << e->literal().ToString();
      break;
    case ExprKind::kCompare: {
      std::string l = CanonExpr(e->child(0), canon);
      std::string r = CanonExpr(e->child(1), canon);
      CompareOp op = e->compare_op();
      if (r < l) {
        std::swap(l, r);
        switch (op) {
          case CompareOp::kLt:
            op = CompareOp::kGt;
            break;
          case CompareOp::kLe:
            op = CompareOp::kGe;
            break;
          case CompareOp::kGt:
            op = CompareOp::kLt;
            break;
          case CompareOp::kGe:
            op = CompareOp::kLe;
            break;
          case CompareOp::kEq:
          case CompareOp::kNe:
            break;
        }
      }
      os << "cmp" << static_cast<int>(op) << "(" << l << "," << r << ")";
      break;
    }
    case ExprKind::kArith: {
      std::string l = CanonExpr(e->child(0), canon);
      std::string r = CanonExpr(e->child(1), canon);
      ArithOp op = e->arith_op();
      if ((op == ArithOp::kAdd || op == ArithOp::kMul) && r < l) {
        std::swap(l, r);
      }
      os << "ari" << static_cast<int>(op) << "(" << l << "," << r << ")";
      break;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(e->children().size());
      for (const ExprPtr& c : e->children()) {
        parts.push_back(CanonExpr(c, canon));
      }
      std::sort(parts.begin(), parts.end());
      parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
      os << (e->kind() == ExprKind::kAnd ? "and(" : "or(");
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) os << ",";
        os << parts[i];
      }
      os << ")";
      break;
    }
    case ExprKind::kNot:
      os << "not(" << CanonExpr(e->child(0), canon) << ")";
      break;
    case ExprKind::kIsNull:
      os << "isnull(" << CanonExpr(e->child(0), canon) << ")";
      break;
    case ExprKind::kCase: {
      os << "case(";
      for (size_t i = 0; i < e->children().size(); ++i) {
        if (i > 0) os << ",";
        os << CanonExpr(e->child(i), canon);
      }
      os << ")";
      break;
    }
    case ExprKind::kInList: {
      os << "in(" << CanonExpr(e->child(0), canon) << ";";
      std::vector<std::string> parts;
      for (size_t i = 1; i < e->children().size(); ++i) {
        parts.push_back(CanonExpr(e->child(i), canon));
      }
      std::sort(parts.begin(), parts.end());
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) os << ",";
        os << parts[i];
      }
      os << ")";
      break;
    }
  }
  return os.str();
}

/// Pass 2: pre-order serialization of every operator's kind + parameters
/// with ordinal column references, children appended in parentheses.
void Serialize(const LogicalOp& op, ColumnCanon* canon, std::ostringstream* os) {
  switch (op.kind()) {
    case OpKind::kScan: {
      const auto& scan = Cast<ScanOp>(op);
      *os << "Scan{" << scan.table()->name() << ";";
      for (size_t i = 0; i < scan.table_columns().size(); ++i) {
        if (i > 0) *os << ",";
        *os << scan.table_columns()[i] << "=c"
            << canon->Resolve(scan.schema().column(i).id);
      }
      if (scan.pruning_filter() != nullptr) {
        *os << ";prune=" << CanonExpr(scan.pruning_filter(), canon);
      }
      *os << "}";
      break;
    }
    case OpKind::kFilter:
      *os << "Filter{" << CanonExpr(Cast<FilterOp>(op).predicate(), canon)
          << "}";
      break;
    case OpKind::kProject: {
      *os << "Project{";
      bool first = true;
      for (const NamedExpr& e : Cast<ProjectOp>(op).exprs()) {
        if (!first) *os << ",";
        first = false;
        *os << "c" << canon->Resolve(e.id) << "=" << CanonExpr(e.expr, canon);
      }
      *os << "}";
      break;
    }
    case OpKind::kJoin: {
      const auto& join = Cast<JoinOp>(op);
      *os << "Join{" << JoinTypeName(join.join_type()) << ";"
          << CanonExprOrNull(join.condition(), canon) << "}";
      break;
    }
    case OpKind::kAggregate: {
      const auto& agg = Cast<AggregateOp>(op);
      *os << "Agg{g=";
      for (size_t i = 0; i < agg.group_by().size(); ++i) {
        if (i > 0) *os << ",";
        *os << "c" << canon->Resolve(agg.group_by()[i]);
      }
      *os << ";";
      bool first = true;
      for (const AggregateItem& a : agg.aggregates()) {
        if (!first) *os << ",";
        first = false;
        *os << "c" << canon->Resolve(a.id) << "=" << AggFuncName(a.func)
            << (a.distinct ? "!d" : "") << "("
            << CanonExprOrNull(a.arg, canon) << "|"
            << CanonExprOrNull(a.mask, canon) << ")";
      }
      *os << "}";
      break;
    }
    case OpKind::kWindow: {
      const auto& win = Cast<WindowOp>(op);
      *os << "Window{p=";
      for (size_t i = 0; i < win.partition_by().size(); ++i) {
        if (i > 0) *os << ",";
        *os << "c" << canon->Resolve(win.partition_by()[i]);
      }
      *os << ";";
      bool first = true;
      for (const WindowItem& w : win.items()) {
        if (!first) *os << ",";
        first = false;
        *os << "c" << canon->Resolve(w.id) << "=" << AggFuncName(w.func)
            << "(" << CanonExprOrNull(w.arg, canon) << "|"
            << CanonExprOrNull(w.mask, canon) << ")";
      }
      *os << "}";
      break;
    }
    case OpKind::kMarkDistinct: {
      const auto& md = Cast<MarkDistinctOp>(op);
      *os << "MarkDistinct{c" << canon->Resolve(md.marker()) << ";";
      for (size_t i = 0; i < md.distinct_columns().size(); ++i) {
        if (i > 0) *os << ",";
        *os << "c" << canon->Resolve(md.distinct_columns()[i]);
      }
      *os << "}";
      break;
    }
    case OpKind::kUnionAll: {
      const auto& u = Cast<UnionAllOp>(op);
      *os << "UnionAll{";
      for (size_t c = 0; c < u.input_columns().size(); ++c) {
        if (c > 0) *os << ";";
        for (size_t o = 0; o < u.input_columns()[c].size(); ++o) {
          if (o > 0) *os << ",";
          *os << "c" << canon->Resolve(u.input_columns()[c][o]);
        }
      }
      *os << "->";
      for (size_t i = 0; i < u.schema().num_columns(); ++i) {
        if (i > 0) *os << ",";
        *os << "c" << canon->Resolve(u.schema().column(i).id);
      }
      *os << "}";
      break;
    }
    case OpKind::kValues: {
      const auto& v = Cast<ValuesOp>(op);
      *os << "Values{";
      for (size_t i = 0; i < v.schema().num_columns(); ++i) {
        if (i > 0) *os << ",";
        *os << "c" << canon->Resolve(v.schema().column(i).id) << ":"
            << static_cast<int>(v.schema().column(i).type);
      }
      *os << ";";
      for (size_t r = 0; r < v.rows().size(); ++r) {
        if (r > 0) *os << "|";
        for (size_t c = 0; c < v.rows()[r].size(); ++c) {
          if (c > 0) *os << ",";
          *os << v.rows()[r][c].ToString();
        }
      }
      *os << "}";
      break;
    }
    case OpKind::kSort: {
      *os << "Sort{";
      bool first = true;
      for (const SortKey& k : Cast<SortOp>(op).keys()) {
        if (!first) *os << ",";
        first = false;
        *os << "c" << canon->Resolve(k.column) << (k.ascending ? "+" : "-");
      }
      *os << "}";
      break;
    }
    case OpKind::kLimit:
      *os << "Limit{" << Cast<LimitOp>(op).limit() << "}";
      break;
    case OpKind::kEnforceSingleRow:
      *os << "Single{}";
      break;
    case OpKind::kApply: {
      *os << "Apply{";
      bool first = true;
      for (const auto& [outer, inner] : Cast<ApplyOp>(op).correlation()) {
        if (!first) *os << ",";
        first = false;
        *os << "c" << canon->Resolve(outer) << "=c" << canon->Resolve(inner);
      }
      *os << "}";
      break;
    }
    case OpKind::kSpool:
      // Spool ids are allocation order, not structure: two optimizer runs
      // over the same query may number them differently. Omit them.
      *os << "Spool{}";
      break;
  }
  *os << "(";
  bool first = true;
  for (const PlanPtr& c : op.children()) {
    if (!first) *os << ";";
    first = false;
    Serialize(*c, canon, os);
  }
  *os << ")";
}

}  // namespace

std::string PlanCanonicalString(const PlanPtr& plan) {
  FUSIONDB_CHECK(plan != nullptr, "fingerprint of null plan");
  ColumnCanon canon;
  AssignDefinitions(*plan, &canon);
  std::ostringstream os;
  Serialize(*plan, &canon, &os);
  return os.str();
}

uint64_t PlanFingerprint(const PlanPtr& plan) {
  std::string s = PlanCanonicalString(plan);
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  return hash;
}

std::string FingerprintToString(uint64_t fingerprint) {
  static const char* kHex = "0123456789abcdef";
  std::string out = "fp:";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kHex[(fingerprint >> shift) & 0xF];
  }
  return out;
}

}  // namespace fusiondb
