// PlanBuilder: a fluent, name-based API for constructing logical plans.
// This is the public query-construction surface (FusionDB has no SQL parser;
// the paper's techniques are entirely post-parse, so queries are expressed
// directly in the algebra).
#ifndef FUSIONDB_PLAN_PLAN_BUILDER_H_
#define FUSIONDB_PLAN_PLAN_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// Specification of one aggregate (or window) function for the builder.
struct AggSpec {
  std::string name;
  AggFunc func = AggFunc::kCountStar;
  ExprPtr arg;   // null for COUNT(*)
  ExprPtr mask;  // null for TRUE
  bool distinct = false;
};

/// Builder over an under-construction plan. Columns are addressed by name
/// against the current output schema; names must be unambiguous (TPC-DS
/// column names are globally unique, which keeps query code readable).
class PlanBuilder {
 public:
  /// Starts from a table scan reading the named columns.
  static PlanBuilder Scan(PlanContext* ctx, const TablePtr& table,
                          std::vector<std::string> columns);

  /// Starts from an inline constant table.
  static PlanBuilder Values(PlanContext* ctx, std::vector<std::string> names,
                            std::vector<DataType> types,
                            std::vector<std::vector<Value>> rows);

  /// Wraps an existing plan.
  static PlanBuilder From(PlanContext* ctx, PlanPtr plan);

  /// Bag-union of several builders (positional, column count must match);
  /// output names/types follow the first input.
  static PlanBuilder UnionAll(PlanContext* ctx, std::vector<PlanBuilder> inputs);

  /// Column metadata by name (aborts if absent — query-building bugs).
  ColumnInfo Col(const std::string& name) const;

  /// Column-reference expression by name.
  ExprPtr Ref(const std::string& name) const;

  PlanBuilder& Filter(ExprPtr predicate);

  /// Replaces the output with the given named expressions (fresh ids).
  PlanBuilder& Project(std::vector<std::pair<std::string, ExprPtr>> exprs);

  /// Keeps only the named pass-through columns (ids preserved).
  PlanBuilder& Select(std::vector<std::string> columns);

  /// Appends computed columns after all existing ones.
  PlanBuilder& ProjectPlus(std::vector<std::pair<std::string, ExprPtr>> extra);

  PlanBuilder& Join(JoinType type, const PlanBuilder& right, ExprPtr condition);

  /// Equi-join on name pairs (left name, right name) plus optional residual.
  PlanBuilder& JoinOn(JoinType type, const PlanBuilder& right,
                      const std::vector<std::pair<std::string, std::string>>& eq,
                      ExprPtr residual = nullptr);

  PlanBuilder& CrossJoin(const PlanBuilder& right);

  PlanBuilder& Aggregate(const std::vector<std::string>& group_by,
                         std::vector<AggSpec> aggs);

  PlanBuilder& Window(const std::vector<std::string>& partition_by,
                      std::vector<AggSpec> items);

  PlanBuilder& MarkDistinct(const std::string& marker_name,
                            const std::vector<std::string>& columns);

  PlanBuilder& Sort(const std::vector<std::pair<std::string, bool>>& keys);
  PlanBuilder& Limit(int64_t n);
  PlanBuilder& EnforceSingleRow();

  /// Correlated scalar subquery: appends the subquery's single aggregate
  /// column. `correlation` pairs an outer column (by name, resolved here)
  /// with an inner column id of the subquery aggregate's input.
  PlanBuilder& Apply(const PlanBuilder& scalar_subquery,
                     const std::vector<std::pair<std::string, ColumnId>>&
                         correlation);

  const Schema& schema() const { return plan_->schema(); }
  const PlanPtr& Build() const { return plan_; }
  PlanContext* context() const { return ctx_; }

 private:
  PlanBuilder(PlanContext* ctx, PlanPtr plan)
      : ctx_(ctx), plan_(std::move(plan)) {}

  PlanContext* ctx_;
  PlanPtr plan_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_PLAN_PLAN_BUILDER_H_
