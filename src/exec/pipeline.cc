// CompiledPipeline: the push-based fused execution of one
// scan→filter→project(→aggregate) chain. See exec/pipeline.h and
// DESIGN.md §13 for the compilation model; the invariant maintained
// throughout this file is BYTE-IDENTITY with the interpreted operators —
// same rendered rows in the same order, same metrics, same memory
// accounting — for any optimizer mode and any thread count. Every loop here
// mirrors an interpreted discipline: filters chain selection vectors the
// way FilterExec gathers, outputs evaluate through the same typed kernels
// ProjectExec binds, and the aggregate sink reuses the exact accumulate /
// deal / merge order of AggregateExec (exec/agg_build.h).
#include "exec/pipeline.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/agg_build.h"
#include "exec/morsel_source.h"
#include "exec/operators_internal.h"
#include "expr/column_map.h"
#include "expr/evaluator.h"

namespace fusiondb::internal {

namespace {

std::string LowerKindName(OpKind kind) {
  std::string s = OpKindName(kind);
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

/// Positions (indexes into `base`) of the rows of `subset`. Both are
/// ascending and subset ⊆ base, so one linear merge converts a selection in
/// morsel coordinates into the dense coordinates of the filtered rows —
/// exactly the mask selection MaskSet::Evaluate would produce over the
/// gathered chunk the interpreted path materializes.
SelVector PositionsIn(const SelVector& subset, const SelVector& base) {
  SelVector out;
  out.reserve(subset.size());
  size_t bi = 0;
  for (uint32_t v : subset) {
    while (base[bi] != v) ++bi;
    out.push_back(static_cast<uint32_t>(bi));
    ++bi;
  }
  return out;
}

/// Everything TryCompilePipeline derives from the chain, handed to the
/// operator. All expressions are composed down to (and bound against) the
/// scan schema, so the pipeline evaluates them straight off decoded morsels.
struct PipelineSpec {
  std::vector<BoundExpr> filters;  // chain order, bottom-most filter first

  // Non-aggregate chains: one output expression per root schema column.
  std::vector<BoundExpr> outputs;
  bool identity = false;  // outputs are the scan's columns in scan order

  // Aggregate chains (the aggregate is always the chain root).
  bool aggregate = false;
  bool scalar = false;
  std::vector<BoundExpr> group_exprs;
  BoundAggs baggs;
  // Rewritten AggregateItems the BoundAggs point into (vector moves keep
  // element addresses, the WindowExec item_storage pattern).
  std::vector<AggregateItem> item_storage;
};

/// One morsel's aggregate input, evaluated to dense columns: what the
/// interpreted path would see as the filtered+projected chunk, without ever
/// building that chunk.
struct PreparedAggChunk {
  size_t rows = 0;
  std::vector<Column> group_cols;
  std::vector<Column> arg_cols;  // parallel to the aggs; unused for COUNT(*)
  std::vector<SelVector> masks;  // dense coordinates, mask-slot order
};

class PipelineExec final : public ExecOperator {
 public:
  PipelineExec(const ScanOp& scan, PipelineSpec spec, Schema schema,
               ExecContext* ctx, int32_t root_op_id, int32_t scan_op_id)
      : ExecOperator(std::move(schema)),
        ctx_(ctx),
        root_op_id_(root_op_id),
        source_(scan, ctx, scan_op_id),
        spec_(std::move(spec)) {}

  ~PipelineExec() override {
    if (accounted_bytes_ != 0) {
      ctx_->AddHashBytes(-accounted_bytes_, root_op_id_);
    }
  }

  Result<std::optional<Chunk>> Next() override {
    if (spec_.aggregate) return NextAggregate();
    if (ctx_->pool() != nullptr) {
      if (!parallel_ran_) {
        FUSIONDB_RETURN_IF_ERROR(RunParallel());
        parallel_ran_ = true;
      }
      if (out_cursor_ >= out_chunks_.size()) return std::optional<Chunk>();
      Chunk out = std::move(out_chunks_[out_cursor_++]);
      return std::optional<Chunk>(std::move(out));
    }
    // Serial push loop: each decoded morsel runs filter → output in place;
    // morsels with no survivors never materialize anything.
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> morsel,
                                source_.NextSerial());
      if (!morsel.has_value()) return std::optional<Chunk>();
      SelVector sel;
      if (!ApplyFilters(*morsel, &sel)) continue;
      return std::optional<Chunk>(BuildOutput(std::move(*morsel), sel));
    }
  }

 private:
  /// Chains the fused filters over one morsel: the first evaluates as a
  /// fresh selection, the rest narrow it (visiting only survivors — the
  /// fused equivalent of each FilterExec gathering before the next).
  /// Returns false when no row survives.
  bool ApplyFilters(const Chunk& morsel, SelVector* sel) const {
    if (spec_.filters.empty()) return morsel.num_rows() > 0;
    *sel = spec_.filters[0].EvalFilter(morsel);
    for (size_t i = 1; i < spec_.filters.size() && !sel->empty(); ++i) {
      spec_.filters[i].NarrowFilter(morsel, sel);
    }
    return !sel->empty();
  }

  bool AllPass(const Chunk& morsel, const SelVector& sel) const {
    return spec_.filters.empty() || sel.size() == morsel.num_rows();
  }

  /// Emits the chain's output chunk for one morsel. When every row passes
  /// and the chain is an identity over the scan, the decoded columns move
  /// through untouched (FilterExec's pass-through). Otherwise each output
  /// expression evaluates over the morsel — dense, or via EvalSel so only
  /// surviving rows are computed.
  Chunk BuildOutput(Chunk morsel, const SelVector& sel) const {
    bool all = AllPass(morsel, sel);
    Chunk out;
    if (all && spec_.identity) {
      out.columns = std::move(morsel.columns);
      return out;
    }
    out.columns.reserve(spec_.outputs.size());
    for (const BoundExpr& e : spec_.outputs) {
      out.columns.push_back(all ? e.EvalAll(morsel) : e.EvalSel(morsel, sel));
    }
    return out;
  }

  /// Parallel non-aggregate run: workers filter and project their claimed
  /// partitions' morsels inside the scan's ParallelFor; outputs stream in
  /// (partition, slice) order — the exact chunk sequence the interpreted
  /// pull chain produces over a parallel scan.
  Status RunParallel() {
    std::vector<std::vector<Chunk>> per_partition(source_.num_partitions());
    FUSIONDB_RETURN_IF_ERROR(source_.ParallelPartitions(
        [&](size_t /*worker*/, size_t pi, std::vector<Chunk> slices) -> Status {
          std::vector<Chunk>& out = per_partition[pi];
          for (Chunk& morsel : slices) {
            SelVector sel;
            if (!ApplyFilters(morsel, &sel)) continue;
            out.push_back(BuildOutput(std::move(morsel), sel));
          }
          return Status::OK();
        }));
    for (std::vector<Chunk>& chunks : per_partition) {
      for (Chunk& c : chunks) out_chunks_.push_back(std::move(c));
    }
    return Status::OK();
  }

  // --- aggregate sink --------------------------------------------------------

  Result<std::optional<Chunk>> NextAggregate() {
    if (done_) return std::optional<Chunk>();
    done_ = true;
    if (ctx_->pool() != nullptr) {
      FUSIONDB_RETURN_IF_ERROR(RunAggParallel());
    } else {
      FUSIONDB_RETURN_IF_ERROR(RunAggSerial());
    }
    accounted_bytes_ = GroupMapBytes(groups_);
    ctx_->AddHashBytes(accounted_bytes_, root_op_id_);
    return std::optional<Chunk>(FinalizeGroups(&groups_, spec_.baggs.aggs,
                                               OutputTypes(),
                                               spec_.group_exprs.size()));
  }

  /// Evaluates the deduplicated mask conjuncts over the *surviving* rows
  /// only (NarrowFilter from the filter chain's selection) and converts each
  /// to dense coordinates; masks then intersect exactly as
  /// MaskSet::Evaluate does over a materialized chunk.
  std::vector<SelVector> EvalMasksNarrowed(const Chunk& morsel,
                                           const SelVector& base) const {
    const MaskSet& ms = spec_.baggs.mask_set;
    std::vector<SelVector> conjunct_sels;
    conjunct_sels.reserve(ms.conjuncts.size());
    for (const BoundExpr& c : ms.conjuncts) {
      SelVector narrowed = base;
      c.NarrowFilter(morsel, &narrowed);
      conjunct_sels.push_back(PositionsIn(narrowed, base));
    }
    std::vector<SelVector> sels;
    sels.reserve(ms.mask_slots.size());
    for (const std::vector<int>& slots : ms.mask_slots) {
      SelVector sel;
      bool first = true;
      for (int s : slots) {
        sel = first ? conjunct_sels[s]
                    : SelVector::Intersect(sel, conjunct_sels[s]);
        first = false;
      }
      if (first) sel = SelVector::Dense(base.size());
      sels.push_back(std::move(sel));
    }
    return sels;
  }

  /// Evaluates one surviving morsel's group / argument / mask inputs to
  /// dense columns. When every row passed the filters this takes the same
  /// EvalAll + MaskSet::Evaluate path the interpreted aggregate takes over
  /// its input chunk; otherwise EvalSel computes surviving rows only.
  PreparedAggChunk Prepare(const Chunk& morsel, const SelVector& sel) const {
    const bool filtered = !AllPass(morsel, sel);
    PreparedAggChunk p;
    p.rows = filtered ? sel.size() : morsel.num_rows();
    p.masks = filtered ? EvalMasksNarrowed(morsel, sel)
                       : spec_.baggs.mask_set.Evaluate(morsel);
    p.group_cols.reserve(spec_.group_exprs.size());
    for (const BoundExpr& g : spec_.group_exprs) {
      p.group_cols.push_back(filtered ? g.EvalSel(morsel, sel)
                                      : g.EvalAll(morsel));
    }
    p.arg_cols.resize(spec_.baggs.aggs.size());
    for (size_t a = 0; a < spec_.baggs.aggs.size(); ++a) {
      const BoundAgg& agg = spec_.baggs.aggs[a];
      if (agg.arg.has_value()) {
        p.arg_cols[a] = filtered ? agg.arg->EvalSel(morsel, sel)
                                 : agg.arg->EvalAll(morsel);
      }
    }
    return p;
  }

  /// Column-pointer view over a prepared morsel (masks move out — each
  /// prepared morsel is accumulated exactly once).
  AggInputView ViewOf(PreparedAggChunk& p) const {
    AggInputView view;
    view.rows = p.rows;
    view.group_cols.reserve(p.group_cols.size());
    for (const Column& c : p.group_cols) view.group_cols.push_back(&c);
    view.arg_cols.resize(spec_.baggs.aggs.size(), nullptr);
    for (size_t a = 0; a < spec_.baggs.aggs.size(); ++a) {
      if (spec_.baggs.aggs[a].arg.has_value()) {
        view.arg_cols[a] = &p.arg_cols[a];
      }
    }
    view.masks = std::move(p.masks);
    return view;
  }

  Status RunAggSerial() {
    if (spec_.scalar) {
      // Scalar aggregates emit one row even over empty input; seeded before
      // the drain, mirroring the interpreted serial path.
      groups_[std::string()].states.resize(spec_.baggs.aggs.size());
    }
    std::string key;
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> morsel,
                                source_.NextSerial());
      if (!morsel.has_value()) break;
      SelVector sel;
      if (!ApplyFilters(*morsel, &sel)) continue;
      PreparedAggChunk p = Prepare(*morsel, sel);
      AggInputView view = ViewOf(p);
      AccumulateView(view, spec_.baggs.aggs, &groups_, &key);
    }
    return Status::OK();
  }

  /// Parallel aggregate: phase 1 filters and prepares surviving morsels
  /// inside the scan's ParallelFor, kept in (partition, slice) order — the
  /// same sequence of nonempty chunks AggregateExec::DrainParallel buffers
  /// from its child. Phase 2 deals morsel i to partial i mod W and merges
  /// partials in worker order, so the group map (insertion order included)
  /// is identical to the interpreted build for the same thread count.
  Status RunAggParallel() {
    std::vector<std::vector<PreparedAggChunk>> per_partition(
        source_.num_partitions());
    FUSIONDB_RETURN_IF_ERROR(source_.ParallelPartitions(
        [&](size_t /*worker*/, size_t pi, std::vector<Chunk> slices) -> Status {
          std::vector<PreparedAggChunk>& out = per_partition[pi];
          for (Chunk& morsel : slices) {
            SelVector sel;
            if (!ApplyFilters(morsel, &sel)) continue;
            out.push_back(Prepare(morsel, sel));
          }
          return Status::OK();
        }));
    std::vector<PreparedAggChunk> prepared;
    for (std::vector<PreparedAggChunk>& chunks : per_partition) {
      for (PreparedAggChunk& p : chunks) prepared.push_back(std::move(p));
    }
    ThreadPool* pool = ctx_->pool();
    size_t workers = pool->num_workers();
    std::vector<GroupMap> partials(workers);
    ParallelRegion region(ctx_);
    Status st = pool->ParallelFor(
        workers, [&](size_t /*worker*/, size_t w) -> Status {
          // `w` is the partial's index; each is claimed exactly once, so
          // the partial map is touched by a single thread.
          std::string key;
          for (size_t ci = w; ci < prepared.size(); ci += workers) {
            AggInputView view = ViewOf(prepared[ci]);
            AccumulateView(view, spec_.baggs.aggs, &partials[w], &key);
          }
          return Status::OK();
        });
    FUSIONDB_RETURN_IF_ERROR(st);
    MergePartialGroups(spec_.baggs.aggs, &partials, &groups_);
    if (spec_.scalar) {
      // Mirrors the interpreted parallel path: seeded after the merge.
      groups_[std::string()].states.resize(spec_.baggs.aggs.size());
    }
    return Status::OK();
  }

  ExecContext* ctx_;
  int32_t root_op_id_ = -1;
  MorselSource source_;
  PipelineSpec spec_;
  // Parallel non-aggregate state: chunks prepared by RunParallel, streamed
  // in order.
  bool parallel_ran_ = false;
  std::vector<Chunk> out_chunks_;
  size_t out_cursor_ = 0;
  // Aggregate state.
  GroupMap groups_;
  bool done_ = false;
  int64_t accounted_bytes_ = 0;
};

}  // namespace

Result<ExecOperatorPtr> TryCompilePipeline(const PlanPtr& plan,
                                           ExecContext* ctx,
                                           int32_t root_op_id) {
  auto fallback = [&](std::string reason) -> Result<ExecOperatorPtr> {
    PipelineRecord rec;
    rec.root_op_id = root_op_id;
    rec.root_kind = OpKindName(plan->kind());
    rec.fallback = std::move(reason);
    ctx->AddPipeline(std::move(rec));
    return ExecOperatorPtr(nullptr);
  };

  // Walk the chain: the root (Filter/Project/Aggregate), any run of
  // Filter/Project below it, and the node the chain bottoms out at. Only a
  // chain grounded directly on a scan compiles; anything else (a join
  // build, another aggregate, a spool, ...) is a pipeline breaker and the
  // chain falls back with a source-<kind> reason.
  std::vector<const LogicalOp*> chain;
  chain.push_back(plan.get());
  const LogicalOp* bottom = plan->child(0).get();
  while (bottom->kind() == OpKind::kFilter ||
         bottom->kind() == OpKind::kProject) {
    chain.push_back(bottom);
    bottom = bottom->child(0).get();
  }
  if (bottom->kind() != OpKind::kScan) {
    return fallback("source-" + LowerKindName(bottom->kind()));
  }
  const ScanOp& scan = Cast<ScanOp>(*bottom);
  const Schema& scan_schema = scan.schema();

  // Compose every chain expression down to the scan schema, walking bottom
  // up. `env` maps each visible column id to its defining expression over
  // the scan (identity at the scan itself); projects replace the
  // environment, filters evaluate in the environment current at their
  // depth. A reference SubstituteColumns cannot resolve, or a composed
  // expression the binder rejects, is a bind-error fallback — the
  // interpreted chain then either runs it or raises the real error.
  ColumnDefs env;
  for (const ColumnInfo& c : scan_schema.columns()) {
    env[c.id] = Expr::MakeColumnRef(c.id, c.type);
  }
  PipelineSpec spec;
  for (size_t i = chain.size(); i-- > 0;) {
    const LogicalOp* node = chain[i];
    if (node->kind() == OpKind::kFilter) {
      ExprPtr composed = SubstituteColumns(env, Cast<FilterOp>(*node).predicate());
      if (composed == nullptr) return fallback("bind-error");
      Result<BoundExpr> bound = BindExpr(composed, scan_schema);
      if (!bound.ok()) return fallback("bind-error");
      spec.filters.push_back(std::move(bound).ValueOrDie());
    } else if (node->kind() == OpKind::kProject) {
      ColumnDefs next;
      for (const NamedExpr& e : Cast<ProjectOp>(*node).exprs()) {
        ExprPtr composed = SubstituteColumns(env, e.expr);
        if (composed == nullptr) return fallback("bind-error");
        next[e.id] = std::move(composed);
      }
      env = std::move(next);
    }
  }

  if (plan->kind() == OpKind::kAggregate) {
    const AggregateOp& agg = Cast<AggregateOp>(*plan);
    spec.aggregate = true;
    spec.scalar = agg.IsScalar();
    spec.group_exprs.reserve(agg.group_by().size());
    for (ColumnId g : agg.group_by()) {
      auto it = env.find(g);
      if (it == env.end()) return fallback("bind-error");
      Result<BoundExpr> bound = BindExpr(it->second, scan_schema);
      if (!bound.ok()) return fallback("bind-error");
      spec.group_exprs.push_back(std::move(bound).ValueOrDie());
    }
    spec.item_storage.reserve(agg.aggregates().size());
    for (const AggregateItem& item : agg.aggregates()) {
      AggregateItem rewritten = item;
      if (item.arg != nullptr) {
        rewritten.arg = SubstituteColumns(env, item.arg);
        if (rewritten.arg == nullptr) return fallback("bind-error");
      }
      if (item.mask != nullptr) {
        rewritten.mask = SubstituteColumns(env, item.mask);
        if (rewritten.mask == nullptr) return fallback("bind-error");
      }
      spec.item_storage.push_back(std::move(rewritten));
    }
    Result<BoundAggs> baggs = BindAggs(spec.item_storage, scan_schema);
    if (!baggs.ok()) return fallback("bind-error");
    spec.baggs = std::move(baggs).ValueOrDie();
  } else {
    const Schema& out_schema = plan->schema();
    spec.outputs.reserve(out_schema.num_columns());
    spec.identity = out_schema.num_columns() == scan_schema.num_columns();
    for (size_t i = 0; i < out_schema.num_columns(); ++i) {
      auto it = env.find(out_schema.column(i).id);
      if (it == env.end()) return fallback("bind-error");
      if (spec.identity && (it->second->kind() != ExprKind::kColumnRef ||
                            it->second->column_id() !=
                                scan_schema.column(i).id)) {
        spec.identity = false;
      }
      Result<BoundExpr> bound = BindExpr(it->second, scan_schema);
      if (!bound.ok()) return fallback("bind-error");
      spec.outputs.push_back(std::move(bound).ValueOrDie());
    }
  }

  // Compilation succeeded — only now touch shared executor state. Interior
  // slots register in the same preorder the interpreted build would use
  // (root's child first, scan last), each tagged with this pipeline's
  // index; the scan's slot keeps receiving decoded-bytes attribution
  // through MorselSource.
  const int32_t pipe_index = static_cast<int32_t>(ctx->pipelines().size());
  int32_t scan_slot = -1;
  if (ctx->profile_enabled()) {
    ctx->op_stats(root_op_id)->pipeline = pipe_index;
    int32_t parent = root_op_id;
    for (size_t i = 1; i < chain.size(); ++i) {
      int32_t id = ctx->RegisterOperator(OpKindName(chain[i]->kind()),
                                         NodeDetail(*chain[i]), parent);
      ctx->op_stats(id)->pipeline = pipe_index;
      parent = id;
    }
    scan_slot =
        ctx->RegisterOperator(OpKindName(OpKind::kScan), NodeDetail(*bottom),
                              parent);
    ctx->op_stats(scan_slot)->pipeline = pipe_index;
  }
  PipelineRecord rec;
  rec.root_op_id = root_op_id;
  rec.root_kind = OpKindName(plan->kind());
  rec.ops_fused = static_cast<int>(chain.size()) + 1;  // chain + the scan
  ctx->AddPipeline(std::move(rec));
  return ExecOperatorPtr(new PipelineExec(scan, std::move(spec),
                                          plan->schema(), ctx, root_op_id,
                                          scan_slot));
}

}  // namespace fusiondb::internal
