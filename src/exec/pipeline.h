// Push-based compiled pipelines (DESIGN.md §13). At bind time the executor
// splits the plan at pipeline breakers (aggregate build, join build, sort,
// spool materialization) and compiles each non-blocking run of
// scan→filter→project(→aggregate-sink) into one CompiledPipeline operator:
// a single loop per decoded scan morsel that chains the filters' selection
// vectors and evaluates composed output expressions through the existing
// typed kernels, with no intermediate chunk materialization between the
// fused operators. Compilation is per-pipeline, never per-query: a chain the
// compiler cannot handle falls back to the interpreted operators for that
// chain only, with the reason recorded in the query's PipelineRecords.
#ifndef FUSIONDB_EXEC_PIPELINE_H_
#define FUSIONDB_EXEC_PIPELINE_H_

#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace fusiondb::internal {

/// Attempts to compile the operator chain rooted at `plan` (a Filter,
/// Project, or Aggregate chain head — the caller checks IsChainKind) down to
/// its scan. On success, registers stats slots for the fused interior
/// operators (keeping the preorder id ↔ plan-node mapping intact), records a
/// compiled PipelineRecord, and returns the pipeline operator. On fallback,
/// records the reason and returns nullptr — the caller then builds the
/// interpreted operators for the same chain; no interior slot is registered
/// before success, so a fallback leaves the id sequence untouched. Statuses
/// are reserved for infrastructure failures, not compilation refusals.
///
/// `root_op_id` is the chain root's already-registered stats slot (-1 when
/// profiling is off).
Result<ExecOperatorPtr> TryCompilePipeline(const PlanPtr& plan,
                                           ExecContext* ctx,
                                           int32_t root_op_id);

}  // namespace fusiondb::internal

#endif  // FUSIONDB_EXEC_PIPELINE_H_
