// Fan-out execution: run one plan, route its output to N consumers.
//
// This is the execution half of cross-query fusion (fusion/fuse_across.h):
// the shared fused plan executes exactly once — one scan, one set of hash
// tables, one pass of morsel parallelism — and each consumer's rows are
// restored on the driver thread by applying its compensating filter and
// reading its columns through its mapping:
//
//   consumer_i = Project_{columns_i}( Filter_{filter_i}(shared output) )
//
// Restoration uses the vectorized expression layer directly (EvalFilter
// selection vectors + EvalAll/EvalSel) rather than wrapping each consumer
// in a plan: the shared stream is already in memory, and binding the
// compensations once against the root schema avoids N plan builds.
//
// Threading: all Next() pulls happen on the calling (driver) thread, as in
// ExecutePlan — parallelism lives inside operators — so fan-out adds no
// cross-thread communication and is TSan-clean by construction.
//
// A single consumer with no filter and an identity column list makes
// ExecuteFanOut equivalent to ExecutePlan (modulo output column ids/names,
// which the consumer chooses); src/server routes *all* execution through
// this entry point so shared and solo queries take one code path.
#ifndef FUSIONDB_EXEC_FANOUT_H_
#define FUSIONDB_EXEC_FANOUT_H_

#include <vector>

#include "exec/executor.h"

namespace fusiondb {

/// One consumer of a fan-out execution. `filter` (nullptr == keep all
/// rows) and every column expression are evaluated against the executed
/// plan's root schema; `columns[i]` defines output column i (its id/name
/// label the consumer's result schema and are otherwise unconstrained).
struct FanOutConsumer {
  ExprPtr filter;
  std::vector<NamedExpr> columns;

  /// The consumer that reproduces `schema` verbatim from a plan whose root
  /// schema is `schema` (solo execution through the fan-out path).
  static FanOutConsumer Passthrough(const Schema& schema);
};

struct FanOutResult {
  /// Per-consumer results, aligned with the consumers argument. Each
  /// carries the shared execution's metrics and operator stats with only
  /// `rows_produced` rewritten to that consumer's own row count — the
  /// physical work happened once, so summing metrics across consumers
  /// double-counts; use `metrics` below for physical totals.
  std::vector<QueryResult> results;

  /// Metrics and per-operator stats of the single shared execution.
  ExecMetrics metrics;
  std::vector<OperatorStats> operator_stats;
  double wall_ms = 0.0;
};

/// Executes `plan` once and routes every output chunk to all `consumers`
/// (at least one). Fails on malformed plans or compensating expressions
/// that do not bind against the plan's root schema.
Result<FanOutResult> ExecuteFanOut(const PlanPtr& plan,
                                   const std::vector<FanOutConsumer>& consumers,
                                   const ExecOptions& options = ExecOptions());

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_FANOUT_H_
