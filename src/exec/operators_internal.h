// Factory functions for the physical operators; used only by the executor
// translation layer (executor.cc). Each factory validates and binds the
// corresponding logical operator against its children's schemas, surfacing
// malformed plans as Status errors rather than crashes.
#ifndef FUSIONDB_EXEC_OPERATORS_INTERNAL_H_
#define FUSIONDB_EXEC_OPERATORS_INTERNAL_H_

#include <vector>

#include "exec/operator.h"
#include "plan/logical_plan.h"
#include "plan/spool.h"

namespace fusiondb::internal {

/// Kind-specific context recorded in an operator's stats slot (table name,
/// join type, ...). Defined in executor.cc; the pipeline compiler uses it
/// to register slots for fused operators with the same rendering.
std::string NodeDetail(const LogicalOp& plan);

Result<ExecOperatorPtr> MakeScanExec(const ScanOp& op, ExecContext* ctx);
Result<ExecOperatorPtr> MakeFilterExec(const FilterOp& op,
                                       ExecOperatorPtr child);
Result<ExecOperatorPtr> MakeProjectExec(const ProjectOp& op,
                                        ExecOperatorPtr child);
Result<ExecOperatorPtr> MakeJoinExec(const JoinOp& op, ExecOperatorPtr left,
                                     ExecOperatorPtr right, ExecContext* ctx);
Result<ExecOperatorPtr> MakeAggregateExec(const AggregateOp& op,
                                          ExecOperatorPtr child,
                                          ExecContext* ctx);
Result<ExecOperatorPtr> MakeWindowExec(const WindowOp& op,
                                       ExecOperatorPtr child, ExecContext* ctx);
Result<ExecOperatorPtr> MakeMarkDistinctExec(const MarkDistinctOp& op,
                                             ExecOperatorPtr child,
                                             ExecContext* ctx);
Result<ExecOperatorPtr> MakeUnionAllExec(const UnionAllOp& op,
                                         std::vector<ExecOperatorPtr> children);
Result<ExecOperatorPtr> MakeValuesExec(const ValuesOp& op, ExecContext* ctx);
Result<ExecOperatorPtr> MakeSortExec(const SortOp& op, ExecOperatorPtr child,
                                     ExecContext* ctx);
Result<ExecOperatorPtr> MakeLimitExec(const LimitOp& op, ExecOperatorPtr child);
Result<ExecOperatorPtr> MakeSingleRowExec(const EnforceSingleRowOp& op,
                                          ExecOperatorPtr child);
Result<ExecOperatorPtr> MakeSpoolExec(const SpoolOp& op, ExecOperatorPtr child,
                                      ExecContext* ctx);

}  // namespace fusiondb::internal

#endif  // FUSIONDB_EXEC_OPERATORS_INTERNAL_H_
