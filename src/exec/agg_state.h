// Shared aggregate accumulation machinery used by the hash-aggregation and
// window operators. Implements the Athena-style (function, mask) pairs of
// Section III.E, plus DISTINCT arguments.
#ifndef FUSIONDB_EXEC_AGG_STATE_H_
#define FUSIONDB_EXEC_AGG_STATE_H_

#include <cstdint>
#include <unordered_set>

#include "expr/evaluator.h"
#include "plan/logical_plan.h"
#include "types/value.h"

namespace fusiondb {

/// Hash/equality functors so DISTINCT sets can key on single Values.
struct ValueHashFn {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Accumulator for one aggregate function within one group.
struct AggState {
  int64_t mask_rows = 0;      // rows passing the mask (COUNT(*))
  int64_t non_null_args = 0;  // non-NULL argument rows passing the mask
  int64_t sum_i = 0;
  double sum_d = 0.0;
  bool has_minmax = false;
  Value minmax;
  std::unordered_set<Value, ValueHashFn> distinct;

  void AccumulateRow(const AggregateItem& item, const Value& arg_value) {
    ++mask_rows;
    if (item.func == AggFunc::kCountStar) return;
    if (arg_value.is_null()) return;
    if (item.distinct) {
      distinct.insert(arg_value);
      return;
    }
    AccumulateNonDistinct(item.func, arg_value);
  }

  /// Accumulates straight from a column, avoiding Value boxing for the
  /// numeric non-distinct cases (the hot path after mask deduplication).
  void AccumulateColumnRow(const AggregateItem& item, const Column& col,
                           size_t row) {
    ++mask_rows;
    if (item.func == AggFunc::kCountStar) return;
    if (col.IsNull(row)) return;
    if (item.distinct || item.func == AggFunc::kMin ||
        item.func == AggFunc::kMax) {
      if (item.distinct) {
        distinct.insert(col.GetValue(row));
      } else {
        AccumulateNonDistinct(item.func, col.GetValue(row));
      }
      return;
    }
    // COUNT / SUM / AVG over a column value.
    ++non_null_args;
    switch (item.func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (PhysicalTypeOf(col.type()) == PhysicalType::kInt) {
          sum_i += col.IntAt(row);
          sum_d += static_cast<double>(col.IntAt(row));
        } else if (PhysicalTypeOf(col.type()) == PhysicalType::kDouble) {
          sum_d += col.DoubleAt(row);
        }
        break;
      case AggFunc::kCountStar:
      case AggFunc::kCount:
      case AggFunc::kMin:
      case AggFunc::kMax:
        break;  // count needs no value; min/max handled above
    }
  }

  void AccumulateNonDistinct(AggFunc func, const Value& v) {
    ++non_null_args;
    switch (func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        sum_i += PhysicalTypeOf(v.type()) == PhysicalType::kInt ? v.int_value()
                                                                : 0;
        sum_d += v.AsDouble();
        break;
      case AggFunc::kMin:
        if (!has_minmax || v.Compare(minmax) < 0) {
          minmax = v;
          has_minmax = true;
        }
        break;
      case AggFunc::kMax:
        if (!has_minmax || v.Compare(minmax) > 0) {
          minmax = v;
          has_minmax = true;
        }
        break;
    }
  }

  /// Folds another partial state for the same (group, aggregate) into this
  /// one — the combine step of parallel partial aggregation. Valid only
  /// before Finalize. Counters and sums add; MIN/MAX keeps the winner under
  /// `item.func`; DISTINCT sets union (still un-folded, so merged partials
  /// finalize exactly like a serially-built state).
  void Merge(const AggregateItem& item, AggState&& other) {
    mask_rows += other.mask_rows;
    non_null_args += other.non_null_args;
    sum_i += other.sum_i;
    sum_d += other.sum_d;
    if (other.has_minmax) {
      if (!has_minmax) {
        minmax = std::move(other.minmax);
        has_minmax = true;
      } else if (item.func == AggFunc::kMin
                     ? other.minmax.Compare(minmax) < 0
                     : other.minmax.Compare(minmax) > 0) {
        minmax = std::move(other.minmax);
      }
    }
    if (!other.distinct.empty()) {
      if (distinct.empty()) {
        distinct = std::move(other.distinct);
      } else {
        distinct.merge(other.distinct);
      }
    }
  }

  /// Final value under SQL semantics: COUNT never NULL; SUM/AVG/MIN/MAX are
  /// NULL when no rows contributed.
  Value Finalize(const AggregateItem& item) {
    if (item.distinct) FoldDistinct(item);
    DataType out_type = item.result_type();
    switch (item.func) {
      case AggFunc::kCountStar:
        return Value::Int64(mask_rows);
      case AggFunc::kCount:
        return Value::Int64(non_null_args);
      case AggFunc::kSum:
        if (non_null_args == 0) return Value::Null(out_type);
        return out_type == DataType::kFloat64 ? Value::Float64(sum_d)
                                              : Value::Int64(sum_i);
      case AggFunc::kAvg:
        if (non_null_args == 0) return Value::Null(out_type);
        return Value::Float64(sum_d / static_cast<double>(non_null_args));
      case AggFunc::kMin:
      case AggFunc::kMax:
        if (!has_minmax) return Value::Null(out_type);
        return minmax;
    }
    return Value::Null(out_type);
  }

 private:
  void FoldDistinct(const AggregateItem& item) {
    for (const Value& v : distinct) {
      AccumulateNonDistinct(item.func, v);
    }
    distinct.clear();
  }
};

/// Rough per-state heap footprint for the memory metric.
inline int64_t AggStateBytes(const AggState& s) {
  return 64 + static_cast<int64_t>(s.distinct.size()) * 48;
}

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_AGG_STATE_H_
