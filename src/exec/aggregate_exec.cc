// Hash aggregation (with per-aggregate masks and DISTINCT), partitioned
// window aggregation, and MarkDistinct. The binding and accumulation core
// (BoundAgg/MaskSet/BindAggs, GroupMap, AccumulateView, merge/finalize) is
// shared with the compiled-pipeline aggregate sink — see exec/agg_build.h.
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "exec/agg_build.h"
#include "exec/agg_state.h"
#include "exec/operators_internal.h"
#include "exec/row_key.h"
#include "expr/evaluator.h"
#include "expr/simplifier.h"

namespace fusiondb::internal {

namespace {

class AggregateExec final : public ExecOperator {
 public:
  AggregateExec(const AggregateOp& op, ExecOperatorPtr child,
                std::vector<int> group_indexes, BoundAggs aggs,
                ExecContext* ctx)
      : ExecOperator(op.schema()),
        scalar_(op.IsScalar()),
        child_(std::move(child)),
        group_indexes_(std::move(group_indexes)),
        aggs_(std::move(aggs.aggs)),
        mask_set_(std::move(aggs.mask_set)),
        ctx_(ctx),
        op_id_(ctx->building_op()) {}

  ~AggregateExec() override { ctx_->AddHashBytes(-accounted_bytes_, op_id_); }

  Result<std::optional<Chunk>> Next() override {
    if (done_) return std::optional<Chunk>();
    done_ = true;
    FUSIONDB_RETURN_IF_ERROR(Drain());
    return std::optional<Chunk>(FinalizeGroups(&groups_, aggs_, OutputTypes(),
                                               group_indexes_.size()));
  }

 private:
  /// Accumulates every row of `in` into `groups` via the shared view-based
  /// core: masks evaluate once per chunk, expression-valued arguments
  /// evaluate once column-at-a-time, bare-column arguments read the input
  /// column directly.
  void AccumulateChunk(const Chunk& in, GroupMap* groups, std::string* key) {
    size_t rows = in.num_rows();
    if (rows == 0) return;
    AggInputView view;
    view.rows = rows;
    // One pass per distinct mask conjunct over the whole chunk; each mask is
    // the intersection of its conjuncts' selections.
    view.masks = mask_set_.Evaluate(in);
    view.group_cols.reserve(group_indexes_.size());
    for (int g : group_indexes_) view.group_cols.push_back(&in.columns[g]);
    std::vector<Column> expr_args(aggs_.size());
    view.arg_cols.resize(aggs_.size(), nullptr);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const BoundAgg& agg = aggs_[a];
      if (agg.arg_column >= 0) {
        view.arg_cols[a] = &in.columns[agg.arg_column];
      } else if (agg.arg.has_value()) {
        expr_args[a] = agg.arg->EvalAll(in);
        view.arg_cols[a] = &expr_args[a];
      }
    }
    AccumulateView(view, aggs_, groups, key);
  }

  Status Drain() {
    if (ctx_->pool() != nullptr) {
      FUSIONDB_RETURN_IF_ERROR(DrainParallel());
    } else {
      if (scalar_) {
        GroupEntry& entry = groups_[std::string()];
        entry.states.resize(aggs_.size());
      }
      std::string key;
      while (true) {
        FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
        if (!in.has_value()) break;
        AccumulateChunk(*in, &groups_, &key);
      }
    }
    accounted_bytes_ = GroupMapBytes(groups_);
    ctx_->AddHashBytes(accounted_bytes_, op_id_);
    return Status::OK();
  }

  /// Thread-partitioned build: the driver drains the child (Next() is not
  /// thread-safe), chunks are dealt to workers by stride (chunk i -> partial
  /// i mod W, deterministic for a given thread count), each worker fills a
  /// private partial hash table, and the partials merge into `groups_` in
  /// worker order via AggState::Merge. Only the merged table is charged to
  /// the memory metric, matching the serial accounting.
  Status DrainParallel() {
    std::vector<Chunk> buffered;
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) break;
      if (in->num_rows() > 0) buffered.push_back(std::move(*in));
    }
    ThreadPool* pool = ctx_->pool();
    size_t workers = pool->num_workers();
    std::vector<GroupMap> partials(workers);
    ParallelRegion region(ctx_);
    Status st = pool->ParallelFor(
        workers, [&](size_t /*worker*/, size_t w) -> Status {
          // `w` is the partial's index; each is claimed exactly once, so
          // the partial map is touched by a single thread.
          std::string key;
          for (size_t ci = w; ci < buffered.size(); ci += workers) {
            AccumulateChunk(buffered[ci], &partials[w], &key);
          }
          return Status::OK();
        });
    FUSIONDB_RETURN_IF_ERROR(st);
    MergePartialGroups(aggs_, &partials, &groups_);
    if (scalar_) {
      // Scalar aggregates emit one row even over empty input.
      groups_[std::string()].states.resize(aggs_.size());
    }
    return Status::OK();
  }

  bool scalar_;
  ExecOperatorPtr child_;
  std::vector<int> group_indexes_;
  std::vector<BoundAgg> aggs_;
  MaskSet mask_set_;
  ExecContext* ctx_;
  GroupMap groups_;
  bool done_ = false;
  int64_t accounted_bytes_ = 0;
  int32_t op_id_ = -1;
};

class WindowExec final : public ExecOperator {
 public:
  WindowExec(const WindowOp& op, ExecOperatorPtr child,
             std::vector<int> partition_indexes, BoundAggs items,
             std::vector<AggregateItem> item_storage, ExecContext* ctx)
      : ExecOperator(op.schema()),
        child_(std::move(child)),
        partition_indexes_(std::move(partition_indexes)),
        items_(std::move(items.aggs)),
        mask_set_(std::move(items.mask_set)),
        item_storage_(std::move(item_storage)),
        ctx_(ctx),
        op_id_(ctx->building_op()) {}

  ~WindowExec() override { ctx_->AddHashBytes(-accounted_bytes_, op_id_); }

  Result<std::optional<Chunk>> Next() override {
    if (!materialized_) {
      FUSIONDB_RETURN_IF_ERROR(Materialize());
      materialized_ = true;
    }
    size_t total = data_.num_rows();
    if (offset_ >= total) return std::optional<Chunk>();
    size_t take = std::min(ctx_->chunk_size(), total - offset_);
    Chunk out = Chunk::Empty(OutputTypes());
    size_t input_width = data_.num_columns();
    for (size_t c = 0; c < input_width; ++c) {
      out.columns[c].AppendRange(data_.columns[c], offset_, take);
    }
    for (size_t a = 0; a < items_.size(); ++a) {
      out.columns[input_width + a].Reserve(take);
      for (size_t r = offset_; r < offset_ + take; ++r) {
        out.columns[input_width + a].AppendValue(results_[a][r]);
      }
    }
    offset_ += take;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  Status Materialize() {
    std::vector<DataType> types;
    for (const ColumnInfo& c : child_->schema().columns()) {
      types.push_back(c.type);
    }
    data_ = Chunk::Empty(types);
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) break;
      data_.AppendChunk(*in);
    }
    size_t rows = data_.num_rows();

    // Partition rows, preserving input order within each partition.
    std::unordered_map<std::string, std::vector<size_t>> partitions;
    std::string key;
    for (size_t r = 0; r < rows; ++r) {
      RowKeyEncoder::Encode(data_, partition_indexes_, r, &key);
      partitions[key].push_back(r);
    }

    // Compute each item per partition and broadcast to member rows. Masks
    // evaluate once as selections; partitions walk their member rows (not
    // ascending globally), so the selections expand to byte masks for
    // random-access membership tests.
    std::vector<SelVector> mask_sels = mask_set_.Evaluate(data_);
    std::vector<std::vector<uint8_t>> bitmaps;
    bitmaps.reserve(mask_sels.size());
    for (const SelVector& s : mask_sels) bitmaps.push_back(s.ToMask(rows));
    // Expression-valued arguments evaluate once over the materialized data.
    std::vector<Column> expr_args(items_.size());
    for (size_t a = 0; a < items_.size(); ++a) {
      const BoundAgg& item = items_[a];
      if (item.arg_column < 0 && item.arg.has_value()) {
        expr_args[a] = item.arg->EvalAll(data_);
      }
    }
    results_.assign(items_.size(), std::vector<Value>(rows));
    for (const auto& [key, members] : partitions) {
      for (size_t a = 0; a < items_.size(); ++a) {
        const BoundAgg& item = items_[a];
        AggState state;
        for (size_t r : members) {
          if (item.mask_slot >= 0 && !bitmaps[item.mask_slot][r]) continue;
          if (item.arg_column >= 0) {
            state.AccumulateColumnRow(*item.item, data_.columns[item.arg_column],
                                      r);
          } else if (item.arg.has_value()) {
            state.AccumulateColumnRow(*item.item, expr_args[a], r);
          } else {
            state.AccumulateRow(*item.item, Value::Bool(true));
          }
        }
        Value v = state.Finalize(*item.item);
        for (size_t r : members) results_[a][r] = v;
      }
    }

    int64_t bytes = 0;
    for (const Column& c : data_.columns) bytes += c.ByteSize();
    bytes += static_cast<int64_t>(partitions.size()) * 64;
    accounted_bytes_ = bytes;
    ctx_->AddHashBytes(bytes, op_id_);
    return Status::OK();
  }

  ExecOperatorPtr child_;
  std::vector<int> partition_indexes_;
  std::vector<BoundAgg> items_;
  MaskSet mask_set_;
  // WindowItems converted to AggregateItems so BoundAgg/AggState apply.
  std::vector<AggregateItem> item_storage_;
  ExecContext* ctx_;
  Chunk data_;
  std::vector<std::vector<Value>> results_;
  bool materialized_ = false;
  size_t offset_ = 0;
  int64_t accounted_bytes_ = 0;
  int32_t op_id_ = -1;
};

class MarkDistinctExec final : public ExecOperator {
 public:
  MarkDistinctExec(const MarkDistinctOp& op, ExecOperatorPtr child,
                   std::vector<int> key_indexes, ExecContext* ctx)
      : ExecOperator(op.schema()),
        child_(std::move(child)),
        key_indexes_(std::move(key_indexes)),
        ctx_(ctx),
        op_id_(ctx->building_op()) {}

  ~MarkDistinctExec() override { ctx_->AddHashBytes(-accounted_bytes_, op_id_); }

  Result<std::optional<Chunk>> Next() override {
    FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
    if (!in.has_value()) return std::optional<Chunk>();
    size_t rows = in->num_rows();
    Column marker(DataType::kBool);
    marker.Reserve(rows);
    std::string key;
    for (size_t r = 0; r < rows; ++r) {
      RowKeyEncoder::Encode(*in, key_indexes_, r, &key);
      auto [it, inserted] = seen_.insert(key);
      (void)it;
      if (inserted) {
        // ~48 bytes map overhead + key bytes, charged incrementally.
        int64_t bytes = 48 + static_cast<int64_t>(key.size());
        ctx_->AddHashBytes(bytes, op_id_);
        accounted_bytes_ += bytes;
      }
      marker.AppendBool(inserted);
    }
    Chunk out = std::move(*in);
    out.columns.push_back(std::move(marker));
    return std::optional<Chunk>(std::move(out));
  }

 private:
  ExecOperatorPtr child_;
  std::vector<int> key_indexes_;
  ExecContext* ctx_;
  std::unordered_set<std::string> seen_;
  int64_t accounted_bytes_ = 0;
  int32_t op_id_ = -1;
};

}  // namespace

Result<ExecOperatorPtr> MakeAggregateExec(const AggregateOp& op,
                                          ExecOperatorPtr child,
                                          ExecContext* ctx) {
  std::vector<int> group_indexes;
  group_indexes.reserve(op.group_by().size());
  for (ColumnId g : op.group_by()) {
    int idx = child->schema().IndexOf(g);
    if (idx < 0) {
      return Status::PlanError("group-by column #" + std::to_string(g) +
                               " not in input");
    }
    group_indexes.push_back(idx);
  }
  FUSIONDB_ASSIGN_OR_RETURN(BoundAggs aggs,
                            BindAggs(op.aggregates(), child->schema()));
  return ExecOperatorPtr(new AggregateExec(op, std::move(child),
                                           std::move(group_indexes),
                                           std::move(aggs), ctx));
}

Result<ExecOperatorPtr> MakeWindowExec(const WindowOp& op,
                                       ExecOperatorPtr child,
                                       ExecContext* ctx) {
  std::vector<int> partition_indexes;
  partition_indexes.reserve(op.partition_by().size());
  for (ColumnId p : op.partition_by()) {
    int idx = child->schema().IndexOf(p);
    if (idx < 0) {
      return Status::PlanError("window partition column #" + std::to_string(p) +
                               " not in input");
    }
    partition_indexes.push_back(idx);
  }
  // Reuse the aggregate machinery by viewing WindowItems as AggregateItems.
  std::vector<AggregateItem> storage;
  storage.reserve(op.items().size());
  for (const WindowItem& w : op.items()) {
    storage.push_back({w.id, w.name, w.func, w.arg, w.mask, /*distinct=*/false});
  }
  FUSIONDB_ASSIGN_OR_RETURN(BoundAggs items,
                            BindAggs(storage, child->schema()));
  // BoundAgg keeps pointers into `storage`; both are moved into the operator
  // together, and vector moves preserve element addresses.
  return ExecOperatorPtr(new WindowExec(op, std::move(child),
                                        std::move(partition_indexes),
                                        std::move(items), std::move(storage),
                                        ctx));
}

Result<ExecOperatorPtr> MakeMarkDistinctExec(const MarkDistinctOp& op,
                                             ExecOperatorPtr child,
                                             ExecContext* ctx) {
  std::vector<int> key_indexes;
  key_indexes.reserve(op.distinct_columns().size());
  for (ColumnId c : op.distinct_columns()) {
    int idx = child->schema().IndexOf(c);
    if (idx < 0) {
      return Status::PlanError("mark-distinct column #" + std::to_string(c) +
                               " not in input");
    }
    key_indexes.push_back(idx);
  }
  return ExecOperatorPtr(
      new MarkDistinctExec(op, std::move(child), std::move(key_indexes), ctx));
}

}  // namespace fusiondb::internal
