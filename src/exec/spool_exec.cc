// Spool execution: materialize a shared subplan once, stream it to every
// consumer. Models the cost structure the paper attributes to spooling —
// the intermediate is written once and read once *per consumer*, and its
// buffer occupies working memory for the query's duration.
#include <optional>

#include "exec/operators_internal.h"
#include "plan/spool.h"

namespace fusiondb::internal {

namespace {

class SpoolExec final : public ExecOperator {
 public:
  SpoolExec(const SpoolOp& op, ExecOperatorPtr child,
            std::shared_ptr<SpoolBuffer> buffer, ExecContext* ctx)
      : ExecOperator(op.schema()),
        child_(std::move(child)),
        buffer_(std::move(buffer)),
        ctx_(ctx),
        op_id_(ctx->building_op()) {}

  ~SpoolExec() override {
    if (accounted_) ctx_->AddHashBytes(-buffer_->bytes, op_id_);
  }

  Result<std::optional<Chunk>> Next() override {
    if (!buffer_->built) {
      FUSIONDB_RETURN_IF_ERROR(Materialize());
    } else if (!accounted_ && !counted_hit_) {
      // Another consumer already built the buffer: this read is a spool
      // hit — the reuse event the paper's spooling baseline counts on.
      counted_hit_ = true;
      ctx_->AddSpoolHit(op_id_);
    }
    if (cursor_ >= buffer_->pages.size()) return std::optional<Chunk>();
    const std::vector<EncodedColumn>& pages = buffer_->pages[cursor_++];
    // Reading the spool back deserializes the pages — the recurring,
    // per-consumer cost of materialization.
    Chunk out;
    out.columns.reserve(pages.size());
    for (const EncodedColumn& page : pages) {
      FUSIONDB_ASSIGN_OR_RETURN(Column col, DecodeColumn(page));
      ctx_->metrics().spool_bytes_read += page.ByteSize();
      out.columns.push_back(std::move(col));
    }
    return std::optional<Chunk>(std::move(out));
  }

 private:
  Status Materialize() {
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) break;
      std::vector<EncodedColumn> pages;
      pages.reserve(in->num_columns());
      for (const Column& c : in->columns) {
        EncodedColumn page = EncodeColumn(c);
        buffer_->bytes += page.ByteSize();
        pages.push_back(std::move(page));
      }
      buffer_->pages.push_back(std::move(pages));
    }
    buffer_->built = true;
    ctx_->metrics().spool_bytes_written += buffer_->bytes;
    // The buffer lives until the end of the query (charged once, by the
    // materializing consumer).
    ctx_->AddHashBytes(buffer_->bytes, op_id_);
    ctx_->AddSpoolBuild(op_id_);
    accounted_ = true;
    return Status::OK();
  }

  ExecOperatorPtr child_;
  std::shared_ptr<SpoolBuffer> buffer_;
  ExecContext* ctx_;
  size_t cursor_ = 0;
  bool accounted_ = false;
  bool counted_hit_ = false;
  int32_t op_id_ = -1;
};

}  // namespace

Result<ExecOperatorPtr> MakeSpoolExec(const SpoolOp& op, ExecOperatorPtr child,
                                      ExecContext* ctx) {
  return ExecOperatorPtr(new SpoolExec(op, std::move(child),
                                       ctx->GetSpool(op.spool_id()), ctx));
}

}  // namespace fusiondb::internal
