// Table scan with partition pruning and scanned-bytes accounting. The scan
// machinery itself lives in MorselSource (morsel_source.h), shared with the
// compiled-pipeline path; ScanExec is the thin pull-model adapter over it.
#include "exec/morsel_source.h"

#include <optional>

#include "exec/operators_internal.h"
#include "expr/simplifier.h"

namespace fusiondb::internal {

void ApplyPruneConjunct(const ExprPtr& e, ColumnId part_col, PruneSpec* spec) {
  if (e->kind() == ExprKind::kInList &&
      e->child(0)->kind() == ExprKind::kColumnRef &&
      e->child(0)->column_id() == part_col) {
    std::vector<int64_t> points;
    for (size_t i = 1; i < e->children().size(); ++i) {
      if (e->child(i)->kind() != ExprKind::kLiteral) return;
      const Value& v = e->child(i)->literal();
      if (v.is_null() || PhysicalTypeOf(v.type()) != PhysicalType::kInt) return;
      points.push_back(v.int_value());
    }
    spec->has_points = true;
    spec->points.insert(spec->points.end(), points.begin(), points.end());
    return;
  }
  if (e->kind() != ExprKind::kCompare) return;
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  CompareOp op = e->compare_op();
  if (e->child(0)->kind() == ExprKind::kColumnRef &&
      e->child(1)->kind() == ExprKind::kLiteral) {
    col = e->child(0).get();
    lit = e->child(1).get();
  } else if (e->child(1)->kind() == ExprKind::kColumnRef &&
             e->child(0)->kind() == ExprKind::kLiteral) {
    col = e->child(1).get();
    lit = e->child(0).get();
    switch (op) {
      case CompareOp::kLt:
        op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        op = CompareOp::kLe;
        break;
      case CompareOp::kEq:
      case CompareOp::kNe:
        break;  // symmetric; no flip needed
    }
  } else {
    return;
  }
  if (col->column_id() != part_col) return;
  const Value& v = lit->literal();
  if (v.is_null() || PhysicalTypeOf(v.type()) != PhysicalType::kInt) return;
  int64_t x = v.int_value();
  switch (op) {
    case CompareOp::kEq:
      spec->lo = std::max(spec->lo, x);
      spec->hi = std::min(spec->hi, x);
      break;
    case CompareOp::kLt:
      spec->hi = std::min(spec->hi, x - 1);
      break;
    case CompareOp::kLe:
      spec->hi = std::min(spec->hi, x);
      break;
    case CompareOp::kGt:
      spec->lo = std::max(spec->lo, x + 1);
      break;
    case CompareOp::kGe:
      spec->lo = std::max(spec->lo, x);
      break;
    case CompareOp::kNe:
      break;
  }
}

MorselSource::MorselSource(const ScanOp& op, ExecContext* ctx, int32_t op_id)
    : table_(op.table()),
      table_columns_(op.table_columns()),
      ctx_(ctx),
      op_id_(op_id) {
  types_.reserve(op.schema().num_columns());
  for (size_t i = 0; i < op.schema().num_columns(); ++i) {
    types_.push_back(op.schema().column(i).type);
  }
  // Locate the partitioning column among the scan's outputs, if selected.
  int part_table_col = table_->partition_column();
  ColumnId part_out = kInvalidColumnId;
  if (part_table_col >= 0) {
    for (size_t i = 0; i < table_columns_.size(); ++i) {
      if (table_columns_[i] == part_table_col) {
        part_out = op.schema().column(i).id;
        break;
      }
    }
  }
  if (op.pruning_filter() != nullptr && part_out != kInvalidColumnId) {
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(op.pruning_filter(), &conjuncts);
    for (const ExprPtr& c : conjuncts) {
      ApplyPruneConjunct(c, part_out, &prune_);
    }
  }
}

Result<std::optional<Chunk>> MorselSource::NextSerial() {
  const auto& partitions = table_->partitions();
  while (true) {
    if (partition_ >= partitions.size()) return std::optional<Chunk>();
    const Partition& p = partitions[partition_];
    if (offset_ == 0) {
      if (!prune_.KeepsRange(p.min_key, p.max_key)) {
        ++ctx_->metrics().partitions_pruned;
        ++partition_;
        continue;
      }
      // Decode the pages this scan reads (the engine's analogue of the
      // S3-read + Parquet-decode cost the paper bills for) and charge
      // their bytes, once per partition touched.
      decoded_.clear();
      decoded_.reserve(table_columns_.size());
      for (int c : table_columns_) {
        FUSIONDB_ASSIGN_OR_RETURN(Column col, DecodeColumn(p.columns[c]));
        decoded_.push_back(std::move(col));
        ctx_->metrics().bytes_scanned += p.column_bytes[c];
        ctx_->AddScanBytes(op_id_, p.column_bytes[c]);
      }
      ++ctx_->metrics().partitions_scanned;
      ctx_->metrics().rows_scanned += static_cast<int64_t>(p.num_rows());
    }
    size_t rows = p.num_rows();
    if (offset_ >= rows) {
      ++partition_;
      offset_ = 0;
      continue;
    }
    size_t take = std::min(ctx_->chunk_size(), rows - offset_);
    Chunk out = Chunk::Empty(types_);
    if (offset_ == 0 && take == rows) {
      // Whole partition fits in one chunk: hand the decoded columns over.
      out.columns = std::move(decoded_);
      decoded_.clear();
    } else {
      for (size_t i = 0; i < table_columns_.size(); ++i) {
        out.columns[i].AppendRange(decoded_[i], offset_, take);
      }
    }
    offset_ += take;
    if (offset_ >= rows) {
      ++partition_;
      offset_ = 0;
    }
    return std::optional<Chunk>(std::move(out));
  }
}

Status MorselSource::ParallelPartitions(
    const std::function<Status(size_t worker, size_t partition,
                               std::vector<Chunk> slices)>& fn) {
  const auto& partitions = table_->partitions();
  ThreadPool* pool = ctx_->pool();
  std::vector<ExecMetrics> shards(pool->num_workers());
  ParallelRegion region(ctx_);
  Status st = pool->ParallelFor(
      partitions.size(), [&](size_t worker, size_t pi) -> Status {
        const Partition& p = partitions[pi];
        ExecMetrics& m = shards[worker];
        if (!prune_.KeepsRange(p.min_key, p.max_key)) {
          ++m.partitions_pruned;
          return Status::OK();
        }
        std::vector<Column> decoded;
        decoded.reserve(table_columns_.size());
        for (int c : table_columns_) {
          FUSIONDB_ASSIGN_OR_RETURN(Column col, DecodeColumn(p.columns[c]));
          decoded.push_back(std::move(col));
          m.bytes_scanned += p.column_bytes[c];
        }
        ++m.partitions_scanned;
        size_t rows = p.num_rows();
        m.rows_scanned += static_cast<int64_t>(rows);
        std::vector<Chunk> slices;
        if (rows <= ctx_->chunk_size()) {
          Chunk chunk = Chunk::Empty(types_);
          chunk.columns = std::move(decoded);
          if (rows > 0) slices.push_back(std::move(chunk));
        } else {
          for (size_t offset = 0; offset < rows; offset += ctx_->chunk_size()) {
            size_t take = std::min(ctx_->chunk_size(), rows - offset);
            Chunk chunk = Chunk::Empty(types_);
            for (size_t i = 0; i < decoded.size(); ++i) {
              chunk.columns[i].AppendRange(decoded[i], offset, take);
            }
            slices.push_back(std::move(chunk));
          }
        }
        if (slices.empty()) return Status::OK();
        return fn(worker, pi, std::move(slices));
      });
  FUSIONDB_RETURN_IF_ERROR(st);
  int64_t scan_bytes = 0;
  for (const ExecMetrics& shard : shards) {
    scan_bytes += shard.bytes_scanned;
    ctx_->MergeMetrics(shard);
  }
  // Slot attribution happens once, on the driver, after the region merged —
  // the per-scan total is thread-count-invariant because the shard sums are.
  ctx_->AddScanBytes(op_id_, scan_bytes);
  return Status::OK();
}

Status MorselSource::DecodeAll(std::vector<Chunk>* out) {
  const auto& partitions = table_->partitions();
  std::vector<std::vector<Chunk>> per_partition(partitions.size());
  FUSIONDB_RETURN_IF_ERROR(ParallelPartitions(
      [&](size_t /*worker*/, size_t pi, std::vector<Chunk> slices) -> Status {
        per_partition[pi] = std::move(slices);
        return Status::OK();
      }));
  for (std::vector<Chunk>& chunks : per_partition) {
    for (Chunk& c : chunks) out->push_back(std::move(c));
  }
  return Status::OK();
}

namespace {

class ScanExec final : public ExecOperator {
 public:
  ScanExec(const ScanOp& op, ExecContext* ctx)
      : ExecOperator(op.schema()),
        ctx_(ctx),
        source_(op, ctx, ctx->building_op()) {}

  Result<std::optional<Chunk>> Next() override {
    // Morsel-driven path: with a pool available, the first pull decodes all
    // surviving partitions in parallel and later pulls just stream the
    // prepared chunks (in partition order, matching the serial output).
    if (ctx_->pool() != nullptr) {
      if (!parallel_scanned_) {
        FUSIONDB_RETURN_IF_ERROR(source_.DecodeAll(&out_chunks_));
        parallel_scanned_ = true;
      }
      if (out_cursor_ >= out_chunks_.size()) return std::optional<Chunk>();
      Chunk out = std::move(out_chunks_[out_cursor_++]);
      return std::optional<Chunk>(std::move(out));
    }
    return source_.NextSerial();
  }

 private:
  ExecContext* ctx_;
  MorselSource source_;
  // Parallel-path state: chunks prepared by DecodeAll, streamed in order.
  bool parallel_scanned_ = false;
  std::vector<Chunk> out_chunks_;
  size_t out_cursor_ = 0;
};

}  // namespace

Result<ExecOperatorPtr> MakeScanExec(const ScanOp& op, ExecContext* ctx) {
  for (int c : op.table_columns()) {
    if (c < 0 || static_cast<size_t>(c) >= op.table()->num_columns()) {
      return Status::PlanError("scan column index out of range for table " +
                               op.table()->name());
    }
  }
  return ExecOperatorPtr(new ScanExec(op, ctx));
}

}  // namespace fusiondb::internal
