// Hash join (inner / left / semi) with nested-loop fallback for non-equi
// and cross joins. The build side (right input) is fully buffered and
// accounted against the working-memory metric.
#include <optional>
#include <unordered_map>

#include "exec/operators_internal.h"
#include "exec/row_key.h"
#include "expr/evaluator.h"
#include "expr/simplifier.h"

namespace fusiondb::internal {

namespace {

struct EquiKey {
  int left_index;
  int right_index;
};

class HashJoinExec final : public ExecOperator {
 public:
  HashJoinExec(const JoinOp& op, ExecOperatorPtr left, ExecOperatorPtr right,
               std::vector<EquiKey> keys, std::optional<BoundExpr> residual,
               ExecContext* ctx)
      : ExecOperator(op.schema()),
        join_type_(op.join_type()),
        left_(std::move(left)),
        right_(std::move(right)),
        keys_(std::move(keys)),
        residual_(std::move(residual)),
        ctx_(ctx),
        op_id_(ctx->building_op()) {
    right_types_.reserve(right_->schema().num_columns());
    for (const ColumnInfo& c : right_->schema().columns()) {
      right_types_.push_back(c.type);
    }
    for (const EquiKey& k : keys_) {
      left_key_indexes_.push_back(k.left_index);
      right_key_indexes_.push_back(k.right_index);
    }
  }

  ~HashJoinExec() override { ctx_->AddHashBytes(-accounted_bytes_, op_id_); }

  Result<std::optional<Chunk>> Next() override {
    if (!built_) {
      FUSIONDB_RETURN_IF_ERROR(BuildRight());
      built_ = true;
    }
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, left_->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      Chunk out = Chunk::Empty(OutputTypes());
      ProbeChunk(*in, &out);
      if (out.num_rows() == 0) continue;
      return std::optional<Chunk>(std::move(out));
    }
  }

 private:
  Status BuildRight() {
    right_data_ = Chunk::Empty(right_types_);
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, right_->Next());
      if (!in.has_value()) break;
      right_data_.AppendChunk(*in);
    }
    size_t n = right_data_.num_rows();
    if (!keys_.empty()) {
      if (ctx_->pool() != nullptr && n > 1) {
        FUSIONDB_RETURN_IF_ERROR(BuildTableParallel(n));
      } else {
        table_.reserve(n);
        std::string key;
        for (size_t r = 0; r < n; ++r) {
          if (RowKeyEncoder::Encode(right_data_, right_key_indexes_, r, &key)) {
            continue;  // NULL keys never join
          }
          table_[key].push_back(r);
        }
      }
    }
    // Account buffered rows + hash entries against working memory.
    int64_t bytes = 0;
    for (const Column& c : right_data_.columns) bytes += c.ByteSize();
    bytes += static_cast<int64_t>(n) * 48;
    accounted_bytes_ = bytes;
    ctx_->AddHashBytes(bytes, op_id_);
    return Status::OK();
  }

  /// Thread-partitioned build phase: worker w encodes keys for the
  /// contiguous row range [w*n/W, (w+1)*n/W) into a private partial table;
  /// the partials merge into `table_` in worker order. Because the ranges
  /// are contiguous and ascending, every bucket's row list comes out in
  /// ascending row order — exactly what the serial loop produces — so probe
  /// output is identical to single-threaded execution. The probe side stays
  /// streaming on the driver thread.
  Status BuildTableParallel(size_t n) {
    ThreadPool* pool = ctx_->pool();
    size_t workers = pool->num_workers();
    using PartialTable = std::unordered_map<std::string, std::vector<size_t>>;
    std::vector<PartialTable> partials(workers);
    ParallelRegion region(ctx_);
    Status st = pool->ParallelFor(
        workers, [&](size_t /*worker*/, size_t w) -> Status {
          size_t begin = n * w / workers;
          size_t end = n * (w + 1) / workers;
          PartialTable& local = partials[w];
          std::string key;
          for (size_t r = begin; r < end; ++r) {
            if (RowKeyEncoder::Encode(right_data_, right_key_indexes_, r,
                                      &key)) {
              continue;  // NULL keys never join
            }
            local[key].push_back(r);
          }
          return Status::OK();
        });
    FUSIONDB_RETURN_IF_ERROR(st);
    table_.reserve(n);
    for (PartialTable& pt : partials) {
      for (auto& [key, rows] : pt) {
        std::vector<size_t>& bucket = table_[key];
        if (bucket.empty()) {
          bucket = std::move(rows);
        } else {
          bucket.insert(bucket.end(), rows.begin(), rows.end());
        }
      }
    }
    return Status::OK();
  }

  bool PairPasses(const Chunk& left_chunk, size_t lrow, size_t rrow) const {
    if (!residual_.has_value()) return true;
    Value v = residual_->EvalRowPair(left_chunk, lrow, right_data_, rrow,
                                     left_->schema().num_columns());
    return !v.is_null() && v.bool_value();
  }

  // Sentinel right-row index meaning "no match": the output row carries the
  // left columns plus NULL right columns (left outer join).
  static constexpr uint32_t kNullRight = UINT32_MAX;

  /// Matching stays row-at-a-time (key encode + residual EvalRowPair over
  /// candidate pairs), but row assembly is deferred: the probe loop only
  /// records (left row, right row) index pairs in emission order, and the
  /// output columns are built afterwards with bulk gathers.
  void ProbeChunk(const Chunk& in, Chunk* out) {
    size_t rows = in.num_rows();
    size_t right_rows = right_data_.num_rows();
    std::vector<uint32_t> lrows;
    std::vector<uint32_t> rrows;
    bool any_null_right = false;
    std::string key;
    for (size_t r = 0; r < rows; ++r) {
      bool matched = false;
      if (!keys_.empty()) {
        bool has_null =
            RowKeyEncoder::Encode(in, left_key_indexes_, r, &key);
        if (!has_null) {
          auto it = table_.find(key);
          if (it != table_.end()) {
            for (size_t m : it->second) {
              if (!PairPasses(in, r, m)) continue;
              matched = true;
              lrows.push_back(static_cast<uint32_t>(r));
              rrows.push_back(static_cast<uint32_t>(m));
              if (join_type_ == JoinType::kSemi) break;
            }
          }
        }
      } else {
        for (size_t m = 0; m < right_rows; ++m) {
          if (!PairPasses(in, r, m)) continue;
          matched = true;
          lrows.push_back(static_cast<uint32_t>(r));
          rrows.push_back(static_cast<uint32_t>(m));
          if (join_type_ == JoinType::kSemi) break;
        }
      }
      if (!matched && join_type_ == JoinType::kLeft) {
        lrows.push_back(static_cast<uint32_t>(r));
        rrows.push_back(kNullRight);
        any_null_right = true;
      }
    }
    if (lrows.empty()) return;
    size_t lw = in.num_columns();
    for (size_t c = 0; c < lw; ++c) {
      out->columns[c] = in.columns[c].Gather(lrows.data(), lrows.size());
    }
    if (join_type_ == JoinType::kSemi) return;
    for (size_t c = 0; c < right_data_.num_columns(); ++c) {
      const Column& src = right_data_.columns[c];
      Column& dst = out->columns[lw + c];
      if (!any_null_right) {
        dst = src.Gather(rrows.data(), rrows.size());
        continue;
      }
      dst.Reserve(rrows.size());
      for (uint32_t m : rrows) {
        if (m == kNullRight) {
          dst.AppendNull();
        } else {
          dst.AppendFrom(src, m);
        }
      }
    }
  }

  JoinType join_type_;
  ExecOperatorPtr left_;
  ExecOperatorPtr right_;
  std::vector<EquiKey> keys_;
  std::optional<BoundExpr> residual_;
  ExecContext* ctx_;

  std::vector<DataType> right_types_;
  std::vector<int> left_key_indexes_;
  std::vector<int> right_key_indexes_;
  Chunk right_data_;
  std::unordered_map<std::string, std::vector<size_t>> table_;
  bool built_ = false;
  int64_t accounted_bytes_ = 0;
  int32_t op_id_ = -1;
};

}  // namespace

Result<ExecOperatorPtr> MakeJoinExec(const JoinOp& op, ExecOperatorPtr left,
                                     ExecOperatorPtr right, ExecContext* ctx) {
  if (op.condition() == nullptr) {
    return Status::PlanError("join with null condition");
  }
  // Split the condition into hashable equi pairs and a bound residual.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(op.condition(), &conjuncts);
  std::vector<EquiKey> keys;
  std::vector<ExprPtr> residual_parts;
  const Schema& ls = left->schema();
  const Schema& rs = right->schema();
  for (const ExprPtr& c : conjuncts) {
    bool is_equi = false;
    if (c->kind() == ExprKind::kCompare && c->compare_op() == CompareOp::kEq &&
        c->child(0)->kind() == ExprKind::kColumnRef &&
        c->child(1)->kind() == ExprKind::kColumnRef) {
      ColumnId a = c->child(0)->column_id();
      ColumnId b = c->child(1)->column_id();
      // Keys hash on serialized bytes, so both sides must share a physical
      // representation; mismatched pairs fall back to the residual path.
      auto same_phys = [&](ColumnId l, ColumnId r) {
        return PhysicalTypeOf(*ls.TypeOf(l)) == PhysicalTypeOf(*rs.TypeOf(r));
      };
      if (ls.Contains(a) && rs.Contains(b) && same_phys(a, b)) {
        keys.push_back({ls.IndexOf(a), rs.IndexOf(b)});
        is_equi = true;
      } else if (ls.Contains(b) && rs.Contains(a) && same_phys(b, a)) {
        keys.push_back({ls.IndexOf(b), rs.IndexOf(a)});
        is_equi = true;
      }
    }
    if (!is_equi) residual_parts.push_back(c);
  }
  std::optional<BoundExpr> residual;
  if (!residual_parts.empty()) {
    ExprPtr residual_expr = CombineConjuncts(residual_parts);
    // Bind against the combined left+right schema (EvalRowPair splits at the
    // left width), including for semi joins whose *output* lacks right
    // columns.
    std::vector<ColumnInfo> combined = ls.columns();
    for (const ColumnInfo& c : rs.columns()) combined.push_back(c);
    FUSIONDB_ASSIGN_OR_RETURN(BoundExpr bound,
                              BindExpr(residual_expr, Schema(combined)));
    residual = std::move(bound);
  }
  if (op.join_type() == JoinType::kCross && (!keys.empty() || residual)) {
    return Status::PlanError("cross join must have TRUE condition");
  }
  return ExecOperatorPtr(new HashJoinExec(op, std::move(left), std::move(right),
                                          std::move(keys), std::move(residual),
                                          ctx));
}

}  // namespace fusiondb::internal
