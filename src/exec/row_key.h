// RowKeyEncoder: serializes a row's key columns into a flat byte string so
// hash tables key on std::string instead of std::vector<Value>. This is the
// usual engine trick for group-by / join / distinct keys: one buffer reuse
// per row instead of per-value boxing.
//
// Encoding per column: 1 null byte; when valid, 8 raw bytes for numeric
// physical types or varint length + bytes for strings. The encoding is
// prefix-free per column, so equal encodings imply structurally equal keys
// (NULL == NULL, matching SQL grouping semantics).
#ifndef FUSIONDB_EXEC_ROW_KEY_H_
#define FUSIONDB_EXEC_ROW_KEY_H_

#include <cstring>
#include <string>
#include <vector>

#include "types/chunk.h"

namespace fusiondb {

class RowKeyEncoder {
 public:
  /// Encodes the key of `row` drawn from `columns[indexes]` into *out
  /// (cleared first). Returns true when any key component is NULL.
  static bool Encode(const Chunk& chunk, const std::vector<int>& indexes,
                     size_t row, std::string* out) {
    out->clear();
    bool has_null = false;
    for (int idx : indexes) {
      has_null |= EncodeColumn(chunk.columns[idx], row, out);
    }
    return has_null;
  }

  /// Same encoding over a column-pointer view: key columns that need not be
  /// contiguous in (or belong to) any chunk. The compiled pipeline encodes
  /// group keys from dense columns evaluated straight off the scan morsel;
  /// the bytes match the chunk overload column-for-column.
  static bool Encode(const std::vector<const Column*>& columns, size_t row,
                     std::string* out) {
    out->clear();
    bool has_null = false;
    for (const Column* col : columns) {
      has_null |= EncodeColumn(*col, row, out);
    }
    return has_null;
  }

 private:
  static bool EncodeColumn(const Column& col, size_t row, std::string* out) {
    if (col.IsNull(row)) {
      out->push_back('\0');
      return true;
    }
    out->push_back('\1');
    switch (PhysicalTypeOf(col.type())) {
      case PhysicalType::kInt: {
        int64_t v = col.IntAt(row);
        AppendRaw(&v, sizeof(v), out);
        break;
      }
      case PhysicalType::kDouble: {
        double v = col.DoubleAt(row);
        AppendRaw(&v, sizeof(v), out);
        break;
      }
      case PhysicalType::kString: {
        const std::string& s = col.StringAt(row);
        uint64_t len = s.size();
        while (len >= 0x80) {
          out->push_back(static_cast<char>((len & 0x7F) | 0x80));
          len >>= 7;
        }
        out->push_back(static_cast<char>(len));
        out->append(s);
        break;
      }
    }
    return false;
  }

  static void AppendRaw(const void* p, size_t n, std::string* out) {
    out->append(static_cast<const char*>(p), n);
  }
};

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_ROW_KEY_H_
