// Fixed-size worker pool used by the morsel-driven parallel executor.
//
// The pool is intra-query: ExecContext owns one instance when the query
// runs with parallelism > 1, and operators use ParallelFor to fan work out
// over it. Only the query's driver thread (the one pulling Next() through
// the operator tree) starts parallel regions, and every region blocks until
// all of its morsels complete, so at most one region is active per pool at
// any time — operators never observe each other's tasks.
#ifndef FUSIONDB_EXEC_THREAD_POOL_H_
#define FUSIONDB_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/status.h"

namespace fusiondb {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is valid: every ParallelFor then runs
  /// entirely on the calling thread (useful for tests and as the degenerate
  /// parallelism=1 configuration).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Pool threads (excluding callers participating in ParallelFor).
  size_t num_threads() const { return threads_.size(); }

  /// Workers a ParallelFor region can use: pool threads + the caller.
  size_t num_workers() const { return threads_.size() + 1; }

  /// Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs body(worker, index) for every index in [0, n), handing indexes
  /// out morsel-at-a-time through an atomic cursor. The calling thread
  /// participates as worker 0; pool threads join as workers 1..W-1. Blocks
  /// until every claimed index has finished. `worker` is stable for the
  /// duration of one body invocation and always < num_workers(), so callers
  /// can index per-worker accumulators with it (note: one worker id can
  /// process many indexes, and with fewer busy threads than workers some
  /// worker ids may process none).
  ///
  /// The first non-OK Status returned by any body stops further claims and
  /// becomes the region's result (bodies already running still complete).
  Status ParallelFor(size_t n,
                     const std::function<Status(size_t worker, size_t index)>&
                         body);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_THREAD_POOL_H_
