#include "exec/agg_build.h"

#include "exec/row_key.h"
#include "expr/simplifier.h"

namespace fusiondb::internal {

std::vector<SelVector> MaskSet::Evaluate(const Chunk& chunk) const {
  std::vector<SelVector> conjunct_sels;
  conjunct_sels.reserve(conjuncts.size());
  for (const BoundExpr& c : conjuncts) {
    conjunct_sels.push_back(c.EvalFilter(chunk));
  }
  std::vector<SelVector> sels;
  sels.reserve(mask_slots.size());
  for (const std::vector<int>& slots : mask_slots) {
    SelVector sel;
    bool first = true;
    for (int s : slots) {
      sel = first ? conjunct_sels[s]
                  : SelVector::Intersect(sel, conjunct_sels[s]);
      first = false;
    }
    if (first) sel = SelVector::Dense(chunk.num_rows());
    sels.push_back(std::move(sel));
  }
  return sels;
}

Result<BoundAggs> BindAggs(const std::vector<AggregateItem>& items,
                           const Schema& input) {
  BoundAggs out;
  out.aggs.reserve(items.size());
  std::vector<std::string> mask_fps;      // dedupe whole masks
  std::vector<std::string> conjunct_fps;  // dedupe conjuncts across masks
  for (const AggregateItem& item : items) {
    BoundAgg b;
    b.item = &item;
    if (item.arg != nullptr) {
      FUSIONDB_ASSIGN_OR_RETURN(BoundExpr e, BindExpr(item.arg, input));
      b.arg = std::move(e);
      if (item.arg->kind() == ExprKind::kColumnRef) {
        b.arg_column = input.IndexOf(item.arg->column_id());
      }
    } else if (item.func != AggFunc::kCountStar) {
      return Status::PlanError("aggregate " + item.name + " missing argument");
    }
    if (item.mask != nullptr && !item.mask->IsLiteralBool(true)) {
      if (item.mask->type() != DataType::kBool) {
        return Status::TypeError("aggregate mask must be boolean");
      }
      std::string fp = ExprFingerprint(item.mask);
      for (size_t i = 0; i < mask_fps.size(); ++i) {
        if (mask_fps[i] == fp) {
          b.mask_slot = static_cast<int>(i);
          break;
        }
      }
      if (b.mask_slot < 0) {
        std::vector<ExprPtr> parts;
        SplitConjuncts(item.mask, &parts);
        std::vector<int> slots;
        slots.reserve(parts.size());
        for (const ExprPtr& part : parts) {
          std::string pfp = ExprFingerprint(part);
          int slot = -1;
          for (size_t i = 0; i < conjunct_fps.size(); ++i) {
            if (conjunct_fps[i] == pfp) {
              slot = static_cast<int>(i);
              break;
            }
          }
          if (slot < 0) {
            FUSIONDB_ASSIGN_OR_RETURN(BoundExpr e, BindExpr(part, input));
            slot = static_cast<int>(out.mask_set.conjuncts.size());
            out.mask_set.conjuncts.push_back(std::move(e));
            conjunct_fps.push_back(std::move(pfp));
          }
          slots.push_back(slot);
        }
        b.mask_slot = static_cast<int>(out.mask_set.mask_slots.size());
        out.mask_set.mask_slots.push_back(std::move(slots));
        mask_fps.push_back(std::move(fp));
      }
    }
    out.aggs.push_back(std::move(b));
  }
  return out;
}

void AccumulateView(const AggInputView& view, const std::vector<BoundAgg>& aggs,
                    GroupMap* groups, std::string* key) {
  size_t rows = view.rows;
  if (rows == 0) return;
  // Pass 1: resolve each row's group once. The map is node-based, so entry
  // pointers stay stable across later inserts.
  std::vector<GroupEntry*> row_groups(rows);
  for (size_t r = 0; r < rows; ++r) {
    RowKeyEncoder::Encode(view.group_cols, r, key);
    auto [it, inserted] = groups->try_emplace(*key);
    GroupEntry& entry = it->second;
    if (inserted) {
      entry.states.resize(aggs.size());
      entry.representative.reserve(view.group_cols.size());
      for (const Column* g : view.group_cols) {
        entry.representative.push_back(g->GetValue(r));
      }
    }
    row_groups[r] = &entry;
  }
  // Pass 2: per aggregate, one walk over its mask's surviving rows. Each
  // (group, aggregate) state still sees its rows in ascending order, so
  // floating-point sums accumulate in exactly the row-at-a-time order.
  SelVector dense;
  for (size_t a = 0; a < aggs.size(); ++a) {
    const BoundAgg& agg = aggs[a];
    if (agg.mask_slot < 0 && dense.size() != rows) {
      dense = SelVector::Dense(rows);
    }
    const SelVector& sel =
        agg.mask_slot >= 0 ? view.masks[agg.mask_slot] : dense;
    const Column* col = view.arg_cols[a];
    if (col != nullptr) {
      for (uint32_t r : sel) {
        row_groups[r]->states[a].AccumulateColumnRow(*agg.item, *col, r);
      }
    } else {
      // COUNT(*): no argument to read.
      for (uint32_t r : sel) {
        row_groups[r]->states[a].AccumulateRow(*agg.item, Value::Bool(true));
      }
    }
  }
}

void MergePartialGroups(const std::vector<BoundAgg>& aggs,
                        std::vector<GroupMap>* partials, GroupMap* merged) {
  for (GroupMap& pm : *partials) {
    for (auto& [k, entry] : pm) {
      auto [it, inserted] = merged->try_emplace(k);
      if (inserted) {
        it->second = std::move(entry);
      } else {
        GroupEntry& dst = it->second;
        for (size_t a = 0; a < aggs.size(); ++a) {
          dst.states[a].Merge(*aggs[a].item, std::move(entry.states[a]));
        }
      }
    }
  }
}

int64_t GroupMapBytes(const GroupMap& groups) {
  int64_t bytes = 0;
  for (const auto& [k, entry] : groups) {
    bytes += 48 + static_cast<int64_t>(k.size());
    for (const AggState& s : entry.states) bytes += AggStateBytes(s);
  }
  return bytes;
}

Chunk FinalizeGroups(GroupMap* groups, const std::vector<BoundAgg>& aggs,
                     const std::vector<DataType>& output_types,
                     size_t group_width) {
  Chunk out = Chunk::Empty(output_types);
  for (auto& [k, entry] : *groups) {
    for (size_t g = 0; g < group_width; ++g) {
      out.columns[g].AppendValue(entry.representative[g]);
    }
    for (size_t a = 0; a < entry.states.size(); ++a) {
      out.columns[group_width + a].AppendValue(
          entry.states[a].Finalize(*aggs[a].item));
    }
  }
  return out;
}

}  // namespace fusiondb::internal
