#include "exec/executor.h"

#include <chrono>
#include <thread>

#include "analysis/plan_verifier.h"
#include "exec/operators_internal.h"

namespace fusiondb {

Result<ExecOperatorPtr> BuildExecutor(const PlanPtr& plan, ExecContext* ctx) {
  using namespace internal;  // NOLINT: operator factories
  if (plan == nullptr) return Status::PlanError("null plan");
  // Leaves and the one non-executable kind, before children are built.
  if (plan->kind() == OpKind::kScan) {
    return MakeScanExec(Cast<ScanOp>(*plan), ctx);
  }
  if (plan->kind() == OpKind::kValues) {
    return MakeValuesExec(Cast<ValuesOp>(*plan), ctx);
  }
  if (plan->kind() == OpKind::kApply) {
    return Status::PlanError(
        "Apply (correlated subquery) must be decorrelated before execution");
  }
  std::vector<ExecOperatorPtr> children;
  children.reserve(plan->num_children());
  for (const PlanPtr& c : plan->children()) {
    FUSIONDB_ASSIGN_OR_RETURN(ExecOperatorPtr child, BuildExecutor(c, ctx));
    children.push_back(std::move(child));
  }
  switch (plan->kind()) {
    case OpKind::kFilter:
      return MakeFilterExec(Cast<FilterOp>(*plan), std::move(children[0]));
    case OpKind::kProject:
      return MakeProjectExec(Cast<ProjectOp>(*plan), std::move(children[0]));
    case OpKind::kJoin:
      return MakeJoinExec(Cast<JoinOp>(*plan), std::move(children[0]),
                          std::move(children[1]), ctx);
    case OpKind::kAggregate:
      return MakeAggregateExec(Cast<AggregateOp>(*plan), std::move(children[0]),
                               ctx);
    case OpKind::kWindow:
      return MakeWindowExec(Cast<WindowOp>(*plan), std::move(children[0]), ctx);
    case OpKind::kMarkDistinct:
      return MakeMarkDistinctExec(Cast<MarkDistinctOp>(*plan),
                                  std::move(children[0]), ctx);
    case OpKind::kUnionAll:
      return MakeUnionAllExec(Cast<UnionAllOp>(*plan), std::move(children));
    case OpKind::kSort:
      return MakeSortExec(Cast<SortOp>(*plan), std::move(children[0]), ctx);
    case OpKind::kLimit:
      return MakeLimitExec(Cast<LimitOp>(*plan), std::move(children[0]));
    case OpKind::kEnforceSingleRow:
      return MakeSingleRowExec(Cast<EnforceSingleRowOp>(*plan),
                               std::move(children[0]));
    case OpKind::kSpool:
      return MakeSpoolExec(Cast<SpoolOp>(*plan), std::move(children[0]), ctx);
    case OpKind::kScan:
    case OpKind::kValues:
    case OpKind::kApply:
      break;  // handled above
  }
  return Status::NotImplemented(std::string("no executor for ") +
                                OpKindName(plan->kind()));
}

Result<QueryResult> ExecutePlan(const PlanPtr& plan, size_t chunk_size,
                                size_t parallelism) {
  // Static checks first: a malformed plan is reported with the violated
  // invariant and the offending subplan instead of whichever binding error
  // the operator tree happens to hit first. (ApplyOp is structurally valid
  // pre-decorrelation, so it passes here and BuildExecutor rejects it.)
  FUSIONDB_RETURN_IF_ERROR(VerifyPlanIfEnabled(plan, "pre-execution"));
  ExecContext ctx;
  ctx.set_chunk_size(chunk_size);
  if (parallelism == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    parallelism = hw == 0 ? 1 : hw;
  }
  ctx.set_parallelism(parallelism);
  auto start = std::chrono::steady_clock::now();
  std::vector<Chunk> chunks;
  {
    // Scope the operator tree so destructors release accounted memory
    // before metrics are snapshotted (peak is preserved).
    FUSIONDB_ASSIGN_OR_RETURN(ExecOperatorPtr root, BuildExecutor(plan, &ctx));
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, root->Next());
      if (!chunk.has_value()) break;
      if (chunk->num_rows() == 0) continue;
      ctx.metrics().rows_produced += static_cast<int64_t>(chunk->num_rows());
      chunks.push_back(std::move(*chunk));
    }
  }
  auto end = std::chrono::steady_clock::now();
  double wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  return QueryResult(plan->schema(), std::move(chunks), ctx.FinalMetrics(),
                     wall_ms);
}

}  // namespace fusiondb
