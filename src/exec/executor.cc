#include "exec/executor.h"

#include "analysis/plan_verifier.h"
#include "exec/operators_internal.h"
#include "exec/pipeline.h"
#include "obs/metrics.h"
#include "obs/operator_stats.h"
#include "plan/spool.h"

namespace fusiondb {

namespace internal {

/// Kind-specific context recorded in an operator's stats slot so profiles
/// identify nodes without the full plan ("which scan was hot?"). Shared
/// with the pipeline compiler, which registers slots for the operators it
/// fuses so the id ↔ plan-node preorder mapping stays intact.
std::string NodeDetail(const LogicalOp& plan) {
  switch (plan.kind()) {
    case OpKind::kScan:
      return Cast<ScanOp>(plan).table()->name();
    case OpKind::kJoin:
      return JoinTypeName(Cast<JoinOp>(plan).join_type());
    case OpKind::kAggregate: {
      const auto& agg = Cast<AggregateOp>(plan);
      return "groups=" + std::to_string(agg.group_by().size()) +
             " aggs=" + std::to_string(agg.aggregates().size());
    }
    case OpKind::kLimit:
      return std::to_string(Cast<LimitOp>(plan).limit());
    case OpKind::kSpool:
      return "id=" + std::to_string(Cast<SpoolOp>(plan).spool_id());
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kWindow:
    case OpKind::kMarkDistinct:
    case OpKind::kUnionAll:
    case OpKind::kValues:
    case OpKind::kSort:
    case OpKind::kEnforceSingleRow:
    case OpKind::kApply:
      return std::string();
  }
  return std::string();
}

}  // namespace internal

namespace {

/// Transparent profiling decorator: owns the real operator and charges each
/// Next() call (and teardown) to the operator's stats slot. Only the driver
/// thread calls Next(), so the counters are plain int64s — parallel regions
/// live *inside* operators and never cross this wrapper. Inserted only when
/// ExecContext::profile_enabled(); a disabled build has zero wrappers.
class StatsExec final : public ExecOperator {
 public:
  StatsExec(ExecOperatorPtr inner, OperatorStats* stats)
      : ExecOperator(inner->schema()),
        inner_(std::move(inner)),
        stats_(stats) {}

  ~StatsExec() override {
    int64_t start = NowNanos();
    inner_.reset();
    stats_->close_ns += NowNanos() - start;
  }

  Result<std::optional<Chunk>> Next() override {
    int64_t start = NowNanos();
    Result<std::optional<Chunk>> result = inner_->Next();
    stats_->next_ns += NowNanos() - start;
    ++stats_->next_calls;
    if (result.ok() && result.ValueOrDie().has_value()) {
      ++stats_->chunks_out;
      stats_->rows_out +=
          static_cast<int64_t>(result.ValueOrDie()->num_rows());
    }
    return result;
  }

 private:
  ExecOperatorPtr inner_;
  OperatorStats* stats_;
};

/// The factory switch, unchanged from the pre-profiling executor: children
/// already built, `plan` is never Scan/Values/Apply here.
Result<ExecOperatorPtr> MakeOperator(const PlanPtr& plan,
                                     std::vector<ExecOperatorPtr> children,
                                     ExecContext* ctx) {
  using namespace internal;  // NOLINT: operator factories
  switch (plan->kind()) {
    case OpKind::kFilter:
      return MakeFilterExec(Cast<FilterOp>(*plan), std::move(children[0]));
    case OpKind::kProject:
      return MakeProjectExec(Cast<ProjectOp>(*plan), std::move(children[0]));
    case OpKind::kJoin:
      return MakeJoinExec(Cast<JoinOp>(*plan), std::move(children[0]),
                          std::move(children[1]), ctx);
    case OpKind::kAggregate:
      return MakeAggregateExec(Cast<AggregateOp>(*plan), std::move(children[0]),
                               ctx);
    case OpKind::kWindow:
      return MakeWindowExec(Cast<WindowOp>(*plan), std::move(children[0]), ctx);
    case OpKind::kMarkDistinct:
      return MakeMarkDistinctExec(Cast<MarkDistinctOp>(*plan),
                                  std::move(children[0]), ctx);
    case OpKind::kUnionAll:
      return MakeUnionAllExec(Cast<UnionAllOp>(*plan), std::move(children));
    case OpKind::kSort:
      return MakeSortExec(Cast<SortOp>(*plan), std::move(children[0]), ctx);
    case OpKind::kLimit:
      return MakeLimitExec(Cast<LimitOp>(*plan), std::move(children[0]));
    case OpKind::kEnforceSingleRow:
      return MakeSingleRowExec(Cast<EnforceSingleRowOp>(*plan),
                               std::move(children[0]));
    case OpKind::kSpool:
      return MakeSpoolExec(Cast<SpoolOp>(*plan), std::move(children[0]), ctx);
    case OpKind::kScan:
    case OpKind::kValues:
    case OpKind::kApply:
      break;  // handled by the caller
  }
  return Status::NotImplemented(std::string("no executor for ") +
                                OpKindName(plan->kind()));
}

/// True for the operator kinds that can head (or continue) a compilable
/// non-blocking chain.
bool IsChainKind(OpKind kind) {
  return kind == OpKind::kFilter || kind == OpKind::kProject ||
         kind == OpKind::kAggregate;
}

/// Recursive build with preorder operator-id assignment. Ids are handed out
/// parent-before-children in the exact order PlanToString and the profile
/// JSON walk the tree, which is what makes the id ↔ plan-node mapping
/// stable with no side table.
///
/// `in_chain` marks nodes already covered by an enclosing pipeline attempt
/// (compiled or fallen back): they must not re-attempt compilation, or a
/// failed chain would re-record one fallback per member.
Result<ExecOperatorPtr> BuildNode(const PlanPtr& plan, ExecContext* ctx,
                                  int32_t parent, bool in_chain) {
  using namespace internal;  // NOLINT: operator factories
  if (plan == nullptr) return Status::PlanError("null plan");
  if (plan->kind() == OpKind::kApply) {
    return Status::PlanError(
        "Apply (correlated subquery) must be decorrelated before execution");
  }
  const bool profiled = ctx->profile_enabled();
  int32_t id = -1;
  int64_t build_start = 0;
  if (profiled) {
    id = ctx->RegisterOperator(OpKindName(plan->kind()), NodeDetail(*plan),
                               parent);
    build_start = NowNanos();
  }
  const bool chain_head = IsChainKind(plan->kind()) && !in_chain;
  if (chain_head && ctx->options().compile_pipelines) {
    // Fallible work (chain walk, expression composition, binding) happens
    // before any interior slot is registered, so a fallback leaves the
    // preorder id sequence exactly as the interpreted build produces it.
    FUSIONDB_ASSIGN_OR_RETURN(ExecOperatorPtr pipe,
                              TryCompilePipeline(plan, ctx, id));
    if (pipe != nullptr) {
      if (!profiled) return pipe;
      OperatorStats* stats = ctx->op_stats(id);
      stats->open_ns = NowNanos() - build_start;
      return ExecOperatorPtr(new StatsExec(std::move(pipe), stats));
    }
  }
  std::vector<ExecOperatorPtr> children;
  children.reserve(plan->num_children());
  for (const PlanPtr& c : plan->children()) {
    // Filter/Project children of a chain node belong to the same chain.
    const bool child_in_chain =
        IsChainKind(plan->kind()) && (c->kind() == OpKind::kFilter ||
                                      c->kind() == OpKind::kProject);
    FUSIONDB_ASSIGN_OR_RETURN(ExecOperatorPtr child,
                              BuildNode(c, ctx, id, child_in_chain));
    children.push_back(std::move(child));
  }
  // Blocking operators capture building_op() in their constructors to
  // attribute their memory accounting to their own slot.
  ctx->set_building_op(id);
  ExecOperatorPtr op;
  if (plan->kind() == OpKind::kScan) {
    FUSIONDB_ASSIGN_OR_RETURN(op, MakeScanExec(Cast<ScanOp>(*plan), ctx));
  } else if (plan->kind() == OpKind::kValues) {
    FUSIONDB_ASSIGN_OR_RETURN(op, MakeValuesExec(Cast<ValuesOp>(*plan), ctx));
  } else {
    FUSIONDB_ASSIGN_OR_RETURN(op,
                              MakeOperator(plan, std::move(children), ctx));
  }
  ctx->set_building_op(-1);
  if (!profiled) return op;
  OperatorStats* stats = ctx->op_stats(id);
  stats->open_ns = NowNanos() - build_start;  // subtree build time
  return ExecOperatorPtr(new StatsExec(std::move(op), stats));
}

}  // namespace

Result<ExecOperatorPtr> BuildExecutor(const PlanPtr& plan, ExecContext* ctx) {
  return BuildNode(plan, ctx, /*parent=*/-1, /*in_chain=*/false);
}

void RecordExecutionMetrics(MetricsRegistry* registry,
                            const ExecMetrics& metrics,
                            const std::vector<OperatorStats>& op_stats,
                            const std::vector<PipelineRecord>& pipelines,
                            int64_t chunks, double wall_ms) {
  if (registry == nullptr) return;
  int64_t pipelines_compiled = 0;
  for (const PipelineRecord& p : pipelines) {
    if (p.compiled()) {
      ++pipelines_compiled;
    } else {
      registry->Add(
          registry->Counter("fusiondb_exec_pipeline_fallbacks_total{reason=\"" +
                            p.fallback + "\"}"),
          1);
    }
  }
  registry->Add(registry->Counter("fusiondb_exec_pipelines_compiled_total"),
                pipelines_compiled);
  registry->Add(registry->Counter("fusiondb_exec_queries_total"), 1);
  registry->Add(registry->Counter("fusiondb_exec_bytes_scanned_total"),
                metrics.bytes_scanned);
  registry->Add(registry->Counter("fusiondb_exec_rows_scanned_total"),
                metrics.rows_scanned);
  registry->Add(registry->Counter("fusiondb_exec_partitions_scanned_total"),
                metrics.partitions_scanned);
  registry->Add(registry->Counter("fusiondb_exec_partitions_pruned_total"),
                metrics.partitions_pruned);
  registry->Add(registry->Counter("fusiondb_exec_rows_produced_total"),
                metrics.rows_produced);
  registry->Add(registry->Counter("fusiondb_exec_chunks_produced_total"),
                chunks);
  registry->Add(registry->Counter("fusiondb_exec_spool_bytes_written_total"),
                metrics.spool_bytes_written);
  registry->Add(registry->Counter("fusiondb_exec_spool_bytes_read_total"),
                metrics.spool_bytes_read);
  registry->Record(registry->Histogram("fusiondb_exec_query_wall_us"),
                   static_cast<int64_t>(wall_ms * 1e3));
  registry->Record(registry->Histogram("fusiondb_exec_query_bytes_scanned"),
                   metrics.bytes_scanned);
  int64_t spool_hits = 0;
  int64_t spool_builds = 0;
  for (const OperatorStats& s : op_stats) {
    spool_hits += s.spool_hits;
    spool_builds += s.spool_builds;
    if (s.bytes_scanned > 0 && s.kind == OpKindName(OpKind::kScan) &&
        !s.detail.empty()) {
      registry->Add(
          registry->Counter("fusiondb_exec_table_bytes_scanned_total{table=\"" +
                            s.detail + "\"}"),
          s.bytes_scanned);
    }
  }
  registry->Add(registry->Counter("fusiondb_exec_spool_hits_total"),
                spool_hits);
  registry->Add(registry->Counter("fusiondb_exec_spool_builds_total"),
                spool_builds);
}

Result<QueryResult> ExecutePlan(const PlanPtr& plan,
                                const ExecOptions& options) {
  // Static checks first: a malformed plan is reported with the violated
  // invariant and the offending subplan instead of whichever binding error
  // the operator tree happens to hit first. (ApplyOp is structurally valid
  // pre-decorrelation, so it passes here and BuildExecutor rejects it.)
  FUSIONDB_RETURN_IF_ERROR(VerifyPlanIfEnabled(plan, "pre-execution"));
  ExecContext ctx;
  ctx.Init(options);
  int64_t start = NowNanos();
  std::vector<Chunk> chunks;
  {
    // Scope the operator tree so destructors release accounted memory
    // before metrics are snapshotted (peak is preserved).
    FUSIONDB_ASSIGN_OR_RETURN(ExecOperatorPtr root, BuildExecutor(plan, &ctx));
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, root->Next());
      if (!chunk.has_value()) break;
      if (chunk->num_rows() == 0) continue;
      ctx.metrics().rows_produced += static_cast<int64_t>(chunk->num_rows());
      chunks.push_back(std::move(*chunk));
    }
  }
  double wall_ms = static_cast<double>(NowNanos() - start) * 1e-6;
  ExecMetrics final_metrics = ctx.FinalMetrics();
  std::vector<OperatorStats> op_stats = ctx.FinalOperatorStats();
  RecordExecutionMetrics(options.metrics, final_metrics, op_stats,
                         ctx.pipelines(), static_cast<int64_t>(chunks.size()),
                         wall_ms);
  return QueryResult(plan->schema(), std::move(chunks),
                     std::move(final_metrics), wall_ms, std::move(op_stats),
                     ctx.pipelines());
}

}  // namespace fusiondb
