#include "exec/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

namespace fusiondb {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor region. The cursor is the morsel
/// dispenser; `pending` counts helper tasks that have not yet finished so
/// the caller knows when the region is fully drained.
struct ForRegion {
  std::atomic<size_t> cursor{0};
  std::atomic<bool> failed{false};
  size_t n = 0;
  const std::function<Status(size_t, size_t)>* body = nullptr;

  std::mutex mu;
  std::condition_variable done_cv;
  Status first_error;
  size_t pending = 0;

  void Drain(size_t worker) {
    while (!failed.load(std::memory_order_relaxed)) {
      size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= n) return;
      Status st = (*body)(worker, index);
      if (!st.ok()) {
        bool expected = false;
        if (failed.compare_exchange_strong(expected, true)) {
          std::lock_guard<std::mutex> lock(mu);
          first_error = std::move(st);
        }
        return;
      }
    }
  }
};

}  // namespace

Status ThreadPool::ParallelFor(
    size_t n, const std::function<Status(size_t, size_t)>& body) {
  if (n == 0) return Status::OK();
  auto region = std::make_shared<ForRegion>();
  region->n = n;
  region->body = &body;
  // Never more helpers than remaining work; the caller covers one share.
  size_t helpers = std::min(threads_.size(), n > 0 ? n - 1 : size_t{0});
  region->pending = helpers;
  for (size_t h = 0; h < helpers; ++h) {
    size_t worker = h + 1;
    Submit([region, worker] {
      region->Drain(worker);
      std::lock_guard<std::mutex> lock(region->mu);
      if (--region->pending == 0) region->done_cv.notify_all();
    });
  }
  region->Drain(/*worker=*/0);
  std::unique_lock<std::mutex> lock(region->mu);
  region->done_cv.wait(lock, [&region] { return region->pending == 0; });
  return region->first_error;
}

}  // namespace fusiondb
