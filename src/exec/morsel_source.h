// MorselSource: the shared scan front-end — partition pruning, page decode,
// slicing into chunk_size morsels, and scanned-bytes accounting — behind
// both execution models. ScanExec (the pull path) streams its morsels
// through Next(); a CompiledPipeline (exec/pipeline.h) drives the same
// source push-style, one tight loop per morsel. Keeping one implementation
// guarantees the two paths read identical bytes, prune identical
// partitions, and produce identical chunk boundaries, which is what makes
// compiled-vs-interpreted runs reconcile byte-for-byte (metrics included).
//
// Implemented in scan_exec.cc next to ScanExec, its original home.
#ifndef FUSIONDB_EXEC_MORSEL_SOURCE_H_
#define FUSIONDB_EXEC_MORSEL_SOURCE_H_

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "exec/exec_context.h"
#include "plan/logical_plan.h"

namespace fusiondb::internal {

/// Constraints over the partitioning column extracted from the scan's
/// pruning filter: a [lo, hi] interval intersection plus an optional point
/// set (from = and IN conjuncts).
struct PruneSpec {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  bool has_points = false;
  std::vector<int64_t> points;

  bool KeepsRange(int64_t min_key, int64_t max_key) const {
    if (max_key < lo || min_key > hi) return false;
    if (has_points) {
      for (int64_t p : points) {
        if (p >= min_key && p <= max_key && p >= lo && p <= hi) return true;
      }
      return false;
    }
    return true;
  }
};

/// Folds one conjunct into the prune spec when it constrains `part_col`.
/// Unrecognized shapes are ignored (pruning is best-effort and the filter
/// above the scan re-checks rows anyway).
void ApplyPruneConjunct(const ExprPtr& e, ColumnId part_col, PruneSpec* spec);

class MorselSource {
 public:
  /// `op_id` is the scan's stats slot (-1 when unprofiled); decoded bytes
  /// are attributed to it exactly as ScanExec does.
  MorselSource(const ScanOp& op, ExecContext* ctx, int32_t op_id);

  const std::vector<DataType>& output_types() const { return types_; }

  /// Total partition count before pruning — the size callers need when
  /// collecting per-partition results in partition order.
  size_t num_partitions() const { return table_->partitions().size(); }

  /// Serial iteration: the next morsel of up to chunk_size rows (whole
  /// partitions hand their decoded columns over without a copy), or nullopt
  /// at end of table. Charges scan metrics inline on the driver thread.
  Result<std::optional<Chunk>> NextSerial();

  /// Parallel iteration: one ParallelFor over the partitions. For every
  /// surviving partition, `fn(worker, partition_index, slices)` runs on the
  /// claiming worker with the partition's morsels (sliced exactly as
  /// NextSerial slices them). Workers accumulate scan metrics into private
  /// shards merged once at region end; the per-scan byte total is
  /// attributed on the driver after the merge, so every counter is
  /// thread-count-invariant.
  Status ParallelPartitions(
      const std::function<Status(size_t worker, size_t partition,
                                 std::vector<Chunk> slices)>& fn);

  /// Parallel decode that keeps the chunks: appends every partition's
  /// morsels to `out` in partition order (the serial streaming order).
  Status DecodeAll(std::vector<Chunk>* out);

 private:
  TablePtr table_;
  std::vector<int> table_columns_;
  ExecContext* ctx_;
  int32_t op_id_ = -1;
  std::vector<DataType> types_;
  PruneSpec prune_;
  // Serial iteration state.
  size_t partition_ = 0;
  size_t offset_ = 0;
  std::vector<Column> decoded_;  // pages of the partition being streamed
};

}  // namespace fusiondb::internal

#endif  // FUSIONDB_EXEC_MORSEL_SOURCE_H_
