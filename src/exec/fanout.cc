#include "exec/fanout.h"

#include <optional>
#include <utility>

#include "analysis/plan_verifier.h"
#include "expr/evaluator.h"
#include "obs/operator_stats.h"

namespace fusiondb {

namespace {

/// A consumer bound against the executed plan's root schema.
struct BoundConsumer {
  std::optional<BoundExpr> filter;
  std::vector<BoundExpr> columns;
  bool passthrough = false;  // no filter, identity column list
  Schema schema;
  std::vector<Chunk> chunks;
  int64_t rows = 0;
};

/// True when `consumer` forwards the plan's output unchanged: no filter and
/// column i reads root schema position i (output ids/names may differ —
/// they only label the result).
bool IsPassthrough(const FanOutConsumer& consumer, const Schema& root) {
  if (consumer.filter != nullptr) return false;
  if (consumer.columns.size() != root.num_columns()) return false;
  for (size_t i = 0; i < consumer.columns.size(); ++i) {
    const ExprPtr& e = consumer.columns[i].expr;
    if (e == nullptr || e->kind() != ExprKind::kColumnRef ||
        e->column_id() != root.column(i).id) {
      return false;
    }
  }
  return true;
}

}  // namespace

FanOutConsumer FanOutConsumer::Passthrough(const Schema& schema) {
  FanOutConsumer c;
  c.columns.reserve(schema.num_columns());
  for (const ColumnInfo& col : schema.columns()) {
    c.columns.push_back(
        {col.id, col.name, Expr::MakeColumnRef(col.id, col.type)});
  }
  return c;
}

Result<FanOutResult> ExecuteFanOut(const PlanPtr& plan,
                                   const std::vector<FanOutConsumer>& consumers,
                                   const ExecOptions& options) {
  if (consumers.empty()) {
    return Status::InvalidArgument("fan-out requires at least one consumer");
  }
  FUSIONDB_RETURN_IF_ERROR(VerifyPlanIfEnabled(plan, "pre-execution"));

  const Schema& root = plan->schema();
  std::vector<BoundConsumer> bound(consumers.size());
  for (size_t i = 0; i < consumers.size(); ++i) {
    const FanOutConsumer& c = consumers[i];
    BoundConsumer& b = bound[i];
    if (c.columns.empty()) {
      return Status::InvalidArgument("fan-out consumer has no columns");
    }
    if (c.filter != nullptr) {
      FUSIONDB_ASSIGN_OR_RETURN(BoundExpr f, BindExpr(c.filter, root));
      b.filter.emplace(std::move(f));
    }
    std::vector<ColumnInfo> cols;
    cols.reserve(c.columns.size());
    for (const NamedExpr& e : c.columns) {
      FUSIONDB_ASSIGN_OR_RETURN(BoundExpr be, BindExpr(e.expr, root));
      cols.push_back({e.id, e.name, be.type()});
      b.columns.push_back(std::move(be));
    }
    b.schema = Schema(std::move(cols));
    b.passthrough = IsPassthrough(c, root);
  }

  ExecContext ctx;
  ctx.Init(options);

  int64_t start = NowNanos();
  int64_t chunks_produced = 0;
  {
    // Scope the operator tree so destructors release accounted memory
    // before metrics are snapshotted (as in ExecutePlan).
    FUSIONDB_ASSIGN_OR_RETURN(ExecOperatorPtr exec_root,
                              BuildExecutor(plan, &ctx));
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, exec_root->Next());
      if (!chunk.has_value()) break;
      if (chunk->num_rows() == 0) continue;
      ctx.metrics().rows_produced += static_cast<int64_t>(chunk->num_rows());
      ++chunks_produced;
      for (size_t i = 0; i < bound.size(); ++i) {
        BoundConsumer& b = bound[i];
        if (b.passthrough) {
          // Sole consumer: steal the chunk (the solo fast path costs no
          // more than ExecutePlan). Otherwise each passthrough copies.
          b.rows += static_cast<int64_t>(chunk->num_rows());
          b.chunks.push_back(i + 1 == bound.size() ? std::move(*chunk)
                                                   : *chunk);
          continue;
        }
        Chunk out;
        if (b.filter.has_value()) {
          SelVector sel = b.filter->EvalFilter(*chunk);
          if (sel.empty()) continue;
          for (const BoundExpr& col : b.columns) {
            out.columns.push_back(col.EvalSel(*chunk, sel));
          }
        } else {
          for (const BoundExpr& col : b.columns) {
            out.columns.push_back(col.EvalAll(*chunk));
          }
        }
        b.rows += static_cast<int64_t>(out.num_rows());
        b.chunks.push_back(std::move(out));
      }
    }
  }
  double wall_ms = static_cast<double>(NowNanos() - start) * 1e-6;

  FanOutResult out;
  out.metrics = ctx.FinalMetrics();
  out.operator_stats = ctx.FinalOperatorStats();
  out.wall_ms = wall_ms;
  RecordExecutionMetrics(options.metrics, out.metrics, out.operator_stats,
                         ctx.pipelines(), chunks_produced, wall_ms);
  out.results.reserve(bound.size());
  for (BoundConsumer& b : bound) {
    ExecMetrics metrics = out.metrics;
    metrics.rows_produced = b.rows;
    out.results.emplace_back(std::move(b.schema), std::move(b.chunks), metrics,
                             wall_ms, out.operator_stats, ctx.pipelines());
  }
  return out;
}

}  // namespace fusiondb
