// Execution knobs. One aggregate struct travels from the entry points
// (ExecutePlan, ExecuteFanOut, the server's session layer) into ExecContext
// via ExecContext::Init, so every operator constructor sees one coherent
// view of chunk_size / parallelism / profiling / pipeline compilation —
// call sites name what they change and inherit the rest:
//
//   ExecutePlan(plan);                            // all defaults
//   ExecutePlan(plan, {.parallelism = 4});        // 4-way morsel-driven
//   ExecutePlan(plan, {.profile = false});        // no instrumentation
#ifndef FUSIONDB_EXEC_EXEC_OPTIONS_H_
#define FUSIONDB_EXEC_EXEC_OPTIONS_H_

#include <cstddef>

namespace fusiondb {

class MetricsRegistry;  // obs/metrics.h — recorded into, never rendered here

struct ExecOptions {
  /// Rows per output chunk.
  size_t chunk_size = 4096;

  /// Morsel-driven intra-query parallelism degree:
  ///   1 (default) — the historical single-threaded execution, byte-for-byte;
  ///   0           — auto: std::thread::hardware_concurrency();
  ///   n > 1       — a pool of n-1 workers plus the driver thread. Scans hand
  ///                 out partition morsels, aggregation builds per-worker
  ///                 partial hash tables merged at finalize, and join builds
  ///                 partition the key encoding; results and all additive
  ///                 metrics are thread-count-invariant.
  size_t parallelism = 1;

  /// Per-operator stats collection (OperatorStats slots + chunk-granularity
  /// timers on the driver thread). On by default; the overhead knob exists
  /// so benches can measure the instrumentation cost.
  bool profile = true;

  /// Bind-time pipeline compilation (exec/pipeline.h): non-blocking
  /// scan→filter→project(→aggregate) chains execute as one push-based loop
  /// per morsel instead of a pull chain of operators. On by default; off
  /// retains the interpreted pull path verbatim, which the differential
  /// tests use as the oracle (DESIGN.md §13).
  bool compile_pipelines = true;

  /// Optional service-level metrics sink (obs/metrics.h). When set, every
  /// completed execution records its query counters — bytes/rows scanned,
  /// per-table scan bytes, spool hits/builds, rows/chunks produced, wall
  /// time — into the registry after the drain. Recording happens once per
  /// query (never per chunk), so always-on cost is a handful of counter
  /// bumps. Null (the default) records nothing.
  MetricsRegistry* metrics = nullptr;
};

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_EXEC_OPTIONS_H_
