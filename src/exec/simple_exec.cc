// Streaming operators with no buffered state: Filter, Project, UnionAll,
// Values, Limit, EnforceSingleRow.
#include <optional>

#include "exec/operators_internal.h"
#include "expr/evaluator.h"

namespace fusiondb::internal {

namespace {

class FilterExec final : public ExecOperator {
 public:
  FilterExec(const FilterOp& op, ExecOperatorPtr child, BoundExpr predicate)
      : ExecOperator(op.schema()),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {}

  Result<std::optional<Chunk>> Next() override {
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      SelVector sel = predicate_.EvalFilter(*in);
      if (sel.size() == in->num_rows()) {
        return in;  // everything passes: pass through
      }
      if (sel.empty()) continue;
      return std::optional<Chunk>(in->Gather(sel));
    }
  }

 private:
  ExecOperatorPtr child_;
  BoundExpr predicate_;
};

class ProjectExec final : public ExecOperator {
 public:
  ProjectExec(const ProjectOp& op, ExecOperatorPtr child,
              std::vector<BoundExpr> exprs)
      : ExecOperator(op.schema()),
        child_(std::move(child)),
        exprs_(std::move(exprs)) {}

  Result<std::optional<Chunk>> Next() override {
    FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
    if (!in.has_value()) return std::optional<Chunk>();
    Chunk out;
    out.columns.reserve(exprs_.size());
    for (const BoundExpr& e : exprs_) {
      out.columns.push_back(e.EvalAll(*in));
    }
    return std::optional<Chunk>(std::move(out));
  }

 private:
  ExecOperatorPtr child_;
  std::vector<BoundExpr> exprs_;
};

class UnionAllExec final : public ExecOperator {
 public:
  UnionAllExec(const UnionAllOp& op, std::vector<ExecOperatorPtr> children,
               std::vector<std::vector<int>> input_positions)
      : ExecOperator(op.schema()),
        children_(std::move(children)),
        input_positions_(std::move(input_positions)) {}

  Result<std::optional<Chunk>> Next() override {
    while (current_ < children_.size()) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in,
                                children_[current_]->Next());
      if (!in.has_value()) {
        ++current_;
        continue;
      }
      const std::vector<int>& positions = input_positions_[current_];
      Chunk out = Chunk::Empty(OutputTypes());
      for (size_t o = 0; o < positions.size(); ++o) {
        out.columns[o].AppendColumn(in->columns[positions[o]]);
      }
      return std::optional<Chunk>(std::move(out));
    }
    return std::optional<Chunk>();
  }

 private:
  std::vector<ExecOperatorPtr> children_;
  // For each child: child column position feeding each output position.
  std::vector<std::vector<int>> input_positions_;
  size_t current_ = 0;
};

class ValuesExec final : public ExecOperator {
 public:
  ValuesExec(const ValuesOp& op) : ExecOperator(op.schema()), op_(op) {}

  Result<std::optional<Chunk>> Next() override {
    if (done_) return std::optional<Chunk>();
    done_ = true;
    Chunk out = Chunk::Empty(OutputTypes());
    for (const std::vector<Value>& row : op_.rows()) {
      if (row.size() != out.num_columns()) {
        return Status::PlanError("VALUES row arity mismatch");
      }
      for (size_t c = 0; c < row.size(); ++c) {
        out.columns[c].AppendValue(row[c]);
      }
    }
    return std::optional<Chunk>(std::move(out));
  }

 private:
  const ValuesOp& op_;  // owned by the plan, which outlives execution
  bool done_ = false;
};

class LimitExec final : public ExecOperator {
 public:
  LimitExec(const LimitOp& op, ExecOperatorPtr child)
      : ExecOperator(op.schema()),
        child_(std::move(child)),
        remaining_(op.limit()) {}

  Result<std::optional<Chunk>> Next() override {
    if (remaining_ <= 0) return std::optional<Chunk>();
    FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
    if (!in.has_value()) return std::optional<Chunk>();
    int64_t rows = static_cast<int64_t>(in->num_rows());
    if (rows <= remaining_) {
      remaining_ -= rows;
      return in;
    }
    Chunk out = Chunk::Empty(OutputTypes());
    out.AppendRange(*in, 0, static_cast<size_t>(remaining_));
    remaining_ = 0;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  ExecOperatorPtr child_;
  int64_t remaining_;
};

class SingleRowExec final : public ExecOperator {
 public:
  SingleRowExec(const EnforceSingleRowOp& op, ExecOperatorPtr child)
      : ExecOperator(op.schema()), child_(std::move(child)) {}

  Result<std::optional<Chunk>> Next() override {
    if (done_) return std::optional<Chunk>();
    done_ = true;
    Chunk out = Chunk::Empty(OutputTypes());
    int64_t total = 0;
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) break;
      total += static_cast<int64_t>(in->num_rows());
      if (total > 1) {
        return Status::ExecutionError(
            "scalar subquery returned more than one row");
      }
      out.AppendChunk(*in);
    }
    if (total != 1) {
      return Status::ExecutionError("scalar subquery returned no rows");
    }
    return std::optional<Chunk>(std::move(out));
  }

 private:
  ExecOperatorPtr child_;
  bool done_ = false;
};

}  // namespace

Result<ExecOperatorPtr> MakeFilterExec(const FilterOp& op,
                                       ExecOperatorPtr child) {
  if (op.predicate() == nullptr) {
    return Status::PlanError("filter with null predicate");
  }
  if (op.predicate()->type() != DataType::kBool) {
    return Status::TypeError("filter predicate must be boolean, got " +
                             std::string(DataTypeName(op.predicate()->type())));
  }
  FUSIONDB_ASSIGN_OR_RETURN(BoundExpr bound,
                            BindExpr(op.predicate(), child->schema()));
  return ExecOperatorPtr(new FilterExec(op, std::move(child), std::move(bound)));
}

Result<ExecOperatorPtr> MakeProjectExec(const ProjectOp& op,
                                        ExecOperatorPtr child) {
  std::vector<BoundExpr> bound;
  bound.reserve(op.exprs().size());
  for (const NamedExpr& e : op.exprs()) {
    if (e.expr == nullptr) return Status::PlanError("projection with null expr");
    FUSIONDB_ASSIGN_OR_RETURN(BoundExpr b, BindExpr(e.expr, child->schema()));
    bound.push_back(std::move(b));
  }
  return ExecOperatorPtr(
      new ProjectExec(op, std::move(child), std::move(bound)));
}

Result<ExecOperatorPtr> MakeUnionAllExec(const UnionAllOp& op,
                                         std::vector<ExecOperatorPtr> children) {
  std::vector<std::vector<int>> positions;
  positions.reserve(children.size());
  for (size_t c = 0; c < children.size(); ++c) {
    const std::vector<ColumnId>& ids = op.input_columns()[c];
    if (ids.size() != op.schema().num_columns()) {
      return Status::PlanError("union input mapping width mismatch");
    }
    std::vector<int> pos;
    pos.reserve(ids.size());
    for (ColumnId id : ids) {
      int idx = children[c]->schema().IndexOf(id);
      if (idx < 0) {
        return Status::PlanError("union input column #" + std::to_string(id) +
                                 " not found in child schema");
      }
      pos.push_back(idx);
    }
    positions.push_back(std::move(pos));
  }
  return ExecOperatorPtr(
      new UnionAllExec(op, std::move(children), std::move(positions)));
}

Result<ExecOperatorPtr> MakeValuesExec(const ValuesOp& op, ExecContext* ctx) {
  (void)ctx;
  return ExecOperatorPtr(new ValuesExec(op));
}

Result<ExecOperatorPtr> MakeLimitExec(const LimitOp& op, ExecOperatorPtr child) {
  if (op.limit() < 0) return Status::PlanError("negative limit");
  return ExecOperatorPtr(new LimitExec(op, std::move(child)));
}

Result<ExecOperatorPtr> MakeSingleRowExec(const EnforceSingleRowOp& op,
                                          ExecOperatorPtr child) {
  return ExecOperatorPtr(new SingleRowExec(op, std::move(child)));
}

}  // namespace fusiondb::internal
