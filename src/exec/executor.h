// Translation of logical plans into physical operator trees, and the
// convenience entry point that drains a plan into a QueryResult.
#ifndef FUSIONDB_EXEC_EXECUTOR_H_
#define FUSIONDB_EXEC_EXECUTOR_H_

#include "exec/operator.h"
#include "exec/query_result.h"
#include "plan/logical_plan.h"

namespace fusiondb {

class MetricsRegistry;  // obs/metrics.h — recorded into, never rendered here

/// Builds the physical tree for `plan`. The plan must outlive the returned
/// operators. Fails with kPlanError on malformed/unbound plans, and on
/// ApplyOp (correlated subqueries must be decorrelated first).
Result<ExecOperatorPtr> BuildExecutor(const PlanPtr& plan, ExecContext* ctx);

/// Execution knobs for ExecutePlan. An aggregate, so call sites name what
/// they change and inherit the rest:
///
///   ExecutePlan(plan);                            // all defaults
///   ExecutePlan(plan, {.parallelism = 4});        // 4-way morsel-driven
///   ExecutePlan(plan, {.profile = false});        // no instrumentation
struct ExecOptions {
  /// Rows per output chunk.
  size_t chunk_size = 4096;

  /// Morsel-driven intra-query parallelism degree:
  ///   1 (default) — the historical single-threaded execution, byte-for-byte;
  ///   0           — auto: std::thread::hardware_concurrency();
  ///   n > 1       — a pool of n-1 workers plus the driver thread. Scans hand
  ///                 out partition morsels, aggregation builds per-worker
  ///                 partial hash tables merged at finalize, and join builds
  ///                 partition the key encoding; results and all additive
  ///                 metrics are thread-count-invariant.
  size_t parallelism = 1;

  /// Per-operator stats collection (OperatorStats slots + chunk-granularity
  /// timers on the driver thread). On by default; the overhead knob exists
  /// so benches can measure the instrumentation cost.
  bool profile = true;

  /// Optional service-level metrics sink (obs/metrics.h). When set, every
  /// completed execution records its query counters — bytes/rows scanned,
  /// per-table scan bytes, spool hits/builds, rows/chunks produced, wall
  /// time — into the registry after the drain. Recording happens once per
  /// query (never per chunk), so always-on cost is a handful of counter
  /// bumps. Null (the default) records nothing.
  MetricsRegistry* metrics = nullptr;
};

/// Records one completed execution into `registry` under the
/// `fusiondb_exec_*` metric catalog (DESIGN.md §9.4). Per-table scan bytes
/// and spool hit/build counters come from the stats slots, so they are only
/// recorded when the run was profiled; the ExecMetrics totals always are.
/// No-op when `registry` is null.
void RecordExecutionMetrics(MetricsRegistry* registry,
                            const ExecMetrics& metrics,
                            const std::vector<OperatorStats>& op_stats,
                            int64_t chunks, double wall_ms);

/// Runs `plan` to completion, collecting all output and metrics.
Result<QueryResult> ExecutePlan(const PlanPtr& plan,
                                const ExecOptions& options = ExecOptions());

/// Positional-form shim for pre-ExecOptions call sites. New code must pass
/// ExecOptions (tools/lint.sh rejects new positional calls).
[[deprecated("pass ExecOptions: ExecutePlan(plan, {.chunk_size = ...})")]]
Result<QueryResult> ExecutePlan(const PlanPtr& plan, size_t chunk_size,
                                size_t parallelism = 1, bool profile = true);

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_EXECUTOR_H_
