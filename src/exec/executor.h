// Translation of logical plans into physical operator trees, and the
// convenience entry point that drains a plan into a QueryResult.
#ifndef FUSIONDB_EXEC_EXECUTOR_H_
#define FUSIONDB_EXEC_EXECUTOR_H_

#include "exec/exec_options.h"
#include "exec/operator.h"
#include "exec/query_result.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// Builds the physical tree for `plan`. The plan must outlive the returned
/// operators. Fails with kPlanError on malformed/unbound plans, and on
/// ApplyOp (correlated subqueries must be decorrelated first). The context
/// must already be Init()ed with the run's ExecOptions; when
/// compile_pipelines is on, non-blocking scan→filter→project(→aggregate)
/// chains are compiled into push-based pipelines (exec/pipeline.h).
Result<ExecOperatorPtr> BuildExecutor(const PlanPtr& plan, ExecContext* ctx);

/// Records one completed execution into `registry` under the
/// `fusiondb_exec_*` metric catalog (DESIGN.md §9.4). Per-table scan bytes
/// and spool hit/build counters come from the stats slots, so they are only
/// recorded when the run was profiled; the ExecMetrics totals always are.
/// Pipeline outcomes feed fusiondb_exec_pipelines_compiled_total and
/// fusiondb_exec_pipeline_fallbacks_total{reason=...}.
/// No-op when `registry` is null.
void RecordExecutionMetrics(MetricsRegistry* registry,
                            const ExecMetrics& metrics,
                            const std::vector<OperatorStats>& op_stats,
                            const std::vector<PipelineRecord>& pipelines,
                            int64_t chunks, double wall_ms);

/// Runs `plan` to completion, collecting all output and metrics. Options
/// are always passed as designated initializers — e.g.
/// `ExecutePlan(plan, {.chunk_size = 1024, .parallelism = 4})` — so a
/// reader never has to count argument positions.
Result<QueryResult> ExecutePlan(const PlanPtr& plan,
                                const ExecOptions& options = ExecOptions());

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_EXECUTOR_H_
