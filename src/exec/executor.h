// Translation of logical plans into physical operator trees, and the
// convenience entry point that drains a plan into a QueryResult.
#ifndef FUSIONDB_EXEC_EXECUTOR_H_
#define FUSIONDB_EXEC_EXECUTOR_H_

#include "exec/operator.h"
#include "exec/query_result.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// Builds the physical tree for `plan`. The plan must outlive the returned
/// operators. Fails with kPlanError on malformed/unbound plans, and on
/// ApplyOp (correlated subqueries must be decorrelated first).
Result<ExecOperatorPtr> BuildExecutor(const PlanPtr& plan, ExecContext* ctx);

/// Runs `plan` to completion, collecting all output and metrics.
Result<QueryResult> ExecutePlan(const PlanPtr& plan, size_t chunk_size = 4096);

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_EXECUTOR_H_
