// QueryResult: fully drained output of a plan plus execution metrics.
#ifndef FUSIONDB_EXEC_QUERY_RESULT_H_
#define FUSIONDB_EXEC_QUERY_RESULT_H_

#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "types/chunk.h"
#include "types/schema.h"

namespace fusiondb {

class QueryResult {
 public:
  QueryResult() = default;
  QueryResult(Schema schema, std::vector<Chunk> chunks, ExecMetrics metrics,
              double wall_ms, std::vector<OperatorStats> operator_stats = {},
              std::vector<PipelineRecord> pipelines = {});

  const Schema& schema() const { return schema_; }
  const std::vector<Chunk>& chunks() const { return chunks_; }
  const ExecMetrics& metrics() const { return metrics_; }
  double wall_ms() const { return wall_ms_; }

  /// Per-operator runtime stats in preorder over the executed plan (index
  /// == stable operator id). Empty when profiling was disabled.
  const std::vector<OperatorStats>& operator_stats() const {
    return operator_stats_;
  }

  /// Pipeline-compilation outcomes (compiled chains and per-pipeline
  /// fallbacks with reasons), in plan preorder of their chain roots. Empty
  /// when the run had compile_pipelines off or the plan had no chains.
  const std::vector<PipelineRecord>& pipelines() const { return pipelines_; }

  int64_t num_rows() const { return num_rows_; }

  /// Value at global row `row`, column position `col`.
  Value At(int64_t row, int col) const;

  /// One rendered line per row, values joined by '|', doubles rounded to 9
  /// significant digits so results computed via different plans compare
  /// stably. Sorted when `sorted` is true (order-insensitive comparisons).
  std::vector<std::string> RenderRows(bool sorted) const;

  /// Pretty table (header + up to `max_rows` rows) for examples/demos.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Chunk> chunks_;
  ExecMetrics metrics_;
  double wall_ms_ = 0.0;
  int64_t num_rows_ = 0;
  std::vector<OperatorStats> operator_stats_;
  std::vector<PipelineRecord> pipelines_;
};

/// Order-insensitive result equivalence (multiset of rendered rows). Used
/// pervasively by tests to check baseline and fused plans agree.
bool ResultsEquivalent(const QueryResult& a, const QueryResult& b);

/// Order-sensitive variant for plans whose root enforces an ordering.
bool ResultsEqualOrdered(const QueryResult& a, const QueryResult& b);

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_QUERY_RESULT_H_
