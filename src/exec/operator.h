// ExecOperator: base of the pull-based (Volcano-style, chunk-at-a-time)
// streaming executor. Operators never materialize to storage; blocking
// operators (hash join build sides, aggregation, sort, window) buffer in
// memory and account for it — exactly the engine architecture whose lack of
// materialization points motivates the paper's fusion rewrites.
#ifndef FUSIONDB_EXEC_OPERATOR_H_
#define FUSIONDB_EXEC_OPERATOR_H_

#include <memory>
#include <optional>

#include "common/status.h"
#include "exec/exec_context.h"
#include "types/chunk.h"
#include "types/schema.h"

namespace fusiondb {

class ExecOperator {
 public:
  explicit ExecOperator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~ExecOperator() = default;

  ExecOperator(const ExecOperator&) = delete;
  ExecOperator& operator=(const ExecOperator&) = delete;

  /// Pulls the next chunk; std::nullopt signals end of stream. After end of
  /// stream the operator must keep returning std::nullopt.
  virtual Result<std::optional<Chunk>> Next() = 0;

  const Schema& schema() const { return schema_; }

 protected:
  /// Column types of this operator's output, for building result chunks.
  std::vector<DataType> OutputTypes() const {
    std::vector<DataType> types;
    types.reserve(schema_.num_columns());
    for (const ColumnInfo& c : schema_.columns()) types.push_back(c.type);
    return types;
  }

 private:
  Schema schema_;
};

using ExecOperatorPtr = std::unique_ptr<ExecOperator>;

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_OPERATOR_H_
