#include "exec/query_result.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fusiondb {

QueryResult::QueryResult(Schema schema, std::vector<Chunk> chunks,
                         ExecMetrics metrics, double wall_ms,
                         std::vector<OperatorStats> operator_stats,
                         std::vector<PipelineRecord> pipelines)
    : schema_(std::move(schema)),
      chunks_(std::move(chunks)),
      metrics_(metrics),
      wall_ms_(wall_ms),
      operator_stats_(std::move(operator_stats)),
      pipelines_(std::move(pipelines)) {
  for (const Chunk& c : chunks_) num_rows_ += static_cast<int64_t>(c.num_rows());
}

Value QueryResult::At(int64_t row, int col) const {
  for (const Chunk& c : chunks_) {
    int64_t n = static_cast<int64_t>(c.num_rows());
    if (row < n) return c.columns[col].GetValue(static_cast<size_t>(row));
    row -= n;
  }
  return Value::Null(DataType::kInt64);
}

namespace {

std::string RenderValue(const Value& v) {
  if (v.is_null()) return "NULL";
  if (v.type() == DataType::kFloat64) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v.double_value());
    return buf;
  }
  return v.ToString();
}

}  // namespace

std::vector<std::string> QueryResult::RenderRows(bool sorted) const {
  std::vector<std::string> rows;
  rows.reserve(static_cast<size_t>(num_rows_));
  for (const Chunk& chunk : chunks_) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      std::string line;
      for (size_t c = 0; c < chunk.num_columns(); ++c) {
        if (c > 0) line += '|';
        line += RenderValue(chunk.columns[c].GetValue(r));
      }
      rows.push_back(std::move(line));
    }
  }
  if (sorted) std::sort(rows.begin(), rows.end());
  return rows;
}

std::string QueryResult::ToString(int64_t max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (c > 0) os << " | ";
    os << schema_.column(c).name;
  }
  os << "\n";
  int64_t shown = 0;
  for (const Chunk& chunk : chunks_) {
    for (size_t r = 0; r < chunk.num_rows() && shown < max_rows; ++r, ++shown) {
      for (size_t c = 0; c < chunk.num_columns(); ++c) {
        if (c > 0) os << " | ";
        os << RenderValue(chunk.columns[c].GetValue(r));
      }
      os << "\n";
    }
  }
  if (num_rows_ > shown) {
    os << "... (" << (num_rows_ - shown) << " more rows)\n";
  }
  os << "(" << num_rows_ << " rows)\n";
  return os.str();
}

bool ResultsEquivalent(const QueryResult& a, const QueryResult& b) {
  if (a.num_rows() != b.num_rows()) return false;
  if (a.schema().num_columns() != b.schema().num_columns()) return false;
  return a.RenderRows(/*sorted=*/true) == b.RenderRows(/*sorted=*/true);
}

bool ResultsEqualOrdered(const QueryResult& a, const QueryResult& b) {
  if (a.num_rows() != b.num_rows()) return false;
  if (a.schema().num_columns() != b.schema().num_columns()) return false;
  return a.RenderRows(/*sorted=*/false) == b.RenderRows(/*sorted=*/false);
}

}  // namespace fusiondb
