// Per-query execution context: configuration and metrics.
//
// The metrics mirror what the paper measures: `bytes_scanned` models the
// S3 "data read" that Athena bills (Figure 2), and `peak_hash_bytes` models
// the working memory held in join/aggregation hash tables (the Section V.C
// observation that fusing Q23 halves intermediate state).
//
// Threading model (morsel-driven parallelism): one ExecContext serves one
// query. The driver thread — the one pulling Next() through the operator
// tree — reads and writes `metrics()` directly, exactly as in serial
// execution. Parallel regions (scan morsels, partial aggregation, join
// build) never touch `metrics()` from workers; each worker accumulates into
// a private ExecMetrics shard and the region calls MergeMetrics() once per
// shard after it completes, so every counter stays a plain int64 with no
// hot-path atomics and sums are thread-count-invariant. The one genuinely
// concurrent quantity, live hash-table memory, uses relaxed atomics with a
// compare-exchange max loop for the peak; FinalMetrics() folds the peak
// back into the snapshot handed to QueryResult.
#ifndef FUSIONDB_EXEC_EXEC_CONTEXT_H_
#define FUSIONDB_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/encoding.h"
#include "common/check.h"
#include "exec/exec_options.h"
#include "exec/thread_pool.h"
#include "obs/operator_stats.h"
#include "types/chunk.h"

namespace fusiondb {

struct ExecMetrics {
  int64_t bytes_scanned = 0;
  int64_t rows_scanned = 0;
  int64_t partitions_scanned = 0;
  int64_t partitions_pruned = 0;
  int64_t rows_produced = 0;
  // Peak live hash/buffer memory across the whole query. NOT additive: two
  // shards' peaks cannot be summed (their maxima may not coincide in time),
  // so MergeMetrics ignores this field — all peak tracking goes through
  // ExecContext::AddHashBytes, never through worker shards.
  int64_t peak_hash_bytes = 0;
  // Spooling costs (the materialization alternative to fusion): bytes
  // written once into spool buffers and bytes read back by consumers.
  int64_t spool_bytes_written = 0;
  int64_t spool_bytes_read = 0;
};

/// One compiled-pipeline outcome, recorded by the executor build for every
/// chain it considered: either a successful compilation (fallback empty,
/// ops_fused counts the covered operators, scan included) or a per-pipeline
/// fallback to the interpreted operators with the reason that stopped the
/// compiler. Surfaced through QueryResult into EXPLAIN ANALYZE, the profile
/// JSON, and the fusiondb_exec_pipeline* service counters.
struct PipelineRecord {
  int32_t root_op_id = -1;  // chain root's stats slot; -1 when unprofiled
  std::string root_kind;    // OpKindName of the chain root
  int ops_fused = 0;        // operators covered by the chain, scan included
  std::string fallback;     // empty == compiled; otherwise the reason
  bool compiled() const { return fallback.empty(); }
};

/// Shared materialization buffer behind a SpoolOp id. The first consumer
/// fills it; every consumer reads it. Chunks are stored as *encoded* pages:
/// like Athena's exchange materialization, spooled intermediates pay a
/// serialize-on-write and deserialize-per-read cost (this is exactly the
/// overhead the paper's fusion rewrites avoid).
struct SpoolBuffer {
  bool built = false;
  std::vector<std::vector<EncodedColumn>> pages;  // one vector per chunk
  int64_t bytes = 0;
};

class ExecContext {
 public:
  /// Installs the run's options — the single entry point through which
  /// every execution (ExecutePlan, ExecuteFanOut, tests) configures the
  /// context, so operators never re-read individual knobs from ad-hoc
  /// setters. Resolves parallelism 0 to the hardware concurrency and builds
  /// the worker pool. Must be called before BuildExecutor.
  void Init(const ExecOptions& options) {
    options_ = options;
    if (options_.parallelism == 0) {
      unsigned hw = std::thread::hardware_concurrency();
      options_.parallelism = hw == 0 ? 1 : hw;
    }
    if (options_.parallelism < 1) options_.parallelism = 1;
    pool_ = options_.parallelism > 1
                ? std::make_unique<ThreadPool>(options_.parallelism - 1)
                : nullptr;
  }

  /// The resolved options (parallelism never 0 after Init).
  const ExecOptions& options() const { return options_; }

  /// Rows per streamed chunk.
  size_t chunk_size() const { return options_.chunk_size; }

  /// Intra-query parallelism. 1 (the default) keeps every operator on its
  /// historical single-threaded code path; > 1 spawns a pool of n-1 worker
  /// threads (the driver thread is the n-th worker inside ParallelFor).
  size_t parallelism() const { return options_.parallelism; }

  /// The query's worker pool, or nullptr when parallelism() == 1. Operators
  /// treat a null pool as "run the serial path".
  ThreadPool* pool() const { return pool_.get(); }

  /// Driver-thread metrics. Workers inside parallel regions must use a
  /// private shard + MergeMetrics instead.
  ExecMetrics& metrics() { return metrics_; }
  const ExecMetrics& metrics() const { return metrics_; }

  /// Folds one worker's metric shard into the query totals. Called once per
  /// worker per parallel region (never per row/chunk). `peak_hash_bytes` is
  /// not additive and must never travel in a shard — any region that also
  /// touches hash memory routes it through AddHashBytes instead; a shard
  /// arriving with a nonzero peak is a shard-discipline bug.
  void MergeMetrics(const ExecMetrics& shard) {
    FUSIONDB_CHECK(shard.peak_hash_bytes == 0,
                   "peak_hash_bytes is not additive; shards must account "
                   "hash memory via AddHashBytes");
    std::lock_guard<std::mutex> lock(merge_mu_);
    metrics_.bytes_scanned += shard.bytes_scanned;
    metrics_.rows_scanned += shard.rows_scanned;
    metrics_.partitions_scanned += shard.partitions_scanned;
    metrics_.partitions_pruned += shard.partitions_pruned;
    metrics_.rows_produced += shard.rows_produced;
    metrics_.spool_bytes_written += shard.spool_bytes_written;
    metrics_.spool_bytes_read += shard.spool_bytes_read;
  }

  /// Tracks live hash-table memory; the peak is kept in a relaxed atomic
  /// max loop so blocking operators can account from worker threads. When
  /// `op_id` names a registered operator slot, the delta is also attributed
  /// to that operator's live/peak counters — operators account once per
  /// build (on the driver thread, after any parallel region has merged), so
  /// the per-operator side needs no atomics.
  void AddHashBytes(int64_t delta, int32_t op_id = -1) {
    int64_t live =
        live_hash_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t peak = peak_hash_bytes_.load(std::memory_order_relaxed);
    while (live > peak && !peak_hash_bytes_.compare_exchange_weak(
                              peak, live, std::memory_order_relaxed)) {
    }
    if (op_id >= 0 && static_cast<size_t>(op_id) < op_slots_.size()) {
      int64_t& op_live = op_live_bytes_[static_cast<size_t>(op_id)];
      op_live += delta;
      OperatorStats& s = op_slots_[static_cast<size_t>(op_id)];
      if (op_live > s.peak_memory_bytes) s.peak_memory_bytes = op_live;
    }
  }

  /// Metrics snapshot with the tracked memory peak folded in; what
  /// ExecutePlan hands to QueryResult after the operator tree is torn down.
  /// Taking it while a parallel region is still open would observe a torn
  /// total — regions bracket themselves so this can assert.
  ExecMetrics FinalMetrics() const {
    FUSIONDB_CHECK(open_regions_.load(std::memory_order_relaxed) == 0,
                   "FinalMetrics() taken before all parallel regions merged");
    ExecMetrics out = metrics_;
    out.peak_hash_bytes = peak_hash_bytes_.load(std::memory_order_relaxed);
    return out;
  }

  /// Parallel regions bracket themselves (see ParallelRegion below) so the
  /// FinalMetrics assertion can detect a region that never merged.
  void BeginParallelRegion() {
    open_regions_.fetch_add(1, std::memory_order_relaxed);
  }
  void EndParallelRegion() {
    open_regions_.fetch_sub(1, std::memory_order_relaxed);
  }

  // --- per-operator profiling ----------------------------------------------

  /// Whether per-operator stats are collected (default on; benches flip it
  /// off via ExecOptions to measure the instrumentation overhead). Fixed by
  /// Init, before BuildExecutor: with profiling off no slots are registered
  /// and the operator tree is built without stats wrappers.
  bool profile_enabled() const { return options_.profile; }

  /// Registers one operator slot during BuildExecutor's preorder walk and
  /// returns its id (== the node's preorder index). Driver thread only.
  int32_t RegisterOperator(std::string kind, std::string detail,
                           int32_t parent) {
    int32_t id = static_cast<int32_t>(op_slots_.size());
    op_slots_.emplace_back();
    OperatorStats& s = op_slots_.back();
    s.id = id;
    s.parent = parent;
    s.kind = std::move(kind);
    s.detail = std::move(detail);
    op_live_bytes_.push_back(0);
    return id;
  }

  /// The slot for `id`. Pointers stay valid for the context's lifetime
  /// (deque storage). Driver thread only.
  OperatorStats* op_stats(int32_t id) {
    return &op_slots_[static_cast<size_t>(id)];
  }

  /// The operator id whose physical operator is currently being constructed;
  /// blocking operators capture it so their memory accounting can name
  /// their own slot. -1 when profiling is off.
  int32_t building_op() const { return building_op_; }
  void set_building_op(int32_t id) { building_op_ = id; }

  /// Records one consumer served from an already-built spool buffer.
  void AddSpoolHit(int32_t op_id) {
    if (op_id >= 0 && static_cast<size_t>(op_id) < op_slots_.size()) {
      ++op_slots_[static_cast<size_t>(op_id)].spool_hits;
    }
  }

  /// Records one spool materialization (the miss that pays the build).
  void AddSpoolBuild(int32_t op_id) {
    if (op_id >= 0 && static_cast<size_t>(op_id) < op_slots_.size()) {
      ++op_slots_[static_cast<size_t>(op_id)].spool_builds;
    }
  }

  /// Attributes decoded bytes to a scan's stats slot. Driver thread only:
  /// serial scans call it inline, parallel scans once after their region
  /// has merged (the query-level total travels through ExecMetrics shards).
  void AddScanBytes(int32_t op_id, int64_t bytes) {
    if (op_id >= 0 && static_cast<size_t>(op_id) < op_slots_.size()) {
      op_slots_[static_cast<size_t>(op_id)].bytes_scanned += bytes;
    }
  }

  /// Snapshot of all operator slots with derived fields (rows_in, self
  /// time) filled in; taken after the operator tree is torn down so close
  /// times are complete. Empty when profiling is off.
  std::vector<OperatorStats> FinalOperatorStats() const {
    std::vector<OperatorStats> out(op_slots_.begin(), op_slots_.end());
    FinalizeOperatorStats(&out);
    return out;
  }

  /// Records one pipeline-compilation outcome (BuildExecutor, driver thread
  /// only). Recorded for every chain considered, compiled or fallen back.
  void AddPipeline(PipelineRecord record) {
    pipelines_.push_back(std::move(record));
  }

  /// All pipeline outcomes, in plan preorder of their chain roots.
  const std::vector<PipelineRecord>& pipelines() const { return pipelines_; }

  /// The spool buffer for `spool_id`, created on first use. Spool
  /// *materialization* runs on the driver thread only (SpoolExec fills the
  /// buffer serially), but lookups can race: an operator inside a parallel
  /// region may reach its spool while the driver concurrently creates
  /// another spool's slot, and unordered_map mutation is not safe against
  /// concurrent reads — so lookup-or-create holds a lock.
  std::shared_ptr<SpoolBuffer> GetSpool(int32_t spool_id) {
    std::lock_guard<std::mutex> lock(spool_mu_);
    std::shared_ptr<SpoolBuffer>& slot = spools_[spool_id];
    if (slot == nullptr) slot = std::make_shared<SpoolBuffer>();
    return slot;
  }

 private:
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  ExecMetrics metrics_;
  std::mutex merge_mu_;
  std::atomic<int64_t> live_hash_bytes_{0};
  std::atomic<int64_t> peak_hash_bytes_{0};
  std::atomic<int32_t> open_regions_{0};
  std::mutex spool_mu_;  // guards spools_ (see GetSpool)
  std::unordered_map<int32_t, std::shared_ptr<SpoolBuffer>> spools_;
  int32_t building_op_ = -1;
  // Deque: RegisterOperator must not invalidate pointers handed out by
  // op_stats while the tree is still being built.
  std::deque<OperatorStats> op_slots_;
  std::deque<int64_t> op_live_bytes_;  // live bytes behind each slot's peak
  std::vector<PipelineRecord> pipelines_;
};

/// RAII bracket for a parallel region (scan morsels, aggregation partials,
/// join build): Begin on entry, End after every shard has merged. Scoped so
/// early error returns cannot leave a region open.
class ParallelRegion {
 public:
  explicit ParallelRegion(ExecContext* ctx) : ctx_(ctx) {
    ctx_->BeginParallelRegion();
  }
  ~ParallelRegion() { ctx_->EndParallelRegion(); }
  ParallelRegion(const ParallelRegion&) = delete;
  ParallelRegion& operator=(const ParallelRegion&) = delete;

 private:
  ExecContext* ctx_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_EXEC_CONTEXT_H_
