// Per-query execution context: configuration and metrics.
//
// The metrics mirror what the paper measures: `bytes_scanned` models the
// S3 "data read" that Athena bills (Figure 2), and `peak_hash_bytes` models
// the working memory held in join/aggregation hash tables (the Section V.C
// observation that fusing Q23 halves intermediate state).
#ifndef FUSIONDB_EXEC_EXEC_CONTEXT_H_
#define FUSIONDB_EXEC_EXEC_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/encoding.h"
#include "types/chunk.h"

namespace fusiondb {

struct ExecMetrics {
  int64_t bytes_scanned = 0;
  int64_t rows_scanned = 0;
  int64_t partitions_scanned = 0;
  int64_t partitions_pruned = 0;
  int64_t rows_produced = 0;
  int64_t peak_hash_bytes = 0;
  // Spooling costs (the materialization alternative to fusion): bytes
  // written once into spool buffers and bytes read back by consumers.
  int64_t spool_bytes_written = 0;
  int64_t spool_bytes_read = 0;
};

/// Shared materialization buffer behind a SpoolOp id. The first consumer
/// fills it; every consumer reads it. Chunks are stored as *encoded* pages:
/// like Athena's exchange materialization, spooled intermediates pay a
/// serialize-on-write and deserialize-per-read cost (this is exactly the
/// overhead the paper's fusion rewrites avoid).
struct SpoolBuffer {
  bool built = false;
  std::vector<std::vector<EncodedColumn>> pages;  // one vector per chunk
  int64_t bytes = 0;
};

class ExecContext {
 public:
  /// Rows per streamed chunk.
  size_t chunk_size() const { return chunk_size_; }
  void set_chunk_size(size_t n) { chunk_size_ = n; }

  ExecMetrics& metrics() { return metrics_; }
  const ExecMetrics& metrics() const { return metrics_; }

  /// Tracks live hash-table memory; peak is recorded in metrics.
  void AddHashBytes(int64_t delta) {
    live_hash_bytes_ += delta;
    metrics_.peak_hash_bytes =
        std::max(metrics_.peak_hash_bytes, live_hash_bytes_);
  }

  /// The spool buffer for `spool_id`, created on first use.
  std::shared_ptr<SpoolBuffer> GetSpool(int32_t spool_id) {
    std::shared_ptr<SpoolBuffer>& slot = spools_[spool_id];
    if (slot == nullptr) slot = std::make_shared<SpoolBuffer>();
    return slot;
  }

 private:
  size_t chunk_size_ = 4096;
  ExecMetrics metrics_;
  int64_t live_hash_bytes_ = 0;
  std::unordered_map<int32_t, std::shared_ptr<SpoolBuffer>> spools_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_EXEC_CONTEXT_H_
