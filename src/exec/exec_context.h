// Per-query execution context: configuration and metrics.
//
// The metrics mirror what the paper measures: `bytes_scanned` models the
// S3 "data read" that Athena bills (Figure 2), and `peak_hash_bytes` models
// the working memory held in join/aggregation hash tables (the Section V.C
// observation that fusing Q23 halves intermediate state).
//
// Threading model (morsel-driven parallelism): one ExecContext serves one
// query. The driver thread — the one pulling Next() through the operator
// tree — reads and writes `metrics()` directly, exactly as in serial
// execution. Parallel regions (scan morsels, partial aggregation, join
// build) never touch `metrics()` from workers; each worker accumulates into
// a private ExecMetrics shard and the region calls MergeMetrics() once per
// shard after it completes, so every counter stays a plain int64 with no
// hot-path atomics and sums are thread-count-invariant. The one genuinely
// concurrent quantity, live hash-table memory, uses relaxed atomics with a
// compare-exchange max loop for the peak; FinalMetrics() folds the peak
// back into the snapshot handed to QueryResult.
#ifndef FUSIONDB_EXEC_EXEC_CONTEXT_H_
#define FUSIONDB_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "catalog/encoding.h"
#include "exec/thread_pool.h"
#include "types/chunk.h"

namespace fusiondb {

struct ExecMetrics {
  int64_t bytes_scanned = 0;
  int64_t rows_scanned = 0;
  int64_t partitions_scanned = 0;
  int64_t partitions_pruned = 0;
  int64_t rows_produced = 0;
  int64_t peak_hash_bytes = 0;
  // Spooling costs (the materialization alternative to fusion): bytes
  // written once into spool buffers and bytes read back by consumers.
  int64_t spool_bytes_written = 0;
  int64_t spool_bytes_read = 0;
};

/// Shared materialization buffer behind a SpoolOp id. The first consumer
/// fills it; every consumer reads it. Chunks are stored as *encoded* pages:
/// like Athena's exchange materialization, spooled intermediates pay a
/// serialize-on-write and deserialize-per-read cost (this is exactly the
/// overhead the paper's fusion rewrites avoid).
struct SpoolBuffer {
  bool built = false;
  std::vector<std::vector<EncodedColumn>> pages;  // one vector per chunk
  int64_t bytes = 0;
};

class ExecContext {
 public:
  /// Rows per streamed chunk.
  size_t chunk_size() const { return chunk_size_; }
  void set_chunk_size(size_t n) { chunk_size_ = n; }

  /// Intra-query parallelism. 1 (the default) keeps every operator on its
  /// historical single-threaded code path; > 1 spawns a pool of n-1 worker
  /// threads (the driver thread is the n-th worker inside ParallelFor).
  size_t parallelism() const { return parallelism_; }
  void set_parallelism(size_t n) {
    parallelism_ = n < 1 ? 1 : n;
    pool_ = parallelism_ > 1 ? std::make_unique<ThreadPool>(parallelism_ - 1)
                             : nullptr;
  }

  /// The query's worker pool, or nullptr when parallelism() == 1. Operators
  /// treat a null pool as "run the serial path".
  ThreadPool* pool() const { return pool_.get(); }

  /// Driver-thread metrics. Workers inside parallel regions must use a
  /// private shard + MergeMetrics instead.
  ExecMetrics& metrics() { return metrics_; }
  const ExecMetrics& metrics() const { return metrics_; }

  /// Folds one worker's metric shard into the query totals. Called once per
  /// worker per parallel region (never per row/chunk). `peak_hash_bytes` is
  /// not additive and is ignored here — peak tracking goes through
  /// AddHashBytes.
  void MergeMetrics(const ExecMetrics& shard) {
    std::lock_guard<std::mutex> lock(merge_mu_);
    metrics_.bytes_scanned += shard.bytes_scanned;
    metrics_.rows_scanned += shard.rows_scanned;
    metrics_.partitions_scanned += shard.partitions_scanned;
    metrics_.partitions_pruned += shard.partitions_pruned;
    metrics_.rows_produced += shard.rows_produced;
    metrics_.spool_bytes_written += shard.spool_bytes_written;
    metrics_.spool_bytes_read += shard.spool_bytes_read;
  }

  /// Tracks live hash-table memory; the peak is kept in a relaxed atomic
  /// max loop so blocking operators can account from worker threads.
  void AddHashBytes(int64_t delta) {
    int64_t live =
        live_hash_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t peak = peak_hash_bytes_.load(std::memory_order_relaxed);
    while (live > peak && !peak_hash_bytes_.compare_exchange_weak(
                              peak, live, std::memory_order_relaxed)) {
    }
  }

  /// Metrics snapshot with the tracked memory peak folded in; what
  /// ExecutePlan hands to QueryResult after the operator tree is torn down.
  ExecMetrics FinalMetrics() const {
    ExecMetrics out = metrics_;
    out.peak_hash_bytes = peak_hash_bytes_.load(std::memory_order_relaxed);
    return out;
  }

  /// The spool buffer for `spool_id`, created on first use. Spool
  /// materialization runs on the driver thread only (operator build and
  /// SpoolExec are serial), so the map needs no lock.
  std::shared_ptr<SpoolBuffer> GetSpool(int32_t spool_id) {
    std::shared_ptr<SpoolBuffer>& slot = spools_[spool_id];
    if (slot == nullptr) slot = std::make_shared<SpoolBuffer>();
    return slot;
  }

 private:
  size_t chunk_size_ = 4096;
  size_t parallelism_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  ExecMetrics metrics_;
  std::mutex merge_mu_;
  std::atomic<int64_t> live_hash_bytes_{0};
  std::atomic<int64_t> peak_hash_bytes_{0};
  std::unordered_map<int32_t, std::shared_ptr<SpoolBuffer>> spools_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_EXEC_EXEC_CONTEXT_H_
