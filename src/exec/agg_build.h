// Shared hash-aggregation build core: bound (function, mask) aggregates with
// mask/conjunct deduplication, the group hash table, and the accumulate /
// merge / finalize steps. AggregateExec (the pull operator) and the
// compiled-pipeline aggregate sink (exec/pipeline.h) both build on this, so
// the two execution paths share one accumulation discipline — identical
// group insertion order, identical per-(group, aggregate) row order, and
// identical memory accounting — which is what makes their outputs
// byte-identical (DESIGN.md §13).
#ifndef FUSIONDB_EXEC_AGG_BUILD_H_
#define FUSIONDB_EXEC_AGG_BUILD_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/agg_state.h"
#include "expr/evaluator.h"
#include "plan/logical_plan.h"

namespace fusiondb::internal {

/// Bound form of one aggregate: evaluators for mask and argument. Masks are
/// deduplicated per operator (fusion gives many aggregates the same mask —
/// Q09 ends with 15 aggregates over 5 distinct masks) and evaluated once
/// per chunk; bare-column arguments read the input column directly.
struct BoundAgg {
  const AggregateItem* item;
  std::optional<BoundExpr> arg;
  int arg_column = -1;  // >= 0 when the argument is a bare column reference
  int mask_slot = -1;   // index into the per-chunk mask selections; -1 == TRUE
};

/// Deduplicated masks shared by a set of aggregates. Masks are stored as
/// lists of *conjunct* slots, and conjuncts are deduplicated across masks
/// (after fusion, `lp_avg_i`, `lp_cnt_i` and `lp_cntd_i` all carry the same
/// bucket condition), so each distinct conjunct is evaluated once per chunk
/// and masks intersect selections. Sound for filtering because a conjunction
/// is TRUE iff every conjunct is TRUE.
struct MaskSet {
  std::vector<BoundExpr> conjuncts;          // unique conjunct evaluators
  std::vector<std::vector<int>> mask_slots;  // per mask: conjunct indexes

  size_t num_masks() const { return mask_slots.size(); }

  /// Evaluates all masks over a chunk: one selection vector per mask, each
  /// the intersection of its conjuncts' surviving rows.
  std::vector<SelVector> Evaluate(const Chunk& chunk) const;
};

struct BoundAggs {
  std::vector<BoundAgg> aggs;
  MaskSet mask_set;
};

Result<BoundAggs> BindAggs(const std::vector<AggregateItem>& items,
                           const Schema& input);

/// Per-group state plus one boxed copy of the grouping values (boxed once
/// per group, not per row — rows key on the serialized form).
struct GroupEntry {
  std::vector<Value> representative;
  std::vector<AggState> states;
};
using GroupMap = std::unordered_map<std::string, GroupEntry>;

/// Column-level view of one morsel's aggregate input. The pull operator
/// points it at its input chunk's columns; the compiled pipeline points it
/// at dense columns evaluated straight off the scan morsel — either way the
/// accumulation loop below sees the same values in the same row order.
struct AggInputView {
  size_t rows = 0;
  std::vector<const Column*> group_cols;
  /// Parallel to the BoundAgg vector; nullptr for COUNT(*) (no argument).
  std::vector<const Column*> arg_cols;
  /// One selection per MaskSet mask, in mask-slot order.
  std::vector<SelVector> masks;
};

/// Accumulates every row of `view` into `groups` (one hash table — the
/// query's for the serial path, a worker-private partial for the parallel
/// path). `key` is the reusable row-key buffer. Two passes: pass 1 resolves
/// each row's group in row order (fixing group-map insertion order); pass 2
/// walks each aggregate's mask selection ascending, so every (group,
/// aggregate) state sees its rows in exactly the row-at-a-time order —
/// floating-point sums accumulate deterministically.
void AccumulateView(const AggInputView& view, const std::vector<BoundAgg>& aggs,
                    GroupMap* groups, std::string* key);

/// Folds worker-private partials into `merged` in partial order (partial 0
/// first), via AggState::Merge for groups present in several partials.
/// Deterministic for a fixed worker count.
void MergePartialGroups(const std::vector<BoundAgg>& aggs,
                        std::vector<GroupMap>* partials, GroupMap* merged);

/// Hash-table footprint for the memory metric: ~48 bytes map overhead plus
/// key bytes per entry, plus each state's AggStateBytes.
int64_t GroupMapBytes(const GroupMap& groups);

/// Emits one row per group in map iteration order: grouping representative
/// values first, then each aggregate's finalized value.
Chunk FinalizeGroups(GroupMap* groups, const std::vector<BoundAgg>& aggs,
                     const std::vector<DataType>& output_types,
                     size_t group_width);

}  // namespace fusiondb::internal

#endif  // FUSIONDB_EXEC_AGG_BUILD_H_
