// Full-materialization sort.
#include <algorithm>
#include <numeric>
#include <optional>

#include "exec/operators_internal.h"

namespace fusiondb::internal {

namespace {

class SortExec final : public ExecOperator {
 public:
  SortExec(const SortOp& op, ExecOperatorPtr child,
           std::vector<std::pair<int, bool>> keys, ExecContext* ctx)
      : ExecOperator(op.schema()),
        child_(std::move(child)),
        keys_(std::move(keys)),
        ctx_(ctx),
        op_id_(ctx->building_op()) {}

  ~SortExec() override { ctx_->AddHashBytes(-accounted_bytes_, op_id_); }

  Result<std::optional<Chunk>> Next() override {
    if (!sorted_) {
      FUSIONDB_RETURN_IF_ERROR(Materialize());
      sorted_ = true;
    }
    size_t total = order_.size();
    if (offset_ >= total) return std::optional<Chunk>();
    size_t take = std::min(ctx_->chunk_size(), total - offset_);
    // Bulk-gather the next slice of the sorted permutation; Gather accepts
    // an arbitrary (not necessarily ascending) index list.
    Chunk out;
    out.columns.reserve(data_.columns.size());
    for (const Column& c : data_.columns) {
      out.columns.push_back(c.Gather(order_.data() + offset_, take));
    }
    offset_ += take;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  Status Materialize() {
    data_ = Chunk::Empty(OutputTypes());
    while (true) {
      FUSIONDB_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) break;
      data_.AppendChunk(*in);
    }
    order_.resize(data_.num_rows());
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(),
                     [this](size_t a, size_t b) { return RowLess(a, b); });
    int64_t bytes = 0;
    for (const Column& c : data_.columns) bytes += c.ByteSize();
    accounted_bytes_ = bytes;
    ctx_->AddHashBytes(bytes, op_id_);
    return Status::OK();
  }

  bool RowLess(size_t a, size_t b) const {
    for (const auto& [idx, asc] : keys_) {
      int c = data_.columns[idx].GetValue(a).Compare(
          data_.columns[idx].GetValue(b));
      if (c != 0) return asc ? c < 0 : c > 0;
    }
    return false;
  }

  ExecOperatorPtr child_;
  std::vector<std::pair<int, bool>> keys_;  // (column index, ascending)
  ExecContext* ctx_;
  Chunk data_;
  std::vector<uint32_t> order_;
  bool sorted_ = false;
  size_t offset_ = 0;
  int64_t accounted_bytes_ = 0;
  int32_t op_id_ = -1;
};

}  // namespace

Result<ExecOperatorPtr> MakeSortExec(const SortOp& op, ExecOperatorPtr child,
                                     ExecContext* ctx) {
  std::vector<std::pair<int, bool>> keys;
  keys.reserve(op.keys().size());
  for (const SortKey& k : op.keys()) {
    int idx = child->schema().IndexOf(k.column);
    if (idx < 0) {
      return Status::PlanError("sort key column #" + std::to_string(k.column) +
                               " not in input");
    }
    keys.push_back({idx, k.ascending});
  }
  return ExecOperatorPtr(new SortExec(op, std::move(child), std::move(keys),
                                      ctx));
}

}  // namespace fusiondb::internal
