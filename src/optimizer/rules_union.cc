// Sections IV.C (UnionAllOnJoin) and IV.D (UnionAll fusion).
#include <optional>

#include "expr/expr_builder.h"
#include "expr/simplifier.h"
#include "fusion/fuse.h"
#include "optimizer/rewrite_utils.h"
#include "optimizer/rules.h"

namespace fusiondb {

namespace {

ExprPtr TrueExpr() { return Expr::MakeLiteral(Value::Bool(true)); }

/// One branch of a UnionAll normalized for the OnJoin rule: an optional
/// projection above an inner/semi join. `outputs[o]` is the expression
/// feeding union output position o (over the join's output columns).
struct Branch {
  const JoinOp* join = nullptr;
  std::vector<ExprPtr> outputs;
};

/// Extracts the Branch shape; fails (nullopt) when the child is not
/// Project?(Join) or an output expression uses right-side (Z) columns —
/// those must be computable on the A side so the union can move below the
/// join.
std::optional<Branch> NormalizeBranch(const PlanPtr& child,
                                      const std::vector<ColumnId>& out_ids) {
  Branch branch;
  const PlanPtr* join_plan = &child;
  const ProjectOp* proj = nullptr;
  if (child->kind() == OpKind::kProject) {
    proj = &Cast<ProjectOp>(*child);
    join_plan = &child->child(0);
  }
  if ((*join_plan)->kind() != OpKind::kJoin) return std::nullopt;
  branch.join = &Cast<JoinOp>(**join_plan);
  if (branch.join->join_type() != JoinType::kInner &&
      branch.join->join_type() != JoinType::kSemi) {
    return std::nullopt;
  }
  const Schema& a_schema = branch.join->left()->schema();
  for (ColumnId id : out_ids) {
    ExprPtr expr;
    if (proj != nullptr) {
      for (const NamedExpr& e : proj->exprs()) {
        if (e.id == id) {
          expr = e.expr;
          break;
        }
      }
    } else {
      int idx = branch.join->schema().IndexOf(id);
      if (idx >= 0) {
        expr = Expr::MakeColumnRef(id, branch.join->schema().column(idx).type);
      }
    }
    if (expr == nullptr) return std::nullopt;
    std::vector<ColumnId> used;
    CollectColumns(expr, &used);
    for (ColumnId c : used) {
      if (!a_schema.Contains(c)) return std::nullopt;
    }
    branch.outputs.push_back(std::move(expr));
  }
  return branch;
}

/// Splits a join condition into lhs(A-side) = rhs(Z-side) pairs plus
/// Z-side-only residual conjuncts. Fails on anything else.
struct SplitCondition {
  std::vector<std::pair<ColumnId, ColumnId>> equalities;  // (lhs, rhs)
  std::vector<ExprPtr> z_residuals;
};

std::optional<SplitCondition> SplitJoinCondition(const JoinOp& join) {
  SplitCondition out;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(join.condition(), &conjuncts);
  const Schema& a = join.left()->schema();
  const Schema& z = join.right()->schema();
  auto covered = [](const ExprPtr& e, const Schema& s) {
    std::vector<ColumnId> cols;
    CollectColumns(e, &cols);
    for (ColumnId c : cols) {
      if (!s.Contains(c)) return false;
    }
    return true;
  };
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() == ExprKind::kCompare &&
        c->compare_op() == CompareOp::kEq &&
        c->child(0)->kind() == ExprKind::kColumnRef &&
        c->child(1)->kind() == ExprKind::kColumnRef) {
      ColumnId x = c->child(0)->column_id();
      ColumnId y = c->child(1)->column_id();
      if (a.Contains(x) && z.Contains(y)) {
        out.equalities.push_back({x, y});
        continue;
      }
      if (a.Contains(y) && z.Contains(x)) {
        out.equalities.push_back({y, x});
        continue;
      }
    }
    if (covered(c, z)) {
      out.z_residuals.push_back(c);
      continue;
    }
    return std::nullopt;
  }
  return out;
}

}  // namespace

Result<PlanPtr> UnionAllOnJoinRule::Apply(const PlanPtr& plan,
                                          PlanContext* ctx) const {
  if (plan->kind() != OpKind::kUnionAll) return plan;
  const auto& u = Cast<UnionAllOp>(*plan);
  if (u.num_children() != 2) return plan;

  auto b1 = NormalizeBranch(u.child(0), u.input_columns()[0]);
  auto b2 = NormalizeBranch(u.child(1), u.input_columns()[1]);
  if (!b1.has_value() || !b2.has_value()) return plan;
  if (b1->join->join_type() != b2->join->join_type()) return plan;
  JoinType join_type = b1->join->join_type();

  Fuser fuser(ctx);
  auto fused = fuser.Fuse(b1->join->right(), b2->join->right());
  if (!fused.has_value()) return plan;

  auto c1 = SplitJoinCondition(*b1->join);
  auto c2 = SplitJoinCondition(*b2->join);
  if (!c1.has_value() || !c2.has_value()) return plan;
  if (c1->equalities.size() != c2->equalities.size()) return plan;

  // Pair conjuncts across branches: rhs1 must equal M(rhs2).
  std::vector<std::pair<ColumnId, ColumnId>> lhs_pairs;  // (lhs1, lhs2)
  std::vector<ColumnId> rhs_cols;                        // fused Z column
  std::vector<bool> used(c2->equalities.size(), false);
  for (const auto& [lhs1, rhs1] : c1->equalities) {
    bool matched = false;
    for (size_t k = 0; k < c2->equalities.size(); ++k) {
      if (used[k]) continue;
      if (ApplyMap(fused->mapping, c2->equalities[k].second) == rhs1) {
        lhs_pairs.push_back({lhs1, c2->equalities[k].first});
        rhs_cols.push_back(rhs1);
        used[k] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return plan;
  }
  // Z-side residuals must agree modulo the mapping.
  ExprPtr res1 = CombineConjuncts(c1->z_residuals);
  ExprPtr res2 = ApplyMap(fused->mapping, CombineConjuncts(c2->z_residuals));
  if (!ExprEquivalent(Simplify(res1), Simplify(res2))) return plan;

  bool need_tag =
      !IsTrueLiteral(fused->left_filter) || !IsTrueLiteral(fused->right_filter);

  // New union children: the branch output expressions (now computed over the
  // A sides), plus the join key columns, plus a tag when compensations are
  // non-trivial (the paper's UA1/UA2 extension of the positional mapping).
  auto make_child = [&](const Branch& b,
                        const std::vector<ColumnId>& lhs_cols,
                        int tag) -> PlanPtr {
    std::vector<NamedExpr> exprs;
    for (size_t o = 0; o < b.outputs.size(); ++o) {
      exprs.push_back({ctx->NextId(), u.schema().column(o).name, b.outputs[o]});
    }
    const Schema& a_schema = b.join->left()->schema();
    for (size_t p = 0; p < lhs_cols.size(); ++p) {
      int idx = a_schema.IndexOf(lhs_cols[p]);
      exprs.push_back({ctx->NextId(), "$ukey" + std::to_string(p),
                       Expr::MakeColumnRef(lhs_cols[p],
                                           a_schema.column(idx).type)});
    }
    if (need_tag) {
      exprs.push_back({ctx->NextId(), "$tag", eb::Int(tag)});
    }
    return std::make_shared<ProjectOp>(b.join->left(), std::move(exprs));
  };
  std::vector<ColumnId> lhs1_cols;
  std::vector<ColumnId> lhs2_cols;
  for (const auto& [l1, l2] : lhs_pairs) {
    lhs1_cols.push_back(l1);
    lhs2_cols.push_back(l2);
  }
  PlanPtr child1 = make_child(*b1, lhs1_cols, 1);
  PlanPtr child2 = make_child(*b2, lhs2_cols, 2);

  // Output schema: original union ids for the value positions (so parents
  // are untouched), fresh ids for keys/tag.
  std::vector<ColumnInfo> out_cols = u.schema().columns();
  std::vector<ColumnId> keys_out;
  for (size_t p = 0; p < lhs_pairs.size(); ++p) {
    const ColumnInfo& c =
        Cast<ProjectOp>(*child1).schema().column(u.schema().num_columns() + p);
    ColumnId id = ctx->NextId();
    out_cols.push_back({id, c.name, c.type});
    keys_out.push_back(id);
  }
  ColumnId tag_out = kInvalidColumnId;
  if (need_tag) {
    tag_out = ctx->NextId();
    out_cols.push_back({tag_out, "$tag", DataType::kInt64});
  }
  auto ids_of = [](const PlanPtr& p) {
    std::vector<ColumnId> ids;
    for (const ColumnInfo& c : p->schema().columns()) ids.push_back(c.id);
    return ids;
  };
  PlanPtr new_union = std::make_shared<UnionAllOp>(
      std::vector<PlanPtr>{child1, child2}, Schema(out_cols),
      std::vector<std::vector<ColumnId>>{ids_of(child1), ids_of(child2)});

  // Join condition over (union, fused Z).
  std::vector<ExprPtr> cond;
  for (size_t p = 0; p < keys_out.size(); ++p) {
    int zidx = fused->plan->schema().IndexOf(rhs_cols[p]);
    if (zidx < 0) return plan;
    int uidx = new_union->schema().IndexOf(keys_out[p]);
    cond.push_back(
        eb::Eq(eb::Col(keys_out[p], new_union->schema().column(uidx).type),
               eb::Col(rhs_cols[p], fused->plan->schema().column(zidx).type)));
  }
  if (!IsTrueLiteral(res1)) cond.push_back(res1);
  if (need_tag) {
    ExprPtr tag_ref = eb::Col(tag_out, DataType::kInt64);
    cond.push_back(eb::Or(
        eb::And(eb::Eq(tag_ref, eb::Int(1)), fused->left_filter),
        eb::And(eb::Eq(tag_ref, eb::Int(2)), fused->right_filter)));
  }
  PlanPtr new_join = std::make_shared<JoinOp>(join_type, new_union, fused->plan,
                                              CombineConjuncts(cond));
  // Narrow back to the original union schema.
  return RestoreSchema(new_join, u.schema(), ColumnMap());
}

Result<PlanPtr> UnionAllFuseRule::Apply(const PlanPtr& plan,
                                        PlanContext* ctx) const {
  if (plan->kind() != OpKind::kUnionAll) return plan;
  const auto& u = Cast<UnionAllOp>(*plan);
  size_t n = u.num_children();
  if (n < 2) return plan;

  // Fold the branches into one fused plan, tracking per-branch compensating
  // conditions (all over the running fused plan, whose P1-side columns are
  // preserved by construction).
  Fuser fuser(ctx);
  PlanPtr fused = u.child(0);
  std::vector<ExprPtr> branch_cond{TrueExpr()};
  std::vector<ColumnMap> branch_map{ColumnMap()};
  for (size_t i = 1; i < n; ++i) {
    auto r = fuser.Fuse(fused, u.child(i));
    if (!r.has_value()) return plan;
    for (ExprPtr& c : branch_cond) {
      c = MakeConjunction(c, r->left_filter);
    }
    branch_cond.push_back(r->right_filter);
    branch_map.push_back(r->mapping);
    fused = r->plan;
  }

  // Source column (in fused coordinates) feeding output o from branch c.
  auto src = [&](size_t c, size_t o) {
    return ApplyMap(branch_map[c], u.input_columns()[c][o]);
  };
  auto src_ref = [&](size_t c, size_t o) -> ExprPtr {
    ColumnId id = src(c, o);
    int idx = fused->schema().IndexOf(id);
    FUSIONDB_CHECK(idx >= 0, "fused union source column missing");
    return Expr::MakeColumnRef(id, fused->schema().column(idx).type);
  };

  // Contradiction shortcut (binary case): when L AND R is unsatisfiable the
  // branch conditions themselves can play the tag's role.
  if (n == 2 && IsContradiction(MakeConjunction(branch_cond[0],
                                                branch_cond[1]))) {
    PlanPtr filtered = std::make_shared<FilterOp>(
        fused, Simplify(eb::Or(branch_cond[0], branch_cond[1])));
    std::vector<NamedExpr> outs;
    for (size_t o = 0; o < u.schema().num_columns(); ++o) {
      const ColumnInfo& info = u.schema().column(o);
      ExprPtr e = src(0, o) == src(1, o)
                      ? src_ref(0, o)
                      : eb::CaseWhen(branch_cond[0], src_ref(0, o),
                                     src_ref(1, o));
      outs.push_back({info.id, info.name, std::move(e)});
    }
    return std::static_pointer_cast<const LogicalOp>(
        std::make_shared<ProjectOp>(filtered, std::move(outs)));
  }

  // General form: cross-join with a constant tag table; one replica of the
  // fused rows per branch, restored by (tag = i AND cond_i).
  ColumnId tag = ctx->NextId();
  std::vector<std::vector<Value>> tag_rows;
  for (size_t i = 0; i < n; ++i) {
    tag_rows.push_back({Value::Int64(static_cast<int64_t>(i + 1))});
  }
  PlanPtr tags = std::make_shared<ValuesOp>(
      Schema({{tag, "$tag", DataType::kInt64}}), std::move(tag_rows));
  PlanPtr crossed =
      std::make_shared<JoinOp>(JoinType::kCross, fused, tags, TrueExpr());
  ExprPtr tag_ref = eb::Col(tag, DataType::kInt64);
  std::vector<ExprPtr> arms;
  bool all_true = true;
  for (size_t i = 0; i < n; ++i) {
    all_true &= IsTrueLiteral(branch_cond[i]);
    arms.push_back(eb::And(
        eb::Eq(tag_ref, eb::Int(static_cast<int64_t>(i + 1))),
        branch_cond[i]));
  }
  PlanPtr filtered = all_true
                         ? crossed
                         : std::static_pointer_cast<const LogicalOp>(
                               std::make_shared<FilterOp>(
                                   crossed, Simplify(Expr::MakeOr(arms))));

  std::vector<NamedExpr> outs;
  for (size_t o = 0; o < u.schema().num_columns(); ++o) {
    const ColumnInfo& info = u.schema().column(o);
    bool all_same = true;
    for (size_t c = 1; c < n; ++c) all_same &= (src(c, o) == src(0, o));
    ExprPtr e;
    if (all_same) {
      e = src_ref(0, o);
    } else {
      std::vector<std::pair<ExprPtr, ExprPtr>> case_arms;
      for (size_t c = 0; c + 1 < n; ++c) {
        case_arms.push_back(
            {eb::Eq(tag_ref, eb::Int(static_cast<int64_t>(c + 1))),
             src_ref(c, o)});
      }
      e = eb::Case(std::move(case_arms), src_ref(n - 1, o));
    }
    outs.push_back({info.id, info.name, std::move(e)});
  }
  return std::static_pointer_cast<const LogicalOp>(
      std::make_shared<ProjectOp>(filtered, std::move(outs)));
}

}  // namespace fusiondb
