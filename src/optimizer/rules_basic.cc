// Substrate rules: expression simplification, filter/project normalization,
// partition-pruning handoff and filter pushdown.
#include "expr/simplifier.h"
#include "optimizer/rules.h"

namespace fusiondb {

Result<PlanPtr> SimplifyExpressionsRule::Apply(const PlanPtr& plan,
                                               PlanContext* ctx) const {
  (void)ctx;
  switch (plan->kind()) {
    case OpKind::kFilter: {
      const auto& filter = Cast<FilterOp>(*plan);
      ExprPtr simplified = Simplify(filter.predicate());
      if (simplified == filter.predicate()) return plan;
      if (IsTrueLiteral(simplified)) return filter.child(0);
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<FilterOp>(filter.child(0), simplified));
    }
    case OpKind::kProject: {
      const auto& proj = Cast<ProjectOp>(*plan);
      bool changed = false;
      std::vector<NamedExpr> exprs;
      exprs.reserve(proj.exprs().size());
      for (const NamedExpr& e : proj.exprs()) {
        ExprPtr s = Simplify(e.expr);
        changed |= (s != e.expr);
        exprs.push_back({e.id, e.name, std::move(s)});
      }
      if (!changed) return plan;
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<ProjectOp>(proj.child(0), std::move(exprs)));
    }
    case OpKind::kJoin: {
      const auto& join = Cast<JoinOp>(*plan);
      ExprPtr simplified = Simplify(join.condition());
      if (simplified == join.condition()) return plan;
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<JoinOp>(join.join_type(), join.left(), join.right(),
                                   simplified));
    }
    case OpKind::kAggregate: {
      const auto& agg = Cast<AggregateOp>(*plan);
      bool changed = false;
      std::vector<AggregateItem> items;
      items.reserve(agg.aggregates().size());
      for (const AggregateItem& a : agg.aggregates()) {
        AggregateItem item = a;
        if (item.mask != nullptr) {
          ExprPtr s = Simplify(item.mask);
          if (IsTrueLiteral(s)) s = nullptr;
          changed |= (s != a.mask);
          item.mask = std::move(s);
        }
        items.push_back(std::move(item));
      }
      if (!changed) return plan;
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<AggregateOp>(agg.child(0), agg.group_by(),
                                        std::move(items)));
    }
    case OpKind::kScan:
    case OpKind::kWindow:
    case OpKind::kMarkDistinct:
    case OpKind::kUnionAll:
    case OpKind::kValues:
    case OpKind::kSort:
    case OpKind::kLimit:
    case OpKind::kEnforceSingleRow:
    case OpKind::kApply:
    case OpKind::kSpool:
      return plan;  // no embedded expressions to simplify
  }
  return plan;
}

Result<PlanPtr> MergeFiltersRule::Apply(const PlanPtr& plan,
                                        PlanContext* ctx) const {
  (void)ctx;
  if (plan->kind() != OpKind::kFilter) return plan;
  const auto& outer = Cast<FilterOp>(*plan);
  if (IsTrueLiteral(outer.predicate())) return outer.child(0);
  if (outer.child(0)->kind() != OpKind::kFilter) return plan;
  const auto& inner = Cast<FilterOp>(*outer.child(0));
  ExprPtr merged = MakeConjunction(inner.predicate(), outer.predicate());
  return std::static_pointer_cast<const LogicalOp>(
      std::make_shared<FilterOp>(inner.child(0), merged));
}

Result<PlanPtr> MergeProjectsRule::Apply(const PlanPtr& plan,
                                         PlanContext* ctx) const {
  (void)ctx;
  if (plan->kind() != OpKind::kProject) return plan;
  const auto& outer = Cast<ProjectOp>(*plan);
  if (outer.child(0)->kind() != OpKind::kProject) return plan;
  const auto& inner = Cast<ProjectOp>(*outer.child(0));
  // Inline inner assignments into outer expressions via substitution.
  std::unordered_map<ColumnId, ExprPtr> defs;
  for (const NamedExpr& e : inner.exprs()) defs[e.id] = e.expr;
  // Substitution: rebuild outer exprs replacing refs with inner defs.
  struct Subst {
    const std::unordered_map<ColumnId, ExprPtr>& defs;
    ExprPtr operator()(const ExprPtr& e) const {
      if (e->kind() == ExprKind::kColumnRef) {
        auto it = defs.find(e->column_id());
        return it == defs.end() ? e : it->second;
      }
      if (e->children().empty()) return e;
      std::vector<ExprPtr> children;
      children.reserve(e->children().size());
      bool changed = false;
      for (const ExprPtr& c : e->children()) {
        ExprPtr nc = (*this)(c);
        changed |= (nc != c);
        children.push_back(std::move(nc));
      }
      if (!changed) return e;
      switch (e->kind()) {
        case ExprKind::kCompare:
          return Expr::MakeCompare(e->compare_op(), children[0], children[1]);
        case ExprKind::kArith:
          return Expr::MakeArith(e->arith_op(), children[0], children[1],
                                 e->type());
        case ExprKind::kAnd:
          return Expr::MakeAnd(std::move(children));
        case ExprKind::kOr:
          return Expr::MakeOr(std::move(children));
        case ExprKind::kNot:
          return Expr::MakeNot(children[0]);
        case ExprKind::kIsNull:
          return Expr::MakeIsNull(children[0]);
        case ExprKind::kCase:
          return Expr::MakeCase(std::move(children), e->type());
        case ExprKind::kInList:
          return Expr::MakeInList(std::move(children));
        case ExprKind::kColumnRef:
        case ExprKind::kLiteral:
          return e;  // leaves; handled before recursion
      }
      return e;
    }
  };
  Subst subst{defs};
  std::vector<NamedExpr> merged;
  merged.reserve(outer.exprs().size());
  for (const NamedExpr& e : outer.exprs()) {
    merged.push_back({e.id, e.name, subst(e.expr)});
  }
  return std::static_pointer_cast<const LogicalOp>(
      std::make_shared<ProjectOp>(inner.child(0), std::move(merged)));
}

Result<PlanPtr> PushFilterIntoScanRule::Apply(const PlanPtr& plan,
                                              PlanContext* ctx) const {
  (void)ctx;
  if (plan->kind() != OpKind::kFilter) return plan;
  const auto& filter = Cast<FilterOp>(*plan);
  if (filter.child(0)->kind() != OpKind::kScan) return plan;
  const auto& scan = Cast<ScanOp>(*filter.child(0));
  if (scan.pruning_filter() != nullptr &&
      ExprEquivalent(scan.pruning_filter(), filter.predicate())) {
    return plan;  // already handed over
  }
  PlanPtr new_scan = std::make_shared<ScanOp>(
      scan.table(), scan.table_columns(), scan.schema(), filter.predicate());
  return std::static_pointer_cast<const LogicalOp>(
      std::make_shared<FilterOp>(new_scan, filter.predicate()));
}

Result<PlanPtr> FilterPushdownRule::Apply(const PlanPtr& plan,
                                          PlanContext* ctx) const {
  (void)ctx;
  if (plan->kind() != OpKind::kFilter) return plan;
  const auto& filter = Cast<FilterOp>(*plan);
  const PlanPtr& child = filter.child(0);
  if (child->kind() != OpKind::kJoin) return plan;
  const auto& join = Cast<JoinOp>(*child);
  // Only inner/cross joins admit unconditional pushdown of conjuncts.
  if (join.join_type() != JoinType::kInner &&
      join.join_type() != JoinType::kCross) {
    return plan;
  }
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(filter.predicate(), &conjuncts);
  std::vector<ExprPtr> to_left;
  std::vector<ExprPtr> to_right;
  std::vector<ExprPtr> keep;
  auto covered = [](const ExprPtr& e, const Schema& s) {
    std::vector<ColumnId> cols;
    CollectColumns(e, &cols);
    for (ColumnId c : cols) {
      if (!s.Contains(c)) return false;
    }
    return true;
  };
  for (const ExprPtr& c : conjuncts) {
    if (covered(c, join.left()->schema())) {
      to_left.push_back(c);
    } else if (covered(c, join.right()->schema())) {
      to_right.push_back(c);
    } else {
      keep.push_back(c);
    }
  }
  if (to_left.empty() && to_right.empty()) return plan;
  PlanPtr left = join.left();
  PlanPtr right = join.right();
  if (!to_left.empty()) {
    left = std::make_shared<FilterOp>(left, CombineConjuncts(to_left));
  }
  if (!to_right.empty()) {
    right = std::make_shared<FilterOp>(right, CombineConjuncts(to_right));
  }
  PlanPtr new_join =
      std::make_shared<JoinOp>(join.join_type(), left, right, join.condition());
  if (keep.empty()) return new_join;
  return std::static_pointer_cast<const LogicalOp>(
      std::make_shared<FilterOp>(new_join, CombineConjuncts(keep)));
}

}  // namespace fusiondb
