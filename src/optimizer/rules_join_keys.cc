// Section IV.B — JoinOnKeys.
//
// Two join inputs joined on a candidate key of one of them match pairwise,
// so the join collapses onto the fused plan:
//   Filter_{L AND R AND keys NOT NULL}(Fuse(P1, P2).plan)
// (residual conjuncts M(C2) are re-placed by the n-ary rebuild). The
// scalar-aggregate specialization (empty key, cross join) needs no extra
// filter: for scalar aggregates the compensations are TRUE because the
// fusion itself tightened every aggregate's mask.
//
// The precondition comes from the derived plan properties (src/analysis):
// some candidate key K of input j must (a) be equated column-by-column with
// its fused image M(K) by the join conjuncts and (b) have M(K) cover a
// candidate key of the FUSED plan, so two joined rows match exactly when
// they are the same fused row. GroupBy outputs (the grouping columns are a
// key) are the paper's case; primary-key scans and single-row subplans fall
// out of the same property check. Guard conjuncts already implied by the
// fused subtree's derived column domains are dropped; when a semantic
// ledger is attached, the key claims and the dropped-guard implication are
// recorded for the verifier to re-prove.
//
// Per IV.E the rule linearizes the join tree and applies pairwise a
// quadratic number of times, growing the fused result incrementally — this
// is what collapses Q09's 15 scans of store_sales in one optimizer visit.
#include <algorithm>

#include "analysis/plan_props.h"
#include "analysis/semantic_ledger.h"
#include "expr/expr_builder.h"
#include "expr/simplifier.h"
#include "fusion/fuse.h"
#include "optimizer/rewrite_utils.h"
#include "optimizer/rules.h"

namespace fusiondb {

namespace {

/// total := newer ∘ total, then entries of `newer` not reached by total.
void ComposeInto(ColumnMap* total, const ColumnMap& newer) {
  for (auto& [from, to] : *total) {
    to = ApplyMap(newer, to);
  }
  for (const auto& [from, to] : newer) {
    total->emplace(from, to);
  }
}

}  // namespace

Result<PlanPtr> JoinOnKeysRule::Apply(const PlanPtr& plan,
                                      PlanContext* ctx) const {
  NaryJoin nary;
  if (!FlattenJoin(plan, &nary)) return plan;
  Fuser fuser(ctx);
  PropertyDerivation props;
  ColumnMap total_remap;
  bool changed = false;

  bool progress = true;
  while (progress) {
    progress = false;
    EqualityClasses classes(nary.conjuncts);
    for (size_t i = 0; i < nary.inputs.size() && !progress; ++i) {
      for (size_t j = i + 1; j < nary.inputs.size() && !progress; ++j) {
        const std::vector<std::vector<ColumnId>> j_keys =
            props.Derive(nary.inputs[j]).keys;
        if (j_keys.empty()) continue;

        auto fused = fuser.Fuse(nary.inputs[i], nary.inputs[j]);
        if (!fused.has_value()) continue;
        const PlanProps& pf = props.Derive(fused->plan);

        // Find a key of input j whose columns the join equates with their
        // fused counterparts and whose image keys the fused plan. Scalar
        // case (empty key, "at most one row"): nothing to equate — 1-row
        // relations combined by a cross product.
        const std::vector<ColumnId>* key = nullptr;
        std::vector<ColumnId> mapped;
        for (const std::vector<ColumnId>& kj : j_keys) {
          bool ok = true;
          std::vector<ColumnId> m;
          m.reserve(kj.size());
          for (ColumnId k2 : kj) {
            ColumnId k1 = ApplyMap(fused->mapping, k2);
            if (fused->plan->schema().IndexOf(k1) < 0 ||
                !classes.Same(k1, k2)) {
              ok = false;
              break;
            }
            m.push_back(k1);
          }
          if (ok && pf.HasKey(m)) {
            key = &kj;
            mapped = std::move(m);
            break;
          }
        }
        if (key == nullptr) continue;

        // Keep rows present on both sides (compensating count guards), with
        // NULL keys excluded as in the original join. Guards the fused
        // subtree's derived domains already prove are dropped (and the drop
        // recorded as an implication obligation when a ledger is attached).
        std::vector<ExprPtr> conds;
        SplitConjuncts(fused->left_filter, &conds);
        SplitConjuncts(fused->right_filter, &conds);
        std::vector<ColumnId> guard_cols = mapped;
        std::sort(guard_cols.begin(), guard_cols.end());
        guard_cols.erase(std::unique(guard_cols.begin(), guard_cols.end()),
                         guard_cols.end());
        for (ColumnId k1 : guard_cols) {
          int idx = fused->plan->schema().IndexOf(k1);
          conds.push_back(eb::IsNotNull(
              eb::Col(k1, fused->plan->schema().column(idx).type)));
        }
        ExprPtr full_guard = Simplify(CombineConjuncts(conds));
        std::vector<ExprPtr> kept = DropImpliedConjuncts(conds, pf.domains);
        ExprPtr guard = Simplify(CombineConjuncts(kept));

        if (SemanticLedger* ledger = ctx->semantics()) {
          ledger->AddKey(nary.inputs[j], *key, "JoinOnKeys");
          ledger->AddKey(fused->plan, mapped, "JoinOnKeys");
          if (kept.size() != conds.size()) {
            ledger->AddImplication(fused->plan, guard, full_guard,
                                   "JoinOnKeys");
          }
        }

        PlanPtr replacement = fused->plan;
        if (!IsTrueLiteral(guard)) {
          replacement = std::make_shared<FilterOp>(replacement, guard);
        }

        std::vector<PlanPtr> inputs;
        for (size_t t = 0; t < nary.inputs.size(); ++t) {
          if (t == i || t == j) continue;
          inputs.push_back(nary.inputs[t]);
        }
        inputs.push_back(std::move(replacement));
        nary.inputs = std::move(inputs);
        nary.conjuncts = RemapConjuncts(nary.conjuncts, fused->mapping);
        ComposeInto(&total_remap, fused->mapping);
        changed = true;
        progress = true;
      }
    }
  }
  if (!changed) return plan;
  FUSIONDB_ASSIGN_OR_RETURN(PlanPtr joined, RebuildJoin(nary));
  return RestoreSchema(joined, plan->schema(), total_remap);
}

}  // namespace fusiondb
