// Section IV.B — JoinOnKeys.
//
// Two join inputs whose rows are keyed (GroupBy outputs: the grouping
// columns are a key) and joined on those keys match pairwise, so the join
// collapses onto the fused plan:
//   Filter_{L AND R AND keys NOT NULL}(Fuse(P1, P2).plan)
// (residual conjuncts M(C2) are re-placed by the n-ary rebuild). The
// scalar-aggregate specialization (empty keys, cross join) needs no extra
// filter: for scalar aggregates the compensations are TRUE because the
// fusion itself tightened every aggregate's mask.
//
// Per IV.E the rule linearizes the join tree and applies pairwise a
// quadratic number of times, growing the fused result incrementally — this
// is what collapses Q09's 15 scans of store_sales in one optimizer visit.
#include "expr/expr_builder.h"
#include "expr/simplifier.h"
#include "fusion/fuse.h"
#include "optimizer/rewrite_utils.h"
#include "optimizer/rules.h"

namespace fusiondb {

namespace {

/// total := newer ∘ total, then entries of `newer` not reached by total.
void ComposeInto(ColumnMap* total, const ColumnMap& newer) {
  for (auto& [from, to] : *total) {
    to = ApplyMap(newer, to);
  }
  for (const auto& [from, to] : newer) {
    total->emplace(from, to);
  }
}

/// The aggregate rooted at `plan`, or below a single Filter (a previous
/// JoinOnKeys application wraps its fused aggregate in a guard filter; that
/// result must remain fusable so n-ary chains keep collapsing).
const AggregateOp* AggregateBelowGuard(const PlanPtr& plan) {
  if (plan->kind() == OpKind::kAggregate) {
    return &Cast<AggregateOp>(*plan);
  }
  if (plan->kind() == OpKind::kFilter &&
      plan->child(0)->kind() == OpKind::kAggregate) {
    return &Cast<AggregateOp>(*plan->child(0));
  }
  return nullptr;
}

}  // namespace

Result<PlanPtr> JoinOnKeysRule::Apply(const PlanPtr& plan,
                                      PlanContext* ctx) const {
  NaryJoin nary;
  if (!FlattenJoin(plan, &nary)) return plan;
  Fuser fuser(ctx);
  ColumnMap total_remap;
  bool changed = false;

  bool progress = true;
  while (progress) {
    progress = false;
    EqualityClasses classes(nary.conjuncts);
    for (size_t i = 0; i < nary.inputs.size() && !progress; ++i) {
      const AggregateOp* gi = AggregateBelowGuard(nary.inputs[i]);
      if (gi == nullptr) continue;
      for (size_t j = i + 1; j < nary.inputs.size() && !progress; ++j) {
        const AggregateOp* gj = AggregateBelowGuard(nary.inputs[j]);
        if (gj == nullptr) continue;
        if (gi->group_by().size() != gj->group_by().size()) continue;

        auto fused = fuser.Fuse(nary.inputs[i], nary.inputs[j]);
        if (!fused.has_value()) continue;

        // Grouped case: the join must equate each of gj's keys with its
        // fused counterpart (a key of gi). Scalar case (empty keys):
        // nothing to check — 1-row relations combined by a cross product.
        bool keys_ok = true;
        std::vector<ExprPtr> extra;  // NOT NULL guards on surviving keys
        for (ColumnId k2 : gj->group_by()) {
          ColumnId k1 = ApplyMap(fused->mapping, k2);
          if (!classes.Same(k1, k2)) {
            keys_ok = false;
            break;
          }
        }
        if (!keys_ok) continue;
        for (ColumnId k1 : gi->group_by()) {
          int idx = fused->plan->schema().IndexOf(k1);
          if (idx < 0) {
            keys_ok = false;
            break;
          }
          extra.push_back(eb::IsNotNull(
              eb::Col(k1, fused->plan->schema().column(idx).type)));
        }
        if (!keys_ok) continue;

        // Keep rows present on both sides (compensating count guards), with
        // NULL keys excluded as in the original join.
        std::vector<ExprPtr> conds;
        SplitConjuncts(fused->left_filter, &conds);
        SplitConjuncts(fused->right_filter, &conds);
        for (ExprPtr& e : extra) conds.push_back(std::move(e));
        PlanPtr replacement = fused->plan;
        ExprPtr guard = Simplify(CombineConjuncts(conds));
        if (!IsTrueLiteral(guard)) {
          replacement = std::make_shared<FilterOp>(replacement, guard);
        }

        std::vector<PlanPtr> inputs;
        for (size_t t = 0; t < nary.inputs.size(); ++t) {
          if (t == i || t == j) continue;
          inputs.push_back(nary.inputs[t]);
        }
        inputs.push_back(std::move(replacement));
        nary.inputs = std::move(inputs);
        nary.conjuncts = RemapConjuncts(nary.conjuncts, fused->mapping);
        ComposeInto(&total_remap, fused->mapping);
        changed = true;
        progress = true;
      }
    }
  }
  if (!changed) return plan;
  FUSIONDB_ASSIGN_OR_RETURN(PlanPtr joined, RebuildJoin(nary));
  return RestoreSchema(joined, plan->schema(), total_remap);
}

}  // namespace fusiondb
