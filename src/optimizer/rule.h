// Rule: one rewrite over a logical plan node. The driver (optimizer.cc)
// applies rules bottom-up to fixpoint, so a rule only needs to recognize its
// pattern rooted at the node it is handed.
#ifndef FUSIONDB_OPTIMIZER_RULE_H_
#define FUSIONDB_OPTIMIZER_RULE_H_

#include <string_view>

#include "common/status.h"
#include "plan/logical_plan.h"

namespace fusiondb {

class Rule {
 public:
  virtual ~Rule() = default;

  virtual std::string_view name() const = 0;

  /// Attempts to rewrite the subtree rooted at `plan` (children are already
  /// optimized). Returns `plan` itself (same pointer) when not applicable.
  /// Every rewrite must preserve the root's output columns: any surviving
  /// column keeps its id, and dropped/renamed columns are re-exposed through
  /// a compensating projection.
  virtual Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const = 0;
};

}  // namespace fusiondb

#endif  // FUSIONDB_OPTIMIZER_RULE_H_
