// Decorrelation of correlated scalar-aggregate subqueries, following the
// orthogonal-optimization approach of Galindo-Legaria & Joshi [20] for the
// equality-correlated case the TPC-DS queries exercise (Q01, Q30):
//
//   Apply(outer, GroupBy_{}, [agg](Q), {(o_i, n_i)})
//     => Join_{o_i = n_i}(outer, GroupBy_{n_i}, [agg](Q))
//
// The inner join drops outer rows whose correlation group is empty; for
// those rows the original subquery returns NULL, and every consumer of the
// Apply output column in this engine is a NULL-rejecting comparison, for
// which the two behaviours agree. (A general engine would use a left join
// plus NULL-awareness analysis; the paper treats decorrelation as given.)
#include "expr/expr_builder.h"
#include "expr/simplifier.h"
#include "optimizer/rules.h"

namespace fusiondb {

Result<PlanPtr> DecorrelateScalarAggRule::Apply(const PlanPtr& plan,
                                                PlanContext* ctx) const {
  (void)ctx;
  if (plan->kind() != OpKind::kApply) return plan;
  const auto& apply = Cast<ApplyOp>(*plan);
  if (apply.subquery()->kind() != OpKind::kAggregate) {
    return Status::PlanError(
        "Apply subquery must be a scalar aggregate; found " +
        std::string(OpKindName(apply.subquery()->kind())));
  }
  const auto& agg = Cast<AggregateOp>(*apply.subquery());
  if (!agg.IsScalar()) {
    return Status::PlanError("Apply subquery aggregate must be scalar");
  }
  const PlanPtr& inner_input = agg.child(0);

  // Grouping columns: the inner side of each correlation pair.
  std::vector<ColumnId> group_by;
  std::vector<ExprPtr> join_conjuncts;
  for (const auto& [outer_col, inner_col] : apply.correlation()) {
    int inner_idx = inner_input->schema().IndexOf(inner_col);
    int outer_idx = apply.outer()->schema().IndexOf(outer_col);
    if (inner_idx < 0 || outer_idx < 0) {
      return Status::PlanError("Apply correlation references unknown column");
    }
    group_by.push_back(inner_col);
    join_conjuncts.push_back(
        eb::Eq(eb::Col(apply.outer()->schema().column(outer_idx)),
               eb::Col(inner_input->schema().column(inner_idx))));
  }
  PlanPtr grouped = std::make_shared<AggregateOp>(inner_input, group_by,
                                                  agg.aggregates());
  return std::static_pointer_cast<const LogicalOp>(std::make_shared<JoinOp>(
      JoinType::kInner, apply.outer(), grouped,
      CombineConjuncts(join_conjuncts)));
}

}  // namespace fusiondb
