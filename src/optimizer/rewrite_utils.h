// Shared machinery for the join-based fusion rules (Sections IV.A, IV.B and
// IV.E): flattening a tree of inner/cross joins into an n-ary view, equality
// classes over join conjuncts, and rebuilding a left-deep tree afterwards.
#ifndef FUSIONDB_OPTIMIZER_REWRITE_UTILS_H_
#define FUSIONDB_OPTIMIZER_REWRITE_UTILS_H_

#include <unordered_map>
#include <vector>

#include "expr/column_map.h"
#include "expr/simplifier.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// An n-ary view over a tree of inner/cross joins: the leaf inputs (in
/// left-to-right order) and the pooled conjuncts of every join condition.
/// This is the paper's IV.E device: fusion rules "recursively traverse
/// [a join's] inputs to conceptually obtain an n-ary join" so inputs that
/// are not adjacent (Q01's ctr1 and its aggregated copy are separated by
/// store and customer) can still be paired.
struct NaryJoin {
  std::vector<PlanPtr> inputs;
  std::vector<ExprPtr> conjuncts;
};

/// Flattens `plan` if it is an inner or cross join; recurses only through
/// inner/cross joins. Returns false when `plan` is not one.
bool FlattenJoin(const PlanPtr& plan, NaryJoin* out);

/// Union-find over column ids derived from `col = col` conjuncts; two
/// columns are "join-equal" when some chain of equality conjuncts links
/// them (how JoinOnKeys matches R0/R2 keys in Q95 through ws1).
class EqualityClasses {
 public:
  explicit EqualityClasses(const std::vector<ExprPtr>& conjuncts);

  /// True when `a` and `b` are provably equated by the join conjuncts.
  bool Same(ColumnId a, ColumnId b) const;

 private:
  ColumnId Find(ColumnId x) const;
  mutable std::unordered_map<ColumnId, ColumnId> parent_;
};

/// Rebuilds a left-deep join tree from an n-ary view: inputs joined in
/// order; each conjunct is attached at the first join where all its columns
/// are in scope; conjuncts over a single input become filters on it.
/// Conjuncts that are self-trivial after remapping (x = x) are dropped.
Result<PlanPtr> RebuildJoin(const NaryJoin& nary);

/// Applies `map` to every conjunct, dropping those that become trivially
/// true (e.g. a key equality collapsing to x = x).
std::vector<ExprPtr> RemapConjuncts(const std::vector<ExprPtr>& conjuncts,
                                    const ColumnMap& map);

/// Wraps `plan` with a projection restoring `original` schema ids: each
/// original column id is defined as a reference to map(id) in `plan`.
/// Returns `plan` unchanged when no remapping is needed and all original
/// columns are present (extra columns are allowed; parents reference by id
/// and pruning trims the rest). Keeps rule rewrites schema-stable.
Result<PlanPtr> RestoreSchema(const PlanPtr& plan, const Schema& original,
                              const ColumnMap& map);

}  // namespace fusiondb

#endif  // FUSIONDB_OPTIMIZER_REWRITE_UTILS_H_
