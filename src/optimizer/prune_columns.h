// Column pruning: narrows scans, projections, aggregates, unions and
// windows to the columns actually consumed upstream. Runs as a dedicated
// top-down pass (a rule sees only one node). Pruning is what makes the
// bytes-scanned comparison meaningful: both the baseline and the fused
// plans read only the columns they need.
#ifndef FUSIONDB_OPTIMIZER_PRUNE_COLUMNS_H_
#define FUSIONDB_OPTIMIZER_PRUNE_COLUMNS_H_

#include "common/status.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// Prunes `plan` so only its root schema's columns (and whatever internal
/// operators need) are produced. Never drops a column another operator
/// still references.
Result<PlanPtr> PruneColumns(const PlanPtr& plan);

}  // namespace fusiondb

#endif  // FUSIONDB_OPTIMIZER_PRUNE_COLUMNS_H_
