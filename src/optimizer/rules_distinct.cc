// Distinct-related substrate rules: lowering DISTINCT aggregates onto
// MarkDistinct (Section III.F), the semi-join -> distinct-join rewrite and
// the distinct-below-join pushdown the paper's Q95 walk-through relies on.
#include "expr/expr_builder.h"
#include "expr/simplifier.h"
#include "optimizer/rewrite_utils.h"
#include "optimizer/rules.h"

namespace fusiondb {

Result<PlanPtr> DistinctAggToMarkDistinctRule::Apply(const PlanPtr& plan,
                                                     PlanContext* ctx) const {
  if (plan->kind() != OpKind::kAggregate) return plan;
  const auto& agg = Cast<AggregateOp>(*plan);
  bool any_distinct = false;
  for (const AggregateItem& a : agg.aggregates()) {
    if (a.distinct) any_distinct = true;
  }
  if (!any_distinct) return plan;
  // Lowering needs bare-column DISTINCT arguments (TPC-DS only uses those);
  // anything else stays on the executor's direct distinct path.
  for (const AggregateItem& a : agg.aggregates()) {
    if (a.distinct && (a.arg == nullptr || a.arg->kind() != ExprKind::kColumnRef)) {
      return plan;
    }
  }
  // One MarkDistinct per distinct argument column (first occurrences are
  // tracked per grouping-key combination, hence group columns join the
  // distinct set).
  PlanPtr input = agg.child(0);
  std::unordered_map<ColumnId, ColumnId> marker_of;  // arg col -> marker col
  for (const AggregateItem& a : agg.aggregates()) {
    if (!a.distinct) continue;
    ColumnId arg_col = a.arg->column_id();
    if (marker_of.count(arg_col) > 0) continue;
    std::vector<ColumnId> distinct_cols = agg.group_by();
    distinct_cols.push_back(arg_col);
    ColumnId marker = ctx->NextId();
    input = std::make_shared<MarkDistinctOp>(
        input, marker, "$distinct_" + std::to_string(arg_col),
        std::move(distinct_cols));
    marker_of[arg_col] = marker;
  }
  std::vector<AggregateItem> items;
  items.reserve(agg.aggregates().size());
  for (const AggregateItem& a : agg.aggregates()) {
    AggregateItem item = a;
    if (a.distinct) {
      ExprPtr marker_ref =
          eb::Col(marker_of[a.arg->column_id()], DataType::kBool);
      item.mask = item.mask == nullptr ? marker_ref
                                       : MakeConjunction(item.mask, marker_ref);
      item.distinct = false;
    }
    items.push_back(std::move(item));
  }
  return std::static_pointer_cast<const LogicalOp>(
      std::make_shared<AggregateOp>(input, agg.group_by(), std::move(items)));
}

Result<PlanPtr> SemiJoinToDistinctJoinRule::Apply(const PlanPtr& plan,
                                                  PlanContext* ctx) const {
  (void)ctx;
  if (plan->kind() != OpKind::kJoin) return plan;
  const auto& join = Cast<JoinOp>(*plan);
  if (join.join_type() != JoinType::kSemi) return plan;
  // Condition must be pure column equalities so the distinct on the right
  // join columns makes each left row match at most once.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(join.condition(), &conjuncts);
  if (conjuncts.empty()) return plan;
  std::vector<ColumnId> right_cols;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != ExprKind::kCompare ||
        c->compare_op() != CompareOp::kEq ||
        c->child(0)->kind() != ExprKind::kColumnRef ||
        c->child(1)->kind() != ExprKind::kColumnRef) {
      return plan;
    }
    ColumnId a = c->child(0)->column_id();
    ColumnId b = c->child(1)->column_id();
    if (join.right()->schema().Contains(a)) {
      right_cols.push_back(a);
    } else if (join.right()->schema().Contains(b)) {
      right_cols.push_back(b);
    } else {
      return plan;
    }
  }
  PlanPtr distinct = std::make_shared<AggregateOp>(
      join.right(), right_cols, std::vector<AggregateItem>());
  PlanPtr inner = std::make_shared<JoinOp>(JoinType::kInner, join.left(),
                                           distinct, join.condition());
  // Restore the semi join's output schema (left columns only).
  return RestoreSchema(inner, join.schema(), ColumnMap());
}

Result<PlanPtr> PushDistinctBelowJoinRule::Apply(const PlanPtr& plan,
                                                 PlanContext* ctx) const {
  (void)ctx;
  if (plan->kind() != OpKind::kAggregate) return plan;
  const auto& agg = Cast<AggregateOp>(*plan);
  if (!agg.aggregates().empty() || agg.group_by().empty()) return plan;
  // Look through a pure-renaming projection between the distinct and the
  // join (Q95's ws_wh CTE renames ws_order_number before joining
  // web_returns): translate the group columns to the underlying ones.
  PlanPtr below = agg.child(0);
  ColumnMap rename;  // distinct's group cols -> underlying join cols
  if (below->kind() == OpKind::kProject) {
    const auto& proj = Cast<ProjectOp>(*below);
    for (const NamedExpr& e : proj.exprs()) {
      if (e.expr->kind() != ExprKind::kColumnRef) return plan;
      rename[e.id] = e.expr->column_id();
    }
    below = proj.child(0);
  }
  std::vector<ColumnId> group_cols;
  group_cols.reserve(agg.group_by().size());
  for (ColumnId g : agg.group_by()) group_cols.push_back(ApplyMap(rename, g));
  if (below->kind() != OpKind::kJoin) return plan;
  const auto& join = Cast<JoinOp>(*below);
  if (join.join_type() != JoinType::kInner) return plan;
  // The join condition must be column equalities, and the distinct columns
  // must all be join columns — then distinct-over-join equals the join of
  // per-side distincts on the join columns.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(join.condition(), &conjuncts);
  if (conjuncts.empty()) return plan;
  std::vector<ColumnId> left_keys;
  std::vector<ColumnId> right_keys;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != ExprKind::kCompare ||
        c->compare_op() != CompareOp::kEq ||
        c->child(0)->kind() != ExprKind::kColumnRef ||
        c->child(1)->kind() != ExprKind::kColumnRef) {
      return plan;
    }
    ColumnId a = c->child(0)->column_id();
    ColumnId b = c->child(1)->column_id();
    if (join.left()->schema().Contains(a) &&
        join.right()->schema().Contains(b)) {
      left_keys.push_back(a);
      right_keys.push_back(b);
    } else if (join.left()->schema().Contains(b) &&
               join.right()->schema().Contains(a)) {
      left_keys.push_back(b);
      right_keys.push_back(a);
    } else {
      return plan;
    }
  }
  // Every distinct column must be one of the join's equality columns.
  EqualityClasses classes(conjuncts);
  for (ColumnId g : group_cols) {
    bool found = false;
    for (size_t i = 0; i < left_keys.size() && !found; ++i) {
      found = classes.Same(g, left_keys[i]) || classes.Same(g, right_keys[i]);
    }
    if (!found) return plan;
  }
  PlanPtr left = std::make_shared<AggregateOp>(join.left(), left_keys,
                                               std::vector<AggregateItem>());
  PlanPtr right = std::make_shared<AggregateOp>(join.right(), right_keys,
                                                std::vector<AggregateItem>());
  PlanPtr pushed = std::make_shared<JoinOp>(JoinType::kInner, left, right,
                                            join.condition());
  // Restore the original distinct's output (its group columns, possibly
  // through the renaming projection we looked through).
  return RestoreSchema(pushed, agg.schema(), rename);
}

}  // namespace fusiondb
