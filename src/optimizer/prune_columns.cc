#include "optimizer/prune_columns.h"

#include <unordered_set>

#include "expr/expr.h"

namespace fusiondb {

namespace {

using ColumnSet = std::unordered_set<ColumnId>;

void AddExprColumns(const ExprPtr& e, ColumnSet* set) {
  if (e == nullptr) return;
  std::vector<ColumnId> cols;
  CollectColumns(e, &cols);
  set->insert(cols.begin(), cols.end());
}

Result<PlanPtr> Prune(const PlanPtr& plan, const ColumnSet& required);

Result<PlanPtr> PruneChildPassthrough(const PlanPtr& plan,
                                      const ColumnSet& required) {
  FUSIONDB_ASSIGN_OR_RETURN(PlanPtr child, Prune(plan->child(0), required));
  if (child == plan->child(0)) return plan;
  return plan->CloneWithChildren({std::move(child)});
}

Result<PlanPtr> Prune(const PlanPtr& plan, const ColumnSet& required) {
  switch (plan->kind()) {
    case OpKind::kScan: {
      const auto& scan = Cast<ScanOp>(*plan);
      ColumnSet needed = required;
      AddExprColumns(scan.pruning_filter(), &needed);
      std::vector<int> table_columns;
      std::vector<ColumnInfo> cols;
      for (size_t i = 0; i < scan.schema().num_columns(); ++i) {
        if (needed.count(scan.schema().column(i).id) == 0) continue;
        table_columns.push_back(scan.table_columns()[i]);
        cols.push_back(scan.schema().column(i));
      }
      // A scan must read something to preserve row counts (COUNT(*) over a
      // table with no referenced columns): keep the narrowest column.
      if (cols.empty() && scan.schema().num_columns() > 0) {
        size_t best = 0;
        int64_t best_width = FixedWidthOf(scan.schema().column(0).type);
        for (size_t i = 1; i < scan.schema().num_columns(); ++i) {
          int64_t w = FixedWidthOf(scan.schema().column(i).type);
          if (w != 0 && (best_width == 0 || w < best_width)) {
            best = i;
            best_width = w;
          }
        }
        table_columns.push_back(scan.table_columns()[best]);
        cols.push_back(scan.schema().column(best));
      }
      if (cols.size() == scan.schema().num_columns()) return plan;
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<ScanOp>(scan.table(), std::move(table_columns),
                                   Schema(std::move(cols)),
                                   scan.pruning_filter()));
    }
    case OpKind::kFilter: {
      const auto& filter = Cast<FilterOp>(*plan);
      ColumnSet needed = required;
      AddExprColumns(filter.predicate(), &needed);
      FUSIONDB_ASSIGN_OR_RETURN(PlanPtr child, Prune(filter.child(0), needed));
      if (child == filter.child(0)) return plan;
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<FilterOp>(std::move(child), filter.predicate()));
    }
    case OpKind::kProject: {
      const auto& proj = Cast<ProjectOp>(*plan);
      std::vector<NamedExpr> kept;
      ColumnSet needed;
      for (const NamedExpr& e : proj.exprs()) {
        if (required.count(e.id) == 0) continue;
        kept.push_back(e);
        AddExprColumns(e.expr, &needed);
      }
      if (kept.empty() && !proj.exprs().empty()) {
        kept.push_back(proj.exprs()[0]);
        AddExprColumns(proj.exprs()[0].expr, &needed);
      }
      FUSIONDB_ASSIGN_OR_RETURN(PlanPtr child, Prune(proj.child(0), needed));
      if (child == proj.child(0) && kept.size() == proj.exprs().size()) {
        return plan;
      }
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<ProjectOp>(std::move(child), std::move(kept)));
    }
    case OpKind::kJoin: {
      const auto& join = Cast<JoinOp>(*plan);
      ColumnSet needed = required;
      AddExprColumns(join.condition(), &needed);
      FUSIONDB_ASSIGN_OR_RETURN(PlanPtr left, Prune(join.left(), needed));
      FUSIONDB_ASSIGN_OR_RETURN(PlanPtr right, Prune(join.right(), needed));
      if (left == join.left() && right == join.right()) return plan;
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<JoinOp>(join.join_type(), std::move(left),
                                   std::move(right), join.condition()));
    }
    case OpKind::kAggregate: {
      const auto& agg = Cast<AggregateOp>(*plan);
      ColumnSet needed;
      needed.insert(agg.group_by().begin(), agg.group_by().end());
      std::vector<AggregateItem> kept;
      for (const AggregateItem& a : agg.aggregates()) {
        if (required.count(a.id) == 0) continue;
        kept.push_back(a);
        AddExprColumns(a.arg, &needed);
        AddExprColumns(a.mask, &needed);
      }
      FUSIONDB_ASSIGN_OR_RETURN(PlanPtr child, Prune(agg.child(0), needed));
      if (child == agg.child(0) && kept.size() == agg.aggregates().size()) {
        return plan;
      }
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<AggregateOp>(std::move(child), agg.group_by(),
                                        std::move(kept)));
    }
    case OpKind::kWindow: {
      const auto& win = Cast<WindowOp>(*plan);
      ColumnSet needed = required;
      needed.insert(win.partition_by().begin(), win.partition_by().end());
      std::vector<WindowItem> kept;
      for (const WindowItem& w : win.items()) {
        if (required.count(w.id) == 0) continue;
        kept.push_back(w);
        AddExprColumns(w.arg, &needed);
        AddExprColumns(w.mask, &needed);
      }
      for (const WindowItem& w : kept) needed.erase(w.id);
      FUSIONDB_ASSIGN_OR_RETURN(PlanPtr child, Prune(win.child(0), needed));
      if (child == win.child(0) && kept.size() == win.items().size()) {
        return plan;
      }
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<WindowOp>(std::move(child), win.partition_by(),
                                     std::move(kept)));
    }
    case OpKind::kMarkDistinct: {
      const auto& md = Cast<MarkDistinctOp>(*plan);
      ColumnSet needed = required;
      needed.erase(md.marker());
      needed.insert(md.distinct_columns().begin(),
                    md.distinct_columns().end());
      FUSIONDB_ASSIGN_OR_RETURN(PlanPtr child, Prune(md.child(0), needed));
      if (child == md.child(0)) return plan;
      return plan->CloneWithChildren({std::move(child)});
    }
    case OpKind::kUnionAll: {
      const auto& u = Cast<UnionAllOp>(*plan);
      // Keep required output positions; narrow each child accordingly.
      std::vector<size_t> positions;
      for (size_t o = 0; o < u.schema().num_columns(); ++o) {
        if (required.count(u.schema().column(o).id) > 0) positions.push_back(o);
      }
      if (positions.empty() && u.schema().num_columns() > 0) {
        positions.push_back(0);
      }
      std::vector<PlanPtr> children;
      std::vector<std::vector<ColumnId>> input_columns;
      std::vector<ColumnInfo> out_cols;
      for (size_t o : positions) out_cols.push_back(u.schema().column(o));
      for (size_t c = 0; c < u.num_children(); ++c) {
        ColumnSet needed;
        std::vector<ColumnId> ids;
        for (size_t o : positions) {
          ids.push_back(u.input_columns()[c][o]);
          needed.insert(u.input_columns()[c][o]);
        }
        FUSIONDB_ASSIGN_OR_RETURN(PlanPtr child, Prune(u.child(c), needed));
        children.push_back(std::move(child));
        input_columns.push_back(std::move(ids));
      }
      if (positions.size() == u.schema().num_columns()) {
        bool unchanged = true;
        for (size_t c = 0; c < children.size(); ++c) {
          unchanged &= (children[c] == u.child(c));
        }
        if (unchanged) return plan;
      }
      return std::static_pointer_cast<const LogicalOp>(
          std::make_shared<UnionAllOp>(std::move(children),
                                       Schema(std::move(out_cols)),
                                       std::move(input_columns)));
    }
    case OpKind::kSort: {
      const auto& sort = Cast<SortOp>(*plan);
      ColumnSet needed = required;
      for (const SortKey& k : sort.keys()) needed.insert(k.column);
      FUSIONDB_ASSIGN_OR_RETURN(PlanPtr child, Prune(sort.child(0), needed));
      if (child == sort.child(0)) return plan;
      return plan->CloneWithChildren({std::move(child)});
    }
    case OpKind::kLimit:
    case OpKind::kEnforceSingleRow:
      return PruneChildPassthrough(plan, required);
    case OpKind::kValues:
      return plan;
    case OpKind::kApply: {
      // Conservative: require everything below an Apply.
      return plan;
    }
    case OpKind::kSpool:
      // Spool children are shared by multiple consumers with different
      // needs; never narrow through them.
      return plan;
  }
  return plan;
}

}  // namespace

Result<PlanPtr> PruneColumns(const PlanPtr& plan) {
  ColumnSet required;
  for (const ColumnInfo& c : plan->schema().columns()) required.insert(c.id);
  FUSIONDB_ASSIGN_OR_RETURN(PlanPtr pruned, Prune(plan, required));
  // The root's schema must be stable for callers: pruning keeps required
  // root columns by construction, but sorts/limits pass schemas through, so
  // simply verify.
  for (const ColumnInfo& c : plan->schema().columns()) {
    if (!pruned->schema().Contains(c.id)) {
      return Status::Internal("column pruning dropped root column " + c.name);
    }
  }
  return pruned;
}

}  // namespace fusiondb
