#include "optimizer/optimizer.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/plan_props.h"
#include "analysis/plan_verifier.h"
#include "analysis/semantic_ledger.h"
#include "analysis/semantic_verifier.h"
#include "cost/cost_model.h"
#include "obs/metrics.h"
#include "obs/optimizer_trace.h"
#include "optimizer/prune_columns.h"
#include "optimizer/rules.h"
#include "optimizer/spool_rule.h"
#include "plan/plan_printer.h"

namespace fusiondb {

namespace {

/// Set FUSIONDB_TRACE_OPTIMIZER=1 to log per-phase wall time to stderr.
bool TraceEnabled() {
  static bool enabled = std::getenv("FUSIONDB_TRACE_OPTIMIZER") != nullptr;
  return enabled;
}

class PhaseTimer {
 public:
  explicit PhaseTimer(const char* name)
      : name_(name), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    if (!TraceEnabled()) return;
    double ms = std::chrono::duration_cast<
                    std::chrono::duration<double, std::milli>>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    std::fprintf(stderr, "[optimizer] %-12s %8.1f ms\n", name_, ms);
  }

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

/// Rule activity accumulated across one Optimize() call and flushed to the
/// context's MetricsRegistry once, at scope exit (also on error paths, so
/// failure counters survive the early return). Local plain ints keep the
/// sweep hot path free of registry lookups.
struct OptCounters {
  MetricsRegistry* registry = nullptr;  // null: everything below is inert
  int64_t attempts = 0;
  int64_t firings = 0;
  int64_t verifier_failures = 0;
  int64_t semantic_failures = 0;
  std::vector<std::pair<std::string, int64_t>> per_rule;

  void AddFiring(std::string_view rule) {
    ++firings;
    for (auto& e : per_rule) {
      if (e.first == rule) {
        ++e.second;
        return;
      }
    }
    per_rule.emplace_back(rule, 1);
  }

  ~OptCounters() {
    if (registry == nullptr) return;
    MetricsRegistry* r = registry;
    r->Add(r->Counter("fusiondb_optimizer_runs_total"), 1);
    r->Add(r->Counter("fusiondb_optimizer_rule_attempts_total"), attempts);
    r->Add(r->Counter("fusiondb_optimizer_rule_firings_total"), firings);
    if (verifier_failures > 0) {
      r->Add(r->Counter("fusiondb_optimizer_verifier_failures_total"),
             verifier_failures);
    }
    if (semantic_failures > 0) {
      r->Add(r->Counter("fusiondb_optimizer_semantic_failures_total"),
             semantic_failures);
    }
    for (const auto& e : per_rule) {
      r->Add(r->Counter("fusiondb_optimizer_rule_firings_total{rule=\"" +
                        e.first + "\"}"),
             e.second);
    }
  }
};

/// One bottom-up sweep: children first, then every rule at this node to a
/// local fixpoint. `semantic` (nullable) is the semantic verification tier:
/// after each firing it discharges the obligations the rule recorded on the
/// context's ledger and re-checks the rewritten subtree's semantic
/// contracts (DESIGN.md §8).
Result<PlanPtr> SweepOnce(const PlanPtr& plan,
                          const std::vector<const Rule*>& rules,
                          PlanContext* ctx, SemanticVerifier* semantic,
                          OptCounters* counters, bool* changed) {
  std::vector<PlanPtr> children;
  children.reserve(plan->num_children());
  bool child_changed = false;
  for (const PlanPtr& c : plan->children()) {
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanPtr nc, SweepOnce(c, rules, ctx, semantic, counters, changed));
    child_changed |= (nc != c);
    children.push_back(std::move(nc));
  }
  PlanPtr current =
      child_changed ? plan->CloneWithChildren(std::move(children)) : plan;
  if (child_changed) *changed = true;

  OptimizerTrace* trace = ctx->trace();
  constexpr int kLocalFixpointCap = 64;
  for (int round = 0; round < kLocalFixpointCap; ++round) {
    bool round_changed = false;
    for (const Rule* rule : rules) {
      FUSIONDB_ASSIGN_OR_RETURN(PlanPtr next, rule->Apply(current, ctx));
      if (trace != nullptr) {
        trace->RecordRuleAttempt(rule->name(), next != current);
        if (next != current) {
          trace->RecordRuleFiring(rule->name(), *current, CountAllOps(current),
                                  CountAllOps(next));
        }
      }
      ++counters->attempts;
      if (next != current) {
        counters->AddFiring(rule->name());
        // An invalid rewrite is a bug in the rule: pinpoint it here, at the
        // first bad application, rather than as a downstream symptom.
        if (PlanVerificationEnabled()) {
          Status st = PlanVerifier::Verify(next);
          if (!st.ok()) {
            ++counters->verifier_failures;
            return Status::Internal(internal::StrCat(
                "rule '", rule->name(), "' produced an invalid plan: ",
                st.message()));
          }
        }
        if (semantic != nullptr) {
          // Translation validation: re-prove the facts the rule claimed
          // (ledger obligations), then re-check the rewritten subtree's own
          // semantic contracts (pruning monotonicity/implication, single-row
          // feasibility). Only the touched subtree is walked; unchanged
          // subtrees hit the verifier's memo.
          Status st = semantic->CheckObligations(ctx->semantics(),
                                                 rule->name());
          if (st.ok()) st = semantic->Verify(next, rule->name());
          if (!st.ok()) {
            ++counters->semantic_failures;
            return Status::Internal(internal::StrCat(
                "rule '", rule->name(), "' violated a semantic invariant: ",
                st.message()));
          }
          if (trace != nullptr) {
            trace->AnnotateLastFiring(
                PropsToString(semantic->props().Derive(next)));
          }
        }
        current = std::move(next);
        round_changed = true;
        *changed = true;
      }
    }
    if (!round_changed) break;
  }
  return current;
}

/// Repeated sweeps to a global fixpoint (rewrites can open opportunities in
/// subtrees a sweep already passed, e.g. UnionAllOnJoin's recursive
/// re-application in Q23).
Result<PlanPtr> RunPhase(const PlanPtr& plan,
                         const std::vector<const Rule*>& rules,
                         PlanContext* ctx, SemanticVerifier* semantic,
                         OptCounters* counters) {
  if (rules.empty()) return plan;
  PlanPtr current = plan;
  constexpr int kGlobalFixpointCap = 48;
  for (int pass = 0; pass < kGlobalFixpointCap; ++pass) {
    bool changed = false;
    FUSIONDB_ASSIGN_OR_RETURN(
        current,
        SweepOnce(current, rules, ctx, semantic, counters, &changed));
    if (TraceEnabled()) {
      std::fprintf(stderr, "[optimizer]   pass %d: %d ops%s\n", pass,
                   CountAllOps(current), changed ? "" : " (fixpoint)");
    }
    if (!changed) return current;
  }
  return Status::Internal("optimizer phase did not reach a fixpoint");
}

/// Uninstalls an optimizer-owned ledger from the context on every return
/// path; a caller-provided ledger (src/server) is left untouched.
struct LedgerGuard {
  PlanContext* ctx;
  bool installed;
  ~LedgerGuard() {
    if (installed) ctx->set_semantics(nullptr);
  }
};

}  // namespace

Result<PlanPtr> Optimizer::Optimize(const PlanPtr& plan,
                                    PlanContext* ctx) const {
  static const SimplifyExpressionsRule simplify;
  static const MergeFiltersRule merge_filters;
  static const MergeProjectsRule merge_projects;
  static const PushFilterIntoScanRule push_into_scan;
  static const FilterPushdownRule filter_pushdown;
  static const DecorrelateScalarAggRule decorrelate;
  static const DistinctAggToMarkDistinctRule lower_distinct;
  static const SemiJoinToDistinctJoinRule semi_to_distinct;
  static const PushDistinctBelowJoinRule push_distinct;
  static const GroupByJoinToWindowRule to_window;
  static const JoinOnKeysRule join_on_keys;
  static const UnionAllOnJoinRule union_on_join;
  static const UnionAllFuseRule union_fuse;

  // Catch plan-construction bugs (plan_builder, hand-built plans) before
  // any rule runs: rule applications are only verified incrementally, so a
  // pre-existing violation would otherwise be misattributed to a rule.
  FUSIONDB_RETURN_IF_ERROR(VerifyPlanIfEnabled(plan, "initial plan"));

  PlanPtr current = plan;
  OptimizerTrace* obs_trace = ctx->trace();
  // Flushes to the context's registry at scope exit, error paths included.
  OptCounters counters;
  counters.registry = ctx->metrics();

  // Semantic tier (DESIGN.md §8): active when the runtime flag is on or
  // when a caller attached a ledger explicitly (tests, src/server). Rules
  // record obligations through ctx->semantics(); if no ledger is attached
  // yet, install a local one for the duration of this call.
  SemanticLedger local_ledger;
  std::unique_ptr<SemanticVerifier> semantic_holder;
  LedgerGuard ledger_guard{ctx, false};
  if (SemanticVerificationEnabled() || ctx->semantics() != nullptr) {
    semantic_holder = std::make_unique<SemanticVerifier>();
    if (ctx->semantics() == nullptr) {
      ctx->set_semantics(&local_ledger);
      ledger_guard.installed = true;
    }
    FUSIONDB_RETURN_IF_ERROR(
        semantic_holder->Verify(current, "initial plan"));
  }
  SemanticVerifier* semantic = semantic_holder.get();

  // 1. Normalize.
  {
    if (obs_trace != nullptr) obs_trace->BeginPhase("normalize");
    PhaseTimer timer("normalize");
    std::vector<const Rule*> rules{&simplify, &merge_filters, &merge_projects};
    FUSIONDB_ASSIGN_OR_RETURN(current, RunPhase(current, rules, ctx, semantic, &counters));
  }

  // 2. Decorrelate (always-on substrate; Apply cannot execute).
  if (options_.enable_decorrelation) {
    if (obs_trace != nullptr) obs_trace->BeginPhase("decorrelate");
    PhaseTimer timer("decorrelate");
    std::vector<const Rule*> rules{&decorrelate, &merge_filters};
    FUSIONDB_ASSIGN_OR_RETURN(current, RunPhase(current, rules, ctx, semantic, &counters));
  }

  // 3. Lower DISTINCT aggregates onto MarkDistinct.
  if (options_.enable_distinct_lowering) {
    if (obs_trace != nullptr) obs_trace->BeginPhase("lower");
    PhaseTimer timer("lower");
    std::vector<const Rule*> rules{&lower_distinct};
    FUSIONDB_ASSIGN_OR_RETURN(current, RunPhase(current, rules, ctx, semantic, &counters));
  }

  // 4. Fusion rules (Section IV).
  {
    std::vector<const Rule*> rules;
    if (options_.enable_group_by_join_to_window) rules.push_back(&to_window);
    if (options_.enable_join_on_keys) rules.push_back(&join_on_keys);
    if (options_.enable_union_all_on_join) rules.push_back(&union_on_join);
    if (options_.enable_union_all_fuse) rules.push_back(&union_fuse);
    if (!rules.empty()) {
      if (obs_trace != nullptr) obs_trace->BeginPhase("fuse");
      PhaseTimer timer("fuse");
      rules.push_back(&simplify);
      FUSIONDB_ASSIGN_OR_RETURN(current, RunPhase(current, rules, ctx, semantic, &counters));
    }
  }

  // 5. Distinct/semi-join interplay (the Q95 pipeline, Section V.D).
  if (options_.enable_semijoin_rewrites) {
    if (obs_trace != nullptr) obs_trace->BeginPhase("distinct");
    PhaseTimer timer("distinct");
    std::vector<const Rule*> rules{&semi_to_distinct, &push_distinct,
                                   &merge_projects};
    FUSIONDB_ASSIGN_OR_RETURN(current, RunPhase(current, rules, ctx, semantic, &counters));
  }

  // 6. Fusion again: phase 5 exposes new JoinOnKeys opportunities.
  if (options_.enable_join_on_keys) {
    if (obs_trace != nullptr) obs_trace->BeginPhase("fuse2");
    PhaseTimer timer("fuse2");
    std::vector<const Rule*> rules{&join_on_keys, &simplify};
    FUSIONDB_ASSIGN_OR_RETURN(current, RunPhase(current, rules, ctx, semantic, &counters));
  }

  // 7. Cleanup: simplify, push filters toward (and into) scans, prune.
  {
    if (obs_trace != nullptr) obs_trace->BeginPhase("cleanup");
    PhaseTimer timer("cleanup");
    std::vector<const Rule*> rules{&simplify, &merge_filters, &merge_projects,
                                   &filter_pushdown, &push_into_scan};
    FUSIONDB_ASSIGN_OR_RETURN(current, RunPhase(current, rules, ctx, semantic, &counters));
  }
  if (options_.enable_column_pruning) {
    if (obs_trace != nullptr) obs_trace->BeginPhase("prune");
    PhaseTimer timer("prune");
    int ops_before = obs_trace != nullptr ? CountAllOps(current) : 0;
    PlanPtr pre_prune = current;
    FUSIONDB_ASSIGN_OR_RETURN(current, PruneColumns(current));
    if (obs_trace != nullptr) {
      bool fired = current != pre_prune;
      obs_trace->RecordRuleAttempt("PruneColumns", fired);
      if (fired) {
        obs_trace->RecordRuleFiring("PruneColumns", *pre_prune, ops_before,
                                    CountAllOps(current));
      }
    }
    ++counters.attempts;
    if (current != pre_prune) counters.AddFiring("PruneColumns");
    FUSIONDB_RETURN_IF_ERROR(VerifyPlanIfEnabled(current, "column pruning"));
    if (semantic != nullptr) {
      FUSIONDB_RETURN_IF_ERROR(semantic->Verify(current, "column pruning"));
    }
  }

  // 8. Spooling (off by default): share duplicated subtrees through
  // materialization. Runs last so later rewrites cannot diverge the two
  // consumers of a shared spool child. kAdaptive prices each candidate —
  // materialize once versus re-execute per consumer — against cardinality
  // estimates overlaid with measured feedback from earlier runs.
  if (options_.spool_mode != SpoolMode::kOff) {
    if (obs_trace != nullptr) obs_trace->BeginPhase("spool");
    PhaseTimer timer("spool");
    int ops_before = obs_trace != nullptr ? CountAllOps(current) : 0;
    PlanPtr pre_spool = current;
    CardinalityEstimator estimator(options_.feedback);
    CostModel cost_model(&estimator);
    const CostModel* model =
        options_.spool_mode == SpoolMode::kAdaptive ? &cost_model : nullptr;
    FUSIONDB_ASSIGN_OR_RETURN(current,
                              SpoolCommonSubexpressions(current, ctx, model));
    if (obs_trace != nullptr) {
      bool fired = current != pre_spool;
      obs_trace->RecordRuleAttempt("SpoolCommonSubexpressions", fired);
      if (fired) {
        obs_trace->RecordRuleFiring("SpoolCommonSubexpressions", *pre_spool,
                                    ops_before, CountAllOps(current));
      }
    }
    ++counters.attempts;
    if (current != pre_spool) counters.AddFiring("SpoolCommonSubexpressions");
    FUSIONDB_RETURN_IF_ERROR(VerifyPlanIfEnabled(current, "spooling"));
    if (semantic != nullptr) {
      FUSIONDB_RETURN_IF_ERROR(semantic->Verify(current, "spooling"));
    }
  }

  // Schema stability contract: rewrites may leave superset schemas behind
  // (RestoreSchema avoids interposing projections that would block join
  // flattening), so enforce the exact original output here.
  bool exact = current->schema().num_columns() == plan->schema().num_columns();
  for (size_t i = 0; exact && i < plan->schema().num_columns(); ++i) {
    exact = current->schema().column(i).id == plan->schema().column(i).id;
  }
  if (!exact) {
    std::vector<NamedExpr> narrow;
    narrow.reserve(plan->schema().num_columns());
    for (const ColumnInfo& c : plan->schema().columns()) {
      int idx = current->schema().IndexOf(c.id);
      if (idx < 0) {
        return Status::Internal("optimizer dropped output column " + c.name);
      }
      narrow.push_back({c.id, c.name, Expr::MakeColumnRef(c.id, c.type)});
    }
    current = std::make_shared<ProjectOp>(current, std::move(narrow));
  }
  // Final gate before the plan is handed to the executor: also covers the
  // schema-narrowing projection built just above.
  FUSIONDB_RETURN_IF_ERROR(VerifyPlanIfEnabled(current, "optimized plan"));
  if (semantic != nullptr) {
    // Full-plan re-verification with fresh context: rules verify subtrees
    // incrementally, but filter/scan relationships crossing rewrite
    // boundaries (e.g. a pruning filter whose enforcing Filter was merged
    // away two phases later) only show at the root.
    Status st = semantic->CheckObligations(ctx->semantics(), "optimized plan");
    if (st.ok()) st = semantic->Verify(current, "optimized plan");
    FUSIONDB_RETURN_IF_ERROR(st);
    if (obs_trace != nullptr) {
      obs_trace->RecordSemanticChecks(semantic->plans_verified(),
                                      semantic->props().nodes_derived(),
                                      semantic->obligations_checked());
    }
  }
  return current;
}

}  // namespace fusiondb
