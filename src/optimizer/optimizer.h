// The optimizer pipeline. Phases (matching the paper's Section IV.E note
// that fusion rules run early, before join-order decisions, and compose
// with pre-existing rules):
//   1. normalize      — simplification, filter/project normalization
//   2. decorrelate    — Apply -> Join + GroupBy ([20])
//   3. lower          — DISTINCT aggregates onto MarkDistinct (III.F)
//   4. fuse           — Section IV rules (toggleable, for A/B benchmarks)
//   5. distinct       — semi-join -> distinct-join, distinct pushdown (V.D)
//   6. fuse again     — rules enabled by phase 5 (Q95's JoinOnKeys)
//   7. cleanup        — simplify, pushdown, partition pruning, column pruning
//
// The baseline configuration used in benchmarks disables only phase 4/6
// fusion rules; every substrate phase runs in both configurations.
#ifndef FUSIONDB_OPTIMIZER_OPTIMIZER_H_
#define FUSIONDB_OPTIMIZER_OPTIMIZER_H_

#include "common/status.h"
#include "plan/logical_plan.h"

namespace fusiondb {

class StatsFeedback;  // cost/stats_feedback.h

/// How the optimizer treats duplicated subtrees (phase 8).
enum class SpoolMode : uint8_t {
  kOff,       // leave duplicates in place (re-execute per consumer)
  kAlways,    // spool every shareable duplicate (the static alternative)
  kAdaptive,  // price each candidate with the cost model; spool only when
              // materialization is estimated cheaper than re-execution
};

struct OptimizerOptions {
  // Section IV rules (the paper's contribution), individually toggleable so
  // the rule-ablation benchmark can isolate each one.
  bool enable_group_by_join_to_window = true;
  bool enable_join_on_keys = true;
  bool enable_union_all_on_join = true;
  bool enable_union_all_fuse = true;

  // Substrate switches (identical in the baseline and optimized
  // configurations; exposed for targeted tests and ablations).
  bool enable_decorrelation = true;
  // Lowering DISTINCT aggregates onto MarkDistinct (Section III.F) is what
  // Athena does; FusionDB's executor also evaluates masked DISTINCT
  // aggregates natively, and in this in-memory substrate chained
  // MarkDistinct passes are CPU-bound (in Athena they pipeline against S3
  // I/O), so the native path is the default. The lowering and MarkDistinct
  // fusion remain fully implemented, tested, and measurable by flipping
  // this flag (see bench/rule_ablation).
  bool enable_distinct_lowering = false;
  bool enable_semijoin_rewrites = true;
  bool enable_column_pruning = true;
  // Materialize duplicated subtrees once via spool buffers — the general
  // common-subexpression strategy the paper compares fusion against
  // (kAlways is normally used with the fusion rules off; see
  // bench/spool_vs_fusion). kAdaptive keeps the fusion rules on and asks
  // the cost model per candidate whether the duplicates fusion left behind
  // are worth materializing (DESIGN.md §11).
  SpoolMode spool_mode = SpoolMode::kOff;
  // Measured per-fingerprint cardinalities overlaid on the catalog-based
  // estimates in kAdaptive mode. Not owned; may be null (priors only);
  // must outlive the Optimizer.
  const StatsFeedback* feedback = nullptr;

  /// All Section IV rules off — the paper's baseline.
  static OptimizerOptions Baseline() {
    OptimizerOptions o;
    o.enable_group_by_join_to_window = false;
    o.enable_join_on_keys = false;
    o.enable_union_all_on_join = false;
    o.enable_union_all_fuse = false;
    return o;
  }

  /// Everything on — the paper's instrumented configuration.
  static OptimizerOptions Fused() { return OptimizerOptions(); }

  /// Fusion rules off, spooling on: the materialization alternative.
  static OptimizerOptions Spooling() {
    OptimizerOptions o = Baseline();
    o.spool_mode = SpoolMode::kAlways;
    return o;
  }

  /// Fusion rules on, plus cost-model-driven spooling of the duplicates
  /// fusion leaves behind. `feedback` (nullable) supplies measured
  /// cardinalities from earlier runs.
  static OptimizerOptions Adaptive(const StatsFeedback* feedback) {
    OptimizerOptions o;
    o.spool_mode = SpoolMode::kAdaptive;
    o.feedback = feedback;
    return o;
  }
};

class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options = OptimizerOptions())
      : options_(options) {}

  /// Optimizes `plan`. The result preserves the root output columns (same
  /// ids, names and types).
  Result<PlanPtr> Optimize(const PlanPtr& plan, PlanContext* ctx) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  OptimizerOptions options_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_OPTIMIZER_OPTIMIZER_H_
