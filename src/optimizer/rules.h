// The rule catalog.
//
// Substrate rules (pre-existing engine machinery the paper builds on):
//   SimplifyExpressionsRule, MergeFiltersRule, MergeProjectsRule,
//   PushFilterIntoScanRule, FilterPushdownRule,
//   DecorrelateScalarAggRule        ([20]-style decorrelation; enables Q01)
//   DistinctAggToMarkDistinctRule   (III.F lowering of distinct aggregates)
//   SemiJoinToDistinctJoinRule      (semi-join -> join over distinct)
//   PushDistinctBelowJoinRule       (distinct pushed below a key-aligned join)
//
// Fusion rules (Section IV — the paper's contribution):
//   GroupByJoinToWindowRule  (IV.A)
//   JoinOnKeysRule           (IV.B, incl. scalar-aggregate cross-join form)
//   UnionAllOnJoinRule       (IV.C)
//   UnionAllFuseRule         (IV.D)
#ifndef FUSIONDB_OPTIMIZER_RULES_H_
#define FUSIONDB_OPTIMIZER_RULES_H_

#include "optimizer/rule.h"

namespace fusiondb {

/// Simplifies every expression held by the node (predicates, projections,
/// join conditions, aggregate masks).
class SimplifyExpressionsRule final : public Rule {
 public:
  std::string_view name() const override { return "SimplifyExpressions"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Filter(Filter(x)) => Filter(x) with the conjunction; drops TRUE filters.
class MergeFiltersRule final : public Rule {
 public:
  std::string_view name() const override { return "MergeFilters"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Project(Project(x)) => Project(x) by inlining the inner assignments.
class MergeProjectsRule final : public Rule {
 public:
  std::string_view name() const override { return "MergeProjects"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Filter over Scan: hand the predicate to the scan for partition pruning
/// (the filter stays; the scan only uses it to skip partitions).
class PushFilterIntoScanRule final : public Rule {
 public:
  std::string_view name() const override { return "PushFilterIntoScan"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Pushes filter conjuncts through projections and into inner-join sides.
class FilterPushdownRule final : public Rule {
 public:
  std::string_view name() const override { return "FilterPushdown"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Apply(outer, scalar-agg subquery, correlation) =>
/// Join(outer, GroupBy_{correlated cols}(subquery input)).
/// Sound here because the correlated scalar aggregate is only consumed by
/// NULL-rejecting comparisons (the Q01/Q30 pattern; see the rule's comment).
class DecorrelateScalarAggRule final : public Rule {
 public:
  std::string_view name() const override { return "DecorrelateScalarAgg"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Lowers DISTINCT aggregates onto MarkDistinct + masks (Section III.F).
class DistinctAggToMarkDistinctRule final : public Rule {
 public:
  std::string_view name() const override { return "DistinctAggToMarkDistinct"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// SemiJoin(L, R, l=r) => Join(L, GroupBy_{r}(R), l=r) — the first step of
/// the paper's Q95 pipeline (Section V.D).
class SemiJoinToDistinctJoinRule final : public Rule {
 public:
  std::string_view name() const override { return "SemiJoinToDistinctJoin"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// GroupBy_{b}(Join(A, B, a=b)) with no aggregates =>
/// Join(GroupBy_{a}(A), GroupBy_{b}(B), a=b) — the "push a distinct below a
/// join whenever the distinct and join columns agree" rule of Section V.D.
class PushDistinctBelowJoinRule final : public Rule {
 public:
  std::string_view name() const override { return "PushDistinctBelowJoin"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Section IV.A: P1 join GroupBy(P2) on the grouping keys, with exact
/// fusion of P1 and P2, becomes a windowed aggregation over the fused plan.
/// Handles n-ary joins (inputs separated by other tables) per IV.E.
class GroupByJoinToWindowRule final : public Rule {
 public:
  std::string_view name() const override { return "GroupByJoinToWindow"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Section IV.B: self-joins on keys of both sides collapse onto the fused
/// plan. Implemented for the cases Athena can guarantee keys for:
/// GroupBy-GroupBy pairs (grouping columns are keys) including the scalar
/// aggregate / cross-join specialization. Handles n-ary joins per IV.E.
class JoinOnKeysRule final : public Rule {
 public:
  std::string_view name() const override { return "JoinOnKeys"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Section IV.C: UnionAll of two (semi-)joins against fusable right sides
/// pushes the union below the join, tagging branches.
class UnionAllOnJoinRule final : public Rule {
 public:
  std::string_view name() const override { return "UnionAllOnJoin"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Section IV.D: UnionAll over fusable branches becomes a cross join of the
/// fused plan with a constant tag table (or, when the compensating filters
/// are contradictory, a CASE projection with no tag table).
class UnionAllFuseRule final : public Rule {
 public:
  std::string_view name() const override { return "UnionAllFuse"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

}  // namespace fusiondb

#endif  // FUSIONDB_OPTIMIZER_RULES_H_
