// The rule catalog.
//
// Substrate rules (pre-existing engine machinery the paper builds on):
//   SimplifyExpressionsRule, MergeFiltersRule, MergeProjectsRule,
//   PushFilterIntoScanRule, FilterPushdownRule,
//   DecorrelateScalarAggRule        ([20]-style decorrelation; enables Q01)
//   DistinctAggToMarkDistinctRule   (III.F lowering of distinct aggregates)
//   SemiJoinToDistinctJoinRule      (semi-join -> join over distinct)
//   PushDistinctBelowJoinRule       (distinct pushed below a key-aligned join)
//
// Fusion rules (Section IV — the paper's contribution):
//   GroupByJoinToWindowRule  (IV.A)
//   JoinOnKeysRule           (IV.B, incl. scalar-aggregate cross-join form)
//   UnionAllOnJoinRule       (IV.C)
//   UnionAllFuseRule         (IV.D)
#ifndef FUSIONDB_OPTIMIZER_RULES_H_
#define FUSIONDB_OPTIMIZER_RULES_H_

#include "optimizer/rule.h"

namespace fusiondb {

/// Simplifies every expression held by the node (predicates, projections,
/// join conditions, aggregate masks). Substrate: the paper assumes a
/// normalizing engine below the Section IV rules.
///   before: σ_{x=1 AND TRUE AND x=1}(C)
///   after:  σ_{x=1}(C)
class SimplifyExpressionsRule final : public Rule {
 public:
  std::string_view name() const override { return "SimplifyExpressions"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Filter(Filter(x)) => Filter(x) with the conjunction; drops TRUE filters.
///   before: σ_p(σ_q(C))
///   after:  σ_{p∧q}(C)
class MergeFiltersRule final : public Rule {
 public:
  std::string_view name() const override { return "MergeFilters"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Project(Project(x)) => Project(x) by inlining the inner assignments.
///   before: π_{a:=f(b)}(π_{b:=g(c)}(C))
///   after:  π_{a:=f(g(c))}(C)
class MergeProjectsRule final : public Rule {
 public:
  std::string_view name() const override { return "MergeProjects"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Filter over Scan: hand the predicate to the scan for partition pruning
/// (the filter stays; the scan only uses it to skip partitions).
///   before: σ_{date BETWEEN ...}(Scan_T)
///   after:  σ_{date BETWEEN ...}(Scan_T[prune: date BETWEEN ...])
class PushFilterIntoScanRule final : public Rule {
 public:
  std::string_view name() const override { return "PushFilterIntoScan"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Pushes filter conjuncts through projections and into inner-join sides.
///   before: σ_{p(A) ∧ q(B)}(A ⋈ B)
///   after:  σ_p(A) ⋈ σ_q(B)
class FilterPushdownRule final : public Rule {
 public:
  std::string_view name() const override { return "FilterPushdown"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Apply(outer, scalar-agg subquery, correlation) =>
/// Join(outer, GroupBy_{correlated cols}(subquery input)).
/// Sound here because the correlated scalar aggregate is only consumed by
/// NULL-rejecting comparisons (the Q01/Q30 pattern; see the rule's comment).
/// Substrate: the [20]-style decorrelation the paper runs before fusion.
///   before: Apply(O, γ[](σ_{k=O.k}(S)))
///   after:  O ⋈_{O.k=k} γ_{k}[aggs](S)
class DecorrelateScalarAggRule final : public Rule {
 public:
  std::string_view name() const override { return "DecorrelateScalarAgg"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Lowers DISTINCT aggregates onto MarkDistinct + masks (Section III.F).
///   before: γ_{g}[COUNT(DISTINCT x)](C)
///   after:  γ_{g}[COUNT(x) @mask=m](MD_{g,x}→m(C))
class DistinctAggToMarkDistinctRule final : public Rule {
 public:
  std::string_view name() const override { return "DistinctAggToMarkDistinct"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// SemiJoin(L, R, l=r) => Join(L, GroupBy_{r}(R), l=r) — the first step of
/// the paper's Q95 pipeline (Section V.D).
///   before: L ⋉_{l=r} R
///   after:  L ⋈_{l=r} γ_{r}[](R)
class SemiJoinToDistinctJoinRule final : public Rule {
 public:
  std::string_view name() const override { return "SemiJoinToDistinctJoin"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// GroupBy_{b}(Join(A, B, a=b)) with no aggregates =>
/// Join(GroupBy_{a}(A), GroupBy_{b}(B), a=b) — the "push a distinct below a
/// join whenever the distinct and join columns agree" rule of Section V.D.
///   before: γ_{a,b}[](A ⋈_{a=b} B)
///   after:  γ_{a}[](A) ⋈_{a=b} γ_{b}[](B)
class PushDistinctBelowJoinRule final : public Rule {
 public:
  std::string_view name() const override { return "PushDistinctBelowJoin"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Section IV.A: P1 join GroupBy(P2) on the grouping keys, with exact
/// fusion of P1 and P2, becomes a windowed aggregation over the fused plan
/// — one scan instead of two, aggregates broadcast to member rows.
/// Handles n-ary joins (inputs separated by other tables) per IV.E.
///   before: P1 ⋈_{k=g} γ_{g}[aggs](P2)      with Fuse(P1,P2) exact
///   after:  σ_{agg IS NOT NULL}(Window_{partition k}[aggs](P))
class GroupByJoinToWindowRule final : public Rule {
 public:
  std::string_view name() const override { return "GroupByJoinToWindow"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Section IV.B: self-joins on keys of both sides collapse onto the fused
/// plan. Implemented for the cases Athena can guarantee keys for:
/// GroupBy-GroupBy pairs (grouping columns are keys) including the scalar
/// aggregate / cross-join specialization (Q09/Q28/Q88: fifteen scalar
/// aggregates over one scan). Handles n-ary joins per IV.E.
///   before: γ_{k}[a1](P1) ⋈_{k=k'} γ_{k'}[a2](P2)
///   after:  γ_{k}[a1@L, a2@R](P)             (join gone; masks compensate)
///   scalar: γ[a1](P1) × γ[a2](P2)  =>  γ[a1@L, a2@R](P)
class JoinOnKeysRule final : public Rule {
 public:
  std::string_view name() const override { return "JoinOnKeys"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Section IV.C: UnionAll of two (semi-)joins against fusable right sides
/// pushes the union below the join, tagging branches so the shared right
/// side is built (and scanned) once — the Q23 rewrite.
///   before: (A ⋉ Z1) ∪ (B ⋉ Z2)             with Fuse(Z1,Z2) defined
///   after:  (A+tag1 ∪ B+tag2) ⋉_{cond∧tag-filter} Z
class UnionAllOnJoinRule final : public Rule {
 public:
  std::string_view name() const override { return "UnionAllOnJoin"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

/// Section IV.D: UnionAll over fusable branches becomes a cross join of the
/// fused plan with a constant tag table (or, when the compensating filters
/// are contradictory, a CASE projection with no tag table).
///   before: P1 ∪ P2                          with Fuse(P1,P2) defined
///   after:  π_{CASE tag...}(σ_{(tag=1∧L)∨(tag=2∧R)}(P × Values[(1),(2)]))
///   L∧R≡⊥:  π_{CASE L...}(P)                 (no tag table needed)
class UnionAllFuseRule final : public Rule {
 public:
  std::string_view name() const override { return "UnionAllFuse"; }
  Result<PlanPtr> Apply(const PlanPtr& plan, PlanContext* ctx) const override;
};

}  // namespace fusiondb

#endif  // FUSIONDB_OPTIMIZER_RULES_H_
