#include "optimizer/rewrite_utils.h"

#include <algorithm>

namespace fusiondb {

namespace {

bool IsInnerOrCross(const PlanPtr& plan) {
  if (plan->kind() != OpKind::kJoin) return false;
  JoinType t = Cast<JoinOp>(*plan).join_type();
  return t == JoinType::kInner || t == JoinType::kCross;
}

void FlattenInto(const PlanPtr& plan, NaryJoin* out) {
  if (IsInnerOrCross(plan)) {
    const auto& join = Cast<JoinOp>(*plan);
    FlattenInto(join.left(), out);
    FlattenInto(join.right(), out);
    SplitConjuncts(join.condition(), &out->conjuncts);
    return;
  }
  out->inputs.push_back(plan);
}

/// True when every column referenced by `e` is in `schema`.
bool CoveredBy(const ExprPtr& e, const Schema& schema) {
  std::vector<ColumnId> cols;
  CollectColumns(e, &cols);
  for (ColumnId c : cols) {
    if (!schema.Contains(c)) return false;
  }
  return true;
}

/// x = x (same fingerprint on both sides of an equality).
bool IsTrivialSelfEquality(const ExprPtr& e) {
  return e->kind() == ExprKind::kCompare &&
         e->compare_op() == CompareOp::kEq &&
         ExprFingerprint(e->child(0)) == ExprFingerprint(e->child(1));
}

}  // namespace

bool FlattenJoin(const PlanPtr& plan, NaryJoin* out) {
  if (!IsInnerOrCross(plan)) return false;
  FlattenInto(plan, out);
  return true;
}

EqualityClasses::EqualityClasses(const std::vector<ExprPtr>& conjuncts) {
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != ExprKind::kCompare ||
        c->compare_op() != CompareOp::kEq ||
        c->child(0)->kind() != ExprKind::kColumnRef ||
        c->child(1)->kind() != ExprKind::kColumnRef) {
      continue;
    }
    ColumnId a = Find(c->child(0)->column_id());
    ColumnId b = Find(c->child(1)->column_id());
    if (a != b) parent_[a] = b;
  }
}

ColumnId EqualityClasses::Find(ColumnId x) const {
  auto it = parent_.find(x);
  if (it == parent_.end()) return x;
  ColumnId root = Find(it->second);
  parent_[x] = root;
  return root;
}

bool EqualityClasses::Same(ColumnId a, ColumnId b) const {
  return Find(a) == Find(b);
}

std::vector<ExprPtr> RemapConjuncts(const std::vector<ExprPtr>& conjuncts,
                                    const ColumnMap& map) {
  std::vector<ExprPtr> out;
  out.reserve(conjuncts.size());
  for (const ExprPtr& c : conjuncts) {
    ExprPtr mapped = ApplyMap(map, c);
    if (IsTrivialSelfEquality(mapped)) continue;
    out.push_back(std::move(mapped));
  }
  return out;
}

Result<PlanPtr> RebuildJoin(const NaryJoin& nary) {
  if (nary.inputs.empty()) {
    return Status::Internal("n-ary join rebuild with no inputs");
  }
  std::vector<ExprPtr> pending = nary.conjuncts;

  // Attach single-input conjuncts as filters directly on their input.
  std::vector<PlanPtr> inputs = nary.inputs;
  for (PlanPtr& input : inputs) {
    std::vector<ExprPtr> mine;
    std::vector<ExprPtr> rest;
    for (const ExprPtr& c : pending) {
      if (CoveredBy(c, input->schema())) {
        mine.push_back(c);
      } else {
        rest.push_back(c);
      }
    }
    if (!mine.empty()) {
      input = std::make_shared<FilterOp>(input, CombineConjuncts(mine));
      pending = std::move(rest);
    }
  }

  PlanPtr current = inputs[0];
  for (size_t i = 1; i < inputs.size(); ++i) {
    // Collect conjuncts resolvable once `inputs[i]` joins the scope.
    std::vector<ColumnInfo> combined = current->schema().columns();
    for (const ColumnInfo& c : inputs[i]->schema().columns()) {
      combined.push_back(c);
    }
    Schema scope{combined};
    std::vector<ExprPtr> here;
    std::vector<ExprPtr> rest;
    for (const ExprPtr& c : pending) {
      if (CoveredBy(c, scope)) {
        here.push_back(c);
      } else {
        rest.push_back(c);
      }
    }
    pending = std::move(rest);
    if (here.empty()) {
      current = std::make_shared<JoinOp>(
          JoinType::kCross, current, inputs[i],
          Expr::MakeLiteral(Value::Bool(true)));
    } else {
      current = std::make_shared<JoinOp>(JoinType::kInner, current, inputs[i],
                                         CombineConjuncts(here));
    }
  }
  if (!pending.empty()) {
    return Status::Internal(
        "n-ary join rebuild left unplaced conjuncts (dangling column refs)");
  }
  return current;
}

Result<PlanPtr> RestoreSchema(const PlanPtr& plan, const Schema& original,
                              const ColumnMap& map) {
  bool identity = true;
  std::vector<NamedExpr> exprs;
  exprs.reserve(original.num_columns());
  for (const ColumnInfo& c : original.columns()) {
    ColumnId source = ApplyMap(map, c.id);
    int idx = plan->schema().IndexOf(source);
    if (idx < 0) {
      return Status::Internal("schema restoration: column #" +
                              std::to_string(source) + " missing");
    }
    if (source != c.id) identity = false;
    exprs.push_back({c.id, c.name,
                     Expr::MakeColumnRef(source, plan->schema().column(idx).type)});
  }
  // A superset schema with untouched ids needs no projection: parents
  // reference columns by id, and column pruning trims extras later. This
  // also keeps join trees flattenable for the n-ary fusion rules.
  if (identity) {
    return plan;
  }
  return std::static_pointer_cast<const LogicalOp>(
      std::make_shared<ProjectOp>(plan, std::move(exprs)));
}

}  // namespace fusiondb
