// SpoolCommonSubexpressions: the materialization-based alternative the
// paper compares fusion against. Pairs of *identical* (exactly fusable)
// subtrees are replaced by a shared, spooled instance; the second consumer
// reads the spool through a renaming projection.
//
// Scope mirrors what a production spooler would attempt: only non-trivial
// subtrees (more than a bare scan) and only when fusion is exact — spooling
// cannot compensate differing results, that is fusion's job. Instances are
// paired greedily, which covers the benchmark's duplicated CTEs.
#ifndef FUSIONDB_OPTIMIZER_SPOOL_RULE_H_
#define FUSIONDB_OPTIMIZER_SPOOL_RULE_H_

#include "common/status.h"
#include "plan/logical_plan.h"

namespace fusiondb {

class CostModel;  // cost/cost_model.h

/// Rewrites duplicated subtrees of `plan` onto shared spools. Returns the
/// input unchanged when nothing qualifies.
///
/// With a null `cost_model` every shareable duplicate is spooled (the
/// static kAlways policy). With a model (SpoolMode::kAdaptive) each
/// candidate is priced — materialize once vs re-execute per consumer — and
/// only candidates the model deems cheaper to spool are rewritten; every
/// pricing is recorded in the PlanContext's OptimizerTrace when attached.
Result<PlanPtr> SpoolCommonSubexpressions(const PlanPtr& plan,
                                          PlanContext* ctx,
                                          const CostModel* cost_model = nullptr);

}  // namespace fusiondb

#endif  // FUSIONDB_OPTIMIZER_SPOOL_RULE_H_
