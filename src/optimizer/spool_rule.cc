#include "optimizer/spool_rule.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "fusion/fuse.h"
#include "obs/metrics.h"
#include "obs/optimizer_trace.h"
#include "plan/plan_fingerprint.h"
#include "plan/plan_printer.h"
#include "plan/spool.h"

namespace fusiondb {

namespace {

/// Signature used to pre-filter candidate pairs: operator census plus the
/// multiset of scanned tables. Only equal signatures are worth a Fuse call.
std::string Signature(const PlanPtr& plan) {
  std::string sig;
  std::vector<std::string> tables;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& p) {
    sig += static_cast<char>('A' + static_cast<int>(p->kind()));
    if (p->kind() == OpKind::kScan) {
      tables.push_back(Cast<ScanOp>(*p).table()->name());
    }
    for (const PlanPtr& c : p->children()) walk(c);
  };
  walk(plan);
  std::sort(tables.begin(), tables.end());
  for (const std::string& t : tables) {
    sig += '|';
    sig += t;
  }
  return sig;
}

/// All nodes of the tree in pre-order.
void CollectNodes(const PlanPtr& plan, std::vector<PlanPtr>* out) {
  out->push_back(plan);
  for (const PlanPtr& c : plan->children()) CollectNodes(c, out);
}

bool Contains(const PlanPtr& haystack, const LogicalOp* needle) {
  if (haystack.get() == needle) return true;
  for (const PlanPtr& c : haystack->children()) {
    if (Contains(c, needle)) return true;
  }
  return false;
}

/// Rebuilds `plan` with the given node-pointer substitutions applied.
PlanPtr ReplaceSubtrees(const PlanPtr& plan,
                        const std::map<const LogicalOp*, PlanPtr>& repl) {
  auto it = repl.find(plan.get());
  if (it != repl.end()) return it->second;
  bool changed = false;
  std::vector<PlanPtr> children;
  children.reserve(plan->num_children());
  for (const PlanPtr& c : plan->children()) {
    PlanPtr nc = ReplaceSubtrees(c, repl);
    changed |= (nc != c);
    children.push_back(std::move(nc));
  }
  if (!changed) return plan;
  return plan->CloneWithChildren(std::move(children));
}

}  // namespace

Result<PlanPtr> SpoolCommonSubexpressions(const PlanPtr& plan,
                                          PlanContext* ctx,
                                          const CostModel* cost_model) {
  PlanPtr current = plan;
  Fuser fuser(ctx);
  int32_t next_spool_id = 1;
  constexpr int kMaxRounds = 16;
  // Adaptive mode: each shared subtree is priced once per pass (keyed by
  // fingerprint, so later rounds re-encountering a fuse-rejected candidate
  // neither re-price nor re-log it).
  std::map<uint64_t, bool> spool_decisions;

  for (int round = 0; round < kMaxRounds; ++round) {
    std::vector<PlanPtr> nodes;
    CollectNodes(current, &nodes);

    // Candidates: non-trivial subtrees, grouped by structural signature.
    std::map<std::string, std::vector<PlanPtr>> groups;
    for (const PlanPtr& n : nodes) {
      if (CountAllOps(n) < 2) continue;            // bare scans/values
      if (n->kind() == OpKind::kSpool) continue;   // already shared
      groups[Signature(n)].push_back(n);
    }

    // Prefer the largest duplicated subtrees: spooling the whole CTE beats
    // spooling a fragment of it.
    std::vector<std::pair<int, const std::string*>> order;
    for (const auto& [sig, members] : groups) {
      if (members.size() < 2) continue;
      order.push_back({CountAllOps(members[0]), &sig});
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    bool rewritten = false;
    for (const auto& [size, sig_ptr] : order) {
      std::vector<PlanPtr>& members = groups[*sig_ptr];
      // Anchor on the first member and collect every other member that is
      // *identical* to it; all of them share one spool buffer.
      const PlanPtr& anchor = members[0];
      std::map<const LogicalOp*, PlanPtr> replacements;
      std::vector<PlanPtr> chosen{anchor};
      int32_t id = next_spool_id;
      PlanPtr shared_child;  // set on first match
      for (size_t j = 1; j < members.size(); ++j) {
        const PlanPtr& b = members[j];
        bool overlaps = false;
        for (const PlanPtr& c : chosen) {
          overlaps |= Contains(c, b.get()) || Contains(b, c.get());
        }
        if (overlaps) continue;
        auto fused = fuser.Fuse(anchor, b);
        if (!fused.has_value() || !fused->Exact()) continue;
        // Spooling shares *identical* computations only. Exact compensations
        // are necessary but not sufficient: fusing two scalar aggregates
        // over different filters is "exact" (scalar aggregates always emit
        // a row) yet produces a merged plan with extra masked aggregates —
        // that is fusion's contribution, not spooling's. Identical
        // instances fuse onto a plan with exactly the anchor's schema.
        bool identical = fused->plan->schema().num_columns() ==
                         anchor->schema().num_columns();
        for (size_t c = 0; identical && c < anchor->schema().num_columns();
             ++c) {
          identical = fused->plan->schema().column(c).id ==
                      anchor->schema().column(c).id;
        }
        if (!identical) continue;
        if (shared_child == nullptr) {
          shared_child = fused->plan;
          replacements[anchor.get()] =
              std::make_shared<SpoolOp>(id, shared_child);
        }
        // Consumer b reads the shared spool through a renaming projection.
        std::vector<NamedExpr> exprs;
        exprs.reserve(b->schema().num_columns());
        bool ok = true;
        for (const ColumnInfo& c : b->schema().columns()) {
          ColumnId source = ApplyMap(fused->mapping, c.id);
          if (shared_child->schema().IndexOf(source) < 0) {
            ok = false;
            break;
          }
          exprs.push_back({c.id, c.name, Expr::MakeColumnRef(source, c.type)});
        }
        if (!ok) continue;
        replacements[b.get()] = std::make_shared<ProjectOp>(
            std::make_shared<SpoolOp>(id, shared_child), std::move(exprs));
        chosen.push_back(b);
      }
      if (replacements.size() >= 2) {
        if (cost_model != nullptr) {
          uint64_t fp = PlanFingerprint(shared_child);
          auto it = spool_decisions.find(fp);
          if (it == spool_decisions.end()) {
            SpoolDecision d = cost_model->DecideSpool(
                shared_child, static_cast<int>(chosen.size()));
            it = spool_decisions.emplace(fp, d.spool).first;
            if (OptimizerTrace* trace = ctx->trace()) {
              CostDecision rec;
              rec.anchor = OptimizerTrace::DescribeNode(*shared_child);
              rec.fingerprint = fp;
              rec.consumers = static_cast<int>(chosen.size());
              rec.reexec_cost_ns = d.reexec_cost;
              rec.spool_cost_ns = d.spool_cost;
              rec.est_rows = d.est_rows;
              rec.est_bytes = d.est_bytes;
              rec.measured = d.measured;
              rec.spooled = d.spool;
              trace->RecordCostDecision(std::move(rec));
            }
            if (MetricsRegistry* reg = ctx->metrics()) {
              reg->Add(reg->Counter(
                           d.spool
                               ? "fusiondb_cost_decisions_total{verdict=\"spool\"}"
                               : "fusiondb_cost_decisions_total{verdict=\"fuse\"}"),
                       1);
            }
          }
          // Fuse verdict: leave the duplicates for per-consumer
          // re-execution and look at the next candidate group.
          if (!it->second) continue;
        }
        ++next_spool_id;
        current = ReplaceSubtrees(current, replacements);
        rewritten = true;
        break;
      }
    }
    if (!rewritten) return current;
  }
  return current;
}

}  // namespace fusiondb
