// Section IV.A — GroupByJoinToWindow.
//
// Pattern (up to n-ary join traversal, IV.E): an input P1 inner-joined with
// GroupBy_{K,A}(P2), where the join condition equates each grouping key with
// the matching P1 column (cl_i = M(cr_i)) and Fuse(P1, P2) is exact.
// Replacement:
//   Filter_{M(C2)}                         <- residual conjuncts, handled by
//     Window_{A} PARTITION BY cl1..cln        the rebuild placing them as
//       Filter_{cl_i IS NOT NULL}             single-input filters
//         P
#include "expr/expr_builder.h"
#include "expr/simplifier.h"
#include "fusion/fuse.h"
#include "optimizer/rewrite_utils.h"
#include "optimizer/rules.h"

namespace fusiondb {

Result<PlanPtr> GroupByJoinToWindowRule::Apply(const PlanPtr& plan,
                                               PlanContext* ctx) const {
  NaryJoin nary;
  if (!FlattenJoin(plan, &nary)) return plan;
  EqualityClasses classes(nary.conjuncts);
  Fuser fuser(ctx);

  for (size_t j = 0; j < nary.inputs.size(); ++j) {
    if (nary.inputs[j]->kind() != OpKind::kAggregate) continue;
    const auto& gb = Cast<AggregateOp>(*nary.inputs[j]);
    if (gb.IsScalar()) continue;
    bool has_distinct = false;
    for (const AggregateItem& a : gb.aggregates()) has_distinct |= a.distinct;
    if (has_distinct) continue;  // windows do not evaluate DISTINCT

    for (size_t i = 0; i < nary.inputs.size(); ++i) {
      if (i == j) continue;
      auto fused = fuser.Fuse(nary.inputs[i], gb.child(0));
      if (!fused.has_value() || !fused->Exact()) continue;

      // Every grouping key must be equated (by the join conjuncts) with its
      // fused counterpart, which must be a column of input i.
      std::vector<ColumnId> partition_cols;
      bool ok = true;
      for (ColumnId k : gb.group_by()) {
        ColumnId cl = ApplyMap(fused->mapping, k);
        if (!nary.inputs[i]->schema().Contains(cl) || !classes.Same(cl, k)) {
          ok = false;
          break;
        }
        partition_cols.push_back(cl);
      }
      if (!ok || partition_cols.empty()) continue;

      // NULL keys never joined the aggregate; drop them before windowing.
      std::vector<ExprPtr> not_null;
      not_null.reserve(partition_cols.size());
      for (ColumnId cl : partition_cols) {
        int idx = fused->plan->schema().IndexOf(cl);
        not_null.push_back(eb::IsNotNull(
            eb::Col(cl, fused->plan->schema().column(idx).type)));
      }
      PlanPtr filtered = std::make_shared<FilterOp>(
          fused->plan, CombineConjuncts(not_null));

      // The aggregates become window items (same output ids, remapped
      // arguments/masks), so upstream references keep working.
      std::vector<WindowItem> items;
      items.reserve(gb.aggregates().size());
      for (const AggregateItem& a : gb.aggregates()) {
        items.push_back(
            {a.id, a.name, a.func,
             a.arg == nullptr ? nullptr : ApplyMap(fused->mapping, a.arg),
             a.mask == nullptr ? nullptr : ApplyMap(fused->mapping, a.mask)});
      }
      PlanPtr window =
          std::make_shared<WindowOp>(filtered, partition_cols, items);

      // Rebuild the n-ary join with inputs i and j replaced by the window,
      // remapping references to the aggregate's group outputs onto input
      // i's columns (key equalities collapse to x = x and are dropped).
      ColumnMap remap;
      for (size_t g = 0; g < gb.group_by().size(); ++g) {
        remap[gb.group_by()[g]] = partition_cols[g];
      }
      NaryJoin rebuilt;
      for (size_t t = 0; t < nary.inputs.size(); ++t) {
        if (t == i || t == j) continue;
        rebuilt.inputs.push_back(nary.inputs[t]);
      }
      rebuilt.inputs.push_back(window);
      rebuilt.conjuncts = RemapConjuncts(nary.conjuncts, remap);
      FUSIONDB_ASSIGN_OR_RETURN(PlanPtr joined, RebuildJoin(rebuilt));
      return RestoreSchema(joined, plan->schema(), remap);
    }
  }
  return plan;
}

}  // namespace fusiondb
