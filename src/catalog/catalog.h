// Catalog: the name -> Table registry a query session resolves against.
#ifndef FUSIONDB_CATALOG_CATALOG_H_
#define FUSIONDB_CATALOG_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/table.h"
#include "common/status.h"

namespace fusiondb {

class Catalog {
 public:
  Status RegisterTable(TablePtr table) {
    if (table == nullptr) return Status::InvalidArgument("null table");
    if (tables_.count(table->name()) > 0) {
      return Status::InvalidArgument("duplicate table: " + table->name());
    }
    tables_[table->name()] = std::move(table);
    return Status::OK();
  }

  Result<TablePtr> GetTable(const std::string& name) const {
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::InvalidArgument("no such table: " + name);
    }
    return it->second;
  }

  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, _] : tables_) names.push_back(name);
    return names;
  }

 private:
  std::unordered_map<std::string, TablePtr> tables_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_CATALOG_CATALOG_H_
