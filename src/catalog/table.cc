#include "catalog/table.h"

#include <algorithm>

namespace fusiondb {

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int64_t Table::num_rows() const {
  int64_t n = 0;
  for (const Partition& p : partitions_) n += static_cast<int64_t>(p.num_rows());
  return n;
}

int64_t Table::BytesOf(const std::vector<int>& column_indexes) const {
  int64_t total = 0;
  for (const Partition& p : partitions_) {
    for (int c : column_indexes) {
      total += p.column_bytes[c];
    }
  }
  return total;
}

TableBuilder::TableBuilder(std::string name, std::vector<TableColumn> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

Status TableBuilder::PartitionBy(const std::string& column, int64_t width) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) {
      if (PhysicalTypeOf(columns_[i].type) != PhysicalType::kInt) {
        return Status::InvalidArgument("partition column must be integral: " +
                                       column);
      }
      partition_column_ = static_cast<int>(i);
      partition_width_ = width;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("no such partition column: " + column);
}

Status TableBuilder::SetPrimaryKey(const std::vector<std::string>& key_columns) {
  primary_key_.clear();
  for (const std::string& k : key_columns) {
    bool found = false;
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == k) {
        primary_key_.push_back(static_cast<int>(i));
        found = true;
        break;
      }
    }
    if (!found) return Status::InvalidArgument("no such key column: " + k);
  }
  return Status::OK();
}

int TableBuilder::FindBucket(int64_t key) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].first == key) return static_cast<int>(i);
  }
  std::vector<DataType> types;
  types.reserve(columns_.size());
  for (const TableColumn& c : columns_) types.push_back(c.type);
  buckets_.emplace_back(key, Chunk::Empty(types));
  return static_cast<int>(buckets_.size()) - 1;
}

Status TableBuilder::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch for table " + name_);
  }
  int64_t bucket_key = 0;
  if (partition_column_ >= 0 && partition_width_ > 0) {
    const Value& pv = row[partition_column_];
    bucket_key = pv.is_null() ? std::numeric_limits<int64_t>::min()
                              : pv.int_value() / partition_width_;
  }
  int b = FindBucket(bucket_key);
  Chunk& chunk = buckets_[b].second;
  for (size_t i = 0; i < row.size(); ++i) {
    chunk.columns[i].AppendValue(row[i]);
  }
  return Status::OK();
}

Result<TablePtr> TableBuilder::Build() {
  // Deterministic partition order.
  std::sort(buckets_.begin(), buckets_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Partition> partitions;
  partitions.reserve(buckets_.size());
  for (auto& [key, chunk] : buckets_) {
    Partition p;
    p.rows = chunk.num_rows();
    if (partition_column_ >= 0 && chunk.num_rows() > 0) {
      const Column& pc = chunk.columns[partition_column_];
      int64_t mn = std::numeric_limits<int64_t>::max();
      int64_t mx = std::numeric_limits<int64_t>::min();
      bool any = false;
      for (size_t r = 0; r < pc.size(); ++r) {
        if (pc.IsNull(r)) continue;
        mn = std::min(mn, pc.IntAt(r));
        mx = std::max(mx, pc.IntAt(r));
        any = true;
      }
      if (any) {
        p.min_key = mn;
        p.max_key = mx;
      }
    }
    p.columns.reserve(chunk.columns.size());
    p.column_bytes.reserve(chunk.columns.size());
    for (const Column& c : chunk.columns) {
      EncodedColumn page = EncodeColumn(c);
      p.column_bytes.push_back(page.ByteSize());
      p.columns.push_back(std::move(page));
    }
    partitions.push_back(std::move(p));
  }
  if (partitions.empty()) {
    // Materialize one empty partition so scans have a schema to stream.
    Partition p;
    for (const TableColumn& c : columns_) {
      p.columns.push_back(EncodeColumn(Column(c.type)));
      p.column_bytes.push_back(0);
    }
    partitions.push_back(std::move(p));
  }
  return std::make_shared<const Table>(std::move(name_), std::move(columns_),
                                       partition_column_, std::move(partitions),
                                       std::move(primary_key_));
}

}  // namespace fusiondb
