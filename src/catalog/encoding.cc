#include "catalog/encoding.h"

#include <cstring>

namespace fusiondb {

namespace {

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const std::string& buf, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < buf.size()) {
    uint8_t byte = static_cast<uint8_t>(buf[(*pos)++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
    if (shift > 63) return false;
  }
  return false;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

EncodedColumn EncodeColumn(const Column& column) {
  EncodedColumn page;
  page.type = column.type();
  page.num_rows = static_cast<uint32_t>(column.size());
  std::string& out = page.buffer;
  size_t n = column.size();
  // Validity bitmap.
  out.reserve(n / 8 + n);
  for (size_t i = 0; i < n; i += 8) {
    uint8_t byte = 0;
    for (size_t b = 0; b < 8 && i + b < n; ++b) {
      if (column.IsValid(i + b)) byte |= static_cast<uint8_t>(1u << b);
    }
    out.push_back(static_cast<char>(byte));
  }
  switch (PhysicalTypeOf(column.type())) {
    case PhysicalType::kInt: {
      int64_t prev = 0;
      for (size_t i = 0; i < n; ++i) {
        int64_t v = column.IsValid(i) ? column.IntAt(i) : prev;
        PutVarint(ZigZag(v - prev), &out);
        prev = v;
      }
      break;
    }
    case PhysicalType::kDouble: {
      uint64_t prev = 0;
      for (size_t i = 0; i < n; ++i) {
        double d = column.IsValid(i) ? column.DoubleAt(i) : 0.0;
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        uint64_t xored = bits ^ prev;
        char word[8];
        std::memcpy(word, &xored, sizeof(word));
        out.append(word, sizeof(word));
        prev = bits;
      }
      break;
    }
    case PhysicalType::kString: {
      for (size_t i = 0; i < n; ++i) {
        if (!column.IsValid(i)) continue;
        const std::string& s = column.StringAt(i);
        PutVarint(s.size(), &out);
        out.append(s);
      }
      break;
    }
  }
  return page;
}

Result<Column> DecodeColumn(const EncodedColumn& page) {
  Column out(page.type);
  size_t n = page.num_rows;
  out.Reserve(n);
  const std::string& buf = page.buffer;
  size_t bitmap_bytes = (n + 7) / 8;
  if (buf.size() < bitmap_bytes) {
    return Status::ExecutionError("corrupt page: truncated validity bitmap");
  }
  auto valid_at = [&](size_t i) {
    return (static_cast<uint8_t>(buf[i / 8]) >> (i % 8)) & 1;
  };
  size_t pos = bitmap_bytes;
  switch (PhysicalTypeOf(page.type)) {
    case PhysicalType::kInt: {
      int64_t prev = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t raw;
        if (!GetVarint(buf, &pos, &raw)) {
          return Status::ExecutionError("corrupt page: truncated varint");
        }
        int64_t v = prev + UnZigZag(raw);
        prev = v;
        if (valid_at(i)) {
          out.AppendInt(v);
        } else {
          out.AppendNull();
        }
      }
      break;
    }
    case PhysicalType::kDouble: {
      uint64_t prev = 0;
      for (size_t i = 0; i < n; ++i) {
        if (pos + 8 > buf.size()) {
          return Status::ExecutionError("corrupt page: truncated float64");
        }
        uint64_t xored;
        std::memcpy(&xored, buf.data() + pos, sizeof(xored));
        pos += 8;
        uint64_t bits = xored ^ prev;
        prev = bits;
        if (valid_at(i)) {
          double d;
          std::memcpy(&d, &bits, sizeof(d));
          out.AppendDouble(d);
        } else {
          out.AppendNull();
        }
      }
      break;
    }
    case PhysicalType::kString: {
      for (size_t i = 0; i < n; ++i) {
        if (!valid_at(i)) {
          out.AppendNull();
          continue;
        }
        uint64_t len;
        if (!GetVarint(buf, &pos, &len) || pos + len > buf.size()) {
          return Status::ExecutionError("corrupt page: truncated string");
        }
        out.AppendString(buf.substr(pos, len));
        pos += len;
      }
      break;
    }
  }
  return out;
}

}  // namespace fusiondb
