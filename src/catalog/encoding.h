// Columnar page encoding for table storage.
//
// Tables store encoded pages, and scans decode them — mirroring the paper's
// environment, where every scanned byte costs S3 transfer plus Parquet
// decode. This keeps the engine's scan cost proportional to the
// bytes-scanned metric, which is what makes the Figure 1 (latency) and
// Figure 2 (data read) shapes move together.
//
// Formats (one page per column per partition):
//   bool/int64/date: validity bitmap + zigzag-delta varints
//   float64:         validity bitmap + XOR-with-previous 8-byte words
//   string:          validity bitmap + varint length + bytes
#ifndef FUSIONDB_CATALOG_ENCODING_H_
#define FUSIONDB_CATALOG_ENCODING_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "types/column.h"

namespace fusiondb {

/// One encoded column page.
struct EncodedColumn {
  DataType type = DataType::kInt64;
  uint32_t num_rows = 0;
  std::string buffer;

  int64_t ByteSize() const { return static_cast<int64_t>(buffer.size()); }
};

/// Encodes a column into a page.
EncodedColumn EncodeColumn(const Column& column);

/// Decodes a page back into a column. Fails on corrupt pages.
Result<Column> DecodeColumn(const EncodedColumn& page);

}  // namespace fusiondb

#endif  // FUSIONDB_CATALOG_ENCODING_H_
