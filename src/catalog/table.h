// In-memory partitioned columnar table storage.
//
// Mirrors the storage layout the paper evaluates against: large fact tables
// are horizontally partitioned on a date column (the paper used 200-2000
// partitions per fact table); dimension tables are a single partition. Scans
// charge bytes per (partition, column) they actually read, which is the
// basis for the Figure-2 "data read" metric.
#ifndef FUSIONDB_CATALOG_TABLE_H_
#define FUSIONDB_CATALOG_TABLE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "catalog/encoding.h"
#include "common/status.h"
#include "types/chunk.h"
#include "types/data_type.h"

namespace fusiondb {

/// Column metadata as stored in the catalog (no plan ColumnIds here; scans
/// mint fresh ids when they reference table columns).
struct TableColumn {
  std::string name;
  DataType type = DataType::kInt64;
};

/// One horizontal slice of a table, stored as encoded column pages (scans
/// pay a decode cost proportional to the page bytes, as with Parquet on
/// S3). Keeps per-column byte sizes and the min/max of the partition column
/// for pruning.
struct Partition {
  std::vector<EncodedColumn> columns;
  std::vector<int64_t> column_bytes;  // encoded sizes, parallel to columns
  size_t rows = 0;
  // Range of the partitioning column within this partition (ints only).
  int64_t min_key = std::numeric_limits<int64_t>::min();
  int64_t max_key = std::numeric_limits<int64_t>::max();

  size_t num_rows() const { return rows; }
};

/// An immutable table: schema + partitions + optional key metadata.
class Table {
 public:
  Table(std::string name, std::vector<TableColumn> columns,
        int partition_column, std::vector<Partition> partitions,
        std::vector<int> primary_key)
      : name_(std::move(name)),
        columns_(std::move(columns)),
        partition_column_(partition_column),
        partitions_(std::move(partitions)),
        primary_key_(std::move(primary_key)) {}

  const std::string& name() const { return name_; }
  const std::vector<TableColumn>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `name` among the table columns, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Index of the partitioning column, or -1 when unpartitioned.
  int partition_column() const { return partition_column_; }

  const std::vector<Partition>& partitions() const { return partitions_; }

  /// Column indexes forming the primary key (may be empty).
  const std::vector<int>& primary_key() const { return primary_key_; }

  int64_t num_rows() const;

  /// Total stored bytes of the given column indexes across all partitions.
  int64_t BytesOf(const std::vector<int>& column_indexes) const;

 private:
  std::string name_;
  std::vector<TableColumn> columns_;
  int partition_column_;
  std::vector<Partition> partitions_;
  std::vector<int> primary_key_;
};

using TablePtr = std::shared_ptr<const Table>;

/// Row-at-a-time builder that buckets rows into partitions by the value of
/// the partition column divided by `partition_width` (0 width or no
/// partition column => single partition).
class TableBuilder {
 public:
  TableBuilder(std::string name, std::vector<TableColumn> columns);

  /// Declares the partitioning column (by name) and bucket width.
  Status PartitionBy(const std::string& column, int64_t width);

  /// Declares the primary key columns (by name).
  Status SetPrimaryKey(const std::vector<std::string>& key_columns);

  /// Appends one row; `row` must match the declared column count/types.
  Status AppendRow(const std::vector<Value>& row);

  /// Finalizes into an immutable Table.
  Result<TablePtr> Build();

 private:
  std::string name_;
  std::vector<TableColumn> columns_;
  int partition_column_ = -1;
  int64_t partition_width_ = 0;
  std::vector<int> primary_key_;
  // partition bucket -> chunk under construction
  std::vector<std::pair<int64_t, Chunk>> buckets_;
  int FindBucket(int64_t key);
};

}  // namespace fusiondb

#endif  // FUSIONDB_CATALOG_TABLE_H_
