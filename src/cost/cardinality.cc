#include "cost/cardinality.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "plan/plan_fingerprint.h"
#include "types/data_type.h"

namespace fusiondb {

namespace {

// Textbook default selectivities; placeholders until feedback overrides.
constexpr double kEqSelectivity = 0.1;
constexpr double kRangeSelectivity = 0.3;
constexpr double kNeSelectivity = 0.9;
constexpr double kDefaultSelectivity = 0.25;
constexpr double kSemiJoinSelectivity = 0.5;

double PredicateSelectivity(const ExprPtr& pred) {
  if (pred == nullptr || pred->IsLiteralBool(true)) return 1.0;
  switch (pred->kind()) {
    case ExprKind::kCompare:
      switch (pred->compare_op()) {
        case CompareOp::kEq:
          return kEqSelectivity;
        case CompareOp::kNe:
          return kNeSelectivity;
        case CompareOp::kLt:
        case CompareOp::kLe:
        case CompareOp::kGt:
        case CompareOp::kGe:
          return kRangeSelectivity;
      }
      return kDefaultSelectivity;
    case ExprKind::kAnd: {
      double s = 1.0;
      for (const ExprPtr& c : pred->children()) s *= PredicateSelectivity(c);
      return s;
    }
    case ExprKind::kOr: {
      double s = 0.0;
      for (const ExprPtr& c : pred->children()) s += PredicateSelectivity(c);
      return std::min(1.0, s);
    }
    case ExprKind::kNot:
      return 1.0 - PredicateSelectivity(pred->child(0));
    case ExprKind::kInList:
      // operand IN (v1..vN): N equality shots.
      return std::min(
          1.0, kEqSelectivity *
                   static_cast<double>(
                       pred->children().empty() ? 0 : pred->children().size() - 1));
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
    case ExprKind::kArith:
    case ExprKind::kIsNull:
    case ExprKind::kCase:
      return kDefaultSelectivity;
  }
  return kDefaultSelectivity;
}

/// Maps each output ColumnId that passes through unchanged from a base-table
/// scan to its (table, table column index). Used to recognize primary-key
/// joins: Filter/Sort/Limit/etc. preserve ids, so a join condition over a
/// filtered scan still resolves to the underlying table column.
void CollectBaseColumns(
    const PlanPtr& plan,
    std::unordered_map<ColumnId, std::pair<const Table*, int>>* out) {
  switch (plan->kind()) {
    case OpKind::kScan: {
      const auto* scan = CastPtr<ScanOp>(plan);
      const Schema& s = scan->schema();
      for (size_t i = 0; i < s.num_columns(); ++i) {
        (*out)[s.column(i).id] = {scan->table().get(),
                                  scan->table_columns()[i]};
      }
      return;
    }
    // Pass-through operators: every child column id stays visible (or at
    // least the surviving ids are unchanged), so just recurse.
    case OpKind::kFilter:
    case OpKind::kSort:
    case OpKind::kLimit:
    case OpKind::kEnforceSingleRow:
    case OpKind::kWindow:
    case OpKind::kMarkDistinct:
    case OpKind::kAggregate:  // group-by columns keep their child ids
    case OpKind::kSpool:
      for (const PlanPtr& c : plan->children()) CollectBaseColumns(c, out);
      return;
    case OpKind::kProject: {
      // Only identity columns (bare column refs) pass through.
      std::unordered_map<ColumnId, std::pair<const Table*, int>> below;
      for (const PlanPtr& c : plan->children()) CollectBaseColumns(c, &below);
      for (const NamedExpr& e : CastPtr<ProjectOp>(plan)->exprs()) {
        if (e.expr->kind() == ExprKind::kColumnRef) {
          auto it = below.find(e.expr->column_id());
          if (it != below.end()) (*out)[e.id] = it->second;
        }
      }
      return;
    }
    case OpKind::kJoin:
    case OpKind::kUnionAll:
    case OpKind::kValues:
    case OpKind::kApply:
      // Joins would need per-side handling (done by the caller); union
      // renames; values/apply introduce fresh columns. Stop here.
      return;
  }
}

/// Column ids equated by `condition` (an equality or conjunction of
/// equalities between column refs); empty pairs when the condition has any
/// other shape.
void CollectEquiPairs(const ExprPtr& condition,
                      std::vector<std::pair<ColumnId, ColumnId>>* pairs) {
  if (condition == nullptr) return;
  if (condition->kind() == ExprKind::kAnd) {
    for (const ExprPtr& c : condition->children()) CollectEquiPairs(c, pairs);
    return;
  }
  if (condition->kind() == ExprKind::kCompare &&
      condition->compare_op() == CompareOp::kEq &&
      condition->child(0)->kind() == ExprKind::kColumnRef &&
      condition->child(1)->kind() == ExprKind::kColumnRef) {
    pairs->push_back(
        {condition->child(0)->column_id(), condition->child(1)->column_id()});
  }
}

/// True when the join condition's equated columns on `side` cover the
/// primary key of a single base table scanned on that side.
bool EquatesPrimaryKey(
    const std::vector<std::pair<ColumnId, ColumnId>>& pairs,
    const std::unordered_map<ColumnId, std::pair<const Table*, int>>& side) {
  const Table* table = nullptr;
  std::unordered_set<int> covered;
  for (const auto& [a, b] : pairs) {
    for (ColumnId id : {a, b}) {
      auto it = side.find(id);
      if (it == side.end()) continue;
      if (table == nullptr) table = it->second.first;
      if (table == it->second.first) covered.insert(it->second.second);
    }
  }
  if (table == nullptr || table->primary_key().empty()) return false;
  for (int k : table->primary_key()) {
    if (covered.find(k) == covered.end()) return false;
  }
  return true;
}

double WidthOrDefault(DataType t) {
  int64_t w = FixedWidthOf(t);
  // Variable-width (strings) charge a flat estimate.
  return w == 0 ? 16.0 : static_cast<double>(w);
}

}  // namespace

CardEstimate CardinalityEstimator::Estimate(const PlanPtr& plan) const {
  if (plan == nullptr) return {};
  if (feedback_ != nullptr) {
    if (auto measured = feedback_->Lookup(PlanFingerprint(plan))) {
      return {static_cast<double>(*measured), true};
    }
  }
  switch (plan->kind()) {
    case OpKind::kScan:
      return {static_cast<double>(CastPtr<ScanOp>(plan)->table()->num_rows()),
              false};
    case OpKind::kFilter: {
      CardEstimate in = Estimate(plan->child(0));
      return {in.rows * PredicateSelectivity(CastPtr<FilterOp>(plan)->predicate()),
              in.measured};
    }
    case OpKind::kProject:
    case OpKind::kWindow:
    case OpKind::kMarkDistinct:
    case OpKind::kSort:
    case OpKind::kSpool:
      return Estimate(plan->child(0));
    case OpKind::kJoin: {
      const auto* join = CastPtr<JoinOp>(plan);
      CardEstimate l = Estimate(join->left());
      CardEstimate r = Estimate(join->right());
      bool measured = l.measured || r.measured;
      switch (join->join_type()) {
        case JoinType::kCross:
          return {l.rows * r.rows, measured};
        case JoinType::kSemi:
          return {l.rows * kSemiJoinSelectivity, measured};
        case JoinType::kInner:
        case JoinType::kLeft: {
          std::vector<std::pair<ColumnId, ColumnId>> pairs;
          CollectEquiPairs(join->condition(), &pairs);
          if (!pairs.empty()) {
            std::unordered_map<ColumnId, std::pair<const Table*, int>> lcols,
                rcols;
            CollectBaseColumns(join->left(), &lcols);
            CollectBaseColumns(join->right(), &rcols);
            double rows;
            if (EquatesPrimaryKey(pairs, rcols)) {
              rows = l.rows;  // each left row matches at most one right row
            } else if (EquatesPrimaryKey(pairs, lcols)) {
              rows = r.rows;
            } else {
              // Equi-join without key info: FK-shaped guess (the bigger
              // side survives).
              rows = std::max(l.rows, r.rows);
            }
            if (join->join_type() == JoinType::kLeft) {
              rows = std::max(rows, l.rows);
            }
            return {rows, measured};
          }
          double rows = l.rows * r.rows * kDefaultSelectivity;
          if (join->join_type() == JoinType::kLeft) {
            rows = std::max(rows, l.rows);
          }
          return {rows, measured};
        }
      }
      return {l.rows * r.rows, measured};
    }
    case OpKind::kAggregate: {
      const auto* agg = CastPtr<AggregateOp>(plan);
      CardEstimate in = Estimate(plan->child(0));
      if (agg->IsScalar()) return {1.0, in.measured};
      // When the grouping columns cover a derived candidate key of the
      // input, every input row is its own group: the distinct count is the
      // input cardinality, no heuristic needed.
      if (props_.Derive(plan->child(0)).HasKey(agg->group_by())) {
        return {std::max(1.0, in.rows), in.measured};
      }
      // Grouped output: sqrt heuristic, at least 1 and at most the input.
      double rows = std::clamp(std::sqrt(std::max(0.0, in.rows)), 1.0,
                               std::max(1.0, in.rows));
      return {rows, in.measured};
    }
    case OpKind::kUnionAll: {
      double rows = 0.0;
      bool measured = false;
      for (const PlanPtr& c : plan->children()) {
        CardEstimate e = Estimate(c);
        rows += e.rows;
        measured = measured || e.measured;
      }
      return {rows, measured};
    }
    case OpKind::kValues:
      return {static_cast<double>(CastPtr<ValuesOp>(plan)->rows().size()),
              false};
    case OpKind::kLimit: {
      CardEstimate in = Estimate(plan->child(0));
      return {std::min(in.rows,
                       static_cast<double>(CastPtr<LimitOp>(plan)->limit())),
              in.measured};
    }
    case OpKind::kEnforceSingleRow:
      return {1.0, Estimate(plan->child(0)).measured};
    case OpKind::kApply: {
      // Decorrelation turns this into join+aggregate; pre-rewrite, one
      // scalar per outer row.
      return Estimate(plan->child(0));
    }
  }
  return {};
}

double CardinalityEstimator::RowBytes(const PlanPtr& plan) {
  if (plan == nullptr) return 0.0;
  if (plan->kind() == OpKind::kScan) {
    const auto* scan = CastPtr<ScanOp>(plan);
    int64_t rows = scan->table()->num_rows();
    if (rows > 0) {
      return static_cast<double>(scan->table()->BytesOf(scan->table_columns())) /
             static_cast<double>(rows);
    }
  }
  double bytes = 0.0;
  for (const ColumnInfo& c : plan->schema().columns()) {
    bytes += WidthOrDefault(c.type);
  }
  return bytes;
}

}  // namespace fusiondb
