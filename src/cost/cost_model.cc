#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

namespace fusiondb {

namespace {

bool IsHashingOp(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
    case OpKind::kAggregate:
    case OpKind::kWindow:
    case OpKind::kMarkDistinct:
    case OpKind::kSort:  // not hashing, but comparably heavy per row
      return true;
    case OpKind::kScan:
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kUnionAll:
    case OpKind::kValues:
    case OpKind::kLimit:
    case OpKind::kEnforceSingleRow:
    case OpKind::kApply:
    case OpKind::kSpool:
      return false;
  }
  return false;
}

}  // namespace

double CostModel::SubtreeCost(const PlanPtr& plan) const {
  if (plan == nullptr) return 0.0;
  double cost = 0.0;
  for (const PlanPtr& c : plan->children()) cost += SubtreeCost(c);

  CardEstimate out = estimator_->Estimate(plan);
  if (plan->kind() == OpKind::kScan) {
    // Decode cost: estimated rows actually produced (feedback-overlaid, so
    // a measured small scan prices small) times the stored row width.
    double bytes = out.rows * CardinalityEstimator::RowBytes(plan);
    cost += bytes * constants_.decode_ns_per_byte;
  }
  // Per-row operator work on the rows this node processes. Charge the
  // larger of input and output rows so filters pay for what they inspect.
  double rows = out.rows;
  for (const PlanPtr& c : plan->children()) {
    rows = std::max(rows, estimator_->Estimate(c).rows);
  }
  cost += rows * (IsHashingOp(plan->kind()) ? constants_.hash_row_ns
                                            : constants_.row_ns);
  return cost;
}

SpoolDecision CostModel::DecideSpool(const PlanPtr& subtree,
                                     int consumers) const {
  SpoolDecision d;
  CardEstimate out = estimator_->Estimate(subtree);
  d.est_rows = out.rows;
  d.measured = out.measured;
  double bytes =
      std::max(0.0, out.rows) * CardinalityEstimator::RowBytes(subtree);
  d.est_bytes = static_cast<int64_t>(std::llround(bytes));

  double once = SubtreeCost(subtree);
  double n = static_cast<double>(std::max(consumers, 1));
  d.reexec_cost = n * once;
  d.spool_cost = once + constants_.spool_setup_ns +
                 bytes * constants_.spool_write_ns_per_byte +
                 n * bytes * constants_.spool_read_ns_per_byte;
  d.spool = d.spool_cost < d.reexec_cost;
  return d;
}

ShareDecision CostModel::DecideShare(const PlanPtr& fused,
                                     const std::vector<PlanPtr>& members) const {
  ShareDecision d;
  CardEstimate out = estimator_->Estimate(fused);
  d.est_rows = out.rows;
  d.measured = out.measured;
  double bytes =
      std::max(0.0, out.rows) * CardinalityEstimator::RowBytes(fused);
  d.est_bytes = static_cast<int64_t>(std::llround(bytes));

  for (const PlanPtr& m : members) d.solo_cost += SubtreeCost(m);
  double n = static_cast<double>(std::max<size_t>(members.size(), 1));
  d.shared_cost = SubtreeCost(fused) +
                  n * std::max(0.0, out.rows) * constants_.row_ns;
  d.share = d.shared_cost < d.solo_cost;
  return d;
}

}  // namespace fusiondb
