// StatsFeedback: measured per-subtree cardinalities harvested from executed
// query profiles, keyed by plan fingerprint (plan/plan_fingerprint.h).
//
// This is the feedback half of the cost loop (DESIGN.md §11), in the
// tradition of LEO: the profiling layer records what each operator actually
// produced (OperatorStats.rows_out); Harvest() walks the executed plan in
// the same preorder the stats slots were assigned in and files each
// subtree's measured output cardinality under its fingerprint. A later
// optimization pass overlays these measurements on top of the catalog-based
// estimates (cost/cardinality.h), so the second run of a query — or of any
// query sharing a subtree with one — plans against observed reality.
//
// Fingerprints are renumbering-stable, so a measurement taken from one
// PlanContext matches the same logical subtree built in another.
#ifndef FUSIONDB_COST_STATS_FEEDBACK_H_
#define FUSIONDB_COST_STATS_FEEDBACK_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/operator_stats.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// One fingerprint's accumulated measurement.
struct MeasuredCardinality {
  int64_t rows = 0;   // latest measured output rows of the subtree
  int64_t runs = 0;   // how many executions contributed
};

class StatsFeedback {
 public:
  /// Records one measured execution of the subtree behind `fingerprint`.
  /// The latest measurement wins (cardinalities drift with data, and the
  /// most recent run is the best predictor of the next).
  void Record(uint64_t fingerprint, int64_t rows) {
    MeasuredCardinality& m = measurements_[fingerprint];
    m.rows = rows;
    ++m.runs;
  }

  /// The measured cardinality for `fingerprint`, if any run recorded one.
  std::optional<int64_t> Lookup(uint64_t fingerprint) const {
    auto it = measurements_.find(fingerprint);
    if (it == measurements_.end()) return std::nullopt;
    return it->second.rows;
  }

  /// Harvests every subtree's measured output cardinality from an executed
  /// plan and its per-operator stats (preorder-aligned, as produced by
  /// ExecutePlan with profiling on — QueryResult::operator_stats()). A
  /// stats vector from a profiling-disabled run is empty and harvests
  /// nothing. Returns the number of subtrees recorded.
  size_t Harvest(const PlanPtr& executed_plan,
                 const std::vector<OperatorStats>& stats);

  size_t size() const { return measurements_.size(); }
  bool empty() const { return measurements_.empty(); }

 private:
  std::unordered_map<uint64_t, MeasuredCardinality> measurements_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_COST_STATS_FEEDBACK_H_
