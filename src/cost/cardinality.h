// CardinalityEstimator: per-subtree output row estimates seeded from
// catalog metadata (partition row counts, primary-key info carried on the
// ScanOp's Table) with an optional StatsFeedback overlay of measured
// cardinalities (DESIGN.md §11).
//
// Estimation is deliberately crude — selectivity defaults in the System-R
// tradition — because the feedback loop is the accuracy mechanism: the
// first run uses these priors, every later run overlays what the profiler
// actually measured for any subtree whose fingerprint has been seen. The
// estimate records which of the two sources produced it, so optimizer
// traces can show the estimate changing between runs.
#ifndef FUSIONDB_COST_CARDINALITY_H_
#define FUSIONDB_COST_CARDINALITY_H_

#include "analysis/plan_props.h"
#include "cost/stats_feedback.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// One subtree's estimated output cardinality.
struct CardEstimate {
  double rows = 0.0;
  // True when this estimate (or any child estimate it was derived from)
  // came from a measured StatsFeedback entry rather than a catalog prior.
  bool measured = false;
};

class CardinalityEstimator {
 public:
  /// `feedback` may be null (catalog priors only); not owned, must outlive
  /// the estimator.
  explicit CardinalityEstimator(const StatsFeedback* feedback = nullptr)
      : feedback_(feedback) {}

  /// Estimated output rows of `plan`. Measured cardinalities for the
  /// subtree's own fingerprint take priority over derivation; otherwise the
  /// estimate derives from the children's estimates and catalog metadata.
  CardEstimate Estimate(const PlanPtr& plan) const;

  /// Average encoded bytes per output row of `plan` (fixed type widths;
  /// scans use the table's true stored byte counts). The scan-cost basis
  /// for CostModel.
  static double RowBytes(const PlanPtr& plan);

  const StatsFeedback* feedback() const { return feedback_; }

 private:
  const StatsFeedback* feedback_;  // not owned; may be null
  // Derived plan properties (src/analysis): grouped-aggregate estimates use
  // candidate keys — grouping columns covering a key of the input mean the
  // distinct count IS the input cardinality, replacing the sqrt heuristic.
  // Mutable because derivation memoizes inside const Estimate calls.
  mutable PropertyDerivation props_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_COST_CARDINALITY_H_
