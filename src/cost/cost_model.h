// CostModel: prices re-executing a duplicated subtree once per consumer
// versus spooling it (materialize once, pay serialize-on-write plus a
// deserialize per consumer) — the fuse-vs-spool decision of DESIGN.md §11.
//
//   reexec_cost = consumers × SubtreeCost(subtree)
//   spool_cost  = SubtreeCost(subtree) + setup
//               + bytes_out × write_ns
//               + consumers × bytes_out × read_ns
//
// where bytes_out = estimated output rows × estimated row width. Subtree
// cost charges decoded bytes at the scans plus per-row operator work, with
// constants calibrated against bench/exec_micro (see CostConstants). Small
// subtrees therefore prefer re-execution (the spool setup constant
// dominates); large ones amortize materialization across consumers.
#ifndef FUSIONDB_COST_COST_MODEL_H_
#define FUSIONDB_COST_COST_MODEL_H_

#include <cstdint>

#include "cost/cardinality.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// Calibration constants, in nanoseconds. Defaults were fitted to the
/// bench/exec_micro single-thread numbers on the dev container (scan+filter
/// throughput ≈ 2 GB/s decoded → 0.5 ns/byte; hash aggregation ≈ 20 M
/// rows/s → 50 ns/row); absolute accuracy matters less than the ratio
/// between operator work and spool traffic.
struct CostConstants {
  double decode_ns_per_byte = 0.5;       // scan decode
  double row_ns = 5.0;                   // per row, per non-hashing operator
  double hash_row_ns = 50.0;             // per row, per hashing operator
  double spool_write_ns_per_byte = 1.0;  // serialize on materialization
  double spool_read_ns_per_byte = 1.0;   // deserialize, per consumer
  double spool_setup_ns = 50000.0;       // fixed spool bookkeeping overhead
};

/// One cross-query share-vs-solo pricing (the server's per-candidate-group
/// decision, DESIGN.md §12):
///
///   solo_cost   = Σ_i SubtreeCost(member_i)          — N isolated runs
///   shared_cost = SubtreeCost(fused)                  — one shared run
///               + consumers × est_rows × row_ns       — per-consumer
///                 compensating filter/projection over the fused output
///
/// Shared wins whenever the fused plan is cheaper than the members added
/// up, minus the (streaming, scan-free) restoration work — for identical
/// members the fused plan *is* one member, so sharing wins as soon as one
/// member's cost exceeds the restoration overhead.
struct ShareDecision {
  bool share = false;        // true: execute fused once; false: solo runs
  double solo_cost = 0.0;    // ns, members executed in isolation
  double shared_cost = 0.0;  // ns, fused once + consumer restoration
  double est_rows = 0.0;     // estimated fused output rows
  int64_t est_bytes = 0;     // estimated fused output bytes
  bool measured = false;     // estimate backed by StatsFeedback
};

/// One fuse-vs-spool pricing, as recorded in the optimizer trace.
struct SpoolDecision {
  bool spool = false;          // true: materialize; false: re-execute
  double reexec_cost = 0.0;    // ns, consumers × subtree cost
  double spool_cost = 0.0;     // ns, subtree + setup + write + reads
  double est_rows = 0.0;       // estimated subtree output rows
  int64_t est_bytes = 0;       // estimated spooled bytes
  bool measured = false;       // estimate backed by StatsFeedback
};

class CostModel {
 public:
  /// `estimator` is not owned and must outlive the model.
  explicit CostModel(const CardinalityEstimator* estimator,
                     CostConstants constants = CostConstants())
      : estimator_(estimator), constants_(constants) {}

  /// Estimated ns to execute `plan` once (recursive over the subtree).
  double SubtreeCost(const PlanPtr& plan) const;

  /// Prices re-execution by `consumers` readers against spooling.
  SpoolDecision DecideSpool(const PlanPtr& subtree, int consumers) const;

  /// Prices executing `fused` once for all of `members` against executing
  /// each member in isolation (cross-query sharing, src/server).
  ShareDecision DecideShare(const PlanPtr& fused,
                            const std::vector<PlanPtr>& members) const;

  const CardinalityEstimator& estimator() const { return *estimator_; }
  const CostConstants& constants() const { return constants_; }

 private:
  const CardinalityEstimator* estimator_;  // not owned
  CostConstants constants_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_COST_COST_MODEL_H_
