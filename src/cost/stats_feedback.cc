#include "cost/stats_feedback.h"

#include <algorithm>

#include "plan/plan_fingerprint.h"

namespace fusiondb {

namespace {

/// Preorder walk mirroring BuildExecutor's id assignment: the node visited
/// `counter`-th owns stats slot `counter`. Duplicate occurrences of the same
/// subtree within one plan (shared spool children appear once per consumer,
/// and only the materializing consumer's copy is ever pulled) merge by max,
/// so an unpulled duplicate's zero rows cannot mask the real measurement.
void HarvestNode(const PlanPtr& plan, const std::vector<OperatorStats>& stats,
                 int* counter,
                 std::unordered_map<uint64_t, int64_t>* harvested) {
  int id = (*counter)++;
  if (id >= 0 && static_cast<size_t>(id) < stats.size()) {
    uint64_t fp = PlanFingerprint(plan);
    int64_t rows = stats[static_cast<size_t>(id)].rows_out;
    auto [it, inserted] = harvested->emplace(fp, rows);
    if (!inserted) it->second = std::max(it->second, rows);
  }
  for (const PlanPtr& c : plan->children()) {
    HarvestNode(c, stats, counter, harvested);
  }
}

}  // namespace

size_t StatsFeedback::Harvest(const PlanPtr& executed_plan,
                              const std::vector<OperatorStats>& stats) {
  if (executed_plan == nullptr || stats.empty()) return 0;
  std::unordered_map<uint64_t, int64_t> harvested;
  int counter = 0;
  HarvestNode(executed_plan, stats, &counter, &harvested);
  for (const auto& [fp, rows] : harvested) Record(fp, rows);
  return harvested.size();
}

}  // namespace fusiondb
