// Schema: an ordered list of output columns, each with a plan-wide unique
// ColumnId. FusionDB follows Athena's convention: every operator instance
// (including each scan of the same table) gets fresh column identities.
#ifndef FUSIONDB_TYPES_SCHEMA_H_
#define FUSIONDB_TYPES_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "types/data_type.h"

namespace fusiondb {

/// Identity of a column within one query plan. Allocated by PlanContext;
/// never reused within a plan.
using ColumnId = int32_t;

constexpr ColumnId kInvalidColumnId = -1;

/// One output column of an operator.
struct ColumnInfo {
  ColumnId id = kInvalidColumnId;
  std::string name;
  DataType type = DataType::kInt64;
};

/// Ordered column list with O(1) id lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnInfo> columns) : columns_(std::move(columns)) {
    RebuildIndex();
  }

  size_t num_columns() const { return columns_.size(); }
  const ColumnInfo& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnInfo>& columns() const { return columns_; }

  /// Position of `id` in this schema, or -1 if absent.
  int IndexOf(ColumnId id) const {
    auto it = index_.find(id);
    return it == index_.end() ? -1 : it->second;
  }
  bool Contains(ColumnId id) const { return index_.count(id) > 0; }

  /// Looks up a column by name; fails if absent or ambiguous.
  Result<ColumnInfo> FindByName(const std::string& name) const;

  /// Type of column `id`; fails if absent.
  Result<DataType> TypeOf(ColumnId id) const;

  void AddColumn(ColumnInfo info) {
    index_[info.id] = static_cast<int>(columns_.size());
    columns_.push_back(std::move(info));
  }

  std::string ToString() const;

 private:
  void RebuildIndex() {
    index_.clear();
    for (size_t i = 0; i < columns_.size(); ++i) {
      index_[columns_[i].id] = static_cast<int>(i);
    }
  }

  std::vector<ColumnInfo> columns_;
  std::unordered_map<ColumnId, int> index_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_TYPES_SCHEMA_H_
