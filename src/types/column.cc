#include "types/column.h"

namespace fusiondb {

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null(type_);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(ints_[row] != 0);
    case DataType::kInt64:
      return Value::Int64(ints_[row]);
    case DataType::kDate:
      return Value::Date(ints_[row]);
    case DataType::kFloat64:
      return Value::Float64(doubles_[row]);
    case DataType::kString:
      return Value::String(strings_[row]);
  }
  return Value::Null(type_);
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt:
      AppendInt(v.int_value());
      break;
    case PhysicalType::kDouble:
      AppendDouble(PhysicalTypeOf(v.type()) == PhysicalType::kDouble
                       ? v.double_value()
                       : static_cast<double>(v.int_value()));
      break;
    case PhysicalType::kString:
      AppendString(v.string_value());
      break;
  }
}

void Column::AppendFrom(const Column& other, size_t row) {
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt:
      AppendInt(other.ints_[row]);
      break;
    case PhysicalType::kDouble:
      AppendDouble(other.NumericAt(row));
      break;
    case PhysicalType::kString:
      AppendString(other.strings_[row]);
      break;
  }
}

void Column::AppendColumn(const Column& other) {
  FUSIONDB_CHECK(PhysicalTypeOf(type_) == PhysicalTypeOf(other.type_),
                 "column type mismatch in bulk append");
  valid_.insert(valid_.end(), other.valid_.begin(), other.valid_.end());
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      break;
    case PhysicalType::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin(),
                      other.doubles_.end());
      break;
    case PhysicalType::kString:
      strings_.insert(strings_.end(), other.strings_.begin(),
                      other.strings_.end());
      break;
  }
}

int64_t Column::ByteSize() const {
  if (type_ == DataType::kString) {
    int64_t total = 0;
    for (const std::string& s : strings_) {
      total += static_cast<int64_t>(s.size());
    }
    return total;
  }
  return FixedWidthOf(type_) * static_cast<int64_t>(size());
}

}  // namespace fusiondb
