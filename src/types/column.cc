#include "types/column.h"

#include <algorithm>
#include <cstddef>

namespace fusiondb {

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null(type_);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(ints_[row] != 0);
    case DataType::kInt64:
      return Value::Int64(ints_[row]);
    case DataType::kDate:
      return Value::Date(ints_[row]);
    case DataType::kFloat64:
      return Value::Float64(doubles_[row]);
    case DataType::kString:
      return Value::String(strings_[row]);
  }
  return Value::Null(type_);
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt:
      AppendInt(v.int_value());
      break;
    case PhysicalType::kDouble:
      AppendDouble(PhysicalTypeOf(v.type()) == PhysicalType::kDouble
                       ? v.double_value()
                       : static_cast<double>(v.int_value()));
      break;
    case PhysicalType::kString:
      AppendString(v.string_value());
      break;
  }
}

void Column::AppendFrom(const Column& other, size_t row) {
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt:
      AppendInt(other.ints_[row]);
      break;
    case PhysicalType::kDouble:
      AppendDouble(other.NumericAt(row));
      break;
    case PhysicalType::kString:
      AppendString(other.strings_[row]);
      break;
  }
}

void Column::GrowthReserve(size_t extra) {
  size_t need = size() + extra;
  if (need <= valid_.capacity()) return;
  size_t target = std::max(need, size() * 2);
  valid_.reserve(target);
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt:
      ints_.reserve(target);
      break;
    case PhysicalType::kDouble:
      doubles_.reserve(target);
      break;
    case PhysicalType::kString:
      strings_.reserve(target);
      break;
  }
}

void Column::AppendColumn(const Column& other) {
  FUSIONDB_CHECK(PhysicalTypeOf(type_) == PhysicalTypeOf(other.type_),
                 "column type mismatch in bulk append");
  GrowthReserve(other.size());
  valid_.insert(valid_.end(), other.valid_.begin(), other.valid_.end());
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      break;
    case PhysicalType::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin(),
                      other.doubles_.end());
      break;
    case PhysicalType::kString:
      strings_.insert(strings_.end(), other.strings_.begin(),
                      other.strings_.end());
      break;
  }
}

void Column::AppendRange(const Column& src, size_t begin, size_t count) {
  FUSIONDB_CHECK(PhysicalTypeOf(type_) == PhysicalTypeOf(src.type_),
                 "column type mismatch in range append");
  GrowthReserve(count);
  auto vb = src.valid_.begin() + static_cast<ptrdiff_t>(begin);
  valid_.insert(valid_.end(), vb, vb + static_cast<ptrdiff_t>(count));
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt: {
      auto b = src.ints_.begin() + static_cast<ptrdiff_t>(begin);
      ints_.insert(ints_.end(), b, b + static_cast<ptrdiff_t>(count));
      break;
    }
    case PhysicalType::kDouble: {
      auto b = src.doubles_.begin() + static_cast<ptrdiff_t>(begin);
      doubles_.insert(doubles_.end(), b, b + static_cast<ptrdiff_t>(count));
      break;
    }
    case PhysicalType::kString: {
      auto b = src.strings_.begin() + static_cast<ptrdiff_t>(begin);
      strings_.insert(strings_.end(), b, b + static_cast<ptrdiff_t>(count));
      break;
    }
  }
}

Column Column::Gather(const uint32_t* sel, size_t n) const {
  Column out(type_);
  out.Reserve(n);
  out.valid_.resize(n);
  const uint8_t* valid = valid_.data();
  for (size_t i = 0; i < n; ++i) out.valid_[i] = valid[sel[i]];
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt: {
      out.ints_.resize(n);
      const int64_t* src = ints_.data();
      for (size_t i = 0; i < n; ++i) out.ints_[i] = src[sel[i]];
      break;
    }
    case PhysicalType::kDouble: {
      out.doubles_.resize(n);
      const double* src = doubles_.data();
      for (size_t i = 0; i < n; ++i) out.doubles_[i] = src[sel[i]];
      break;
    }
    case PhysicalType::kString: {
      out.strings_.resize(n);
      for (size_t i = 0; i < n; ++i) out.strings_[i] = strings_[sel[i]];
      break;
    }
  }
  return out;
}

int64_t Column::ByteSize() const {
  if (type_ == DataType::kString) {
    int64_t total = 0;
    for (const std::string& s : strings_) {
      total += static_cast<int64_t>(s.size());
    }
    return total;
  }
  return FixedWidthOf(type_) * static_cast<int64_t>(size());
}

}  // namespace fusiondb
