#include "types/schema.h"

#include <sstream>

namespace fusiondb {

Result<ColumnInfo> Schema::FindByName(const std::string& name) const {
  const ColumnInfo* found = nullptr;
  for (const ColumnInfo& c : columns_) {
    if (c.name == name) {
      if (found != nullptr) {
        return Status::InvalidArgument("ambiguous column name: " + name);
      }
      found = &c;
    }
  }
  if (found == nullptr) {
    return Status::InvalidArgument("no such column: " + name);
  }
  return *found;
}

Result<DataType> Schema::TypeOf(ColumnId id) const {
  int idx = IndexOf(id);
  if (idx < 0) {
    return Status::PlanError("unbound column id " + std::to_string(id));
  }
  return columns_[idx].type;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name << "#" << columns_[i].id << ":"
       << DataTypeName(columns_[i].type);
  }
  os << "]";
  return os.str();
}

}  // namespace fusiondb
