// Chunk: a horizontal slice of rows, one Column per schema position.
#ifndef FUSIONDB_TYPES_CHUNK_H_
#define FUSIONDB_TYPES_CHUNK_H_

#include <vector>

#include "types/column.h"

namespace fusiondb {

/// The unit of data flow between execution operators. Columns are positional
/// with respect to the producing operator's Schema.
struct Chunk {
  std::vector<Column> columns;

  size_t num_rows() const { return columns.empty() ? 0 : columns[0].size(); }
  size_t num_columns() const { return columns.size(); }

  /// A chunk with the given column types and no rows.
  static Chunk Empty(const std::vector<DataType>& types) {
    Chunk c;
    c.columns.reserve(types.size());
    for (DataType t : types) c.columns.emplace_back(t);
    return c;
  }

  /// Appends row `row` of `src` (same layout) to this chunk.
  void AppendRowFrom(const Chunk& src, size_t row) {
    for (size_t i = 0; i < columns.size(); ++i) {
      columns[i].AppendFrom(src.columns[i], row);
    }
  }

  /// Bulk-appends all rows of `src` (same layout).
  void AppendChunk(const Chunk& src) {
    for (size_t i = 0; i < columns.size(); ++i) {
      columns[i].AppendColumn(src.columns[i]);
    }
  }
};

}  // namespace fusiondb

#endif  // FUSIONDB_TYPES_CHUNK_H_
