// Chunk: a horizontal slice of rows, one Column per schema position.
#ifndef FUSIONDB_TYPES_CHUNK_H_
#define FUSIONDB_TYPES_CHUNK_H_

#include <vector>

#include "types/column.h"

namespace fusiondb {

/// The unit of data flow between execution operators. Columns are positional
/// with respect to the producing operator's Schema.
struct Chunk {
  std::vector<Column> columns;

  size_t num_rows() const { return columns.empty() ? 0 : columns[0].size(); }
  size_t num_columns() const { return columns.size(); }

  /// A chunk with the given column types and no rows.
  static Chunk Empty(const std::vector<DataType>& types) {
    Chunk c;
    c.columns.reserve(types.size());
    for (DataType t : types) c.columns.emplace_back(t);
    return c;
  }

  /// Appends row `row` of `src` (same layout) to this chunk.
  void AppendRowFrom(const Chunk& src, size_t row) {
    for (size_t i = 0; i < columns.size(); ++i) {
      columns[i].AppendFrom(src.columns[i], row);
    }
  }

  /// Bulk-appends all rows of `src` (same layout). Each column reserves its
  /// destination before copying.
  void AppendChunk(const Chunk& src) {
    for (size_t i = 0; i < columns.size(); ++i) {
      columns[i].AppendColumn(src.columns[i]);
    }
  }

  /// Bulk-appends the contiguous rows [begin, begin + count) of `src`.
  void AppendRange(const Chunk& src, size_t begin, size_t count) {
    for (size_t i = 0; i < columns.size(); ++i) {
      columns[i].AppendRange(src.columns[i], begin, count);
    }
  }

  /// A new chunk holding the selected rows of every column, capacity
  /// reserved up front — the bulk replacement for per-row AppendRowFrom
  /// copy loops.
  Chunk Gather(const SelVector& sel) const {
    Chunk out;
    out.columns.reserve(columns.size());
    for (const Column& c : columns) out.columns.push_back(c.Gather(sel));
    return out;
  }
};

}  // namespace fusiondb

#endif  // FUSIONDB_TYPES_CHUNK_H_
