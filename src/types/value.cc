#include "types/value.h"

#include <cmath>
#include <sstream>

namespace fusiondb {

bool Value::operator==(const Value& other) const {
  if (is_null_ || other.is_null_) return is_null_ && other.is_null_;
  PhysicalType pa = PhysicalTypeOf(type_);
  PhysicalType pb = PhysicalTypeOf(other.type_);
  if (pa != pb) return false;
  switch (pa) {
    case PhysicalType::kInt:
      return int_ == other.int_;
    case PhysicalType::kDouble:
      return double_ == other.double_;
    case PhysicalType::kString:
      return string_ == other.string_;
  }
  return false;
}

int Value::Compare(const Value& other) const {
  if (is_null_ && other.is_null_) return 0;
  if (is_null_) return -1;
  if (other.is_null_) return 1;
  PhysicalType pa = PhysicalTypeOf(type_);
  PhysicalType pb = PhysicalTypeOf(other.type_);
  if (pa == PhysicalType::kString || pb == PhysicalType::kString) {
    if (pa != pb) return pa < pb ? -1 : 1;
    return string_.compare(other.string_) < 0
               ? -1
               : (string_ == other.string_ ? 0 : 1);
  }
  // Numeric (possibly mixed int/double): compare as double.
  double a = AsDouble();
  double b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

size_t Value::Hash() const {
  if (is_null_) return 0x9e3779b97f4a7c15ULL;
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt:
      return std::hash<int64_t>()(int_);
    case PhysicalType::kDouble:
      return std::hash<double>()(double_);
    case PhysicalType::kString:
      return std::hash<std::string>()(string_);
  }
  return 0;
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  std::ostringstream os;
  switch (type_) {
    case DataType::kBool:
      os << (int_ != 0 ? "true" : "false");
      break;
    case DataType::kInt64:
    case DataType::kDate:
      os << int_;
      break;
    case DataType::kFloat64:
      os << double_;
      break;
    case DataType::kString:
      os << '\'' << string_ << '\'';
      break;
  }
  return os.str();
}

}  // namespace fusiondb
