// Logical data types supported by FusionDB.
#ifndef FUSIONDB_TYPES_DATA_TYPE_H_
#define FUSIONDB_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string>

namespace fusiondb {

/// The scalar types the engine understands. Storage classes:
///   kBool, kInt64, kDate -> int64_t
///   kFloat64             -> double
///   kString              -> std::string
/// kDate is a logical alias over int64 day numbers (TPC-DS surrogate keys
/// for dates are plain integers, which is all the benchmark needs).
enum class DataType : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
  kDate = 4,
};

/// Physical representation classes used by Column and Value.
enum class PhysicalType : uint8_t {
  kInt = 0,     // bool / int64 / date
  kDouble = 1,  // float64
  kString = 2,  // string
};

inline PhysicalType PhysicalTypeOf(DataType t) {
  switch (t) {
    case DataType::kFloat64:
      return PhysicalType::kDouble;
    case DataType::kString:
      return PhysicalType::kString;
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kDate:
      return PhysicalType::kInt;
  }
  return PhysicalType::kInt;
}

inline const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
  }
  return "unknown";
}

/// True when values of the two types can be compared / combined numerically
/// without an explicit cast (int64 vs float64 promote to float64).
inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat64 ||
         t == DataType::kDate;
}

/// Width in bytes of one value for scan-cost accounting (strings use their
/// actual length; this is the fixed-width case).
inline int64_t FixedWidthOf(DataType t) {
  switch (t) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDate:
    case DataType::kFloat64:
      return 8;
    case DataType::kString:
      return 0;  // variable
  }
  return 8;
}

}  // namespace fusiondb

#endif  // FUSIONDB_TYPES_DATA_TYPE_H_
