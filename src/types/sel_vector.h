// SelVector: a selection vector — the row indexes of a chunk that survive a
// predicate, in ascending order. Filters narrow a SelVector instead of
// producing byte masks, so downstream work (further conjuncts, gathers,
// masked aggregation) touches only surviving rows.
#ifndef FUSIONDB_TYPES_SEL_VECTOR_H_
#define FUSIONDB_TYPES_SEL_VECTOR_H_

#include <cstdint>
#include <vector>

namespace fusiondb {

/// An ascending list of row indexes into a chunk. Chunks are bounded by the
/// executor's chunk size, so 32-bit indexes always suffice and halve the
/// selection's cache footprint relative to size_t.
class SelVector {
 public:
  SelVector() = default;

  /// The identity selection [0, n): every row selected.
  static SelVector Dense(size_t n) {
    SelVector s;
    s.sel_.resize(n);
    for (size_t i = 0; i < n; ++i) s.sel_[i] = static_cast<uint32_t>(i);
    return s;
  }

  size_t size() const { return sel_.size(); }
  bool empty() const { return sel_.empty(); }
  uint32_t operator[](size_t i) const { return sel_[i]; }
  const uint32_t* data() const { return sel_.data(); }

  void clear() { sel_.clear(); }
  void reserve(size_t n) { sel_.reserve(n); }
  void push_back(uint32_t row) { sel_.push_back(row); }
  /// Drops all but the first `n` entries (used by in-place narrowing).
  void resize(size_t n) { sel_.resize(n); }

  std::vector<uint32_t>& indexes() { return sel_; }
  const std::vector<uint32_t>& indexes() const { return sel_; }

  auto begin() const { return sel_.begin(); }
  auto end() const { return sel_.end(); }

  /// Expands to a byte mask of width `n` (1 = selected). Used where random
  /// membership tests beat an index walk (window partitions).
  std::vector<uint8_t> ToMask(size_t n) const {
    std::vector<uint8_t> mask(n, 0);
    for (uint32_t r : sel_) mask[r] = 1;
    return mask;
  }

  /// Intersection of two ascending selections (two-pointer merge).
  static SelVector Intersect(const SelVector& a, const SelVector& b) {
    SelVector out;
    out.reserve(a.size() < b.size() ? a.size() : b.size());
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        out.push_back(a[i]);
        ++i;
        ++j;
      }
    }
    return out;
  }

  /// Union of two ascending selections (two-pointer merge, deduplicating).
  static SelVector Union(const SelVector& a, const SelVector& b) {
    SelVector out;
    out.reserve(a.size() + b.size());
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        out.push_back(a[i++]);
      } else if (b[j] < a[i]) {
        out.push_back(b[j++]);
      } else {
        out.push_back(a[i]);
        ++i;
        ++j;
      }
    }
    while (i < a.size()) out.push_back(a[i++]);
    while (j < b.size()) out.push_back(b[j++]);
    return out;
  }

  /// Removes every index in ascending `remove` from this selection.
  void Subtract(const SelVector& remove) {
    size_t out = 0;
    size_t j = 0;
    for (size_t i = 0; i < sel_.size(); ++i) {
      while (j < remove.size() && remove[j] < sel_[i]) ++j;
      if (j < remove.size() && remove[j] == sel_[i]) continue;
      sel_[out++] = sel_[i];
    }
    sel_.resize(out);
  }

 private:
  std::vector<uint32_t> sel_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_TYPES_SEL_VECTOR_H_
