// Value: a single, possibly-NULL scalar. Used for literals, group-by keys
// and row-at-a-time expression evaluation.
#ifndef FUSIONDB_TYPES_VALUE_H_
#define FUSIONDB_TYPES_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "types/data_type.h"

namespace fusiondb {

/// A tagged scalar. NULL values keep their declared type so expression
/// typing stays sound. Comparison follows SQL semantics only where the
/// caller implements them; Value's operator== is *structural* (NULL == NULL)
/// so it can serve as a hash-table key for grouping and distinct.
class Value {
 public:
  Value() : type_(DataType::kInt64), is_null_(true) {}

  static Value Null(DataType type) {
    Value v;
    v.type_ = type;
    v.is_null_ = true;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = DataType::kBool;
    v.is_null_ = false;
    v.int_ = b ? 1 : 0;
    return v;
  }
  static Value Int64(int64_t i) {
    Value v;
    v.type_ = DataType::kInt64;
    v.is_null_ = false;
    v.int_ = i;
    return v;
  }
  static Value Date(int64_t day) {
    Value v;
    v.type_ = DataType::kDate;
    v.is_null_ = false;
    v.int_ = day;
    return v;
  }
  static Value Float64(double d) {
    Value v;
    v.type_ = DataType::kFloat64;
    v.is_null_ = false;
    v.double_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = DataType::kString;
    v.is_null_ = false;
    v.string_ = std::move(s);
    return v;
  }

  DataType type() const { return type_; }
  bool is_null() const { return is_null_; }

  /// Typed accessors; only meaningful when !is_null() and the physical type
  /// matches.
  bool bool_value() const { return int_ != 0; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return string_; }

  /// Numeric value promoted to double (int64/date/float64).
  double AsDouble() const {
    return PhysicalTypeOf(type_) == PhysicalType::kDouble
               ? double_
               : static_cast<double>(int_);
  }

  /// Structural equality: NULLs of any type compare equal to each other and
  /// unequal to non-NULLs; numeric values compare within their physical
  /// class (int64 vs date are interchangeable, int vs double are not).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for sorting (NULLs first, then by value). Returns <0, 0, >0.
  int Compare(const Value& other) const;

  size_t Hash() const;

  std::string ToString() const;

 private:
  DataType type_;
  bool is_null_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

/// Hash functor for composite keys (group-by / distinct / join keys).
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t h = 14695981039346656037ULL;
    for (const Value& v : vs) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

}  // namespace fusiondb

#endif  // FUSIONDB_TYPES_VALUE_H_
