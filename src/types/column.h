// Column: a typed vector of values with a validity (non-NULL) mask.
// FusionDB's execution is chunk-at-a-time over these.
#ifndef FUSIONDB_TYPES_COLUMN_H_
#define FUSIONDB_TYPES_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "types/data_type.h"
#include "types/sel_vector.h"
#include "types/value.h"

namespace fusiondb {

/// A contiguous run of values of one type. Bool/int64/date share the int64
/// buffer; float64 uses the double buffer; string its own. Only the buffer
/// matching the column's physical type is populated.
class Column {
 public:
  Column() : type_(DataType::kInt64) {}
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  void Reserve(size_t n) {
    valid_.reserve(n);
    switch (PhysicalTypeOf(type_)) {
      case PhysicalType::kInt:
        ints_.reserve(n);
        break;
      case PhysicalType::kDouble:
        doubles_.reserve(n);
        break;
      case PhysicalType::kString:
        strings_.reserve(n);
        break;
    }
  }

  bool IsNull(size_t row) const { return valid_[row] == 0; }
  bool IsValid(size_t row) const { return valid_[row] != 0; }

  int64_t IntAt(size_t row) const { return ints_[row]; }
  bool BoolAt(size_t row) const { return ints_[row] != 0; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const { return strings_[row]; }

  /// Numeric value at `row` promoted to double. Precondition: valid row of a
  /// numeric column.
  double NumericAt(size_t row) const {
    return PhysicalTypeOf(type_) == PhysicalType::kDouble
               ? doubles_[row]
               : static_cast<double>(ints_[row]);
  }

  Value GetValue(size_t row) const;

  /// Raw buffer access for the vectorized kernels. Only the buffer matching
  /// the column's physical type is populated; the others are empty.
  const uint8_t* valid_data() const { return valid_.data(); }
  const int64_t* ints_data() const { return ints_.data(); }
  const double* doubles_data() const { return doubles_.data(); }
  const std::string* strings_data() const { return strings_.data(); }

  void AppendNull() {
    valid_.push_back(0);
    AppendDefaultSlot();
  }
  void AppendInt(int64_t v) {
    valid_.push_back(1);
    ints_.push_back(v);
  }
  void AppendBool(bool v) {
    valid_.push_back(1);
    ints_.push_back(v ? 1 : 0);
  }
  void AppendDouble(double v) {
    valid_.push_back(1);
    doubles_.push_back(v);
  }
  void AppendString(std::string v) {
    valid_.push_back(1);
    strings_.push_back(std::move(v));
  }
  /// Appends any Value whose physical type matches this column's.
  void AppendValue(const Value& v);

  /// Appends row `row` of `other` (same physical type) to this column.
  void AppendFrom(const Column& other, size_t row);

  /// Bulk-appends all rows of `other` (same physical type). Reserves the
  /// destination up front (geometric policy, so repeated appends stay
  /// amortized O(1)) instead of growing inside the element loop.
  void AppendColumn(const Column& other);

  /// Bulk-appends the contiguous rows [begin, begin + count) of `src`.
  /// The reserved, memcpy-friendly replacement for per-row AppendFrom
  /// slicing loops (scan chunking, sort/window output).
  void AppendRange(const Column& src, size_t begin, size_t count);

  /// A new column holding rows `sel[0..n)` of this column, in selection
  /// order, with capacity reserved up front. The bulk row-assembly
  /// primitive behind Filter, Limit, Sort and hash-join output.
  Column Gather(const uint32_t* sel, size_t n) const;
  Column Gather(const SelVector& sel) const {
    return Gather(sel.data(), sel.size());
  }

  /// Bytes this column would occupy on "disk": fixed width per row, or the
  /// sum of string lengths. Used for the scanned-bytes metric.
  int64_t ByteSize() const;

 private:
  /// Ensures room for `extra` more rows without defeating geometric growth:
  /// when the current capacity is short, grows to at least double the
  /// current size so repeated bulk appends stay amortized O(1).
  void GrowthReserve(size_t extra);

  void AppendDefaultSlot() {
    switch (PhysicalTypeOf(type_)) {
      case PhysicalType::kInt:
        ints_.push_back(0);
        break;
      case PhysicalType::kDouble:
        doubles_.push_back(0.0);
        break;
      case PhysicalType::kString:
        strings_.emplace_back();
        break;
    }
  }

  DataType type_;
  std::vector<uint8_t> valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_TYPES_COLUMN_H_
