#include "tpcds/queries_internal.h"
#include "tpcds/tpcds.h"

namespace fusiondb::tpcds {

const std::vector<TpcdsQuery>& Queries() {
  static const std::vector<TpcdsQuery>& queries = *new std::vector<TpcdsQuery>{
      // The paper's studied queries (plans change under fusion).
      {"q01", "V.A", true, internal::BuildQ01},
      {"q09", "V.B", true, internal::BuildQ09},
      {"q23", "V.C", true, internal::BuildQ23},
      {"q28", "V.B", true, internal::BuildQ28},
      {"q30", "V.A", true, internal::BuildQ30},
      {"q65", "V.A", true, internal::BuildQ65},
      {"q65v", "I", true, internal::BuildQ65V},
      {"q88", "V.B", true, internal::BuildQ88},
      {"q95", "V.D", true, internal::BuildQ95},
      // Filler workload (plans unchanged).
      {"q03", "", false, internal::BuildQ03},
      {"q07", "", false, internal::BuildQ07},
      {"q19", "", false, internal::BuildQ19},
      {"q26", "", false, internal::BuildQ26},
      {"q42", "", false, internal::BuildQ42},
      {"q52", "", false, internal::BuildQ52},
      {"q55", "", false, internal::BuildQ55},
      {"q96", "", false, internal::BuildQ96},
      {"q99", "", false, internal::BuildQ99},
  };
  return queries;
}

Result<TpcdsQuery> QueryByName(const std::string& name) {
  for (const TpcdsQuery& q : Queries()) {
    if (q.name == name) return q;
  }
  return Status::InvalidArgument("no such TPC-DS query: " + name);
}

}  // namespace fusiondb::tpcds
