// Deterministic TPC-DS-shaped data generation.
#include <cmath>
#include <random>
#include <string>

#include "tpcds/tpcds.h"

namespace fusiondb::tpcds {

namespace {

// Calendar span: 1998-01-01 .. 2003-12-31 (2191 days), matching TPC-DS's
// active sales window. d_month_seq = (year-1900)*12 + (moy-1), so the
// paper's "d_month_seq BETWEEN 1212 AND 1223" literals select year 2001.
constexpr int kFirstYear = 1998;
constexpr int kLastYear = 2003;
constexpr int64_t kDateSkBase = 2450815;  // TPC-DS-style surrogate base
constexpr int64_t kPartitionWidthDays = 30;

constexpr int kDaysPerMonth[12] = {31, 28, 31, 30, 31, 30,
                                   31, 31, 30, 31, 30, 31};

int DaysInYear(int year) { return year % 4 == 0 ? 366 : 365; }
int DaysInMonth(int year, int month) {
  if (month == 2 && year % 4 == 0) return 29;
  return kDaysPerMonth[month - 1];
}

int TotalDays() {
  int days = 0;
  for (int y = kFirstYear; y <= kLastYear; ++y) days += DaysInYear(y);
  return days;
}

const char* kCategories[] = {"Music",    "Books", "Electronics", "Home",
                             "Jewelry",  "Men",   "Women",       "Children",
                             "Shoes",    "Sports"};
const char* kSizes[] = {"small", "medium", "large", "extra large", "petite",
                        "N/A"};
const char* kColors[] = {"red",    "blue",   "green",  "yellow", "black",
                         "white",  "purple", "orange", "pink",   "brown",
                         "khaki",  "olive",  "navy",   "maroon", "plum",
                         "salmon", "snow",   "tan",    "violet", "wheat"};
const char* kStates[] = {"TN", "GA", "AL", "SC", "NC", "KY", "VA", "FL",
                        "MS", "IL"};
const char* kBuyPotential[] = {"0-500",     "501-1000",  "1001-5000",
                               "5001-10000", ">10000",   "Unknown"};
const char* kFirstNames[] = {"James", "Mary", "John",  "Patricia", "Robert",
                             "Linda", "Ana",  "David", "Lena",     "Mark"};
const char* kLastNames[] = {"Smith", "Jones", "Brown", "Davis", "Wilson",
                            "Clark", "Hall",  "Young", "King",  "Lee"};

class Generator {
 public:
  Generator(const TpcdsOptions& options, Catalog* catalog)
      : options_(options), rng_(options.seed), catalog_(catalog) {}

  Status Run() {
    total_days_ = TotalDays();
    FUSIONDB_RETURN_IF_ERROR(DateDim());
    FUSIONDB_RETURN_IF_ERROR(TimeDim());
    FUSIONDB_RETURN_IF_ERROR(Item());
    FUSIONDB_RETURN_IF_ERROR(Store());
    FUSIONDB_RETURN_IF_ERROR(CustomerAddress());
    FUSIONDB_RETURN_IF_ERROR(Customer());
    FUSIONDB_RETURN_IF_ERROR(HouseholdDemographics());
    FUSIONDB_RETURN_IF_ERROR(Reason());
    FUSIONDB_RETURN_IF_ERROR(WebSite());
    FUSIONDB_RETURN_IF_ERROR(Warehouse());
    FUSIONDB_RETURN_IF_ERROR(StoreSales());
    FUSIONDB_RETURN_IF_ERROR(StoreReturns());
    FUSIONDB_RETURN_IF_ERROR(WebSales());
    FUSIONDB_RETURN_IF_ERROR(WebReturns());
    FUSIONDB_RETURN_IF_ERROR(CatalogSales());
    return Status::OK();
  }

 private:
  int64_t ScaleCount(int64_t sf1_count, int64_t minimum) {
    return std::max<int64_t>(
        minimum, static_cast<int64_t>(std::llround(
                     static_cast<double>(sf1_count) * options_.scale)));
  }
  int64_t DimCount(int64_t sf1_count, int64_t minimum) {
    // Dimensions scale with the square root, like dsdgen's sub-linear dims.
    return std::max<int64_t>(
        minimum, static_cast<int64_t>(std::llround(
                     static_cast<double>(sf1_count) * std::sqrt(options_.scale))));
  }

  int64_t UniformInt(int64_t lo, int64_t hi) {  // inclusive
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng_);
  }
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng_);
  }
  bool Chance(double p) { return UniformDouble(0.0, 1.0) < p; }

  /// A possibly-NULL foreign key into [1, max].
  Value Fk(int64_t max, double null_rate = 0.02) {
    if (max <= 0 || Chance(null_rate)) return Value::Null(DataType::kInt64);
    return Value::Int64(UniformInt(1, max));
  }

  Value RandomDateSk() {
    return Value::Int64(kDateSkBase + UniformInt(0, total_days_ - 1));
  }

  Status DateDim() {
    TableBuilder b("date_dim",
                   {{"d_date_sk", DataType::kInt64},
                    {"d_year", DataType::kInt64},
                    {"d_moy", DataType::kInt64},
                    {"d_dom", DataType::kInt64},
                    {"d_qoy", DataType::kInt64},
                    {"d_month_seq", DataType::kInt64}});
    FUSIONDB_RETURN_IF_ERROR(b.SetPrimaryKey({"d_date_sk"}));
    int64_t sk = kDateSkBase;
    for (int y = kFirstYear; y <= kLastYear; ++y) {
      for (int m = 1; m <= 12; ++m) {
        for (int d = 1; d <= DaysInMonth(y, m); ++d) {
          FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
              {Value::Int64(sk++), Value::Int64(y), Value::Int64(m),
               Value::Int64(d), Value::Int64((m - 1) / 3 + 1),
               Value::Int64(static_cast<int64_t>(y - 1900) * 12 + (m - 1))}));
        }
      }
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status TimeDim() {
    TableBuilder b("time_dim", {{"t_time_sk", DataType::kInt64},
                                {"t_hour", DataType::kInt64},
                                {"t_minute", DataType::kInt64}});
    FUSIONDB_RETURN_IF_ERROR(b.SetPrimaryKey({"t_time_sk"}));
    for (int64_t i = 0; i < 1440; ++i) {
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {Value::Int64(i + 1), Value::Int64(i / 60), Value::Int64(i % 60)}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status Item() {
    item_count_ = DimCount(18000, 200);
    TableBuilder b("item", {{"i_item_sk", DataType::kInt64},
                            {"i_item_id", DataType::kString},
                            {"i_item_desc", DataType::kString},
                            {"i_brand_id", DataType::kInt64},
                            {"i_brand", DataType::kString},
                            {"i_category_id", DataType::kInt64},
                            {"i_category", DataType::kString},
                            {"i_size", DataType::kString},
                            {"i_color", DataType::kString},
                            {"i_manufact_id", DataType::kInt64},
                            {"i_current_price", DataType::kFloat64}});
    FUSIONDB_RETURN_IF_ERROR(b.SetPrimaryKey({"i_item_sk"}));
    for (int64_t i = 1; i <= item_count_; ++i) {
      int64_t brand = UniformInt(1, 1000);
      int cat = static_cast<int>(UniformInt(0, 9));
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {Value::Int64(i), Value::String("ITEM" + std::to_string(i)),
           Value::String("desc of item " + std::to_string(i)),
           Value::Int64(brand),
           Value::String("brand#" + std::to_string(brand)),
           Value::Int64(cat + 1), Value::String(kCategories[cat]),
           Value::String(kSizes[UniformInt(0, 5)]),
           Value::String(kColors[UniformInt(0, 19)]),
           Value::Int64(UniformInt(1, 1000)),
           Value::Float64(UniformDouble(0.5, 300.0))}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status Store() {
    store_count_ = DimCount(12, 4);
    TableBuilder b("store", {{"s_store_sk", DataType::kInt64},
                             {"s_store_id", DataType::kString},
                             {"s_store_name", DataType::kString},
                             {"s_state", DataType::kString},
                             {"s_city", DataType::kString}});
    FUSIONDB_RETURN_IF_ERROR(b.SetPrimaryKey({"s_store_sk"}));
    const char* names[] = {"ought", "able", "ese", "anti", "cally", "ation"};
    for (int64_t i = 1; i <= store_count_; ++i) {
      // (i-1) indexing keeps "TN" and "ese" present even at tiny scales,
      // where only a handful of stores exist (Q01 filters on s_state='TN',
      // Q88/Q96 on s_store_name='ese').
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {Value::Int64(i), Value::String("STORE" + std::to_string(i)),
           Value::String(names[(i + 1) % 6]),
           Value::String(kStates[(i - 1) % 10]),
           Value::String("city" + std::to_string(i % 7))}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status CustomerAddress() {
    address_count_ = ScaleCount(50000, 500);
    TableBuilder b("customer_address", {{"ca_address_sk", DataType::kInt64},
                                        {"ca_state", DataType::kString},
                                        {"ca_city", DataType::kString},
                                        {"ca_gmt_offset", DataType::kFloat64}});
    FUSIONDB_RETURN_IF_ERROR(b.SetPrimaryKey({"ca_address_sk"}));
    for (int64_t i = 1; i <= address_count_; ++i) {
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {Value::Int64(i), Value::String(kStates[UniformInt(0, 9)]),
           Value::String("city" + std::to_string(UniformInt(0, 30))),
           Value::Float64(-5.0 - static_cast<double>(UniformInt(0, 3)))}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status Customer() {
    customer_count_ = ScaleCount(100000, 1000);
    TableBuilder b("customer", {{"c_customer_sk", DataType::kInt64},
                                {"c_customer_id", DataType::kString},
                                {"c_first_name", DataType::kString},
                                {"c_last_name", DataType::kString},
                                {"c_current_addr_sk", DataType::kInt64}});
    FUSIONDB_RETURN_IF_ERROR(b.SetPrimaryKey({"c_customer_sk"}));
    for (int64_t i = 1; i <= customer_count_; ++i) {
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {Value::Int64(i), Value::String("CUST" + std::to_string(i)),
           Value::String(kFirstNames[UniformInt(0, 9)]),
           Value::String(kLastNames[UniformInt(0, 9)]),
           Fk(address_count_, 0.01)}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status HouseholdDemographics() {
    TableBuilder b("household_demographics",
                   {{"hd_demo_sk", DataType::kInt64},
                    {"hd_dep_count", DataType::kInt64},
                    {"hd_vehicle_count", DataType::kInt64},
                    {"hd_buy_potential", DataType::kString}});
    FUSIONDB_RETURN_IF_ERROR(b.SetPrimaryKey({"hd_demo_sk"}));
    hdemo_count_ = 7200;
    for (int64_t i = 1; i <= hdemo_count_; ++i) {
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {Value::Int64(i), Value::Int64(i % 10), Value::Int64(i % 5),
           Value::String(kBuyPotential[i % 6])}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status Reason() {
    TableBuilder b("reason", {{"r_reason_sk", DataType::kInt64},
                              {"r_reason_desc", DataType::kString}});
    FUSIONDB_RETURN_IF_ERROR(b.SetPrimaryKey({"r_reason_sk"}));
    for (int64_t i = 1; i <= 35; ++i) {
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {Value::Int64(i), Value::String("reason " + std::to_string(i))}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status WebSite() {
    web_site_count_ = DimCount(30, 2);
    TableBuilder b("web_site", {{"web_site_sk", DataType::kInt64},
                                {"web_site_id", DataType::kString},
                                {"web_company_name", DataType::kString}});
    FUSIONDB_RETURN_IF_ERROR(b.SetPrimaryKey({"web_site_sk"}));
    const char* companies[] = {"pri", "corp", "site", "ally"};
    for (int64_t i = 1; i <= web_site_count_; ++i) {
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {Value::Int64(i), Value::String("WEB" + std::to_string(i)),
           Value::String(companies[i % 4])}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status Warehouse() {
    warehouse_count_ = 5;
    TableBuilder b("warehouse", {{"w_warehouse_sk", DataType::kInt64},
                                 {"w_warehouse_name", DataType::kString}});
    FUSIONDB_RETURN_IF_ERROR(b.SetPrimaryKey({"w_warehouse_sk"}));
    for (int64_t i = 1; i <= warehouse_count_; ++i) {
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {Value::Int64(i), Value::String("wh" + std::to_string(i))}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status StoreSales() {
    int64_t rows = ScaleCount(2880404, 5000);
    TableBuilder b("store_sales",
                   {{"ss_sold_date_sk", DataType::kInt64},
                    {"ss_sold_time_sk", DataType::kInt64},
                    {"ss_item_sk", DataType::kInt64},
                    {"ss_customer_sk", DataType::kInt64},
                    {"ss_hdemo_sk", DataType::kInt64},
                    {"ss_addr_sk", DataType::kInt64},
                    {"ss_store_sk", DataType::kInt64},
                    {"ss_quantity", DataType::kInt64},
                    {"ss_wholesale_cost", DataType::kFloat64},
                    {"ss_list_price", DataType::kFloat64},
                    {"ss_sales_price", DataType::kFloat64},
                    {"ss_ext_discount_amt", DataType::kFloat64},
                    {"ss_ext_sales_price", DataType::kFloat64},
                    {"ss_coupon_amt", DataType::kFloat64},
                    {"ss_net_profit", DataType::kFloat64}});
    FUSIONDB_RETURN_IF_ERROR(
        b.PartitionBy("ss_sold_date_sk", kPartitionWidthDays));
    for (int64_t i = 0; i < rows; ++i) {
      int64_t qty = UniformInt(1, 100);
      double list = UniformDouble(1.0, 200.0);
      double sales = list * UniformDouble(0.3, 1.0);
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {RandomDateSk(), Value::Int64(UniformInt(1, 1440)),
           Fk(item_count_, 0.0), Fk(customer_count_), Fk(hdemo_count_),
           Fk(address_count_), Fk(store_count_), Value::Int64(qty),
           Value::Float64(list * 0.6), Value::Float64(list),
           Value::Float64(sales),
           Value::Float64(UniformDouble(0.0, 50.0)),
           Value::Float64(sales * static_cast<double>(qty)),
           Value::Float64(Chance(0.2) ? UniformDouble(0.0, 30.0) : 0.0),
           Value::Float64(UniformDouble(-50.0, 150.0))}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status StoreReturns() {
    int64_t rows = ScaleCount(287514, 1000);
    TableBuilder b("store_returns",
                   {{"sr_returned_date_sk", DataType::kInt64},
                    {"sr_item_sk", DataType::kInt64},
                    {"sr_customer_sk", DataType::kInt64},
                    {"sr_store_sk", DataType::kInt64},
                    {"sr_reason_sk", DataType::kInt64},
                    {"sr_return_quantity", DataType::kInt64},
                    {"sr_return_amt", DataType::kFloat64}});
    FUSIONDB_RETURN_IF_ERROR(
        b.PartitionBy("sr_returned_date_sk", kPartitionWidthDays));
    for (int64_t i = 0; i < rows; ++i) {
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {RandomDateSk(), Fk(item_count_, 0.0), Fk(customer_count_),
           Fk(store_count_), Fk(35), Value::Int64(UniformInt(1, 20)),
           Value::Float64(UniformDouble(1.0, 400.0))}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status WebSales() {
    int64_t rows = ScaleCount(719384, 2000);
    web_orders_ = std::max<int64_t>(1, rows / 3);  // ~3 lines per order
    TableBuilder b("web_sales",
                   {{"ws_sold_date_sk", DataType::kInt64},
                    {"ws_item_sk", DataType::kInt64},
                    {"ws_bill_customer_sk", DataType::kInt64},
                    {"ws_order_number", DataType::kInt64},
                    {"ws_warehouse_sk", DataType::kInt64},
                    {"ws_web_site_sk", DataType::kInt64},
                    {"ws_ship_addr_sk", DataType::kInt64},
                    {"ws_quantity", DataType::kInt64},
                    {"ws_list_price", DataType::kFloat64},
                    {"ws_sales_price", DataType::kFloat64},
                    {"ws_ext_ship_cost", DataType::kFloat64},
                    {"ws_net_profit", DataType::kFloat64}});
    FUSIONDB_RETURN_IF_ERROR(
        b.PartitionBy("ws_sold_date_sk", kPartitionWidthDays));
    for (int64_t i = 0; i < rows; ++i) {
      double list = UniformDouble(1.0, 250.0);
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {RandomDateSk(), Fk(item_count_, 0.0), Fk(customer_count_),
           Value::Int64(UniformInt(1, web_orders_)),
           Fk(warehouse_count_, 0.01), Fk(web_site_count_, 0.01),
           Fk(address_count_), Value::Int64(UniformInt(1, 100)),
           Value::Float64(list), Value::Float64(list * UniformDouble(0.3, 1.0)),
           Value::Float64(UniformDouble(0.0, 40.0)),
           Value::Float64(UniformDouble(-60.0, 180.0))}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status WebReturns() {
    int64_t rows = ScaleCount(71763, 300);
    TableBuilder b("web_returns",
                   {{"wr_returned_date_sk", DataType::kInt64},
                    {"wr_order_number", DataType::kInt64},
                    {"wr_item_sk", DataType::kInt64},
                    {"wr_returning_customer_sk", DataType::kInt64},
                    {"wr_return_amt", DataType::kFloat64}});
    FUSIONDB_RETURN_IF_ERROR(
        b.PartitionBy("wr_returned_date_sk", kPartitionWidthDays));
    for (int64_t i = 0; i < rows; ++i) {
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {RandomDateSk(), Value::Int64(UniformInt(1, web_orders_)),
           Fk(item_count_, 0.0), Fk(customer_count_),
           Value::Float64(UniformDouble(1.0, 500.0))}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  Status CatalogSales() {
    int64_t rows = ScaleCount(1441548, 3000);
    TableBuilder b("catalog_sales",
                   {{"cs_sold_date_sk", DataType::kInt64},
                    {"cs_item_sk", DataType::kInt64},
                    {"cs_bill_customer_sk", DataType::kInt64},
                    {"cs_order_number", DataType::kInt64},
                    {"cs_quantity", DataType::kInt64},
                    {"cs_list_price", DataType::kFloat64},
                    {"cs_sales_price", DataType::kFloat64},
                    {"cs_net_profit", DataType::kFloat64}});
    FUSIONDB_RETURN_IF_ERROR(
        b.PartitionBy("cs_sold_date_sk", kPartitionWidthDays));
    for (int64_t i = 0; i < rows; ++i) {
      double list = UniformDouble(1.0, 300.0);
      FUSIONDB_RETURN_IF_ERROR(b.AppendRow(
          {RandomDateSk(), Fk(item_count_, 0.0), Fk(customer_count_),
           Value::Int64(i / 2 + 1), Value::Int64(UniformInt(1, 100)),
           Value::Float64(list), Value::Float64(list * UniformDouble(0.3, 1.0)),
           Value::Float64(UniformDouble(-70.0, 200.0))}));
    }
    FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, b.Build());
    return catalog_->RegisterTable(std::move(t));
  }

  TpcdsOptions options_;
  std::mt19937_64 rng_;
  Catalog* catalog_;
  int total_days_ = 0;
  int64_t item_count_ = 0;
  int64_t store_count_ = 0;
  int64_t customer_count_ = 0;
  int64_t address_count_ = 0;
  int64_t hdemo_count_ = 0;
  int64_t web_site_count_ = 0;
  int64_t warehouse_count_ = 0;
  int64_t web_orders_ = 0;
};

}  // namespace

Status BuildTpcdsCatalog(const TpcdsOptions& options, Catalog* catalog) {
  if (options.scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }
  Generator gen(options, catalog);
  return gen.Run();
}

}  // namespace fusiondb::tpcds
