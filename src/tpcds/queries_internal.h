// Per-query plan builders. Split between the paper's studied queries
// (queries_fusable.cc) and the non-applicable filler workload
// (queries_filler.cc); registered in queries.cc.
#ifndef FUSIONDB_TPCDS_QUERIES_INTERNAL_H_
#define FUSIONDB_TPCDS_QUERIES_INTERNAL_H_

#include "plan/plan_builder.h"
#include "tpcds/tpcds.h"

namespace fusiondb::tpcds::internal {

/// Scans `table` reading `columns`; the workhorse of every query builder.
Result<PlanBuilder> ScanTable(const Catalog& catalog, PlanContext* ctx,
                              const std::string& table,
                              std::vector<std::string> columns);

// Section V.A — window-rewrite queries.
Result<PlanPtr> BuildQ01(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ30(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ65(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ65V(const Catalog&, PlanContext*);  // Section I variant

// Section V.B — scalar-aggregate merges.
Result<PlanPtr> BuildQ09(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ28(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ88(const Catalog&, PlanContext*);

// Section V.C — union refactoring.
Result<PlanPtr> BuildQ23(const Catalog&, PlanContext*);

// Section V.D — relational-aggregate unification.
Result<PlanPtr> BuildQ95(const Catalog&, PlanContext*);

// Filler workload (plans unchanged by the fusion rules).
Result<PlanPtr> BuildQ03(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ07(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ19(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ26(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ42(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ52(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ55(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ96(const Catalog&, PlanContext*);
Result<PlanPtr> BuildQ99(const Catalog&, PlanContext*);

}  // namespace fusiondb::tpcds::internal

#endif  // FUSIONDB_TPCDS_QUERIES_INTERNAL_H_
