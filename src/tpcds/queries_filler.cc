// Non-applicable workload queries: classic star-join aggregations whose
// plans the fusion rules leave untouched. They stand in for the remainder
// of the 99-query benchmark when reproducing the paper's whole-workload
// number (a 14% overall improvement driven entirely by the applicable
// subset).
#include "expr/expr_builder.h"
#include "tpcds/queries_internal.h"

namespace fusiondb::tpcds::internal {

using namespace fusiondb::eb;  // NOLINT: expression factories

// --- Q03: brand revenue for a manufacturer in November ----------------------
Result<PlanPtr> BuildQ03(const Catalog& catalog, PlanContext* ctx) {
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder ss,
      ScanTable(catalog, ctx, "store_sales",
                {"ss_sold_date_sk", "ss_item_sk", "ss_ext_sales_price"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder dd, ScanTable(catalog, ctx, "date_dim",
                                {"d_date_sk", "d_year", "d_moy"}));
  dd.Filter(Eq(dd.Ref("d_moy"), Int(11)));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder item,
      ScanTable(catalog, ctx, "item",
                {"i_item_sk", "i_brand_id", "i_brand", "i_manufact_id"}));
  item.Filter(Le(item.Ref("i_manufact_id"), Int(50)));
  ss.JoinOn(JoinType::kInner, dd, {{"ss_sold_date_sk", "d_date_sk"}});
  ss.JoinOn(JoinType::kInner, item, {{"ss_item_sk", "i_item_sk"}});
  ss.Aggregate({"d_year", "i_brand_id", "i_brand"},
               {{"sum_agg", AggFunc::kSum, ss.Ref("ss_ext_sales_price"),
                 nullptr, false}});
  ss.Sort({{"d_year", true}, {"sum_agg", false}, {"i_brand_id", true}});
  ss.Limit(100);
  return ss.Build();
}

// --- Q07: demographic item averages -----------------------------------------
Result<PlanPtr> BuildQ07(const Catalog& catalog, PlanContext* ctx) {
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder ss,
      ScanTable(catalog, ctx, "store_sales",
                {"ss_sold_date_sk", "ss_item_sk", "ss_hdemo_sk", "ss_quantity",
                 "ss_list_price", "ss_coupon_amt", "ss_sales_price"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder dd,
      ScanTable(catalog, ctx, "date_dim", {"d_date_sk", "d_year"}));
  dd.Filter(Eq(dd.Ref("d_year"), Int(2000)));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder hd, ScanTable(catalog, ctx, "household_demographics",
                                {"hd_demo_sk", "hd_dep_count"}));
  hd.Filter(Eq(hd.Ref("hd_dep_count"), Int(3)));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder item,
      ScanTable(catalog, ctx, "item", {"i_item_sk", "i_item_id"}));
  ss.JoinOn(JoinType::kInner, dd, {{"ss_sold_date_sk", "d_date_sk"}});
  ss.JoinOn(JoinType::kInner, hd, {{"ss_hdemo_sk", "hd_demo_sk"}});
  ss.JoinOn(JoinType::kInner, item, {{"ss_item_sk", "i_item_sk"}});
  ss.Aggregate({"i_item_id"},
               {{"agg1", AggFunc::kAvg, ss.Ref("ss_quantity"), nullptr, false},
                {"agg2", AggFunc::kAvg, ss.Ref("ss_list_price"), nullptr,
                 false},
                {"agg3", AggFunc::kAvg, ss.Ref("ss_coupon_amt"), nullptr,
                 false},
                {"agg4", AggFunc::kAvg, ss.Ref("ss_sales_price"), nullptr,
                 false}});
  ss.Sort({{"i_item_id", true}});
  ss.Limit(100);
  return ss.Build();
}

// --- Q19: brand revenue by category for one month ---------------------------
Result<PlanPtr> BuildQ19(const Catalog& catalog, PlanContext* ctx) {
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder ss,
      ScanTable(catalog, ctx, "store_sales",
                {"ss_sold_date_sk", "ss_item_sk", "ss_customer_sk",
                 "ss_ext_sales_price"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder dd, ScanTable(catalog, ctx, "date_dim",
                                {"d_date_sk", "d_year", "d_moy"}));
  dd.Filter(And(Eq(dd.Ref("d_moy"), Int(11)), Eq(dd.Ref("d_year"), Int(1999))));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder item,
      ScanTable(catalog, ctx, "item",
                {"i_item_sk", "i_brand_id", "i_brand", "i_category"}));
  item.Filter(Eq(item.Ref("i_category"), Str("Books")));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder cust, ScanTable(catalog, ctx, "customer",
                                  {"c_customer_sk", "c_current_addr_sk"}));
  ss.JoinOn(JoinType::kInner, dd, {{"ss_sold_date_sk", "d_date_sk"}});
  ss.JoinOn(JoinType::kInner, item, {{"ss_item_sk", "i_item_sk"}});
  ss.JoinOn(JoinType::kInner, cust, {{"ss_customer_sk", "c_customer_sk"}});
  ss.Aggregate({"i_brand_id", "i_brand"},
               {{"ext_price", AggFunc::kSum, ss.Ref("ss_ext_sales_price"),
                 nullptr, false}});
  ss.Sort({{"ext_price", false}, {"i_brand_id", true}});
  ss.Limit(100);
  return ss.Build();
}

// --- Q26: catalog item averages ----------------------------------------------
Result<PlanPtr> BuildQ26(const Catalog& catalog, PlanContext* ctx) {
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder cs,
      ScanTable(catalog, ctx, "catalog_sales",
                {"cs_sold_date_sk", "cs_item_sk", "cs_quantity",
                 "cs_list_price", "cs_sales_price"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder dd,
      ScanTable(catalog, ctx, "date_dim", {"d_date_sk", "d_year"}));
  dd.Filter(Eq(dd.Ref("d_year"), Int(2000)));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder item,
      ScanTable(catalog, ctx, "item", {"i_item_sk", "i_item_id"}));
  cs.JoinOn(JoinType::kInner, dd, {{"cs_sold_date_sk", "d_date_sk"}});
  cs.JoinOn(JoinType::kInner, item, {{"cs_item_sk", "i_item_sk"}});
  cs.Aggregate({"i_item_id"},
               {{"agg1", AggFunc::kAvg, cs.Ref("cs_quantity"), nullptr, false},
                {"agg2", AggFunc::kAvg, cs.Ref("cs_list_price"), nullptr,
                 false},
                {"agg3", AggFunc::kAvg, cs.Ref("cs_sales_price"), nullptr,
                 false}});
  cs.Sort({{"i_item_id", true}});
  cs.Limit(100);
  return cs.Build();
}

namespace {

/// Shared shape of Q42/Q52/Q55: November revenue grouped by an item
/// attribute.
Result<PlanPtr> NovemberRevenue(const Catalog& catalog, PlanContext* ctx,
                                int64_t year,
                                const std::vector<std::string>& item_cols,
                                const std::vector<std::string>& group_by,
                                ExprPtr item_filter_col_value) {
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder ss,
      ScanTable(catalog, ctx, "store_sales",
                {"ss_sold_date_sk", "ss_item_sk", "ss_ext_sales_price"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder dd, ScanTable(catalog, ctx, "date_dim",
                                {"d_date_sk", "d_year", "d_moy"}));
  dd.Filter(And(Eq(dd.Ref("d_moy"), Int(11)), Eq(dd.Ref("d_year"), Int(year))));
  std::vector<std::string> cols = item_cols;
  cols.insert(cols.begin(), "i_item_sk");
  FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder item,
                            ScanTable(catalog, ctx, "item", cols));
  if (item_filter_col_value != nullptr) {
    item.Filter(item_filter_col_value);
  }
  ss.JoinOn(JoinType::kInner, dd, {{"ss_sold_date_sk", "d_date_sk"}});
  ss.JoinOn(JoinType::kInner, item, {{"ss_item_sk", "i_item_sk"}});
  std::vector<std::string> gb = group_by;
  ss.Aggregate(gb, {{"revenue", AggFunc::kSum, ss.Ref("ss_ext_sales_price"),
                     nullptr, false}});
  ss.Sort({{"revenue", false}});
  ss.Limit(100);
  return ss.Build();
}

}  // namespace

Result<PlanPtr> BuildQ42(const Catalog& catalog, PlanContext* ctx) {
  return NovemberRevenue(catalog, ctx, 2000,
                         {"i_category_id", "i_category"},
                         {"i_category_id", "i_category"}, nullptr);
}

Result<PlanPtr> BuildQ52(const Catalog& catalog, PlanContext* ctx) {
  return NovemberRevenue(catalog, ctx, 2000, {"i_brand_id", "i_brand"},
                         {"i_brand_id", "i_brand"}, nullptr);
}

Result<PlanPtr> BuildQ55(const Catalog& catalog, PlanContext* ctx) {
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder ss,
      ScanTable(catalog, ctx, "store_sales",
                {"ss_sold_date_sk", "ss_item_sk", "ss_ext_sales_price"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder dd, ScanTable(catalog, ctx, "date_dim",
                                {"d_date_sk", "d_year", "d_moy"}));
  dd.Filter(And(Eq(dd.Ref("d_moy"), Int(11)),
                Eq(dd.Ref("d_year"), Int(2001))));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder item,
      ScanTable(catalog, ctx, "item",
                {"i_item_sk", "i_brand_id", "i_brand", "i_manufact_id"}));
  item.Filter(Eq(item.Ref("i_manufact_id"), Int(28)));
  ss.JoinOn(JoinType::kInner, dd, {{"ss_sold_date_sk", "d_date_sk"}});
  ss.JoinOn(JoinType::kInner, item, {{"ss_item_sk", "i_item_sk"}});
  ss.Aggregate({"i_brand_id", "i_brand"},
               {{"ext_price", AggFunc::kSum, ss.Ref("ss_ext_sales_price"),
                 nullptr, false}});
  ss.Sort({{"ext_price", false}, {"i_brand_id", true}});
  ss.Limit(100);
  return ss.Build();
}

// --- Q96: evening shoppers count ---------------------------------------------
Result<PlanPtr> BuildQ96(const Catalog& catalog, PlanContext* ctx) {
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder ss,
      ScanTable(catalog, ctx, "store_sales",
                {"ss_sold_time_sk", "ss_hdemo_sk", "ss_store_sk"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder hd, ScanTable(catalog, ctx, "household_demographics",
                                {"hd_demo_sk", "hd_dep_count"}));
  hd.Filter(Eq(hd.Ref("hd_dep_count"), Int(5)));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder td,
      ScanTable(catalog, ctx, "time_dim", {"t_time_sk", "t_hour"}));
  td.Filter(Eq(td.Ref("t_hour"), Int(20)));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder st,
      ScanTable(catalog, ctx, "store", {"s_store_sk", "s_store_name"}));
  st.Filter(Eq(st.Ref("s_store_name"), Str("ese")));
  ss.JoinOn(JoinType::kInner, hd, {{"ss_hdemo_sk", "hd_demo_sk"}});
  ss.JoinOn(JoinType::kInner, td, {{"ss_sold_time_sk", "t_time_sk"}});
  ss.JoinOn(JoinType::kInner, st, {{"ss_store_sk", "s_store_sk"}});
  ss.Aggregate({}, {{"cnt", AggFunc::kCountStar, nullptr, nullptr, false}});
  return ss.Build();
}

// --- Q99-like: web shipping volume by warehouse ------------------------------
Result<PlanPtr> BuildQ99(const Catalog& catalog, PlanContext* ctx) {
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder ws,
      ScanTable(catalog, ctx, "web_sales",
                {"ws_sold_date_sk", "ws_warehouse_sk", "ws_ext_ship_cost"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder dd,
      ScanTable(catalog, ctx, "date_dim", {"d_date_sk", "d_year"}));
  dd.Filter(Eq(dd.Ref("d_year"), Int(2001)));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder wh, ScanTable(catalog, ctx, "warehouse",
                                {"w_warehouse_sk", "w_warehouse_name"}));
  ws.JoinOn(JoinType::kInner, dd, {{"ws_sold_date_sk", "d_date_sk"}});
  ws.JoinOn(JoinType::kInner, wh, {{"ws_warehouse_sk", "w_warehouse_sk"}});
  ws.Aggregate({"w_warehouse_name"},
               {{"orders", AggFunc::kCountStar, nullptr, nullptr, false},
                {"ship_cost", AggFunc::kSum, ws.Ref("ws_ext_ship_cost"),
                 nullptr, false}});
  ws.Sort({{"w_warehouse_name", true}});
  return ws.Build();
}

}  // namespace fusiondb::tpcds::internal
