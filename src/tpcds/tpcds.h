// TPC-DS-shaped benchmark substrate.
//
// The paper evaluates on TPC-DS at 3TB with the 7 largest fact tables
// date-partitioned (200-2000 partitions). We reproduce the schema subset
// its queries touch with a deterministic synthetic generator: row counts
// follow the TPC-DS SF-1 proportions scaled by `scale`, fact tables are
// partitioned monthly on their date surrogate key, and foreign keys carry a
// small NULL rate so the rewrites' NULL handling is exercised.
#ifndef FUSIONDB_TPCDS_TPCDS_H_
#define FUSIONDB_TPCDS_TPCDS_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/logical_plan.h"

namespace fusiondb::tpcds {

struct TpcdsOptions {
  /// Fraction of TPC-DS SF-1 row counts (0.05 => ~144k store_sales rows).
  double scale = 0.05;
  uint64_t seed = 20260706;
};

/// Populates `catalog` with the full table set. Deterministic per options.
Status BuildTpcdsCatalog(const TpcdsOptions& options, Catalog* catalog);

/// One benchmark query: a named logical-plan builder plus the paper's
/// classification of whether the fusion rules change its plan.
struct TpcdsQuery {
  std::string name;
  /// Paper section that studies it ("" for filler workload queries).
  std::string paper_section;
  /// True when the paper reports the query's plan changes under fusion.
  bool fusion_applicable = false;
  std::function<Result<PlanPtr>(const Catalog&, PlanContext*)> build;
};

/// The full query suite, applicable queries first (Q01, Q09, Q23, Q28, Q30,
/// Q65 + intro variant, Q88, Q95), then the non-applicable filler workload
/// standing in for the rest of the 99-query benchmark.
const std::vector<TpcdsQuery>& Queries();

/// Lookup by name ("q01" ... ).
Result<TpcdsQuery> QueryByName(const std::string& name);

}  // namespace fusiondb::tpcds

#endif  // FUSIONDB_TPCDS_TPCDS_H_
