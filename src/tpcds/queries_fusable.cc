// The queries the paper studies in Section V, expressed in FusionDB's
// algebra via PlanBuilder. Each mirrors the published (or paper-simplified)
// TPC-DS text; constants are adapted to the synthetic generator so every
// query returns non-trivial results at small scale factors.
#include <algorithm>
#include <optional>

#include "expr/expr_builder.h"
#include "tpcds/queries_internal.h"

namespace fusiondb::tpcds::internal {

using namespace fusiondb::eb;  // NOLINT: expression factories

Result<PlanBuilder> ScanTable(const Catalog& catalog, PlanContext* ctx,
                              const std::string& table,
                              std::vector<std::string> columns) {
  FUSIONDB_ASSIGN_OR_RETURN(TablePtr t, catalog.GetTable(table));
  return PlanBuilder::Scan(ctx, t, std::move(columns));
}

// --- Q01 (Section V.A): store returns above 1.2x the store average --------
//
// WITH customer_total_return AS (SELECT sr_customer_sk, sr_store_sk,
//        SUM(sr_return_amt) ctr_total_return
//      FROM store_returns, date_dim
//      WHERE sr_returned_date_sk = d_date_sk AND d_year = 2000
//      GROUP BY sr_customer_sk, sr_store_sk)
// SELECT c_customer_id FROM customer_total_return ctr1, store, customer
// WHERE ctr1.ctr_total_return >
//       (SELECT AVG(ctr_total_return)*1.2 FROM customer_total_return ctr2
//        WHERE ctr1.ctr_store_sk = ctr2.ctr_store_sk)
//   AND s_store_sk = ctr1.ctr_store_sk AND s_state = 'TN'
//   AND ctr1.ctr_customer_sk = c_customer_sk
// ORDER BY c_customer_id LIMIT 100
Result<PlanPtr> BuildQ01(const Catalog& catalog, PlanContext* ctx) {
  auto make_ctr = [&]() -> Result<PlanBuilder> {
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder sr,
        ScanTable(catalog, ctx, "store_returns",
                  {"sr_returned_date_sk", "sr_customer_sk", "sr_store_sk",
                   "sr_return_amt"}));
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder dd, ScanTable(catalog, ctx, "date_dim",
                                  {"d_date_sk", "d_year"}));
    dd.Filter(Eq(dd.Ref("d_year"), Int(2000)));
    sr.JoinOn(JoinType::kInner, dd, {{"sr_returned_date_sk", "d_date_sk"}});
    sr.Aggregate({"sr_customer_sk", "sr_store_sk"},
                 {{"ctr_total_return", AggFunc::kSum, sr.Ref("sr_return_amt"),
                   nullptr, false}});
    return sr;
  };
  FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder ctr1, make_ctr());
  FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder ctr2, make_ctr());
  ColumnId corr_store = ctr2.Col("sr_store_sk").id;
  PlanBuilder sub = ctr2;
  sub.Aggregate({}, {{"avg_ctr", AggFunc::kAvg, ctr2.Ref("ctr_total_return"),
                      nullptr, false}});

  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder store,
      ScanTable(catalog, ctx, "store", {"s_store_sk", "s_state"}));
  store.Filter(Eq(store.Ref("s_state"), Str("TN")));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder customer,
      ScanTable(catalog, ctx, "customer", {"c_customer_sk", "c_customer_id"}));

  ctr1.JoinOn(JoinType::kInner, store, {{"sr_store_sk", "s_store_sk"}});
  ctr1.JoinOn(JoinType::kInner, customer,
              {{"sr_customer_sk", "c_customer_sk"}});
  // Correlated scalar subquery: the decorrelation phase turns this into the
  // join-with-aggregate pattern GroupByJoinToWindow consumes.
  ctr1.Apply(sub, {{"sr_store_sk", corr_store}});
  ctr1.Filter(Gt(ctr1.Ref("ctr_total_return"),
                 Mul(Dbl(1.2), ctr1.Ref("avg_ctr"))));
  ctr1.Select({"c_customer_id"});
  ctr1.Sort({{"c_customer_id", true}});
  ctr1.Limit(100);
  return ctr1.Build();
}

// --- Q30 (Section V.A): web-return variant of Q01 over customer state -----
Result<PlanPtr> BuildQ30(const Catalog& catalog, PlanContext* ctx) {
  auto make_ctr = [&]() -> Result<PlanBuilder> {
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder wr,
        ScanTable(catalog, ctx, "web_returns",
                  {"wr_returned_date_sk", "wr_returning_customer_sk",
                   "wr_return_amt"}));
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder dd,
        ScanTable(catalog, ctx, "date_dim", {"d_date_sk", "d_year"}));
    dd.Filter(Eq(dd.Ref("d_year"), Int(2002)));
    wr.JoinOn(JoinType::kInner, dd, {{"wr_returned_date_sk", "d_date_sk"}});
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder cust, ScanTable(catalog, ctx, "customer",
                                    {"c_customer_sk", "c_current_addr_sk"}));
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder ca, ScanTable(catalog, ctx, "customer_address",
                                  {"ca_address_sk", "ca_state"}));
    cust.JoinOn(JoinType::kInner, ca, {{"c_current_addr_sk", "ca_address_sk"}});
    wr.JoinOn(JoinType::kInner, cust,
              {{"wr_returning_customer_sk", "c_customer_sk"}});
    wr.Aggregate({"wr_returning_customer_sk", "ca_state"},
                 {{"ctr_total_return", AggFunc::kSum, wr.Ref("wr_return_amt"),
                   nullptr, false}});
    return wr;
  };
  FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder ctr1, make_ctr());
  FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder ctr2, make_ctr());
  ColumnId corr_state = ctr2.Col("ca_state").id;
  PlanBuilder sub = ctr2;
  sub.Aggregate({}, {{"avg_ctr", AggFunc::kAvg, ctr2.Ref("ctr_total_return"),
                      nullptr, false}});

  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder customer,
      ScanTable(catalog, ctx, "customer",
                {"c_customer_sk", "c_customer_id", "c_first_name",
                 "c_last_name"}));
  ctr1.JoinOn(JoinType::kInner, customer,
              {{"wr_returning_customer_sk", "c_customer_sk"}});
  ctr1.Apply(sub, {{"ca_state", corr_state}});
  ctr1.Filter(Gt(ctr1.Ref("ctr_total_return"),
                 Mul(Dbl(1.2), ctr1.Ref("avg_ctr"))));
  ctr1.Select({"c_customer_id", "c_first_name", "c_last_name"});
  ctr1.Sort({{"c_customer_id", true}});
  ctr1.Limit(100);
  return ctr1.Build();
}

namespace {

/// The shared block of Q65: revenue per (store, item) for a month_seq
/// window — the paper's common subexpression.
Result<PlanBuilder> MakeQ65Revenue(const Catalog& catalog, PlanContext* ctx,
                                   int64_t seq_lo, int64_t seq_hi) {
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder ss,
      ScanTable(catalog, ctx, "store_sales",
                {"ss_sold_date_sk", "ss_store_sk", "ss_item_sk",
                 "ss_sales_price"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder dd,
      ScanTable(catalog, ctx, "date_dim", {"d_date_sk", "d_month_seq"}));
  dd.Filter(Between(dd.Ref("d_month_seq"), Int(seq_lo), Int(seq_hi)));
  ss.JoinOn(JoinType::kInner, dd, {{"ss_sold_date_sk", "d_date_sk"}});
  ss.Aggregate({"ss_store_sk", "ss_item_sk"},
               {{"revenue", AggFunc::kSum, ss.Ref("ss_sales_price"), nullptr,
                 false}});
  return ss;
}

Result<PlanPtr> BuildQ65Like(const Catalog& catalog, PlanContext* ctx,
                             int64_t seq_lo, int64_t seq_hi) {
  FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder sa1,
                            MakeQ65Revenue(catalog, ctx, seq_lo, seq_hi));
  FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder sc,
                            MakeQ65Revenue(catalog, ctx, seq_lo, seq_hi));
  PlanBuilder sb = sa1;
  sb.Aggregate({"ss_store_sk"},
               {{"ave", AggFunc::kAvg, sa1.Ref("revenue"), nullptr, false}});

  // Capture refs before joins introduce duplicate names.
  ExprPtr sc_store = sc.Ref("ss_store_sk");
  ExprPtr sc_item = sc.Ref("ss_item_sk");
  ExprPtr sc_revenue = sc.Ref("revenue");
  ExprPtr sb_store = sb.Ref("ss_store_sk");
  ExprPtr sb_ave = sb.Ref("ave");

  sc.Join(JoinType::kInner, sb,
          And({Eq(sc_store, sb_store),
               Le(sc_revenue, Mul(Dbl(0.1), sb_ave))}));

  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder store,
      ScanTable(catalog, ctx, "store", {"s_store_sk", "s_store_name"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder item,
      ScanTable(catalog, ctx, "item", {"i_item_sk", "i_item_desc"}));
  sc.Join(JoinType::kInner, store, Eq(sc_store, store.Ref("s_store_sk")));
  sc.Join(JoinType::kInner, item, Eq(sc_item, item.Ref("i_item_sk")));
  sc.Select({"s_store_name", "i_item_desc", "revenue"});
  sc.Sort({{"s_store_name", true}, {"i_item_desc", true}});
  sc.Limit(100);
  return sc.Build();
}

}  // namespace

// --- Q65 (Section V.A): items selling at <=10% of their store average ------
Result<PlanPtr> BuildQ65(const Catalog& catalog, PlanContext* ctx) {
  return BuildQ65Like(catalog, ctx, 1212, 1223);
}

// --- Q65 variant from Section I (36-month window) --------------------------
Result<PlanPtr> BuildQ65V(const Catalog& catalog, PlanContext* ctx) {
  return BuildQ65Like(catalog, ctx, 1212, 1247);
}

// --- Q09 (Section V.B): 15 scalar subqueries over store_sales buckets ------
Result<PlanPtr> BuildQ09(const Catalog& catalog, PlanContext* ctx) {
  FUSIONDB_ASSIGN_OR_RETURN(TablePtr ss_table,
                            catalog.GetTable("store_sales"));
  // The paper's literal thresholds are 3TB-specific; derive an equivalent
  // selectivity from the actual table cardinality.
  int64_t threshold = ss_table->num_rows() / 6;

  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder reason,
      ScanTable(catalog, ctx, "reason", {"r_reason_sk"}));
  reason.Filter(Eq(reason.Ref("r_reason_sk"), Int(1)));

  PlanBuilder q = reason;
  struct BucketCols {
    std::string cnt, avg1, avg2;
  };
  std::vector<BucketCols> buckets;
  for (int b = 0; b < 5; ++b) {
    int64_t lo = 1 + 20 * b;
    int64_t hi = 20 * (b + 1);
    std::string suffix = std::to_string(b + 1);
    BucketCols cols{"cnt" + suffix, "avg_disc" + suffix, "avg_profit" + suffix};
    // Three *separate* scalar subqueries per bucket — 15 scans of
    // store_sales, matching the paper's description of Q09.
    auto make_scan = [&]() -> Result<PlanBuilder> {
      FUSIONDB_ASSIGN_OR_RETURN(
          PlanBuilder s,
          ScanTable(catalog, ctx, "store_sales",
                    {"ss_quantity", "ss_ext_discount_amt", "ss_net_profit"}));
      s.Filter(Between(s.Ref("ss_quantity"), Int(lo), Int(hi)));
      return s;
    };
    FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder s1, make_scan());
    s1.Aggregate({}, {{cols.cnt, AggFunc::kCountStar, nullptr, nullptr, false}});
    FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder s2, make_scan());
    s2.Aggregate({}, {{cols.avg1, AggFunc::kAvg, s2.Ref("ss_ext_discount_amt"),
                       nullptr, false}});
    FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder s3, make_scan());
    s3.Aggregate({}, {{cols.avg2, AggFunc::kAvg, s3.Ref("ss_net_profit"),
                       nullptr, false}});
    q.CrossJoin(s1);
    q.CrossJoin(s2);
    q.CrossJoin(s3);
    buckets.push_back(std::move(cols));
  }
  std::vector<std::pair<std::string, ExprPtr>> outputs;
  for (size_t b = 0; b < buckets.size(); ++b) {
    outputs.push_back(
        {"bucket" + std::to_string(b + 1),
         CaseWhen(Gt(q.Ref(buckets[b].cnt), Int(threshold)),
                  q.Ref(buckets[b].avg1), q.Ref(buckets[b].avg2))});
  }
  q.Project(std::move(outputs));
  return q.Build();
}

// --- Q28 (Section V.B): six buckets with DISTINCT aggregates ----------------
Result<PlanPtr> BuildQ28(const Catalog& catalog, PlanContext* ctx) {
  PlanBuilder* q = nullptr;
  std::optional<PlanBuilder> root;
  std::vector<std::string> out_names;
  for (int b = 0; b < 6; ++b) {
    int64_t qty_lo = b * 5;
    int64_t qty_hi = qty_lo + 5;
    double lp_lo = 10.0 * b + 8.0;
    double cp_lo = 100.0 * b + 40.0;
    double wc_lo = 10.0 * b + 5.0;
    std::string suffix = std::to_string(b + 1);
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder s,
        ScanTable(catalog, ctx, "store_sales",
                  {"ss_quantity", "ss_list_price", "ss_coupon_amt",
                   "ss_wholesale_cost"}));
    s.Filter(And(
        {Between(s.Ref("ss_quantity"), Int(qty_lo), Int(qty_hi)),
         Or({Between(s.Ref("ss_list_price"), Dbl(lp_lo), Dbl(lp_lo + 100.0)),
             Between(s.Ref("ss_coupon_amt"), Dbl(cp_lo), Dbl(cp_lo + 1000.0)),
             Between(s.Ref("ss_wholesale_cost"), Dbl(wc_lo),
                     Dbl(wc_lo + 80.0))})}));
    s.Aggregate(
        {},
        {{"lp_avg" + suffix, AggFunc::kAvg, s.Ref("ss_list_price"), nullptr,
          false},
         {"lp_cnt" + suffix, AggFunc::kCount, s.Ref("ss_list_price"), nullptr,
          false},
         {"lp_cntd" + suffix, AggFunc::kCount, s.Ref("ss_list_price"), nullptr,
          /*distinct=*/true}});
    out_names.push_back("lp_avg" + suffix);
    out_names.push_back("lp_cnt" + suffix);
    out_names.push_back("lp_cntd" + suffix);
    if (!root.has_value()) {
      root = s;
      q = &*root;
    } else {
      q->CrossJoin(s);
    }
  }
  q->Select(out_names);
  return q->Build();
}

// --- Q88 (Section V.B): eight half-hour store traffic counts ----------------
Result<PlanPtr> BuildQ88(const Catalog& catalog, PlanContext* ctx) {
  std::optional<PlanBuilder> root;
  PlanBuilder* q = nullptr;
  std::vector<std::string> out_names;
  for (int b = 0; b < 8; ++b) {
    int64_t hour = 8 + (b + 1) / 2;        // 8.30, 9.00, 9.30, ... 12.00
    bool second_half = ((b + 1) % 2) == 1;  // b=0 -> 8:30-9:00
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder ss,
        ScanTable(catalog, ctx, "store_sales",
                  {"ss_sold_time_sk", "ss_hdemo_sk", "ss_store_sk"}));
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder hd,
        ScanTable(catalog, ctx, "household_demographics",
                  {"hd_demo_sk", "hd_dep_count", "hd_vehicle_count"}));
    hd.Filter(Or(
        And(Eq(hd.Ref("hd_dep_count"), Int(4)),
            Le(hd.Ref("hd_vehicle_count"), Int(3))),
        And(Eq(hd.Ref("hd_dep_count"), Int(2)),
            Le(hd.Ref("hd_vehicle_count"), Int(1)))));
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder td, ScanTable(catalog, ctx, "time_dim",
                                  {"t_time_sk", "t_hour", "t_minute"}));
    td.Filter(And(Eq(td.Ref("t_hour"), Int(hour)),
                  second_half ? Ge(td.Ref("t_minute"), Int(30))
                              : Lt(td.Ref("t_minute"), Int(30))));
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder st,
        ScanTable(catalog, ctx, "store", {"s_store_sk", "s_store_name"}));
    st.Filter(Eq(st.Ref("s_store_name"), Str("ese")));
    ss.JoinOn(JoinType::kInner, hd, {{"ss_hdemo_sk", "hd_demo_sk"}});
    ss.JoinOn(JoinType::kInner, td, {{"ss_sold_time_sk", "t_time_sk"}});
    ss.JoinOn(JoinType::kInner, st, {{"ss_store_sk", "s_store_sk"}});
    std::string name = "h" + std::to_string(b + 1);
    ss.Aggregate({}, {{name, AggFunc::kCountStar, nullptr, nullptr, false}});
    out_names.push_back(name);
    if (!root.has_value()) {
      root = ss;
      q = &*root;
    } else {
      q->CrossJoin(ss);
    }
  }
  q->Select(out_names);
  return q->Build();
}

// --- Q23 (Section V.C): union of catalog and web insights -------------------
Result<PlanPtr> BuildQ23(const Catalog& catalog, PlanContext* ctx) {
  FUSIONDB_ASSIGN_OR_RETURN(TablePtr ss_table,
                            catalog.GetTable("store_sales"));
  FUSIONDB_ASSIGN_OR_RETURN(TablePtr item_table, catalog.GetTable("item"));
  // Frequency / spend thresholds equivalent to the benchmark's selectivity
  // at this synthetic scale.
  int64_t freq_threshold = std::max<int64_t>(
      2, ss_table->num_rows() / std::max<int64_t>(1, item_table->num_rows()) / 3);
  double best_threshold = 60000.0 * (static_cast<double>(ss_table->num_rows()) /
                                     2880404.0 / 0.05);

  auto make_freq_items = [&]() -> Result<PlanBuilder> {
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder ss, ScanTable(catalog, ctx, "store_sales",
                                  {"ss_sold_date_sk", "ss_item_sk"}));
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder dd,
        ScanTable(catalog, ctx, "date_dim", {"d_date_sk", "d_year"}));
    dd.Filter(In(dd.Ref("d_year"),
                 {Int(1999), Int(2000), Int(2001), Int(2002)}));
    ss.JoinOn(JoinType::kInner, dd, {{"ss_sold_date_sk", "d_date_sk"}});
    ss.Aggregate({"ss_item_sk"},
                 {{"item_cnt", AggFunc::kCountStar, nullptr, nullptr, false}});
    ss.Filter(Gt(ss.Ref("item_cnt"), Int(freq_threshold)));
    ss.Select({"ss_item_sk"});
    return ss;
  };
  auto make_best_customer = [&]() -> Result<PlanBuilder> {
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder ss,
        ScanTable(catalog, ctx, "store_sales",
                  {"ss_customer_sk", "ss_quantity", "ss_sales_price"}));
    ss.Aggregate({"ss_customer_sk"},
                 {{"csales", AggFunc::kSum,
                   Mul(ss.Ref("ss_quantity"), ss.Ref("ss_sales_price")),
                   nullptr, false}});
    ss.Filter(Gt(ss.Ref("csales"), Dbl(best_threshold)));
    ss.Select({"ss_customer_sk"});
    return ss;
  };

  auto make_branch = [&](const std::string& fact, const std::string& date_col,
                         const std::string& item_col,
                         const std::string& cust_col,
                         const std::string& qty_col,
                         const std::string& price_col) -> Result<PlanBuilder> {
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder f,
        ScanTable(catalog, ctx, fact,
                  {date_col, item_col, cust_col, qty_col, price_col}));
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder dd, ScanTable(catalog, ctx, "date_dim",
                                  {"d_date_sk", "d_year", "d_moy"}));
    dd.Filter(And(Eq(dd.Ref("d_year"), Int(1999)),
                  Eq(dd.Ref("d_moy"), Int(1))));
    f.JoinOn(JoinType::kInner, dd, {{date_col, "d_date_sk"}});
    FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder freq, make_freq_items());
    f.Join(JoinType::kSemi, freq,
           Eq(f.Ref(item_col), freq.Ref("ss_item_sk")));
    FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder best, make_best_customer());
    f.Join(JoinType::kSemi, best,
           Eq(f.Ref(cust_col), best.Ref("ss_customer_sk")));
    f.Project({{"sales", Mul(f.Ref(qty_col), f.Ref(price_col))}});
    return f;
  };

  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder cat_branch,
      make_branch("catalog_sales", "cs_sold_date_sk", "cs_item_sk",
                  "cs_bill_customer_sk", "cs_quantity", "cs_list_price"));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder web_branch,
      make_branch("web_sales", "ws_sold_date_sk", "ws_item_sk",
                  "ws_bill_customer_sk", "ws_quantity", "ws_list_price"));
  PlanBuilder u = PlanBuilder::UnionAll(ctx, {cat_branch, web_branch});
  u.Aggregate({}, {{"total_sales", AggFunc::kSum, u.Ref("sales"), nullptr,
                    false}});
  return u.Build();
}

// --- Q95 (Section V.D): multi-warehouse web orders with returns -------------
Result<PlanPtr> BuildQ95(const Catalog& catalog, PlanContext* ctx) {
  auto make_ws_wh = [&]() -> Result<PlanBuilder> {
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder ws1, ScanTable(catalog, ctx, "web_sales",
                                   {"ws_order_number", "ws_warehouse_sk"}));
    FUSIONDB_ASSIGN_OR_RETURN(
        PlanBuilder ws2, ScanTable(catalog, ctx, "web_sales",
                                   {"ws_order_number", "ws_warehouse_sk"}));
    ExprPtr order1 = ws1.Ref("ws_order_number");
    ExprPtr wh1 = ws1.Ref("ws_warehouse_sk");
    ExprPtr order2 = ws2.Ref("ws_order_number");
    ExprPtr wh2 = ws2.Ref("ws_warehouse_sk");
    ws1.Join(JoinType::kInner, ws2,
             And(Eq(order1, order2), Ne(wh1, wh2)));
    ws1.Project({{"ws_wh_number", order1}});
    return ws1;
  };

  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder ws,
      ScanTable(catalog, ctx, "web_sales",
                {"ws_order_number", "ws_sold_date_sk", "ws_ship_addr_sk",
                 "ws_web_site_sk", "ws_ext_ship_cost", "ws_net_profit"}));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder dd, ScanTable(catalog, ctx, "date_dim",
                                {"d_date_sk", "d_year", "d_moy"}));
  dd.Filter(And(Eq(dd.Ref("d_year"), Int(1999)),
                Between(dd.Ref("d_moy"), Int(2), Int(4))));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder ca, ScanTable(catalog, ctx, "customer_address",
                                {"ca_address_sk", "ca_state"}));
  ca.Filter(Eq(ca.Ref("ca_state"), Str("IL")));
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder web, ScanTable(catalog, ctx, "web_site",
                                 {"web_site_sk", "web_company_name"}));
  web.Filter(Eq(web.Ref("web_company_name"), Str("pri")));

  ws.JoinOn(JoinType::kInner, dd, {{"ws_sold_date_sk", "d_date_sk"}});
  ws.JoinOn(JoinType::kInner, ca, {{"ws_ship_addr_sk", "ca_address_sk"}});
  ws.JoinOn(JoinType::kInner, web, {{"ws_web_site_sk", "web_site_sk"}});

  // ws_order_number IN (SELECT ws_wh_number FROM ws_wh)
  FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder wh1, make_ws_wh());
  ws.Join(JoinType::kSemi, wh1,
          Eq(ws.Ref("ws_order_number"), wh1.Ref("ws_wh_number")));
  // ws_order_number IN (SELECT wr_order_number FROM ws_wh JOIN web_returns
  //                     ON wr_order_number = ws_wh_number)
  FUSIONDB_ASSIGN_OR_RETURN(PlanBuilder wh2, make_ws_wh());
  FUSIONDB_ASSIGN_OR_RETURN(
      PlanBuilder wr,
      ScanTable(catalog, ctx, "web_returns", {"wr_order_number"}));
  wh2.JoinOn(JoinType::kInner, wr, {{"ws_wh_number", "wr_order_number"}});
  wh2.Select({"wr_order_number"});
  ws.Join(JoinType::kSemi, wh2,
          Eq(ws.Ref("ws_order_number"), wh2.Ref("wr_order_number")));

  ws.Aggregate({}, {{"order_count", AggFunc::kCount, ws.Ref("ws_order_number"),
                     nullptr, /*distinct=*/true},
                    {"total_shipping_cost", AggFunc::kSum,
                     ws.Ref("ws_ext_ship_cost"), nullptr, false},
                    {"total_net_profit", AggFunc::kSum,
                     ws.Ref("ws_net_profit"), nullptr, false}});
  return ws.Build();
}

}  // namespace fusiondb::tpcds::internal
