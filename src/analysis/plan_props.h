// Semantic property derivation over logical plans (DESIGN.md §8).
//
// PropertyDerivation runs a bottom-up, DAG-memoized abstract interpretation
// over a logical plan and derives, per operator:
//   - candidate keys: column sets whose values identify an output row (the
//     empty set is the "at most one row" key),
//   - functional dependencies from group-by structure (group columns
//     determine every aggregate output), used to close key covers,
//   - per-column nullability and constant/interval domains implied by
//     filters, join conditions and literal projections,
//   - row-count bounds seeded from catalog cardinalities.
//
// The same interval lattice powers an expression-level implication checker
// (Implies(F, G): every row satisfying F also satisfies G) and a
// monotonicity test (IsMonotone(F): F is decidable per partition from the
// partition column's min/max alone — the property partition pruning relies
// on). Everything here is conservative: "don't know" degrades to the lattice
// top (nullable, unbounded, no keys), never to a wrong claim.
//
// Consumers: the semantic verifier tier (analysis/semantic_verifier.h),
// JoinOnKeys (optimizer/rules_join_keys.cc, which asserts its key
// precondition from derived keys instead of re-deriving it), the cost
// model's aggregation estimate (cost/cardinality.cc), and the --explain
// property annotations (examples/run_query.cpp).
#ifndef FUSIONDB_ANALYSIS_PLAN_PROPS_H_
#define FUSIONDB_ANALYSIS_PLAN_PROPS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "expr/expr.h"
#include "plan/logical_plan.h"
#include "types/value.h"

namespace fusiondb {

/// One end of a column's value interval. `strict` means the bound is open
/// (the value itself is excluded). Bounds constrain *non-NULL* values only;
/// nullability is tracked separately in ColumnDomain.
struct ValueBound {
  bool has = false;
  bool strict = false;
  Value value;
};

/// What is known about one column's values at some plan node.
struct ColumnDomain {
  bool nullable = true;  // false: proven non-NULL at this node
  ValueBound lo;
  ValueBound hi;

  bool IsSingleton() const {
    return lo.has && hi.has && !lo.strict && !hi.strict &&
           lo.value.Compare(hi.value) == 0;
  }
};

using DomainMap = std::unordered_map<ColumnId, ColumnDomain>;

/// Output row-count bounds. max == -1 means unbounded/unknown.
struct RowBounds {
  int64_t min = 0;
  int64_t max = -1;
};

/// Derived semantic properties of one plan node's output.
struct PlanProps {
  /// Candidate keys, each a sorted set of output ColumnIds. An empty set is
  /// the strongest key ("at most one row"). Capped (supersets of a held key
  /// are dropped) so derivation stays linear in plan size.
  std::vector<std::vector<ColumnId>> keys;

  /// Functional dependencies: determinant column set -> dependent column.
  std::vector<std::pair<std::vector<ColumnId>, ColumnId>> fds;

  DomainMap domains;
  RowBounds rows;

  /// True when `cols` covers some candidate key under the FD closure:
  /// expand `cols` with every FD whose determinant it contains, then test
  /// whether any key is a subset of the closure.
  bool HasKey(const std::vector<ColumnId>& cols) const;

  /// Adds `key` (sorted/deduped), dropping supersets of held keys and held
  /// supersets of it.
  void AddKey(std::vector<ColumnId> key);
};

/// Bottom-up derivation with a pointer-keyed memo, so shared (DAG) subtrees
/// are derived once. Holds PlanPtr keepalives for every memoized node, so
/// cached raw-pointer keys can never be resurrected by an unrelated
/// allocation. One instance may be reused across many plans in one
/// optimization pass; memo hits make incremental re-verification of touched
/// subtrees cheap.
class PropertyDerivation {
 public:
  const PlanProps& Derive(const PlanPtr& plan);

  /// Memo lookup without deriving; nullptr when `op` has not been derived.
  const PlanProps* Lookup(const LogicalOp* op) const;

  /// Number of distinct nodes derived so far (trace/stats).
  int64_t nodes_derived() const { return static_cast<int64_t>(memo_.size()); }

 private:
  std::unordered_map<const LogicalOp*, PlanProps> memo_;
  std::vector<PlanPtr> keepalive_;
};

/// Narrows `domains` with the facts a TRUE `conjunct` establishes:
/// comparisons against literals tighten intervals and prove non-NULLness,
/// column equalities intersect both sides, IS NOT NULL clears nullability,
/// single-column ORs contribute the hull of their branches. Unrecognized
/// shapes tighten nothing.
void TightenDomains(const ExprPtr& conjunct, DomainMap* domains);

/// True when every row satisfying `premise` (under the facts in `ambient`,
/// typically the derived domains of the plan the rows flow through) also
/// satisfies `conclusion`. Conservative: false means "not proven". A null
/// or TRUE conclusion is vacuously implied; a null premise means "TRUE",
/// i.e. only `ambient` may do the proving.
bool Implies(const ExprPtr& premise, const ExprPtr& conclusion,
             const DomainMap* ambient = nullptr);

/// True when `filter` is a conjunction of single-column atoms (column vs
/// literal comparisons, IN over literals, IS [NOT] NULL, boolean column
/// refs, single-column ORs of those) — i.e. its truth over a partition is
/// decidable from per-column min/max, so partition pruning with it can
/// only drop partitions containing no satisfying row.
bool IsMonotone(const ExprPtr& filter);

/// Returns `conjuncts` minus those already implied by `ambient` alone
/// (e.g. IS NOT NULL on a column the domain proves non-NULL, or a range
/// test inside the column's derived interval). Order is preserved.
std::vector<ExprPtr> DropImpliedConjuncts(const std::vector<ExprPtr>& conjuncts,
                                          const DomainMap& ambient);

/// Compact one-line rendering ("keys={(#3 #5)} rows=[0,120] #3:!null[1,10]")
/// for EXPLAIN annotations and the optimizer trace.
std::string PropsToString(const PlanProps& props);

}  // namespace fusiondb

#endif  // FUSIONDB_ANALYSIS_PLAN_PROPS_H_
