// SemanticLedger: rewrite-time obligations for translation validation
// (DESIGN.md §8). A rule that relies on a semantic fact — "these columns
// key that subtree", "this kept filter implies the one I dropped" — records
// the claim here instead of trusting it. The optimizer drains the ledger
// after every rule firing and has SemanticVerifier re-prove each claim from
// independently derived properties (analysis/plan_props.h), so a rule bug
// surfaces at the firing that introduced it, tagged [semantic-*], rather
// than as a wrong answer far downstream.
//
// Header-only on purpose: the fusion library records obligations without
// linking against the analysis library. The ledger rides PlanContext
// (ctx->semantics(), null when the semantic tier is off), mirroring how the
// optimizer trace reaches rewrite sites.
#ifndef FUSIONDB_ANALYSIS_SEMANTIC_LEDGER_H_
#define FUSIONDB_ANALYSIS_SEMANTIC_LEDGER_H_

#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// "`columns` is a key of `plan`" — e.g. JoinOnKeys' precondition that the
/// mapped key image still keys the fused input.
struct KeyObligation {
  PlanPtr plan;
  std::vector<ColumnId> columns;
  std::string rule;  // the rewrite that made the claim (for the message)
};

/// "Every row of `scope` satisfying `premise` satisfies `conclusion`" —
/// e.g. a compensating filter kept after dropping conjuncts the shared
/// subtree's domain already implies. A null premise means TRUE (only the
/// scope's derived domains may prove the conclusion).
struct ImplicationObligation {
  PlanPtr scope;
  ExprPtr premise;
  ExprPtr conclusion;
  std::string rule;
};

class SemanticLedger {
 public:
  void AddKey(PlanPtr plan, std::vector<ColumnId> columns, std::string rule) {
    keys_.push_back({std::move(plan), std::move(columns), std::move(rule)});
  }

  void AddImplication(PlanPtr scope, ExprPtr premise, ExprPtr conclusion,
                      std::string rule) {
    implications_.push_back(
        {std::move(scope), std::move(premise), std::move(conclusion),
         std::move(rule)});
  }

  bool empty() const { return keys_.empty() && implications_.empty(); }

  std::vector<KeyObligation> TakeKeys() {
    std::vector<KeyObligation> out;
    out.swap(keys_);
    return out;
  }
  std::vector<ImplicationObligation> TakeImplications() {
    std::vector<ImplicationObligation> out;
    out.swap(implications_);
    return out;
  }

 private:
  std::vector<KeyObligation> keys_;
  std::vector<ImplicationObligation> implications_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_ANALYSIS_SEMANTIC_LEDGER_H_
