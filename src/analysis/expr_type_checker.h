// Static type checking of scalar expressions against an input schema.
//
// Every expression node carries a declared DataType, but nothing in the
// expression factories validates it: a rewrite that rebinds a column to the
// wrong id, compares a string with an int, or declares an integer division
// as int64 (the evaluator always produces float64 for kDiv) silently builds
// an expression whose declared type lies about its runtime behaviour. The
// checker re-infers every node's type bottom-up and reports the first
// disagreement.
//
// Violation messages start with a bracketed invariant tag (the catalog is in
// DESIGN.md) so tests and humans can pinpoint which rule was broken.
// Structural problems (unresolved columns, wrong arity) report kPlanError;
// type disagreements report kTypeError — matching the executor's own codes
// so enabling verification never changes which error a caller observes.
#ifndef FUSIONDB_ANALYSIS_EXPR_TYPE_CHECKER_H_
#define FUSIONDB_ANALYSIS_EXPR_TYPE_CHECKER_H_

#include "common/status.h"
#include "expr/expr.h"
#include "types/schema.h"

namespace fusiondb {

class ExprTypeChecker {
 public:
  /// Checks expressions against `input` (the producing operator's child
  /// schema). The schema must outlive the checker.
  explicit ExprTypeChecker(const Schema& input) : input_(input) {}

  /// Validates `expr` recursively: column references resolve in the input
  /// schema with their declared type, operand types are compatible, and each
  /// node's declared type equals the inferred type.
  Status Check(const ExprPtr& expr) const;

  /// Check() plus the requirement that the top-level type is boolean.
  /// `what` names the role for diagnostics ("predicate", "mask", ...) and
  /// the violated invariant is reported as [<what>-not-boolean].
  Status CheckBoolean(const ExprPtr& expr, const char* what) const;

 private:
  const Schema& input_;
};

}  // namespace fusiondb

#endif  // FUSIONDB_ANALYSIS_EXPR_TYPE_CHECKER_H_
