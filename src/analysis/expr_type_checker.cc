#include "analysis/expr_type_checker.h"

#include <string>

namespace fusiondb {

namespace {

Status StructuralViolation(const char* invariant, std::string detail) {
  return Status::PlanError("[" + std::string(invariant) + "] " +
                           std::move(detail));
}

Status TypeViolation(const char* invariant, std::string detail) {
  return Status::TypeError("[" + std::string(invariant) + "] " +
                           std::move(detail));
}

/// Two values are comparable when both sides are numeric (int64 / float64 /
/// date promote freely, mirroring CompareColumns) or the types are equal.
bool Comparable(DataType a, DataType b) {
  return a == b || (IsNumeric(a) && IsNumeric(b));
}

Status RequireArity(const Expr& e, size_t n) {
  if (e.children().size() != n) {
    return StructuralViolation(
        "expr-arity", internal::StrCat(e.ToString(), " has ",
                                       e.children().size(),
                                       " children, expected ", n));
  }
  return Status::OK();
}

Status RequireBoolChild(const Expr& parent, const ExprPtr& child,
                        const char* role) {
  if (child->type() != DataType::kBool) {
    return TypeViolation(
        "boolean-operand",
        internal::StrCat(role, " ", child->ToString(), " of ",
                         parent.ToString(), " has type ",
                         DataTypeName(child->type()), ", expected bool"));
  }
  return Status::OK();
}

Status RequireDeclaredBool(const Expr& e) {
  if (e.type() != DataType::kBool) {
    return TypeViolation(
        "expr-result-type",
        internal::StrCat(e.ToString(), " declares type ",
                         DataTypeName(e.type()), ", expected bool"));
  }
  return Status::OK();
}

}  // namespace

Status ExprTypeChecker::Check(const ExprPtr& expr) const {
  if (expr == nullptr) {
    return StructuralViolation("expr-null", "null expression node");
  }
  const Expr& e = *expr;
  for (const ExprPtr& c : e.children()) {
    if (c == nullptr) {
      return StructuralViolation(
          "expr-null", "null child of expression " + e.ToString());
    }
    FUSIONDB_RETURN_IF_ERROR(Check(c));
  }
  switch (e.kind()) {
    case ExprKind::kColumnRef: {
      int idx = input_.IndexOf(e.column_id());
      if (idx < 0) {
        return StructuralViolation(
            "unresolved-column",
            internal::StrCat("column #", e.column_id(),
                             " is not produced by the input schema ",
                             input_.ToString()));
      }
      DataType actual = input_.column(static_cast<size_t>(idx)).type;
      if (actual != e.type()) {
        return TypeViolation(
            "column-type-mismatch",
            internal::StrCat("reference to column #", e.column_id(),
                             " declares type ", DataTypeName(e.type()),
                             " but the input produces ",
                             DataTypeName(actual)));
      }
      return Status::OK();
    }
    case ExprKind::kLiteral:
      if (e.literal().type() != e.type()) {
        return TypeViolation(
            "literal-type-mismatch",
            internal::StrCat("literal ", e.literal().ToString(),
                             " of type ", DataTypeName(e.literal().type()),
                             " declared as ", DataTypeName(e.type())));
      }
      return Status::OK();
    case ExprKind::kCompare: {
      FUSIONDB_RETURN_IF_ERROR(RequireArity(e, 2));
      DataType l = e.child(0)->type();
      DataType r = e.child(1)->type();
      if (!Comparable(l, r)) {
        return TypeViolation(
            "compare-operand-types",
            internal::StrCat("cannot compare ", DataTypeName(l), " with ",
                             DataTypeName(r), " in ", e.ToString()));
      }
      return RequireDeclaredBool(e);
    }
    case ExprKind::kArith: {
      FUSIONDB_RETURN_IF_ERROR(RequireArity(e, 2));
      DataType l = e.child(0)->type();
      DataType r = e.child(1)->type();
      if (!IsNumeric(l) || !IsNumeric(r)) {
        return TypeViolation(
            "arith-operand-types",
            internal::StrCat("arithmetic over ", DataTypeName(l), " and ",
                             DataTypeName(r), " in ", e.ToString()));
      }
      // The evaluator's kernel selection depends on the declared type:
      // division always produces float64, and any float64 operand promotes
      // the result. The integer case tolerates kDate so date arithmetic
      // (day-number offsets) can keep its logical type.
      if (e.arith_op() == ArithOp::kDiv) {
        if (e.type() != DataType::kFloat64) {
          return TypeViolation(
              "arith-result-type",
              internal::StrCat("division ", e.ToString(), " declares ",
                               DataTypeName(e.type()),
                               " but always produces float64"));
        }
        return Status::OK();
      }
      bool any_float = l == DataType::kFloat64 || r == DataType::kFloat64;
      bool ok = any_float ? e.type() == DataType::kFloat64
                          : (e.type() == DataType::kInt64 ||
                             e.type() == DataType::kDate);
      if (!ok) {
        return TypeViolation(
            "arith-result-type",
            internal::StrCat(e.ToString(), " declares ",
                             DataTypeName(e.type()), " over operands ",
                             DataTypeName(l), ", ", DataTypeName(r)));
      }
      return Status::OK();
    }
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const ExprPtr& c : e.children()) {
        FUSIONDB_RETURN_IF_ERROR(RequireBoolChild(e, c, "conjunct"));
      }
      return RequireDeclaredBool(e);
    case ExprKind::kNot:
      FUSIONDB_RETURN_IF_ERROR(RequireArity(e, 1));
      FUSIONDB_RETURN_IF_ERROR(RequireBoolChild(e, e.child(0), "operand"));
      return RequireDeclaredBool(e);
    case ExprKind::kIsNull:
      FUSIONDB_RETURN_IF_ERROR(RequireArity(e, 1));
      return RequireDeclaredBool(e);
    case ExprKind::kCase: {
      size_t n = e.children().size();
      if (n < 1 || n % 2 == 0) {
        return StructuralViolation(
            "case-shape",
            internal::StrCat("CASE needs (when, then)* else — got ", n,
                             " children in ", e.ToString()));
      }
      for (size_t i = 0; i + 1 < n; i += 2) {
        FUSIONDB_RETURN_IF_ERROR(RequireBoolChild(e, e.child(i), "WHEN arm"));
        if (e.child(i + 1)->type() != e.type()) {
          return TypeViolation(
              "case-arm-type",
              internal::StrCat("THEN arm ", e.child(i + 1)->ToString(),
                               " has type ",
                               DataTypeName(e.child(i + 1)->type()),
                               " but the CASE declares ",
                               DataTypeName(e.type())));
        }
      }
      if (e.child(n - 1)->type() != e.type()) {
        return TypeViolation(
            "case-arm-type",
            internal::StrCat("ELSE arm ", e.child(n - 1)->ToString(),
                             " has type ",
                             DataTypeName(e.child(n - 1)->type()),
                             " but the CASE declares ",
                             DataTypeName(e.type())));
      }
      return Status::OK();
    }
    case ExprKind::kInList: {
      if (e.children().size() < 2) {
        return StructuralViolation(
            "expr-arity",
            "IN list needs an operand and at least one item: " + e.ToString());
      }
      DataType operand = e.child(0)->type();
      for (size_t i = 1; i < e.children().size(); ++i) {
        if (!Comparable(operand, e.child(i)->type())) {
          return TypeViolation(
              "compare-operand-types",
              internal::StrCat("IN item ", e.child(i)->ToString(),
                               " of type ",
                               DataTypeName(e.child(i)->type()),
                               " is not comparable with ",
                               DataTypeName(operand), " operand"));
        }
      }
      return RequireDeclaredBool(e);
    }
  }
  return Status::Internal("unknown expression kind");
}

Status ExprTypeChecker::CheckBoolean(const ExprPtr& expr,
                                     const char* what) const {
  FUSIONDB_RETURN_IF_ERROR(Check(expr));
  if (expr->type() != DataType::kBool) {
    return TypeViolation(
        (std::string(what) + "-not-boolean").c_str(),
        internal::StrCat(what, " ", expr->ToString(), " has type ",
                         DataTypeName(expr->type()), ", expected bool"));
  }
  return Status::OK();
}

}  // namespace fusiondb
