#include "analysis/semantic_verifier.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "analysis/expr_type_checker.h"
#include "catalog/table.h"
#include "expr/simplifier.h"
#include "plan/plan_printer.h"

namespace fusiondb {

bool SemanticVerificationEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("FUSIONDB_VERIFY_SEMANTICS");
    if (env != nullptr) return env[0] != '0';
#ifdef FUSIONDB_VERIFY_SEMANTICS_DEFAULT
    return FUSIONDB_VERIFY_SEMANTICS_DEFAULT != 0;
#else
    return false;
#endif
  }();
  return enabled;
}

namespace {

Status SemanticViolation(const char* tag, std::string detail) {
  return Status::PlanError("[" + std::string(tag) + "] " + std::move(detail));
}

Status Contextualize(Status st, std::string_view context) {
  if (st.ok()) return st;
  std::string where =
      context.empty() ? std::string() : " (" + std::string(context) + ")";
  return Status(st.code(), "semantic verification failed" + where + ": " +
                               st.message());
}

/// Order-insensitive hash of an enforced-conjunct set (FNV-1a over sorted
/// fingerprints), keying the walk memo per filter context.
uint64_t ContextHash(const std::vector<ExprPtr>& enforced) {
  std::vector<std::string> fps;
  fps.reserve(enforced.size());
  for (const ExprPtr& e : enforced) fps.push_back(ExprFingerprint(e));
  std::sort(fps.begin(), fps.end());
  uint64_t h = 14695981039346656037ULL;
  for (const std::string& fp : fps) {
    for (char c : fp) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0x1f;
    h *= 1099511628211ULL;
  }
  return h;
}

/// The conjuncts of `enforced` fully expressible over `schema` (plan-wide
/// ColumnIds make "same id" mean "same column").
std::vector<ExprPtr> Resolvable(const std::vector<ExprPtr>& enforced,
                                const Schema& schema) {
  std::vector<ExprPtr> kept;
  for (const ExprPtr& e : enforced) {
    std::vector<ColumnId> cols;
    CollectColumns(e, &cols);
    bool ok = true;
    for (ColumnId id : cols) {
      if (!schema.Contains(id)) {
        ok = false;
        break;
      }
    }
    if (ok) kept.push_back(e);
  }
  return kept;
}

/// ColumnId of the scan output column holding the table's partition column,
/// or kInvalidColumnId when the partition column is not scanned.
ColumnId PartitionOutputColumn(const ScanOp& scan) {
  int pc = scan.table()->partition_column();
  if (pc < 0) return kInvalidColumnId;
  for (size_t i = 0; i < scan.table_columns().size(); ++i) {
    if (scan.table_columns()[i] == pc) return scan.schema().column(i).id;
  }
  return kInvalidColumnId;
}

std::string DescribeConjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conjuncts[i]->ToString();
  }
  return out;
}

}  // namespace

Status SemanticVerifier::CheckScan(const PlanPtr& node,
                                   const std::vector<ExprPtr>& enforced,
                                   bool is_root) {
  const ScanOp& scan = Cast<ScanOp>(*node);
  const ExprPtr& pruning = scan.pruning_filter();
  if (pruning == nullptr || IsTrueLiteral(pruning)) return Status::OK();

  std::vector<ExprPtr> prune_conjuncts;
  SplitConjuncts(pruning, &prune_conjuncts);
  ColumnId partition_col = PartitionOutputColumn(scan);

  // Monotonicity: partition pruning evaluates each conjunct against the
  // partition column's [min,max]; a conjunct on that column whose truth is
  // not decidable from the range could drop partitions holding satisfying
  // rows.
  for (const ExprPtr& c : prune_conjuncts) {
    std::vector<ColumnId> cols;
    CollectColumns(c, &cols);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    bool on_partition_column =
        cols.size() == 1 && cols[0] == partition_col &&
        partition_col != kInvalidColumnId;
    if (on_partition_column && !IsMonotone(c)) {
      return SemanticViolation(
          "semantic-pruning-nonmonotone",
          "scan of '" + scan.table()->name() + "' prunes on " + c->ToString() +
              ", which is not monotone in the partition column #" +
              std::to_string(partition_col));
    }
  }

  // Implication: the fused-scan contract drops pruning from shared scans
  // and relies on the filters enforced above to re-establish it, so every
  // pruning conjunct must follow from those filters (plus the scan's own
  // data domain, e.g. the partition hull). A verify rooted *at* the scan
  // has its enforcing filter outside the verified subtree (the
  // push-into-scan contract keeps it directly above); defer to the
  // enclosing full-plan verification.
  if (is_root) return Status::OK();
  ExprPtr premise = CombineConjuncts(enforced);
  const DomainMap& ambient = props_.Derive(node).domains;
  for (const ExprPtr& c : prune_conjuncts) {
    if (!Implies(premise, c, &ambient)) {
      return SemanticViolation(
          "semantic-pruning-unimplied",
          "scan of '" + scan.table()->name() + "' prunes on " + c->ToString() +
              " but the filters enforced above it (" +
              DescribeConjuncts(enforced) + ") do not imply it");
    }
  }
  return Status::OK();
}

Status SemanticVerifier::WalkTree(const PlanPtr& node,
                                  const std::vector<ExprPtr>& enforced,
                                  bool is_root) {
  if (node == nullptr) return Status::OK();  // structural tier's problem
  uint64_t ctx_hash = ContextHash(enforced) ^ (is_root ? 0x9e3779b97f4a7c15ULL : 0);
  std::vector<uint64_t>& seen = walked_[node.get()];
  if (std::find(seen.begin(), seen.end(), ctx_hash) != seen.end()) {
    return Status::OK();
  }

  Status local = Status::OK();
  switch (node->kind()) {
    case OpKind::kScan:
      local = CheckScan(node, enforced, is_root);
      break;
    case OpKind::kEnforceSingleRow: {
      const PlanProps& child = props_.Derive(node->child(0));
      if (child.rows.min > 1) {
        local = SemanticViolation(
            "semantic-single-row-impossible",
            "EnforceSingleRow over a subtree that always produces at least " +
                std::to_string(child.rows.min) + " rows (" +
                PropsToString(child) + ")");
      }
      break;
    }
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kJoin:
    case OpKind::kAggregate:
    case OpKind::kWindow:
    case OpKind::kMarkDistinct:
    case OpKind::kUnionAll:
    case OpKind::kValues:
    case OpKind::kSort:
    case OpKind::kLimit:
    case OpKind::kApply:
    case OpKind::kSpool:
      break;
  }
  if (!local.ok()) {
    return Status(local.code(), local.message() + "\noffending subplan:\n" +
                                    PlanToString(node));
  }

  // Descend, transforming the enforced-filter context. Only operators that
  // pass rows through unchanged may forward it: row-merging operators
  // (aggregation, windows, distinct marking, limits, apply, union) make
  // "a filter above would have dropped this row anyway" unsound for rows
  // feeding other rows' results, so the context resets there.
  switch (node->kind()) {
    case OpKind::kFilter: {
      std::vector<ExprPtr> next = enforced;
      SplitConjuncts(Cast<FilterOp>(*node).predicate(), &next);
      FUSIONDB_RETURN_IF_ERROR(WalkTree(node->child(0), next, false));
      break;
    }
    case OpKind::kProject:
    case OpKind::kSort:
    case OpKind::kSpool:
      FUSIONDB_RETURN_IF_ERROR(WalkTree(
          node->child(0), Resolvable(enforced, node->child(0)->schema()),
          false));
      break;
    case OpKind::kJoin: {
      const JoinOp& join = Cast<JoinOp>(*node);
      bool inner_like = join.join_type() == JoinType::kInner ||
                        join.join_type() == JoinType::kCross;
      FUSIONDB_RETURN_IF_ERROR(WalkTree(
          join.left(), Resolvable(enforced, join.left()->schema()), false));
      FUSIONDB_RETURN_IF_ERROR(WalkTree(
          join.right(),
          inner_like ? Resolvable(enforced, join.right()->schema())
                     : std::vector<ExprPtr>{},
          false));
      break;
    }
    case OpKind::kScan:
    case OpKind::kValues:
      break;
    case OpKind::kAggregate:
    case OpKind::kWindow:
    case OpKind::kMarkDistinct:
    case OpKind::kUnionAll:
    case OpKind::kLimit:
    case OpKind::kEnforceSingleRow:
    case OpKind::kApply:
      for (const PlanPtr& child : node->children()) {
        FUSIONDB_RETURN_IF_ERROR(WalkTree(child, {}, false));
      }
      break;
  }

  walked_[node.get()].push_back(ctx_hash);
  keepalive_.push_back(node);
  return Status::OK();
}

Status SemanticVerifier::Verify(const PlanPtr& plan, std::string_view context) {
  ++plans_verified_;
  return Contextualize(WalkTree(plan, {}, /*is_root=*/true), context);
}

Status SemanticVerifier::CheckObligations(SemanticLedger* ledger,
                                          std::string_view context) {
  if (ledger == nullptr) return Status::OK();
  for (const KeyObligation& o : ledger->TakeKeys()) {
    ++obligations_checked_;
    const PlanProps& props = props_.Derive(o.plan);
    if (!props.HasKey(o.columns)) {
      std::string cols;
      for (size_t i = 0; i < o.columns.size(); ++i) {
        if (i > 0) cols += " ";
        cols += "#" + std::to_string(o.columns[i]);
      }
      return Contextualize(
          Status::PlanError(
              "[semantic-key-obligation] rule '" + o.rule +
              "' requires columns (" + cols +
              ") to form a key of the subtree, but derived properties (" +
              PropsToString(props) + ") do not cover it\noffending subplan:\n" +
              PlanToString(o.plan)),
          context);
    }
  }
  for (const ImplicationObligation& o : ledger->TakeImplications()) {
    ++obligations_checked_;
    const DomainMap& ambient = props_.Derive(o.scope).domains;
    if (!Implies(o.premise, o.conclusion, &ambient)) {
      return Contextualize(
          Status::PlanError(
              "[semantic-filter-implication] rule '" + o.rule + "' kept " +
              (o.premise == nullptr ? std::string("TRUE")
                                    : o.premise->ToString()) +
              " in place of " +
              (o.conclusion == nullptr ? std::string("TRUE")
                                       : o.conclusion->ToString()) +
              ", but the former (with the subtree's derived domain) does not "
              "imply the latter\noffending subplan:\n" +
              PlanToString(o.scope)),
          context);
    }
  }
  return Status::OK();
}

Status SemanticVerifier::VerifyConsumer(const PlanPtr& fused,
                                        const ExprPtr& filter,
                                        const ColumnMap& mapping,
                                        const Schema& member_output,
                                        std::string_view context) {
  ++obligations_checked_;
  if (filter != nullptr) {
    Status st = ExprTypeChecker(fused->schema()).CheckBoolean(filter, "consumer-filter");
    if (!st.ok()) {
      return Contextualize(
          Status::PlanError(
              "[semantic-consumer-filter] compensating filter " +
              filter->ToString() + " is not valid over the fused schema: " +
              st.message()),
          context);
    }
  }
  for (const ColumnInfo& c : member_output.columns()) {
    ColumnId target = ApplyMap(mapping, c.id);
    int idx = fused->schema().IndexOf(target);
    if (idx < 0) {
      return Contextualize(
          Status::PlanError("[semantic-consumer-filter] member column #" +
                            std::to_string(c.id) + " maps to #" +
                            std::to_string(target) +
                            ", which the fused plan does not produce"),
          context);
    }
    if (fused->schema().column(idx).type != c.type) {
      return Contextualize(
          Status::PlanError(
              "[semantic-consumer-filter] member column #" +
              std::to_string(c.id) + " maps to #" + std::to_string(target) +
              " of a different type in the fused plan"),
          context);
    }
  }
  return Status::OK();
}

Status VerifySemanticsIfEnabled(const PlanPtr& plan, std::string_view context) {
  if (!SemanticVerificationEnabled()) return Status::OK();
  SemanticVerifier verifier;
  return verifier.Verify(plan, context);
}

}  // namespace fusiondb
