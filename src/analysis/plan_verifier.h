// PlanVerifier: a static-analysis pass over logical plans.
//
// Every fusion primitive (Section III) and rewrite rule (Section IV) carries
// a correctness obligation — the fused schema must cover both inputs,
// compensating filters must be boolean over the fused schema, mappings must
// resolve into the fused output. Before this pass existed, a buggy rewrite
// only surfaced as a wrong answer or an executor error far from the cause.
// The verifier walks a plan and checks, per operator kind, the structural
// and type invariants the executor and the Fuse contract rely on; the
// optimizer driver runs it after every rule application so the *first*
// invalid rewrite is pinpointed, naming the rule, the violated invariant and
// the offending subplan.
//
// The invariant catalog (bracketed tags embedded in violation messages) is
// documented in DESIGN.md. Structural violations report kPlanError, type
// violations kTypeError — the same codes the executor's own binding checks
// use, so enabling verification never changes which error callers observe,
// only how early and how precisely it is reported.
#ifndef FUSIONDB_ANALYSIS_PLAN_VERIFIER_H_
#define FUSIONDB_ANALYSIS_PLAN_VERIFIER_H_

#include <string_view>

#include "common/status.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// Whether plan verification is active. The FUSIONDB_VERIFY_PLANS
/// environment variable ("0" disables, anything else enables) overrides the
/// compile-time default (FUSIONDB_VERIFY_PLANS_DEFAULT, ON in standard
/// builds; see the top-level CMakeLists option). Benchmarks that want to
/// exclude verification overhead export FUSIONDB_VERIFY_PLANS=0.
bool PlanVerificationEnabled();

class PlanVerifier {
 public:
  /// Verifies every structural and type invariant of `plan` (recursively;
  /// shared subtrees are verified once). `context` names the step that
  /// produced the plan — a rule name, "initial plan", "pre-execution" — and
  /// is woven into the violation message. Returns OK on a valid plan.
  static Status Verify(const PlanPtr& plan, std::string_view context = {});
};

/// Verify() when PlanVerificationEnabled(), OK otherwise. The call sites in
/// the optimizer and executor all route through this.
Status VerifyPlanIfEnabled(const PlanPtr& plan, std::string_view context);

}  // namespace fusiondb

#endif  // FUSIONDB_ANALYSIS_PLAN_VERIFIER_H_
