#include "analysis/plan_verifier.h"

#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/expr_type_checker.h"
#include "plan/plan_printer.h"
#include "plan/spool.h"

namespace fusiondb {

bool PlanVerificationEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("FUSIONDB_VERIFY_PLANS");
    if (env != nullptr) return env[0] != '0';
#ifdef FUSIONDB_VERIFY_PLANS_DEFAULT
    return FUSIONDB_VERIFY_PLANS_DEFAULT != 0;
#else
    return true;
#endif
  }();
  return enabled;
}

namespace {

Status StructuralViolation(const char* invariant, std::string detail) {
  return Status::PlanError("[" + std::string(invariant) + "] " +
                           std::move(detail));
}

Status TypeViolation(const char* invariant, std::string detail) {
  return Status::TypeError("[" + std::string(invariant) + "] " +
                           std::move(detail));
}

/// Same columns in the same order (ids and types; names are cosmetic).
bool SchemasEqual(const Schema& a, const Schema& b) {
  if (a.num_columns() != b.num_columns()) return false;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    if (a.column(i).id != b.column(i).id ||
        a.column(i).type != b.column(i).type) {
      return false;
    }
  }
  return true;
}

std::string DescribeOp(const LogicalOp& op) {
  return std::string(OpKindName(op.kind()));
}

class VerifierImpl {
 public:
  Status VerifyTree(const PlanPtr& plan) {
    if (plan == nullptr) {
      return StructuralViolation("null-plan", "null operator in plan tree");
    }
    const LogicalOp* raw = plan.get();
    if (on_stack_.count(raw) > 0) {
      return StructuralViolation(
          "plan-cycle", DescribeOp(*plan) + " is its own ancestor");
    }
    // Shared subtrees (spool consumers make plans DAGs) verify once.
    if (verified_.count(raw) > 0) return Status::OK();
    on_stack_.insert(raw);
    for (const PlanPtr& c : plan->children()) {
      FUSIONDB_RETURN_IF_ERROR(VerifyTree(c));
    }
    on_stack_.erase(raw);
    Status local = VerifyLocal(*plan);
    if (!local.ok()) {
      // Anchor the diagnostic on the offending subplan, pretty-printed.
      return Status(local.code(), local.message() + "\noffending subplan:\n" +
                                      PlanToString(plan));
    }
    verified_.insert(raw);
    return Status::OK();
  }

 private:
  Status VerifyLocal(const LogicalOp& op) {
    FUSIONDB_RETURN_IF_ERROR(VerifyChildCount(op));
    FUSIONDB_RETURN_IF_ERROR(VerifySchemaWellFormed(op.schema()));
    switch (op.kind()) {
      case OpKind::kScan:
        return VerifyScan(Cast<ScanOp>(op));
      case OpKind::kFilter: {
        const auto& f = Cast<FilterOp>(op);
        FUSIONDB_RETURN_IF_ERROR(VerifyPassThroughSchema(op));
        return ExprTypeChecker(f.child(0)->schema())
            .CheckBoolean(f.predicate(), "predicate");
      }
      case OpKind::kProject:
        return VerifyProject(Cast<ProjectOp>(op));
      case OpKind::kJoin:
        return VerifyJoin(Cast<JoinOp>(op));
      case OpKind::kAggregate:
        return VerifyAggregate(Cast<AggregateOp>(op));
      case OpKind::kWindow:
        return VerifyWindow(Cast<WindowOp>(op));
      case OpKind::kMarkDistinct:
        return VerifyMarkDistinct(Cast<MarkDistinctOp>(op));
      case OpKind::kUnionAll:
        return VerifyUnionAll(Cast<UnionAllOp>(op));
      case OpKind::kValues:
        return VerifyValues(Cast<ValuesOp>(op));
      case OpKind::kSort:
        return VerifySort(Cast<SortOp>(op));
      case OpKind::kLimit: {
        FUSIONDB_RETURN_IF_ERROR(VerifyPassThroughSchema(op));
        int64_t limit = Cast<LimitOp>(op).limit();
        if (limit < 0) {
          return StructuralViolation(
              "limit-negative",
              internal::StrCat("Limit of ", limit, " rows"));
        }
        return WalkLimitOrdering(op.child(0), /*destroyed=*/false);
      }
      case OpKind::kEnforceSingleRow:
        return VerifyPassThroughSchema(op);
      case OpKind::kApply:
        return VerifyApply(Cast<ApplyOp>(op));
      case OpKind::kSpool:
        return VerifySpool(Cast<SpoolOp>(op));
    }
    return Status::Internal("unknown operator kind");
  }

  Status VerifyChildCount(const LogicalOp& op) {
    size_t expected = 0;
    switch (op.kind()) {
      case OpKind::kScan:
      case OpKind::kValues:
        expected = 0;
        break;
      case OpKind::kJoin:
      case OpKind::kApply:
        expected = 2;
        break;
      case OpKind::kUnionAll:
        if (op.num_children() == 0) {
          return StructuralViolation("child-count",
                                     "UnionAll needs at least one input");
        }
        return Status::OK();
      case OpKind::kFilter:
      case OpKind::kProject:
      case OpKind::kAggregate:
      case OpKind::kWindow:
      case OpKind::kMarkDistinct:
      case OpKind::kSort:
      case OpKind::kLimit:
      case OpKind::kEnforceSingleRow:
      case OpKind::kSpool:
        expected = 1;
        break;
    }
    if (op.num_children() != expected) {
      return StructuralViolation(
          "child-count",
          internal::StrCat(DescribeOp(op), " has ", op.num_children(),
                           " children, expected ", expected));
    }
    return Status::OK();
  }

  Status VerifySchemaWellFormed(const Schema& schema) {
    // A repeated id is tolerated when every occurrence agrees on the type:
    // self-joins of a shared spool consumer legitimately emit the same
    // column on both sides, and IndexOf resolves to the first occurrence,
    // which is then type-consistent. Conflicting types under one id would
    // make that resolution unsound, so only that case is an error.
    std::unordered_map<ColumnId, DataType> seen;
    for (const ColumnInfo& c : schema.columns()) {
      if (c.id == kInvalidColumnId) {
        return StructuralViolation(
            "schema-invalid-id", "output column '" + c.name +
                                     "' has no allocated ColumnId");
      }
      auto [it, inserted] = seen.emplace(c.id, c.type);
      if (!inserted && it->second != c.type) {
        return StructuralViolation(
            "schema-duplicate-column",
            internal::StrCat("column #", c.id,
                             " appears with conflicting types in output "
                             "schema ",
                             schema.ToString()));
      }
    }
    return Status::OK();
  }

  /// Filter/Sort/Limit/EnforceSingleRow/Spool pass rows through unchanged.
  Status VerifyPassThroughSchema(const LogicalOp& op) {
    if (!SchemasEqual(op.schema(), op.child(0)->schema())) {
      return StructuralViolation(
          "schema-mismatch",
          DescribeOp(op) + " output schema " + op.schema().ToString() +
              " differs from its child's " +
              op.child(0)->schema().ToString());
    }
    return Status::OK();
  }

  Status VerifyScan(const ScanOp& scan) {
    if (scan.table() == nullptr) {
      return StructuralViolation("scan-table-null", "Scan of a null table");
    }
    const auto& table_cols = scan.table()->columns();
    if (scan.table_columns().size() != scan.schema().num_columns()) {
      return StructuralViolation(
          "schema-arity",
          internal::StrCat("Scan reads ", scan.table_columns().size(),
                           " table columns but outputs ",
                           scan.schema().num_columns()));
    }
    for (size_t i = 0; i < scan.table_columns().size(); ++i) {
      int tc = scan.table_columns()[i];
      if (tc < 0 || static_cast<size_t>(tc) >= table_cols.size()) {
        return StructuralViolation(
            "scan-column-index",
            internal::StrCat("Scan of ", scan.table()->name(),
                             " reads column index ", tc, " of ",
                             table_cols.size()));
      }
      if (table_cols[static_cast<size_t>(tc)].type !=
          scan.schema().column(i).type) {
        return TypeViolation(
            "scan-column-type",
            internal::StrCat(
                "Scan output '", scan.schema().column(i).name, "' declares ",
                DataTypeName(scan.schema().column(i).type), " but table ",
                scan.table()->name(), " stores ",
                DataTypeName(table_cols[static_cast<size_t>(tc)].type)));
      }
    }
    if (scan.pruning_filter() != nullptr) {
      return ExprTypeChecker(scan.schema())
          .CheckBoolean(scan.pruning_filter(), "pruning-filter");
    }
    return Status::OK();
  }

  Status VerifyProject(const ProjectOp& project) {
    const Schema& out = project.schema();
    if (out.num_columns() != project.exprs().size()) {
      return StructuralViolation(
          "schema-arity",
          internal::StrCat("Project declares ", out.num_columns(),
                           " output columns for ", project.exprs().size(),
                           " expressions"));
    }
    ExprTypeChecker checker(project.child(0)->schema());
    for (size_t i = 0; i < project.exprs().size(); ++i) {
      const NamedExpr& e = project.exprs()[i];
      FUSIONDB_RETURN_IF_ERROR(checker.Check(e.expr));
      if (out.column(i).id != e.id || out.column(i).type != e.expr->type()) {
        return StructuralViolation(
            "schema-column-mismatch",
            internal::StrCat("Project output ", i, " (#", out.column(i).id,
                             ":", DataTypeName(out.column(i).type),
                             ") disagrees with expression '", e.name, "' (#",
                             e.id, ":", DataTypeName(e.expr->type()), ")"));
      }
    }
    return Status::OK();
  }

  Status VerifyJoin(const JoinOp& join) {
    const Schema& left = join.left()->schema();
    const Schema& right = join.right()->schema();
    // Expected output: left then right, except semi joins keep left only.
    std::vector<ColumnInfo> expected = left.columns();
    if (join.join_type() != JoinType::kSemi) {
      for (const ColumnInfo& c : right.columns()) expected.push_back(c);
    }
    if (!SchemasEqual(join.schema(), Schema(expected))) {
      return StructuralViolation(
          "schema-mismatch",
          internal::StrCat("Join(", JoinTypeName(join.join_type()),
                           ") output schema ", join.schema().ToString(),
                           " is not its children's schemas concatenated"));
    }
    if (join.condition() == nullptr) {
      return StructuralViolation("join-condition-missing",
                                 "Join with a null condition");
    }
    // The condition binds against both inputs regardless of join type. Ids
    // are plan-wide unique, so the concatenation must be collision-free.
    std::vector<ColumnInfo> combined = left.columns();
    for (const ColumnInfo& c : right.columns()) combined.push_back(c);
    Schema both(combined);
    FUSIONDB_RETURN_IF_ERROR(VerifySchemaWellFormed(both));
    FUSIONDB_RETURN_IF_ERROR(
        ExprTypeChecker(both).CheckBoolean(join.condition(), "predicate"));
    if (join.join_type() == JoinType::kCross &&
        !join.condition()->IsLiteralBool(true)) {
      return StructuralViolation(
          "cross-join-condition",
          "Cross join must carry a TRUE condition, got " +
              join.condition()->ToString());
    }
    return Status::OK();
  }

  Status VerifyAggregate(const AggregateOp& agg) {
    const Schema& in = agg.child(0)->schema();
    const Schema& out = agg.schema();
    if (out.num_columns() !=
        agg.group_by().size() + agg.aggregates().size()) {
      return StructuralViolation(
          "schema-arity",
          internal::StrCat("Aggregate outputs ", out.num_columns(),
                           " columns for ", agg.group_by().size(),
                           " group keys + ", agg.aggregates().size(),
                           " aggregates"));
    }
    for (size_t i = 0; i < agg.group_by().size(); ++i) {
      ColumnId g = agg.group_by()[i];
      int idx = in.IndexOf(g);
      if (idx < 0) {
        return StructuralViolation(
            "aggregate-group-unresolved",
            internal::StrCat("group-by column #", g,
                             " is not produced by the input schema ",
                             in.ToString()));
      }
      if (out.column(i).id != g ||
          out.column(i).type != in.column(static_cast<size_t>(idx)).type) {
        return StructuralViolation(
            "schema-column-mismatch",
            internal::StrCat("Aggregate output ", i,
                             " does not pass through group key #", g));
      }
    }
    ExprTypeChecker checker(in);
    for (size_t i = 0; i < agg.aggregates().size(); ++i) {
      const AggregateItem& a = agg.aggregates()[i];
      FUSIONDB_RETURN_IF_ERROR(
          VerifyAggArgument(a.func, a.arg, a.name, checker));
      if (a.mask != nullptr) {
        FUSIONDB_RETURN_IF_ERROR(checker.CheckBoolean(a.mask, "mask"));
      }
      const ColumnInfo& col = out.column(agg.group_by().size() + i);
      if (col.id == kInvalidColumnId || col.id != a.id ||
          col.type != a.result_type()) {
        return StructuralViolation(
            "schema-column-mismatch",
            internal::StrCat("aggregate '", a.name, "' (#", a.id, ":",
                             DataTypeName(a.result_type()),
                             ") disagrees with output column #", col.id, ":",
                             DataTypeName(col.type)));
      }
    }
    return Status::OK();
  }

  Status VerifyAggArgument(AggFunc func, const ExprPtr& arg,
                           const std::string& name,
                           const ExprTypeChecker& checker) {
    if (func == AggFunc::kCountStar) {
      if (arg != nullptr) {
        return StructuralViolation(
            "aggregate-arg", "count(*) '" + name + "' carries an argument");
      }
      return Status::OK();
    }
    if (arg == nullptr) {
      return StructuralViolation(
          "aggregate-arg", std::string(AggFuncName(func)) + " '" + name +
                               "' is missing its argument");
    }
    FUSIONDB_RETURN_IF_ERROR(checker.Check(arg));
    if ((func == AggFunc::kSum || func == AggFunc::kAvg) &&
        !IsNumeric(arg->type())) {
      return TypeViolation(
          "aggregate-arg-type",
          internal::StrCat(AggFuncName(func), " '", name, "' over ",
                           DataTypeName(arg->type()), " argument ",
                           arg->ToString()));
    }
    return Status::OK();
  }

  Status VerifyWindow(const WindowOp& win) {
    const Schema& in = win.child(0)->schema();
    const Schema& out = win.schema();
    for (ColumnId p : win.partition_by()) {
      if (!in.Contains(p)) {
        return StructuralViolation(
            "window-partition-unresolved",
            internal::StrCat("partition column #", p,
                             " is not produced by the input schema ",
                             in.ToString()));
      }
    }
    if (out.num_columns() != in.num_columns() + win.items().size() ||
        !SchemasEqual(Schema(std::vector<ColumnInfo>(
                          out.columns().begin(),
                          out.columns().begin() +
                              static_cast<long>(in.num_columns()))),
                      in)) {
      return StructuralViolation(
          "schema-mismatch",
          "Window output must be its input schema plus one column per item");
    }
    ExprTypeChecker checker(in);
    for (size_t i = 0; i < win.items().size(); ++i) {
      const WindowItem& w = win.items()[i];
      FUSIONDB_RETURN_IF_ERROR(
          VerifyAggArgument(w.func, w.arg, w.name, checker));
      if (w.mask != nullptr) {
        FUSIONDB_RETURN_IF_ERROR(checker.CheckBoolean(w.mask, "mask"));
      }
      const ColumnInfo& col = out.column(in.num_columns() + i);
      if (col.id == kInvalidColumnId || col.id != w.id ||
          col.type != w.result_type()) {
        return StructuralViolation(
            "schema-column-mismatch",
            internal::StrCat("window item '", w.name, "' (#", w.id,
                             ") disagrees with output column #", col.id));
      }
    }
    return Status::OK();
  }

  Status VerifyMarkDistinct(const MarkDistinctOp& md) {
    const Schema& in = md.child(0)->schema();
    const Schema& out = md.schema();
    if (out.num_columns() != in.num_columns() + 1 ||
        out.column(in.num_columns()).id != md.marker() ||
        out.column(in.num_columns()).type != DataType::kBool) {
      return StructuralViolation(
          "schema-mismatch",
          "MarkDistinct output must be its input schema plus a boolean "
          "marker column");
    }
    if (md.marker() == kInvalidColumnId) {
      return StructuralViolation("schema-invalid-id",
                                 "MarkDistinct marker has no ColumnId");
    }
    for (ColumnId c : md.distinct_columns()) {
      if (!in.Contains(c)) {
        return StructuralViolation(
            "markdistinct-column-unresolved",
            internal::StrCat("distinct column #", c,
                             " is not produced by the input schema ",
                             in.ToString()));
      }
    }
    return Status::OK();
  }

  Status VerifyUnionAll(const UnionAllOp& u) {
    const Schema& out = u.schema();
    if (u.input_columns().size() != u.num_children()) {
      return StructuralViolation(
          "union-mapping-arity",
          internal::StrCat("UnionAll has ", u.num_children(),
                           " inputs but ", u.input_columns().size(),
                           " column mappings"));
    }
    for (size_t c = 0; c < u.num_children(); ++c) {
      const Schema& in = u.child(c)->schema();
      const std::vector<ColumnId>& mapping = u.input_columns()[c];
      if (mapping.size() != out.num_columns()) {
        return StructuralViolation(
            "union-mapping-arity",
            internal::StrCat("UnionAll input ", c, " maps ", mapping.size(),
                             " columns onto ", out.num_columns(),
                             " outputs"));
      }
      for (size_t o = 0; o < mapping.size(); ++o) {
        int idx = in.IndexOf(mapping[o]);
        if (idx < 0) {
          return StructuralViolation(
              "union-branch-unresolved",
              internal::StrCat("UnionAll input ", c, " maps column #",
                               mapping[o],
                               " which that branch does not produce (",
                               in.ToString(), ")"));
        }
        DataType branch = in.column(static_cast<size_t>(idx)).type;
        if (branch != out.column(o).type) {
          return TypeViolation(
              "union-branch-type",
              internal::StrCat("UnionAll output '", out.column(o).name,
                               "' is ", DataTypeName(out.column(o).type),
                               " but input ", c, " feeds it ",
                               DataTypeName(branch), " column #",
                               mapping[o]));
        }
      }
    }
    return Status::OK();
  }

  Status VerifyValues(const ValuesOp& values) {
    const Schema& out = values.schema();
    for (size_t r = 0; r < values.rows().size(); ++r) {
      const std::vector<Value>& row = values.rows()[r];
      if (row.size() != out.num_columns()) {
        return StructuralViolation(
            "values-row-arity",
            internal::StrCat("Values row ", r, " has ", row.size(),
                             " cells for ", out.num_columns(), " columns"));
      }
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].type() != out.column(c).type) {
          return TypeViolation(
              "values-cell-type",
              internal::StrCat("Values row ", r, " column '",
                               out.column(c).name, "' holds ",
                               DataTypeName(row[c].type()), ", declared ",
                               DataTypeName(out.column(c).type)));
        }
      }
    }
    return Status::OK();
  }

  /// Ordering guarantee below a Limit: when a Sort is meant to feed a Limit
  /// (top-K), every operator between them must preserve row order. Finding a
  /// Sort on the far side of an order-destroying operator (Aggregate, Join,
  /// UnionAll, Apply) means a rewrite moved one across the other and the
  /// plan silently returns the wrong K rows. The walk stops at a nested
  /// Limit — anything below it belongs to that Limit's own ordering
  /// contract (e.g. a top-K subquery feeding a join) — and at the first
  /// Sort, which is the one whose ordering the outer Limit consumes.
  Status WalkLimitOrdering(const PlanPtr& op, bool destroyed) {
    switch (op->kind()) {
      case OpKind::kSort:
        if (destroyed) {
          return StructuralViolation(
              "limit-sort-order-destroyed",
              "Limit draws from a Sort through an operator that does not "
              "preserve its ordering");
        }
        return Status::OK();
      case OpKind::kLimit:
      case OpKind::kScan:
      case OpKind::kValues:
        return Status::OK();
      case OpKind::kAggregate:
      case OpKind::kJoin:
      case OpKind::kUnionAll:
      case OpKind::kApply:
        destroyed = true;
        break;
      default:
        // Filter, Project, Spool, EnforceSingleRow, MarkDistinct and Window
        // pass rows through in input order.
        break;
    }
    for (const PlanPtr& c : op->children()) {
      FUSIONDB_RETURN_IF_ERROR(WalkLimitOrdering(c, destroyed));
    }
    return Status::OK();
  }

  Status VerifySort(const SortOp& sort) {
    FUSIONDB_RETURN_IF_ERROR(VerifyPassThroughSchema(sort));
    for (const SortKey& k : sort.keys()) {
      if (!sort.schema().Contains(k.column)) {
        return StructuralViolation(
            "sort-key-unresolved",
            internal::StrCat("sort key #", k.column,
                             " is not produced by the input schema ",
                             sort.schema().ToString()));
      }
    }
    return Status::OK();
  }

  Status VerifyApply(const ApplyOp& apply) {
    const Schema& outer = apply.outer()->schema();
    const PlanPtr& sub = apply.subquery();
    if (sub->schema().num_columns() != 1 ||
        sub->kind() != OpKind::kAggregate ||
        !Cast<AggregateOp>(*sub).IsScalar()) {
      return StructuralViolation(
          "apply-subquery-shape",
          "Apply subquery must be a scalar Aggregate with a single output "
          "column (got " +
              DescribeOp(*sub) + ")");
    }
    std::vector<ColumnInfo> expected = outer.columns();
    expected.push_back(sub->schema().column(0));
    if (!SchemasEqual(apply.schema(), Schema(expected))) {
      return StructuralViolation(
          "schema-mismatch",
          "Apply output must be the outer schema plus the subquery's scalar "
          "column");
    }
    const Schema& inner = sub->child(0)->schema();
    for (const auto& [outer_col, inner_col] : apply.correlation()) {
      if (!outer.Contains(outer_col)) {
        return StructuralViolation(
            "apply-correlation-unresolved",
            internal::StrCat("correlation outer column #", outer_col,
                             " is not produced by the outer input"));
      }
      if (!inner.Contains(inner_col)) {
        return StructuralViolation(
            "apply-correlation-unresolved",
            internal::StrCat("correlation inner column #", inner_col,
                             " is not produced by the subquery aggregate's "
                             "input"));
      }
    }
    return Status::OK();
  }

  Status VerifySpool(const SpoolOp& spool) {
    FUSIONDB_RETURN_IF_ERROR(VerifyPassThroughSchema(spool));
    // Every consumer of a spool id must read the *same* materialized
    // subtree; a consumer pointing elsewhere would silently read another
    // relation's buffer at execution.
    auto [it, inserted] =
        spool_children_.emplace(spool.spool_id(), spool.child(0).get());
    if (!inserted && it->second != spool.child(0).get()) {
      return StructuralViolation(
          "dangling-spool",
          internal::StrCat("Spool id=", spool.spool_id(),
                           " consumers reference different subtrees; all "
                           "consumers must share one producer"));
    }
    return Status::OK();
  }

  std::unordered_set<const LogicalOp*> verified_;
  std::unordered_set<const LogicalOp*> on_stack_;
  std::unordered_map<int32_t, const LogicalOp*> spool_children_;
};

}  // namespace

Status PlanVerifier::Verify(const PlanPtr& plan, std::string_view context) {
  VerifierImpl impl;
  Status st = impl.VerifyTree(plan);
  if (st.ok()) return st;
  std::string where =
      context.empty() ? std::string()
                      : " (" + std::string(context) + ")";
  return Status(st.code(),
                "plan verification failed" + where + ": " + st.message());
}

Status VerifyPlanIfEnabled(const PlanPtr& plan, std::string_view context) {
  if (!PlanVerificationEnabled()) return Status::OK();
  return PlanVerifier::Verify(plan, context);
}

}  // namespace fusiondb
