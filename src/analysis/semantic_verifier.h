// SemanticVerifier: the semantic tier of plan verification (DESIGN.md §8).
//
// The structural tier (plan_verifier.h) checks that a plan is well-formed;
// this tier checks that the optimizer's *rewrites* were justified. It walks
// a plan proving, from independently derived properties (plan_props.h):
//   - every scan's pruning filter is monotone in the partition column
//     ([semantic-pruning-nonmonotone]) and implied by the filters enforced
//     above it ([semantic-pruning-unimplied]) — the contract that lets the
//     executor skip partitions and fusion drop pruning filters from shared
//     scans,
//   - EnforceSingleRow subtrees can actually produce a single row
//     ([semantic-single-row-impossible]),
// and discharges the obligations rewrite rules record in the SemanticLedger:
//   - key claims ([semantic-key-obligation], e.g. JoinOnKeys' precondition),
//   - filter implications ([semantic-filter-implication], e.g. compensating
//     conjuncts dropped because the shared subtree's domain implies them),
// plus cross-plan consumer well-formedness after CrossPlanFuser
// ([semantic-consumer-filter]).
//
// Both the property derivation and the walk are DAG-memoized and persist
// across calls on one verifier instance, so re-verifying a plan after a
// rule firing only pays for the subtrees the rule actually touched.
#ifndef FUSIONDB_ANALYSIS_SEMANTIC_VERIFIER_H_
#define FUSIONDB_ANALYSIS_SEMANTIC_VERIFIER_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/plan_props.h"
#include "analysis/semantic_ledger.h"
#include "common/status.h"
#include "expr/column_map.h"
#include "plan/logical_plan.h"

namespace fusiondb {

/// Whether semantic verification is active. The FUSIONDB_VERIFY_SEMANTICS
/// environment variable ("0" disables, anything else enables) overrides the
/// compile-time default (FUSIONDB_VERIFY_SEMANTICS_DEFAULT, OFF in standard
/// builds — the tier re-proves rewrites, so it costs more than the
/// structural tier and is aimed at CI/debugging).
bool SemanticVerificationEnabled();

class SemanticVerifier {
 public:
  /// Walks `plan` and checks every node-local semantic invariant
  /// (pruning monotonicity/implication, single-row feasibility). `context`
  /// names the producing step and is woven into violation messages.
  Status Verify(const PlanPtr& plan, std::string_view context = {});

  /// Drains `ledger` (null is a no-op) and re-proves every recorded
  /// obligation against derived properties.
  Status CheckObligations(SemanticLedger* ledger, std::string_view context = {});

  /// Checks one cross-plan consumer against the fused plan it reads:
  /// the compensating filter must be boolean over the fused schema and the
  /// mapping must land every member output column on a fused column of the
  /// same type.
  Status VerifyConsumer(const PlanPtr& fused, const ExprPtr& filter,
                        const ColumnMap& mapping, const Schema& member_output,
                        std::string_view context = {});

  /// The underlying derivation (shared memo), e.g. for EXPLAIN annotations.
  PropertyDerivation& props() { return props_; }

  int64_t plans_verified() const { return plans_verified_; }
  int64_t obligations_checked() const { return obligations_checked_; }

 private:
  Status WalkTree(const PlanPtr& node, const std::vector<ExprPtr>& enforced,
                  bool is_root);
  Status CheckScan(const PlanPtr& node, const std::vector<ExprPtr>& enforced,
                   bool is_root);

  PropertyDerivation props_;
  // node -> hashes of enforced-filter contexts it was verified under
  std::unordered_map<const LogicalOp*, std::vector<uint64_t>> walked_;
  std::vector<PlanPtr> keepalive_;
  int64_t plans_verified_ = 0;
  int64_t obligations_checked_ = 0;
};

/// SemanticVerifier checks when SemanticVerificationEnabled(), OK otherwise.
/// One-shot convenience for call sites without a persistent verifier.
Status VerifySemanticsIfEnabled(const PlanPtr& plan, std::string_view context);

}  // namespace fusiondb

#endif  // FUSIONDB_ANALYSIS_SEMANTIC_VERIFIER_H_
